// Per-figure benchmark harness: one benchmark per table/figure of the
// paper, regenerating the underlying data. Trace-driven figures share a
// single generated trace (the dominant cost is the two-year cloud
// simulation, benchmarked separately as BenchmarkTraceGeneration).
//
// Run everything:
//
//	go test -bench=. -benchmem
package qcloud_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"qcloud/internal/analysis"
	"qcloud/internal/backend"
	"qcloud/internal/circuit"
	"qcloud/internal/circuit/gens"
	"qcloud/internal/cloud"
	"qcloud/internal/compile"
	"qcloud/internal/par"
	"qcloud/internal/qsim"
	"qcloud/internal/trace"
	"qcloud/internal/workload"
)

var (
	benchOnce  sync.Once
	benchTrace *trace.Trace
	benchErr   error
)

// benchFixture generates the shared study trace once (seeded, ~2500
// jobs so the prediction benchmarks have per-machine depth).
func benchFixture(b *testing.B) *trace.Trace {
	b.Helper()
	benchOnce.Do(func() {
		specs := workload.Generate(workload.Config{Seed: 42, TotalJobs: 2500})
		benchTrace, benchErr = cloud.Simulate(cloud.Config{Seed: 42}, specs)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchTrace
}

// BenchmarkTraceGeneration measures the full workload + cloud pipeline
// that every trace-driven figure depends on (a scaled two-year study).
func BenchmarkTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		specs := workload.Generate(workload.Config{Seed: int64(i + 1), TotalJobs: 600})
		if _, err := cloud.Simulate(cloud.Config{Seed: int64(i + 1)}, specs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig02aCumulativeTrials(b *testing.B) {
	tr := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		months := analysis.CumulativeTrials(tr)
		if len(months) == 0 {
			b.Fatal("no months")
		}
	}
}

func BenchmarkFig02bStatusBreakdown(b *testing.B) {
	tr := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if analysis.StatusBreakdown(tr)[trace.StatusDone] == 0 {
			b.Fatal("no DONE jobs")
		}
	}
}

func BenchmarkFig03QueuingTimes(b *testing.B) {
	tr := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if analysis.QueueShapeOf(tr).TotalCircuits == 0 {
			b.Fatal("no circuits")
		}
	}
}

func BenchmarkFig04QueueExecRatio(b *testing.B) {
	tr := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(analysis.QueueExecRatios(tr)) == 0 {
			b.Fatal("no ratios")
		}
	}
}

// BenchmarkFig05CompilePasses runs the per-pass profile at a scaled
// size (QFT 8 -> melbourne vs QFT 64 -> fake 1000q). The paper's
// full-size 980q instance is available via cmd/qcloud-compilebench.
func BenchmarkFig05CompilePasses(b *testing.B) {
	small := backend.FleetByName()["ibmq_16_melbourne"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.CompilePassProfile(8, small, 64, nil, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig06Bisection(b *testing.B) {
	fleet := backend.Fleet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(analysis.BisectionTable(fleet)) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig07Fidelity runs the five-machine fidelity sweep serially
// and on a 4-worker pool (machines fan out and each machine's shots run
// on the trajectory pool); the serial/parallel pair in BENCH_*.json is
// the sweep's speedup record. Rows are bit-identical in both modes.
func BenchmarkFig07Fidelity(b *testing.B) {
	byName := backend.FleetByName()
	var machines []*backend.Machine
	for _, n := range []string{"ibmq_casablanca", "ibmq_toronto", "ibmq_guadalupe", "ibmq_rome", "ibmq_manhattan"} {
		machines = append(machines, byName[n])
	}
	at := time.Date(2021, 3, 10, 12, 0, 0, 0, time.UTC)
	for _, mode := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel-4", 4}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			par.SetWorkers(mode.workers)
			defer par.SetWorkers(0)
			for i := 0; i < b.N; i++ {
				if _, err := analysis.FidelityVsCXMetrics(machines, 4, 300, at, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig08Utilization(b *testing.B) {
	tr := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(analysis.UtilizationByMachine(tr)) == 0 {
			b.Fatal("no machines")
		}
	}
}

func BenchmarkFig09PendingJobs(b *testing.B) {
	tr := benchFixture(b)
	from := time.Date(2021, 3, 8, 0, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(analysis.PendingJobsByMachine(tr, from, from.AddDate(0, 0, 7))) == 0 {
			b.Fatal("no pending rows")
		}
	}
}

func BenchmarkFig10QueueByMachine(b *testing.B) {
	tr := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(analysis.QueuingByMachine(tr)) == 0 {
			b.Fatal("no machines")
		}
	}
}

func BenchmarkFig11QueueVsBatch(b *testing.B) {
	tr := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(analysis.ByBatchSize(tr, nil)) == 0 {
			b.Fatal("no buckets")
		}
	}
}

func BenchmarkFig12aCrossover(b *testing.B) {
	tr := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if analysis.CalibrationCrossovers(tr) <= 0 {
			b.Fatal("no crossovers")
		}
	}
}

func BenchmarkFig12bRemap(b *testing.B) {
	m := backend.FleetByName()["ibmq_toronto"]
	t0 := time.Date(2021, 2, 1, 12, 0, 0, 0, time.UTC)
	circ := gens.QFT(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.LayoutDivergenceOf(circ, m, t0, 8, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13RuntimeByMachine(b *testing.B) {
	tr := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(analysis.RuntimeByMachine(tr)) == 0 {
			b.Fatal("no machines")
		}
	}
}

func BenchmarkFig14RuntimeVsBatch(b *testing.B) {
	tr := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if analysis.RuntimeVsBatch(tr).N == 0 {
			b.Fatal("no jobs")
		}
	}
}

func BenchmarkFig15Prediction(b *testing.B) {
	tr := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(analysis.PredictionCorrelations(tr, 120, int64(i))) == 0 {
			b.Fatal("no machines with enough jobs")
		}
	}
}

func BenchmarkFig16PredSeries(b *testing.B) {
	tr := benchFixture(b)
	// Use the busiest machine.
	best, bestN := "", 0
	for name, jobs := range tr.JobsByMachine() {
		if len(jobs) > bestN {
			best, bestN = name, len(jobs)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		actual, predicted, err := analysis.PredictionSeries(tr, best, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(actual) != len(predicted) {
			b.Fatal("length mismatch")
		}
	}
}

// BenchmarkCompileQFTSuite exercises the compiler alone across machine
// sizes — the ablation for DESIGN.md's "compilation scales with circuit
// size" claim (full-width QFT on each machine).
func BenchmarkCompileQFTSuite(b *testing.B) {
	byName := backend.FleetByName()
	cases := []struct {
		n       int
		machine string
	}{
		{4, "ibmq_vigo"},
		{8, "ibmq_16_melbourne"},
		{16, "ibmq_guadalupe"},
		{27, "ibmq_toronto"},
	}
	for _, c := range cases {
		c := c
		b.Run(c.machine, func(b *testing.B) {
			m := byName[c.machine]
			circ := gens.QFT(c.n)
			cal := m.CalibrationAt(time.Date(2021, 3, 1, 12, 0, 0, 0, time.UTC))
			for i := 0; i < b.N; i++ {
				if _, err := compile.Compile(circ, m, cal, compile.Options{Seed: int64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// simModes are the execution variants the simulator benchmarks sweep:
// fully serial, a 4-worker pool, and the pre-fusion engine (serial) so
// the fusion prepass's win is measured in isolation. Counts are
// bit-identical across all three.
var simModes = []struct {
	name string
	par  qsim.Parallelism
}{
	{"serial", qsim.Parallelism{Workers: 1}},
	{"parallel-4", qsim.Parallelism{Workers: 4}},
	{"serial-unfused", qsim.Parallelism{Workers: 1, DisableFusion: true}},
}

// BenchmarkStatevectorScaling measures the dense simulator's gate
// throughput across register widths (the substrate cost behind the
// Fig 7 fidelity experiments). Each width runs serial, 4-worker-kernel
// and unfused variants; widths below the sharding threshold (14q) are
// serial either way, while 16q+ records the kernel-pool speedup.
// Counts are bit-identical between the variants.
func BenchmarkStatevectorScaling(b *testing.B) {
	for _, n := range []int{8, 12, 16, 20, 22} {
		n := n
		for _, mode := range simModes {
			mode := mode
			b.Run(fmt.Sprintf("%dq/%s", n, mode.name), func(b *testing.B) {
				circ := gens.QFTBench(n)
				r := rand.New(rand.NewSource(1))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := qsim.RunOpts(circ, 1, nil, r, mode.par); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTrajectoryShots measures the noisy shot pool: the same
// 10-qubit noisy benchmark dispatched serially, across 4 workers, and
// through the pre-fusion engine. Per-shot RNG streams make the merged
// counts identical in all modes.
func BenchmarkTrajectoryShots(b *testing.B) {
	circ := gens.QFTBench(10)
	noise := qsim.UniformNoise(0.001, 0.01, 0.02)
	for _, mode := range simModes {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			r := rand.New(rand.NewSource(2))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := qsim.RunOpts(circ, 256, noise, r, mode.par); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompileApproxQFT contrasts exact and approximate QFT compile
// cost at 64 qubits — the §III-E.2 scalable-compilation lever.
func BenchmarkCompileApproxQFT(b *testing.B) {
	large := backend.Fake1000()
	cases := []struct {
		name string
		circ func() *circuit.Circuit
	}{
		{"exact", func() *circuit.Circuit { return gens.QFT(64) }},
		{"approx-d6", func() *circuit.Circuit { return gens.ApproxQFT(64, 6) }},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			circ := c.circ()
			for i := 0; i < b.N; i++ {
				res, err := compile.Compile(circ, large, nil, compile.Options{Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Metrics.CXCount), "cx")
			}
		})
	}
}
