// Package pulse lowers compiled circuits to pulse schedules, modeling
// the OpenPulse layer the paper's §III-D and §V-E.2 discuss: pulses are
// generated from the calibration at compile time, so a calibration
// crossover leaves even the pulses stale. The lowering covers the IBM
// basis (rz as a zero-duration virtual-Z frame change, sx/x as DRAG
// pulses, cx as an echoed cross-resonance sequence, measurement as a
// readout tone) with ASAP scheduling per channel.
//
// Pulse-level optimal control (the hours-long searches of Shi et al.
// that the paper cites) is out of scope; DESIGN.md records the
// substitution.
package pulse

import (
	"fmt"
	"sort"

	"qcloud/internal/backend"
	"qcloud/internal/circuit"
)

// Kind labels the physical pulse type.
type Kind string

// Pulse kinds.
const (
	KindVirtualZ Kind = "virtual_z" // frame change, zero duration
	KindDrag     Kind = "drag"      // single-qubit DRAG pulse
	KindCR       Kind = "cross_res" // echoed cross-resonance (CX)
	KindReadout  Kind = "readout"
)

// Nominal durations in microseconds.
const (
	durSXUs      = 0.036
	durXUs       = 0.036
	durCRBaseUs  = 0.300
	durReadoutUs = 1.0
)

// Instruction is one scheduled pulse on a channel.
type Instruction struct {
	// Channel is "d<q>" for qubit drive channels, "u<a>_<b>" for
	// coupler control channels, "m<q>" for measurement.
	Channel string
	// StartUs and DurationUs place the pulse on the timeline.
	StartUs, DurationUs float64
	// Kind is the pulse type.
	Kind Kind
	// Angle carries the frame-change angle for virtual-Z pulses.
	Angle float64
	// Gate is the source gate's mnemonic, for inspection.
	Gate string
}

// Schedule is a pulse program: instructions sorted by start time.
type Schedule struct {
	Instructions []Instruction
	// CalibEpoch is the calibration cycle the pulses were generated
	// against; executing under a different epoch means stale pulses.
	CalibEpoch int
}

// DurationUs returns the makespan of the schedule.
func (s *Schedule) DurationUs() float64 {
	end := 0.0
	for _, in := range s.Instructions {
		if t := in.StartUs + in.DurationUs; t > end {
			end = t
		}
	}
	return end
}

// CountKind returns how many instructions have the given kind.
func (s *Schedule) CountKind(k Kind) int {
	n := 0
	for _, in := range s.Instructions {
		if in.Kind == k {
			n++
		}
	}
	return n
}

// Lower converts a hardware-basis circuit (the output of compile) into
// a pulse schedule under the given calibration. Noisier couplers get
// proportionally longer cross-resonance pulses, which is why schedules
// lowered under one calibration are suboptimal under the next. Gates
// outside the basis {rz, sx, x, cx, measure, barrier, reset} are an
// error: lower after compiling.
func Lower(c *circuit.Circuit, cal *backend.Calibration) (*Schedule, error) {
	s := &Schedule{CalibEpoch: cal.Epoch}
	// Per-qubit time cursor (ASAP scheduling).
	ready := make([]float64, c.NQubits)
	drive := func(q int) string { return fmt.Sprintf("d%d", q) }

	add := func(ch string, start, dur float64, kind Kind, angle float64, gate string) {
		s.Instructions = append(s.Instructions, Instruction{
			Channel: ch, StartUs: start, DurationUs: dur, Kind: kind, Angle: angle, Gate: gate,
		})
	}
	for _, g := range c.Gates {
		switch g.Op {
		case circuit.OpRZ:
			q := g.Qubits[0]
			// Virtual-Z: a frame change consuming no time.
			add(drive(q), ready[q], 0, KindVirtualZ, g.Params[0], "rz")
		case circuit.OpSX, circuit.OpX:
			q := g.Qubits[0]
			dur := durSXUs
			if g.Op == circuit.OpX {
				dur = durXUs
			}
			add(drive(q), ready[q], dur, KindDrag, 0, g.Op.String())
			ready[q] += dur
		case circuit.OpCX:
			a, b := g.Qubits[0], g.Qubits[1]
			start := ready[a]
			if ready[b] > start {
				start = ready[b]
			}
			// Echoed CR: duration grows with the coupler's error rate
			// (weaker couplings need longer drives).
			errCX := cal.CXError(a, b, cal.MeanCXError())
			dur := durCRBaseUs * (1 + 20*errCX)
			lo, hi := a, b
			if lo > hi {
				lo, hi = hi, lo
			}
			add(fmt.Sprintf("u%d_%d", lo, hi), start, dur, KindCR, 0, "cx")
			ready[a], ready[b] = start+dur, start+dur
		case circuit.OpMeasure:
			q := g.Qubits[0]
			add(fmt.Sprintf("m%d", q), ready[q], durReadoutUs, KindReadout, 0, "measure")
			ready[q] += durReadoutUs
		case circuit.OpReset:
			q := g.Qubits[0]
			// Measurement-based reset: readout plus a conditional X.
			add(fmt.Sprintf("m%d", q), ready[q], durReadoutUs, KindReadout, 0, "reset")
			ready[q] += durReadoutUs
			add(drive(q), ready[q], durXUs, KindDrag, 0, "reset-x")
			ready[q] += durXUs
		case circuit.OpBarrier:
			// Synchronize the involved channels.
			maxT := 0.0
			for _, q := range g.Qubits {
				if ready[q] > maxT {
					maxT = ready[q]
				}
			}
			for _, q := range g.Qubits {
				ready[q] = maxT
			}
		default:
			return nil, fmt.Errorf("pulse: op %v is not in the hardware basis; compile first", g.Op)
		}
	}
	sort.SliceStable(s.Instructions, func(i, j int) bool {
		return s.Instructions[i].StartUs < s.Instructions[j].StartUs
	})
	return s, nil
}

// StaleDurationPenalty estimates how much longer the same circuit's
// schedule becomes when its pulses must be regenerated under a newer
// calibration (coupler errors drifted): the relative makespan change.
// It is the pulse-level cost of the calibration crossovers in Fig 12a.
func StaleDurationPenalty(c *circuit.Circuit, oldCal, newCal *backend.Calibration) (float64, error) {
	old, err := Lower(c, oldCal)
	if err != nil {
		return 0, err
	}
	fresh, err := Lower(c, newCal)
	if err != nil {
		return 0, err
	}
	if old.DurationUs() == 0 {
		return 0, nil
	}
	return (fresh.DurationUs() - old.DurationUs()) / old.DurationUs(), nil
}
