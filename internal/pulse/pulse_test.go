package pulse

import (
	"math"
	"testing"
	"time"

	"qcloud/internal/backend"
	"qcloud/internal/circuit"
	"qcloud/internal/circuit/gens"
	"qcloud/internal/compile"
)

func compiled(t *testing.T, c *circuit.Circuit, machine string) (*circuit.Circuit, *backend.Calibration) {
	t.Helper()
	m, err := backend.FindMachine(backend.Fleet(), machine)
	if err != nil {
		t.Fatal(err)
	}
	cal := m.CalibrationAt(time.Date(2021, 3, 12, 10, 0, 0, 0, time.UTC))
	res, err := compile.Compile(c, m, cal, compile.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return res.Circ, cal
}

func TestLowerGHZ(t *testing.T) {
	cc, cal := compiled(t, gens.GHZ(4), "ibmq_athens")
	s, err := Lower(cc, cal)
	if err != nil {
		t.Fatal(err)
	}
	if s.CalibEpoch != cal.Epoch {
		t.Fatal("schedule should record its calibration epoch")
	}
	if s.CountKind(KindCR) != 3 {
		t.Fatalf("GHZ(4) should lower to 3 CR pulses, got %d", s.CountKind(KindCR))
	}
	if s.CountKind(KindReadout) != 4 {
		t.Fatalf("readout pulses = %d, want 4", s.CountKind(KindReadout))
	}
	// Makespan at least: H (one sx) + 3 serial CR + readout.
	min := durSXUs + 3*durCRBaseUs + durReadoutUs
	if s.DurationUs() < min {
		t.Fatalf("makespan %v below physical floor %v", s.DurationUs(), min)
	}
}

func TestVirtualZIsFree(t *testing.T) {
	c := circuit.New("rz", 1)
	c.RZ(0, 1.0).RZ(0, 2.0)
	cal := backend.GenCalibration(backend.Line(1), backend.DefaultCalibModel(0), 1, 0, time.Time{})
	s, err := Lower(c, cal)
	if err != nil {
		t.Fatal(err)
	}
	if s.DurationUs() != 0 {
		t.Fatalf("virtual-Z-only schedule should take no time, got %v", s.DurationUs())
	}
	if s.Instructions[0].Angle != 1.0 {
		t.Fatal("frame-change angle lost")
	}
}

func TestLowerRejectsUncompiled(t *testing.T) {
	c := circuit.New("h", 1)
	c.H(0)
	cal := backend.GenCalibration(backend.Line(1), backend.DefaultCalibModel(0), 1, 0, time.Time{})
	if _, err := Lower(c, cal); err == nil {
		t.Fatal("H is not in the pulse basis; should error")
	}
}

func TestBarrierSynchronizesChannels(t *testing.T) {
	c := circuit.New("sync", 2)
	c.X(0).Barrier().X(1)
	cal := backend.GenCalibration(backend.Line(2), backend.DefaultCalibModel(0), 1, 0, time.Time{})
	s, err := Lower(c, cal)
	if err != nil {
		t.Fatal(err)
	}
	// The second X must start after the first finishes.
	var second Instruction
	for _, in := range s.Instructions {
		if in.Channel == "d1" {
			second = in
		}
	}
	if second.StartUs < durXUs {
		t.Fatalf("barrier failed to synchronize: d1 starts at %v", second.StartUs)
	}
}

func TestNoisierCouplersGetLongerCR(t *testing.T) {
	// Two calibrations of the same line: higher CX error must lengthen
	// the CR pulse.
	topo := backend.Line(2)
	model := backend.DefaultCalibModel(0)
	var low, high *backend.Calibration
	lowErr, highErr := math.Inf(1), 0.0
	for epoch := 0; epoch < 40; epoch++ {
		cal := backend.GenCalibration(topo, model, 3, epoch, time.Time{})
		e := cal.CXError(0, 1, 0)
		if e < lowErr {
			lowErr, low = e, cal
		}
		if e > highErr {
			highErr, high = e, cal
		}
	}
	c := circuit.New("cx", 2)
	c.CX(0, 1)
	sLow, err := Lower(c, low)
	if err != nil {
		t.Fatal(err)
	}
	sHigh, err := Lower(c, high)
	if err != nil {
		t.Fatal(err)
	}
	if sHigh.DurationUs() <= sLow.DurationUs() {
		t.Fatalf("noisier coupler should need a longer CR pulse: %v vs %v",
			sHigh.DurationUs(), sLow.DurationUs())
	}
}

func TestResetLowering(t *testing.T) {
	c := circuit.New("rst", 1)
	c.X(0).Reset(0).Measure(0, 0)
	cal := backend.GenCalibration(backend.Line(1), backend.DefaultCalibModel(0), 1, 0, time.Time{})
	s, err := Lower(c, cal)
	if err != nil {
		t.Fatal(err)
	}
	if s.CountKind(KindReadout) != 2 { // reset readout + final measure
		t.Fatalf("readout count = %d, want 2", s.CountKind(KindReadout))
	}
}

func TestStaleDurationPenaltyNonTrivial(t *testing.T) {
	cc, _ := compiled(t, gens.QFTBench(4), "ibmq_toronto")
	m, _ := backend.FindMachine(backend.Fleet(), "ibmq_toronto")
	oldCal := m.CalibrationAt(time.Date(2021, 3, 12, 10, 0, 0, 0, time.UTC))
	newCal := m.CalibrationAt(time.Date(2021, 3, 15, 10, 0, 0, 0, time.UTC))
	pen, err := StaleDurationPenalty(cc, oldCal, newCal)
	if err != nil {
		t.Fatal(err)
	}
	if pen == 0 {
		t.Fatal("calibration change should move the schedule duration")
	}
	if math.Abs(pen) > 1.0 {
		t.Fatalf("penalty implausibly large: %v", pen)
	}
}

func TestScheduleSortedByStart(t *testing.T) {
	cc, cal := compiled(t, gens.QFTBench(4), "ibmq_guadalupe")
	s, err := Lower(cc, cal)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(s.Instructions); i++ {
		if s.Instructions[i].StartUs < s.Instructions[i-1].StartUs {
			t.Fatal("instructions not sorted by start time")
		}
	}
}
