package compile

import (
	"fmt"
	"math/rand"

	"qcloud/internal/circuit"
)

// CheckMap verifies/records whether every two-qubit gate touches a
// coupled physical pair. Before routing it records the violation count;
// after routing (Props["routed"] set) any violation is an error.
type CheckMap struct{}

// Name implements Pass.
func (CheckMap) Name() string { return "CheckMap" }

// Run implements Pass.
func (CheckMap) Run(ctx *Context) error {
	topo := ctx.Machine.Topo
	bad := 0
	for _, g := range ctx.Circ.Gates {
		if g.Op.IsTwoQubit() && !topo.HasEdge(g.Qubits[0], g.Qubits[1]) {
			bad++
		}
	}
	ctx.Props["unmapped_2q"] = bad
	if bad > 0 && ctx.Props["routed"] == 1 {
		return fmt.Errorf("%d two-qubit gates remain on uncoupled pairs after routing", bad)
	}
	return nil
}

// StochasticSwap routes the laid-out circuit: every two-qubit gate on
// an uncoupled pair gets a chain of SWAPs along a randomized shortest
// path. Trials full routing attempts are made with independent
// randomness and the one inserting the fewest SWAPs wins — the
// stochastic-trials structure of Qiskit's StochasticSwap, whose cost
// dominates Fig 5 at scale.
type StochasticSwap struct {
	Trials int
}

// Name implements Pass.
func (StochasticSwap) Name() string { return "StochasticSwap" }

// Run implements Pass.
func (p StochasticSwap) Run(ctx *Context) error {
	if ctx.Props["unmapped_2q"] == 0 {
		ctx.Props["routed"] = 1
		ctx.Props["swaps_inserted"] = 0
		return nil
	}
	trials := p.Trials
	if trials < 1 {
		trials = 1
	}
	var best *circuit.Circuit
	bestSwaps := -1
	for tr := 0; tr < trials; tr++ {
		r := rand.New(rand.NewSource(ctx.Rand.Int63()))
		routed, swaps := routeOnce(ctx, r)
		if bestSwaps == -1 || swaps < bestSwaps {
			best, bestSwaps = routed, swaps
		}
	}
	ctx.Circ = best
	ctx.Props["routed"] = 1
	ctx.Props["swaps_inserted"] = bestSwaps
	return nil
}

// routeOnce performs one full routing sweep with the given randomness,
// returning the routed circuit and the number of SWAPs inserted.
func routeOnce(ctx *Context, r *rand.Rand) (*circuit.Circuit, int) {
	topo := ctx.Machine.Topo
	dist := ctx.Distances()
	n := topo.N
	// l2p[v] is the current physical home of the datum that started on
	// physical qubit v (post-ApplyLayout labels); p2l is its inverse.
	l2p := make([]int, n)
	p2l := make([]int, n)
	for i := 0; i < n; i++ {
		l2p[i], p2l[i] = i, i
	}
	out := circuit.New(ctx.Circ.Name, n)
	out.NClbits = ctx.Circ.NClbits
	swaps := 0
	emitSwap := func(p1, p2 int) {
		out.Gates = append(out.Gates, circuit.Gate{Op: circuit.OpSWAP, Qubits: []int{p1, p2}, Clbit: -1})
		a, b := p2l[p1], p2l[p2]
		l2p[a], l2p[b] = p2, p1
		p2l[p1], p2l[p2] = b, a
		swaps++
	}
	scratch := make([]int, 0, 8)
	for _, g := range ctx.Circ.Gates {
		if g.Op.IsTwoQubit() {
			pa, pb := l2p[g.Qubits[0]], l2p[g.Qubits[1]]
			for dist[pa][pb] > 1 {
				// Step pa one hop toward pb along a random shortest path.
				scratch = scratch[:0]
				for _, nb := range topo.Neighbors(pa) {
					if dist[nb][pb] == dist[pa][pb]-1 {
						scratch = append(scratch, nb)
					}
				}
				next := scratch[r.Intn(len(scratch))]
				emitSwap(pa, next)
				pa = next
			}
			out.Gates = append(out.Gates, circuit.Gate{Op: g.Op, Qubits: []int{pa, pb}, Params: g.Params, Clbit: g.Clbit})
			continue
		}
		ng := g.Clone()
		for qi, q := range ng.Qubits {
			ng.Qubits[qi] = l2p[q]
		}
		out.Gates = append(out.Gates, ng)
	}
	return out, swaps
}
