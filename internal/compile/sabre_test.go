package compile

import (
	"testing"

	"qcloud/internal/circuit"
	"qcloud/internal/circuit/gens"
)

func TestSabreRoutesQFT(t *testing.T) {
	for _, machine := range []string{"ibmq_vigo", "ibmq_guadalupe", "ibmq_16_melbourne"} {
		m := fleetMachine(t, machine)
		res := compileOn(t, gens.QFT(min(5, m.NumQubits())), m, Options{Seed: 3, Router: "sabre"})
		assertRouted(t, res, m)
		if got := res.Circ.GateCounts()["measure"]; got != min(5, m.NumQubits()) {
			t.Fatalf("%s: measurements = %d", machine, got)
		}
	}
}

func TestSabreDeterministic(t *testing.T) {
	m := fleetMachine(t, "ibmq_guadalupe")
	a := compileOn(t, gens.QFT(6), m, Options{Seed: 4, Router: "sabre"})
	b := compileOn(t, gens.QFT(6), m, Options{Seed: 4, Router: "sabre"})
	if a.Circ.String() != b.Circ.String() {
		t.Fatal("sabre routing must be deterministic")
	}
}

func TestSabreZeroSwapsWhenEmbedded(t *testing.T) {
	m := fleetMachine(t, "ibmq_athens")
	c := circuit.New("line", 5)
	c.H(0).CX(0, 1).CX(1, 2).CX(2, 3).CX(3, 4).MeasureAll()
	res := compileOn(t, c, m, Options{Seed: 5, Router: "sabre"})
	if res.SwapsInserted != 0 {
		t.Fatalf("swaps = %d, want 0", res.SwapsInserted)
	}
}

func TestSabreNoWorseThanStochasticOnAverage(t *testing.T) {
	// SABRE's lookahead should insert no more swaps than greedy
	// shortest-path routing on dense circuits, summed over seeds.
	m := fleetMachine(t, "ibmq_guadalupe")
	totalSabre, totalStoch := 0, 0
	for seed := int64(0); seed < 6; seed++ {
		s := compileOn(t, gens.QFT(8), m, Options{Seed: seed, Router: "sabre", SkipCSP: true})
		st := compileOn(t, gens.QFT(8), m, Options{Seed: seed, Router: "stochastic", SkipCSP: true})
		totalSabre += s.SwapsInserted
		totalStoch += st.SwapsInserted
	}
	if totalSabre > totalStoch*13/10 {
		t.Fatalf("sabre swaps %d vs stochastic %d: lookahead should not be >30%% worse",
			totalSabre, totalStoch)
	}
}

func TestUnknownRouterRejected(t *testing.T) {
	m := fleetMachine(t, "ibmq_vigo")
	if _, err := Compile(gens.GHZ(3), m, nil, Options{Router: "teleport"}); err == nil {
		t.Fatal("unknown router should error")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
