package compile

import (
	"math"

	"qcloud/internal/circuit"
)

// SabreSwap is a lookahead swap router in the style of SABRE (Li,
// Ding, Xie — ASPLOS 2019), the algorithm that replaced StochasticSwap
// as Qiskit's default. Instead of routing each blocked gate greedily
// along a shortest path, it maintains the dependency front of the
// circuit and picks the swap that minimizes the summed distance of the
// front layer plus a discounted extended lookahead window.
//
// It exists alongside StochasticSwap so the routing ablation
// (BenchmarkAblationRouter) can compare swap counts and wall time; the
// paper's Fig 5 profiles StochasticSwap because that was Qiskit's
// default in the study period.
type SabreSwap struct {
	// Lookahead is the extended-set size (default 20).
	Lookahead int
	// DecayFactor penalizes swapping the same qubit repeatedly
	// (default 0.1 per recent use).
	DecayFactor float64
}

// Name implements Pass.
func (SabreSwap) Name() string { return "SabreSwap" }

// Run implements Pass.
func (p SabreSwap) Run(ctx *Context) error {
	if ctx.Props["unmapped_2q"] == 0 {
		ctx.Props["routed"] = 1
		ctx.Props["swaps_inserted"] = 0
		return nil
	}
	lookahead := p.Lookahead
	if lookahead <= 0 {
		lookahead = 20
	}
	decayFactor := p.DecayFactor
	if decayFactor <= 0 {
		decayFactor = 0.1
	}

	topo := ctx.Machine.Topo
	dist := ctx.Distances()
	n := topo.N
	gates := ctx.Circ.Gates

	// Wire structure: per-qubit ordered gate indices and a pointer to
	// the next unexecuted gate on that wire.
	wire := make([][]int, n)
	for gi, g := range gates {
		for _, q := range g.Qubits {
			wire[q] = append(wire[q], gi)
		}
	}
	ptr := make([]int, n)

	// Mapping: l2p[v] is the current physical home of the datum whose
	// post-layout label is v; p2l is the inverse.
	l2p := make([]int, n)
	p2l := make([]int, n)
	for i := 0; i < n; i++ {
		l2p[i], p2l[i] = i, i
	}

	out := circuit.New(ctx.Circ.Name, n)
	out.NClbits = ctx.Circ.NClbits
	swaps := 0
	executed := make([]bool, len(gates))
	decay := make([]float64, n)

	atFront := func(gi int) bool {
		for _, q := range gates[gi].Qubits {
			w := wire[q]
			if ptr[q] >= len(w) || w[ptr[q]] != gi {
				return false
			}
		}
		return true
	}
	// Terminal measurements are deferred to the end of the routed
	// circuit: emitting them as soon as their wire drains would put
	// unitaries (later swaps through the measured qubit) after the
	// measurement, leaving the deferred-measurement form. The datum is
	// tracked through subsequent swaps and measured wherever it ends up.
	type deferredMeasure struct {
		datum, clbit int
	}
	var deferred []deferredMeasure
	execute := func(gi int) {
		g := gates[gi]
		if g.Op == circuit.OpMeasure && ptr[g.Qubits[0]] == len(wire[g.Qubits[0]])-1 {
			deferred = append(deferred, deferredMeasure{datum: g.Qubits[0], clbit: g.Clbit})
			executed[gi] = true
			ptr[g.Qubits[0]]++
			return
		}
		ng := g.Clone()
		for qi, q := range ng.Qubits {
			ng.Qubits[qi] = l2p[q]
		}
		out.Gates = append(out.Gates, ng)
		executed[gi] = true
		for _, q := range g.Qubits {
			ptr[q]++
		}
	}
	emitSwap := func(pa, pb int) {
		out.Gates = append(out.Gates, circuit.Gate{Op: circuit.OpSWAP, Qubits: []int{pa, pb}, Clbit: -1})
		a, b := p2l[pa], p2l[pb]
		l2p[a], l2p[b] = pb, pa
		p2l[pa], p2l[pb] = b, a
		swaps++
		decay[pa] += decayFactor
		decay[pb] += decayFactor
	}

	// drain executes everything executable: 1q/measure/barrier at the
	// front of their wires, and 2q gates whose operands are adjacent.
	drain := func() (progress bool) {
		for again := true; again; {
			again = false
			for q := 0; q < n; q++ {
				for ptr[q] < len(wire[q]) {
					gi := wire[q][ptr[q]]
					if executed[gi] || !atFront(gi) {
						break
					}
					g := gates[gi]
					if g.Op.IsTwoQubit() {
						pa, pb := l2p[g.Qubits[0]], l2p[g.Qubits[1]]
						if dist[pa][pb] != 1 {
							break
						}
					}
					execute(gi)
					progress, again = true, true
				}
			}
		}
		return progress
	}

	// frontLayer returns the blocked 2q gates at the dependency front.
	frontLayer := func() []int {
		var front []int
		seen := make(map[int]bool)
		for q := 0; q < n; q++ {
			if ptr[q] >= len(wire[q]) {
				continue
			}
			gi := wire[q][ptr[q]]
			if seen[gi] || executed[gi] || !gates[gi].Op.IsTwoQubit() || !atFront(gi) {
				continue
			}
			seen[gi] = true
			front = append(front, gi)
		}
		return front
	}

	// extendedSet collects up to `lookahead` upcoming 2q gates beyond
	// the front for the discounted term of the heuristic.
	extendedSet := func(front []int) []int {
		inFront := make(map[int]bool, len(front))
		for _, gi := range front {
			inFront[gi] = true
		}
		var ext []int
		for q := 0; q < n && len(ext) < lookahead; q++ {
			w := wire[q]
			for k := ptr[q]; k < len(w) && k < ptr[q]+4 && len(ext) < lookahead; k++ {
				gi := w[k]
				if !executed[gi] && gates[gi].Op.IsTwoQubit() && !inFront[gi] {
					ext = append(ext, gi)
				}
			}
		}
		return ext
	}

	score := func(front, ext []int, trialL2P []int) float64 {
		s := 0.0
		for _, gi := range front {
			g := gates[gi]
			s += float64(dist[trialL2P[g.Qubits[0]]][trialL2P[g.Qubits[1]]])
		}
		if len(ext) > 0 {
			es := 0.0
			for _, gi := range ext {
				g := gates[gi]
				es += float64(dist[trialL2P[g.Qubits[0]]][trialL2P[g.Qubits[1]]])
			}
			s += 0.5 * es / float64(len(ext))
		}
		return s
	}

	trial := make([]int, n)
	for {
		drain()
		front := frontLayer()
		if len(front) == 0 {
			break
		}
		ext := extendedSet(front)
		// Candidate swaps: edges incident to a front-gate operand.
		cand := make(map[[2]int]bool)
		for _, gi := range front {
			for _, v := range gates[gi].Qubits {
				pq := l2p[v]
				for _, nb := range topo.Neighbors(pq) {
					e := [2]int{pq, nb}
					if e[0] > e[1] {
						e[0], e[1] = e[1], e[0]
					}
					cand[e] = true
				}
			}
		}
		bestScore := math.Inf(1)
		var best [2]int
		for e := range cand {
			copy(trial, l2p)
			a, b := p2l[e[0]], p2l[e[1]]
			trial[a], trial[b] = e[1], e[0]
			s := score(front, ext, trial) + decay[e[0]] + decay[e[1]]
			if s < bestScore || (s == bestScore && (e[0] < best[0] || (e[0] == best[0] && e[1] < best[1]))) {
				bestScore, best = s, e
			}
		}
		if math.IsInf(bestScore, 1) {
			// No candidate swap: the blocked pair is unreachable (the
			// coupling graph must be disconnected for these qubits).
			return errUnroutable(ctx, front[0])
		}
		emitSwap(best[0], best[1])
		// Periodically cool the decay so it biases recent history only.
		if swaps%10 == 0 {
			for i := range decay {
				decay[i] *= 0.5
			}
		}
	}
	for _, dm := range deferred {
		out.Gates = append(out.Gates, circuit.Gate{
			Op: circuit.OpMeasure, Qubits: []int{l2p[dm.datum]}, Clbit: dm.clbit,
		})
	}
	ctx.Circ = out
	ctx.Props["routed"] = 1
	ctx.Props["swaps_inserted"] = swaps
	return nil
}

func errUnroutable(ctx *Context, gi int) error {
	g := ctx.Circ.Gates[gi]
	return &unroutableError{gate: g.String()}
}

type unroutableError struct{ gate string }

func (e *unroutableError) Error() string {
	return "sabre: gate " + e.gate + " is unroutable on this coupling map"
}
