package compile

import (
	"math"

	"qcloud/internal/circuit"
)

// Depth records the circuit's current critical-path depth in the
// property set; the fixed-point loop uses it to detect convergence.
type Depth struct{}

// Name implements Pass.
func (Depth) Name() string { return "Depth" }

// Run implements Pass.
func (Depth) Run(ctx *Context) error {
	ctx.Props["depth"] = ctx.Circ.Depth()
	return nil
}

// FixedPoint records whether depth and size changed since its previous
// invocation, mirroring Qiskit's FixedPoint controller predicate.
type FixedPoint struct{}

// Name implements Pass.
func (FixedPoint) Name() string { return "FixedPoint" }

// Run implements Pass.
func (FixedPoint) Run(ctx *Context) error {
	d, s := ctx.Props["depth"], len(ctx.Circ.Gates)
	if d == ctx.Props["fp_prev_depth"] && s == ctx.Props["fp_prev_size"] {
		ctx.Props["fixed_point"] = 1
	} else {
		ctx.Props["fixed_point"] = 0
	}
	ctx.Props["fp_prev_depth"], ctx.Props["fp_prev_size"] = d, s
	return nil
}

// Collect2qBlocks counts maximal runs of consecutive gates confined to
// a single qubit pair (containing at least one two-qubit gate) and
// stores the count; ConsolidateBlocks uses the same scan to rewrite.
type Collect2qBlocks struct{}

// Name implements Pass.
func (Collect2qBlocks) Name() string { return "Collect2qBlocks" }

// Run implements Pass.
func (Collect2qBlocks) Run(ctx *Context) error {
	blocks := 0
	lastPair := [2]int{-1, -1}
	inBlock := false
	for _, g := range ctx.Circ.Gates {
		if g.Op.IsTwoQubit() {
			a, b := g.Qubits[0], g.Qubits[1]
			if a > b {
				a, b = b, a
			}
			pair := [2]int{a, b}
			if !inBlock || pair != lastPair {
				blocks++
				lastPair = pair
				inBlock = true
			}
			continue
		}
		if g.Op == circuit.OpBarrier || g.Op == circuit.OpMeasure || g.Op == circuit.OpReset {
			inBlock = false
		}
	}
	ctx.Props["blocks_2q"] = blocks
	return nil
}

// ConsolidateBlocks merges maximal runs of consecutive single-qubit
// unitaries on each qubit into one U gate (2x2 matrix product + ZYZ
// extraction). Identity products are dropped entirely.
type ConsolidateBlocks struct{}

// Name implements Pass.
func (ConsolidateBlocks) Name() string { return "ConsolidateBlocks" }

// Run implements Pass.
func (ConsolidateBlocks) Run(ctx *Context) error {
	gates := ctx.Circ.Gates
	out := make([]circuit.Gate, 0, len(gates))
	// Pending accumulated 1q unitary per qubit.
	type acc struct {
		m     mat2
		count int
	}
	pend := make(map[int]*acc)
	flush := func(q int) {
		a, ok := pend[q]
		if !ok {
			return
		}
		delete(pend, q)
		if a.m.IsIdentity() {
			return
		}
		theta, phi, lambda := zyzAngles(a.m)
		out = append(out, circuit.Gate{
			Op: circuit.OpU, Qubits: []int{q},
			Params: []float64{theta, phi, lambda}, Clbit: -1,
		})
	}
	for _, g := range gates {
		if len(g.Qubits) == 1 && g.Op.IsUnitary() {
			if m, ok := gateMat2(g); ok {
				q := g.Qubits[0]
				a, exists := pend[q]
				if !exists {
					a = &acc{m: identity2}
					pend[q] = a
				}
				a.m = m.Mul(a.m) // later gate multiplies on the left
				a.count++
				continue
			}
		}
		for _, q := range g.Qubits {
			flush(q)
		}
		out = append(out, g)
	}
	// Final flush: leftover rotations belong before the trailing
	// measurement/barrier suffix so the circuit keeps its terminal-
	// measure form (they can only involve unmeasured qubits, or they
	// would have been flushed by the measure).
	suffix := len(out)
	for suffix > 0 {
		op := out[suffix-1].Op
		if op != circuit.OpMeasure && op != circuit.OpBarrier {
			break
		}
		suffix--
	}
	tail := append([]circuit.Gate(nil), out[suffix:]...)
	out = out[:suffix]
	for q := 0; q < ctx.Circ.NQubits; q++ {
		flush(q)
	}
	out = append(out, tail...)
	ctx.Circ.Gates = out
	return nil
}

// UnitarySynthesis lowers U gates into the hardware basis: a pure-Z
// rotation becomes a single rz; anything else becomes the ZSXZSXZ
// five-gate sequence.
type UnitarySynthesis struct{}

// Name implements Pass.
func (UnitarySynthesis) Name() string { return "UnitarySynthesis" }

// Run implements Pass.
func (UnitarySynthesis) Run(ctx *Context) error {
	hasU := false
	for _, g := range ctx.Circ.Gates {
		if g.Op == circuit.OpU {
			hasU = true
			break
		}
	}
	if !hasU {
		return nil
	}
	out := make([]circuit.Gate, 0, len(ctx.Circ.Gates))
	rz := func(q int, th float64) circuit.Gate {
		return circuit.Gate{Op: circuit.OpRZ, Qubits: []int{q}, Params: []float64{th}, Clbit: -1}
	}
	sx := func(q int) circuit.Gate {
		return circuit.Gate{Op: circuit.OpSX, Qubits: []int{q}, Clbit: -1}
	}
	const eps = 1e-9
	for _, g := range ctx.Circ.Gates {
		if g.Op != circuit.OpU {
			out = append(out, g)
			continue
		}
		q := g.Qubits[0]
		theta, phi, lambda := g.Params[0], g.Params[1], g.Params[2]
		switch {
		case math.Abs(theta) < eps:
			if a := normAngle(phi + lambda); math.Abs(a) > eps {
				out = append(out, rz(q, a))
			}
		case math.Abs(theta-math.Pi/2) < eps:
			// U(π/2,φ,λ) = rz(λ-π/2)·sx·rz(φ+π/2): one sx suffices.
			if a := normAngle(lambda - math.Pi/2); math.Abs(a) > eps {
				out = append(out, rz(q, a))
			}
			out = append(out, sx(q))
			if a := normAngle(phi + math.Pi/2); math.Abs(a) > eps {
				out = append(out, rz(q, a))
			}
		default:
			out = append(out, rz(q, lambda), sx(q), rz(q, theta+math.Pi), sx(q), rz(q, phi+math.Pi))
		}
	}
	ctx.Circ.Gates = out
	return nil
}

// Optimize1qGates merges adjacent rz rotations, drops zero rotations,
// and cancels adjacent self-inverse pairs (x·x, h·h) — the cheap
// peephole layer under the full resynthesis of ConsolidateBlocks.
type Optimize1qGates struct{}

// Name implements Pass.
func (Optimize1qGates) Name() string { return "Optimize1qGates" }

// Run implements Pass.
func (Optimize1qGates) Run(ctx *Context) error {
	gates := ctx.Circ.Gates
	out := make([]circuit.Gate, 0, len(gates))
	last := make(map[int]int) // qubit -> index in out of last gate touching it
	const eps = 1e-10
	touch := func(g circuit.Gate, idx int) {
		for _, q := range g.Qubits {
			last[q] = idx
		}
	}
	for _, g := range gates {
		if len(g.Qubits) == 1 {
			q := g.Qubits[0]
			if li, ok := last[q]; ok && li >= 0 && li < len(out) {
				prev := &out[li]
				if prev.Op == circuit.OpRZ && g.Op == circuit.OpRZ && len(prev.Qubits) == 1 {
					a := normAngle(prev.Params[0] + g.Params[0])
					if math.Abs(a) < eps {
						// Net identity: remove the previous rz entirely.
						out = append(out[:li], out[li+1:]...)
						rebuildLast(out, last)
						continue
					}
					prev.Params = []float64{a}
					continue
				}
				selfInverse := (g.Op == circuit.OpX || g.Op == circuit.OpH) && prev.Op == g.Op && len(prev.Qubits) == 1
				if selfInverse {
					out = append(out[:li], out[li+1:]...)
					rebuildLast(out, last)
					continue
				}
			}
			if g.Op == circuit.OpRZ && math.Abs(normAngle(g.Params[0])) < eps {
				continue // rz(0)
			}
			if g.Op == circuit.OpI {
				continue
			}
		}
		out = append(out, g)
		touch(g, len(out)-1)
	}
	ctx.Circ.Gates = out
	return nil
}

// rebuildLast recomputes the last-touch index map after a splice.
func rebuildLast(out []circuit.Gate, last map[int]int) {
	for k := range last {
		delete(last, k)
	}
	for i, g := range out {
		for _, q := range g.Qubits {
			last[q] = i
		}
	}
}

// CommutationAnalysis counts commuting adjacent gate pairs per qubit
// wire; CommutativeCancellation consumes the same relations to cancel.
type CommutationAnalysis struct{}

// Name implements Pass.
func (CommutationAnalysis) Name() string { return "CommutationAnalysis" }

// Run implements Pass.
func (CommutationAnalysis) Run(ctx *Context) error {
	lastOnWire := make(map[int]circuit.Gate)
	commuting := 0
	for _, g := range ctx.Circ.Gates {
		for _, q := range g.Qubits {
			if prev, ok := lastOnWire[q]; ok && gatesCommuteOnWire(prev, g, q) {
				commuting++
			}
			lastOnWire[q] = g
		}
	}
	ctx.Props["commuting_pairs"] = commuting
	return nil
}

// gatesCommuteOnWire reports whether a and b commute when restricted to
// wire q, using the Z-diagonal / X-family classification.
func gatesCommuteOnWire(a, b circuit.Gate, q int) bool {
	return (diagonalOnWire(a, q) && diagonalOnWire(b, q)) ||
		(xFamilyOnWire(a, q) && xFamilyOnWire(b, q))
}

// diagonalOnWire reports whether g acts Z-diagonally on wire q (so it
// commutes with a CX control and with other diagonals).
func diagonalOnWire(g circuit.Gate, q int) bool {
	switch g.Op {
	case circuit.OpRZ, circuit.OpZ, circuit.OpS, circuit.OpSdg, circuit.OpT, circuit.OpTdg, circuit.OpCPhase, circuit.OpCZ:
		return true
	case circuit.OpCX:
		return g.Qubits[0] == q // control side acts diagonally
	default:
		return false
	}
}

// xFamilyOnWire reports whether g acts as an X-axis rotation on wire q
// (so it commutes with a CX target).
func xFamilyOnWire(g circuit.Gate, q int) bool {
	switch g.Op {
	case circuit.OpX, circuit.OpSX, circuit.OpRX:
		return true
	case circuit.OpCX:
		return g.Qubits[1] == q // target side acts as X
	default:
		return false
	}
}

// CommutativeCancellation cancels CX pairs with identical control and
// target that are separated only by gates commuting through the control
// (Z-diagonal) or the target (X-family).
type CommutativeCancellation struct{}

// Name implements Pass.
func (CommutativeCancellation) Name() string { return "CommutativeCancellation" }

// Run implements Pass.
func (CommutativeCancellation) Run(ctx *Context) error {
	gates := ctx.Circ.Gates
	keep := make([]bool, len(gates))
	for i := range keep {
		keep[i] = true
	}
	// pending[pair] = index of an open CX waiting for its twin. The
	// per-qubit index keeps invalidation O(1) amortized instead of
	// scanning every open pair per gate.
	pending := make(map[[2]int]int)
	byQubit := make(map[int][][2]int)
	invalidate := func(q int) {
		for _, pair := range byQubit[q] {
			delete(pending, pair)
		}
		byQubit[q] = byQubit[q][:0]
	}
	for i, g := range gates {
		if g.Op == circuit.OpCX {
			pair := [2]int{g.Qubits[0], g.Qubits[1]}
			if j, ok := pending[pair]; ok {
				keep[i], keep[j] = false, false
				delete(pending, pair)
				continue
			}
			// A CX invalidates pendings that share either qubit in a
			// non-commuting role; a CX on the same qubits in swapped
			// orientation blocks, as does any overlap.
			invalidate(g.Qubits[0])
			invalidate(g.Qubits[1])
			pending[pair] = i
			byQubit[pair[0]] = append(byQubit[pair[0]], pair)
			byQubit[pair[1]] = append(byQubit[pair[1]], pair)
			continue
		}
		if len(g.Qubits) == 1 {
			q := g.Qubits[0]
			blocked := false
			open := byQubit[q][:0] // prune pairs cancelled meanwhile
			for _, pair := range byQubit[q] {
				if _, ok := pending[pair]; !ok {
					continue
				}
				open = append(open, pair)
				if pair[0] == q && !diagonalOnWire(g, q) {
					blocked = true
				}
				if pair[1] == q && !xFamilyOnWire(g, q) {
					blocked = true
				}
			}
			byQubit[q] = open
			if blocked {
				invalidate(q)
			}
			continue
		}
		for _, q := range g.Qubits {
			invalidate(q)
		}
	}
	out := make([]circuit.Gate, 0, len(gates))
	removed := 0
	for i, g := range gates {
		if keep[i] {
			out = append(out, g)
		} else {
			removed++
		}
	}
	ctx.Props["cancelled_cx"] = removed
	ctx.Circ.Gates = out
	return nil
}

// RemoveDiagonalGatesBeforeMeasure drops Z-diagonal gates whose only
// effect precedes a computational-basis measurement, where they cannot
// change outcome statistics.
type RemoveDiagonalGatesBeforeMeasure struct{}

// Name implements Pass.
func (RemoveDiagonalGatesBeforeMeasure) Name() string { return "RemoveDiagonalGatesBeforeMeasure" }

// Run implements Pass.
func (RemoveDiagonalGatesBeforeMeasure) Run(ctx *Context) error {
	gates := ctx.Circ.Gates
	// nextIsMeasure[q] true while scanning backwards and the next thing
	// on q's wire is a measurement.
	nextIsMeasure := make([]bool, ctx.Circ.NQubits)
	keep := make([]bool, len(gates))
	for i := len(gates) - 1; i >= 0; i-- {
		g := gates[i]
		keep[i] = true
		switch {
		case g.Op == circuit.OpMeasure:
			nextIsMeasure[g.Qubits[0]] = true
		case g.Op == circuit.OpBarrier:
			// Barriers don't change outcomes; scan through them.
		case len(g.Qubits) == 1 && diagonalOnWire(g, g.Qubits[0]):
			if nextIsMeasure[g.Qubits[0]] {
				keep[i] = false
			}
		default:
			for _, q := range g.Qubits {
				nextIsMeasure[q] = false
			}
		}
	}
	out := make([]circuit.Gate, 0, len(gates))
	for i, g := range gates {
		if keep[i] {
			out = append(out, g)
		}
	}
	ctx.Circ.Gates = out
	return nil
}

// RemoveResetInZeroState deletes reset instructions on qubits that are
// still in their initial |0> state.
type RemoveResetInZeroState struct{}

// Name implements Pass.
func (RemoveResetInZeroState) Name() string { return "RemoveResetInZeroState" }

// Run implements Pass.
func (RemoveResetInZeroState) Run(ctx *Context) error {
	touched := make([]bool, ctx.Circ.NQubits)
	out := make([]circuit.Gate, 0, len(ctx.Circ.Gates))
	for _, g := range ctx.Circ.Gates {
		if g.Op == circuit.OpReset && !touched[g.Qubits[0]] {
			continue // reset of |0> is a no-op
		}
		if g.Op != circuit.OpBarrier {
			for _, q := range g.Qubits {
				touched[q] = true
			}
		}
		out = append(out, g)
	}
	ctx.Circ.Gates = out
	return nil
}

// BarrierBeforeFinalMeasurements inserts a barrier separating the final
// measurement layer from the computation, as hardware backends require.
type BarrierBeforeFinalMeasurements struct{}

// Name implements Pass.
func (BarrierBeforeFinalMeasurements) Name() string { return "BarrierBeforeFinalMeasurements" }

// Run implements Pass.
func (BarrierBeforeFinalMeasurements) Run(ctx *Context) error {
	gates := ctx.Circ.Gates
	// Find the suffix consisting only of measurements/barriers.
	split := len(gates)
	for split > 0 {
		op := gates[split-1].Op
		if op == circuit.OpMeasure || op == circuit.OpBarrier {
			split--
		} else {
			break
		}
	}
	if split == len(gates) {
		return nil // no final measurement layer
	}
	measured := make(map[int]bool)
	hasMeasure := false
	for _, g := range gates[split:] {
		if g.Op == circuit.OpMeasure {
			measured[g.Qubits[0]] = true
			hasMeasure = true
		}
	}
	if !hasMeasure {
		return nil
	}
	qs := make([]int, 0, len(measured))
	for q := range measured {
		qs = append(qs, q)
	}
	sortInts(qs)
	out := make([]circuit.Gate, 0, len(gates)+1)
	out = append(out, gates[:split]...)
	out = append(out, circuit.Gate{Op: circuit.OpBarrier, Qubits: qs, Clbit: -1})
	for _, g := range gates[split:] {
		if g.Op != circuit.OpBarrier {
			out = append(out, g)
		}
	}
	ctx.Circ.Gates = out
	return nil
}

// sortInts is a tiny insertion sort to avoid importing sort for one
// call site in the hot path.
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
