package compile

import (
	"testing"
	"time"

	"qcloud/internal/backend"
	"qcloud/internal/circuit"
	"qcloud/internal/circuit/gens"
)

func fleetMachine(t *testing.T, name string) *backend.Machine {
	t.Helper()
	m, err := backend.FindMachine(backend.Fleet(), name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func compileOn(t *testing.T, c *circuit.Circuit, m *backend.Machine, opts Options) *Result {
	t.Helper()
	cal := m.CalibrationAt(time.Date(2021, 3, 1, 12, 0, 0, 0, time.UTC))
	res, err := Compile(c, m, cal, opts)
	if err != nil {
		t.Fatalf("compile %s on %s: %v", c.Name, m.Name, err)
	}
	return res
}

// assertRouted checks every two-qubit gate touches a coupled pair and
// the circuit is in the hardware basis.
func assertRouted(t *testing.T, res *Result, m *backend.Machine) {
	t.Helper()
	for _, g := range res.Circ.Gates {
		if g.Op.IsTwoQubit() && !m.Topo.HasEdge(g.Qubits[0], g.Qubits[1]) {
			t.Fatalf("gate %v on uncoupled pair", g)
		}
		if !inBasis(g.Op) {
			t.Fatalf("gate %v not in hardware basis", g)
		}
	}
}

func TestCompileGHZOnLine(t *testing.T) {
	m := fleetMachine(t, "ibmq_athens")
	res := compileOn(t, gens.GHZ(5), m, Options{Seed: 1})
	assertRouted(t, res, m)
	// GHZ is a line-shaped interaction graph: a line machine embeds it
	// perfectly, so CSP should find a swap-free layout.
	if res.LayoutMethod != "CSPLayout" {
		t.Fatalf("layout method = %s, want CSPLayout", res.LayoutMethod)
	}
	if res.SwapsInserted != 0 {
		t.Fatalf("swaps = %d, want 0 for perfect embedding", res.SwapsInserted)
	}
	// All five measurements must survive compilation.
	if got := res.Circ.GateCounts()["measure"]; got != 5 {
		t.Fatalf("measurements = %d, want 5", got)
	}
}

func TestCompileQFTOnBowtie(t *testing.T) {
	m := fleetMachine(t, "ibmqx2")
	res := compileOn(t, gens.QFT(4), m, Options{Seed: 2})
	assertRouted(t, res, m)
	if res.Metrics.CXCount == 0 {
		t.Fatal("QFT should contain CX gates after compilation")
	}
}

func TestCompileQFTOnTShape(t *testing.T) {
	// K4 interaction graph cannot embed in the T-shape: routing must
	// insert swaps.
	m := fleetMachine(t, "ibmq_vigo")
	res := compileOn(t, gens.QFT(4), m, Options{Seed: 3})
	assertRouted(t, res, m)
	if res.SwapsInserted == 0 {
		t.Fatal("QFT(4) on a T-shape machine needs swaps")
	}
}

func TestCompileAdderUnrollsCCX(t *testing.T) {
	m := fleetMachine(t, "ibmq_16_melbourne")
	res := compileOn(t, gens.RippleCarryAdder(3), m, Options{Seed: 4})
	assertRouted(t, res, m)
	for _, g := range res.Circ.Gates {
		if g.Op == circuit.OpCCX {
			t.Fatal("CCX survived compilation")
		}
	}
}

func TestCompileDeterministic(t *testing.T) {
	m := fleetMachine(t, "ibmq_casablanca")
	a := compileOn(t, gens.QFT(5), m, Options{Seed: 77})
	b := compileOn(t, gens.QFT(5), m, Options{Seed: 77})
	if a.Circ.String() != b.Circ.String() {
		t.Fatal("same seed must give identical compilation")
	}
	if a.SwapsInserted != b.SwapsInserted {
		t.Fatal("swap counts differ across identical runs")
	}
}

func TestCompileTooWideFails(t *testing.T) {
	m := fleetMachine(t, "ibmq_athens")
	if _, err := Compile(gens.GHZ(6), m, nil, Options{}); err == nil {
		t.Fatal("6q circuit on 5q machine should fail")
	}
}

func TestCompileWithoutCalibration(t *testing.T) {
	// nil calibration: noise-adaptive layout is skipped, dense layout
	// takes over, compilation still succeeds.
	m := fleetMachine(t, "ibmq_vigo")
	res, err := Compile(gens.GHZ(4), m, nil, Options{Seed: 5, SkipCSP: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.LayoutMethod != "DenseLayout" {
		t.Fatalf("layout method = %s, want DenseLayout", res.LayoutMethod)
	}
	assertRouted(t, res, m)
}

func TestTimingsCoverPipeline(t *testing.T) {
	m := fleetMachine(t, "ibmq_bogota")
	res := compileOn(t, gens.QFT(4), m, Options{Seed: 6})
	want := []string{
		"Unroll3qOrMore", "RemoveResetInZeroState", "UnrollCustomDefinitions",
		"CSPLayout", "NoiseAdaptiveLayout", "DenseLayout", "TrivialLayout",
		"SetLayout", "FullAncillaAllocate", "EnlargeWithAncilla", "ApplyLayout",
		"CheckMap", "StochasticSwap", "BasisTranslator",
		"Depth", "Collect2qBlocks", "ConsolidateBlocks", "UnitarySynthesis",
		"Optimize1qGates", "CommutationAnalysis", "CommutativeCancellation",
		"RemoveDiagonalGatesBeforeMeasure", "FixedPoint",
		"BarrierBeforeFinalMeasurements",
	}
	have := make(map[string]bool)
	for _, tm := range res.Timings {
		have[tm.Name] = true
		if tm.Seconds < 0 {
			t.Fatalf("negative timing for %s", tm.Name)
		}
	}
	for _, name := range want {
		if !have[name] {
			t.Fatalf("pass %s missing from timings (have %v)", name, have)
		}
	}
	if res.TotalSeconds() <= 0 {
		t.Fatal("total compile time should be positive")
	}
}

func TestNoiseAdaptiveLayoutChangesWithCalibration(t *testing.T) {
	// Fig 12b: the same circuit compiled against two calibration cycles
	// can get different mappings. With heavy spatial error variation the
	// chosen region should eventually differ across epochs.
	m := fleetMachine(t, "ibmq_toronto")
	c := gens.QFT(4)
	base := time.Date(2021, 2, 1, 12, 0, 0, 0, time.UTC)
	first, err := Compile(c, m, m.CalibrationAt(base), Options{Seed: 9, SkipCSP: true})
	if err != nil {
		t.Fatal(err)
	}
	changed := false
	for day := 1; day <= 14 && !changed; day++ {
		cal := m.CalibrationAt(base.Add(time.Duration(day) * 24 * time.Hour))
		res, err := Compile(c, m, cal, Options{Seed: 9, SkipCSP: true})
		if err != nil {
			t.Fatal(err)
		}
		for i := range res.Layout {
			if res.Layout[i] != first.Layout[i] {
				changed = true
				break
			}
		}
	}
	if !changed {
		t.Fatal("noise-adaptive layout never changed across 14 calibration cycles")
	}
}

func TestMeasurementsPreservedOnAllWorkloads(t *testing.T) {
	m := fleetMachine(t, "ibmq_guadalupe")
	for _, c := range []*circuit.Circuit{
		gens.QFT(6),
		gens.GHZ(8),
		gens.BernsteinVazirani(6, 0b101101),
		gens.QAOAMaxCut(6, gens.RingEdges(6), 2),
	} {
		res := compileOn(t, c, m, Options{Seed: 11})
		want := c.GateCounts()["measure"]
		got := res.Circ.GateCounts()["measure"]
		if got != want {
			t.Fatalf("%s: measurements %d -> %d", c.Name, want, got)
		}
		assertRouted(t, res, m)
	}
}

func TestBarrierBeforeFinalMeasurePresent(t *testing.T) {
	m := fleetMachine(t, "ibmq_rome")
	res := compileOn(t, gens.GHZ(3), m, Options{Seed: 12})
	// Find the final barrier: it must precede all trailing measures.
	lastBarrier, firstMeasure := -1, -1
	for i, g := range res.Circ.Gates {
		if g.Op == circuit.OpBarrier {
			lastBarrier = i
		}
		if g.Op == circuit.OpMeasure && firstMeasure == -1 {
			firstMeasure = i
		}
	}
	if lastBarrier == -1 || firstMeasure == -1 || lastBarrier > firstMeasure {
		t.Fatalf("barrier %d / first measure %d misordered", lastBarrier, firstMeasure)
	}
}

func TestSwapFreeRouteKeepsOperandOrder(t *testing.T) {
	// A circuit already matching the coupling map routes with zero
	// swaps and identical 2q structure.
	m := fleetMachine(t, "ibmq_santiago")
	c := circuit.New("line", 5)
	c.H(0).CX(0, 1).CX(1, 2).CX(2, 3).CX(3, 4).MeasureAll()
	res := compileOn(t, c, m, Options{Seed: 13})
	if res.SwapsInserted != 0 {
		t.Fatalf("swaps = %d, want 0", res.SwapsInserted)
	}
	if got := res.Metrics.CXCount; got != 4 {
		t.Fatalf("CX count = %d, want 4", got)
	}
}
