package compile

import (
	"fmt"
	"sort"

	"qcloud/internal/backend"
	"qcloud/internal/circuit"
)

// interactionGraph returns the weighted logical-qubit interaction graph:
// weights[a][b] = number of two-qubit gates between a and b.
func interactionGraph(c *circuit.Circuit) map[[2]int]int {
	w := make(map[[2]int]int)
	for _, g := range c.Gates {
		if !g.Op.IsTwoQubit() {
			continue
		}
		a, b := g.Qubits[0], g.Qubits[1]
		if a > b {
			a, b = b, a
		}
		w[[2]int{a, b}]++
	}
	return w
}

// logicalAdjacency converts the interaction graph into per-qubit
// adjacency lists with weights.
func logicalAdjacency(k int, weights map[[2]int]int) [][]int {
	adj := make([][]int, k)
	for e := range weights {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	for q := range adj {
		sort.Ints(adj[q])
	}
	return adj
}

// TrivialLayout maps logical qubit i to physical qubit i. It is the
// last-resort layout and only runs if no earlier pass chose one.
type TrivialLayout struct{}

// Name implements Pass.
func (TrivialLayout) Name() string { return "TrivialLayout" }

// Run implements Pass.
func (TrivialLayout) Run(ctx *Context) error {
	if ctx.Layout != nil {
		return nil
	}
	layout := make([]int, ctx.Circ.NQubits)
	phys := 0
	for i := range layout {
		for phys < ctx.Machine.NumQubits() && ctx.IsExcluded(phys) {
			phys++
		}
		if phys >= ctx.Machine.NumQubits() {
			return fmt.Errorf("trivial layout: not enough free physical qubits")
		}
		layout[i] = phys
		phys++
	}
	ctx.Layout = layout
	ctx.Props["layout_method"] = layoutTrivial
	return nil
}

// growRegion grows a connected region of k physical qubits from seed,
// greedily adding the candidate with the highest accumulated gain.
// edgeScore scores each new internal coupler; nodeScore scores the
// vertex itself. Gains are maintained incrementally so a full growth is
// O(k · degree) plus candidate scans. Returns nil if the component is
// smaller than k.
func growRegion(topo *backend.Topology, k, seed int, edgeScore func(a, b int) float64, nodeScore func(v int) float64) []int {
	in := make([]bool, topo.N)
	in[seed] = true
	members := []int{seed}
	gain := make(map[int]float64)
	addCandidatesOf := func(v int) {
		for _, nb := range topo.Neighbors(v) {
			if in[nb] {
				continue
			}
			if _, ok := gain[nb]; !ok {
				gain[nb] = nodeScore(nb)
			}
			gain[nb] += edgeScore(nb, v)
		}
	}
	addCandidatesOf(seed)
	for len(members) < k {
		bestV := -1
		bestG := 0.0
		for v, g := range gain {
			if bestV == -1 || g > bestG || (g == bestG && v < bestV) {
				bestV, bestG = v, g
			}
		}
		if bestV == -1 {
			return nil
		}
		delete(gain, bestV)
		in[bestV] = true
		members = append(members, bestV)
		addCandidatesOf(bestV)
	}
	return members
}

// regionSeeds returns the seeds to try for region growth: every qubit
// on small machines, a deterministic stride sample on large ones.
func regionSeeds(n int) []int {
	const maxSeeds = 48
	if n <= maxSeeds {
		seeds := make([]int, n)
		for i := range seeds {
			seeds[i] = i
		}
		return seeds
	}
	seeds := make([]int, 0, maxSeeds)
	stride := n / maxSeeds
	for s := 0; s < n && len(seeds) < maxSeeds; s += stride {
		seeds = append(seeds, s)
	}
	return seeds
}

// regionEdgeStats returns internal edge count and summed CX error of a
// region.
func regionEdgeStats(topo *backend.Topology, cal *backend.Calibration, region []int) (edges int, errSum float64) {
	in := make(map[int]bool, len(region))
	for _, p := range region {
		in[p] = true
	}
	for _, e := range topo.Edges {
		if in[e[0]] && in[e[1]] {
			edges++
			if cal != nil {
				errSum += cal.CXError(e[0], e[1], 0.5)
			}
		}
	}
	return edges, errSum
}

// DenseLayout finds a densely connected physical subregion of the
// machine with as many internal couplers as possible, by greedy growth
// from multiple seeds, and assigns logical qubits to it in interaction
// order.
type DenseLayout struct{}

// Name implements Pass.
func (DenseLayout) Name() string { return "DenseLayout" }

// Run implements Pass.
func (DenseLayout) Run(ctx *Context) error {
	if ctx.Layout != nil {
		return nil
	}
	k := ctx.Circ.NQubits
	topo := ctx.Machine.Topo
	edgeScore := func(a, b int) float64 { return 1 }
	nodeScore := func(v int) float64 { return 0 }
	bestEdges := -1
	var best []int
	for _, seed := range regionSeeds(topo.N) {
		if ctx.IsExcluded(seed) {
			continue
		}
		region := growRegion(topo, k, seed, edgeScore, nodeScore)
		if region == nil {
			continue
		}
		edges, _ := regionEdgeStats(topo, nil, region)
		if edges > bestEdges {
			bestEdges, best = edges, region
		}
	}
	if best == nil {
		// Disconnected machine smaller fragments; fall back to the
		// first k free qubits and let routing fail loudly if truly
		// invalid.
		best = make([]int, 0, k)
		for q := 0; q < topo.N && len(best) < k; q++ {
			if !ctx.IsExcluded(q) {
				best = append(best, q)
			}
		}
	}
	ctx.Layout = assignByInteraction(ctx.Circ, topo, best, ctx.excluded)
	ctx.Props["layout_method"] = layoutDense
	return nil
}

// NoiseAdaptiveLayout is DenseLayout with calibration awareness: region
// growth is scored by coupler quality and readout error, so the chosen
// mapping tracks the current calibration. Re-running it after a
// recalibration can yield a different mapping — the staleness effect of
// the paper's Fig 12b. It runs only when a calibration is present.
type NoiseAdaptiveLayout struct{}

// Name implements Pass.
func (NoiseAdaptiveLayout) Name() string { return "NoiseAdaptiveLayout" }

// Run implements Pass.
func (NoiseAdaptiveLayout) Run(ctx *Context) error {
	if ctx.Layout != nil || ctx.Calib == nil {
		return nil
	}
	k := ctx.Circ.NQubits
	topo := ctx.Machine.Topo
	cal := ctx.Calib
	if k > topo.N {
		return fmt.Errorf("layout: circuit wider than machine")
	}
	edgeScore := func(a, b int) float64 { return 1 - 10*cal.CXError(a, b, 0.5) }
	nodeScore := func(v int) float64 { return -2 * cal.ErrRO[v] }
	bestScore := 0.0
	var best []int
	for _, seed := range regionSeeds(topo.N) {
		if ctx.IsExcluded(seed) {
			continue
		}
		region := growRegion(topo, k, seed, edgeScore, nodeScore)
		if region == nil {
			continue
		}
		edges, errSum := regionEdgeStats(topo, cal, region)
		score := float64(edges)
		if edges > 0 {
			score -= 20 * errSum / float64(edges)
		}
		if best == nil || score > bestScore {
			bestScore, best = score, region
		}
	}
	if best == nil {
		return nil // let DenseLayout handle it
	}
	ctx.Layout = assignByInteractionNoise(ctx.Circ, topo, cal, best, ctx.excluded)
	ctx.Props["layout_method"] = layoutNoise
	return nil
}

// assignByInteraction places the most-interacting logical qubits on the
// best-connected physical qubits of the region, preferring physical
// neighbors of already-placed partners. Only the most recently placed
// partners are consulted (capped) so dense interaction graphs stay
// tractable.
func assignByInteraction(c *circuit.Circuit, topo *backend.Topology, region []int, excluded []bool) []int {
	return assignCore(c, topo, nil, region, excluded)
}

// assignByInteractionNoise is assignByInteraction with CX-error-aware
// scoring.
func assignByInteractionNoise(c *circuit.Circuit, topo *backend.Topology, cal *backend.Calibration, region []int, excluded []bool) []int {
	return assignCore(c, topo, cal, region, excluded)
}

func assignCore(c *circuit.Circuit, topo *backend.Topology, cal *backend.Calibration, region []int, excluded []bool) []int {
	const partnerCap = 16
	k := c.NQubits
	weights := interactionGraph(c)
	ladj := logicalAdjacency(k, weights)
	degree := make([]int, k)
	for e, w := range weights {
		degree[e[0]] += w
		degree[e[1]] += w
	}
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if degree[order[a]] != degree[order[b]] {
			return degree[order[a]] > degree[order[b]]
		}
		return order[a] < order[b]
	})

	// Free region qubits sorted by in-region degree (fallback choice).
	inRegion := make(map[int]bool, len(region))
	for _, p := range region {
		inRegion[p] = true
	}
	regDeg := func(p int) int {
		d := 0
		for _, nb := range topo.Neighbors(p) {
			if inRegion[nb] {
				d++
			}
		}
		return d
	}
	fallback := append([]int(nil), region...)
	sort.Slice(fallback, func(a, b int) bool {
		da, db := regDeg(fallback[a]), regDeg(fallback[b])
		if da != db {
			return da > db
		}
		return fallback[a] < fallback[b]
	})

	usedPhys := make(map[int]bool, k)
	layout := make([]int, k)
	for i := range layout {
		layout[i] = -1
	}
	fbNext := 0
	for _, lq := range order {
		// Candidates: free neighbors of recently placed partners.
		type cand struct {
			p     int
			score float64
		}
		var cands []cand
		partners := 0
		for i := len(ladj[lq]) - 1; i >= 0 && partners < partnerCap; i-- {
			partner := ladj[lq][i]
			pp := layout[partner]
			if pp == -1 {
				continue
			}
			partners++
			key := [2]int{lq, partner}
			if key[0] > key[1] {
				key[0], key[1] = key[1], key[0]
			}
			w := float64(weights[key])
			for _, nb := range topo.Neighbors(pp) {
				if usedPhys[nb] || !inRegion[nb] {
					continue
				}
				s := 10 * w
				if cal != nil {
					s *= 1 - cal.CXError(pp, nb, 0.5)
				}
				cands = append(cands, cand{p: nb, score: s})
			}
		}
		bestP := -1
		if len(cands) > 0 {
			// Merge duplicate candidates and pick the best score
			// (ties to the smallest physical index).
			agg := make(map[int]float64)
			for _, cd := range cands {
				agg[cd.p] += cd.score
			}
			bestS := -1.0
			for p, s := range agg {
				if s > bestS || (s == bestS && p < bestP) {
					bestP, bestS = p, s
				}
			}
		}
		if bestP == -1 {
			for fbNext < len(fallback) && usedPhys[fallback[fbNext]] {
				fbNext++
			}
			if fbNext < len(fallback) {
				bestP = fallback[fbNext]
			} else {
				// Region exhausted (shouldn't happen): any free,
				// non-excluded qubit.
				for p := 0; p < topo.N; p++ {
					if !usedPhys[p] && !(p < len(excluded) && excluded[p]) {
						bestP = p
						break
					}
				}
			}
		}
		usedPhys[bestP] = true
		layout[lq] = bestP
	}
	return layout
}

// CSPLayout searches for a perfect embedding of the circuit's
// interaction graph into the coupling map (subgraph monomorphism) via
// backtracking, bounded by a node budget, like Qiskit's CSPLayout with
// its call/time limit. If it succeeds, routing needs no swaps; if the
// budget is exhausted — the common case for dense circuits, where the
// search burns its entire limit before giving up, which is why this
// pass tops the paper's Fig 5 — later layout passes take over. No
// degree-based pruning is done, faithful to the unpruned constraint
// solver Qiskit delegates to.
type CSPLayout struct {
	// Budget caps visited search nodes; 0 scales with machine size
	// (50·N² candidate visits).
	Budget int
}

// Name implements Pass.
func (CSPLayout) Name() string { return "CSPLayout" }

// Run implements Pass.
func (p CSPLayout) Run(ctx *Context) error {
	if ctx.Layout != nil {
		return nil
	}
	k := ctx.Circ.NQubits
	topo := ctx.Machine.Topo
	weights := interactionGraph(ctx.Circ)
	if len(weights) == 0 {
		return nil // no constraints; cheaper passes will pick a layout
	}
	ladj := logicalAdjacency(k, weights)
	order := make([]int, 0, k)
	for q := 0; q < k; q++ {
		if len(ladj[q]) > 0 {
			order = append(order, q)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		if len(ladj[order[a]]) != len(ladj[order[b]]) {
			return len(ladj[order[a]]) > len(ladj[order[b]])
		}
		return order[a] < order[b]
	})

	budget := p.Budget
	if budget <= 0 {
		budget = 50 * topo.N * topo.N
	}
	assign := make([]int, k)
	for i := range assign {
		assign[i] = -1
	}
	usedPhys := make([]bool, topo.N)
	var search func(idx int) bool
	search = func(idx int) bool {
		if budget <= 0 {
			return false
		}
		if idx == len(order) {
			return true
		}
		lq := order[idx]
		for phys := 0; phys < topo.N; phys++ {
			if usedPhys[phys] || ctx.IsExcluded(phys) {
				continue
			}
			budget--
			if budget <= 0 {
				return false
			}
			ok := true
			for _, partner := range ladj[lq] {
				if pp := assign[partner]; pp != -1 && !topo.HasEdge(phys, pp) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			assign[lq] = phys
			usedPhys[phys] = true
			if search(idx + 1) {
				return true
			}
			assign[lq] = -1
			usedPhys[phys] = false
		}
		return false
	}
	if !search(0) {
		return nil // no perfect embedding found within budget
	}
	// Place interaction-free logical qubits on any free physical qubit.
	next := 0
	for q := 0; q < k; q++ {
		if assign[q] != -1 {
			continue
		}
		for usedPhys[next] || ctx.IsExcluded(next) {
			next++
		}
		assign[q] = next
		usedPhys[next] = true
	}
	ctx.Layout = assign
	ctx.Props["layout_method"] = layoutCSP
	return nil
}

// SetLayout records the chosen layout into the property set (a
// bookkeeping pass in Qiskit; here it validates the invariants).
type SetLayout struct{}

// Name implements Pass.
func (SetLayout) Name() string { return "SetLayout" }

// Run implements Pass.
func (SetLayout) Run(ctx *Context) error {
	if ctx.Layout == nil {
		return fmt.Errorf("no layout chosen")
	}
	seen := make(map[int]bool, len(ctx.Layout))
	for lq, p := range ctx.Layout {
		if p < 0 || p >= ctx.Machine.NumQubits() {
			return fmt.Errorf("layout maps logical %d to invalid physical %d", lq, p)
		}
		if seen[p] {
			return fmt.Errorf("layout maps two logical qubits to physical %d", p)
		}
		seen[p] = true
	}
	ctx.Props["layout_set"] = 1
	return nil
}

// FullAncillaAllocate extends the layout with the machine's unused
// physical qubits as ancillas.
type FullAncillaAllocate struct{}

// Name implements Pass.
func (FullAncillaAllocate) Name() string { return "FullAncillaAllocate" }

// Run implements Pass.
func (FullAncillaAllocate) Run(ctx *Context) error {
	used := make([]bool, ctx.Machine.NumQubits())
	for _, p := range ctx.Layout {
		used[p] = true
	}
	ancillas := 0
	for _, u := range used {
		if !u {
			ancillas++
		}
	}
	ctx.Props["ancillas"] = ancillas
	return nil
}

// EnlargeWithAncilla widens the circuit register to the machine size so
// ApplyLayout can relabel in place.
type EnlargeWithAncilla struct{}

// Name implements Pass.
func (EnlargeWithAncilla) Name() string { return "EnlargeWithAncilla" }

// Run implements Pass.
func (EnlargeWithAncilla) Run(ctx *Context) error {
	if ctx.Circ.NQubits < ctx.Machine.NumQubits() {
		ctx.Circ.NQubits = ctx.Machine.NumQubits()
	}
	return nil
}

// ApplyLayout rewrites every gate's qubit operands from logical to
// physical indices.
type ApplyLayout struct{}

// Name implements Pass.
func (ApplyLayout) Name() string { return "ApplyLayout" }

// Run implements Pass.
func (ApplyLayout) Run(ctx *Context) error {
	if ctx.Applied {
		return nil
	}
	for gi := range ctx.Circ.Gates {
		g := &ctx.Circ.Gates[gi]
		for qi, q := range g.Qubits {
			if q < len(ctx.Layout) {
				g.Qubits[qi] = ctx.Layout[q]
			}
		}
	}
	ctx.Applied = true
	return nil
}
