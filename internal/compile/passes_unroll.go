package compile

import (
	"fmt"
	"math"

	"qcloud/internal/circuit"
)

// Unroll3qOrMore decomposes three-qubit gates (CCX) into the textbook
// six-CX network so downstream passes only see 1q/2q operations.
type Unroll3qOrMore struct{}

// Name implements Pass.
func (Unroll3qOrMore) Name() string { return "Unroll3qOrMore" }

// Run implements Pass.
func (Unroll3qOrMore) Run(ctx *Context) error {
	hasCCX := false
	for _, g := range ctx.Circ.Gates {
		if g.Op == circuit.OpCCX {
			hasCCX = true
			break
		}
	}
	if !hasCCX {
		return nil
	}
	out := make([]circuit.Gate, 0, len(ctx.Circ.Gates))
	g1 := func(op circuit.Op, q int) circuit.Gate {
		return circuit.Gate{Op: op, Qubits: []int{q}, Clbit: -1}
	}
	g2 := func(op circuit.Op, a, b int) circuit.Gate {
		return circuit.Gate{Op: op, Qubits: []int{a, b}, Clbit: -1}
	}
	for _, g := range ctx.Circ.Gates {
		if g.Op != circuit.OpCCX {
			out = append(out, g)
			continue
		}
		a, b, t := g.Qubits[0], g.Qubits[1], g.Qubits[2]
		out = append(out,
			g1(circuit.OpH, t),
			g2(circuit.OpCX, b, t),
			g1(circuit.OpTdg, t),
			g2(circuit.OpCX, a, t),
			g1(circuit.OpT, t),
			g2(circuit.OpCX, b, t),
			g1(circuit.OpTdg, t),
			g2(circuit.OpCX, a, t),
			g1(circuit.OpT, b),
			g1(circuit.OpT, t),
			g1(circuit.OpH, t),
			g2(circuit.OpCX, a, b),
			g1(circuit.OpT, a),
			g1(circuit.OpTdg, b),
			g2(circuit.OpCX, a, b),
		)
	}
	ctx.Circ.Gates = out
	return nil
}

// UnrollCustomDefinitions validates that every op in the circuit has a
// known definition in this compiler (the Qiskit pass resolves custom
// gates; our IR has no custom gates, so the check is a guard).
type UnrollCustomDefinitions struct{}

// Name implements Pass.
func (UnrollCustomDefinitions) Name() string { return "UnrollCustomDefinitions" }

// Run implements Pass.
func (UnrollCustomDefinitions) Run(ctx *Context) error {
	for _, g := range ctx.Circ.Gates {
		switch g.Op {
		case circuit.OpI, circuit.OpX, circuit.OpY, circuit.OpZ, circuit.OpH,
			circuit.OpS, circuit.OpSdg, circuit.OpT, circuit.OpTdg, circuit.OpSX,
			circuit.OpRX, circuit.OpRY, circuit.OpRZ, circuit.OpU,
			circuit.OpCX, circuit.OpCZ, circuit.OpCPhase, circuit.OpSWAP,
			circuit.OpCCX, circuit.OpMeasure, circuit.OpReset, circuit.OpBarrier:
		default:
			return fmt.Errorf("unknown op %v", g.Op)
		}
	}
	return nil
}

// BasisTranslator rewrites every gate into the IBM hardware basis
// {rz, sx, x, cx} (plus measure/reset/barrier), iterating until no
// non-basis op remains.
type BasisTranslator struct{}

// Name implements Pass.
func (BasisTranslator) Name() string { return "BasisTranslator" }

// inBasis reports whether op needs no further translation.
func inBasis(op circuit.Op) bool {
	switch op {
	case circuit.OpRZ, circuit.OpSX, circuit.OpX, circuit.OpCX,
		circuit.OpMeasure, circuit.OpReset, circuit.OpBarrier:
		return true
	default:
		return false
	}
}

// Run implements Pass.
func (BasisTranslator) Run(ctx *Context) error {
	for round := 0; round < 4; round++ {
		done := true
		for _, g := range ctx.Circ.Gates {
			if !inBasis(g.Op) {
				done = false
				break
			}
		}
		if done {
			return nil
		}
		out := make([]circuit.Gate, 0, len(ctx.Circ.Gates)*2)
		for _, g := range ctx.Circ.Gates {
			out = translateGate(out, g)
		}
		ctx.Circ.Gates = out
	}
	for _, g := range ctx.Circ.Gates {
		if !inBasis(g.Op) {
			return fmt.Errorf("op %v not translatable to basis", g.Op)
		}
	}
	return nil
}

// translateGate appends the basis expansion of g to out. Expansions are
// exact up to global phase.
func translateGate(out []circuit.Gate, g circuit.Gate) []circuit.Gate {
	rz := func(q int, th float64) circuit.Gate {
		return circuit.Gate{Op: circuit.OpRZ, Qubits: []int{q}, Params: []float64{th}, Clbit: -1}
	}
	sx := func(q int) circuit.Gate {
		return circuit.Gate{Op: circuit.OpSX, Qubits: []int{q}, Clbit: -1}
	}
	cx := func(a, b int) circuit.Gate {
		return circuit.Gate{Op: circuit.OpCX, Qubits: []int{a, b}, Clbit: -1}
	}
	// emitU3 appends U(θ,φ,λ) as rz(λ)·sx·rz(θ+π)·sx·rz(φ+π), Qiskit's
	// ZSXZSXZ identity (first-listed gate applies first).
	emitU3 := func(q int, theta, phi, lambda float64) {
		out = append(out, rz(q, lambda), sx(q), rz(q, theta+math.Pi), sx(q), rz(q, phi+math.Pi))
	}
	q := g.Qubits
	switch g.Op {
	case circuit.OpI:
		// dropped
	case circuit.OpX, circuit.OpSX, circuit.OpRZ, circuit.OpCX,
		circuit.OpMeasure, circuit.OpReset, circuit.OpBarrier:
		out = append(out, g)
	case circuit.OpY:
		// Y = X·Z up to global phase.
		out = append(out, rz(q[0], math.Pi), circuit.Gate{Op: circuit.OpX, Qubits: []int{q[0]}, Clbit: -1})
	case circuit.OpZ:
		out = append(out, rz(q[0], math.Pi))
	case circuit.OpS:
		out = append(out, rz(q[0], math.Pi/2))
	case circuit.OpSdg:
		out = append(out, rz(q[0], -math.Pi/2))
	case circuit.OpT:
		out = append(out, rz(q[0], math.Pi/4))
	case circuit.OpTdg:
		out = append(out, rz(q[0], -math.Pi/4))
	case circuit.OpH:
		// H = U(π/2, 0, π): rz(π) sx rz(3π/2)·... via emitU3.
		emitU3(q[0], math.Pi/2, 0, math.Pi)
	case circuit.OpRX:
		emitU3(q[0], g.Params[0], -math.Pi/2, math.Pi/2)
	case circuit.OpRY:
		emitU3(q[0], g.Params[0], 0, 0)
	case circuit.OpU:
		emitU3(q[0], g.Params[0], g.Params[1], g.Params[2])
	case circuit.OpCZ:
		// CZ = (I⊗H)·CX·(I⊗H).
		emitU3(q[1], math.Pi/2, 0, math.Pi)
		out = append(out, cx(q[0], q[1]))
		emitU3(q[1], math.Pi/2, 0, math.Pi)
	case circuit.OpCPhase:
		th := g.Params[0]
		out = append(out,
			rz(q[0], th/2),
			cx(q[0], q[1]),
			rz(q[1], -th/2),
			cx(q[0], q[1]),
			rz(q[1], th/2),
		)
	case circuit.OpSWAP:
		out = append(out, cx(q[0], q[1]), cx(q[1], q[0]), cx(q[0], q[1]))
	case circuit.OpCCX:
		// Normally handled by Unroll3qOrMore; expand via that identity
		// by reusing the single-gate path: decompose to H/T/CX first.
		tmp := &Unroll3qOrMore{}
		cc := &circuit.Circuit{NQubits: maxQubit(g.Qubits) + 1, Gates: []circuit.Gate{g}}
		cctx := &Context{Circ: cc}
		_ = tmp.Run(cctx)
		for _, sub := range cc.Gates {
			out = translateGate(out, sub)
		}
	}
	return out
}

func maxQubit(qs []int) int {
	m := 0
	for _, q := range qs {
		if q > m {
			m = q
		}
	}
	return m
}
