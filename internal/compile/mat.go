package compile

import "qcloud/internal/circuit"

// Thin aliases over the shared matrix machinery in the circuit package,
// keeping the pass implementations readable.

type mat2 = circuit.Mat2

var identity2 = circuit.Identity2

func gateMat2(g circuit.Gate) (mat2, bool) { return circuit.GateMat2(g) }

func u3Mat(theta, phi, lambda float64) mat2 { return circuit.U3Mat(theta, phi, lambda) }

func zyzAngles(u mat2) (theta, phi, lambda float64) { return circuit.ZYZAngles(u) }

func normAngle(a float64) float64 { return circuit.NormAngle(a) }
