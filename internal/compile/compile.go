// Package compile implements a pass-based quantum transpiler modeled on
// the Qiskit level-3 pipeline the paper profiles in Fig 5. Every pass
// is individually wall-clock timed, so CompilePassProfile can reproduce
// the per-pass cost comparison between a 64-qubit and a ~1000-qubit
// compilation.
//
// The pipeline: three-qubit unrolling, layout selection (CSP search
// with fallback to noise-adaptive or dense subgraph), ancilla
// allocation and layout application, stochastic swap routing, basis
// translation to the IBM {rz, sx, x, cx} basis, and a fixed-point
// optimization loop (1q resynthesis, commutative cancellation, diagonal
// gate removal).
package compile

import (
	"fmt"
	"math/rand"
	"time"

	"qcloud/internal/backend"
	"qcloud/internal/circuit"
)

// Pass is one transpilation stage. Run mutates the Context in place.
type Pass interface {
	Name() string
	Run(ctx *Context) error
}

// Context is the mutable state threaded through the pass pipeline.
type Context struct {
	// Circ is the circuit being transformed. Before ApplyLayout it is
	// logical-width; after, machine-width with physical indices.
	Circ *circuit.Circuit
	// Machine is the compilation target.
	Machine *backend.Machine
	// Calib is the calibration snapshot used by noise-aware passes
	// (may be nil, in which case noise-aware passes fall back).
	Calib *backend.Calibration
	// Layout maps logical qubit -> physical qubit once a layout pass
	// has run.
	Layout []int
	// Applied records whether ApplyLayout has rewritten the circuit to
	// physical indices.
	Applied bool
	// Rand drives the stochastic passes deterministically.
	Rand *rand.Rand
	// Props accumulates analysis-pass results (depth, block counts...).
	Props map[string]int
	// excluded marks physical qubits no pass may assign or route onto.
	excluded []bool
	// dists caches the machine's all-pairs distances.
	dists [][]int
}

// IsExcluded reports whether physical qubit q is off-limits.
func (ctx *Context) IsExcluded(q int) bool {
	return q < len(ctx.excluded) && ctx.excluded[q]
}

// Distances returns (and caches) the machine's all-pairs hop distances.
func (ctx *Context) Distances() [][]int {
	if ctx.dists == nil {
		ctx.dists = ctx.Machine.Topo.Distances()
	}
	return ctx.dists
}

// PassTiming records the cumulative wall time spent in one named pass.
type PassTiming struct {
	Name    string
	Seconds float64
}

// Result is the outcome of a full compilation.
type Result struct {
	// Circ is the physical circuit in the target basis.
	Circ *circuit.Circuit
	// Layout is the initial logical->physical mapping chosen.
	Layout []int
	// Timings lists cumulative per-pass wall time in pipeline order.
	Timings []PassTiming
	// Metrics are the structural metrics of the compiled circuit.
	Metrics circuit.Metrics
	// SwapsInserted counts SWAP gates added by routing.
	SwapsInserted int
	// LayoutMethod names the layout pass that produced Layout.
	LayoutMethod string
}

// TotalSeconds returns the summed wall time across all passes.
func (r *Result) TotalSeconds() float64 {
	total := 0.0
	for _, t := range r.Timings {
		total += t.Seconds
	}
	return total
}

// TimingFor returns the cumulative seconds spent in the named pass.
func (r *Result) TimingFor(name string) float64 {
	for _, t := range r.Timings {
		if t.Name == name {
			return t.Seconds
		}
	}
	return 0
}

// Options tunes the pipeline.
type Options struct {
	// Seed drives stochastic passes; the same seed reproduces the same
	// compilation byte for byte.
	Seed int64
	// RoutingTrials is the number of full stochastic-swap attempts
	// (best kept). 0 picks an adaptive default.
	RoutingTrials int
	// CSPBudget bounds the CSP layout search in visited search nodes.
	// 0 picks a default that scales with machine size.
	CSPBudget int
	// OptimizeIterations caps the fixed-point optimization loop.
	OptimizeIterations int
	// SkipCSP disables the CSP layout search (useful for benchmarks
	// isolating other passes).
	SkipCSP bool
	// Excluded lists physical qubits the compilation must not touch
	// (multi-programming: another program occupies them). Callers
	// should pair this with a coupling map whose edges avoid the
	// excluded qubits so routing cannot traverse them.
	Excluded []int
	// Router selects the routing pass: "stochastic" (default — the
	// Qiskit router of the paper's study period, Fig 5) or "sabre"
	// (lookahead routing, usually fewer swaps).
	Router string
}

func (o Options) withDefaults(nGates int) Options {
	if o.RoutingTrials <= 0 {
		if nGates > 50_000 {
			o.RoutingTrials = 1
		} else {
			o.RoutingTrials = 4
		}
	}
	if o.CSPBudget <= 0 {
		o.CSPBudget = 200_000
	}
	if o.OptimizeIterations <= 0 {
		o.OptimizeIterations = 5
	}
	return o
}

// Compile runs the full pipeline of c against machine m with
// calibration cal (nil for noise-oblivious compilation).
func Compile(c *circuit.Circuit, m *backend.Machine, cal *backend.Calibration, opts Options) (*Result, error) {
	if c.NQubits > m.NumQubits() {
		return nil, fmt.Errorf("compile: circuit needs %d qubits but %s has %d", c.NQubits, m.Name, m.NumQubits())
	}
	o := opts.withDefaults(len(c.Gates))
	ctx := &Context{
		Circ:    c.Clone(),
		Machine: m,
		Calib:   cal,
		Rand:    rand.New(rand.NewSource(o.Seed)),
		Props:   make(map[string]int),
	}
	if len(o.Excluded) > 0 {
		ctx.excluded = make([]bool, m.NumQubits())
		free := m.NumQubits()
		for _, q := range o.Excluded {
			if q >= 0 && q < len(ctx.excluded) && !ctx.excluded[q] {
				ctx.excluded[q] = true
				free--
			}
		}
		if c.NQubits > free {
			return nil, fmt.Errorf("compile: circuit needs %d qubits but only %d remain after exclusions", c.NQubits, free)
		}
	}
	res := &Result{}
	timings := make(map[string]float64)
	var order []string
	runPass := func(p Pass) error {
		start := time.Now()
		err := p.Run(ctx)
		sec := time.Since(start).Seconds()
		if _, seen := timings[p.Name()]; !seen {
			order = append(order, p.Name())
		}
		timings[p.Name()] += sec
		return err
	}

	pipeline := []Pass{
		&Unroll3qOrMore{},
		&RemoveResetInZeroState{},
		&UnrollCustomDefinitions{},
	}
	if !o.SkipCSP {
		pipeline = append(pipeline, &CSPLayout{Budget: o.CSPBudget})
	}
	var router Pass
	switch o.Router {
	case "", "stochastic":
		router = &StochasticSwap{Trials: o.RoutingTrials}
	case "sabre":
		router = &SabreSwap{}
	default:
		return nil, fmt.Errorf("compile: unknown router %q", o.Router)
	}
	pipeline = append(pipeline,
		&NoiseAdaptiveLayout{},
		&DenseLayout{},
		&TrivialLayout{},
		&SetLayout{},
		&FullAncillaAllocate{},
		&EnlargeWithAncilla{},
		&ApplyLayout{},
		&CheckMap{},
		router,
		&BasisTranslator{},
	)
	for _, p := range pipeline {
		if err := runPass(p); err != nil {
			return nil, fmt.Errorf("compile: pass %s: %w", p.Name(), err)
		}
	}

	// Fixed-point optimization loop, as Qiskit's level 3 does: iterate
	// until depth and size stop improving (bounded by OptimizeIterations).
	optLoop := []Pass{
		&Depth{},
		&Collect2qBlocks{},
		&ConsolidateBlocks{},
		&UnitarySynthesis{},
		&Optimize1qGates{},
		&CommutationAnalysis{},
		&CommutativeCancellation{},
		&RemoveDiagonalGatesBeforeMeasure{},
		&FixedPoint{},
	}
	prevDepth, prevSize := -1, -1
	for iter := 0; iter < o.OptimizeIterations; iter++ {
		for _, p := range optLoop {
			if err := runPass(p); err != nil {
				return nil, fmt.Errorf("compile: pass %s: %w", p.Name(), err)
			}
		}
		d, s := ctx.Props["depth"], len(ctx.Circ.Gates)
		if d == prevDepth && s == prevSize {
			break
		}
		prevDepth, prevSize = d, s
	}

	final := []Pass{
		&BarrierBeforeFinalMeasurements{},
		&CheckMap{},
	}
	for _, p := range final {
		if err := runPass(p); err != nil {
			return nil, fmt.Errorf("compile: pass %s: %w", p.Name(), err)
		}
	}

	res.Circ = ctx.Circ
	res.Layout = ctx.Layout
	res.Metrics = circuit.ComputeMetrics(ctx.Circ)
	res.SwapsInserted = ctx.Props["swaps_inserted"]
	res.LayoutMethod = layoutMethodName(ctx)
	for _, name := range order {
		res.Timings = append(res.Timings, PassTiming{Name: name, Seconds: timings[name]})
	}
	return res, nil
}

func layoutMethodName(ctx *Context) string {
	switch ctx.Props["layout_method"] {
	case layoutCSP:
		return "CSPLayout"
	case layoutNoise:
		return "NoiseAdaptiveLayout"
	case layoutDense:
		return "DenseLayout"
	case layoutTrivial:
		return "TrivialLayout"
	default:
		return "none"
	}
}

// Layout method identifiers stored in Props["layout_method"].
const (
	layoutNone = iota
	layoutCSP
	layoutNoise
	layoutDense
	layoutTrivial
)
