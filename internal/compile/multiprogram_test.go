package compile

import (
	"testing"
	"time"

	"qcloud/internal/backend"
	"qcloud/internal/circuit"
	"qcloud/internal/circuit/gens"
)

func TestMultiProgramDisjoint(t *testing.T) {
	m := fleetMachine(t, "ibmq_16_melbourne")
	cal := m.CalibrationAt(time.Date(2021, 3, 1, 12, 0, 0, 0, time.UTC))
	res, err := MultiProgram(gens.GHZ(4), gens.BernsteinVazirani(3, 0b101), m, cal, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	usedA := map[int]bool{}
	for _, q := range res.ResultA.Circ.UsedQubits() {
		usedA[q] = true
	}
	for _, q := range res.ResultB.Circ.UsedQubits() {
		if usedA[q] {
			t.Fatalf("programs share physical qubit %d", q)
		}
	}
	if res.ClbitOffsetB != 4 {
		t.Fatalf("clbit offset = %d, want 4", res.ClbitOffsetB)
	}
	if res.Circ.NClbits != 4+3 {
		t.Fatalf("merged clbits = %d, want 7", res.Circ.NClbits)
	}
	// Merged utilization exceeds either single program's.
	single := float64(len(res.ResultA.Circ.UsedQubits())) / float64(m.NumQubits())
	if res.Utilization <= single {
		t.Fatalf("multi-programming utilization %v should beat single %v", res.Utilization, single)
	}
	// Every 2q gate must respect the original coupling map.
	for _, g := range res.Circ.Gates {
		if g.Op.IsTwoQubit() && !m.Topo.HasEdge(g.Qubits[0], g.Qubits[1]) {
			t.Fatalf("merged gate %v on uncoupled pair", g)
		}
	}
}

func TestMultiProgramTooWide(t *testing.T) {
	m := fleetMachine(t, "ibmq_vigo")
	if _, err := MultiProgram(gens.GHZ(3), gens.GHZ(3), m, nil, Options{}); err == nil {
		t.Fatal("6 qubits on a 5q machine should fail")
	}
}

func TestCompileWithExclusions(t *testing.T) {
	m := fleetMachine(t, "ibmq_16_melbourne")
	cal := m.CalibrationAt(time.Date(2021, 3, 1, 12, 0, 0, 0, time.UTC))
	// Exclude half the machine; the compiled circuit must avoid it.
	excl := []int{0, 1, 2, 3, 4, 5, 6}
	res, err := Compile(gens.GHZ(4), m, cal, Options{Seed: 10, Excluded: excl})
	if err != nil {
		t.Fatal(err)
	}
	bad := map[int]bool{}
	for _, q := range excl {
		bad[q] = true
	}
	for _, q := range res.Circ.UsedQubits() {
		if bad[q] {
			t.Fatalf("compilation used excluded qubit %d", q)
		}
	}
}

func TestCompileExclusionsLeaveTooFew(t *testing.T) {
	m := fleetMachine(t, "ibmq_vigo")
	if _, err := Compile(gens.GHZ(4), m, nil, Options{Excluded: []int{0, 1}}); err == nil {
		t.Fatal("4q circuit with 3 free qubits should fail")
	}
}

func TestCompileExclusionRoutingAvoidsRegion(t *testing.T) {
	// Force routing (dense QFT) with an excluded corridor; check no
	// swap ever lands on it. The topology mask is the caller's job for
	// MultiProgram, but plain Excluded must still keep layout off the
	// region; we emulate the full contract via MultiProgram here.
	m := fleetMachine(t, "ibmq_guadalupe")
	cal := m.CalibrationAt(time.Date(2021, 3, 1, 12, 0, 0, 0, time.UTC))
	res, err := MultiProgram(gens.QFTBench(4), gens.QFTBench(4), m, cal, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	usedA := map[int]bool{}
	for _, q := range res.ResultA.Circ.UsedQubits() {
		usedA[q] = true
	}
	for _, g := range res.ResultB.Circ.Gates {
		if g.Op == circuit.OpBarrier {
			continue
		}
		for _, q := range g.Qubits {
			if usedA[q] {
				t.Fatalf("program B gate %v crosses into program A's region", g)
			}
		}
	}
}

func TestMultiProgramOnRealFleetMachines(t *testing.T) {
	cases := []struct {
		machine string
		a, b    *circuit.Circuit
	}{
		{"ibmq_toronto", gens.GHZ(5), gens.QFTBench(4)},
		{"ibmq_manhattan", gens.QFTBench(5), gens.BernsteinVazirani(4, 0b1100)},
	}
	for _, c := range cases {
		m, err := backend.FindMachine(backend.Fleet(), c.machine)
		if err != nil {
			t.Fatal(err)
		}
		cal := m.CalibrationAt(time.Date(2021, 3, 5, 12, 0, 0, 0, time.UTC))
		res, err := MultiProgram(c.a, c.b, m, cal, Options{Seed: 12})
		if err != nil {
			t.Fatalf("%s: %v", c.machine, err)
		}
		if res.Utilization <= 0 || res.Utilization > 1 {
			t.Fatalf("%s: utilization %v", c.machine, res.Utilization)
		}
	}
}
