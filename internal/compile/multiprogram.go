package compile

import (
	"fmt"

	"qcloud/internal/backend"
	"qcloud/internal/circuit"
)

// MultiResult is the outcome of co-compiling two programs onto one
// machine (§IV-D.3: "improve machine utilization by multi-programming
// on the quantum machines").
type MultiResult struct {
	// Circ is the merged physical circuit; program A's classical bits
	// occupy clbits [0, A.NClbits), program B's are shifted above them.
	Circ *circuit.Circuit
	// ResultA and ResultB are the individual compilations.
	ResultA, ResultB *Result
	// ClbitOffsetB is where program B's classical bits start.
	ClbitOffsetB int
	// Utilization is the fraction of machine qubits the merged job
	// touches.
	Utilization float64
}

// MultiProgram compiles circuits a and b onto disjoint regions of
// machine m: a is compiled normally, then b is compiled with a's
// physical qubits excluded and all couplers into them masked away, so
// routing can never cross program boundaries. The two physical circuits
// are concatenated (they commute — disjoint qubits) with b's classical
// register appended after a's.
func MultiProgram(a, b *circuit.Circuit, m *backend.Machine, cal *backend.Calibration, opts Options) (*MultiResult, error) {
	if a.NQubits+b.NQubits > m.NumQubits() {
		return nil, fmt.Errorf("compile: programs need %d qubits, machine %s has %d",
			a.NQubits+b.NQubits, m.Name, m.NumQubits())
	}
	resA, err := Compile(a, m, cal, opts)
	if err != nil {
		return nil, fmt.Errorf("compile: program A: %w", err)
	}
	usedA := resA.Circ.UsedQubits()
	usedSet := make(map[int]bool, len(usedA))
	for _, q := range usedA {
		usedSet[q] = true
	}
	// Mask the coupling map: no edge may touch program A's qubits.
	var freeEdges [][2]int
	for _, e := range m.Topo.Edges {
		if !usedSet[e[0]] && !usedSet[e[1]] {
			freeEdges = append(freeEdges, e)
		}
	}
	maskedTopo, err := backend.NewTopology(m.NumQubits(), freeEdges)
	if err != nil {
		return nil, fmt.Errorf("compile: masking topology: %w", err)
	}
	masked := backend.CustomMachine(m.Name+"+masked", maskedTopo, m.Tier)
	optsB := opts
	optsB.Excluded = append(append([]int(nil), opts.Excluded...), usedA...)
	optsB.Seed = opts.Seed + 1
	resB, err := Compile(b, masked, cal, optsB)
	if err != nil {
		return nil, fmt.Errorf("compile: program B: %w", err)
	}
	// Verify disjointness — a violated invariant here would silently
	// corrupt both programs.
	for _, q := range resB.Circ.UsedQubits() {
		if usedSet[q] {
			return nil, fmt.Errorf("compile: programs overlap on physical qubit %d", q)
		}
	}

	merged := &circuit.Circuit{
		Name:    a.Name + "+" + b.Name,
		NQubits: m.NumQubits(),
		NClbits: a.NClbits + b.NClbits,
	}
	merged.Gates = append(merged.Gates, resA.Circ.Gates...)
	for _, g := range resB.Circ.Gates {
		ng := g.Clone()
		if ng.Op == circuit.OpMeasure {
			ng.Clbit += a.NClbits
		}
		merged.Gates = append(merged.Gates, ng)
	}
	return &MultiResult{
		Circ:         merged,
		ResultA:      resA,
		ResultB:      resB,
		ClbitOffsetB: a.NClbits,
		Utilization:  float64(len(resA.Circ.UsedQubits())+len(resB.Circ.UsedQubits())) / float64(m.NumQubits()),
	}, nil
}
