package compile

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"qcloud/internal/circuit"
)

// equalUpToPhase reports whether a = e^{iα}·b for some α.
func equalUpToPhase(a, b mat2, tol float64) bool {
	// Find the largest entry of b to anchor the phase.
	ref := 0
	for i := 1; i < 4; i++ {
		if cmplx.Abs(b[i]) > cmplx.Abs(b[ref]) {
			ref = i
		}
	}
	if cmplx.Abs(b[ref]) < tol {
		return false
	}
	phase := a[ref] / b[ref]
	if math.Abs(cmplx.Abs(phase)-1) > tol {
		return false
	}
	for i := 0; i < 4; i++ {
		if cmplx.Abs(a[i]-phase*b[i]) > tol {
			return false
		}
	}
	return true
}

func rzMat(th float64) mat2 {
	g := circuit.NewGate(circuit.OpRZ, []int{0}, th)
	m, _ := gateMat2(g)
	return m
}

func sxMat() mat2 {
	m, _ := gateMat2(circuit.NewGate(circuit.OpSX, []int{0}))
	return m
}

// TestZSXZSXZIdentity verifies the decomposition BasisTranslator relies
// on: U(θ,φ,λ) = RZ(φ+π)·SX·RZ(θ+π)·SX·RZ(λ) up to global phase.
func TestZSXZSXZIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		th := r.Float64()*4*math.Pi - 2*math.Pi
		ph := r.Float64()*4*math.Pi - 2*math.Pi
		la := r.Float64()*4*math.Pi - 2*math.Pi
		want := u3Mat(th, ph, la)
		got := rzMat(ph + math.Pi).Mul(sxMat()).Mul(rzMat(th + math.Pi)).Mul(sxMat()).Mul(rzMat(la))
		if !equalUpToPhase(got, want, 1e-9) {
			t.Fatalf("ZSXZSXZ mismatch for (%.3f, %.3f, %.3f)", th, ph, la)
		}
	}
}

// TestU2Identity verifies the one-SX shortcut UnitarySynthesis uses:
// U(π/2,φ,λ) = RZ(φ+π/2)·SX·RZ(λ-π/2) up to global phase.
func TestU2Identity(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		ph := r.Float64() * 2 * math.Pi
		la := r.Float64() * 2 * math.Pi
		want := u3Mat(math.Pi/2, ph, la)
		got := rzMat(ph + math.Pi/2).Mul(sxMat()).Mul(rzMat(la - math.Pi/2))
		if !equalUpToPhase(got, want, 1e-9) {
			t.Fatalf("U2 identity mismatch for (%.3f, %.3f)", ph, la)
		}
	}
}

// TestHadamardDecomposition pins the specific H expansion used by the
// translator: H = U(π/2, 0, π).
func TestHadamardDecomposition(t *testing.T) {
	h, _ := gateMat2(circuit.NewGate(circuit.OpH, []int{0}))
	if !equalUpToPhase(u3Mat(math.Pi/2, 0, math.Pi), h, 1e-12) {
		t.Fatal("H != U(π/2, 0, π)")
	}
}

func TestZYZRoundtripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	f := func(_ uint8) bool {
		// Build a random unitary as a product of random rotations.
		u := identity2
		ops := []circuit.Op{circuit.OpRZ, circuit.OpRX, circuit.OpRY, circuit.OpH, circuit.OpSX, circuit.OpT}
		for i := 0; i < 6; i++ {
			op := ops[r.Intn(len(ops))]
			g := circuit.Gate{Op: op, Qubits: []int{0}}
			if op.NumParams() == 1 {
				g.Params = []float64{r.Float64()*4*math.Pi - 2*math.Pi}
			}
			m, ok := gateMat2(g)
			if !ok {
				return false
			}
			u = m.Mul(u)
		}
		th, ph, la := zyzAngles(u)
		return equalUpToPhase(u3Mat(th, ph, la), u, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestZYZSpecialCases(t *testing.T) {
	// Identity.
	th, ph, la := zyzAngles(identity2)
	if math.Abs(th) > 1e-12 || math.Abs(normAngle(ph+la)) > 1e-12 {
		t.Fatalf("identity ZYZ = (%v,%v,%v)", th, ph, la)
	}
	// Pure X (θ=π, cos=0 branch).
	x, _ := gateMat2(circuit.NewGate(circuit.OpX, []int{0}))
	th, ph, la = zyzAngles(x)
	if !equalUpToPhase(u3Mat(th, ph, la), x, 1e-9) {
		t.Fatal("X roundtrip failed")
	}
	// Pure RZ (sin=0 branch).
	z := rzMat(1.3)
	th, ph, la = zyzAngles(z)
	if !equalUpToPhase(u3Mat(th, ph, la), z, 1e-9) {
		t.Fatal("RZ roundtrip failed")
	}
}

func TestIsIdentity(t *testing.T) {
	if !identity2.IsIdentity() {
		t.Fatal("identity not recognized")
	}
	// Global phase times identity is identity-equivalent only with the
	// same phase on both diagonals.
	phased := mat2{1i, 0, 0, 1i}
	if !phased.IsIdentity() {
		t.Fatal("i·I should count as identity (global phase)")
	}
	z := rzMat(math.Pi)
	if z.IsIdentity() {
		t.Fatal("RZ(π) is not identity")
	}
}

func TestNormAngle(t *testing.T) {
	if normAngle(3*math.Pi) != math.Pi {
		t.Fatalf("normAngle(3π) = %v", normAngle(3*math.Pi))
	}
	if got := normAngle(-3 * math.Pi); got != math.Pi {
		t.Fatalf("normAngle(-3π) = %v, want π", got)
	}
	if normAngle(0.5) != 0.5 {
		t.Fatal("in-range angle changed")
	}
}

func TestGateMat2Unsupported(t *testing.T) {
	if _, ok := gateMat2(circuit.NewGate(circuit.OpCX, []int{0, 1})); ok {
		t.Fatal("CX should not have a 2x2 matrix")
	}
	if _, ok := gateMat2(circuit.Gate{Op: circuit.OpMeasure, Qubits: []int{0}}); ok {
		t.Fatal("measure is not unitary")
	}
}
