package compile

import (
	"math"
	"testing"

	"qcloud/internal/circuit"
)

// runPassOn applies a single pass to a circuit with a throwaway context.
func runPassOn(t *testing.T, p Pass, c *circuit.Circuit) *circuit.Circuit {
	t.Helper()
	ctx := &Context{Circ: c, Props: make(map[string]int)}
	if err := p.Run(ctx); err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	return ctx.Circ
}

func TestUnroll3q(t *testing.T) {
	c := circuit.New("ccx", 3)
	c.CCX(0, 1, 2)
	out := runPassOn(t, &Unroll3qOrMore{}, c)
	counts := out.GateCounts()
	if counts["ccx"] != 0 {
		t.Fatal("ccx survived unrolling")
	}
	if counts["cx"] != 6 {
		t.Fatalf("cx count = %d, want 6 (textbook Toffoli)", counts["cx"])
	}
	// No CCX: pass should be a no-op.
	plain := circuit.New("plain", 2)
	plain.CX(0, 1)
	before := plain.String()
	out = runPassOn(t, &Unroll3qOrMore{}, plain)
	if out.String() != before {
		t.Fatal("pass modified CCX-free circuit")
	}
}

func TestBasisTranslatorCoversAllOps(t *testing.T) {
	c := circuit.New("all", 3)
	c.I(0).X(0).Y(0).Z(0).H(0).S(0).Sdg(0).T(0).Tdg(0).SX(0)
	c.RX(1, 0.3).RY(1, 0.4).RZ(1, 0.5).U(1, 0.1, 0.2, 0.3)
	c.CX(0, 1).CZ(1, 2).CPhase(0, 2, math.Pi/8).SWAP(0, 2).CCX(0, 1, 2)
	c.Reset(2).Barrier().MeasureAll()
	out := runPassOn(t, &BasisTranslator{}, c)
	for _, g := range out.Gates {
		if !inBasis(g.Op) {
			t.Fatalf("op %v not translated", g.Op)
		}
	}
}

func TestBasisTranslatorSWAPIsThreeCX(t *testing.T) {
	c := circuit.New("swap", 2)
	c.SWAP(0, 1)
	out := runPassOn(t, &BasisTranslator{}, c)
	if got := out.GateCounts()["cx"]; got != 3 {
		t.Fatalf("swap -> %d cx, want 3", got)
	}
}

func TestOptimize1qMergesRZ(t *testing.T) {
	c := circuit.New("rz", 1)
	c.RZ(0, 0.3).RZ(0, 0.4)
	out := runPassOn(t, &Optimize1qGates{}, c)
	if len(out.Gates) != 1 {
		t.Fatalf("gates = %d, want 1 merged rz", len(out.Gates))
	}
	if got := out.Gates[0].Params[0]; math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("merged angle = %v, want 0.7", got)
	}
}

func TestOptimize1qCancelsInverseRZ(t *testing.T) {
	c := circuit.New("rz0", 1)
	c.RZ(0, 1.1).RZ(0, -1.1)
	out := runPassOn(t, &Optimize1qGates{}, c)
	if len(out.Gates) != 0 {
		t.Fatalf("gates = %d, want 0", len(out.Gates))
	}
}

func TestOptimize1qCancelsXXAndHH(t *testing.T) {
	c := circuit.New("xx", 2)
	c.X(0).X(0).H(1).H(1).X(1)
	out := runPassOn(t, &Optimize1qGates{}, c)
	if len(out.Gates) != 1 || out.Gates[0].Op != circuit.OpX {
		t.Fatalf("got %v, want single x", out.Gates)
	}
}

func TestOptimize1qRespectsInterveningGates(t *testing.T) {
	c := circuit.New("block", 2)
	c.RZ(0, 0.5).CX(0, 1).RZ(0, 0.5)
	out := runPassOn(t, &Optimize1qGates{}, c)
	if len(out.Gates) != 3 {
		t.Fatalf("gates = %d, want 3 (CX blocks merge)", len(out.Gates))
	}
}

func TestOptimize1qDropsIdentityAndZeroRZ(t *testing.T) {
	c := circuit.New("id", 1)
	c.I(0).RZ(0, 0)
	out := runPassOn(t, &Optimize1qGates{}, c)
	if len(out.Gates) != 0 {
		t.Fatalf("gates = %d, want 0", len(out.Gates))
	}
}

func TestCommutativeCancellationAdjacentCX(t *testing.T) {
	c := circuit.New("cxcx", 2)
	c.CX(0, 1).CX(0, 1)
	out := runPassOn(t, &CommutativeCancellation{}, c)
	if len(out.Gates) != 0 {
		t.Fatalf("gates = %d, want 0", len(out.Gates))
	}
}

func TestCommutativeCancellationThroughDiagonalOnControl(t *testing.T) {
	c := circuit.New("cx-rz-cx", 2)
	c.CX(0, 1).RZ(0, 0.7).CX(0, 1)
	out := runPassOn(t, &CommutativeCancellation{}, c)
	counts := out.GateCounts()
	if counts["cx"] != 0 || counts["rz"] != 1 {
		t.Fatalf("counts = %v, want rz only", counts)
	}
}

func TestCommutativeCancellationThroughXOnTarget(t *testing.T) {
	c := circuit.New("cx-x-cx", 2)
	c.CX(0, 1).X(1).CX(0, 1)
	out := runPassOn(t, &CommutativeCancellation{}, c)
	if got := out.GateCounts()["cx"]; got != 0 {
		t.Fatalf("cx = %d, want 0 (X commutes with target)", got)
	}
}

func TestCommutativeCancellationBlockedByH(t *testing.T) {
	c := circuit.New("cx-h-cx", 2)
	c.CX(0, 1).H(1).CX(0, 1)
	out := runPassOn(t, &CommutativeCancellation{}, c)
	if got := out.GateCounts()["cx"]; got != 2 {
		t.Fatalf("cx = %d, want 2 (H blocks cancellation)", got)
	}
}

func TestCommutativeCancellationBlockedByReversedCX(t *testing.T) {
	c := circuit.New("cx-rev-cx", 2)
	c.CX(0, 1).CX(1, 0).CX(0, 1)
	out := runPassOn(t, &CommutativeCancellation{}, c)
	if got := out.GateCounts()["cx"]; got != 3 {
		t.Fatalf("cx = %d, want 3 (reversed CX blocks)", got)
	}
}

func TestRemoveDiagonalBeforeMeasure(t *testing.T) {
	c := circuit.New("diag", 2)
	c.H(0).RZ(0, 0.5).Measure(0, 0)
	c.RZ(1, 0.5).H(1).Measure(1, 1) // rz NOT last on wire 1
	out := runPassOn(t, &RemoveDiagonalGatesBeforeMeasure{}, c)
	counts := out.GateCounts()
	if counts["rz"] != 1 {
		t.Fatalf("rz = %d, want 1 (only the pre-measure rz dropped)", counts["rz"])
	}
	if counts["h"] != 2 || counts["measure"] != 2 {
		t.Fatalf("unexpected counts %v", counts)
	}
}

func TestRemoveDiagonalScansThroughBarrier(t *testing.T) {
	c := circuit.New("diagb", 1)
	c.RZ(0, 0.5).Barrier().Measure(0, 0)
	out := runPassOn(t, &RemoveDiagonalGatesBeforeMeasure{}, c)
	if got := out.GateCounts()["rz"]; got != 0 {
		t.Fatalf("rz = %d, want 0 (barrier is transparent)", got)
	}
}

func TestRemoveResetInZeroState(t *testing.T) {
	c := circuit.New("reset", 2)
	c.Reset(0)      // |0>: removable
	c.H(1).Reset(1) // touched: must stay
	out := runPassOn(t, &RemoveResetInZeroState{}, c)
	if got := out.GateCounts()["reset"]; got != 1 {
		t.Fatalf("reset = %d, want 1", got)
	}
}

func TestConsolidateBlocksMergesRuns(t *testing.T) {
	c := circuit.New("run", 1)
	c.H(0).T(0).H(0).S(0)
	out := runPassOn(t, &ConsolidateBlocks{}, c)
	if len(out.Gates) != 1 || out.Gates[0].Op != circuit.OpU {
		t.Fatalf("got %v, want single U", out.Gates)
	}
}

func TestConsolidateBlocksDropsNetIdentity(t *testing.T) {
	c := circuit.New("hh", 1)
	c.H(0).H(0)
	out := runPassOn(t, &ConsolidateBlocks{}, c)
	if len(out.Gates) != 0 {
		t.Fatalf("H·H should vanish, got %v", out.Gates)
	}
}

func TestUnitarySynthesisLowersU(t *testing.T) {
	c := circuit.New("u", 1)
	c.U(0, 1.0, 0.5, 0.25)
	out := runPassOn(t, &UnitarySynthesis{}, c)
	for _, g := range out.Gates {
		if g.Op == circuit.OpU {
			t.Fatal("U survived synthesis")
		}
	}
	// General U lowers to the 5-gate ZSXZSXZ pattern.
	if len(out.Gates) != 5 {
		t.Fatalf("gates = %d, want 5", len(out.Gates))
	}
}

func TestUnitarySynthesisShortcuts(t *testing.T) {
	// θ=0: single rz.
	c := circuit.New("rzonly", 1)
	c.U(0, 0, 0.5, 0.25)
	out := runPassOn(t, &UnitarySynthesis{}, c)
	if len(out.Gates) != 1 || out.Gates[0].Op != circuit.OpRZ {
		t.Fatalf("got %v, want single rz", out.Gates)
	}
	// θ=π/2: at most rz sx rz.
	c2 := circuit.New("u2", 1)
	c2.U(0, math.Pi/2, 0.3, 0.7)
	out2 := runPassOn(t, &UnitarySynthesis{}, c2)
	sxs := 0
	for _, g := range out2.Gates {
		if g.Op == circuit.OpSX {
			sxs++
		}
	}
	if sxs != 1 || len(out2.Gates) > 3 {
		t.Fatalf("U(π/2,...) should use one sx: %v", out2.Gates)
	}
}

func TestCollect2qBlocksCounts(t *testing.T) {
	c := circuit.New("blocks", 3)
	c.CX(0, 1).RZ(1, 0.1).CX(0, 1) // block 1 on (0,1)
	c.CX(1, 2)                     // block 2 on (1,2)
	ctx := &Context{Circ: c, Props: make(map[string]int)}
	if err := (&Collect2qBlocks{}).Run(ctx); err != nil {
		t.Fatal(err)
	}
	if got := ctx.Props["blocks_2q"]; got != 2 {
		t.Fatalf("blocks = %d, want 2", got)
	}
}

func TestCommutationAnalysisCounts(t *testing.T) {
	c := circuit.New("comm", 2)
	c.RZ(0, 0.1).RZ(0, 0.2) // diagonal pair commutes
	c.X(1).SX(1)            // X-family pair commutes
	c.H(0)                  // doesn't commute with rz
	ctx := &Context{Circ: c, Props: make(map[string]int)}
	if err := (&CommutationAnalysis{}).Run(ctx); err != nil {
		t.Fatal(err)
	}
	if got := ctx.Props["commuting_pairs"]; got != 2 {
		t.Fatalf("commuting pairs = %d, want 2", got)
	}
}

func TestBarrierBeforeFinalMeasurements(t *testing.T) {
	c := circuit.New("bfm", 2)
	c.H(0).CX(0, 1).Measure(0, 0).Measure(1, 1)
	out := runPassOn(t, &BarrierBeforeFinalMeasurements{}, c)
	// Expect h, cx, barrier, measure, measure.
	if out.Gates[2].Op != circuit.OpBarrier {
		t.Fatalf("gate[2] = %v, want barrier", out.Gates[2])
	}
	if len(out.Gates) != 5 {
		t.Fatalf("gates = %d, want 5", len(out.Gates))
	}
	// Idempotent: no second barrier on re-run.
	out2 := runPassOn(t, &BarrierBeforeFinalMeasurements{}, out)
	barriers := 0
	for _, g := range out2.Gates {
		if g.Op == circuit.OpBarrier {
			barriers++
		}
	}
	if barriers != 1 {
		t.Fatalf("barriers = %d, want 1 after re-run", barriers)
	}
}

func TestBarrierPassNoMeasurements(t *testing.T) {
	c := circuit.New("nomeas", 1)
	c.H(0)
	out := runPassOn(t, &BarrierBeforeFinalMeasurements{}, c)
	if len(out.Gates) != 1 {
		t.Fatalf("no-measure circuit should be untouched: %v", out.Gates)
	}
}
