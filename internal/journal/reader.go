package journal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// ScanResult describes the longest valid prefix of a journal stream
// and whatever damage follows it. Damage never surfaces as records:
// the reader stops at the first invalid frame and accounts for the
// rest as dropped.
type ScanResult struct {
	// Records is the number of frames in the valid prefix.
	Records int64
	// Bytes is the on-disk size of the valid prefix, headers included.
	Bytes int64

	// Truncated reports that data past the valid prefix was dropped.
	Truncated bool
	// DroppedBytes counts the bytes past the valid prefix: the damaged
	// segment's remainder plus every later segment in full.
	DroppedBytes int64
	// DamagedFile is the segment holding the first invalid frame (or
	// the first out-of-sequence segment), empty when the stream is
	// clean.
	DamagedFile string
	// Reason says what ended the prefix: "torn frame", "checksum
	// mismatch", "implausible frame length", or "segment gap".
	Reason string
}

// Scan validates the stream in dir and reports its valid prefix. A
// missing directory scans as an empty, clean stream.
func Scan(dir string) (ScanResult, error) {
	return ForEach(dir, nil)
}

// ForEach replays every record in the stream's valid prefix through
// fn (which may be nil to validate only). The payload slice is reused
// between calls — fn must not retain it. An fn error aborts the
// replay and is returned as-is; damage is not an error, it just ends
// the prefix and is described in the ScanResult.
func ForEach(dir string, fn func(rec int64, payload []byte) error) (ScanResult, error) {
	var out ScanResult
	starts, err := segments(dir)
	if err != nil {
		return out, err
	}
	damagedAt := func(i int, res segScan) error {
		// Everything from the damage point on is dropped: the rest of
		// the damaged segment plus all later segments (their first
		// records no longer connect to the valid prefix).
		out.Truncated = true
		out.DroppedBytes += res.size - res.validBytes
		for _, s := range starts[i+1:] {
			fi, err := os.Stat(segPath(dir, s))
			if err != nil {
				return err
			}
			out.DroppedBytes += fi.Size()
		}
		return nil
	}
	for i, s := range starts {
		if s != out.Records {
			// A segment whose first-record index does not continue the
			// prefix (missing or half-deleted predecessor).
			out.Truncated = true
			out.DamagedFile = segPath(dir, s)
			out.Reason = "segment gap"
			for _, l := range starts[i:] {
				fi, err := os.Stat(segPath(dir, l))
				if err != nil {
					return out, err
				}
				out.DroppedBytes += fi.Size()
			}
			return out, nil
		}
		res, err := scanSegment(segPath(dir, s), s, -1, fn)
		if err != nil {
			return out, err
		}
		out.Records = res.nextRec
		out.Bytes += res.validBytes
		if res.reason != "" {
			out.DamagedFile = segPath(dir, s)
			out.Reason = res.reason
			if err := damagedAt(i, res); err != nil {
				return out, err
			}
			return out, nil
		}
	}
	return out, nil
}

// segScan is one segment's validation outcome.
type segScan struct {
	nextRec    int64  // record index after the segment's valid prefix
	validBytes int64  // bytes of that prefix within the segment
	size       int64  // total file size
	reason     string // "" when the whole segment is valid
}

// scanSegment walks the frames of one segment starting at record
// index rec, stopping at the first invalid frame or — when upTo >= 0 —
// once rec reaches upTo. fn (optional) receives each valid payload.
func scanSegment(path string, rec, upTo int64, fn func(rec int64, payload []byte) error) (segScan, error) {
	out := segScan{nextRec: rec}
	f, err := os.Open(path)
	if err != nil {
		return out, err
	}
	defer f.Close()
	if fi, err := f.Stat(); err != nil {
		return out, err
	} else {
		out.size = fi.Size()
	}
	br := bufio.NewReaderSize(f, 256<<10)
	var hdr [frameHeaderLen]byte
	var payload []byte
	for upTo < 0 || out.nextRec < upTo {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return out, nil // clean end of segment
			}
			if err == io.ErrUnexpectedEOF {
				out.reason = "torn frame"
				return out, nil
			}
			return out, fmt.Errorf("journal: read %s: %w", path, err)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		if n > maxPayload {
			out.reason = "implausible frame length"
			return out, nil
		}
		if int(n) > cap(payload) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				out.reason = "torn frame"
				return out, nil
			}
			return out, fmt.Errorf("journal: read %s: %w", path, err)
		}
		if binary.LittleEndian.Uint32(hdr[4:8]) != frameCRC(hdr[:], payload) {
			out.reason = "checksum mismatch"
			return out, nil
		}
		if fn != nil {
			if err := fn(out.nextRec, payload); err != nil {
				return out, err
			}
		}
		out.nextRec++
		out.validBytes += int64(frameHeaderLen) + int64(n)
	}
	return out, nil
}
