package journal

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// testPayloads builds a deterministic record set with size variety:
// empty records, one-byte records, and records big enough to straddle
// flush chunks.
func testPayloads(n int) [][]byte {
	r := rand.New(rand.NewSource(7))
	out := make([][]byte, n)
	for i := range out {
		var size int
		switch i % 5 {
		case 0:
			size = 0
		case 1:
			size = 1
		case 2:
			size = 37
		case 3:
			size = 1024
		default:
			size = 300 + r.Intn(2000)
		}
		p := make([]byte, size)
		r.Read(p)
		out[i] = p
	}
	return out
}

func writeStream(t *testing.T, dir string, payloads [][]byte, opts Options) *Writer {
	t.Helper()
	w, err := Create(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

// readAll replays the stream and returns copies of every payload.
func readAll(t *testing.T, dir string) ([][]byte, ScanResult) {
	t.Helper()
	var got [][]byte
	res, err := ForEach(dir, func(rec int64, payload []byte) error {
		if int64(len(got)) != rec {
			return fmt.Errorf("record index %d delivered out of order (have %d)", rec, len(got))
		}
		got = append(got, bytes.Clone(payload))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, res
}

func checkPrefix(t *testing.T, got, want [][]byte, n int) {
	t.Helper()
	if len(got) != n {
		t.Fatalf("recovered %d records, want %d", len(got), n)
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d corrupted on replay", i)
		}
	}
}

func TestRoundTripWithRotation(t *testing.T) {
	dir := t.TempDir()
	payloads := testPayloads(400)
	// Small segments force many rotations.
	w := writeStream(t, dir, payloads, Options{SegmentBytes: 8 << 10})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	starts, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(starts) < 4 {
		t.Fatalf("expected several segments at 8KiB rotation, got %d", len(starts))
	}
	got, res := readAll(t, dir)
	checkPrefix(t, got, payloads, len(payloads))
	if res.Truncated || res.Records != int64(len(payloads)) {
		t.Fatalf("clean stream misread: %+v", res)
	}
	if res.Bytes != w.Bytes() {
		t.Fatalf("reader bytes %d != writer bytes %d", res.Bytes, w.Bytes())
	}
}

func TestEmptyAndMissingStream(t *testing.T) {
	res, err := Scan(filepath.Join(t.TempDir(), "nothing-here"))
	if err != nil || res.Records != 0 || res.Truncated {
		t.Fatalf("missing dir should scan clean and empty: %+v err=%v", res, err)
	}
	dir := t.TempDir()
	w, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	res, err = Scan(dir)
	if err != nil || res.Records != 0 || res.Truncated {
		t.Fatalf("empty stream should scan clean: %+v err=%v", res, err)
	}
}

// lastSegment returns the path and contents of the stream's final
// segment and the record count of everything before its last record.
func lastSegment(t *testing.T, dir string) (string, []byte) {
	t.Helper()
	starts, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := segPath(dir, starts[len(starts)-1])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, data
}

// TestTruncateFinalRecordEveryOffset chops the stream's last segment
// at every byte offset inside its final frame. The reader must always
// recover exactly the records before it — a torn tail never yields a
// partial or garbage record.
func TestTruncateFinalRecordEveryOffset(t *testing.T) {
	dir := t.TempDir()
	payloads := testPayloads(23)
	w := writeStream(t, dir, payloads, Options{SegmentBytes: 4 << 10})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path, data := lastSegment(t, dir)
	last := payloads[len(payloads)-1]
	frameLen := frameHeaderLen + len(last)
	frameStart := len(data) - frameLen
	if frameStart < 0 {
		t.Fatalf("last segment smaller than final frame (%d < %d)", len(data), frameLen)
	}
	for off := frameStart; off < len(data); off++ {
		if err := os.WriteFile(path, data[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		got, res := readAll(t, dir)
		checkPrefix(t, got, payloads, len(payloads)-1)
		if off == frameStart {
			// Chopped exactly at the frame boundary: a clean tail.
			if res.Truncated {
				t.Fatalf("offset %d: clean boundary reported as damage: %+v", off, res)
			}
			continue
		}
		if !res.Truncated || res.Reason != "torn frame" {
			t.Fatalf("offset %d: want torn-frame truncation, got %+v", off, res)
		}
		if res.DroppedBytes != int64(off-frameStart) {
			t.Fatalf("offset %d: dropped %d bytes, want %d", off, res.DroppedBytes, off-frameStart)
		}
	}
}

// TestBitFlipEveryFrameField flips one bit in each field of each
// frame — length, checksum, payload — and asserts the reader always
// recovers exactly the records before the damaged frame.
func TestBitFlipEveryFrameField(t *testing.T) {
	dir := t.TempDir()
	payloads := testPayloads(9)
	// Single segment so frame offsets are easy to compute.
	w := writeStream(t, dir, payloads, Options{})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path, data := lastSegment(t, dir)
	offsets := make([]int, len(payloads))
	off := 0
	for i, p := range payloads {
		offsets[i] = off
		off += frameHeaderLen + len(p)
	}
	for i, p := range payloads {
		fields := map[string]int{
			"length":   offsets[i] + 1,
			"checksum": offsets[i] + 5,
		}
		if len(p) > 0 {
			fields["payload"] = offsets[i] + frameHeaderLen + len(p)/2
		}
		for field, target := range fields {
			corrupt := bytes.Clone(data)
			corrupt[target] ^= 0x10
			if err := os.WriteFile(path, corrupt, 0o644); err != nil {
				t.Fatal(err)
			}
			got, res := readAll(t, dir)
			checkPrefix(t, got, payloads, i)
			if !res.Truncated {
				t.Fatalf("record %d %s flip: damage not reported: %+v", i, field, res)
			}
			switch res.Reason {
			case "checksum mismatch", "torn frame", "implausible frame length":
			default:
				t.Fatalf("record %d %s flip: unexpected reason %q", i, field, res.Reason)
			}
		}
	}
}

// TestImplausibleLengthRejected sets a frame length beyond the cap;
// the reader must refuse it without attempting the allocation.
func TestImplausibleLengthRejected(t *testing.T) {
	dir := t.TempDir()
	payloads := testPayloads(4)
	w := writeStream(t, dir, payloads, Options{})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path, data := lastSegment(t, dir)
	data[3] = 0xff // length's top byte: claims ~4 GiB
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, res := readAll(t, dir)
	checkPrefix(t, got, payloads, 0)
	if !res.Truncated || res.Reason != "implausible frame length" {
		t.Fatalf("want implausible-length truncation, got %+v", res)
	}
}

// TestSegmentGap deletes a middle segment; the reader must stop at the
// gap rather than splice disconnected records together.
func TestSegmentGap(t *testing.T) {
	dir := t.TempDir()
	payloads := testPayloads(300)
	w := writeStream(t, dir, payloads, Options{SegmentBytes: 8 << 10})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	starts, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(starts) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(starts))
	}
	if err := os.Remove(segPath(dir, starts[1])); err != nil {
		t.Fatal(err)
	}
	got, res := readAll(t, dir)
	checkPrefix(t, got, payloads, int(starts[1]))
	if !res.Truncated || res.Reason != "segment gap" {
		t.Fatalf("want segment-gap truncation, got %+v", res)
	}
}

func TestOpenAtResume(t *testing.T) {
	payloads := testPayloads(200)
	opts := Options{SegmentBytes: 8 << 10}
	// Resume points: start, mid-segment, and exact segment boundaries.
	probe := t.TempDir()
	w := writeStream(t, probe, payloads, opts)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	starts, err := segments(probe)
	if err != nil {
		t.Fatal(err)
	}
	resumes := []int64{0, 1, 17, int64(len(payloads)) - 1, int64(len(payloads))}
	for _, s := range starts {
		resumes = append(resumes, s)
	}
	for _, at := range resumes {
		t.Run(fmt.Sprintf("at=%d", at), func(t *testing.T) {
			dir := t.TempDir()
			w := writeStream(t, dir, payloads, opts)
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			rw, err := OpenAt(dir, at, opts)
			if err != nil {
				t.Fatal(err)
			}
			if rw.Records() != at {
				t.Fatalf("resumed writer reports %d records, want %d", rw.Records(), at)
			}
			// Append the dropped suffix again; the stream must read
			// back as if never interrupted.
			for _, p := range payloads[at:] {
				if err := rw.Append(p); err != nil {
					t.Fatal(err)
				}
			}
			if err := rw.Close(); err != nil {
				t.Fatal(err)
			}
			got, res := readAll(t, dir)
			checkPrefix(t, got, payloads, len(payloads))
			if res.Truncated {
				t.Fatalf("resumed stream reports damage: %+v", res)
			}
		})
	}
}

func TestOpenAtTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	payloads := testPayloads(40)
	w := writeStream(t, dir, payloads, Options{})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path, data := lastSegment(t, dir)
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	rw, err := OpenAt(dir, int64(len(payloads)-1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rw.Append(payloads[len(payloads)-1]); err != nil {
		t.Fatal(err)
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	got, res := readAll(t, dir)
	checkPrefix(t, got, payloads, len(payloads))
	if res.Truncated {
		t.Fatalf("tail not repaired: %+v", res)
	}
}

func TestOpenAtPastValidPrefix(t *testing.T) {
	dir := t.TempDir()
	w := writeStream(t, dir, testPayloads(5), Options{})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenAt(dir, 9, Options{}); err == nil {
		t.Fatal("OpenAt past the valid prefix must fail")
	}
}

func TestCreateOnNonEmptyStream(t *testing.T) {
	dir := t.TempDir()
	w := writeStream(t, dir, testPayloads(3), Options{})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(dir, Options{}); err == nil {
		t.Fatal("Create on an existing stream must fail")
	}
}

func TestAbandonLosesOnlyUnflushedTail(t *testing.T) {
	dir := t.TempDir()
	payloads := testPayloads(30)
	w, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads[:20] {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads[20:] {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	w.Abandon()
	if err := w.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after abandon: %v", err)
	}
	got, res := readAll(t, dir)
	checkPrefix(t, got, payloads, 20)
	if res.Truncated {
		// The abandoned tail was buffered, never written: the on-disk
		// stream ends at a clean frame boundary.
		t.Fatalf("abandoned buffered tail should leave a clean stream: %+v", res)
	}
}

// faultyFile injects write failures: each entry in failAt is a
// 1-based index into the sequence of Write calls that should fail.
type faultyFile struct {
	f      File
	calls  int
	failAt map[int]bool
	short  bool // fail with a partial write instead of none
}

func (ff *faultyFile) Write(p []byte) (int, error) {
	ff.calls++
	if ff.failAt[ff.calls] {
		if ff.short && len(p) > 1 {
			n, _ := ff.f.Write(p[:len(p)/2])
			return n, errors.New("injected partial write")
		}
		return 0, errors.New("injected write failure")
	}
	return ff.f.Write(p)
}

func (ff *faultyFile) Sync() error  { return ff.f.Sync() }
func (ff *faultyFile) Close() error { return ff.f.Close() }

func faultyOpts(failAt map[int]bool, short bool) Options {
	return Options{
		RetryAppends: 3,
		OpenFile: func(path string) (File, error) {
			f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, err
			}
			return &faultyFile{f: f, failAt: failAt, short: short}, nil
		},
	}
}

// TestTransientWriteErrorsRetried injects sporadic write failures
// (full and partial) below the retry cap; the stream must come out
// intact.
func TestTransientWriteErrorsRetried(t *testing.T) {
	for _, short := range []bool{false, true} {
		dir := t.TempDir()
		payloads := testPayloads(50)
		failAt := map[int]bool{1: true, 3: true, 7: true, 8: true}
		w, err := Create(dir, faultyOpts(failAt, short))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range payloads {
			if err := w.Append(p); err != nil {
				t.Fatal(err)
			}
			// Flush each record so every Append exercises the faulty
			// write path.
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		got, res := readAll(t, dir)
		checkPrefix(t, got, payloads, len(payloads))
		if res.Truncated {
			t.Fatalf("short=%v: stream damaged: %+v", short, res)
		}
	}
}

// TestPersistentWriteErrorFailStops injects more consecutive failures
// than the retry cap: the writer must fail-stop with a sticky error,
// and the records flushed before the failure must still read back.
func TestPersistentWriteErrorFailStops(t *testing.T) {
	dir := t.TempDir()
	payloads := testPayloads(10)
	// Fail every write from the 6th on, forever.
	failAt := map[int]bool{}
	for i := 6; i < 200; i++ {
		failAt[i] = true
	}
	w, err := Create(dir, faultyOpts(failAt, false))
	if err != nil {
		t.Fatal(err)
	}
	var stuck error
	good := 0
	for _, p := range payloads {
		if err := w.Append(p); err != nil {
			stuck = err
			break
		}
		if err := w.Flush(); err != nil {
			stuck = err
			break
		}
		good++
	}
	if stuck == nil {
		t.Fatal("persistent write failures did not surface")
	}
	if w.Err() == nil {
		t.Fatal("writer did not fail-stop")
	}
	if err := w.Append([]byte("more")); !errors.Is(err, w.Err()) {
		t.Fatalf("append after fail-stop returned %v, want sticky %v", err, w.Err())
	}
	got, res := readAll(t, dir)
	checkPrefix(t, got, payloads, good)
	_ = res // a partial flush may leave a torn tail; the prefix is what matters
}

// TestSyncEveryCadence smoke-checks the fsync cadence path end to end.
func TestSyncEveryCadence(t *testing.T) {
	dir := t.TempDir()
	payloads := testPayloads(64)
	w := writeStream(t, dir, payloads, Options{SyncEvery: 5})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, res := readAll(t, dir)
	checkPrefix(t, got, payloads, len(payloads))
	if res.Truncated {
		t.Fatalf("stream damaged: %+v", res)
	}
}
