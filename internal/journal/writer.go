package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
)

// ErrClosed is returned by Append on a writer that has been Closed or
// Abandoned.
var ErrClosed = errors.New("journal: writer closed")

// flushChunk is the buffered-bytes threshold past which Append hands
// pending frames to the OS. Frames stay in memory below it, so a
// crashed process loses at most this much un-Flushed tail.
const flushChunk = 64 << 10

// Writer appends CRC32C-framed records to a segmented journal
// directory. It is not safe for concurrent use; every stream in the
// cloud session has exactly one owning goroutine.
type Writer struct {
	dir  string
	opts Options

	f        File
	segPath  string
	segStart int64 // record index of the active segment's first record
	segBytes int64 // bytes handed to f in the active segment

	pending []byte // framed records not yet written to f

	recs      int64 // records appended across all segments (incl. pending)
	bytes     int64 // frame bytes appended across all segments (incl. pending)
	sinceSync int

	err    error // sticky after a write outlives its retries
	closed bool
}

// Create starts a fresh journal stream in dir, which must not already
// contain segments (resume an existing stream with OpenAt).
func Create(dir string, opts Options) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	starts, err := segments(dir)
	if err != nil {
		return nil, err
	}
	if len(starts) > 0 {
		return nil, fmt.Errorf("journal: Create in non-empty stream %s (use OpenAt to resume)", dir)
	}
	w := &Writer{dir: dir, opts: opts.withDefaults()}
	if err := w.openSegment(0); err != nil {
		return nil, err
	}
	return w, nil
}

// OpenAt resumes appending to an existing stream with exactly rec
// records: everything past record rec — later valid records, torn
// tails, damaged frames, whole segments — is removed first. rec must
// not exceed the stream's valid prefix.
func OpenAt(dir string, rec int64, opts Options) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	starts, err := segments(dir)
	if err != nil {
		return nil, err
	}
	w := &Writer{dir: dir, opts: opts.withDefaults()}
	if len(starts) == 0 {
		if rec != 0 {
			return nil, fmt.Errorf("journal: OpenAt(%d) on empty stream %s", rec, dir)
		}
		if err := w.openSegment(0); err != nil {
			return nil, err
		}
		return w, nil
	}
	// Locate record rec: the segment holding it and the byte offset of
	// its frame within that segment's valid prefix.
	seg, off, total, err := locate(dir, starts, rec)
	if err != nil {
		return nil, err
	}
	// Drop every segment after the resume point, truncate the resume
	// segment at the frame boundary, and append there.
	for _, s := range starts {
		if s > seg {
			if err := os.Remove(segPath(dir, s)); err != nil {
				return nil, err
			}
		}
	}
	path := segPath(dir, seg)
	if err := os.Truncate(path, off); err != nil {
		return nil, err
	}
	f, err := w.opts.OpenFile(path)
	if err != nil {
		return nil, err
	}
	w.f, w.segPath, w.segStart, w.segBytes = f, path, seg, off
	w.recs, w.bytes = rec, total
	return w, nil
}

// locate finds record rec in the stream: the start index of the
// segment that will hold it and the byte offset of its frame. total is
// the on-disk frame bytes of records [0, rec).
func locate(dir string, starts []int64, rec int64) (seg, off, total int64, err error) {
	if starts[0] != 0 {
		return 0, 0, 0, fmt.Errorf("journal: stream %s is missing its first segment", dir)
	}
	// The target segment is the last one starting at or before rec.
	seg = starts[0]
	for _, s := range starts {
		if s <= rec {
			seg = s
		}
	}
	// Walk frames of the target segment up to rec, validating as we
	// go; bytes before the target segment are whole valid segments by
	// the naming invariant, summed from their sizes.
	for _, s := range starts {
		if s >= seg {
			break
		}
		fi, err := os.Stat(segPath(dir, s))
		if err != nil {
			return 0, 0, 0, err
		}
		total += fi.Size()
	}
	res, err := scanSegment(segPath(dir, seg), seg, rec, nil)
	if err != nil {
		return 0, 0, 0, err
	}
	if res.nextRec < rec {
		return 0, 0, 0, fmt.Errorf("journal: OpenAt(%d) but %s holds only %d valid records", rec, dir, res.nextRec)
	}
	return seg, res.validBytes, total + res.validBytes, nil
}

// Append frames payload and buffers it for the active segment,
// rotating first if the segment is full. The sticky write error, if
// any, is returned on this and every later call.
func (w *Writer) Append(payload []byte) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return ErrClosed
	}
	if len(payload) > maxPayload {
		return fmt.Errorf("journal: record of %d bytes exceeds the %d-byte frame cap", len(payload), maxPayload)
	}
	frameLen := int64(frameHeaderLen + len(payload))
	if have := w.segBytes + int64(len(w.pending)); have > 0 && have+frameLen > w.opts.SegmentBytes {
		if err := w.rotate(); err != nil {
			return err
		}
	}
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], frameCRC(hdr[:], payload))
	w.pending = append(w.pending, hdr[:]...)
	w.pending = append(w.pending, payload...)
	w.recs++
	w.bytes += frameLen
	if len(w.pending) >= flushChunk {
		if err := w.flushPending(); err != nil {
			return err
		}
	}
	if w.opts.SyncEvery > 0 {
		if w.sinceSync++; w.sinceSync >= w.opts.SyncEvery {
			w.sinceSync = 0
			return w.Sync()
		}
	}
	return nil
}

// flushPending hands buffered frames to the OS, retrying failed
// writes up to RetryAppends times. Retries are immediate and
// deterministic — the journal must not sleep — and a write that
// outlives them fail-stops the writer.
func (w *Writer) flushPending() error {
	if w.err != nil {
		return w.err
	}
	off, retries := 0, 0
	for off < len(w.pending) {
		n, err := w.f.Write(w.pending[off:])
		if n < 0 {
			n = 0
		}
		off += n
		w.segBytes += int64(n)
		if err == nil {
			continue
		}
		if retries++; retries > w.opts.RetryAppends {
			w.err = fmt.Errorf("journal: write to %s failed after %d retries: %w", w.segPath, w.opts.RetryAppends, err)
			return w.err
		}
	}
	w.pending = w.pending[:0]
	return nil
}

// Flush hands buffered frames to the OS without fsyncing. After a
// Flush the records survive a process kill (the OS page cache holds
// them), though not a power failure.
func (w *Writer) Flush() error {
	if w.closed {
		return w.stickyOrClosed()
	}
	return w.flushPending()
}

// Sync flushes buffered frames and fsyncs the active segment.
func (w *Writer) Sync() error {
	if w.closed {
		return w.stickyOrClosed()
	}
	if err := w.flushPending(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		// An fsync failure leaves the durable state unknowable; treat
		// it as fatal rather than guessing.
		w.err = fmt.Errorf("journal: fsync %s: %w", w.segPath, err)
		return w.err
	}
	return nil
}

// Close seals the stream: flush, fsync, and close the active segment.
func (w *Writer) Close() error {
	if w.closed {
		return w.stickyOrClosed()
	}
	w.closed = true
	if err := w.flushPending(); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("journal: fsync %s: %w", w.segPath, err)
		w.f.Close()
		return w.err
	}
	return w.f.Close()
}

// Abandon drops buffered frames and closes the active segment without
// flushing, leaving the on-disk stream exactly as a process kill
// would. Tests use it to make crash points deterministic.
func (w *Writer) Abandon() {
	if w.closed {
		return
	}
	w.closed = true
	w.pending = nil
	if w.f != nil {
		w.f.Close()
	}
}

// Records returns the number of records appended, including buffered
// ones.
func (w *Writer) Records() int64 { return w.recs }

// Bytes returns the framed size of the stream in bytes, including
// buffered frames.
func (w *Writer) Bytes() int64 { return w.bytes }

// Err returns the sticky write error, if the writer has fail-stopped.
func (w *Writer) Err() error { return w.err }

func (w *Writer) stickyOrClosed() error {
	if w.err != nil {
		return w.err
	}
	return ErrClosed
}

// rotate seals the active segment and opens the next one, named by the
// index of the record about to be appended.
func (w *Writer) rotate() error {
	if err := w.flushPending(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("journal: fsync %s: %w", w.segPath, err)
		return w.err
	}
	if err := w.f.Close(); err != nil {
		w.err = fmt.Errorf("journal: close %s: %w", w.segPath, err)
		return w.err
	}
	w.f = nil
	return w.openSegment(w.recs)
}

// openSegment opens (creating if needed) the segment whose first
// record has index rec and makes it the active segment.
func (w *Writer) openSegment(rec int64) error {
	path := segPath(w.dir, rec)
	f, err := w.opts.OpenFile(path)
	if err != nil {
		w.err = fmt.Errorf("journal: open segment %s: %w", path, err)
		return w.err
	}
	w.f, w.segPath, w.segStart, w.segBytes = f, path, rec, 0
	return nil
}
