// Package journal implements a segmented append-only write-ahead log
// for the cloud session's durable event stream.
//
// A journal is a directory of segment files, each named by the index
// of its first record (0000000000000000.seg, then e.g.
// 0000000000004096.seg once the first segment rotates). Records are
// length-prefixed frames:
//
//	u32le  payload length
//	u32le  CRC32C over (length bytes ‖ payload)
//	bytes  payload
//
// The checksum covers the length field, so a bit flip in either the
// header or the payload is detected; there is no frame whose header is
// trusted but whose body is not. Readers accept the longest valid
// prefix of the stream and report — never silently skip — whatever
// follows the first damaged frame (torn tail from a crash mid-write,
// checksum mismatch from media corruption, or a missing segment).
//
// Durability is configurable: SyncEvery fsyncs the active segment
// every N records, and rotation/Close always fsync, so a sealed
// segment is durable even across power loss. A process kill (SIGKILL)
// loses at most the writer's unflushed tail — which the reader then
// truncates away cleanly.
//
// Write failures degrade gracefully: each flush retries a capped
// number of times (immediately — the journal lives inside a
// deterministic simulator and must not sleep), and a failure that
// survives the retries fail-stops the writer with a sticky error
// rather than continuing undurable.
package journal

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// frameHeaderLen is the fixed per-record overhead: u32le payload
// length followed by u32le CRC32C over (length bytes ‖ payload).
const frameHeaderLen = 8

// maxPayload bounds a single record. The cap exists so a corrupted
// length field cannot make a reader attempt a multi-gigabyte
// allocation: any frame claiming more than this is treated as damage.
const maxPayload = 1 << 26 // 64 MiB

// segSuffix names segment files; the stem is the zero-padded decimal
// index of the segment's first record.
const segSuffix = ".seg"

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// most platforms, and the conventional choice for storage framing).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// File is the subset of *os.File the writer needs. Tests inject
// fault-wrapped implementations through Options.OpenFile to exercise
// the retry and fail-stop paths.
type File interface {
	io.Writer
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	Close() error
}

// Options configures a journal writer. The zero value is usable.
type Options struct {
	// SegmentBytes rotates to a new segment once the current one
	// reaches this size (default 4 MiB). Segments always hold at
	// least one whole frame, so a record larger than the cap still
	// fits — in a segment of its own.
	SegmentBytes int64
	// SyncEvery fsyncs the active segment after every N appended
	// records. 0 (the default) syncs only on rotation, Sync, and
	// Close: cheap, and still loses nothing short of power failure.
	SyncEvery int
	// RetryAppends caps how many times a failed file write is
	// immediately retried before the writer fail-stops (default 3).
	RetryAppends int
	// OpenFile opens a segment file for appending, creating it if
	// needed. nil uses the OS; tests inject faulty writers here.
	OpenFile func(path string) (File, error)
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.RetryAppends <= 0 {
		o.RetryAppends = 3
	}
	if o.OpenFile == nil {
		o.OpenFile = func(path string) (File, error) {
			return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		}
	}
	return o
}

// segPath names the segment whose first record has index rec.
func segPath(dir string, rec int64) string {
	return filepath.Join(dir, fmt.Sprintf("%016d%s", rec, segSuffix))
}

// segments lists the stream's segment files sorted by first-record
// index. Files that do not parse as segments are ignored.
func segments(dir string) ([]int64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var starts []int64
	for _, e := range ents {
		name := e.Name()
		stem, ok := strings.CutSuffix(name, segSuffix)
		if !ok || e.IsDir() {
			continue
		}
		n, err := strconv.ParseInt(stem, 10, 64)
		if err != nil || n < 0 {
			continue
		}
		starts = append(starts, n)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	return starts, nil
}

// frameCRC computes the frame checksum over the length header bytes
// followed by the payload.
func frameCRC(hdr []byte, payload []byte) uint32 {
	crc := crc32.Update(0, castagnoli, hdr[:4])
	return crc32.Update(crc, castagnoli, payload)
}
