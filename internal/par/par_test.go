package par

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersDefaultAndSet(t *testing.T) {
	defer SetWorkers(0)
	if Workers() != runtime.NumCPU() {
		t.Fatalf("default workers = %d, want NumCPU %d", Workers(), runtime.NumCPU())
	}
	SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("workers = %d after SetWorkers(3)", Workers())
	}
	SetWorkers(-5)
	if Workers() != runtime.NumCPU() {
		t.Fatal("negative SetWorkers should reset to NumCPU")
	}
	if Resolve(7) != 7 {
		t.Fatal("Resolve should pass positive counts through")
	}
	if Resolve(0) != runtime.NumCPU() {
		t.Fatal("Resolve(0) should take the process default")
	}
}

func TestShardCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 64} {
		for _, n := range []int{0, 1, 5, 100, 1023} {
			seen := make([]atomic.Int64, n)
			Shard(n, workers, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("bad shard [%d,%d) for n=%d", lo, hi, n)
				}
				for i := lo; i < hi; i++ {
					seen[i].Add(1)
				}
			})
			for i := range seen {
				if got := seen[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 32} {
		n := 250
		seen := make([]atomic.Int64, n)
		ForEach(n, workers, func(i int) { seen[i].Add(1) })
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachWorkerCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 32} {
		n := 250
		seen := make([]atomic.Int64, n)
		var active atomic.Int64
		ForEachWorker(n, workers, func(w, i int) {
			if w < 0 || w >= workers {
				t.Errorf("workers=%d: worker index %d out of range", workers, w)
			}
			active.Add(1)
			seen[i].Add(1)
		})
		if got := active.Load(); got != int64(n) {
			t.Fatalf("workers=%d: %d calls for %d items", workers, got, n)
		}
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

// TestForEachWorkerStableSlots checks a worker index is never used by
// two goroutines at once — the property per-worker buffer reuse needs.
func TestForEachWorkerStableSlots(t *testing.T) {
	const workers, n = 4, 400
	busy := make([]atomic.Int64, workers)
	ForEachWorker(n, workers, func(w, i int) {
		if busy[w].Add(1) != 1 {
			t.Errorf("worker slot %d entered concurrently", w)
		}
		busy[w].Add(-1)
	})
}

func TestFirstError(t *testing.T) {
	if FirstError([]error{nil, nil}) != nil {
		t.Fatal("all-nil should return nil")
	}
	e1, e2 := errors.New("one"), errors.New("two")
	if FirstError([]error{nil, e1, e2}) != e1 {
		t.Fatal("should return the lowest-index error")
	}
}
