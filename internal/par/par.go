// Package par is the shared parallel-execution substrate: a
// process-wide default worker count (the CLI -workers flag) and
// deterministic fan-out helpers used by the qsim gate kernels, the
// trajectory shot pool, the analysis sweeps, and the cloud fleet loop.
//
// Every helper here preserves result determinism: work item i always
// produces the same output slot regardless of how many workers run, so
// callers that index results by input position are bit-identical across
// worker counts.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers holds the process-wide worker count; 0 means
// runtime.NumCPU() resolved at call time.
var defaultWorkers atomic.Int64

// Workers returns the process-wide default worker count.
func Workers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.NumCPU()
}

// SetWorkers sets the process-wide default worker count. Values <= 0
// reset to runtime.NumCPU().
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Resolve maps a per-call worker request onto an effective count:
// positive values pass through, anything else takes the process
// default.
func Resolve(n int) int {
	if n > 0 {
		return n
	}
	return Workers()
}

// Shard splits [0, n) into at most `workers` contiguous chunks and runs
// fn(lo, hi) on each from its own goroutine, blocking until all finish.
// workers <= 1 (or n small) degenerates to a single in-place call.
// Chunk boundaries depend only on n and the worker count handed to the
// goroutines' launch, so side-effect-free chunk work is deterministic.
func Shard(n, workers int, fn func(lo, hi int)) {
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ForEach runs fn(i) for every i in [0, n) across the given worker
// count, pulling indices from a shared counter, and blocks until all
// complete. Results written to slot i of a caller-owned slice are
// position-stable, so output ordering is deterministic even though
// execution ordering is not.
func ForEach(n, workers int, fn func(i int)) {
	ForEachWorker(n, workers, func(_, i int) { fn(i) })
}

// ForEachWorker is ForEach with a stable worker index (0..workers-1)
// passed to fn, so callers can reuse per-worker buffers (simulator
// states, RNGs, histograms) across work items. Which worker runs a
// given item is scheduling-dependent; fn must not let an item's result
// depend on its worker index.
func ForEachWorker(n, workers int, fn func(worker, i int)) {
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// FirstError returns the lowest-index non-nil error, so parallel sweeps
// report the same failure the serial loop would have hit first.
func FirstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
