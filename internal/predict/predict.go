// Package predict implements the paper's execution-time prediction
// model (§VI-C): a product of linear terms Π(aᵢ + bᵢ·xᵢ) over job and
// machine features, trained with nonlinear least squares on a 70/30
// train/test split, evaluated by Pearson correlation per machine —
// the methodology behind Figs 15 and 16.
package predict

import (
	"fmt"
	"math/rand"

	"qcloud/internal/stats"
	"qcloud/internal/trace"
)

// Feature identifies one predictor input.
type Feature int

// Features in the order the paper introduces them: execution features
// (batch size, shots), circuit features (depth, width, gate ops), and
// machine-overhead features (memory slots, machine qubits).
const (
	FeatBatch Feature = iota
	FeatShots
	FeatDepth
	FeatWidth
	FeatGateOps
	FeatMemSlots
	FeatQubits
	numFeatures
)

// String returns the Fig 15 axis label for the feature.
func (f Feature) String() string {
	switch f {
	case FeatBatch:
		return "Batch"
	case FeatShots:
		return "+Shots"
	case FeatDepth:
		return "+Depth"
	case FeatWidth:
		return "+Width"
	case FeatGateOps:
		return "+GateOps"
	case FeatMemSlots:
		return "+MemSlots"
	case FeatQubits:
		return "+Qubits"
	default:
		return fmt.Sprintf("feature(%d)", int(f))
	}
}

// value extracts the feature from a job record.
func (f Feature) value(j *trace.Job) float64 {
	switch f {
	case FeatBatch:
		return float64(j.BatchSize)
	case FeatShots:
		return float64(j.Shots)
	case FeatDepth:
		return float64(j.TotalDepth)
	case FeatWidth:
		return float64(j.Width)
	case FeatGateOps:
		return float64(j.TotalGateOps)
	case FeatMemSlots:
		return float64(j.MemSlots)
	case FeatQubits:
		return float64(j.MachineQubits)
	default:
		return 0
	}
}

// CumulativeSets returns the incremental feature sets of Fig 15:
// {Batch}, {Batch,Shots}, ... up to all seven features.
func CumulativeSets() [][]Feature {
	sets := make([][]Feature, numFeatures)
	for i := Feature(0); i < numFeatures; i++ {
		set := make([]Feature, i+1)
		for k := Feature(0); k <= i; k++ {
			set[k] = k
		}
		sets[i] = set
	}
	return sets
}

// Model is a trained Π(aᵢ + bᵢ·xᵢ) runtime predictor.
type Model struct {
	Features []Feature
	// theta holds (aᵢ, bᵢ) pairs over scaled features.
	theta []float64
	// scale normalizes each feature to unit mean before fitting.
	scale []float64
}

// extract builds the scaled feature matrix for the jobs.
func (m *Model) extract(jobs []*trace.Job) [][]float64 {
	X := make([][]float64, len(jobs))
	for i, j := range jobs {
		row := make([]float64, len(m.Features))
		for k, f := range m.Features {
			row[k] = f.value(j) / m.scale[k]
		}
		X[i] = row
	}
	return X
}

// productModel evaluates Π(aᵢ + bᵢ·xᵢ).
func productModel(x []float64, theta []float64) float64 {
	prod := 1.0
	for i := range x {
		prod *= theta[2*i] + theta[2*i+1]*x[i]
	}
	return prod
}

// Train fits the model on the given jobs' execution times (seconds).
// It needs at least 2 jobs per parameter pair.
func Train(jobs []*trace.Job, features []Feature) (*Model, error) {
	if len(features) == 0 {
		return nil, fmt.Errorf("predict: no features")
	}
	if len(jobs) < 2*len(features)+2 {
		return nil, fmt.Errorf("predict: %d jobs too few for %d features", len(jobs), len(features))
	}
	m := &Model{Features: features, scale: make([]float64, len(features))}
	// Unit-mean scaling keeps the LM iteration well conditioned across
	// features spanning five orders of magnitude.
	for k, f := range features {
		s := 0.0
		for _, j := range jobs {
			s += f.value(j)
		}
		s /= float64(len(jobs))
		if s <= 0 {
			s = 1
		}
		m.scale[k] = s
	}
	X := m.extract(jobs)
	y := make([]float64, len(jobs))
	meanY := 0.0
	for i, j := range jobs {
		y[i] = j.ExecSeconds()
		meanY += y[i]
	}
	meanY /= float64(len(y))
	theta0 := make([]float64, 2*len(features))
	// Initialize the first factor near the mean runtime and the rest
	// near identity so the initial product is sane.
	theta0[0], theta0[1] = meanY/2, meanY/2
	for i := 1; i < len(features); i++ {
		theta0[2*i], theta0[2*i+1] = 0.7, 0.3
	}
	theta, err := stats.CurveFit(productModel, X, y, theta0, stats.CurveFitOptions{MaxIter: 300})
	if err != nil {
		return nil, fmt.Errorf("predict: fit failed: %w", err)
	}
	m.theta = theta
	return m, nil
}

// Predict returns the model's runtime estimate (seconds) for a job.
func (m *Model) Predict(j *trace.Job) float64 {
	x := make([]float64, len(m.Features))
	for k, f := range m.Features {
		x[k] = f.value(j) / m.scale[k]
	}
	return productModel(x, m.theta)
}

// Evaluation is a train/test result for one feature set.
type Evaluation struct {
	Features []Feature
	// Correlation is the Pearson coefficient between predicted and
	// actual runtimes on the held-out test set.
	Correlation float64
	// Model is the trained predictor.
	Model *Model
	// TestActual and TestPredicted are the held-out series (for the
	// Fig 16 plots).
	TestActual, TestPredicted []float64
}

// TrainTest splits jobs 70/30 (seeded shuffle), trains on the first
// split, and evaluates Pearson correlation on the second — exactly the
// paper's protocol ("Collected data is split into training and test
// sets (70/30%) to build the model").
func TrainTest(jobs []*trace.Job, features []Feature, seed int64) (*Evaluation, error) {
	executed := make([]*trace.Job, 0, len(jobs))
	for _, j := range jobs {
		if j.Status != trace.StatusCancelled && j.ExecSeconds() > 0 {
			executed = append(executed, j)
		}
	}
	if len(executed) < 20 {
		return nil, fmt.Errorf("predict: only %d executed jobs", len(executed))
	}
	r := rand.New(rand.NewSource(seed))
	shuffled := append([]*trace.Job(nil), executed...)
	r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	cut := len(shuffled) * 7 / 10
	train, test := shuffled[:cut], shuffled[cut:]
	model, err := Train(train, features)
	if err != nil {
		return nil, err
	}
	actual := make([]float64, len(test))
	predicted := make([]float64, len(test))
	for i, j := range test {
		actual[i] = j.ExecSeconds()
		predicted[i] = model.Predict(j)
	}
	return &Evaluation{
		Features:      features,
		Correlation:   stats.Pearson(predicted, actual),
		Model:         model,
		TestActual:    actual,
		TestPredicted: predicted,
	}, nil
}
