package predict

import (
	"math/rand"
	"testing"
	"time"

	"qcloud/internal/trace"
)

// syntheticJobs builds jobs whose runtime follows the cloud's
// structural model: overhead + batch*(c + shots*shotCost), with noise.
func syntheticJobs(n int, seed int64) []*trace.Job {
	r := rand.New(rand.NewSource(seed))
	t0 := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)
	jobs := make([]*trace.Job, n)
	for i := range jobs {
		batch := 1 + r.Intn(900)
		shots := []int{4096, 8192}[r.Intn(2)]
		width := 2 + r.Intn(8)
		depth := width * (5 + r.Intn(40))
		// Batch is the dominant cost term, shots a secondary one, as in
		// the cloud's execution model.
		exec := 25 + float64(batch)*(2.0+float64(shots)*0.0002)
		exec *= 0.95 + 0.1*r.Float64()
		start := t0.Add(time.Duration(i) * time.Hour)
		jobs[i] = &trace.Job{
			ID: int64(i), User: "u", Machine: "m", MachineQubits: 27, Public: true,
			BatchSize: batch, Shots: shots, Width: width,
			TotalDepth: depth * batch, TotalGateOps: depth * batch * 3, CXTotal: depth * batch,
			MemSlots:   width,
			SubmitTime: start, StartTime: start,
			EndTime: start.Add(time.Duration(exec * float64(time.Second))),
			Status:  trace.StatusDone,
		}
	}
	return jobs
}

func TestCumulativeSets(t *testing.T) {
	sets := CumulativeSets()
	if len(sets) != int(numFeatures) {
		t.Fatalf("sets = %d", len(sets))
	}
	if len(sets[0]) != 1 || sets[0][0] != FeatBatch {
		t.Fatal("first set must be {Batch}")
	}
	if len(sets[len(sets)-1]) != int(numFeatures) {
		t.Fatal("last set must include all features")
	}
}

func TestFeatureStrings(t *testing.T) {
	want := []string{"Batch", "+Shots", "+Depth", "+Width", "+GateOps", "+MemSlots", "+Qubits"}
	for i, w := range want {
		if Feature(i).String() != w {
			t.Fatalf("Feature(%d) = %s, want %s", i, Feature(i), w)
		}
	}
}

func TestTrainTestHighCorrelation(t *testing.T) {
	jobs := syntheticJobs(600, 1)
	ev, err := TrainTest(jobs, []Feature{FeatBatch, FeatShots}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The runtime law is exactly (a+b*batch)(c+d*shots)-representable,
	// so correlation should be near-perfect.
	if ev.Correlation < 0.97 {
		t.Fatalf("correlation = %v, want > 0.97", ev.Correlation)
	}
	if len(ev.TestActual) != len(ev.TestPredicted) {
		t.Fatal("series length mismatch")
	}
}

func TestBatchAloneDominates(t *testing.T) {
	jobs := syntheticJobs(600, 3)
	batchOnly, err := TrainTest(jobs, []Feature{FeatBatch}, 4)
	if err != nil {
		t.Fatal(err)
	}
	full, err := TrainTest(jobs, CumulativeSets()[int(numFeatures)-1], 4)
	if err != nil {
		t.Fatal(err)
	}
	// Fig 15: batch is the major contributor; shots refine it.
	if batchOnly.Correlation < 0.85 {
		t.Fatalf("batch-only correlation = %v, want dominant", batchOnly.Correlation)
	}
	if full.Correlation < batchOnly.Correlation-0.05 {
		t.Fatalf("full features (%v) should not be much worse than batch-only (%v)",
			full.Correlation, batchOnly.Correlation)
	}
}

func TestPredictPositive(t *testing.T) {
	jobs := syntheticJobs(300, 5)
	model, err := Train(jobs, []Feature{FeatBatch, FeatShots})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs[:20] {
		if p := model.Predict(j); p <= 0 {
			t.Fatalf("non-positive prediction %v", p)
		}
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, []Feature{FeatBatch}); err == nil {
		t.Fatal("no jobs should fail")
	}
	if _, err := Train(syntheticJobs(3, 1), CumulativeSets()[6]); err == nil {
		t.Fatal("too few jobs for feature count should fail")
	}
	if _, err := Train(syntheticJobs(100, 1), nil); err == nil {
		t.Fatal("empty feature set should fail")
	}
}

func TestTrainTestSkipsCancelled(t *testing.T) {
	jobs := syntheticJobs(100, 7)
	for _, j := range jobs[:90] {
		j.Status = trace.StatusCancelled
		j.EndTime = j.StartTime
	}
	if _, err := TrainTest(jobs, []Feature{FeatBatch}, 1); err == nil {
		t.Fatal("only 10 executed jobs should be rejected (< 20)")
	}
}

func TestNarrowRangeLowersCorrelation(t *testing.T) {
	// The Fig 16 Vigo effect: when the runtime range is narrow, noise
	// dominates and the correlation falls even though absolute errors
	// are small.
	r := rand.New(rand.NewSource(11))
	t0 := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)
	narrow := make([]*trace.Job, 200)
	for i := range narrow {
		batch := 4 + r.Intn(3) // barely any spread
		exec := 30 + float64(batch)*2 + r.NormFloat64()*4
		start := t0.Add(time.Duration(i) * time.Hour)
		narrow[i] = &trace.Job{
			ID: int64(i), Machine: "vigo-ish", MachineQubits: 5,
			BatchSize: batch, Shots: 1024, Width: 3,
			TotalDepth: 30 * batch, TotalGateOps: 90 * batch, CXTotal: 20 * batch, MemSlots: 3,
			SubmitTime: start, StartTime: start,
			EndTime: start.Add(time.Duration(exec * float64(time.Second))),
			Status:  trace.StatusDone,
		}
	}
	wide, err := TrainTest(syntheticJobs(200, 12), []Feature{FeatBatch, FeatShots}, 13)
	if err != nil {
		t.Fatal(err)
	}
	narrowEv, err := TrainTest(narrow, []Feature{FeatBatch, FeatShots}, 13)
	if err != nil {
		t.Fatal(err)
	}
	if narrowEv.Correlation >= wide.Correlation {
		t.Fatalf("narrow-range correlation (%v) should fall below wide-range (%v)",
			narrowEv.Correlation, wide.Correlation)
	}
}
