package verify

import (
	"math"
	"math/rand"
	"testing"

	"qcloud/internal/circuit"
	"qcloud/internal/circuit/gens"
	"qcloud/internal/qsim"
)

// buildHLayer returns n qubits in uniform superposition, measured.
func buildHLayer(n int) *circuit.Circuit {
	c := circuit.New("hlayer", n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	c.MeasureAll()
	return c
}

func TestNormalQuantile(t *testing.T) {
	cases := map[float64]float64{
		0.975: 1.959964,
		0.95:  1.644854,
		0.5:   0,
		0.025: -1.959964,
	}
	for p, want := range cases {
		if got := normalQuantile(p); math.Abs(got-want) > 1e-4 {
			t.Fatalf("quantile(%v) = %v, want %v", p, got, want)
		}
	}
	if !math.IsNaN(normalQuantile(0)) || !math.IsNaN(normalQuantile(1)) {
		t.Fatal("degenerate quantiles should be NaN")
	}
}

func TestChiSquareCritical(t *testing.T) {
	// Known values: chi2(0.05, 3) = 7.815, chi2(0.05, 10) = 18.307.
	if got := chiSquareCritical(3, 0.05); math.Abs(got-7.815) > 0.15 {
		t.Fatalf("crit(3) = %v, want ~7.815", got)
	}
	if got := chiSquareCritical(10, 0.05); math.Abs(got-18.307) > 0.2 {
		t.Fatalf("crit(10) = %v, want ~18.307", got)
	}
}

func TestAssertClassicalOnBV(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	counts, err := qsim.Run(gens.BernsteinVazirani(5, 0b10101), 2000, nil, r)
	if err != nil {
		t.Fatal(err)
	}
	if res := AssertClassical(counts, "10101", 0.01, 0.01); !res.Passed {
		t.Fatalf("correct BV failed assertion: %s", res)
	}
	if res := AssertClassical(counts, "11111", 0.01, 0.01); res.Passed {
		t.Fatalf("wrong value passed assertion: %s", res)
	}
}

func TestAssertClassicalToleratesHardwareNoise(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	noise := qsim.UniformNoise(1e-4, 5e-3, 0.01)
	counts, err := qsim.Run(gens.BernsteinVazirani(4, 0b1001), 3000, noise, r)
	if err != nil {
		t.Fatal(err)
	}
	// With a tolerance sized for the noise, the assertion passes.
	if res := AssertClassical(counts, "1001", 0.10, 0.01); !res.Passed {
		t.Fatalf("tolerant assertion failed: %s", res)
	}
	// With zero tolerance it catches the corruption.
	if res := AssertClassical(counts, "1001", 0, 0.01); res.Passed {
		t.Fatalf("strict assertion should fail under noise: %s", res)
	}
}

func TestAssertUniformOnSuperposition(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	circ := buildHLayer(3)
	counts, err := qsim.Run(circ, 8000, nil, r)
	if err != nil {
		t.Fatal(err)
	}
	if res := AssertUniform(counts, 3, 0.01); !res.Passed {
		t.Fatalf("uniform superposition failed: %s", res)
	}
	// GHZ is maximally non-uniform over the full register.
	ghzCounts, err := qsim.Run(gens.GHZ(3), 8000, nil, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if res := AssertUniform(ghzCounts, 3, 0.01); res.Passed {
		t.Fatalf("GHZ passed uniformity: %s", res)
	}
}

func TestAssertEqualBits(t *testing.T) {
	counts, err := qsim.Run(gens.GHZ(4), 5000, nil, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if res := AssertEqualBits(counts, 4, 0.01, 0.01); !res.Passed {
		t.Fatalf("GHZ failed equal-bits: %s", res)
	}
	// A W state breaks the correlation entirely.
	wCounts, err := qsim.Run(gens.WState(4), 5000, nil, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if res := AssertEqualBits(wCounts, 4, 0.01, 0.01); res.Passed {
		t.Fatalf("W state passed equal-bits: %s", res)
	}
}

func TestAssertProbability(t *testing.T) {
	counts, err := qsim.Run(gens.WState(4), 8000, nil, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if res := AssertProbability(counts, "0001", 0.25, 0.01); !res.Passed {
		t.Fatalf("W state P(0001)=1/4 failed: %s", res)
	}
	if res := AssertProbability(counts, "0001", 0.5, 0.001); res.Passed {
		t.Fatalf("wrong probability passed: %s", res)
	}
}

func TestEmptyCounts(t *testing.T) {
	var empty qsim.Counts
	if AssertClassical(empty, "0", 0, 0.05).Passed ||
		AssertUniform(empty, 2, 0.05).Passed ||
		AssertEqualBits(empty, 2, 0, 0.05).Passed ||
		AssertProbability(empty, "0", 0.5, 0.05).Passed {
		t.Fatal("assertions on empty counts must fail")
	}
}

func TestResultString(t *testing.T) {
	r := Result{Passed: true, ChiSquare: 1.5, DoF: 3, Critical: 7.8, Detail: "ok"}
	if s := r.String(); s == "" || s[:4] != "PASS" {
		t.Fatalf("Result string: %q", s)
	}
	r.Passed = false
	if s := r.String(); s[:4] != "FAIL" {
		t.Fatalf("Result string: %q", s)
	}
}
