// Package verify implements statistical assertions over measurement
// counts — the debugging/verification layer the paper's recommendation
// 1 calls for ("debugging and verification strategies are a must to
// maximize useful system utilization", citing Huang & Martonosi's
// statistical assertions). Assertions are chi-square hypothesis tests:
// a program states what distribution a register should have (classical
// value, uniform superposition, GHZ-style correlation) and the verifier
// checks observed counts against it before the user burns more machine
// time on a buggy circuit.
package verify

import (
	"fmt"
	"math"

	"qcloud/internal/qsim"
)

// Result is the outcome of one assertion.
type Result struct {
	// Passed reports whether the hypothesis survived at the requested
	// significance.
	Passed bool
	// ChiSquare and DoF describe the test statistic.
	ChiSquare float64
	DoF       int
	// Critical is the rejection threshold used.
	Critical float64
	// Detail is a human-readable explanation.
	Detail string
}

func (r Result) String() string {
	status := "PASS"
	if !r.Passed {
		status = "FAIL"
	}
	return fmt.Sprintf("%s (chi2=%.2f dof=%d crit=%.2f): %s", status, r.ChiSquare, r.DoF, r.Critical, r.Detail)
}

// chiSquareCritical approximates the upper critical value of the
// chi-square distribution at significance alpha using the
// Wilson-Hilferty cube transformation, accurate to a few percent for
// dof >= 1 — ample for assertion checking.
func chiSquareCritical(dof int, alpha float64) float64 {
	z := normalQuantile(1 - alpha)
	k := float64(dof)
	t := 1 - 2/(9*k) + z*math.Sqrt(2/(9*k))
	return k * t * t * t
}

// normalQuantile is the standard normal inverse CDF (Acklam's rational
// approximation, relative error < 1.2e-9).
func normalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	a := []float64{-39.69683028665376, 220.9460984245205, -275.9285104469687,
		138.3577518672690, -30.66479806614716, 2.506628277459239}
	b := []float64{-54.47609879822406, 161.5858368580409, -155.6989798598866,
		66.80131188771972, -13.28068155288572}
	c := []float64{-0.007784894002430293, -0.3223964580411365, -2.400758277161838,
		-2.549732539343734, 4.374664141464968, 2.938163982698783}
	d := []float64{0.007784695709041462, 0.3224671290700398, 2.445134137142996,
		3.754408661907416}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// AssertClassical checks that the register is (almost) always the
// given bitstring: a binomial test that P(other outcomes) is consistent
// with tolerance. Use tolerance to allow for known hardware error
// rates; alpha is the false-positive budget.
func AssertClassical(counts qsim.Counts, want string, tolerance, alpha float64) Result {
	total := counts.Total()
	if total == 0 {
		return Result{Passed: false, Detail: "no shots"}
	}
	bad := total - counts[want]
	// Normal approximation to the binomial: reject if bad count
	// exceeds the tolerance budget by more than z sigma.
	expBad := tolerance * float64(total)
	sigma := math.Sqrt(float64(total) * tolerance * (1 - tolerance))
	z := normalQuantile(1 - alpha)
	limit := expBad + z*math.Max(sigma, 1)
	passed := float64(bad) <= limit
	return Result{
		Passed: passed,
		Detail: fmt.Sprintf("classical %q: %d/%d off-value shots (limit %.1f)", want, bad, total, limit),
	}
}

// AssertUniform checks that the counts are uniform over all 2^width
// bitstrings via a chi-square goodness-of-fit test.
func AssertUniform(counts qsim.Counts, width int, alpha float64) Result {
	total := counts.Total()
	bins := 1 << uint(width)
	if total == 0 || bins < 2 {
		return Result{Passed: false, Detail: "no data"}
	}
	expected := float64(total) / float64(bins)
	chi := 0.0
	seen := 0
	for i := 0; i < bins; i++ {
		key := fmt.Sprintf("%0*b", width, i)
		d := float64(counts[key]) - expected
		chi += d * d / expected
		if counts[key] > 0 {
			seen++
		}
	}
	dof := bins - 1
	crit := chiSquareCritical(dof, alpha)
	return Result{
		Passed: chi <= crit, ChiSquare: chi, DoF: dof, Critical: crit,
		Detail: fmt.Sprintf("uniform over %d outcomes (%d observed)", bins, seen),
	}
}

// AssertEqualBits checks the GHZ-style correlation: all bits of every
// shot agree (all zeros or all ones), with a tolerance for hardware
// error, and that both branches appear with roughly equal weight.
func AssertEqualBits(counts qsim.Counts, width int, tolerance, alpha float64) Result {
	total := counts.Total()
	if total == 0 {
		return Result{Passed: false, Detail: "no shots"}
	}
	zeros := counts[allBits('0', width)]
	ones := counts[allBits('1', width)]
	bad := total - zeros - ones
	expBad := tolerance * float64(total)
	sigma := math.Sqrt(float64(total) * tolerance * (1 - tolerance))
	z := normalQuantile(1 - alpha)
	if float64(bad) > expBad+z*math.Max(sigma, 1) {
		return Result{Passed: false,
			Detail: fmt.Sprintf("correlation broken: %d/%d mixed shots", bad, total)}
	}
	// Branch balance: binomial around 1/2 over the correlated shots.
	good := zeros + ones
	if good == 0 {
		return Result{Passed: false, Detail: "no correlated shots at all"}
	}
	dev := math.Abs(float64(zeros) - float64(good)/2)
	sigmaB := math.Sqrt(float64(good)) / 2
	if dev > z*sigmaB+1 {
		return Result{Passed: false,
			Detail: fmt.Sprintf("branch imbalance: %d zeros vs %d ones", zeros, ones)}
	}
	return Result{Passed: true,
		Detail: fmt.Sprintf("equal-bits with balance %d/%d", zeros, ones)}
}

// AssertProbability checks that one bitstring's frequency matches an
// expected probability within binomial sampling error.
func AssertProbability(counts qsim.Counts, bits string, p, alpha float64) Result {
	total := counts.Total()
	if total == 0 {
		return Result{Passed: false, Detail: "no shots"}
	}
	obs := float64(counts[bits])
	exp := p * float64(total)
	sigma := math.Sqrt(float64(total) * p * (1 - p))
	z := normalQuantile(1 - alpha/2) // two-sided
	passed := math.Abs(obs-exp) <= z*math.Max(sigma, 1)
	return Result{
		Passed: passed,
		Detail: fmt.Sprintf("P(%s): observed %.4f vs expected %.4f", bits, obs/float64(total), p),
	}
}

func allBits(b byte, n int) string {
	s := make([]byte, n)
	for i := range s {
		s[i] = b
	}
	return string(s)
}
