package circuit

import (
	"fmt"
	"strings"
)

// Circuit is an ordered list of gates over a fixed-size qubit register
// and classical register. The zero value is unusable; construct with New.
type Circuit struct {
	// Name labels the circuit in traces and reports (e.g. "qft4").
	Name string
	// NQubits is the register size — the paper's "width": the number of
	// qubits the circuit requires.
	NQubits int
	// NClbits is the classical register size.
	NClbits int
	// Gates is the instruction list, in program order.
	Gates []Gate
}

// New returns an empty circuit over n qubits and n classical bits.
func New(name string, n int) *Circuit {
	if n < 0 {
		panic(fmt.Sprintf("circuit: negative qubit count %d", n))
	}
	return &Circuit{Name: name, NQubits: n, NClbits: n}
}

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{Name: c.Name, NQubits: c.NQubits, NClbits: c.NClbits}
	out.Gates = make([]Gate, len(c.Gates))
	for i, g := range c.Gates {
		out.Gates[i] = g.Clone()
	}
	return out
}

// Append adds a gate after validating operand counts and ranges.
func (c *Circuit) Append(g Gate) error {
	if want := g.Op.NumQubits(); want >= 0 && len(g.Qubits) != want {
		return fmt.Errorf("circuit: %s takes %d qubits, got %d", g.Op, want, len(g.Qubits))
	}
	if want := g.Op.NumParams(); len(g.Params) != want {
		return fmt.Errorf("circuit: %s takes %d params, got %d", g.Op, want, len(g.Params))
	}
	seen := make(map[int]bool, len(g.Qubits))
	for _, q := range g.Qubits {
		if q < 0 || q >= c.NQubits {
			return fmt.Errorf("circuit: qubit %d out of range [0,%d)", q, c.NQubits)
		}
		if seen[q] {
			return fmt.Errorf("circuit: duplicate qubit operand %d in %s", q, g.Op)
		}
		seen[q] = true
	}
	if g.Op == OpMeasure && (g.Clbit < 0 || g.Clbit >= c.NClbits) {
		return fmt.Errorf("circuit: clbit %d out of range [0,%d)", g.Clbit, c.NClbits)
	}
	c.Gates = append(c.Gates, g)
	return nil
}

// mustAppend is the internal builder used by the fluent gate helpers,
// which are only called with compile-time-correct shapes.
func (c *Circuit) mustAppend(g Gate) *Circuit {
	if err := c.Append(g); err != nil {
		panic(err)
	}
	return c
}

// Fluent builder helpers. Each appends one gate and returns the circuit.

// I appends an identity gate.
func (c *Circuit) I(q int) *Circuit { return c.mustAppend(NewGate(OpI, []int{q})) }

// X appends a Pauli-X gate.
func (c *Circuit) X(q int) *Circuit { return c.mustAppend(NewGate(OpX, []int{q})) }

// Y appends a Pauli-Y gate.
func (c *Circuit) Y(q int) *Circuit { return c.mustAppend(NewGate(OpY, []int{q})) }

// Z appends a Pauli-Z gate.
func (c *Circuit) Z(q int) *Circuit { return c.mustAppend(NewGate(OpZ, []int{q})) }

// H appends a Hadamard gate.
func (c *Circuit) H(q int) *Circuit { return c.mustAppend(NewGate(OpH, []int{q})) }

// S appends a phase gate.
func (c *Circuit) S(q int) *Circuit { return c.mustAppend(NewGate(OpS, []int{q})) }

// Sdg appends the adjoint phase gate.
func (c *Circuit) Sdg(q int) *Circuit { return c.mustAppend(NewGate(OpSdg, []int{q})) }

// T appends a T gate.
func (c *Circuit) T(q int) *Circuit { return c.mustAppend(NewGate(OpT, []int{q})) }

// Tdg appends the adjoint T gate.
func (c *Circuit) Tdg(q int) *Circuit { return c.mustAppend(NewGate(OpTdg, []int{q})) }

// SX appends a sqrt-X gate.
func (c *Circuit) SX(q int) *Circuit { return c.mustAppend(NewGate(OpSX, []int{q})) }

// RX appends an X rotation.
func (c *Circuit) RX(q int, theta float64) *Circuit {
	return c.mustAppend(NewGate(OpRX, []int{q}, theta))
}

// RY appends a Y rotation.
func (c *Circuit) RY(q int, theta float64) *Circuit {
	return c.mustAppend(NewGate(OpRY, []int{q}, theta))
}

// RZ appends a Z rotation.
func (c *Circuit) RZ(q int, theta float64) *Circuit {
	return c.mustAppend(NewGate(OpRZ, []int{q}, theta))
}

// U appends a generic single-qubit rotation U(theta, phi, lambda).
func (c *Circuit) U(q int, theta, phi, lambda float64) *Circuit {
	return c.mustAppend(NewGate(OpU, []int{q}, theta, phi, lambda))
}

// CX appends a controlled-X (CNOT) gate.
func (c *Circuit) CX(ctrl, tgt int) *Circuit {
	return c.mustAppend(NewGate(OpCX, []int{ctrl, tgt}))
}

// CZ appends a controlled-Z gate.
func (c *Circuit) CZ(a, b int) *Circuit { return c.mustAppend(NewGate(OpCZ, []int{a, b})) }

// CPhase appends a controlled phase rotation.
func (c *Circuit) CPhase(ctrl, tgt int, theta float64) *Circuit {
	return c.mustAppend(NewGate(OpCPhase, []int{ctrl, tgt}, theta))
}

// SWAP appends a SWAP gate.
func (c *Circuit) SWAP(a, b int) *Circuit { return c.mustAppend(NewGate(OpSWAP, []int{a, b})) }

// CCX appends a Toffoli gate.
func (c *Circuit) CCX(c1, c2, tgt int) *Circuit {
	return c.mustAppend(NewGate(OpCCX, []int{c1, c2, tgt}))
}

// Measure appends a measurement of qubit q into classical bit cl.
func (c *Circuit) Measure(q, cl int) *Circuit {
	g := NewGate(OpMeasure, []int{q})
	g.Clbit = cl
	return c.mustAppend(g)
}

// MeasureAll measures every qubit into its same-index classical bit.
func (c *Circuit) MeasureAll() *Circuit {
	for q := 0; q < c.NQubits; q++ {
		c.Measure(q, q)
	}
	return c
}

// Reset appends a reset of qubit q to |0>.
func (c *Circuit) Reset(q int) *Circuit { return c.mustAppend(NewGate(OpReset, []int{q})) }

// Barrier appends a barrier over the given qubits (all qubits if none).
func (c *Circuit) Barrier(qs ...int) *Circuit {
	if len(qs) == 0 {
		qs = make([]int, c.NQubits)
		for i := range qs {
			qs[i] = i
		}
	}
	return c.mustAppend(Gate{Op: OpBarrier, Qubits: qs, Clbit: -1})
}

// String renders the circuit as QASM-like text, one gate per line.
func (c *Circuit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "// %s: %d qubits, %d gates\n", c.Name, c.NQubits, len(c.Gates))
	fmt.Fprintf(&b, "qreg q[%d];\ncreg c[%d];\n", c.NQubits, c.NClbits)
	for _, g := range c.Gates {
		b.WriteString(g.String())
		b.WriteString(";\n")
	}
	return b.String()
}
