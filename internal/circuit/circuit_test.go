package circuit

import (
	"math"
	"strings"
	"testing"
)

func TestAppendValidation(t *testing.T) {
	c := New("t", 2)
	if err := c.Append(NewGate(OpCX, []int{0})); err == nil {
		t.Fatal("wrong operand count should fail")
	}
	if err := c.Append(NewGate(OpCX, []int{0, 2})); err == nil {
		t.Fatal("out-of-range qubit should fail")
	}
	if err := c.Append(NewGate(OpCX, []int{1, 1})); err == nil {
		t.Fatal("duplicate operand should fail")
	}
	if err := c.Append(NewGate(OpRZ, []int{0})); err == nil {
		t.Fatal("missing param should fail")
	}
	g := NewGate(OpMeasure, []int{0})
	g.Clbit = 5
	if err := c.Append(g); err == nil {
		t.Fatal("out-of-range clbit should fail")
	}
	if err := c.Append(NewGate(OpCX, []int{0, 1})); err != nil {
		t.Fatalf("valid gate rejected: %v", err)
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New("bad", -1)
}

func TestFluentBuilders(t *testing.T) {
	c := New("all", 3)
	c.I(0).X(0).Y(0).Z(0).H(0).S(0).Sdg(0).T(0).Tdg(0).SX(0)
	c.RX(1, 0.1).RY(1, 0.2).RZ(1, 0.3).U(1, 0.1, 0.2, 0.3)
	c.CX(0, 1).CZ(1, 2).CPhase(0, 2, math.Pi/4).SWAP(0, 2).CCX(0, 1, 2)
	c.Reset(0).Barrier().Measure(0, 0)
	if len(c.Gates) != 22 {
		t.Fatalf("gate count = %d, want 22", len(c.Gates))
	}
}

func TestDepthSerialVsParallel(t *testing.T) {
	serial := New("serial", 1)
	serial.H(0).H(0).H(0)
	if d := serial.Depth(); d != 3 {
		t.Fatalf("serial depth = %d, want 3", d)
	}
	parallel := New("parallel", 3)
	parallel.H(0).H(1).H(2)
	if d := parallel.Depth(); d != 1 {
		t.Fatalf("parallel depth = %d, want 1", d)
	}
}

func TestDepthTwoQubitChain(t *testing.T) {
	c := New("chain", 3)
	c.CX(0, 1).CX(1, 2).CX(0, 1)
	if d := c.Depth(); d != 3 {
		t.Fatalf("chain depth = %d, want 3", d)
	}
}

func TestCXMetrics(t *testing.T) {
	c := New("m", 4)
	c.H(0)
	c.CX(0, 1)
	c.CX(2, 3) // parallel with the first CX
	c.CX(1, 2) // depends on both
	m := ComputeMetrics(c)
	if m.CXCount != 3 {
		t.Fatalf("CXCount = %d, want 3", m.CXCount)
	}
	if m.CXDepth != 2 {
		t.Fatalf("CXDepth = %d, want 2", m.CXDepth)
	}
	if m.Width != 4 {
		t.Fatalf("Width = %d", m.Width)
	}
	if m.GateOps != 4 {
		t.Fatalf("GateOps = %d, want 4", m.GateOps)
	}
}

func TestCXDepthIgnoresOneQubitGates(t *testing.T) {
	c := New("m", 2)
	c.H(0).H(0).H(0).CX(0, 1)
	m := ComputeMetrics(c)
	if m.CXDepth != 1 {
		t.Fatalf("CXDepth = %d, want 1", m.CXDepth)
	}
	if m.Depth != 4 {
		t.Fatalf("Depth = %d, want 4", m.Depth)
	}
}

func TestBarrierSynchronizesButAddsNoDepth(t *testing.T) {
	c := New("b", 2)
	c.H(0).Barrier().H(1)
	// The barrier forces H(1) to start after H(0) finishes: depth 2.
	if d := c.Depth(); d != 2 {
		t.Fatalf("depth with barrier = %d, want 2", d)
	}
	noB := New("nb", 2)
	noB.H(0).H(1)
	if d := noB.Depth(); d != 1 {
		t.Fatalf("depth without barrier = %d, want 1", d)
	}
}

func TestGateCountsExcludeBarrier(t *testing.T) {
	c := New("gc", 2)
	c.H(0).H(1).CX(0, 1).Barrier()
	counts := c.GateCounts()
	if counts["h"] != 2 || counts["cx"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if _, ok := counts["barrier"]; ok {
		t.Fatal("barrier should be excluded")
	}
}

func TestUsedQubits(t *testing.T) {
	c := New("u", 5)
	c.H(1).CX(1, 3)
	got := c.UsedQubits()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("UsedQubits = %v, want [1 3]", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := New("orig", 2)
	c.RZ(0, 1.5).CX(0, 1)
	d := c.Clone()
	d.Gates[0].Params[0] = 99
	d.Gates[1].Qubits[0] = 1
	if c.Gates[0].Params[0] != 1.5 || c.Gates[1].Qubits[0] != 0 {
		t.Fatal("clone shares storage with original")
	}
}

func TestStringRendering(t *testing.T) {
	c := New("str", 2)
	c.RZ(0, 0.5).CX(0, 1).Measure(1, 1)
	s := c.String()
	for _, want := range []string{"qreg q[2]", "rz(0.5) q[0];", "cx q[0], q[1];", "measure q[1] -> c[1];"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q in:\n%s", want, s)
		}
	}
}

func TestOpProperties(t *testing.T) {
	if !OpCX.IsTwoQubit() || OpH.IsTwoQubit() || OpCCX.IsTwoQubit() {
		t.Fatal("IsTwoQubit misclassifies")
	}
	if OpMeasure.IsUnitary() || OpBarrier.IsUnitary() || !OpRZ.IsUnitary() {
		t.Fatal("IsUnitary misclassifies")
	}
	if OpBarrier.NumQubits() != -1 {
		t.Fatal("barrier should be variadic")
	}
	if OpU.NumParams() != 3 || OpCPhase.NumParams() != 1 {
		t.Fatal("NumParams wrong")
	}
	if OpCX.String() != "cx" || Op(200).String() == "" {
		t.Fatal("String misbehaves")
	}
}
