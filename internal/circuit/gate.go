// Package circuit defines the quantum-circuit intermediate representation
// used across qcloud: gates, circuits, and the structural metrics the
// paper's analyses depend on (width, depth, CX-depth, CX-count, total
// gate operations).
//
// The gate set mirrors the subset of OpenQASM 2 that IBM backends expose,
// plus CCX so that three-qubit decomposition ("Unroll3qOrMore" in the
// paper's Fig 5 pass list) has something to do.
package circuit

import (
	"fmt"
	"strings"
)

// Op identifies a gate operation.
type Op uint8

// Supported operations. OpU is the generic single-qubit rotation
// U(θ,φ,λ); OpCPhase is the controlled phase rotation QFT is built from.
const (
	OpI Op = iota
	OpX
	OpY
	OpZ
	OpH
	OpS
	OpSdg
	OpT
	OpTdg
	OpSX
	OpRX
	OpRY
	OpRZ
	OpU
	OpCX
	OpCZ
	OpCPhase
	OpSWAP
	OpCCX
	OpMeasure
	OpReset
	OpBarrier
)

var opNames = [...]string{
	OpI: "id", OpX: "x", OpY: "y", OpZ: "z", OpH: "h",
	OpS: "s", OpSdg: "sdg", OpT: "t", OpTdg: "tdg", OpSX: "sx",
	OpRX: "rx", OpRY: "ry", OpRZ: "rz", OpU: "u",
	OpCX: "cx", OpCZ: "cz", OpCPhase: "cp", OpSWAP: "swap", OpCCX: "ccx",
	OpMeasure: "measure", OpReset: "reset", OpBarrier: "barrier",
}

// String returns the lowercase QASM-style mnemonic for the op.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// NumQubits returns how many qubit operands the op takes. Barrier is
// variadic and returns -1.
func (o Op) NumQubits() int {
	switch o {
	case OpCX, OpCZ, OpCPhase, OpSWAP:
		return 2
	case OpCCX:
		return 3
	case OpBarrier:
		return -1
	default:
		return 1
	}
}

// NumParams returns how many angle parameters the op takes.
func (o Op) NumParams() int {
	switch o {
	case OpRX, OpRY, OpRZ, OpCPhase:
		return 1
	case OpU:
		return 3
	default:
		return 0
	}
}

// IsTwoQubit reports whether the op acts on exactly two qubits. The
// paper's fidelity analysis (Fig 7) is built on counting these.
func (o Op) IsTwoQubit() bool { return o.NumQubits() == 2 }

// IsDiagonal reports whether the op's matrix is diagonal in the
// computational basis (phase-only). Diagonal gates commute with each
// other, so a run of them collapses into a single phase-table sweep in
// the simulator's fusion prepass.
func (o Op) IsDiagonal() bool {
	switch o {
	case OpI, OpZ, OpS, OpSdg, OpT, OpTdg, OpRZ, OpCZ, OpCPhase:
		return true
	default:
		return false
	}
}

// IsUnitary reports whether the op is a unitary gate (as opposed to
// measurement, reset, or barrier).
func (o Op) IsUnitary() bool {
	switch o {
	case OpMeasure, OpReset, OpBarrier:
		return false
	default:
		return true
	}
}

// Gate is one instruction in a circuit. Qubits are indices into the
// circuit's qubit register; Params are rotation angles in radians; Clbit
// is the classical target of a measurement (-1 otherwise).
type Gate struct {
	Op     Op
	Qubits []int
	Params []float64
	Clbit  int
}

// NewGate builds a gate with Clbit unset.
func NewGate(op Op, qubits []int, params ...float64) Gate {
	return Gate{Op: op, Qubits: qubits, Params: params, Clbit: -1}
}

// Clone returns a deep copy of g.
func (g Gate) Clone() Gate {
	c := g
	c.Qubits = append([]int(nil), g.Qubits...)
	c.Params = append([]float64(nil), g.Params...)
	return c
}

// String renders the gate in QASM-like form, e.g. "cx q[0], q[1]".
func (g Gate) String() string {
	var b strings.Builder
	b.WriteString(g.Op.String())
	if len(g.Params) > 0 {
		b.WriteByte('(')
		for i, p := range g.Params {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%.10g", p)
		}
		b.WriteByte(')')
	}
	b.WriteByte(' ')
	for i, q := range g.Qubits {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "q[%d]", q)
	}
	if g.Op == OpMeasure && g.Clbit >= 0 {
		fmt.Fprintf(&b, " -> c[%d]", g.Clbit)
	}
	return b.String()
}
