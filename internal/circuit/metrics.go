package circuit

// Metrics captures the structural circuit properties the paper's
// analyses consume: width, depth, CX depth, CX count, and total gate
// operations (§II-B definitions; Figs 7 and 15 features).
type Metrics struct {
	// Width is the number of qubits the circuit requires.
	Width int
	// Depth is the length of the critical path counting every gate.
	Depth int
	// CXDepth is the critical-path length counting only two-qubit gates
	// — the paper's "CX-Depth" (Fig 7).
	CXDepth int
	// CXCount is the total number of two-qubit gates — "CX-Total".
	CXCount int
	// GateOps is the total number of gate operations excluding barriers.
	GateOps int
	// Measurements is the number of measure instructions.
	Measurements int
}

// ComputeMetrics derives Metrics for c in a single pass.
func ComputeMetrics(c *Circuit) Metrics {
	m := Metrics{Width: c.NQubits}
	depth := make([]int, c.NQubits)   // per-qubit all-gate frontier
	cxDepth := make([]int, c.NQubits) // per-qubit two-qubit-gate frontier
	for _, g := range c.Gates {
		if g.Op == OpBarrier {
			// Barriers synchronize frontiers but add no depth.
			maxD, maxC := 0, 0
			for _, q := range g.Qubits {
				if depth[q] > maxD {
					maxD = depth[q]
				}
				if cxDepth[q] > maxC {
					maxC = cxDepth[q]
				}
			}
			for _, q := range g.Qubits {
				depth[q] = maxD
				cxDepth[q] = maxC
			}
			continue
		}
		m.GateOps++
		if g.Op == OpMeasure {
			m.Measurements++
		}
		isTwoQ := g.Op.IsTwoQubit()
		if isTwoQ {
			m.CXCount++
		}
		level, cxLevel := 0, 0
		for _, q := range g.Qubits {
			if depth[q] > level {
				level = depth[q]
			}
			if cxDepth[q] > cxLevel {
				cxLevel = cxDepth[q]
			}
		}
		level++
		if isTwoQ {
			cxLevel++
		}
		for _, q := range g.Qubits {
			depth[q] = level
			if isTwoQ {
				cxDepth[q] = cxLevel
			}
		}
	}
	for q := 0; q < c.NQubits; q++ {
		if depth[q] > m.Depth {
			m.Depth = depth[q]
		}
		if cxDepth[q] > m.CXDepth {
			m.CXDepth = cxDepth[q]
		}
	}
	return m
}

// Depth returns the all-gate critical-path depth of c.
func (c *Circuit) Depth() int { return ComputeMetrics(c).Depth }

// CXCount returns the number of two-qubit gates in c.
func (c *Circuit) CXCount() int { return ComputeMetrics(c).CXCount }

// GateCounts returns a histogram of gate ops by mnemonic, excluding
// barriers.
func (c *Circuit) GateCounts() map[string]int {
	counts := make(map[string]int)
	for _, g := range c.Gates {
		if g.Op == OpBarrier {
			continue
		}
		counts[g.Op.String()]++
	}
	return counts
}

// UsedQubits returns the sorted set of qubit indices touched by any
// non-barrier gate. Machine utilization (Fig 8) is
// len(UsedQubits)/machine size after mapping.
func (c *Circuit) UsedQubits() []int {
	used := make([]bool, c.NQubits)
	for _, g := range c.Gates {
		if g.Op == OpBarrier {
			continue
		}
		for _, q := range g.Qubits {
			used[q] = true
		}
	}
	var out []int
	for q, u := range used {
		if u {
			out = append(out, q)
		}
	}
	return out
}
