package gens

import (
	"math/rand"
	"testing"
	"testing/quick"

	"qcloud/internal/circuit"
)

func TestQFTStructure(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		c := QFT(n)
		if c.NQubits != n {
			t.Fatalf("QFT(%d) width = %d", n, c.NQubits)
		}
		counts := c.GateCounts()
		if counts["h"] != n {
			t.Fatalf("QFT(%d) H count = %d, want %d", n, counts["h"], n)
		}
		wantCP := n * (n - 1) / 2
		if counts["cp"] != wantCP {
			t.Fatalf("QFT(%d) cp count = %d, want %d", n, counts["cp"], wantCP)
		}
		if counts["swap"] != n/2 {
			t.Fatalf("QFT(%d) swap count = %d, want %d", n, counts["swap"], n/2)
		}
		if counts["measure"] != n {
			t.Fatalf("QFT(%d) measurements = %d", n, counts["measure"])
		}
	}
}

func TestQFTCXMetricsScaleQuadratically(t *testing.T) {
	m4 := circuit.ComputeMetrics(QFT(4))
	m8 := circuit.ComputeMetrics(QFT(8))
	// cp+swap counts: n(n-1)/2 + n/2 = n²/2, so 8q should be ~4x the 4q.
	if m8.CXCount < 3*m4.CXCount {
		t.Fatalf("expected superlinear CX growth: %d -> %d", m4.CXCount, m8.CXCount)
	}
}

func TestGHZ(t *testing.T) {
	c := GHZ(5)
	counts := c.GateCounts()
	if counts["h"] != 1 || counts["cx"] != 4 {
		t.Fatalf("GHZ(5) counts = %v", counts)
	}
	if GHZ(0).NQubits != 0 {
		t.Fatal("GHZ(0) should be empty but valid")
	}
}

func TestBernsteinVazirani(t *testing.T) {
	c := BernsteinVazirani(4, 0b1011)
	if c.NQubits != 5 {
		t.Fatalf("BV width = %d, want 5", c.NQubits)
	}
	if got := c.GateCounts()["cx"]; got != 3 {
		t.Fatalf("BV cx count = %d, want popcount(1011)=3", got)
	}
	if got := c.GateCounts()["measure"]; got != 4 {
		t.Fatalf("BV measures data qubits only: %d", got)
	}
}

func TestQAOA(t *testing.T) {
	edges := RingEdges(6)
	if len(edges) != 6 {
		t.Fatalf("ring edges = %d", len(edges))
	}
	c := QAOAMaxCut(6, edges, 2)
	counts := c.GateCounts()
	// 2 CX per edge per layer.
	if counts["cx"] != 2*6*2 {
		t.Fatalf("QAOA cx = %d, want 24", counts["cx"])
	}
	if counts["rx"] != 12 {
		t.Fatalf("QAOA rx = %d, want 12", counts["rx"])
	}
}

func TestHardwareEfficientAnsatzSeeded(t *testing.T) {
	a := HardwareEfficientAnsatz(rand.New(rand.NewSource(1)), 4, 3)
	b := HardwareEfficientAnsatz(rand.New(rand.NewSource(1)), 4, 3)
	if a.String() != b.String() {
		t.Fatal("same seed should give identical ansatz")
	}
	cDiff := HardwareEfficientAnsatz(rand.New(rand.NewSource(2)), 4, 3)
	if a.String() == cDiff.String() {
		t.Fatal("different seeds should differ")
	}
	if got := a.GateCounts()["cx"]; got != 3*3 {
		t.Fatalf("ansatz cx = %d, want 9", got)
	}
}

func TestRippleCarryAdder(t *testing.T) {
	c := RippleCarryAdder(3)
	if c.NQubits != 8 {
		t.Fatalf("adder width = %d, want 8", c.NQubits)
	}
	counts := c.GateCounts()
	// 2 MAJ-ish + UMA per bit: 2 CCX per bit.
	if counts["ccx"] != 6 {
		t.Fatalf("adder ccx = %d, want 6", counts["ccx"])
	}
}

func TestRandomCircuitProperties(t *testing.T) {
	f := func(seed int64, wRaw, dRaw uint8) bool {
		w := int(wRaw%10) + 2
		d := int(dRaw%20) + 1
		r := rand.New(rand.NewSource(seed))
		c := Random(r, w, d, 0.3)
		if c.NQubits != w {
			return false
		}
		m := circuit.ComputeMetrics(c)
		// Depth includes the measure layer; each layer adds >= 1 depth.
		return m.Depth >= d && m.GateOps > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(rand.New(rand.NewSource(42)), 5, 10, 0.4)
	b := Random(rand.New(rand.NewSource(42)), 5, 10, 0.4)
	if a.String() != b.String() {
		t.Fatal("same seed must reproduce circuit")
	}
}

func TestRandomTwoQubitFraction(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	none := Random(r, 6, 20, 0)
	if none.CXCount() != 0 {
		t.Fatal("twoQubitFrac=0 should yield no CX")
	}
}

func TestApproxQFTFullDegreeEqualsQFT(t *testing.T) {
	n := 6
	full := ApproxQFT(n, n)
	exact := QFT(n)
	if full.GateCounts()["cp"] != exact.GateCounts()["cp"] {
		t.Fatalf("AQFT(n,n) cp = %d, QFT cp = %d",
			full.GateCounts()["cp"], exact.GateCounts()["cp"])
	}
}

func TestApproxQFTLinearScaling(t *testing.T) {
	n := 64
	approx := ApproxQFT(n, 6)
	exact := QFT(n)
	ac, ec := approx.GateCounts()["cp"], exact.GateCounts()["cp"]
	if ac >= ec/4 {
		t.Fatalf("AQFT should cut rotations drastically: %d vs %d", ac, ec)
	}
	// O(n*degree): exactly sum over i of min(degree-1, n-1-i).
	if ac > n*6 {
		t.Fatalf("AQFT cp count %d exceeds n*degree", ac)
	}
	if ApproxQFT(4, 0).GateCounts()["cp"] != 0 {
		t.Fatal("degree<=1 keeps no controlled rotations")
	}
}
