// Package gens builds the benchmark circuits used throughout the
// reproduction: QFT (the paper's compile-time and fidelity workload),
// GHZ, Bernstein-Vazirani, QAOA and hardware-efficient ansatz circuits,
// a ripple-carry adder, and seeded random circuits for workload
// synthesis.
package gens

import (
	"fmt"
	"math"
	"math/rand"

	"qcloud/internal/circuit"
)

// QFT returns the n-qubit Quantum Fourier Transform, built from H and
// controlled-phase gates with the standard final qubit-reversal SWAPs.
// This is the workload of the paper's Fig 5 (64q and 980q compile
// timing) and Fig 7 (4q fidelity study).
func QFT(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("qft%d", n), n)
	qftBody(c, n)
	c.MeasureAll()
	return c
}

// qftBody appends the QFT gate network over qubits 0..n-1.
func qftBody(c *circuit.Circuit, n int) {
	for i := 0; i < n; i++ {
		c.H(i)
		for j := i + 1; j < n; j++ {
			c.CPhase(j, i, math.Pi/math.Pow(2, float64(j-i)))
		}
	}
	for i := 0; i < n/2; i++ {
		c.SWAP(i, n-1-i)
	}
}

// QFTBench returns the deterministic QFT fidelity benchmark: prepare
// the uniform superposition with a Hadamard layer, apply QFT, measure.
// Ideally every shot returns the all-zeros bitstring (the QFT of the
// uniform superposition is |0...0>), so the probability of success is
// directly the frequency of "00...0" — the POS protocol of Fig 7.
func QFTBench(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("qftbench%d", n), n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	qftBody(c, n)
	c.MeasureAll()
	return c
}

// GHZ returns the n-qubit GHZ state preparation: H on qubit 0 followed
// by a CX chain.
func GHZ(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("ghz%d", n), n)
	if n == 0 {
		return c
	}
	c.H(0)
	for i := 1; i < n; i++ {
		c.CX(i-1, i)
	}
	c.MeasureAll()
	return c
}

// BernsteinVazirani returns the BV circuit for an n-bit secret string.
// Bit i of secret selects whether a CX from data qubit i to the ancilla
// (qubit n) appears. The circuit has n+1 qubits.
func BernsteinVazirani(n int, secret uint64) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("bv%d", n), n+1)
	c.NClbits = n // only the data register is measured
	anc := n
	c.X(anc)
	for i := 0; i <= n; i++ {
		c.H(i)
	}
	for i := 0; i < n; i++ {
		if secret&(1<<uint(i)) != 0 {
			c.CX(i, anc)
		}
	}
	for i := 0; i < n; i++ {
		c.H(i)
		c.Measure(i, i)
	}
	return c
}

// Edge is an undirected graph edge for QAOA problem instances.
type Edge struct{ A, B int }

// QAOAMaxCut returns a p-layer QAOA MaxCut circuit over n qubits with
// the given problem edges. Gamma/beta angles are fixed representative
// values; the structure (RZZ via CX-RZ-CX, then RX mixers) is what
// matters for compilation and execution studies.
func QAOAMaxCut(n int, edges []Edge, layers int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("qaoa%d_p%d", n, layers), n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for l := 0; l < layers; l++ {
		gamma := 0.7 / float64(l+1)
		beta := 0.4 * float64(l+1)
		for _, e := range edges {
			c.CX(e.A, e.B)
			c.RZ(e.B, 2*gamma)
			c.CX(e.A, e.B)
		}
		for q := 0; q < n; q++ {
			c.RX(q, 2*beta)
		}
	}
	c.MeasureAll()
	return c
}

// RingEdges returns the edge list of an n-cycle, a standard QAOA
// benchmark topology.
func RingEdges(n int) []Edge {
	edges := make([]Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, Edge{i, (i + 1) % n})
	}
	return edges
}

// HardwareEfficientAnsatz returns a VQE-style ansatz: layers of RY+RZ
// rotations followed by a linear CX entangling ladder. Angles are drawn
// from r so distinct instances differ, as parameterized jobs do in the
// trace.
func HardwareEfficientAnsatz(r *rand.Rand, n, layers int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("vqe%d_l%d", n, layers), n)
	for l := 0; l < layers; l++ {
		for q := 0; q < n; q++ {
			c.RY(q, r.Float64()*2*math.Pi)
			c.RZ(q, r.Float64()*2*math.Pi)
		}
		for q := 0; q+1 < n; q++ {
			c.CX(q, q+1)
		}
	}
	for q := 0; q < n; q++ {
		c.RY(q, r.Float64()*2*math.Pi)
	}
	c.MeasureAll()
	return c
}

// RippleCarryAdder returns a CDKM-style ripple-carry adder over two
// nBits-wide registers plus carry qubits: 2*nBits+2 qubits total. The
// MAJ/UMA blocks use CCX gates, exercising three-qubit decomposition in
// the compiler.
func RippleCarryAdder(nBits int) *circuit.Circuit {
	n := 2*nBits + 2
	c := circuit.New(fmt.Sprintf("adder%d", nBits), n)
	// Register layout: a[i] = i, b[i] = nBits+i, carryIn = 2*nBits,
	// carryOut = 2*nBits+1.
	a := func(i int) int { return i }
	b := func(i int) int { return nBits + i }
	cin := 2 * nBits
	cout := 2*nBits + 1

	maj := func(x, y, z int) {
		c.CX(z, y)
		c.CX(z, x)
		c.CCX(x, y, z)
	}
	uma := func(x, y, z int) {
		c.CCX(x, y, z)
		c.CX(z, x)
		c.CX(x, y)
	}

	maj(cin, b(0), a(0))
	for i := 1; i < nBits; i++ {
		maj(a(i-1), b(i), a(i))
	}
	c.CX(a(nBits-1), cout)
	for i := nBits - 1; i >= 1; i-- {
		uma(a(i-1), b(i), a(i))
	}
	uma(cin, b(0), a(0))
	c.MeasureAll()
	return c
}

// Random returns a seeded random circuit of the given width and target
// all-gate depth; twoQubitFrac controls the fraction of layers' slots
// filled with CX gates. Random circuits stand in for the long tail of
// user programs in the synthetic workload.
func Random(r *rand.Rand, n, depth int, twoQubitFrac float64) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("rand%dx%d", n, depth), n)
	oneQ := []circuit.Op{circuit.OpH, circuit.OpX, circuit.OpT, circuit.OpS, circuit.OpSX}
	for d := 0; d < depth; d++ {
		perm := r.Perm(n)
		i := 0
		for i < n {
			if i+1 < n && r.Float64() < twoQubitFrac {
				c.CX(perm[i], perm[i+1])
				i += 2
				continue
			}
			op := oneQ[r.Intn(len(oneQ))]
			switch op {
			case circuit.OpH:
				c.H(perm[i])
			case circuit.OpX:
				c.X(perm[i])
			case circuit.OpT:
				c.T(perm[i])
			case circuit.OpS:
				c.S(perm[i])
			default:
				c.SX(perm[i])
			}
			i++
		}
	}
	c.MeasureAll()
	return c
}

// Grover returns a Grover-search circuit over n in {2,3} qubits that
// amplifies the marked basis state (given as bits of marked, qubit 0 =
// bit 0). Two qubits need one iteration (exact); three need two
// (P(success) ~ 0.945). Oracles and diffusion are built from H/X/CZ and
// CCZ (via H-conjugated CCX), exercising the 3q decomposition path.
func Grover(n int, marked uint64) *circuit.Circuit {
	if n < 2 || n > 3 {
		panic(fmt.Sprintf("gens: Grover supports 2 or 3 qubits, got %d", n))
	}
	c := circuit.New(fmt.Sprintf("grover%d", n), n)
	iterations := 1
	if n == 3 {
		iterations = 2
	}
	flipUnmarked := func() {
		for q := 0; q < n; q++ {
			if marked&(1<<uint(q)) == 0 {
				c.X(q)
			}
		}
	}
	controlledZAll := func() {
		if n == 2 {
			c.CZ(0, 1)
			return
		}
		// CCZ = H(2) CCX(0,1,2) H(2).
		c.H(2)
		c.CCX(0, 1, 2)
		c.H(2)
	}
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for it := 0; it < iterations; it++ {
		// Oracle: phase-flip the marked state.
		flipUnmarked()
		controlledZAll()
		flipUnmarked()
		// Diffusion: inversion about the mean.
		for q := 0; q < n; q++ {
			c.H(q)
			c.X(q)
		}
		controlledZAll()
		for q := 0; q < n; q++ {
			c.X(q)
			c.H(q)
		}
	}
	c.MeasureAll()
	return c
}

// WState prepares the n-qubit W state (equal superposition of all
// single-excitation basis states) with the cascade of controlled
// rotations decomposed into RY/CX/X, then measures. Each outcome is a
// one-hot bitstring with probability 1/n.
func WState(n int) *circuit.Circuit {
	if n < 1 {
		panic("gens: WState needs n >= 1")
	}
	c := circuit.New(fmt.Sprintf("w%d", n), n)
	if n == 1 {
		c.X(0).MeasureAll()
		return c
	}
	// Cascade: qubit 0 carries the excitation, and at step k we move a
	// 1/(n-k) share of it onto qubit k via a controlled rotation
	// CRY(theta) = RY(theta/2) CX RY(-theta/2) CX, then a CX copies the
	// remaining control forward.
	c.X(0)
	for k := 1; k < n; k++ {
		remaining := float64(n - k + 1)
		theta := 2 * math.Acos(math.Sqrt(1/remaining))
		// CRY(theta) with control k-1, target k.
		c.RY(k, theta/2)
		c.CX(k-1, k)
		c.RY(k, -theta/2)
		c.CX(k-1, k)
		// Move the excitation: if qubit k took it, clear qubit k-1.
		c.CX(k, k-1)
	}
	c.MeasureAll()
	return c
}

// Teleport returns the coherent (deferred-measurement) quantum
// teleportation verification circuit: an arbitrary state RY(theta) ·
// RZ(phi)|0> is prepared on qubit 0, teleported onto qubit 2 through a
// Bell pair with coherent CX/CZ corrections, and un-prepared on qubit
// 2. Every shot ideally measures qubit 2 as 0, so P(q2=0) is the
// teleportation fidelity.
func Teleport(theta, phi float64) *circuit.Circuit {
	c := circuit.New("teleport", 3)
	c.NClbits = 1
	// Prepare the payload state.
	c.RY(0, theta)
	c.RZ(0, phi)
	// Bell pair between qubits 1 and 2.
	c.H(1)
	c.CX(1, 2)
	// Bell measurement basis change on 0-1, corrections deferred.
	c.CX(0, 1)
	c.H(0)
	c.CX(1, 2)
	c.CZ(0, 2)
	// Un-prepare on the destination and verify.
	c.RZ(2, -phi)
	c.RY(2, -theta)
	c.Measure(2, 0)
	return c
}

// ApproxQFT returns the approximate QFT: controlled-phase rotations
// smaller than pi/2^(degree-1) are dropped, cutting the gate count from
// O(n^2) to O(n*degree) with negligible fidelity loss for degree ~
// log2(n). This is the kind of "appropriate optimization threshold"
// §III-E.2 recommends for keeping compilation tractable at 1000 qubits.
func ApproxQFT(n, degree int) *circuit.Circuit {
	if degree < 1 {
		degree = 1
	}
	c := circuit.New(fmt.Sprintf("aqft%d_d%d", n, degree), n)
	for i := 0; i < n; i++ {
		c.H(i)
		for j := i + 1; j < n && j-i < degree; j++ {
			c.CPhase(j, i, math.Pi/math.Pow(2, float64(j-i)))
		}
	}
	for i := 0; i < n/2; i++ {
		c.SWAP(i, n-1-i)
	}
	c.MeasureAll()
	return c
}
