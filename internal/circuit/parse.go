package circuit

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Parse reads the QASM-like dialect emitted by Circuit.String and
// reconstructs the circuit, so traces of compiled programs can be
// stored and reloaded as text. The dialect is a strict subset of
// OpenQASM 2: one statement per line, a single qreg/creg pair, and the
// gate set of this package.
func Parse(r io.Reader) (*Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	c := &Circuit{Name: "parsed", NQubits: -1, NClbits: -1}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		switch {
		case text == "" || strings.HasPrefix(text, "OPENQASM") || strings.HasPrefix(text, "include"):
			continue
		case strings.HasPrefix(text, "//"):
			// The header comment carries the circuit name.
			fields := strings.Fields(strings.TrimPrefix(text, "//"))
			if len(fields) > 0 && c.Name == "parsed" {
				c.Name = strings.TrimSuffix(fields[0], ":")
			}
			continue
		}
		stmt := strings.TrimSuffix(text, ";")
		if stmt == text {
			return nil, fmt.Errorf("circuit: line %d: missing semicolon", line)
		}
		if err := parseStatement(c, stmt); err != nil {
			return nil, fmt.Errorf("circuit: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if c.NQubits < 0 {
		return nil, fmt.Errorf("circuit: no qreg declaration")
	}
	if c.NClbits < 0 {
		c.NClbits = c.NQubits
	}
	return c, nil
}

// ParseString parses the textual circuit form from a string.
func ParseString(s string) (*Circuit, error) { return Parse(strings.NewReader(s)) }

var opByName = map[string]Op{
	"id": OpI, "x": OpX, "y": OpY, "z": OpZ, "h": OpH,
	"s": OpS, "sdg": OpSdg, "t": OpT, "tdg": OpTdg, "sx": OpSX,
	"rx": OpRX, "ry": OpRY, "rz": OpRZ, "u": OpU,
	"cx": OpCX, "cz": OpCZ, "cp": OpCPhase, "swap": OpSWAP, "ccx": OpCCX,
	"measure": OpMeasure, "reset": OpReset, "barrier": OpBarrier,
}

func parseStatement(c *Circuit, stmt string) error {
	switch {
	case strings.HasPrefix(stmt, "qreg"):
		n, err := parseRegDecl(stmt, "qreg", "q")
		if err != nil {
			return err
		}
		c.NQubits = n
		return nil
	case strings.HasPrefix(stmt, "creg"):
		n, err := parseRegDecl(stmt, "creg", "c")
		if err != nil {
			return err
		}
		c.NClbits = n
		return nil
	}
	if c.NQubits < 0 {
		return fmt.Errorf("gate before qreg declaration")
	}
	// Mnemonic, optional "(params)", operands.
	head := stmt
	rest := ""
	if i := strings.IndexAny(stmt, " ("); i >= 0 {
		head, rest = stmt[:i], strings.TrimSpace(stmt[i:])
	}
	op, ok := opByName[head]
	if !ok {
		return fmt.Errorf("unknown gate %q", head)
	}
	g := Gate{Op: op, Clbit: -1}
	if strings.HasPrefix(rest, "(") {
		close := strings.Index(rest, ")")
		if close < 0 {
			return fmt.Errorf("unclosed parameter list")
		}
		for _, p := range strings.Split(rest[1:close], ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return fmt.Errorf("bad parameter %q: %w", p, err)
			}
			g.Params = append(g.Params, v)
		}
		rest = strings.TrimSpace(rest[close+1:])
	}
	// Measurement target: "q[i] -> c[j]".
	if op == OpMeasure {
		parts := strings.Split(rest, "->")
		if len(parts) != 2 {
			return fmt.Errorf("measure needs 'q[i] -> c[j]'")
		}
		q, err := parseIndex(strings.TrimSpace(parts[0]), "q")
		if err != nil {
			return err
		}
		cl, err := parseIndex(strings.TrimSpace(parts[1]), "c")
		if err != nil {
			return err
		}
		g.Qubits = []int{q}
		g.Clbit = cl
		return c.Append(g)
	}
	for _, operand := range strings.Split(rest, ",") {
		q, err := parseIndex(strings.TrimSpace(operand), "q")
		if err != nil {
			return err
		}
		g.Qubits = append(g.Qubits, q)
	}
	return c.Append(g)
}

// parseRegDecl parses "qreg q[n]" / "creg c[n]".
func parseRegDecl(stmt, keyword, reg string) (int, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(stmt, keyword))
	return parseIndex(rest, reg)
}

// parseIndex parses "q[i]" (or "c[i]") and returns i.
func parseIndex(s, reg string) (int, error) {
	if !strings.HasPrefix(s, reg+"[") || !strings.HasSuffix(s, "]") {
		return 0, fmt.Errorf("expected %s[i], got %q", reg, s)
	}
	v, err := strconv.Atoi(s[len(reg)+1 : len(s)-1])
	if err != nil {
		return 0, fmt.Errorf("bad index in %q: %w", s, err)
	}
	if v < 0 {
		return 0, fmt.Errorf("negative index in %q", s)
	}
	return v, nil
}
