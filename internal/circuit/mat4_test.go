package circuit

import (
	"math"
	"math/cmplx"
	"testing"
)

func mat4Close(t *testing.T, got, want Mat4, label string) {
	t.Helper()
	for k := range got {
		if cmplx.Abs(got[k]-want[k]) > 1e-12 {
			t.Fatalf("%s: entry %d = %v, want %v", label, k, got[k], want[k])
		}
	}
}

func TestMat4MulIdentity(t *testing.T) {
	g := NewGate(OpCX, []int{0, 1})
	cx, ok := GateMat4(g, 0, 1)
	if !ok {
		t.Fatal("CX should embed on its own pair")
	}
	mat4Close(t, cx.Mul(Identity4), cx, "cx·I")
	mat4Close(t, Identity4.Mul(cx), cx, "I·cx")
	// CX is an involution.
	mat4Close(t, cx.Mul(cx), Identity4, "cx·cx")
	if !cx.Mul(cx).IsIdentity() {
		t.Fatal("cx·cx should report identity")
	}
	if cx.IsIdentity() {
		t.Fatal("cx is not the identity")
	}
}

func TestMat4IsIdentityGlobalPhase(t *testing.T) {
	ph := cmplx.Exp(complex(0, 0.7))
	var m Mat4
	for d := 0; d < 4; d++ {
		m[d*4+d] = ph
	}
	if !m.IsIdentity() {
		t.Fatal("global-phase multiple of I should report identity")
	}
	m[15] = -ph
	if m.IsIdentity() {
		t.Fatal("cz-like matrix is not the identity")
	}
}

// TestKron1QCommutes pins the embedding layout: 1q operators on the two
// different pair roles commute, and their product equals the joint
// Kronecker action on the |b1 b0> basis.
func TestKron1QCommutes(t *testing.T) {
	h, _ := GateMat2(NewGate(OpH, []int{0}))
	s, _ := GateMat2(NewGate(OpS, []int{0}))
	lo := Kron1Q(h, false)
	hi := Kron1Q(s, true)
	mat4Close(t, lo.Mul(hi), hi.Mul(lo), "lo/hi commute")
	// Explicit joint Kronecker product: (s ⊗ h)[2r1+r0][2c1+c0].
	var want Mat4
	for r1 := 0; r1 < 2; r1++ {
		for r0 := 0; r0 < 2; r0++ {
			for c1 := 0; c1 < 2; c1++ {
				for c0 := 0; c0 < 2; c0++ {
					want[(2*r1+r0)*4+2*c1+c0] = s[r1*2+c1] * h[r0*2+c0]
				}
			}
		}
	}
	mat4Close(t, hi.Mul(lo), want, "kron product")
}

func TestGateMat4Embeddings(t *testing.T) {
	// CX with control on the low role: |b1 b0> -> flips b1 when b0 = 1,
	// i.e. swaps basis states 1 (01) and 3 (11).
	cxLo, ok := GateMat4(NewGate(OpCX, []int{4, 7}), 4, 7)
	if !ok {
		t.Fatal("cx(4,7) should embed on pair (4,7)")
	}
	mat4Close(t, cxLo, Mat4{
		1, 0, 0, 0,
		0, 0, 0, 1,
		0, 0, 1, 0,
		0, 1, 0, 0,
	}, "cx control-lo")
	// Same gate seen with swapped roles: control on the high role.
	cxHi, ok := GateMat4(NewGate(OpCX, []int{4, 7}), 7, 4)
	if !ok {
		t.Fatal("cx(4,7) should embed on pair (7,4)")
	}
	mat4Close(t, cxHi, Mat4{
		1, 0, 0, 0,
		0, 1, 0, 0,
		0, 0, 0, 1,
		0, 0, 1, 0,
	}, "cx control-hi")

	swap, ok := GateMat4(NewGate(OpSWAP, []int{1, 2}), 2, 1)
	if !ok {
		t.Fatal("swap embeds in either role order")
	}
	mat4Close(t, swap, Mat4{
		1, 0, 0, 0,
		0, 0, 1, 0,
		0, 1, 0, 0,
		0, 0, 0, 1,
	}, "swap")

	cp, ok := GateMat4(NewGate(OpCPhase, []int{0, 1}, math.Pi), 0, 1)
	if !ok {
		t.Fatal("cp embeds on its pair")
	}
	cz, ok := GateMat4(NewGate(OpCZ, []int{1, 0}), 0, 1)
	if !ok {
		t.Fatal("cz embeds on its pair in either order")
	}
	mat4Close(t, cp, cz, "cp(pi) == cz")

	// 1q gates embed on whichever role their qubit holds.
	h, _ := GateMat2(NewGate(OpH, []int{3}))
	hLo, ok := GateMat4(NewGate(OpH, []int{3}), 3, 9)
	if !ok {
		t.Fatal("h(3) should embed on pair (3,9)")
	}
	mat4Close(t, hLo, Kron1Q(h, false), "h on low role")
	hHi, ok := GateMat4(NewGate(OpH, []int{3}), 9, 3)
	if !ok {
		t.Fatal("h(3) should embed on pair (9,3)")
	}
	mat4Close(t, hHi, Kron1Q(h, true), "h on high role")
}

func TestGateMat4Rejects(t *testing.T) {
	cases := []struct {
		name   string
		g      Gate
		q0, q1 int
	}{
		{"1q off pair", NewGate(OpH, []int{5}), 0, 1},
		{"cx off pair", NewGate(OpCX, []int{0, 2}), 0, 1},
		{"cx half pair", NewGate(OpCX, []int{0, 2}), 2, 1},
		{"ccx", NewGate(OpCCX, []int{0, 1, 2}), 0, 1},
		{"measure", Gate{Op: OpMeasure, Qubits: []int{0}, Clbit: 0}, 0, 1},
		{"barrier", NewGate(OpBarrier, []int{0, 1}), 0, 1},
	}
	for _, tc := range cases {
		if _, ok := GateMat4(tc.g, tc.q0, tc.q1); ok {
			t.Fatalf("%s: GateMat4 should reject", tc.name)
		}
	}
}

// TestGateMat4Unitary checks U·U† = I for every embeddable gate shape.
func TestGateMat4Unitary(t *testing.T) {
	gates := []Gate{
		NewGate(OpCX, []int{0, 1}),
		NewGate(OpCX, []int{1, 0}),
		NewGate(OpCZ, []int{0, 1}),
		NewGate(OpCPhase, []int{0, 1}, 0.9),
		NewGate(OpSWAP, []int{0, 1}),
		NewGate(OpSX, []int{0}),
		NewGate(OpRZ, []int{1}, 1.3),
		NewGate(OpU, []int{0}, 0.4, 1.1, -0.6),
	}
	for _, g := range gates {
		m, ok := GateMat4(g, 0, 1)
		if !ok {
			t.Fatalf("%v should embed", g)
		}
		var dag Mat4
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				dag[r*4+c] = cmplx.Conj(m[c*4+r])
			}
		}
		mat4Close(t, m.Mul(dag), Identity4, g.String()+" unitarity")
	}
}
