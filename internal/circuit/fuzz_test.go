package circuit

import (
	"testing"
)

// FuzzParse checks the parser never panics and that successfully parsed
// circuits reach a print/parse fixed point.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"qreg q[2];\ncreg c[2];\nh q[0];\ncx q[0], q[1];\nmeasure q[0] -> c[0];\n",
		"qreg q[1];\nrz(0.5) q[0];\n",
		"qreg q[3];\nccx q[0], q[1], q[2];\nbarrier q[0], q[1];\n",
		"OPENQASM 2.0;\nqreg q[1];\nu(0.1, 0.2, 0.3) q[0];\n",
		"// name: test\nqreg q[2];\nswap q[0], q[1];\n",
		"qreg q[0];\n",
		"qreg q[2];\nh q[5];\n",
		"garbage",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseString(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		printed := c.String()
		c2, err := ParseString(printed)
		if err != nil {
			t.Fatalf("reparse of printed form failed: %v\n%s", err, printed)
		}
		if got := c2.String(); got != printed {
			t.Fatalf("print/parse not a fixed point:\n%s\nvs\n%s", printed, got)
		}
	})
}
