package circuit

import (
	"math"
	"math/cmplx"
)

// Mat2 is a dense 2x2 complex matrix in row-major order: the shared
// currency of the compiler's 1q resynthesis and the state-vector
// simulator's gate application.
type Mat2 [4]complex128

// Identity2 is the 2x2 identity.
var Identity2 = Mat2{1, 0, 0, 1}

// Mul returns a·b (matrix product).
func (a Mat2) Mul(b Mat2) Mat2 {
	return Mat2{
		a[0]*b[0] + a[1]*b[2], a[0]*b[1] + a[1]*b[3],
		a[2]*b[0] + a[3]*b[2], a[2]*b[1] + a[3]*b[3],
	}
}

// IsIdentity reports whether a equals the identity up to global phase.
func (a Mat2) IsIdentity() bool {
	if cmplx.Abs(a[1]) > 1e-9 || cmplx.Abs(a[2]) > 1e-9 {
		return false
	}
	return cmplx.Abs(a[0]-a[3]) < 1e-9
}

// GateMat2 returns the 2x2 unitary of a single-qubit gate, or ok=false
// for non-unitary or multi-qubit ops.
func GateMat2(g Gate) (Mat2, bool) {
	i := complex(0, 1)
	switch g.Op {
	case OpI:
		return Identity2, true
	case OpX:
		return Mat2{0, 1, 1, 0}, true
	case OpY:
		return Mat2{0, -i, i, 0}, true
	case OpZ:
		return Mat2{1, 0, 0, -1}, true
	case OpH:
		s := complex(1/math.Sqrt2, 0)
		return Mat2{s, s, s, -s}, true
	case OpS:
		return Mat2{1, 0, 0, i}, true
	case OpSdg:
		return Mat2{1, 0, 0, -i}, true
	case OpT:
		return Mat2{1, 0, 0, cmplx.Exp(i * math.Pi / 4)}, true
	case OpTdg:
		return Mat2{1, 0, 0, cmplx.Exp(-i * math.Pi / 4)}, true
	case OpSX:
		return Mat2{0.5 + 0.5*i, 0.5 - 0.5*i, 0.5 - 0.5*i, 0.5 + 0.5*i}, true
	case OpRX:
		th := g.Params[0] / 2
		c, s := complex(math.Cos(th), 0), complex(0, -math.Sin(th))
		return Mat2{c, s, s, c}, true
	case OpRY:
		th := g.Params[0] / 2
		c, s := complex(math.Cos(th), 0), complex(math.Sin(th), 0)
		return Mat2{c, -s, s, c}, true
	case OpRZ:
		th := g.Params[0] / 2
		return Mat2{cmplx.Exp(-i * complex(th, 0)), 0, 0, cmplx.Exp(i * complex(th, 0))}, true
	case OpU:
		return U3Mat(g.Params[0], g.Params[1], g.Params[2]), true
	default:
		return Identity2, false
	}
}

// DiagEntries returns the diagonal (d0, d1) of a single-qubit diagonal
// gate, or ok=false when the op is not a 1q diagonal (see Op.IsDiagonal).
func DiagEntries(g Gate) (d0, d1 complex128, ok bool) {
	if !g.Op.IsDiagonal() || g.Op.NumQubits() != 1 {
		return 0, 0, false
	}
	m, ok := GateMat2(g)
	if !ok {
		return 0, 0, false
	}
	return m[0], m[3], true
}

// U3Mat returns the Qiskit U(θ,φ,λ) matrix.
func U3Mat(theta, phi, lambda float64) Mat2 {
	c := complex(math.Cos(theta/2), 0)
	s := complex(math.Sin(theta/2), 0)
	ephi := cmplx.Exp(complex(0, phi))
	elam := cmplx.Exp(complex(0, lambda))
	return Mat2{c, -elam * s, ephi * s, ephi * elam * c}
}

// ZYZAngles decomposes a unitary U = e^{iα}·RZ(φ)·RY(θ)·RZ(λ) and
// returns (θ, φ, λ). The decomposition matches the Qiskit U-gate
// convention, so U3Mat(ZYZAngles(U)) equals U up to global phase.
func ZYZAngles(u Mat2) (theta, phi, lambda float64) {
	a00, a01, a10, a11 := u[0], u[1], u[2], u[3]
	theta = 2 * math.Atan2(cmplx.Abs(a10), cmplx.Abs(a00))
	const eps = 1e-12
	switch {
	case cmplx.Abs(a00) < eps:
		// cos(θ/2) = 0: only φ-λ is determined; pick λ = 0.
		phi = cmplx.Phase(a10) - cmplx.Phase(-a01)
		lambda = 0
	case cmplx.Abs(a10) < eps:
		// sin(θ/2) = 0: only φ+λ is determined; pick λ = 0.
		phi = cmplx.Phase(a11) - cmplx.Phase(a00)
		lambda = 0
	default:
		phi = cmplx.Phase(a10) - cmplx.Phase(a00)
		lambda = cmplx.Phase(-a01) - cmplx.Phase(a00)
	}
	return theta, NormAngle(phi), NormAngle(lambda)
}

// NormAngle wraps an angle into (-π, π].
func NormAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a <= -math.Pi {
		a += 2 * math.Pi
	} else if a > math.Pi {
		a -= 2 * math.Pi
	}
	return a
}
