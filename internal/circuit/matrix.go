package circuit

import (
	"math"
	"math/cmplx"
)

// Mat2 is a dense 2x2 complex matrix in row-major order: the shared
// currency of the compiler's 1q resynthesis and the state-vector
// simulator's gate application.
type Mat2 [4]complex128

// Identity2 is the 2x2 identity.
var Identity2 = Mat2{1, 0, 0, 1}

// Mul returns a·b (matrix product).
func (a Mat2) Mul(b Mat2) Mat2 {
	return Mat2{
		a[0]*b[0] + a[1]*b[2], a[0]*b[1] + a[1]*b[3],
		a[2]*b[0] + a[3]*b[2], a[2]*b[1] + a[3]*b[3],
	}
}

// IsIdentity reports whether a equals the identity up to global phase.
func (a Mat2) IsIdentity() bool {
	if cmplx.Abs(a[1]) > 1e-9 || cmplx.Abs(a[2]) > 1e-9 {
		return false
	}
	return cmplx.Abs(a[0]-a[3]) < 1e-9
}

// Mat4 is a dense 4x4 complex matrix in row-major order over the
// two-qubit basis |b1 b0>: basis index = 2*b1 + b0, where b0 is the
// first (low-role) qubit of the pair and b1 the second. It is the
// currency of the simulator's two-qubit block fusion: runs of gates
// touching the same qubit pair collapse into one Mat4 and one
// four-amplitude sweep.
type Mat4 [16]complex128

// Identity4 is the 4x4 identity.
var Identity4 = Mat4{
	1, 0, 0, 0,
	0, 1, 0, 0,
	0, 0, 1, 0,
	0, 0, 0, 1,
}

// Mul returns a·b (matrix product).
func (a Mat4) Mul(b Mat4) Mat4 {
	var out Mat4
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			var v complex128
			for k := 0; k < 4; k++ {
				v += a[r*4+k] * b[k*4+c]
			}
			out[r*4+c] = v
		}
	}
	return out
}

// IsIdentity reports whether a equals the identity up to global phase.
func (a Mat4) IsIdentity() bool {
	const eps = 1e-9
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if r != c && cmplx.Abs(a[r*4+c]) > eps {
				return false
			}
		}
	}
	return cmplx.Abs(a[0]-a[5]) < eps && cmplx.Abs(a[0]-a[10]) < eps && cmplx.Abs(a[0]-a[15]) < eps
}

// Kron1Q embeds a single-qubit unitary into the pair basis: hi false
// acts on the low-role qubit b0 (I ⊗ m), hi true on b1 (m ⊗ I).
func Kron1Q(m Mat2, hi bool) Mat4 {
	if hi {
		return Mat4{
			m[0], 0, m[1], 0,
			0, m[0], 0, m[1],
			m[2], 0, m[3], 0,
			0, m[2], 0, m[3],
		}
	}
	return Mat4{
		m[0], m[1], 0, 0,
		m[2], m[3], 0, 0,
		0, 0, m[0], m[1],
		0, 0, m[2], m[3],
	}
}

// GateMat4 returns gate g's 4x4 unitary in the pair basis (q0 low role,
// q1 high role), or ok=false when g does not fit the pair: a 1q gate on
// a qubit outside {q0, q1}, a 2q gate not on exactly that pair, or an op
// with no Mat2/Mat4 form (measure, CCX, ...).
func GateMat4(g Gate, q0, q1 int) (Mat4, bool) {
	switch g.Op {
	case OpCX:
		if g.Qubits[0] == q0 && g.Qubits[1] == q1 {
			// Control on b0: swap the rows/cols where b0 = 1.
			return Mat4{
				1, 0, 0, 0,
				0, 0, 0, 1,
				0, 0, 1, 0,
				0, 1, 0, 0,
			}, true
		}
		if g.Qubits[0] == q1 && g.Qubits[1] == q0 {
			// Control on b1.
			return Mat4{
				1, 0, 0, 0,
				0, 1, 0, 0,
				0, 0, 0, 1,
				0, 0, 1, 0,
			}, true
		}
		return Identity4, false
	case OpCZ, OpCPhase:
		if !samePair(g, q0, q1) {
			return Identity4, false
		}
		ph := complex(-1, 0)
		if g.Op == OpCPhase {
			ph = cmplx.Exp(complex(0, g.Params[0]))
		}
		m := Identity4
		m[15] = ph
		return m, true
	case OpSWAP:
		if !samePair(g, q0, q1) {
			return Identity4, false
		}
		return Mat4{
			1, 0, 0, 0,
			0, 0, 1, 0,
			0, 1, 0, 0,
			0, 0, 0, 1,
		}, true
	default:
		if g.Op.NumQubits() != 1 {
			return Identity4, false
		}
		m, ok := GateMat2(g)
		if !ok {
			return Identity4, false
		}
		switch g.Qubits[0] {
		case q0:
			return Kron1Q(m, false), true
		case q1:
			return Kron1Q(m, true), true
		}
		return Identity4, false
	}
}

// samePair reports whether the 2q gate g acts on exactly {q0, q1}.
func samePair(g Gate, q0, q1 int) bool {
	a, b := g.Qubits[0], g.Qubits[1]
	return (a == q0 && b == q1) || (a == q1 && b == q0)
}

// GateMat2 returns the 2x2 unitary of a single-qubit gate, or ok=false
// for non-unitary or multi-qubit ops.
func GateMat2(g Gate) (Mat2, bool) {
	i := complex(0, 1)
	switch g.Op {
	case OpI:
		return Identity2, true
	case OpX:
		return Mat2{0, 1, 1, 0}, true
	case OpY:
		return Mat2{0, -i, i, 0}, true
	case OpZ:
		return Mat2{1, 0, 0, -1}, true
	case OpH:
		s := complex(1/math.Sqrt2, 0)
		return Mat2{s, s, s, -s}, true
	case OpS:
		return Mat2{1, 0, 0, i}, true
	case OpSdg:
		return Mat2{1, 0, 0, -i}, true
	case OpT:
		return Mat2{1, 0, 0, cmplx.Exp(i * math.Pi / 4)}, true
	case OpTdg:
		return Mat2{1, 0, 0, cmplx.Exp(-i * math.Pi / 4)}, true
	case OpSX:
		return Mat2{0.5 + 0.5*i, 0.5 - 0.5*i, 0.5 - 0.5*i, 0.5 + 0.5*i}, true
	case OpRX:
		th := g.Params[0] / 2
		c, s := complex(math.Cos(th), 0), complex(0, -math.Sin(th))
		return Mat2{c, s, s, c}, true
	case OpRY:
		th := g.Params[0] / 2
		c, s := complex(math.Cos(th), 0), complex(math.Sin(th), 0)
		return Mat2{c, -s, s, c}, true
	case OpRZ:
		th := g.Params[0] / 2
		return Mat2{cmplx.Exp(-i * complex(th, 0)), 0, 0, cmplx.Exp(i * complex(th, 0))}, true
	case OpU:
		return U3Mat(g.Params[0], g.Params[1], g.Params[2]), true
	default:
		return Identity2, false
	}
}

// DiagEntries returns the diagonal (d0, d1) of a single-qubit diagonal
// gate, or ok=false when the op is not a 1q diagonal (see Op.IsDiagonal).
func DiagEntries(g Gate) (d0, d1 complex128, ok bool) {
	if !g.Op.IsDiagonal() || g.Op.NumQubits() != 1 {
		return 0, 0, false
	}
	m, ok := GateMat2(g)
	if !ok {
		return 0, 0, false
	}
	return m[0], m[3], true
}

// U3Mat returns the Qiskit U(θ,φ,λ) matrix.
func U3Mat(theta, phi, lambda float64) Mat2 {
	c := complex(math.Cos(theta/2), 0)
	s := complex(math.Sin(theta/2), 0)
	ephi := cmplx.Exp(complex(0, phi))
	elam := cmplx.Exp(complex(0, lambda))
	return Mat2{c, -elam * s, ephi * s, ephi * elam * c}
}

// ZYZAngles decomposes a unitary U = e^{iα}·RZ(φ)·RY(θ)·RZ(λ) and
// returns (θ, φ, λ). The decomposition matches the Qiskit U-gate
// convention, so U3Mat(ZYZAngles(U)) equals U up to global phase.
func ZYZAngles(u Mat2) (theta, phi, lambda float64) {
	a00, a01, a10, a11 := u[0], u[1], u[2], u[3]
	theta = 2 * math.Atan2(cmplx.Abs(a10), cmplx.Abs(a00))
	const eps = 1e-12
	switch {
	case cmplx.Abs(a00) < eps:
		// cos(θ/2) = 0: only φ-λ is determined; pick λ = 0.
		phi = cmplx.Phase(a10) - cmplx.Phase(-a01)
		lambda = 0
	case cmplx.Abs(a10) < eps:
		// sin(θ/2) = 0: only φ+λ is determined; pick λ = 0.
		phi = cmplx.Phase(a11) - cmplx.Phase(a00)
		lambda = 0
	default:
		phi = cmplx.Phase(a10) - cmplx.Phase(a00)
		lambda = cmplx.Phase(-a01) - cmplx.Phase(a00)
	}
	return theta, NormAngle(phi), NormAngle(lambda)
}

// NormAngle wraps an angle into (-π, π].
func NormAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a <= -math.Pi {
		a += 2 * math.Pi
	} else if a > math.Pi {
		a -= 2 * math.Pi
	}
	return a
}
