package circuit

import (
	"math"
	"strings"
	"testing"
)

func TestParseRoundtrip(t *testing.T) {
	c := New("round", 3)
	c.H(0).RZ(1, 0.5).U(2, 0.1, 0.2, 0.3).CX(0, 1).CPhase(1, 2, math.Pi/8)
	c.SWAP(0, 2).CCX(0, 1, 2).Reset(1).Barrier(0, 2).Measure(0, 0).Measure(2, 2)
	parsed, err := ParseString(c.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Name != "round" {
		t.Fatalf("name = %q", parsed.Name)
	}
	if parsed.String() != c.String() {
		t.Fatalf("roundtrip mismatch:\n%s\nvs\n%s", parsed.String(), c.String())
	}
}

func TestParseRoundtripPreservesSemantics(t *testing.T) {
	// Parameters print with %.6g; re-parsing must keep angles to that
	// precision.
	c := New("angles", 1)
	c.RZ(0, 1.2345678)
	parsed, err := ParseString(c.String())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(parsed.Gates[0].Params[0]-1.2345678) > 1e-9 {
		t.Fatalf("angle drifted: %v", parsed.Gates[0].Params[0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no qreg":        "h q[0];\n",
		"no semicolon":   "qreg q[2];\nh q[0]\n",
		"unknown gate":   "qreg q[2];\nfrobnicate q[0];\n",
		"bad operand":    "qreg q[2];\nh x[0];\n",
		"bad param":      "qreg q[2];\nrz(abc) q[0];\n",
		"unclosed paren": "qreg q[2];\nrz(0.5 q[0];\n",
		"bad measure":    "qreg q[2];\ncreg c[2];\nmeasure q[0];\n",
		"range":          "qreg q[2];\nh q[5];\n",
		"negative index": "qreg q[2];\nh q[-1];\n",
	}
	for name, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Fatalf("%s: expected parse error for %q", name, src)
		}
	}
}

func TestParseAcceptsOpenQASMBoilerplate(t *testing.T) {
	src := `OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[0];
cx q[0], q[1];
measure q[0] -> c[0];
`
	c, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 3 || c.NQubits != 2 {
		t.Fatalf("parsed %d gates over %d qubits", len(c.Gates), c.NQubits)
	}
}

func TestParseDefaultsClbitsToQubits(t *testing.T) {
	c, err := ParseString("qreg q[3];\nh q[0];\n")
	if err != nil {
		t.Fatal(err)
	}
	if c.NClbits != 3 {
		t.Fatalf("NClbits = %d, want 3", c.NClbits)
	}
}

func TestParseAllOpsRoundtrip(t *testing.T) {
	c := New("all", 3)
	c.I(0).X(0).Y(0).Z(0).H(0).S(0).Sdg(0).T(0).Tdg(0).SX(0)
	c.RX(1, 0.25).RY(1, 0.5).RZ(1, 0.75)
	c.CZ(0, 1)
	parsed, err := ParseString(c.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Gates) != len(c.Gates) {
		t.Fatalf("gate count %d vs %d", len(parsed.Gates), len(c.Gates))
	}
	for i := range c.Gates {
		if parsed.Gates[i].Op != c.Gates[i].Op {
			t.Fatalf("gate %d: %v vs %v", i, parsed.Gates[i].Op, c.Gates[i].Op)
		}
	}
	if !strings.Contains(parsed.String(), "sdg q[0]") {
		t.Fatal("sdg lost in roundtrip")
	}
}
