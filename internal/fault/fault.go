// Package fault is the deterministic fault injector for the cloud
// simulator: unplanned machine outages, transient submit/backend
// errors, job-level failure bursts, and calibration-staleness waves —
// the real-cloud pathologies behind the paper's §IV-D/§V-E fleet
// analysis (machines going down mid-queue, jobs erroring and being
// resubmitted, stale calibrations).
//
// Determinism discipline mirrors the shot RNG: every decision comes
// from a seeded splitmix64 stream keyed by (seed, machine, epoch) for
// window generation, or from a stateless splitmix64 hash of
// (seed, machine, job, attempt) for per-attempt decisions. Streams are
// independent of the simulator's own RNG, so enabling fault injection
// never perturbs the machine RNG draw sequence, and per-epoch keying
// means the faults of epoch k do not depend on how many draws earlier
// epochs consumed — checkpoint/restore replays them exactly.
package fault

import (
	"math"
	"sort"
)

// epochSeconds is the length of one fault-stream epoch. Windows are
// generated per (machine, epoch) so the fault timeline is a pure
// function of configuration, not of simulation progress.
const epochSeconds = 30 * 86400

// Window is one fault interval in sim-seconds (same clock as the
// machine simulation: seconds since the simulation start).
type Window struct {
	Start, End float64
}

// Contains reports whether t lies inside the window ([Start, End)).
func (w Window) Contains(t float64) bool { return t >= w.Start && t < w.End }

// Profile configures one machine-independent fault scenario. The zero
// value injects nothing; each mechanism activates independently.
type Profile struct {
	// OutageMeanGapDays spaces unplanned machine outages (exponential
	// gaps; 0 disables outages). Unlike the maintenance calendar,
	// outages are invisible to schedulers until they begin.
	OutageMeanGapDays float64
	// OutageMeanHours is the mean outage duration (exponential),
	// capped at OutageMaxHours (default 24h when zero).
	OutageMeanHours float64
	OutageMaxHours  float64

	// TransientErrorRate is the probability a start attempt dies to a
	// transient backend fault (retryable, unlike Config.ErrorRate's
	// job-level errors).
	TransientErrorRate float64

	// BurstMeanGapDays spaces job-failure bursts (0 disables); inside
	// a burst the transient rate is BurstErrorRate instead.
	BurstMeanGapDays float64
	BurstMeanHours   float64
	BurstErrorRate   float64

	// StaleMeanGapDays spaces calibration-staleness waves (0
	// disables); inside a wave the config's job error rate is
	// multiplied by StaleErrorFactor (capped at 1).
	StaleMeanGapDays float64
	StaleMeanHours   float64
	StaleErrorFactor float64

	// SubmitErrorRate is the probability a Submit call fails with a
	// transient API error and must be retried by the client.
	SubmitErrorRate float64
}

// Kind separates the per-(machine,epoch) window streams so each fault
// mechanism draws from its own independent sequence.
type Kind int64

// Window-stream kinds.
const (
	KindOutage Kind = 1
	KindBurst  Kind = 2
	KindStale  Kind = 3
)

// Outages generates the machine's unplanned outage windows over
// [startSec, endSec), merged and clipped.
func (p *Profile) Outages(seed, machineSeed int64, startSec, endSec float64) []Window {
	maxH := p.OutageMaxHours
	if maxH <= 0 {
		maxH = 24
	}
	return p.windows(KindOutage, seed, machineSeed, startSec, endSec,
		p.OutageMeanGapDays, p.OutageMeanHours, maxH)
}

// Bursts generates the machine's failure-burst windows.
func (p *Profile) Bursts(seed, machineSeed int64, startSec, endSec float64) []Window {
	return p.windows(KindBurst, seed, machineSeed, startSec, endSec,
		p.BurstMeanGapDays, p.BurstMeanHours, 4*p.BurstMeanHours)
}

// StaleWaves generates the machine's calibration-staleness windows.
func (p *Profile) StaleWaves(seed, machineSeed int64, startSec, endSec float64) []Window {
	return p.windows(KindStale, seed, machineSeed, startSec, endSec,
		p.StaleMeanGapDays, p.StaleMeanHours, 4*p.StaleMeanHours)
}

// windows samples one kind's fault windows epoch by epoch: each epoch
// draws its event count (Poisson around epochLen/gap) and event
// start/duration from a stream seeded only by (seed, machine, epoch,
// kind), then the union is merged and clipped to [startSec, endSec).
// Epochs are anchored at sim-second 0, so the same configuration
// yields the same windows regardless of the queried range.
func (p *Profile) windows(kind Kind, seed, machineSeed int64, startSec, endSec float64, gapDays, meanHours, maxHours float64) []Window {
	if gapDays <= 0 || meanHours <= 0 || endSec <= startSec {
		return nil
	}
	maxDur := maxHours * 3600
	// Windows from an earlier epoch can reach into the range; start
	// one max-duration early.
	firstEpoch := int64(math.Floor((startSec - maxDur) / epochSeconds))
	lastEpoch := int64(math.Floor(endSec / epochSeconds))
	perEpoch := epochSeconds / (gapDays * 86400)
	var wins []Window
	for e := firstEpoch; e <= lastEpoch; e++ {
		s := newStream(seed, machineSeed, int64(kind), e)
		n := s.poisson(perEpoch)
		base := float64(e) * epochSeconds
		for i := 0; i < n; i++ {
			at := base + s.unit()*epochSeconds
			dur := math.Min(s.exp()*meanHours*3600, maxDur)
			wins = append(wins, Window{Start: at, End: at + dur})
		}
	}
	sort.Slice(wins, func(i, j int) bool { return wins[i].Start < wins[j].Start })
	// Merge overlaps and clip to the requested range.
	var out []Window
	for _, w := range wins {
		if w.End <= startSec || w.Start >= endSec {
			continue
		}
		if w.Start < startSec {
			w.Start = startSec
		}
		if w.End > endSec {
			w.End = endSec
		}
		if n := len(out); n > 0 && w.Start <= out[n-1].End {
			if w.End > out[n-1].End {
				out[n-1].End = w.End
			}
			continue
		}
		out = append(out, w)
	}
	return out
}

// Unit hashes the parts into a uniform float64 in [0, 1) — the
// stateless per-decision stream (no cursor to checkpoint).
func Unit(parts ...int64) float64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, p := range parts {
		h = splitmix(h ^ uint64(p))
	}
	return float64(splitmix(h)>>11) / (1 << 53)
}

// Decide reports whether the hashed decision fires at the given rate.
func Decide(rate float64, parts ...int64) bool {
	return rate > 0 && Unit(parts...) < rate
}

// At returns the window containing t, using a monotone cursor the
// caller owns: queries must arrive in nondecreasing t order. The bool
// reports whether t is inside a window.
func At(wins []Window, cursor *int, t float64) (Window, bool) {
	for *cursor < len(wins) && t >= wins[*cursor].End {
		*cursor++
	}
	if *cursor < len(wins) && t >= wins[*cursor].Start {
		return wins[*cursor], true
	}
	return Window{}, false
}

// Covers reports whether t lies inside any window, by binary search —
// the cursorless form for read-only probes (queue snapshots).
func Covers(wins []Window, t float64) bool {
	i := sort.Search(len(wins), func(k int) bool { return wins[k].End > t })
	return i < len(wins) && wins[i].Contains(t)
}

// splitmix is the splitmix64 output scrambler.
func splitmix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// stream is a seeded splitmix64 sequence for window generation.
type stream struct{ state uint64 }

func newStream(parts ...int64) *stream {
	h := uint64(0x8a5cd789635d2dff)
	for _, p := range parts {
		h = splitmix(h ^ uint64(p))
	}
	return &stream{state: h}
}

func (s *stream) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *stream) unit() float64 { return float64(s.next()>>11) / (1 << 53) }

// exp draws a unit-mean exponential.
func (s *stream) exp() float64 { return -math.Log(1 - s.unit()) }

// poisson draws a Poisson count with the given mean (Knuth's method;
// means here are small, bounded by epoch length over gap).
func (s *stream) poisson(mean float64) int {
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= s.unit()
		if p <= l {
			return k
		}
		k++
	}
}
