package fault

import (
	"math"
	"testing"
)

var testProfile = &Profile{
	OutageMeanGapDays:  10,
	OutageMeanHours:    6,
	OutageMaxHours:     24,
	TransientErrorRate: 0.05,
	BurstMeanGapDays:   14,
	BurstMeanHours:     3,
	BurstErrorRate:     0.5,
	StaleMeanGapDays:   7,
	StaleMeanHours:     12,
	StaleErrorFactor:   4,
	SubmitErrorRate:    0.02,
}

const (
	testStart = 0.0
	testEnd   = 90 * 86400.0
)

func winsEqual(a, b []Window) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFaultWindowsDeterministic(t *testing.T) {
	a := testProfile.Outages(99, 7, testStart, testEnd)
	b := testProfile.Outages(99, 7, testStart, testEnd)
	if !winsEqual(a, b) {
		t.Fatalf("outage windows differ across identical calls")
	}
	if len(a) == 0 {
		t.Fatalf("expected some outages over 90 days with 10-day mean gap")
	}
	if winsEqual(a, testProfile.Outages(100, 7, testStart, testEnd)) {
		t.Fatalf("outage windows insensitive to seed")
	}
	if winsEqual(a, testProfile.Outages(99, 8, testStart, testEnd)) {
		t.Fatalf("outage windows insensitive to machine seed")
	}
	if winsEqual(a, testProfile.Bursts(99, 7, testStart, testEnd)) {
		t.Fatalf("outage and burst streams collide")
	}
}

// TestFaultWindowsEpochStable pins the epoch anchoring: the windows
// inside a sub-range are exactly the full-range windows clipped to it,
// so checkpoint/restore (which regenerates windows for the same
// configured range) and differently-scoped queries agree.
func TestFaultWindowsEpochStable(t *testing.T) {
	full := testProfile.Outages(99, 7, testStart, testEnd)
	lo, hi := 20*86400.0, 70*86400.0
	sub := testProfile.Outages(99, 7, lo, hi)
	var want []Window
	for _, w := range full {
		if w.End <= lo || w.Start >= hi {
			continue
		}
		if w.Start < lo {
			w.Start = lo
		}
		if w.End > hi {
			w.End = hi
		}
		want = append(want, w)
	}
	if !winsEqual(sub, want) {
		t.Fatalf("sub-range windows %v != clipped full-range %v", sub, want)
	}
}

func TestFaultWindowsBoundedAndSorted(t *testing.T) {
	for _, wins := range [][]Window{
		testProfile.Outages(5, 3, testStart, testEnd),
		testProfile.Bursts(5, 3, testStart, testEnd),
		testProfile.StaleWaves(5, 3, testStart, testEnd),
	} {
		prev := math.Inf(-1)
		for _, w := range wins {
			if w.Start < testStart || w.End > testEnd {
				t.Fatalf("window %v escapes [%g, %g)", w, testStart, testEnd)
			}
			if w.End <= w.Start {
				t.Fatalf("empty or inverted window %v", w)
			}
			if w.Start <= prev {
				t.Fatalf("windows unsorted or overlapping after merge: %v", wins)
			}
			prev = w.End
		}
	}
	maxDur := testProfile.OutageMaxHours * 3600
	for _, w := range testProfile.Outages(5, 3, testStart, testEnd) {
		if w.End-w.Start > maxDur+1e-6 {
			t.Fatalf("outage %v exceeds max duration %g", w, maxDur)
		}
	}
}

func TestFaultWindowsPoissonSanity(t *testing.T) {
	// Over many seeds the outage count should straddle the configured
	// mean rate (90 days / 10-day gap = 9 per machine) loosely.
	total := 0
	const seeds = 40
	for s := int64(0); s < seeds; s++ {
		total += len(testProfile.Outages(s, 3, testStart, testEnd))
	}
	mean := float64(total) / seeds
	if mean < 4 || mean > 14 {
		t.Fatalf("mean outage count %.2f implausible for 9-per-window rate", mean)
	}
}

func TestZeroProfileInjectsNothing(t *testing.T) {
	var p Profile
	if len(p.Outages(1, 2, testStart, testEnd)) != 0 ||
		len(p.Bursts(1, 2, testStart, testEnd)) != 0 ||
		len(p.StaleWaves(1, 2, testStart, testEnd)) != 0 {
		t.Fatalf("zero profile generated windows")
	}
	if Decide(0, 1, 2, 3) {
		t.Fatalf("Decide fired at rate 0")
	}
}

func TestUnitRangeAndDeterminism(t *testing.T) {
	for i := int64(0); i < 1000; i++ {
		u := Unit(42, i)
		if u < 0 || u >= 1 {
			t.Fatalf("Unit out of [0,1): %g", u)
		}
		if u != Unit(42, i) {
			t.Fatalf("Unit not deterministic")
		}
	}
	if Unit(1, 2) == Unit(2, 1) {
		t.Fatalf("Unit ignores argument order")
	}
	if !Decide(1, 7, 8) {
		t.Fatalf("Decide must fire at rate 1")
	}
}

func TestAtCursorAndCovers(t *testing.T) {
	wins := []Window{{10, 20}, {30, 40}, {40, 50}}
	cur := 0
	if _, in := At(wins, &cur, 5); in {
		t.Fatalf("t=5 should be outside")
	}
	if w, in := At(wins, &cur, 15); !in || w != wins[0] {
		t.Fatalf("t=15 should hit first window")
	}
	if _, in := At(wins, &cur, 25); in {
		t.Fatalf("t=25 should be outside")
	}
	if w, in := At(wins, &cur, 40); !in || w != wins[2] {
		t.Fatalf("t=40 should hit third window (half-open ends)")
	}
	for _, tc := range []struct {
		t  float64
		in bool
	}{{5, false}, {10, true}, {19.9, true}, {20, false}, {35, true}, {50, false}} {
		if Covers(wins, tc.t) != tc.in {
			t.Fatalf("Covers(%g) != %v", tc.t, tc.in)
		}
	}
}
