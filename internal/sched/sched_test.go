package sched

import (
	"fmt"
	"testing"
	"time"

	"qcloud/internal/backend"
	"qcloud/internal/cloud"
	"qcloud/internal/stats"
	"qcloud/internal/trace"
	"qcloud/internal/workload"
)

// schedWindow keeps the evaluations fast: three months at the busy end
// of the study.
func schedConfig(seed int64) cloud.Config {
	return cloud.Config{
		Seed:  seed,
		Start: time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC),
		End:   time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC),
	}
}

func schedWorkload(seed int64) []*cloud.JobSpec {
	cfg := schedConfig(seed)
	return workload.Generate(workload.Config{
		Seed: seed, TotalJobs: 900,
		Start: cfg.Start, End: cfg.End,
		GrowthPerMonth: 0.05,
	})
}

func TestEstimatorPendingLookup(t *testing.T) {
	e, err := BuildEstimator(schedConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2021, 3, 1, 12, 0, 0, 0, time.UTC)
	if e.PendingAt("ibmq_athens", at) <= e.PendingAt("ibmq_rome", at) {
		t.Log("athens not busier than rome at the probe instant (can happen); checking averages")
		var a, r float64
		for d := 0; d < 28; d++ {
			ts := at.AddDate(0, 0, d)
			a += float64(e.PendingAt("ibmq_athens", ts))
			r += float64(e.PendingAt("ibmq_rome", ts))
		}
		if a <= r {
			t.Fatalf("athens pending (%v) should exceed rome (%v) on average", a, r)
		}
	}
	// Before any samples: zero.
	if e.PendingAt("ibmq_athens", time.Date(2020, 12, 31, 0, 0, 0, 0, time.UTC)) != 0 {
		t.Fatal("pending before window should be 0")
	}
	if e.PendingAt("no-such-machine", at) != 0 {
		t.Fatal("unknown machine should be 0")
	}
}

func TestEstimatedWaitTracksActualWait(t *testing.T) {
	// §V-E.1: the queue-time predictor must rank machines/times usefully.
	cfg := schedConfig(2)
	e, err := BuildEstimator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	specs := schedWorkload(2)
	tr, err := cloud.Simulate(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	var predicted, actual []float64
	for _, j := range tr.Jobs {
		if j.Status == trace.StatusCancelled {
			continue
		}
		predicted = append(predicted, e.EstimatedWaitSeconds(j.Machine, j.SubmitTime))
		actual = append(actual, j.QueueSeconds())
	}
	if len(actual) < 200 {
		t.Fatalf("too few jobs: %d", len(actual))
	}
	rho := stats.Spearman(predicted, actual)
	if rho < 0.35 {
		t.Fatalf("wait prediction rank correlation = %v, want useful (>0.35)", rho)
	}
}

func TestCandidatesRespectConstraints(t *testing.T) {
	e, err := BuildEstimator(schedConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2021, 3, 1, 12, 0, 0, 0, time.UTC)
	pub := &cloud.JobSpec{SubmitTime: at, Width: 4, Privileged: false}
	for _, m := range e.Candidates(pub) {
		if !m.Public {
			t.Fatalf("non-privileged user offered private machine %s", m.Name)
		}
		if m.NumQubits() < 4 {
			t.Fatalf("machine %s too small", m.Name)
		}
	}
	wide := &cloud.JobSpec{SubmitTime: at, Width: 30, Privileged: true}
	for _, m := range e.Candidates(wide) {
		if m.NumQubits() < 30 {
			t.Fatalf("machine %s cannot fit 30 qubits", m.Name)
		}
	}
	priv := &cloud.JobSpec{SubmitTime: at, Width: 4, Privileged: true}
	if len(e.Candidates(priv)) <= len(e.Candidates(pub)) {
		t.Fatal("privileged users should see strictly more machines")
	}
}

func TestPredictedWaitBeatsUserChoice(t *testing.T) {
	// §IV-D.2's headline: vendor-side machine-aware placement improves
	// queuing over user heuristics.
	cfg := schedConfig(4)
	e, err := BuildEstimator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	specs := schedWorkload(4)
	base, _, err := Evaluate(cfg, specs, UserChoice{}, e)
	if err != nil {
		t.Fatal(err)
	}
	balanced, _, err := Evaluate(cfg, specs, PredictedWait{}, e)
	if err != nil {
		t.Fatal(err)
	}
	if balanced.MeanQueueMin >= base.MeanQueueMin {
		t.Fatalf("predicted-wait mean queue %v min should beat user choice %v min",
			balanced.MeanQueueMin, base.MeanQueueMin)
	}
	if balanced.MedianQueueMin >= base.MedianQueueMin {
		t.Fatalf("predicted-wait median queue %v min should beat user choice %v min",
			balanced.MedianQueueMin, base.MedianQueueMin)
	}
}

func TestFidelityAwareTradesWaitForFidelity(t *testing.T) {
	cfg := schedConfig(5)
	e, err := BuildEstimator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	specs := schedWorkload(5)
	fast, _, err := Evaluate(cfg, specs, PredictedWait{}, e)
	if err != nil {
		t.Fatal(err)
	}
	fid, _, err := Evaluate(cfg, specs, FidelityAware{WaitPenaltyPerHour: 0.005}, e)
	if err != nil {
		t.Fatal(err)
	}
	if fid.MeanEstFidelity <= fast.MeanEstFidelity {
		t.Fatalf("fidelity-aware estimated fidelity %v should beat pure wait minimization %v",
			fid.MeanEstFidelity, fast.MeanEstFidelity)
	}
}

func TestPlaceDoesNotMutateInput(t *testing.T) {
	e, err := BuildEstimator(schedConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	specs := schedWorkload(6)[:20]
	before := make([]string, len(specs))
	for i, s := range specs {
		before[i] = s.Machine
	}
	placed := Place(specs, LeastPending{}, e)
	for i, s := range specs {
		if s.Machine != before[i] {
			t.Fatal("Place mutated input specs")
		}
		_ = placed[i]
	}
	// Policies must only pick legal machines.
	byName := backend.FleetByName()
	for i, p := range placed {
		m := byName[p.Machine]
		if m == nil {
			t.Fatalf("placed on unknown machine %s", p.Machine)
		}
		if !specs[i].Privileged && !m.Public {
			t.Fatalf("public user placed on private %s", p.Machine)
		}
	}
}

func TestPolicyNames(t *testing.T) {
	for _, p := range []Policy{UserChoice{}, LeastPending{}, PredictedWait{}, FidelityAware{}} {
		if p.Name() == "" {
			t.Fatal("policy without a name")
		}
	}
}

// quietOnlineConfig silences the background population on a two-
// machine private fleet so online-placement tests are deterministic.
func quietOnlineConfig(seed int64) cloud.Config {
	var sel []*backend.Machine
	for _, m := range backend.Fleet() {
		if m.Name == "ibmq_rome" || m.Name == "ibmq_bogota" {
			sel = append(sel, m)
		}
	}
	bg := cloud.DefaultBackground()
	bg.PublicUtil, bg.PrivateUtil, bg.RampFloor = 0, 0, 0
	return cloud.Config{
		Seed:     seed,
		Start:    time.Date(2021, 2, 1, 0, 0, 0, 0, time.UTC),
		End:      time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC),
		Machines: sel, Background: bg,
	}
}

// TestLiveShortestWaitUsesQueueState pins the headline behavior of the
// session-backed policies: a flood of heavy jobs aimed at one machine
// is spread across the fleet because the policy reads the live queue
// backlog at each submit instant, collapsing queue times relative to
// the users' own targeting.
func TestLiveShortestWaitUsesQueueState(t *testing.T) {
	cfg := quietOnlineConfig(31)
	// A week in: both machines are up (bogota opens this seed's window
	// inside a multi-day maintenance outage, which the downtime-aware
	// snapshots make the policy route around — leaving nothing to
	// balance until the machine returns).
	base := cfg.Start.Add(7 * 24 * time.Hour)
	var specs []*cloud.JobSpec
	for i := 0; i < 8; i++ {
		specs = append(specs, &cloud.JobSpec{
			SubmitTime: base.Add(time.Duration(i) * time.Minute),
			User:       "hog", Machine: "ibmq_rome", Privileged: true,
			BatchSize: 900, Shots: 8192, CircuitName: "flood",
			Width: 4, TotalDepth: 9000,
		})
	}
	for i := 0; i < 6; i++ {
		specs = append(specs, &cloud.JobSpec{
			SubmitTime: base.Add(10*time.Minute + time.Duration(i)*time.Minute),
			User:       fmt.Sprintf("probe-%d", i), Machine: "ibmq_rome", Privileged: true,
			BatchSize: 1, Shots: 1024, CircuitName: "tiny", Width: 2,
		})
	}
	f := NewFleetInfo(cfg)
	userChoice, _, err := EvaluateOnline(cfg, specs, LiveUserChoice{}, f)
	if err != nil {
		t.Fatal(err)
	}
	balanced, tr, err := EvaluateOnline(cfg, specs, LiveShortestWait{}, f)
	if err != nil {
		t.Fatal(err)
	}
	perMachine := tr.JobsByMachine()
	if len(perMachine["ibmq_rome"]) == 0 || len(perMachine["ibmq_bogota"]) == 0 {
		t.Fatalf("live placement should spread the flood: rome=%d bogota=%d",
			len(perMachine["ibmq_rome"]), len(perMachine["ibmq_bogota"]))
	}
	if balanced.MeanQueueMin >= userChoice.MeanQueueMin/2 {
		t.Fatalf("live shortest-wait mean queue %v min should collapse vs user choice %v min",
			balanced.MeanQueueMin, userChoice.MeanQueueMin)
	}
}

// TestOnlinePlacementBeatsUserChoice is the §IV-D A/B on the realistic
// workload: deciding each job from live QueueState at its submit
// instant beats the users' machine heuristics, with no estimator
// pre-simulation involved.
func TestOnlinePlacementBeatsUserChoice(t *testing.T) {
	cfg := schedConfig(12)
	specs := schedWorkload(12)
	f := NewFleetInfo(cfg)
	base, _, err := EvaluateOnline(cfg, specs, LiveUserChoice{}, f)
	if err != nil {
		t.Fatal(err)
	}
	live, _, err := EvaluateOnline(cfg, specs, LiveShortestWait{}, f)
	if err != nil {
		t.Fatal(err)
	}
	if live.MeanQueueMin >= base.MeanQueueMin {
		t.Fatalf("live shortest-wait mean queue %v min should beat user choice %v min",
			live.MeanQueueMin, base.MeanQueueMin)
	}
	if live.MedianQueueMin >= base.MedianQueueMin {
		t.Fatalf("live shortest-wait median queue %v min should beat user choice %v min",
			live.MedianQueueMin, base.MedianQueueMin)
	}
}

func TestWaitBoundsCoverActualWaits(t *testing.T) {
	cfg := schedConfig(7)
	e, err := BuildEstimator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	specs := schedWorkload(7)
	tr, err := cloud.Simulate(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	within, total := 0, 0
	ordered := 0
	for _, j := range tr.Jobs {
		if j.Status == trace.StatusCancelled {
			continue
		}
		b := e.EstimatedWaitBounds(j.Machine, j.SubmitTime)
		if b.P10 > b.P50 || b.P50 > b.P90 {
			t.Fatalf("bounds not ordered: %+v", b)
		}
		ordered++
		if b.P90 == 0 {
			continue // empty-queue prediction; actual may still wait
		}
		total++
		if w := j.QueueSeconds(); w >= b.P10 && w <= b.P90 {
			within++
		}
	}
	if total < 100 {
		t.Fatalf("too few bounded predictions: %d", total)
	}
	cover := float64(within) / float64(total)
	// An honest 10-90 band should cover a substantial majority; the
	// simulation has burst dynamics the analytic band cannot fully
	// capture, so require >= 0.5 coverage.
	if cover < 0.5 {
		t.Fatalf("P10-P90 band covered only %.0f%% of actual waits", cover*100)
	}
}

func TestWaitBoundsEmptyQueue(t *testing.T) {
	e, err := BuildEstimator(schedConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	b := e.EstimatedWaitBounds("ibmq_rome", time.Date(2020, 12, 31, 0, 0, 0, 0, time.UTC))
	if b.P10 != 0 || b.P50 != 0 || b.P90 != 0 {
		t.Fatalf("pre-window bounds should be zero: %+v", b)
	}
}
