package sched

import (
	"testing"

	"qcloud/internal/workload"
)

func TestFaultAwareRecoveryUnderAdversarialFaults(t *testing.T) {
	const seed = 6
	sc, err := workload.FindFaultScenario("adversarial")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sc.Apply(schedConfig(seed))
	// Heavier demand than schedWorkload: re-placement only matters when
	// queues are deep enough for jobs to still be waiting when an
	// outage lands on their machine.
	specs := workload.Generate(workload.Config{
		Seed: seed, TotalJobs: 2500,
		Start: cfg.Start, End: cfg.End,
		GrowthPerMonth: 0.05,
	})
	f := NewFleetInfo(cfg)

	base, _, err := EvaluateOnline(cfg, specs, LiveShortestWait{}, f)
	if err != nil {
		t.Fatal(err)
	}
	aware, tr, err := EvaluateOnline(cfg, specs, LiveFaultAware{}, f)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("shortest-wait: %+v", base)
	t.Logf("fault-aware:   %+v", aware)

	if base.Replaced != 0 {
		t.Fatalf("LiveShortestWait is not a Replacer; Replaced = %d", base.Replaced)
	}
	if aware.Replaced == 0 {
		t.Fatal("adversarial outages never triggered a re-placement; the reactive path is dead")
	}
	if aware.Jobs == 0 || len(tr.Jobs) == 0 {
		t.Fatal("fault-aware evaluation produced no jobs")
	}
	// Reacting to outages must not cost user-visible completions: the
	// fault-aware cancellation fraction (re-placement withdrawals
	// excluded) stays at or below the health-blind baseline's.
	if aware.CancelledFraction > base.CancelledFraction {
		t.Fatalf("fault-aware cancelled %.3f of jobs, baseline %.3f — reacting made things worse",
			aware.CancelledFraction, base.CancelledFraction)
	}

	// Determinism: the whole poll-and-re-place loop must be a pure
	// function of (seed, workload), including across worker counts.
	cfgW := cfg
	cfgW.Workers = 4
	again, _, err := EvaluateOnline(cfgW, specs, LiveFaultAware{}, f)
	if err != nil {
		t.Fatal(err)
	}
	if again != aware {
		t.Fatalf("fault-aware evaluation not deterministic across worker counts:\n  %+v\nvs\n  %+v", aware, again)
	}
}

func TestFaultScenarioPresets(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range workload.FaultScenarios() {
		if s.Name == "" || seen[s.Name] {
			t.Fatalf("scenario name %q empty or duplicated", s.Name)
		}
		seen[s.Name] = true
		if s.Name == "none" {
			if s.Faults != nil || s.Retry != nil {
				t.Fatal("the none scenario must be truly calm")
			}
		} else if s.Faults == nil {
			t.Fatalf("scenario %s has no fault profile", s.Name)
		}
		got, err := workload.FindFaultScenario(s.Name)
		if err != nil || got.Name != s.Name {
			t.Fatalf("FindFaultScenario(%q) = %+v, %v", s.Name, got, err)
		}
	}
	for _, want := range []string{"none", "flaky-fleet", "outage-storm", "error-burst", "stale-waves", "adversarial"} {
		if !seen[want] {
			t.Fatalf("missing built-in scenario %q", want)
		}
	}
	if _, err := workload.FindFaultScenario("nope"); err == nil {
		t.Fatal("unknown scenario should error")
	}
}
