// Package sched implements the vendor-side, machine-aware job
// placement the paper recommends (§IV-D: "opportunities for
// vendor-employed machine-aware system wide management of resources
// (with user-constraints) should be explored") together with the
// queue-time prediction of §V-E.
//
// Two placement pipelines coexist as an A/B pair. The offline one
// builds an Estimator from a background-only pre-simulation (stale
// sampled pending counts and mean service times), rewrites the whole
// workload, and replays it through the simulator. The online one
// (online.go) opens a cloud.Session and decides each job at its
// actual submit instant from live QueueState snapshots — the
// vendor-side, machine-aware management the paper argues for, with no
// pre-simulation at all.
package sched

import (
	"fmt"
	"math"
	"sort"
	"time"

	"qcloud/internal/backend"
	"qcloud/internal/cloud"
	"qcloud/internal/stats"
	"qcloud/internal/trace"
)

// FleetInfo is the static, no-simulation-needed machine knowledge
// every placement policy shares — the fleet roster, calibration
// access, and mean background service times. The offline Estimator
// layers pre-simulated queue statistics on top of it; the online
// session policies (online.go) combine it with live QueueState
// snapshots instead.
type FleetInfo struct {
	machines map[string]*backend.Machine
	meanExec map[string]float64
	// ordered is the roster in fleet-config order: placement scans must
	// visit machines in a fixed sequence so tie-breaks (first candidate
	// at equal score) are deterministic, not map-iteration-order.
	ordered []*backend.Machine
}

// NewFleetInfo indexes the config's fleet and background model.
func NewFleetInfo(cfg cloud.Config) *FleetInfo {
	machines := cfg.Machines
	if machines == nil {
		machines = backend.Fleet()
	}
	bg := cfg.Background
	if bg == nil {
		bg = cloud.DefaultBackground()
	}
	f := &FleetInfo{
		machines: make(map[string]*backend.Machine, len(machines)),
		meanExec: make(map[string]float64, len(machines)),
	}
	for _, m := range machines {
		f.machines[m.Name] = m
		f.meanExec[m.Name] = bg.MeanExecSeconds(m)
		f.ordered = append(f.ordered, m)
	}
	return f
}

// MeanExecSeconds returns the machine's mean background service time.
func (f *FleetInfo) MeanExecSeconds(machine string) float64 { return f.meanExec[machine] }

// Estimator predicts per-machine waiting times from observed queue
// state — the §V-E.1 "research on predicting queuing times" primitive.
// It extends FleetInfo with queue-length time series and wait-ratio
// calibration from a background-only pre-simulation.
type Estimator struct {
	*FleetInfo
	pending   map[string][]trace.PendingSample
	waitRatio map[string][3]float64 // empirical P10/P50/P90 of wait/(pending*mean)
}

// BuildEstimator runs a background-only simulation over the config's
// window and indexes the resulting queue-length time series. The study
// jobs themselves are a negligible perturbation of the background load
// (thousands vs millions), so the estimate remains valid once they are
// placed.
func BuildEstimator(cfg cloud.Config) (*Estimator, error) {
	if cfg.PendingSampleEvery <= 0 {
		// Queue lengths move fast; the default 6h trace sampling is too
		// stale for placement decisions.
		cfg.PendingSampleEvery = 30 * time.Minute
	}
	tr, err := cloud.Simulate(cfg, nil)
	if err != nil {
		return nil, fmt.Errorf("sched: background simulation: %w", err)
	}
	e := &Estimator{
		FleetInfo: NewFleetInfo(cfg),
		pending:   make(map[string][]trace.PendingSample),
		waitRatio: make(map[string][3]float64),
	}
	for _, ms := range tr.Machines {
		e.pending[ms.Name] = ms.PendingSamples
		if ms.WaitRatioP90 > 0 {
			e.waitRatio[ms.Name] = [3]float64{ms.WaitRatioP10, ms.WaitRatioP50, ms.WaitRatioP90}
		}
	}
	return e, nil
}

// PendingAt returns the most recent sampled queue length at or before
// t (0 if no sample exists yet).
func (e *Estimator) PendingAt(machine string, t time.Time) int {
	samples := e.pending[machine]
	// Samples are time-ordered; binary search the last one <= t.
	lo, hi := 0, len(samples)
	for lo < hi {
		mid := (lo + hi) / 2
		if samples[mid].Time.After(t) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == 0 {
		return 0
	}
	return samples[lo-1].Pending
}

// EstimatedWaitSeconds predicts the queue wait for a job submitted to
// the machine at time t: pending jobs times the machine's mean service
// time. This is exactly the estimate a vendor can compute from public
// queue lengths plus the Fig 15 runtime predictor.
func (e *Estimator) EstimatedWaitSeconds(machine string, t time.Time) float64 {
	return float64(e.PendingAt(machine, t)) * e.meanExec[machine]
}

// EstimatedFidelity scores the expected per-circuit success of a job on
// a machine from its calibration: (1-meanCXerr)^(CX per circuit) — the
// §IV-B compile-time CX metric used for machine selection.
func (f *FleetInfo) EstimatedFidelity(spec *cloud.JobSpec, machine string, t time.Time) float64 {
	m := f.machines[machine]
	if m == nil {
		return 0
	}
	cal := m.CalibrationAt(t)
	cxPerCircuit := 0.0
	if spec.BatchSize > 0 {
		cxPerCircuit = float64(spec.CXTotal) / float64(spec.BatchSize)
	}
	return math.Pow(1-cal.MeanCXError(), cxPerCircuit)
}

// Candidates returns the machines the job may legally target at its
// submit time: online, wide enough, and accessible to the user class.
func (f *FleetInfo) Candidates(spec *cloud.JobSpec) []*backend.Machine {
	var out []*backend.Machine
	for _, m := range f.ordered {
		if !m.AvailableAt(spec.SubmitTime) || m.NumQubits() < spec.Width {
			continue
		}
		if !m.Public && !spec.Privileged {
			continue
		}
		if m.Simulator {
			continue // hardware placement only
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Policy picks a machine for a job from the legal candidates. A nil
// return keeps the user's original choice.
type Policy interface {
	Name() string
	Choose(spec *cloud.JobSpec, candidates []*backend.Machine, e *Estimator) *backend.Machine
}

// UserChoice is the baseline: whatever machine the user picked.
type UserChoice struct{}

// Name implements Policy.
func (UserChoice) Name() string { return "user-choice" }

// Choose implements Policy.
func (UserChoice) Choose(*cloud.JobSpec, []*backend.Machine, *Estimator) *backend.Machine {
	return nil
}

// LeastPending routes to the machine with the shortest queue right now
// — naive load balancing.
type LeastPending struct{}

// Name implements Policy.
func (LeastPending) Name() string { return "least-pending" }

// Choose implements Policy.
func (LeastPending) Choose(spec *cloud.JobSpec, cands []*backend.Machine, e *Estimator) *backend.Machine {
	var best *backend.Machine
	bestP := 0
	for _, m := range cands {
		p := e.PendingAt(m.Name, spec.SubmitTime)
		if best == nil || p < bestP {
			best, bestP = m, p
		}
	}
	return best
}

// PredictedWait routes to the machine with the lowest predicted wait
// (pending x mean service), which beats raw pending counts when
// machines have different service rates.
type PredictedWait struct{}

// Name implements Policy.
func (PredictedWait) Name() string { return "predicted-wait" }

// Choose implements Policy.
func (PredictedWait) Choose(spec *cloud.JobSpec, cands []*backend.Machine, e *Estimator) *backend.Machine {
	var best *backend.Machine
	bestW := 0.0
	for _, m := range cands {
		w := e.EstimatedWaitSeconds(m.Name, spec.SubmitTime)
		if best == nil || w < bestW {
			best, bestW = m, w
		}
	}
	return best
}

// FidelityAware trades waiting time against expected fidelity, the
// §V-E.3 user-constrained trade-off: it maximizes estimated fidelity
// minus WaitPenaltyPerHour x predicted wait.
type FidelityAware struct {
	// WaitPenaltyPerHour is the fidelity a user will sacrifice to
	// start one hour sooner (default 0.02).
	WaitPenaltyPerHour float64
}

// Name implements Policy.
func (FidelityAware) Name() string { return "fidelity-aware" }

// Choose implements Policy.
func (p FidelityAware) Choose(spec *cloud.JobSpec, cands []*backend.Machine, e *Estimator) *backend.Machine {
	penalty := p.WaitPenaltyPerHour
	if penalty <= 0 {
		penalty = 0.02
	}
	var best *backend.Machine
	bestScore := math.Inf(-1)
	for _, m := range cands {
		fid := e.EstimatedFidelity(spec, m.Name, spec.SubmitTime)
		waitH := e.EstimatedWaitSeconds(m.Name, spec.SubmitTime) / 3600
		score := fid - penalty*waitH
		if score > bestScore {
			best, bestScore = m, score
		}
	}
	return best
}

// Place rewrites each spec's target machine according to the policy.
// Specs are copied; the input slice is not mutated.
func Place(specs []*cloud.JobSpec, policy Policy, e *Estimator) []*cloud.JobSpec {
	out := make([]*cloud.JobSpec, len(specs))
	for i, s := range specs {
		c := *s
		if m := policy.Choose(&c, e.Candidates(&c), e); m != nil {
			c.Machine = m.Name
		}
		out[i] = &c
	}
	return out
}

// Summary aggregates a policy evaluation.
type Summary struct {
	Policy            string
	MedianQueueMin    float64
	MeanQueueMin      float64
	P90QueueMin       float64
	MeanEstFidelity   float64
	CancelledFraction float64
	Jobs              int
	// Replaced counts queued jobs a Replacer policy withdrew from a
	// down machine and resubmitted elsewhere (online evaluation only).
	Replaced int
}

// Evaluate places the workload under the policy and replays it through
// the cloud simulator, returning the realized queue/fidelity summary.
func Evaluate(cfg cloud.Config, specs []*cloud.JobSpec, policy Policy, e *Estimator) (Summary, *trace.Trace, error) {
	placed := Place(specs, policy, e)
	tr, err := cloud.Simulate(cfg, placed)
	if err != nil {
		return Summary{}, nil, err
	}
	return summarize(policy.Name(), placed, tr, e.FleetInfo, 0), tr, nil
}

// summarize aggregates the realized queue/fidelity outcomes of a
// placed workload's trace. replaced is the number of Replacer
// withdrawals in the trace: each left a CANCELLED shadow record that
// is bookkeeping, not a user-visible cancellation, so it is excluded
// from CancelledFraction.
func summarize(policy string, placed []*cloud.JobSpec, tr *trace.Trace, f *FleetInfo, replaced int) Summary {
	var queues []float64
	fidSum := 0.0
	cancelled := 0
	byID := make(map[string]*cloud.JobSpec) // key: user+submit time
	for _, s := range placed {
		byID[s.User+s.SubmitTime.String()] = s
	}
	for _, j := range tr.Jobs {
		if j.Status == trace.StatusCancelled {
			cancelled++
			continue
		}
		queues = append(queues, j.QueueSeconds()/60)
		if s := byID[j.User+j.SubmitTime.String()]; s != nil {
			fidSum += f.EstimatedFidelity(s, j.Machine, j.StartTime)
		}
	}
	if cancelled >= replaced {
		cancelled -= replaced
	}
	s := Summary{
		Policy:            policy,
		MedianQueueMin:    stats.Median(queues),
		MeanQueueMin:      stats.Mean(queues),
		P90QueueMin:       stats.Quantile(queues, 0.9),
		CancelledFraction: float64(cancelled) / float64(len(tr.Jobs)),
		Jobs:              len(tr.Jobs),
		Replaced:          replaced,
	}
	if n := len(queues); n > 0 {
		s.MeanEstFidelity = fidSum / float64(n)
	}
	return s
}

// WaitBounds is a wait prediction with quantitative confidence levels,
// the §V-E.1 recommendation ("research on predicting queuing times
// with quantitative confidence levels, as pursued in HPC").
type WaitBounds struct {
	// P10, P50, P90 are seconds of predicted wait at those confidence
	// quantiles.
	P10, P50, P90 float64
}

// EstimatedWaitBounds returns quantile bounds on the wait. The point
// estimate is pending x mean service; the band comes from the
// *empirical* quantiles of actualWait/(pending x mean) that the
// background simulation recorded per machine (fair-share reordering,
// bursts and downtime make the analytic CLT band far too narrow, so
// the interval is calibrated against observed behaviour instead).
func (e *Estimator) EstimatedWaitBounds(machine string, t time.Time) WaitBounds {
	n := float64(e.PendingAt(machine, t))
	mean := e.meanExec[machine]
	if n == 0 {
		return WaitBounds{}
	}
	point := n * mean
	ratios, ok := e.waitRatio[machine]
	if !ok {
		// No calibration (quiet machine): a wide default band.
		ratios = [3]float64{0.05, 0.8, 3}
	}
	// The calibration ratios were computed against exact in-simulator
	// queue lengths, while predictions see sampled (stale) ones; widen
	// the band to absorb that staleness.
	const stalenessWiden = 2.5
	return WaitBounds{
		P10: point * ratios[0] / stalenessWiden,
		P50: point * ratios[1],
		P90: point * ratios[2] * stalenessWiden,
	}
}
