package sched

import (
	"fmt"
	"math"
	"sort"
	"time"

	"qcloud/internal/backend"
	"qcloud/internal/cloud"
	"qcloud/internal/trace"
)

// QueueView provides live queue snapshots at a decision instant — the
// exact information a vendor-side scheduler sees when a job arrives,
// in contrast to the Estimator's stale pre-simulated samples.
// *cloud.Session satisfies it directly.
type QueueView interface {
	QueueState(machine string) (cloud.QueueSnapshot, error)
}

// OnlinePolicy picks a machine for a job from live queue state at the
// job's submit instant. A nil return keeps the user's original choice.
type OnlinePolicy interface {
	Name() string
	ChooseLive(spec *cloud.JobSpec, candidates []*backend.Machine, q QueueView, f *FleetInfo) *backend.Machine
}

// LiveUserChoice is the online baseline: whatever machine the user
// picked, placed through the same session harness.
type LiveUserChoice struct{}

// Name implements OnlinePolicy.
func (LiveUserChoice) Name() string { return "live-user-choice" }

// ChooseLive implements OnlinePolicy.
func (LiveUserChoice) ChooseLive(*cloud.JobSpec, []*backend.Machine, QueueView, *FleetInfo) *backend.Machine {
	return nil
}

// LiveLeastPending routes to the machine whose queue is shortest right
// now — the naive balancer, but acting on exact rather than sampled
// pending counts.
type LiveLeastPending struct{}

// Name implements OnlinePolicy.
func (LiveLeastPending) Name() string { return "live-least-pending" }

// ChooseLive implements OnlinePolicy.
func (LiveLeastPending) ChooseLive(spec *cloud.JobSpec, cands []*backend.Machine, q QueueView, f *FleetInfo) *backend.Machine {
	var best *backend.Machine
	bestP := 0
	for _, m := range cands {
		snap, err := q.QueueState(m.Name)
		if err != nil {
			continue
		}
		if best == nil || snap.Pending < bestP {
			best, bestP = m, snap.Pending
		}
	}
	return best
}

// LiveShortestWait routes to the machine with the smallest live wait
// estimate: the in-flight job's remaining service plus the queued
// backlog's predicted runtimes. This is what the paper's §IV-D
// vendor-side management can compute but the offline estimator cannot:
// the backlog's actual composition at the submit instant, not a
// pending count sampled half an hour earlier times a fleet-wide mean.
type LiveShortestWait struct{}

// Name implements OnlinePolicy.
func (LiveShortestWait) Name() string { return "live-shortest-wait" }

// ChooseLive implements OnlinePolicy.
func (LiveShortestWait) ChooseLive(spec *cloud.JobSpec, cands []*backend.Machine, q QueueView, f *FleetInfo) *backend.Machine {
	var best *backend.Machine
	bestW := math.Inf(1)
	for _, m := range cands {
		snap, err := q.QueueState(m.Name)
		if err != nil {
			continue
		}
		if w := snap.EstimatedWaitSeconds(); w < bestW {
			best, bestW = m, w
		}
	}
	return best
}

// LiveFidelityAware trades live waiting time against expected
// fidelity: the §V-E.3 user-constrained trade-off, with the wait side
// computed from the queue's actual backlog.
type LiveFidelityAware struct {
	// WaitPenaltyPerHour is the fidelity a user will sacrifice to
	// start one hour sooner (default 0.02).
	WaitPenaltyPerHour float64
}

// Name implements OnlinePolicy.
func (LiveFidelityAware) Name() string { return "live-fidelity-aware" }

// ChooseLive implements OnlinePolicy.
func (p LiveFidelityAware) ChooseLive(spec *cloud.JobSpec, cands []*backend.Machine, q QueueView, f *FleetInfo) *backend.Machine {
	penalty := p.WaitPenaltyPerHour
	if penalty <= 0 {
		penalty = 0.02
	}
	var best *backend.Machine
	bestScore := math.Inf(-1)
	for _, m := range cands {
		snap, err := q.QueueState(m.Name)
		if err != nil {
			continue
		}
		fid := f.EstimatedFidelity(spec, m.Name, spec.SubmitTime)
		score := fid - penalty*snap.EstimatedWaitSeconds()/3600
		if score > bestScore {
			best, bestScore = m, score
		}
	}
	return best
}

// LiveFaultAware is LiveShortestWait that also reads the fleet's
// health: machines observably down right now (an unplanned outage in
// progress — QueueSnapshot.Down) are skipped, falling back to overall
// shortest wait only when every candidate is down. As a Replacer it
// additionally withdraws its own queued jobs from machines that have
// since gone down and re-places them, the reactive half of the
// vendor-side management the paper argues for.
type LiveFaultAware struct{}

// Name implements OnlinePolicy.
func (LiveFaultAware) Name() string { return "live-fault-aware" }

// ChooseLive implements OnlinePolicy.
func (LiveFaultAware) ChooseLive(spec *cloud.JobSpec, cands []*backend.Machine, q QueueView, f *FleetInfo) *backend.Machine {
	var best, bestUp *backend.Machine
	bestW, bestUpW := math.Inf(1), math.Inf(1)
	for _, m := range cands {
		snap, err := q.QueueState(m.Name)
		if err != nil {
			continue
		}
		w := snap.EstimatedWaitSeconds()
		if w < bestW {
			best, bestW = m, w
		}
		if !snap.Down && w < bestUpW {
			bestUp, bestUpW = m, w
		}
	}
	if bestUp != nil {
		return bestUp
	}
	return best
}

// ReplaceLive implements Replacer: a queued job on a down machine
// moves to the shortest-wait healthy candidate (nil when no healthy
// machine exists — the job waits out the outage where it is).
func (p LiveFaultAware) ReplaceLive(spec *cloud.JobSpec, cands []*backend.Machine, q QueueView, f *FleetInfo) *backend.Machine {
	var best *backend.Machine
	bestW := math.Inf(1)
	for _, m := range cands {
		snap, err := q.QueueState(m.Name)
		if err != nil || snap.Down {
			continue
		}
		if w := snap.EstimatedWaitSeconds(); w < bestW {
			best, bestW = m, w
		}
	}
	return best
}

// Replacer is the optional OnlinePolicy extension for reacting to
// machine outages: when a previously-placed job is still queued on a
// machine that is now down, EvaluateOnline asks the policy to pick a
// replacement machine (nil = leave the job waiting). Decisions are
// made at workload arrival instants from deterministic QueueState and
// JobStatus polls — not from the asynchronous Observe stream — so the
// evaluation stays bit-identical across worker counts.
type Replacer interface {
	ReplaceLive(spec *cloud.JobSpec, cands []*backend.Machine, q QueueView, f *FleetInfo) *backend.Machine
}

// onlineJob tracks a placed job so a Replacer can revisit it.
type onlineJob struct {
	h    *cloud.JobHandle
	spec *cloud.JobSpec
	idx  int
}

// EvaluateOnline drives the workload through an open cloud session in
// arrival order: for each job the session advances to the submit
// instant, the policy reads live QueueState snapshots of the legal
// candidates, and the (possibly re-targeted) job is submitted mid-run.
// No pre-simulation or replay is involved — this is the genuinely
// online counterpart of Evaluate's estimator-and-replay pipeline, and
// the A/B baseline for it. Policies implementing Replacer additionally
// get to move queued jobs off machines that went down since placement;
// each move withdraws the job and resubmits it at the decision
// instant (its queue clock restarts, and the withdrawal's CANCELLED
// shadow record is excluded from CancelledFraction).
func EvaluateOnline(cfg cloud.Config, specs []*cloud.JobSpec, policy OnlinePolicy, f *FleetInfo) (Summary, *trace.Trace, error) {
	sess, err := cloud.Open(cfg)
	if err != nil {
		return Summary{}, nil, fmt.Errorf("sched: opening session: %w", err)
	}
	defer sess.Close()
	ordered := make([]*cloud.JobSpec, len(specs))
	copy(ordered, specs)
	sort.SliceStable(ordered, func(i, j int) bool {
		return ordered[i].SubmitTime.Before(ordered[j].SubmitTime)
	})
	replacer, _ := policy.(Replacer)
	placed := make([]*cloud.JobSpec, len(ordered))
	live := make([]onlineJob, 0, len(ordered))
	replaced := 0
	for i, s := range ordered {
		c := *s
		sess.AdvanceTo(c.SubmitTime)
		if replacer != nil {
			n, err := replaceDown(sess, replacer, f, live, placed, c.SubmitTime)
			if err != nil {
				return Summary{}, nil, err
			}
			replaced += n
		}
		if m := policy.ChooseLive(&c, f.Candidates(&c), sess, f); m != nil {
			c.Machine = m.Name
		}
		h, err := sess.SubmitRetried(&c, 0)
		if err != nil {
			return Summary{}, nil, fmt.Errorf("sched: online submit: %w", err)
		}
		placed[i] = &c
		live = append(live, onlineJob{h: h, spec: &c, idx: i})
	}
	tr, err := sess.Run()
	if err != nil {
		return Summary{}, nil, err
	}
	return summarize(policy.Name(), placed, tr, f, replaced), tr, nil
}

// replaceDown scans the still-queued jobs for machines that are down
// at the decision instant and lets the Replacer move them. It returns
// the number of jobs moved. live entries are updated in place;
// finished jobs drop their handles so later scans skip them.
func replaceDown(sess *cloud.Session, rp Replacer, f *FleetInfo, live []onlineJob, placed []*cloud.JobSpec, now time.Time) (int, error) {
	moved := 0
	for k := range live {
		pj := &live[k]
		if pj.h == nil {
			continue
		}
		st, err := sess.JobStatus(pj.h)
		if err != nil || st == cloud.JobStateFinished || st == cloud.JobStateWithdrawn {
			pj.h = nil
			continue
		}
		if st != cloud.JobStateQueued {
			// Still pending admission: revisit at the next instant.
			continue
		}
		snap, err := sess.QueueState(pj.spec.Machine)
		if err != nil || !snap.Down {
			continue
		}
		c := *pj.spec
		c.SubmitTime = now
		m := rp.ReplaceLive(&c, f.Candidates(&c), sess, f)
		if m == nil || m.Name == pj.spec.Machine {
			continue
		}
		if err := sess.Cancel(pj.h); err != nil {
			// Lost the race with the server (e.g. it just recorded the
			// job): leave it be.
			pj.h = nil
			continue
		}
		c.Machine = m.Name
		h, err := sess.SubmitRetried(&c, 0)
		if err != nil {
			return moved, fmt.Errorf("sched: online re-place: %w", err)
		}
		moved++
		placed[pj.idx] = &c
		pj.h, pj.spec = h, &c
	}
	return moved, nil
}
