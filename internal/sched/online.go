package sched

import (
	"fmt"
	"math"
	"sort"

	"qcloud/internal/backend"
	"qcloud/internal/cloud"
	"qcloud/internal/trace"
)

// QueueView provides live queue snapshots at a decision instant — the
// exact information a vendor-side scheduler sees when a job arrives,
// in contrast to the Estimator's stale pre-simulated samples.
// *cloud.Session satisfies it directly.
type QueueView interface {
	QueueState(machine string) (cloud.QueueSnapshot, error)
}

// OnlinePolicy picks a machine for a job from live queue state at the
// job's submit instant. A nil return keeps the user's original choice.
type OnlinePolicy interface {
	Name() string
	ChooseLive(spec *cloud.JobSpec, candidates []*backend.Machine, q QueueView, f *FleetInfo) *backend.Machine
}

// LiveUserChoice is the online baseline: whatever machine the user
// picked, placed through the same session harness.
type LiveUserChoice struct{}

// Name implements OnlinePolicy.
func (LiveUserChoice) Name() string { return "live-user-choice" }

// ChooseLive implements OnlinePolicy.
func (LiveUserChoice) ChooseLive(*cloud.JobSpec, []*backend.Machine, QueueView, *FleetInfo) *backend.Machine {
	return nil
}

// LiveLeastPending routes to the machine whose queue is shortest right
// now — the naive balancer, but acting on exact rather than sampled
// pending counts.
type LiveLeastPending struct{}

// Name implements OnlinePolicy.
func (LiveLeastPending) Name() string { return "live-least-pending" }

// ChooseLive implements OnlinePolicy.
func (LiveLeastPending) ChooseLive(spec *cloud.JobSpec, cands []*backend.Machine, q QueueView, f *FleetInfo) *backend.Machine {
	var best *backend.Machine
	bestP := 0
	for _, m := range cands {
		snap, err := q.QueueState(m.Name)
		if err != nil {
			continue
		}
		if best == nil || snap.Pending < bestP {
			best, bestP = m, snap.Pending
		}
	}
	return best
}

// LiveShortestWait routes to the machine with the smallest live wait
// estimate: the in-flight job's remaining service plus the queued
// backlog's predicted runtimes. This is what the paper's §IV-D
// vendor-side management can compute but the offline estimator cannot:
// the backlog's actual composition at the submit instant, not a
// pending count sampled half an hour earlier times a fleet-wide mean.
type LiveShortestWait struct{}

// Name implements OnlinePolicy.
func (LiveShortestWait) Name() string { return "live-shortest-wait" }

// ChooseLive implements OnlinePolicy.
func (LiveShortestWait) ChooseLive(spec *cloud.JobSpec, cands []*backend.Machine, q QueueView, f *FleetInfo) *backend.Machine {
	var best *backend.Machine
	bestW := math.Inf(1)
	for _, m := range cands {
		snap, err := q.QueueState(m.Name)
		if err != nil {
			continue
		}
		if w := snap.EstimatedWaitSeconds(); w < bestW {
			best, bestW = m, w
		}
	}
	return best
}

// LiveFidelityAware trades live waiting time against expected
// fidelity: the §V-E.3 user-constrained trade-off, with the wait side
// computed from the queue's actual backlog.
type LiveFidelityAware struct {
	// WaitPenaltyPerHour is the fidelity a user will sacrifice to
	// start one hour sooner (default 0.02).
	WaitPenaltyPerHour float64
}

// Name implements OnlinePolicy.
func (LiveFidelityAware) Name() string { return "live-fidelity-aware" }

// ChooseLive implements OnlinePolicy.
func (p LiveFidelityAware) ChooseLive(spec *cloud.JobSpec, cands []*backend.Machine, q QueueView, f *FleetInfo) *backend.Machine {
	penalty := p.WaitPenaltyPerHour
	if penalty <= 0 {
		penalty = 0.02
	}
	var best *backend.Machine
	bestScore := math.Inf(-1)
	for _, m := range cands {
		snap, err := q.QueueState(m.Name)
		if err != nil {
			continue
		}
		fid := f.EstimatedFidelity(spec, m.Name, spec.SubmitTime)
		score := fid - penalty*snap.EstimatedWaitSeconds()/3600
		if score > bestScore {
			best, bestScore = m, score
		}
	}
	return best
}

// EvaluateOnline drives the workload through an open cloud session in
// arrival order: for each job the session advances to the submit
// instant, the policy reads live QueueState snapshots of the legal
// candidates, and the (possibly re-targeted) job is submitted mid-run.
// No pre-simulation or replay is involved — this is the genuinely
// online counterpart of Evaluate's estimator-and-replay pipeline, and
// the A/B baseline for it.
func EvaluateOnline(cfg cloud.Config, specs []*cloud.JobSpec, policy OnlinePolicy, f *FleetInfo) (Summary, *trace.Trace, error) {
	sess, err := cloud.Open(cfg)
	if err != nil {
		return Summary{}, nil, fmt.Errorf("sched: opening session: %w", err)
	}
	defer sess.Close()
	ordered := make([]*cloud.JobSpec, len(specs))
	copy(ordered, specs)
	sort.SliceStable(ordered, func(i, j int) bool {
		return ordered[i].SubmitTime.Before(ordered[j].SubmitTime)
	})
	placed := make([]*cloud.JobSpec, len(ordered))
	for i, s := range ordered {
		c := *s
		sess.AdvanceTo(c.SubmitTime)
		if m := policy.ChooseLive(&c, f.Candidates(&c), sess, f); m != nil {
			c.Machine = m.Name
		}
		if _, err := sess.Submit(&c); err != nil {
			return Summary{}, nil, fmt.Errorf("sched: online submit: %w", err)
		}
		placed[i] = &c
	}
	tr, err := sess.Run()
	if err != nil {
		return Summary{}, nil, err
	}
	return summarize(policy.Name(), placed, tr, f), tr, nil
}
