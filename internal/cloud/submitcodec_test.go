package cloud

import (
	"bytes"
	"testing"
	"time"
)

func submitCodecSpecs() []journalSubmit {
	base := time.Date(2021, 3, 14, 9, 26, 53, 589793238, time.UTC)
	return []journalSubmit{
		{Machine: "ibmq_athens", SubmitSeq: 7, Spec: JobSpec{
			SubmitTime: base, User: "tenant:team-α/grp", Machine: "ibmq_athens",
			BatchSize: 75, Shots: 8192, CircuitName: "qft", Width: 5,
			TotalDepth: 1200, TotalGateOps: 4800, CXTotal: 900, MemSlots: 5,
			PatienceSec: 86400.5, Privileged: true,
		}},
		{Machine: "", SubmitSeq: 0, Spec: JobSpec{SubmitTime: time.Unix(0, 1).UTC()}},
		{Machine: "ibmq_rome", SubmitSeq: 1 << 40, Spec: JobSpec{
			SubmitTime: base.Add(400 * 24 * time.Hour), User: "u",
			Machine: "ibmq_rome", Shots: 1, PatienceSec: 0,
		}},
	}
}

// TestSubmitRecordRoundTrip pins the input log's binary codec: every
// field survives encode→decode, including non-ASCII users and zero
// values.
func TestSubmitRecordRoundTrip(t *testing.T) {
	for i, js := range submitCodecSpecs() {
		buf := appendSubmitRecord(nil, js.Machine, js.SubmitSeq, &js.Spec)
		if buf[0] != jrecSubmit2 {
			t.Fatalf("record %d: type byte %d, want jrecSubmit2", i, buf[0])
		}
		got, err := decodeSubmitRecord(buf[1:])
		if err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		if got.Machine != js.Machine || got.SubmitSeq != js.SubmitSeq || got.Spec != js.Spec {
			t.Fatalf("record %d: round trip mismatch:\n got %+v\nwant %+v", i, got, js)
		}
	}
}

// TestSubmitRecordMalformed: truncation at every byte boundary and
// trailing garbage are errors, never panics.
func TestSubmitRecordMalformed(t *testing.T) {
	js := submitCodecSpecs()[0]
	full := appendSubmitRecord(nil, js.Machine, js.SubmitSeq, &js.Spec)[1:]
	for n := 0; n < len(full); n++ {
		if _, err := decodeSubmitRecord(full[:n]); err == nil {
			t.Fatalf("decode of %d/%d byte prefix succeeded", n, len(full))
		}
	}
	if _, err := decodeSubmitRecord(append(append([]byte{}, full...), 0x7f)); err == nil {
		t.Fatal("decode with trailing byte succeeded")
	}
}

// TestJournalLegacyGobSubmitsRecoverable pins old-format support: a
// journal whose input log was written with the original per-record gob
// framing recovers to the same byte-identical trace.
func TestJournalLegacyGobSubmitsRecoverable(t *testing.T) {
	golden := jtGolden(t, 1)

	cfg := jtConfig(3, 1)
	cfg.Journal = &JournalConfig{
		Dir:              t.TempDir(),
		CheckpointEvery:  36 * time.Hour,
		legacyGobSubmits: true,
		killAfterRecords: 120,
	}
	specs := jtSpecs()
	if _, killed := runJournaled(t, cfg, specs); !killed {
		t.Fatal("kill hook did not fire; raise the spec count or lower killAfterRecords")
	}
	// Recovery replays the gob-framed input log; the resumed session
	// appends new submissions in the binary framing, so the recovered
	// log is mixed-format — exactly what an upgraded deployment sees.
	cfg.Journal.killAfterRecords = 0
	cfg.Journal.legacyGobSubmits = false
	tr := recoverAndFinish(t, cfg, specs)
	if got := jtJSON(t, tr); !bytes.Equal(got, golden) {
		t.Fatal("trace recovered from legacy gob input log differs from the uninterrupted run")
	}
}
