package cloud_test

import (
	"bytes"
	"testing"
	"time"

	"qcloud/internal/cloud"
	"qcloud/internal/fault"
	"qcloud/internal/workload"
)

// chaosProfile is an aggressive fault scenario: frequent outages,
// elevated transient rates, bursts, staleness waves and flaky submits
// all at once, so every injector path is exercised in one run.
func chaosProfile() *fault.Profile {
	return &fault.Profile{
		OutageMeanGapDays:  6,
		OutageMeanHours:    8,
		OutageMaxHours:     36,
		TransientErrorRate: 0.08,
		BurstMeanGapDays:   10,
		BurstMeanHours:     5,
		BurstErrorRate:     0.6,
		StaleMeanGapDays:   8,
		StaleMeanHours:     12,
		StaleErrorFactor:   5,
		SubmitErrorRate:    0.02,
	}
}

func chaosRetry() *cloud.RetryPolicy {
	return &cloud.RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: 2 * time.Minute,
		MaxBackoff:  45 * time.Minute,
		JitterFrac:  0.3,
	}
}

func faultConfig(seed int64, workers int) cloud.Config {
	return cloud.Config{
		Seed: seed, Start: sessWindow.start, End: sessWindow.end,
		Machines: sessMachines(), Workers: workers,
		Faults: chaosProfile(), Retry: chaosRetry(),
	}
}

func faultSpecs(seed int64) []*cloud.JobSpec {
	return workload.Generate(workload.Config{
		Seed: seed, TotalJobs: 250,
		Start: sessWindow.start, End: sessWindow.end,
		Machines: sessMachines(),
	})
}

// TestFaultTraceBitIdenticalAcrossWorkers: with the full chaos profile
// enabled, the trace is still a pure function of the seed — serial and
// 4-worker runs hash identically, and the batch Simulate wrapper
// agrees with a hand-driven session.
func TestFaultTraceBitIdenticalAcrossWorkers(t *testing.T) {
	for _, seed := range []int64{3, 11, 27} {
		specs := faultSpecs(seed)
		var want []byte
		for _, workers := range []int{1, 4} {
			cfg := faultConfig(seed, workers)
			tr, err := cloud.Simulate(cfg, specs)
			if err != nil {
				t.Fatal(err)
			}
			got := traceJSON(t, tr)
			if want == nil {
				want = got
			} else if !bytes.Equal(got, want) {
				t.Fatalf("seed %d: faulted trace differs between worker counts", seed)
			}
		}
		// A faulted fleet must actually look different from a calm one,
		// or the injector is wired to nothing.
		calm, err := cloud.Simulate(cloud.Config{
			Seed: seed, Start: sessWindow.start, End: sessWindow.end,
			Machines: sessMachines(),
		}, specs)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(traceJSON(t, calm), want) {
			t.Fatalf("seed %d: fault injection changed nothing", seed)
		}
	}
}

// TestCheckpointRestoreRecoveryReplay is the crash-replay property:
// killing a faulted session at an arbitrary AdvanceTo frontier,
// serializing its checkpoint through the codec, and restoring into a
// fresh session (at a different worker count) reproduces the
// uninterrupted run's trace byte-for-byte.
func TestCheckpointRestoreRecoveryReplay(t *testing.T) {
	const seed = 17
	specs := faultSpecs(seed)
	golden := func() []byte {
		tr, err := cloud.Simulate(faultConfig(seed, 1), specs)
		if err != nil {
			t.Fatal(err)
		}
		return traceJSON(t, tr)
	}()

	windowLen := sessWindow.end.Sub(sessWindow.start)
	for _, frac := range []float64{0.2, 0.5, 0.8} {
		frontier := sessWindow.start.Add(time.Duration(float64(windowLen) * frac))
		sess, err := cloud.Open(faultConfig(seed, 2))
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range specs {
			if _, err := sess.SubmitRetried(s, 0); err != nil {
				t.Fatal(err)
			}
		}
		sess.AdvanceTo(frontier)
		ck, err := sess.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		// The "crash": the original session is abandoned. The snapshot
		// round-trips through its serialized bytes.
		if err := sess.Close(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := cloud.WriteCheckpoint(&buf, ck); err != nil {
			t.Fatal(err)
		}
		decoded, err := cloud.ReadCheckpoint(&buf)
		if err != nil {
			t.Fatal(err)
		}
		restored, err := cloud.Restore(faultConfig(seed, 4), decoded)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := restored.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(traceJSON(t, tr), golden) {
			t.Fatalf("restore at %.0f%% of the window diverged from the uninterrupted run", frac*100)
		}
	}
}

// TestCheckpointChainedRecovery kills and restores the same run twice
// (checkpoint → restore → advance → checkpoint → restore), proving
// snapshots compose: a restored session is as checkpointable as the
// original.
func TestCheckpointChainedRecovery(t *testing.T) {
	const seed = 5
	specs := faultSpecs(seed)
	golden := func() []byte {
		tr, err := cloud.Simulate(faultConfig(seed, 1), specs)
		if err != nil {
			t.Fatal(err)
		}
		return traceJSON(t, tr)
	}()

	sess, err := cloud.Open(faultConfig(seed, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		if _, err := sess.SubmitRetried(s, 0); err != nil {
			t.Fatal(err)
		}
	}
	roundTrip := func(s *cloud.Session, workers int) *cloud.Session {
		t.Helper()
		ck, err := s.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := cloud.WriteCheckpoint(&buf, ck); err != nil {
			t.Fatal(err)
		}
		decoded, err := cloud.ReadCheckpoint(&buf)
		if err != nil {
			t.Fatal(err)
		}
		restored, err := cloud.Restore(faultConfig(seed, workers), decoded)
		if err != nil {
			t.Fatal(err)
		}
		return restored
	}
	sess.AdvanceTo(sessWindow.start.AddDate(0, 0, 13))
	sess = roundTrip(sess, 4)
	sess.AdvanceTo(sessWindow.start.AddDate(0, 0, 41))
	sess = roundTrip(sess, 2)
	tr, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(traceJSON(t, tr), golden) {
		t.Fatal("doubly-restored run diverged from the uninterrupted run")
	}
}

// TestCheckpointRestoreValidation pins the guard rails: a checkpoint
// only restores into the configuration it was taken under.
func TestCheckpointRestoreValidation(t *testing.T) {
	sess, err := cloud.Open(faultConfig(23, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ck, err := sess.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	bad := faultConfig(24, 1)
	if _, err := cloud.Restore(bad, ck); err == nil {
		t.Fatal("restore with a different seed should fail")
	}
	noFaults := faultConfig(23, 1)
	noFaults.Faults = nil
	if _, err := cloud.Restore(noFaults, ck); err == nil {
		t.Fatal("restore without the fault profile should fail")
	}
	otherRetry := faultConfig(23, 1)
	otherRetry.Retry = &cloud.RetryPolicy{MaxAttempts: 9}
	if _, err := cloud.Restore(otherRetry, ck); err == nil {
		t.Fatal("restore with a different retry policy should fail")
	}
	if _, err := cloud.Restore(faultConfig(23, 1), ck); err != nil {
		t.Fatalf("restore with the original config failed: %v", err)
	}
	// A closed session cannot be checkpointed.
	done, err := cloud.Open(faultConfig(23, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := done.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := done.Checkpoint(); err != cloud.ErrSessionClosed {
		t.Fatalf("checkpoint after close: err = %v, want ErrSessionClosed", err)
	}
}

// TestRetryBackoffRecoveryProperty drives a flaky single-machine fleet
// and checks the retry policy's promises against the event stream:
// per-job attempts stay within MaxAttempts, every announced backoff
// respects the cap, the per-user retry budget holds, and the extended
// conservation laws (enqueue ≡ start+cancel, start ≡ done+error+retry,
// retry ≡ requeue) balance exactly.
func TestRetryBackoffRecoveryProperty(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		cfg := quietConfig(seed, "ibmq_rome")
		cfg.Faults = &fault.Profile{TransientErrorRate: 0.45}
		policy := &cloud.RetryPolicy{
			MaxAttempts: 3,
			BaseBackoff: 5 * time.Minute,
			MaxBackoff:  20 * time.Minute,
			JitterFrac:  0.4,
			// All study jobs below share one user, so the budget is a
			// hard global cap in this scenario.
			BudgetPerUser: 12,
		}
		cfg.Retry = policy
		sess, err := cloud.Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		events, err := sess.Observe(cloud.EventFilter{})
		if err != nil {
			t.Fatal(err)
		}
		base := sessWindow.start.Add(24 * time.Hour)
		const n = 160
		for i := 0; i < n; i++ {
			s := quietSpec(i, "ibmq_rome", base.Add(time.Duration(i)*4*time.Hour))
			s.User = "u-budget"
			if _, err := sess.SubmitRetried(s, 0); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := sess.Run(); err != nil {
			t.Fatal(err)
		}
		counts := make(map[cloud.EventKind]int)
		attempts := make(map[*cloud.JobHandle]int)
		maxDelay := time.Duration(float64(policy.MaxBackoff))
		for ev := range events {
			counts[ev.Kind]++
			switch ev.Kind {
			case cloud.EventRetry:
				if ev.Handle != nil {
					attempts[ev.Handle]++
				}
				delay := ev.NextAttemptAt.Sub(ev.Time)
				if delay <= 0 || delay > maxDelay+time.Second {
					t.Fatalf("seed %d: retry backoff %v violates (0, %v]", seed, delay, maxDelay)
				}
				if ev.Attempt < 1 || ev.Attempt >= policy.MaxAttempts {
					t.Fatalf("seed %d: retry announced attempt %d outside [1, %d)", seed, ev.Attempt, policy.MaxAttempts)
				}
			case cloud.EventStart:
				if ev.Attempt >= policy.MaxAttempts {
					t.Fatalf("seed %d: start attempt %d exceeds budget %d", seed, ev.Attempt, policy.MaxAttempts)
				}
			}
		}
		if counts[cloud.EventRetry] == 0 {
			t.Fatalf("seed %d: flaky fleet produced no retries; scenario too tame to test anything", seed)
		}
		for h, k := range attempts {
			if k > policy.MaxAttempts-1 {
				t.Fatalf("seed %d: job %s retried %d times, budget is %d attempts total",
					seed, h.Spec().User, k, policy.MaxAttempts)
			}
		}
		if counts[cloud.EventRetry] > policy.BudgetPerUser {
			t.Fatalf("seed %d: %d retries charged to one user, budget is %d",
				seed, counts[cloud.EventRetry], policy.BudgetPerUser)
		}
		if counts[cloud.EventRequeue] != counts[cloud.EventRetry] {
			t.Fatalf("seed %d: retry ≡ requeue broken: %d retries, %d requeues",
				seed, counts[cloud.EventRetry], counts[cloud.EventRequeue])
		}
		if got, want := counts[cloud.EventEnqueue], counts[cloud.EventStart]+counts[cloud.EventCancel]; got != want {
			t.Fatalf("seed %d: enqueue ≡ start+cancel broken: %d vs %d", seed, got, want)
		}
		if got, want := counts[cloud.EventStart], counts[cloud.EventDone]+counts[cloud.EventError]+counts[cloud.EventRetry]; got != want {
			t.Fatalf("seed %d: start ≡ done+error+retry broken: %d vs %d", seed, got, want)
		}
	}
}

// TestFaultOutageEventsConservation runs the full chaos profile with
// an observer attached and checks machine-down/up pairing plus the
// conservation laws under every fault mechanism at once.
func TestFaultOutageEventsConservation(t *testing.T) {
	cfg := faultConfig(31, 2)
	sess, err := cloud.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	events, err := sess.Observe(cloud.EventFilter{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range faultSpecs(31) {
		if _, err := sess.SubmitRetried(s, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	counts := make(map[cloud.EventKind]int)
	downs := make(map[string]int)
	ups := make(map[string]int)
	for ev := range events {
		counts[ev.Kind]++
		switch ev.Kind {
		case cloud.EventMachineDown:
			downs[ev.Machine]++
			if !ev.Downtime[1].After(ev.Downtime[0]) {
				t.Fatalf("empty outage window on %s", ev.Machine)
			}
		case cloud.EventMachineUp:
			ups[ev.Machine]++
		}
	}
	if counts[cloud.EventMachineDown] == 0 {
		t.Fatal("chaos profile produced no outages")
	}
	for m, d := range downs {
		if ups[m] != d {
			t.Fatalf("machine %s: %d downs vs %d ups (finalize must announce every boundary)", m, d, ups[m])
		}
	}
	if got, want := counts[cloud.EventEnqueue], counts[cloud.EventStart]+counts[cloud.EventCancel]; got != want {
		t.Fatalf("enqueue ≡ start+cancel broken under chaos: %d vs %d", got, want)
	}
	if got, want := counts[cloud.EventStart], counts[cloud.EventDone]+counts[cloud.EventError]+counts[cloud.EventRetry]; got != want {
		t.Fatalf("start ≡ done+error+retry broken under chaos: %d vs %d", got, want)
	}
	if counts[cloud.EventRequeue] != counts[cloud.EventRetry] {
		t.Fatalf("retry ≡ requeue broken under chaos: %d vs %d", counts[cloud.EventRetry], counts[cloud.EventRequeue])
	}
}

// TestSessionCloseHardened pins the close-twice and use-after-close
// semantics: sentinel errors everywhere, no panics on the cond-pumped
// observer buffers.
func TestSessionCloseHardened(t *testing.T) {
	sess, err := cloud.Open(quietConfig(2, "ibmq_rome"))
	if err != nil {
		t.Fatal(err)
	}
	events, err := sess.Observe(cloud.EventFilter{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := sess.Close(); err != cloud.ErrSessionClosed {
		t.Fatalf("second close: err = %v, want ErrSessionClosed", err)
	}
	if _, ok := <-events; ok {
		t.Fatal("observer channel should drain and close after Close")
	}
	if _, err := sess.Observe(cloud.EventFilter{}); err != cloud.ErrSessionClosed {
		t.Fatalf("observe after close: err = %v, want ErrSessionClosed", err)
	}
	if _, err := sess.Submit(quietSpec(0, "ibmq_rome", sessWindow.start)); err != cloud.ErrSessionClosed {
		t.Fatalf("submit after close: err = %v, want ErrSessionClosed", err)
	}
	if _, err := sess.Run(); err != cloud.ErrSessionClosed {
		t.Fatalf("run after close: err = %v, want ErrSessionClosed", err)
	}
}

// TestEventFilterEmptyVsNil pins the satellite fix: a nil Kinds slice
// subscribes to everything, an explicitly empty one to nothing.
func TestEventFilterEmptyVsNil(t *testing.T) {
	run := func(f cloud.EventFilter) int {
		sess, err := cloud.Open(quietConfig(3, "ibmq_rome"))
		if err != nil {
			t.Fatal(err)
		}
		events, err := sess.Observe(f)
		if err != nil {
			t.Fatal(err)
		}
		base := sessWindow.start.Add(24 * time.Hour)
		for i := 0; i < 10; i++ {
			if _, err := sess.Submit(quietSpec(i, "ibmq_rome", base.Add(time.Duration(i)*time.Hour))); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := sess.Run(); err != nil {
			t.Fatal(err)
		}
		n := 0
		for range events {
			n++
		}
		return n
	}
	if n := run(cloud.EventFilter{Kinds: nil}); n == 0 {
		t.Fatal("nil Kinds must subscribe to every kind")
	}
	if n := run(cloud.EventFilter{Kinds: []cloud.EventKind{}}); n != 0 {
		t.Fatalf("empty non-nil Kinds matched %d events, want none", n)
	}
	if n := run(cloud.EventFilter{Machines: []string{}}); n != 0 {
		t.Fatalf("empty non-nil Machines matched %d events, want none", n)
	}
}
