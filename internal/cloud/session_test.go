package cloud_test

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"sort"
	"testing"
	"time"

	"qcloud/internal/backend"
	"qcloud/internal/cloud"
	"qcloud/internal/trace"
	"qcloud/internal/workload"
)

func traceJSON(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func traceHash(t *testing.T, tr *trace.Trace) string {
	t.Helper()
	return fmt.Sprintf("%x", sha256.Sum256(traceJSON(t, tr)))
}

var sessWindow = struct{ start, end time.Time }{
	start: time.Date(2021, 2, 1, 0, 0, 0, 0, time.UTC),
	end:   time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC),
}

// sessMachines picks a three-machine sub-fleet (public + private).
func sessMachines() []*backend.Machine {
	var sel []*backend.Machine
	for _, m := range backend.Fleet() {
		switch m.Name {
		case "ibmq_athens", "ibmq_rome", "ibmq_toronto":
			sel = append(sel, m)
		}
	}
	return sel
}

// sessSpecs builds the hand-crafted spec stream the golden hash pins.
func sessSpecs() []*cloud.JobSpec {
	var specs []*cloud.JobSpec
	for i := 0; i < 120; i++ {
		s := &cloud.JobSpec{
			SubmitTime: sessWindow.start.Add(time.Duration(i)*7*time.Hour + time.Duration(i*i%97)*time.Minute),
			User:       fmt.Sprintf("u-%d", i%7),
			Machine:    []string{"ibmq_athens", "ibmq_rome", "ibmq_toronto"}[i%3],
			BatchSize:  1 + i%40, Shots: 1024 + 512*(i%3),
			CircuitName: "qft", Width: 3 + i%5,
			TotalDepth: 50 + i, TotalGateOps: 200 + i, CXTotal: 40 + i, MemSlots: 4,
		}
		if i%11 == 0 {
			s.PatienceSec = 1800
		}
		specs = append(specs, s)
	}
	return specs
}

// TestSimulateGoldenTraces pins Simulate's output to the exact bytes
// the pre-session batch simulator produced: the compatibility contract
// for the Session refactor. If either hash moves, the cloud model's
// behavior changed.
func TestSimulateGoldenTraces(t *testing.T) {
	specs := workload.Generate(workload.Config{Seed: 99, TotalJobs: 400, Start: sessWindow.start, End: sessWindow.end})
	tr, err := cloud.Simulate(cloud.Config{Seed: 99, Start: sessWindow.start, End: sessWindow.end}, specs)
	if err != nil {
		t.Fatal(err)
	}
	const goldenA = "d313aa85e8a4d5309966bbe0751b6612a3f56edac0c33988f9dcbc8f73fe0daa"
	if h := traceHash(t, tr); h != goldenA || len(tr.Jobs) != 407 {
		t.Fatalf("workload-trace fingerprint moved: %d jobs, hash %s (want 407 jobs, %s)", len(tr.Jobs), h, goldenA)
	}

	trB, err := cloud.Simulate(cloud.Config{Seed: 7, Start: sessWindow.start, End: sessWindow.end, Machines: sessMachines()}, sessSpecs())
	if err != nil {
		t.Fatal(err)
	}
	const goldenB = "be3b28371f9a46a44698badf9959a0494f655107110700e16581989681c93886"
	if h := traceHash(t, trB); h != goldenB || len(trB.Jobs) != 120 {
		t.Fatalf("spec-trace fingerprint moved: %d jobs, hash %s (want 120 jobs, %s)", len(trB.Jobs), h, goldenB)
	}
}

// TestSessionTraceBitIdentical is the determinism property test: the
// Session API — serial, on a 4-worker pool, and with jobs submitted
// mid-run in arrival order while the session advances between
// submissions — produces byte-identical trace JSON to the batch
// Simulate call.
func TestSessionTraceBitIdentical(t *testing.T) {
	cfg := cloud.Config{Seed: 7, Start: sessWindow.start, End: sessWindow.end, Machines: sessMachines()}
	want := func() []byte {
		tr, err := cloud.Simulate(cfg, sessSpecs())
		if err != nil {
			t.Fatal(err)
		}
		return traceJSON(t, tr)
	}()

	variants := []struct {
		name    string
		workers int
		midRun  bool
	}{
		{"serial", 1, false},
		{"workers-4", 4, false},
		{"mid-run-submits", 2, true},
	}
	for _, v := range variants {
		c := cfg
		c.Workers = v.workers
		sess, err := cloud.Open(c)
		if err != nil {
			t.Fatal(err)
		}
		specs := sessSpecs()
		if v.midRun {
			// Replay the same arrival order online: a third of the jobs
			// are known up-front, the rest arrive one by one with the
			// session advancing (and queues being observed) in between.
			sort.SliceStable(specs, func(i, j int) bool { return specs[i].SubmitTime.Before(specs[j].SubmitTime) })
			cut := len(specs) / 3
			for _, s := range specs[:cut] {
				if _, err := sess.Submit(s); err != nil {
					t.Fatal(err)
				}
			}
			for i, s := range specs[cut:] {
				sess.AdvanceTo(s.SubmitTime)
				if i%5 == 0 {
					if _, err := sess.QueueState(s.Machine); err != nil {
						t.Fatal(err)
					}
				}
				if _, err := sess.Submit(s); err != nil {
					t.Fatalf("mid-run submit %d: %v", i, err)
				}
				if i%9 == 0 {
					// Advance into the gap before the next arrival too,
					// exercising partial in-flight admissions.
					sess.AdvanceTo(s.SubmitTime.Add(30 * time.Minute))
				}
			}
		} else {
			for _, s := range specs {
				if _, err := sess.Submit(s); err != nil {
					t.Fatal(err)
				}
			}
		}
		tr, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}
		if got := traceJSON(t, tr); !bytes.Equal(got, want) {
			t.Fatalf("%s: session trace differs from batch Simulate", v.name)
		}
	}
}

// quietConfig silences the background population so session tests see
// only their own jobs.
func quietConfig(seed int64, machine string) cloud.Config {
	m, err := backend.FindMachine(backend.Fleet(), machine)
	if err != nil {
		panic(err)
	}
	return cloud.Config{
		Seed: seed, Start: sessWindow.start, End: sessWindow.end,
		Machines:   []*backend.Machine{m},
		Background: quietBackground(),
	}
}

func quietBackground() *cloud.BackgroundModel {
	bg := cloud.DefaultBackground()
	bg.PublicUtil, bg.PrivateUtil = 0, 0
	bg.RampFloor = 0
	return bg
}

func quietSpec(i int, machine string, at time.Time) *cloud.JobSpec {
	return &cloud.JobSpec{
		SubmitTime: at, User: fmt.Sprintf("s-%d", i), Machine: machine,
		BatchSize: 20, Shots: 4096, CircuitName: "qft4",
		Width: 4, TotalDepth: 400, TotalGateOps: 1200, CXTotal: 300, MemSlots: 4,
	}
}

func TestSubmitBehindFrontierRejected(t *testing.T) {
	sess, err := cloud.Open(quietConfig(3, "ibmq_rome"))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	at := sessWindow.start.Add(10 * 24 * time.Hour)
	sess.AdvanceTo(at)
	if _, err := sess.Submit(quietSpec(0, "ibmq_rome", at.Add(-time.Hour))); err == nil {
		t.Fatal("submit behind the frontier should fail")
	}
	// At the frontier itself is fine: the observation excludes it.
	if _, err := sess.Submit(quietSpec(1, "ibmq_rome", at)); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Submit(&cloud.JobSpec{Machine: "nope", SubmitTime: at, BatchSize: 1, Shots: 1}); err == nil {
		t.Fatal("unknown machine should fail")
	}
}

func TestSessionQueueStateLive(t *testing.T) {
	sess, err := cloud.Open(quietConfig(4, "ibmq_rome"))
	if err != nil {
		t.Fatal(err)
	}
	base := sessWindow.start.Add(24 * time.Hour)
	// A burst of five long jobs one second apart: the first occupies
	// the server well past the probe instant, the rest queue behind it.
	for i := 0; i < 5; i++ {
		s := quietSpec(i, "ibmq_rome", base.Add(time.Duration(i)*time.Second))
		s.BatchSize, s.Shots, s.TotalDepth = 900, 8192, 18000
		if _, err := sess.Submit(s); err != nil {
			t.Fatal(err)
		}
	}
	probe := base.Add(time.Minute)
	sess.AdvanceTo(probe)
	snap, err := sess.QueueState("ibmq_rome")
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Time.Equal(probe) {
		t.Fatalf("snapshot frontier = %v, want %v", snap.Time, probe)
	}
	if snap.Pending != 4 || snap.PendingStudy != 4 {
		t.Fatalf("pending = %d (study %d), want 4 queued behind the running job", snap.Pending, snap.PendingStudy)
	}
	if !snap.RunningUntil.After(probe) {
		t.Fatalf("running job should extend past the frontier, got %v", snap.RunningUntil)
	}
	if snap.BacklogSeconds <= 0 || snap.EstimatedWaitSeconds() <= snap.BacklogSeconds {
		t.Fatalf("estimated wait %v should exceed backlog %v (in-flight remainder)", snap.EstimatedWaitSeconds(), snap.BacklogSeconds)
	}
	if snap.MeanExecSeconds <= 0 {
		t.Fatal("mean service time missing from snapshot")
	}
	// Snapshots are read-only: probing again without advancing moves nothing.
	again, err := sess.QueueState("ibmq_rome")
	if err != nil {
		t.Fatal(err)
	}
	if again.Pending != 4 {
		t.Fatal("snapshot should be stable when the session has not advanced")
	}
	if _, err := sess.QueueState("nope"); err == nil {
		t.Fatal("unknown machine should fail")
	}
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionCancel(t *testing.T) {
	sess, err := cloud.Open(quietConfig(5, "ibmq_rome"))
	if err != nil {
		t.Fatal(err)
	}
	base := sessWindow.start.Add(24 * time.Hour)
	var handles []*cloud.JobHandle
	for i := 0; i < 3; i++ {
		s := quietSpec(i, "ibmq_rome", base.Add(time.Duration(i)*time.Minute))
		if i == 0 {
			// The first job holds the server for a long while, so the
			// third is genuinely queued when it gets cancelled.
			s.BatchSize, s.Shots, s.TotalDepth = 900, 8192, 18000
		}
		h, err := sess.Submit(s)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	// Cancel the second job before the session reaches it at all.
	if err := sess.Cancel(handles[1]); err != nil {
		t.Fatal(err)
	}
	if err := sess.Cancel(handles[1]); err == nil {
		t.Fatal("double cancel should fail")
	}
	// A job cancelled while already queued stops counting as load.
	sess.AdvanceTo(base.Add(3 * time.Minute)) // first running, third queued
	if err := sess.Cancel(handles[2]); err != nil {
		t.Fatal(err)
	}
	snap, err := sess.QueueState("ibmq_rome")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Pending != 0 || snap.PendingStudy != 0 || snap.BacklogSeconds != 0 {
		t.Fatalf("withdrawn job still visible as load: %+v", snap)
	}
	// Let the remaining job finish, then cancelling is an error.
	sess.AdvanceTo(base.Add(10 * 24 * time.Hour))
	if err := sess.Cancel(handles[0]); err == nil {
		t.Fatal("cancelling a finished job should fail")
	}
	tr, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 3 {
		t.Fatalf("jobs = %d, want 3", len(tr.Jobs))
	}
	byUser := make(map[string]*trace.Job)
	for _, j := range tr.Jobs {
		byUser[j.User] = j
	}
	for _, u := range []string{"s-1", "s-2"} {
		if j := byUser[u]; j.Status != trace.StatusCancelled || j.ExecSeconds() != 0 {
			t.Fatalf("cancelled job %s should be CANCELLED with no exec time: %+v", u, j)
		}
	}
	if byUser["s-0"].Status == trace.StatusCancelled {
		t.Fatal("job s-0 should have run")
	}
}

func TestSessionObserveEvents(t *testing.T) {
	cfg := quietConfig(6, "ibmq_rome")
	sess, err := cloud.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	events, err := sess.Observe(cloud.EventFilter{StudyOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	base := sessWindow.start.Add(24 * time.Hour)
	for i := 0; i < n; i++ {
		if _, err := sess.Submit(quietSpec(i, "ibmq_rome", base.Add(time.Duration(i)*3*time.Hour))); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[cloud.EventKind]int)
	for ev := range events { // closes after Run drains the backlog
		if ev.Machine != "ibmq_rome" {
			t.Fatalf("unexpected machine %q in filtered stream", ev.Machine)
		}
		counts[ev.Kind]++
		switch ev.Kind {
		case cloud.EventEnqueue, cloud.EventStart:
			if ev.Handle == nil {
				t.Fatalf("study %s event without a handle", ev.Kind)
			}
		case cloud.EventDone, cloud.EventError, cloud.EventCancel:
			if ev.Job == nil {
				t.Fatalf("terminal %s event without a job record", ev.Kind)
			}
		}
	}
	if counts[cloud.EventEnqueue] != n {
		t.Fatalf("enqueue events = %d, want %d", counts[cloud.EventEnqueue], n)
	}
	terminal := counts[cloud.EventDone] + counts[cloud.EventError] + counts[cloud.EventCancel]
	if terminal != len(tr.Jobs) {
		t.Fatalf("terminal events = %d, want one per trace job (%d)", terminal, len(tr.Jobs))
	}
	if counts[cloud.EventStart] != counts[cloud.EventDone]+counts[cloud.EventError] {
		t.Fatalf("start events = %d, want one per executed job (%d)",
			counts[cloud.EventStart], counts[cloud.EventDone]+counts[cloud.EventError])
	}
	// Observing a closed session reports the sentinel instead of
	// silently subscribing to nothing.
	if _, err := sess.Observe(cloud.EventFilter{}); err != cloud.ErrSessionClosed {
		t.Fatalf("observe after close: err = %v, want ErrSessionClosed", err)
	}
}

// TestSessionObserveBackgroundStream checks the unfiltered stream
// carries the modeled population too: on a busy public machine the
// background enqueue/terminal traffic dwarfs the study jobs.
func TestSessionObserveBackgroundStream(t *testing.T) {
	m, err := backend.FindMachine(backend.Fleet(), "ibmq_athens")
	if err != nil {
		t.Fatal(err)
	}
	cfg := cloud.Config{
		Seed: 8, Start: sessWindow.start, End: sessWindow.start.AddDate(0, 0, 14),
		Machines: []*backend.Machine{m},
	}
	sess, err := cloud.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	events, err := sess.Observe(cloud.EventFilter{Kinds: []cloud.EventKind{cloud.EventEnqueue, cloud.EventPendingSample}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	bg, samples := 0, 0
	for ev := range events {
		switch {
		case ev.Kind == cloud.EventPendingSample:
			samples++
		case ev.Background:
			bg++
		}
	}
	if bg < 100 {
		t.Fatalf("background enqueue events = %d, want a busy public stream", bg)
	}
	if samples < 20 {
		t.Fatalf("pending-sample events = %d, want the 6h cadence", samples)
	}
}

// TestNoErrorsFleet covers the ErrorRate sentinel: an explicitly
// perfect fleet produces no ERROR records, while the zero value still
// means "default rate".
func TestNoErrorsFleet(t *testing.T) {
	cfg := quietConfig(9, "ibmq_rome")
	cfg.NoErrors = true
	cfg.ErrorRate = 0.9 // NoErrors wins over any configured rate
	var specs []*cloud.JobSpec
	base := sessWindow.start.Add(24 * time.Hour)
	for i := 0; i < 200; i++ {
		specs = append(specs, quietSpec(i, "ibmq_rome", base.Add(time.Duration(i)*90*time.Minute)))
	}
	tr, err := cloud.Simulate(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	for _, j := range tr.Jobs {
		if j.Status == trace.StatusError {
			t.Fatalf("NoErrors fleet produced an ERROR job: %+v", j)
		}
		if j.Status == trace.StatusDone {
			done++
		}
	}
	if done < 150 {
		t.Fatalf("done jobs = %d, want most of the 200 to execute", done)
	}
}
