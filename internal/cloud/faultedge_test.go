package cloud

import (
	"testing"
	"time"

	"qcloud/internal/backend"
	"qcloud/internal/trace"
)

// Integration-level downtime edge cases: these drive a real session but
// plant synthetic downtime calendars on the machine, which only an
// in-package test can do.

func edgeConfig(seed int64) Config {
	m, err := backend.FindMachine(backend.Fleet(), "ibmq_rome")
	if err != nil {
		panic(err)
	}
	bg := DefaultBackground()
	bg.PublicUtil, bg.PrivateUtil = 0, 0
	bg.RampFloor = 0
	return Config{
		Seed:       seed,
		Start:      time.Date(2021, 2, 1, 0, 0, 0, 0, time.UTC),
		End:        time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC),
		Machines:   []*backend.Machine{m},
		Background: bg,
		NoErrors:   true,
	}
}

func edgeSpec(i int, at time.Time) *JobSpec {
	return &JobSpec{
		SubmitTime: at, User: "edge", Machine: "ibmq_rome",
		BatchSize: 20, Shots: 4096, CircuitName: "qft4",
		Width: 4, TotalDepth: 400, TotalGateOps: 1200, CXTotal: 300, MemSlots: 4,
	}
}

// TestDowntimeFaultWindowsAtExactJobStart: back-to-back downtime
// windows whose first edge falls exactly on the instant a job would
// start must displace the start across both windows — whether the
// windows are planned maintenance or unplanned fault outages.
func TestDowntimeFaultWindowsAtExactJobStart(t *testing.T) {
	for _, asFault := range []bool{false, true} {
		cfg := edgeConfig(7)
		sess, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ms := sess.byName["ibmq_rome"]
		submitAt := cfg.Start.Add(5 * 24 * time.Hour)
		s := ms.toSec(submitAt)
		// Two abutting windows, the first beginning exactly at the
		// job's start instant (idle quiet machine: start == submit).
		ms.downtimes = []dtWin{
			{start: s, end: s + 600, fault: asFault},
			{start: s + 600, end: s + 1800, fault: asFault},
		}
		if _, err := sess.Submit(edgeSpec(0, submitAt)); err != nil {
			t.Fatal(err)
		}
		tr, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(tr.Jobs) != 1 {
			t.Fatalf("fault=%v: got %d jobs, want 1", asFault, len(tr.Jobs))
		}
		j := tr.Jobs[0]
		if j.Status != trace.StatusDone {
			t.Fatalf("fault=%v: status %v, want DONE", asFault, j.Status)
		}
		want := ms.toTime(s + 1800)
		if !j.StartTime.Equal(want) {
			t.Fatalf("fault=%v: start %v, want %v (displaced across both windows)",
				asFault, j.StartTime, want)
		}
	}
}

// TestCancelInsideDowntimeWindow: an explicit Cancel whose instant
// falls inside a downtime window records the cancellation at that
// instant. Cancellation is a queue operation, not an execution — the
// machine being down must not displace it to the window's end.
func TestCancelInsideDowntimeWindow(t *testing.T) {
	cfg := edgeConfig(9)
	sess, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ms := sess.byName["ibmq_rome"]
	base := cfg.Start.Add(5 * 24 * time.Hour)
	s := ms.toSec(base)

	// Job A keeps the server busy well past the cancel instant, so B
	// stays waiting in the queue when the Cancel lands.
	a := edgeSpec(0, base)
	a.BatchSize, a.Shots = 300, 8192
	if _, err := sess.Submit(a); err != nil {
		t.Fatal(err)
	}
	b := edgeSpec(1, base.Add(time.Minute))
	hb, err := sess.Submit(b)
	if err != nil {
		t.Fatal(err)
	}
	// A downtime window that is underway at the cancel instant but
	// starts after A (so A's start is not displaced).
	ms.downtimes = []dtWin{{start: s + 90, end: s + 7200}}

	cancelAt := base.Add(2 * time.Minute)
	sess.AdvanceTo(cancelAt)
	if st, _ := sess.JobStatus(hb); st != JobStateQueued {
		t.Fatalf("B should be queued behind A at the cancel instant, state = %v", st)
	}
	if err := sess.Cancel(hb); err != nil {
		t.Fatal(err)
	}
	tr, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	var rec *trace.Job
	for _, j := range tr.Jobs {
		if j.SubmitTime.Equal(b.SubmitTime) {
			rec = j
		}
	}
	if rec == nil {
		t.Fatal("cancelled job missing from the trace")
	}
	if rec.Status != trace.StatusCancelled {
		t.Fatalf("status %v, want CANCELLED", rec.Status)
	}
	if !rec.EndTime.Equal(cancelAt) {
		t.Fatalf("cancellation recorded at %v, want the cancel instant %v (inside the window, undisplaced)",
			rec.EndTime, cancelAt)
	}
}

// TestCancelBeforeAdmissionInsideDowntime: cancelling a spec the
// machine has not even admitted yet, at an instant covered by a
// downtime window, records immediately at that instant.
func TestCancelBeforeAdmissionInsideDowntime(t *testing.T) {
	cfg := edgeConfig(11)
	sess, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ms := sess.byName["ibmq_rome"]
	submitAt := cfg.Start.Add(5 * 24 * time.Hour)
	s := ms.toSec(submitAt)
	ms.downtimes = []dtWin{{start: s - 600, end: s + 7200, fault: true}}
	h, err := sess.Submit(edgeSpec(0, submitAt))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Cancel(h); err != nil {
		t.Fatal(err)
	}
	if st, _ := sess.JobStatus(h); st != JobStateFinished {
		t.Fatalf("cancelled-before-admission job state = %v, want finished", st)
	}
	tr, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 1 || tr.Jobs[0].Status != trace.StatusCancelled {
		t.Fatalf("want exactly one CANCELLED record, got %+v", tr.Jobs)
	}
	if !tr.Jobs[0].EndTime.Equal(submitAt) {
		t.Fatalf("cancellation at %v, want %v (submit instant, inside the outage)",
			tr.Jobs[0].EndTime, submitAt)
	}
}
