package cloud_test

import (
	"fmt"
	"testing"
	"time"

	"qcloud/internal/cloud"
)

// evKey flattens the order-relevant event fields for sequence
// comparison (Job/Handle are pointers and excluded).
func evKey(ev cloud.Event) string {
	return fmt.Sprintf("%s|%s|%s|%v|%d|%d", ev.Kind, ev.Machine, ev.Time.Format(time.RFC3339Nano), ev.Background, ev.Pending, ev.Attempt)
}

// runWithObserver opens a session, attaches events via attach, submits
// the standard spec stream and runs it, returning the collected event
// keys and the trace hash.
func runWithObserver(t *testing.T, attach func(s *cloud.Session) (<-chan cloud.Event, error)) ([]string, string) {
	t.Helper()
	cfg := cloud.Config{Seed: 7, Start: sessWindow.start, End: sessWindow.end,
		Machines: sessMachines(), Workers: 1}
	s, err := cloud.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ch <-chan cloud.Event
	if attach != nil {
		if ch, err = attach(s); err != nil {
			t.Fatal(err)
		}
	}
	var keys []string
	done := make(chan struct{})
	if ch != nil {
		go func() {
			defer close(done)
			for ev := range ch {
				keys = append(keys, evKey(ev))
			}
		}()
	} else {
		close(done)
	}
	for _, sp := range sessSpecs() {
		if _, err := s.Submit(sp); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	<-done
	return keys, traceHash(t, tr)
}

// athensFilter keeps the comparison deterministic: events from one
// machine arrive in its advance-loop order, while cross-machine
// interleaving is unordered by design.
func athensFilter() cloud.EventFilter {
	return cloud.EventFilter{Machines: []string{"ibmq_athens"}}
}

// TestObserveBufferedBlockLosesNothing: a tiny BlockOnFull buffer
// backpressures the simulation instead of dropping, so the delivered
// sequence is exactly the unbounded observer's — and the trace is
// untouched by the stalls.
func TestObserveBufferedBlockLosesNothing(t *testing.T) {
	wantKeys, wantHash := runWithObserver(t, func(s *cloud.Session) (<-chan cloud.Event, error) {
		return s.Observe(athensFilter())
	})
	var bo *cloud.BufferedObserver
	gotKeys, gotHash := runWithObserver(t, func(s *cloud.Session) (<-chan cloud.Event, error) {
		var err error
		bo, err = s.ObserveBuffered(athensFilter(), 3, cloud.BlockOnFull)
		if err != nil {
			return nil, err
		}
		return bo.Events(), nil
	})
	if gotHash != wantHash {
		t.Fatal("trace hash moved under a blocking bounded observer")
	}
	if bo.Dropped() != 0 {
		t.Fatalf("BlockOnFull dropped %d events", bo.Dropped())
	}
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("bounded observer saw %d events, unbounded saw %d", len(gotKeys), len(wantKeys))
	}
	for i := range gotKeys {
		if gotKeys[i] != wantKeys[i] {
			t.Fatalf("event %d differs:\n got %s\nwant %s", i, gotKeys[i], wantKeys[i])
		}
	}
}

// TestObserveBufferedDropOldestBounds: with no consumer attached until
// the run ends, a DropOldest observer keeps its backlog bounded by
// shedding oldest events; delivered + dropped accounts for every
// matched event, and the simulation never stalls.
func TestObserveBufferedDropOldestBounds(t *testing.T) {
	wantKeys, wantHash := runWithObserver(t, func(s *cloud.Session) (<-chan cloud.Event, error) {
		return s.Observe(athensFilter())
	})

	cfg := cloud.Config{Seed: 7, Start: sessWindow.start, End: sessWindow.end,
		Machines: sessMachines(), Workers: 1}
	s, err := cloud.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bo, err := s.ObserveBuffered(athensFilter(), 16, cloud.DropOldest)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range sessSpecs() {
		if _, err := s.Submit(sp); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if traceHash(t, tr) != wantHash {
		t.Fatal("trace hash moved under a dropping bounded observer")
	}
	var got []string
	for ev := range bo.Events() {
		got = append(got, evKey(ev))
	}
	if bo.Dropped() == 0 {
		t.Fatal("expected drops with an unconsumed 16-event buffer")
	}
	if int64(len(got))+bo.Dropped() != int64(len(wantKeys)) {
		t.Fatalf("delivered %d + dropped %d != matched %d", len(got), bo.Dropped(), len(wantKeys))
	}
	// What survives is a subsequence of the full stream — drops shed
	// events, never reorder or corrupt them.
	i := 0
	for _, k := range got {
		for i < len(wantKeys) && wantKeys[i] != k {
			i++
		}
		if i == len(wantKeys) {
			t.Fatalf("delivered event not in (or out of order with) the full stream: %s", k)
		}
		i++
	}
}

// TestObserveBufferedRejectsBadBound pins the argument contract.
func TestObserveBufferedRejectsBadBound(t *testing.T) {
	cfg := cloud.Config{Seed: 7, Start: sessWindow.start, End: sessWindow.end,
		Machines: sessMachines()}
	s, err := cloud.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.ObserveBuffered(cloud.EventFilter{}, 0, cloud.BlockOnFull); err == nil {
		t.Fatal("n=0 accepted")
	}
}
