package cloud

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"qcloud/internal/backend"
	"qcloud/internal/fault"
	"qcloud/internal/stats"
	"qcloud/internal/trace"
)

// countingSource wraps the machine RNG source and counts state steps.
// Every Int63 or Uint64 call advances the underlying generator exactly
// once, so the count alone pins the RNG state: a restored machine
// replays construction (deterministic) and then fast-forwards the
// source by the checkpointed draw count.
type countingSource struct {
	src   rand.Source64
	draws uint64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (c *countingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

func (c *countingSource) Seed(s int64) { c.src.Seed(s) }

// dtWin is one downtime window: a planned maintenance window from the
// vendor calendar, or (fault=true) an unplanned outage from the fault
// injector. Both displace starts identically; only planned windows are
// visible to schedulers ahead of time.
type dtWin struct {
	start, end float64
	fault      bool
}

// pendingRetry is a transiently-failed job waiting out its backoff: a
// third arrival source (after the background stream and the study spec
// stream) that re-enters the queue through the same enqueue path.
type pendingRetry struct {
	spec     *JobSpec // nil for background jobs
	at       float64  // requeue instant (failure time + backoff)
	execSec  float64
	patience float64
	user     string
	id       int64
	attempt  int
}

// machineSim is one machine's single-server fair-share queue as an
// explicit, steppable state machine: the queue heap, background
// arrival stream, downtime cursor, fair-share accounting, and pending
// study submissions that the old run-to-completion loop kept in
// closures. advanceTo moves it forward event by event, which is what
// lets a Session accept submissions and serve queue snapshots mid-run
// while staying bit-identical to the batch simulation.
//
// Determinism contract: every action advanceTo(t) takes has effects
// strictly before t, and no arrival at or after t is consumed. A spec
// submitted with SubmitTime >= the frontier therefore lands in exactly
// the position — and consumes RNG draws in exactly the order — it
// would have occupied had it been present from the start.
type machineSim struct {
	cfg    Config
	m      *backend.Machine
	sess   *Session
	r      *rand.Rand
	rsrc   *countingSource // r's source; its draw count pins the RNG state
	mstats *trace.MachineStats
	jobs   []*trace.Job

	simStart time.Time
	online   time.Time
	dead     bool // never online within the window: records nothing
	endSec   float64

	bg        *backgroundStream
	downtimes []dtWin
	dtIdx     int

	// Fault-injection state: unplanned outage windows (also merged
	// into downtimes), with the announcement cursor that emits
	// machine-down/up events as the frontier crosses them; failure
	// bursts and staleness waves with their own monotone cursors; and
	// the submit-fault sequence number.
	outages   []fault.Window
	annIdx    int
	annPhase  int // 0 = down not yet announced, 1 = up pending
	bursts    []fault.Window
	burstIdx  int
	staleWins []fault.Window
	staleIdx  int
	submitSeq int64

	// Retry state: the effective policy (nil = disabled), pending
	// retries ordered by requeue instant, and per-user budget spent.
	retry      *RetryPolicy
	retries    []pendingRetry
	retrySpent map[string]int

	// Fair-share usage accounting, exponentially decayed.
	usage     map[string]*float64
	lastDecay map[string]float64

	queue      jobHeap
	seq        int64
	waitRatios []float64

	// specs holds not-yet-admitted study submissions sorted by
	// SubmitTime (ties keep submission order); specIdx is the admitted
	// prefix.
	specs   []*JobSpec
	specIdx int

	sampleEvery float64
	nextSample  float64

	busyUntil float64

	// frontier is the sup of consumed arrival times; when
	// frontierInclusive, arrivals at exactly frontier are consumed too.
	// Submissions behind the frontier are rejected: the machine's
	// history up to it is already committed.
	frontier          float64
	frontierInclusive bool

	// A started job whose completion horizon has not been fully
	// admitted yet: the in-flight half of the legacy loop's busy step.
	inStep             bool
	stepEndsAt         float64
	admittedDuringStep int

	finished bool

	handles      map[*JobSpec]*JobHandle
	cancelledAt  map[*JobSpec]float64
	cancelReason map[*JobSpec]CancelReason
	recorded     map[*JobSpec]bool

	// idx is the machine's fleet position (selects its journal stream);
	// jbuf is the reused journal-frame encode buffer.
	idx  int
	jbuf []byte
}

func newMachineSim(cfg Config, m *backend.Machine, sess *Session) *machineSim {
	src := newCountingSource(cfg.Seed*7919 + m.Seed)
	ms := &machineSim{
		cfg:          cfg,
		m:            m,
		sess:         sess,
		r:            rand.New(src),
		rsrc:         src,
		mstats:       &trace.MachineStats{Name: m.Name, Qubits: m.NumQubits(), Public: m.Public},
		simStart:     cfg.Start,
		usage:        make(map[string]*float64),
		lastDecay:    make(map[string]float64),
		handles:      make(map[*JobSpec]*JobHandle),
		cancelledAt:  make(map[*JobSpec]float64),
		cancelReason: make(map[*JobSpec]CancelReason),
		recorded:     make(map[*JobSpec]bool),
		frontier:     math.Inf(-1),
	}
	online := m.Online
	if online.Before(cfg.Start) {
		online = cfg.Start
	}
	offline := cfg.End
	if !m.Retired.IsZero() && m.Retired.Before(offline) {
		offline = m.Retired
	}
	ms.online = online
	if !online.Before(offline) {
		ms.dead = true
		ms.finished = true
		return ms
	}
	ms.bg = newBackgroundStream(cfg.Background, m, ms.r,
		ms.toSec(online), ms.toSec(offline),
		ms.toSec(m.Online), ms.toSec(backend.StudyEnd))
	for _, w := range genDowntimes(ms.r, ms.toSec(online), ms.toSec(offline)) {
		ms.downtimes = append(ms.downtimes, dtWin{start: w[0], end: w[1]})
	}
	ms.endSec = ms.toSec(offline)
	if cfg.Faults != nil {
		// Unplanned outages join the displacement calendar (tagged so
		// snapshots keep them invisible until begun); bursts and stale
		// waves only modulate error rates. All three are pure functions
		// of (seed, machine, epoch), independent of ms.r.
		ms.outages = cfg.Faults.Outages(cfg.Seed, m.Seed, ms.toSec(online), ms.endSec)
		for _, w := range ms.outages {
			ms.downtimes = append(ms.downtimes, dtWin{start: w.Start, end: w.End, fault: true})
		}
		sort.Slice(ms.downtimes, func(i, j int) bool { return ms.downtimes[i].start < ms.downtimes[j].start })
		ms.bursts = cfg.Faults.Bursts(cfg.Seed, m.Seed, ms.toSec(online), ms.endSec)
		ms.staleWins = cfg.Faults.StaleWaves(cfg.Seed, m.Seed, ms.toSec(online), ms.endSec)
	}
	if cfg.Retry != nil {
		ms.retry = cfg.Retry.withDefaults()
		ms.retrySpent = make(map[string]int)
	}
	ms.sampleEvery = cfg.PendingSampleEvery.Seconds()
	ms.nextSample = ms.toSec(online) + ms.sampleEvery
	ms.busyUntil = ms.toSec(online)
	return ms
}

func (ms *machineSim) toSec(t time.Time) float64 { return t.Sub(ms.simStart).Seconds() }
func (ms *machineSim) toTime(s float64) time.Time {
	return ms.simStart.Add(time.Duration(s * float64(time.Second)))
}

// submit inserts a study spec into the pending stream. It fails when
// the spec's submit instant lies behind the frontier: that history has
// already been observed (and its RNG draws consumed), so admitting the
// job late would fork the trace.
func (ms *machineSim) submit(spec *JobSpec) (*JobHandle, error) {
	sec := ms.toSec(spec.SubmitTime)
	if !ms.dead && (sec < ms.frontier || (sec == ms.frontier && ms.frontierInclusive)) {
		return nil, fmt.Errorf("cloud: submit to %s at %s is behind the machine frontier %s",
			ms.m.Name, spec.SubmitTime.Format(time.RFC3339), ms.toTime(ms.frontier).Format(time.RFC3339))
	}
	if f := ms.cfg.Faults; f != nil && f.SubmitErrorRate > 0 && !ms.dead {
		// Transient submission failure: the cloud API rejects the call
		// and the client retries. The decision hashes the per-machine
		// attempt counter, so a resubmission is a fresh draw.
		ms.submitSeq++
		if fault.Decide(f.SubmitErrorRate, ms.cfg.Seed, ms.m.Seed, ms.submitSeq, 7) {
			return nil, fmt.Errorf("%w: %s rejected attempt %d", ErrTransientSubmit, ms.m.Name, ms.submitSeq)
		}
	}
	return ms.insertSpec(spec), nil
}

// insertSpec places an accepted spec into the pending stream keeping
// SubmitTime order; equal times go after existing entries, so replaying
// the same arrival order reproduces the trace.
func (ms *machineSim) insertSpec(spec *JobSpec) *JobHandle {
	rest := ms.specs[ms.specIdx:]
	i := ms.specIdx + sort.Search(len(rest), func(k int) bool {
		return rest[k].SubmitTime.After(spec.SubmitTime)
	})
	ms.specs = append(ms.specs, nil)
	copy(ms.specs[i+1:], ms.specs[i:])
	ms.specs[i] = spec
	h := &JobHandle{spec: spec, machine: ms.m.Name, sess: ms.sess}
	ms.handles[spec] = h
	return h
}

// resubmitJournaled replays an accepted submission from the journal's
// input log: no fault decision is re-taken (the recorded submit-fault
// sequence is restored instead), so the replayed admission stream is
// exactly the one the crashed run saw.
func (ms *machineSim) resubmitJournaled(spec *JobSpec, submitSeq int64) error {
	sec := ms.toSec(spec.SubmitTime)
	if !ms.dead && (sec < ms.frontier || (sec == ms.frontier && ms.frontierInclusive)) {
		return fmt.Errorf("cloud: journal replay: submit to %s at %s is behind the restored frontier %s (journal and checkpoint disagree)",
			ms.m.Name, spec.SubmitTime.Format(time.RFC3339), ms.toTime(ms.frontier).Format(time.RFC3339))
	}
	if submitSeq > ms.submitSeq {
		ms.submitSeq = submitSeq
	}
	ms.insertSpec(spec)
	return nil
}

// cancel withdraws a study job that has not finished. Jobs still
// waiting (admitted or not) are recorded as CANCELLED at the cancel
// instant; jobs already recorded report an error. The reason rides on
// the terminal event.
func (ms *machineSim) cancel(spec *JobSpec, atSec float64, reason CancelReason) error {
	if ms.dead {
		return nil // never-online machines record nothing
	}
	if ms.recorded[spec] {
		return fmt.Errorf("cloud: job on %s already finished", ms.m.Name)
	}
	if _, ok := ms.cancelledAt[spec]; ok {
		return fmt.Errorf("cloud: job on %s already cancelled", ms.m.Name)
	}
	for i := ms.specIdx; i < len(ms.specs); i++ {
		if ms.specs[i] == spec {
			// Not yet admitted: drop it from the pending stream and
			// record the cancellation immediately.
			ms.specs = append(ms.specs[:i], ms.specs[i+1:]...)
			at := ms.toTime(atSec)
			if at.Before(spec.SubmitTime) {
				at = spec.SubmitTime
			}
			ms.cancelReason[spec] = reason
			ms.recordSpecCancelled(spec, at)
			return nil
		}
	}
	// Admitted and waiting in the queue: mark it; the record lands when
	// the server reaches it (the same path patience cancellations take).
	ms.cancelledAt[spec] = atSec
	ms.cancelReason[spec] = reason
	return nil
}

// chargedUsage returns the user's decayed fair-share usage accumulator.
func (ms *machineSim) chargedUsage(user string, now float64) *float64 {
	u, ok := ms.usage[user]
	if !ok {
		v := 0.0
		u = &v
		ms.usage[user] = u
		ms.lastDecay[user] = now
	} else {
		dt := now - ms.lastDecay[user]
		if dt > 0 {
			*u *= decayFactor(dt)
			ms.lastDecay[user] = now
		}
	}
	return u
}

func (ms *machineSim) enqueue(spec *JobSpec, submit, execSec, patience float64, user string) {
	u := ms.chargedUsage(user, submit)
	ms.seq++
	ms.push(&queuedJob{
		spec: spec, submit: submit, execSec: execSec, patience: patience,
		priority: submit + fairSharePenalty*(*u), seq: ms.seq, userUsage: u,
		user: user, id: ms.seq, pendingAtSubmit: len(ms.queue),
	})
}

// requeue re-enters a transiently-failed job after its backoff: same
// fair-share scoring as a fresh arrival (a retry queues like anyone
// else — no priority boost), with the original job identity carried
// through. Emits requeue then enqueue, keeping retry ≡ requeue and
// enqueue ≡ start+cancel conservation.
func (ms *machineSim) requeue(rt pendingRetry) {
	u := ms.chargedUsage(rt.user, rt.at)
	ms.seq++
	q := &queuedJob{
		spec: rt.spec, submit: rt.at, execSec: rt.execSec, patience: rt.patience,
		priority: rt.at + fairSharePenalty*(*u), seq: ms.seq, userUsage: u,
		user: rt.user, id: rt.id, attempt: rt.attempt,
		pendingAtSubmit: len(ms.queue),
	}
	if ms.observed() {
		ms.emit(Event{
			Kind: EventRequeue, Machine: ms.m.Name, Time: ms.toTime(rt.at),
			Background: rt.spec == nil, Pending: len(ms.queue),
			Handle: ms.handles[rt.spec], Attempt: rt.attempt,
		})
	}
	ms.push(q)
}

// push is the shared enqueue tail: heap insert, in-flight-step
// accounting, and the enqueue event.
func (ms *machineSim) push(q *queuedJob) {
	ms.queue.push(q)
	if ms.inStep {
		ms.admittedDuringStep++
	}
	if ms.observed() {
		ms.emit(Event{
			Kind: EventEnqueue, Machine: ms.m.Name, Time: ms.toTime(q.submit),
			Background: q.spec == nil, Pending: len(ms.queue),
			Handle: ms.handles[q.spec], Attempt: q.attempt,
		})
	}
}

// scheduleRetry inserts a pending retry keeping (at, id) order, so
// admission order is deterministic even when backoffs collide.
func (ms *machineSim) scheduleRetry(rt pendingRetry) {
	i := sort.Search(len(ms.retries), func(k int) bool {
		if ms.retries[k].at != rt.at {
			return ms.retries[k].at > rt.at
		}
		return ms.retries[k].id > rt.id
	})
	ms.retries = append(ms.retries, pendingRetry{})
	copy(ms.retries[i+1:], ms.retries[i:])
	ms.retries[i] = rt
}

func (ms *machineSim) nextRetryTime() (float64, bool) {
	if len(ms.retries) == 0 {
		return 0, false
	}
	return ms.retries[0].at, true
}

func (ms *machineSim) nextSpecTime() (float64, bool) {
	if ms.specIdx >= len(ms.specs) {
		return 0, false
	}
	s := ms.specs[ms.specIdx]
	if s.SubmitTime.Before(ms.online) {
		// Submitted before machine online: queue at online time.
		return ms.toSec(ms.online), true
	}
	return ms.toSec(s.SubmitTime), true
}

// admitArrivals pulls every arrival (retry + study + background) with
// submit time <= horizon — or strictly < horizon when strict, the
// partial admission an in-flight step uses so arrivals at the
// observation instant itself stay unconsumed — into the queue. Retries
// win ties (they consume no RNG draws, so admitting them first keeps
// the draw order independent of retry timing), then background, then
// study specs, matching the batch loop's order.
func (ms *machineSim) admitArrivals(horizon float64, strict bool) {
	for {
		bgT, bgOK := ms.bg.peek()
		spT, spOK := ms.nextSpecTime()
		rtT, rtOK := ms.nextRetryTime()
		if strict {
			bgOK = bgOK && bgT < horizon
			spOK = spOK && spT < horizon
			rtOK = rtOK && rtT < horizon
		} else {
			bgOK = bgOK && bgT <= horizon
			spOK = spOK && spT <= horizon
			rtOK = rtOK && rtT <= horizon
		}
		switch {
		case rtOK && (!bgOK || rtT <= bgT) && (!spOK || rtT <= spT):
			rt := ms.retries[0]
			ms.retries = ms.retries[1:]
			ms.requeue(rt)
		case bgOK && (!spOK || bgT <= spT):
			ms.bg.next()
			execSec := ms.bg.sampleExecSeconds(ms.r)
			user := fmt.Sprintf("bg-%d", ms.r.Intn(ms.cfg.Background.Users))
			ms.enqueue(nil, bgT, execSec, ms.bg.samplePatience(ms.r), user)
			ms.mstats.BackgroundJobs++
		case spOK:
			s := ms.specs[ms.specIdx]
			ms.specIdx++
			execSec := ms.m.ExecSeconds(s.BatchSize, s.Shots, s.TotalDepth) * (0.9 + 0.2*ms.r.Float64())
			ms.enqueue(s, spT, execSec, s.PatienceSec, s.User)
		default:
			return
		}
	}
}

// samplePending emits queue-length samples up to now. pending is
// passed explicitly because an in-flight step's deferred sampling must
// report the queue length before that step's admissions, matching the
// batch loop's sample-then-admit call order.
func (ms *machineSim) samplePending(now float64, pending int) {
	for ms.nextSample <= now && ms.nextSample <= ms.endSec {
		s := trace.PendingSample{Machine: ms.m.Name, Time: ms.toTime(ms.nextSample), Pending: pending}
		ms.mstats.PendingSamples = append(ms.mstats.PendingSamples, s)
		if ms.observed() {
			ms.emit(Event{Kind: EventPendingSample, Machine: ms.m.Name, Time: s.Time, Pending: pending})
		}
		ms.nextSample += ms.sampleEvery
	}
}

// afterDowntime displaces a start time past any downtime windows it
// lands in — planned maintenance and unplanned fault outages alike.
// Start times are monotone (the server is serial), so a moving index
// applies the displacement in O(1) amortized. Back-to-back (or
// overlapping, once outages join the calendar) windows displace a
// start repeatedly until it lands in uptime. Planned windows emit
// EventDowntime; outage visibility comes from the machine-down/up
// announcements instead.
func (ms *machineSim) afterDowntime(t float64) float64 {
	for ms.dtIdx < len(ms.downtimes) && t >= ms.downtimes[ms.dtIdx].end {
		ms.dtIdx++
	}
	for ms.dtIdx < len(ms.downtimes) && t >= ms.downtimes[ms.dtIdx].start {
		win := ms.downtimes[ms.dtIdx]
		if win.end > t {
			t = win.end
		}
		ms.dtIdx++
		if !win.fault && ms.observed() {
			ms.emit(Event{
				Kind: EventDowntime, Machine: ms.m.Name, Time: ms.toTime(win.start),
				Downtime: [2]time.Time{ms.toTime(win.start), ms.toTime(win.end)},
			})
		}
	}
	return t
}

// announceFaults emits machine-down/up events for every outage
// boundary the frontier has crossed. The cursor advances whether or
// not anyone observes, so attaching an observer mid-run simply misses
// history instead of replaying it.
func (ms *machineSim) announceFaults() {
	f := ms.frontier
	for ms.annIdx < len(ms.outages) {
		w := ms.outages[ms.annIdx]
		if ms.annPhase == 0 {
			if w.Start > f {
				return
			}
			if ms.observed() {
				ms.emit(Event{
					Kind: EventMachineDown, Machine: ms.m.Name, Time: ms.toTime(w.Start),
					Downtime: [2]time.Time{ms.toTime(w.Start), ms.toTime(w.End)},
				})
			}
			ms.annPhase = 1
		}
		if w.End > f {
			return
		}
		if ms.observed() {
			ms.emit(Event{
				Kind: EventMachineUp, Machine: ms.m.Name, Time: ms.toTime(w.End),
				Downtime: [2]time.Time{ms.toTime(w.Start), ms.toTime(w.End)},
			})
		}
		ms.annPhase = 0
		ms.annIdx++
	}
}

// record appends the spec's trace record and emits its terminal event.
func (ms *machineSim) record(s *JobSpec, startT, endT time.Time, status trace.Status) {
	j := &trace.Job{
		User: s.User, Machine: ms.m.Name,
		MachineQubits: ms.m.NumQubits(), Public: ms.m.Public,
		CircuitName: s.CircuitName, BatchSize: s.BatchSize, Shots: s.Shots,
		Width: s.Width, TotalDepth: s.TotalDepth, TotalGateOps: s.TotalGateOps,
		CXTotal: s.CXTotal, MemSlots: s.MemSlots,
		SubmitTime: s.SubmitTime, StartTime: startT, EndTime: endT,
		Status:       status,
		CompileEpoch: ms.m.CalibrationEpochAt(s.SubmitTime),
		ExecEpoch:    ms.m.CalibrationEpochAt(startT),
	}
	if jr := ms.journal(); jr != nil {
		// Journal mode streams the record to disk and retains nothing —
		// the constant-memory contract for million-job sessions.
		jr.appendJob(ms, j)
	} else {
		ms.jobs = append(ms.jobs, j)
	}
	ms.recorded[s] = true
	if ms.cfg.RecordSink != nil {
		ms.cfg.RecordSink(ms.idx, s, j)
	}
	if ms.observed() {
		ms.emit(Event{
			Kind: terminalKind(status), Machine: ms.m.Name, Time: endT,
			Pending: len(ms.queue), Job: j, Handle: ms.handles[s],
			Reason: ms.cancelReason[s],
		})
	}
}

func (ms *machineSim) recordStudy(q *queuedJob, start, end float64, status trace.Status) {
	s := q.spec
	startT, endT := ms.toTime(start), ms.toTime(end)
	// Float-second round-tripping can land a nanosecond before the
	// submission instant; clamp to keep records consistent.
	if startT.Before(s.SubmitTime) {
		startT = s.SubmitTime
	}
	if endT.Before(startT) {
		endT = startT
	}
	ms.record(s, startT, endT, status)
}

// recordSpecCancelled records a cancellation for a spec that never
// entered the queue (explicit Cancel before admission, or the window
// closing with the spec still pending).
func (ms *machineSim) recordSpecCancelled(s *JobSpec, at time.Time) {
	ms.record(s, at, at, trace.StatusCancelled)
}

// startNext pops the highest-priority queued job and serves it: the
// first half of the legacy loop's busy step. Completing jobs open an
// in-flight step whose admissions run up to the completion horizon.
func (ms *machineSim) startNext() {
	q := ms.queue.pop()
	if q.spec != nil {
		if cancelAt, ok := ms.cancelledAt[q.spec]; ok {
			ms.recordStudy(q, cancelAt, cancelAt, trace.StatusCancelled)
			return
		}
	}
	start := ms.busyUntil
	if start < q.submit {
		start = q.submit
	}
	start = ms.afterDowntime(start)
	if start >= ms.endSec {
		// Machine retires/window closes with jobs still queued: study
		// jobs get cancelled at the boundary.
		if q.spec != nil {
			ms.cancelReason[q.spec] = CancelWindow
			ms.recordStudy(q, ms.endSec, ms.endSec, trace.StatusCancelled)
		} else if ms.observed() {
			ms.emit(Event{
				Kind: EventCancel, Machine: ms.m.Name, Time: ms.toTime(ms.endSec),
				Background: true, Pending: len(ms.queue), Reason: CancelWindow,
			})
		}
		return
	}
	if q.patience > 0 && start > q.submit+q.patience {
		// User gave up while waiting.
		cancelAt := q.submit + q.patience
		if q.spec != nil {
			ms.cancelReason[q.spec] = CancelPatience
			ms.recordStudy(q, cancelAt, cancelAt, trace.StatusCancelled)
		} else if ms.observed() {
			ms.emit(Event{
				Kind: EventCancel, Machine: ms.m.Name, Time: ms.toTime(cancelAt),
				Background: true, Pending: len(ms.queue), Reason: CancelPatience,
			})
		}
		return
	}
	// Wait-prediction calibration sample (subsampled; background jobs
	// only, on their first attempt, with a non-empty queue at
	// submission — a requeued job's wait says nothing about fresh
	// arrivals).
	if q.spec == nil && q.attempt == 0 && q.pendingAtSubmit > 0 && q.seq%13 == 0 {
		ratio := (start - q.submit) / (float64(q.pendingAtSubmit) * ms.bg.meanExec)
		ms.waitRatios = append(ms.waitRatios, ratio)
	}
	status := trace.StatusDone
	execSec := q.execSec
	errRate := ms.cfg.ErrorRate
	if len(ms.staleWins) > 0 {
		// Calibration-staleness wave: jobs started inside it error at a
		// multiple of the base rate. The single RNG draw below stays in
		// its usual position — only the threshold moves — so the draw
		// sequence is unchanged whether or not a wave is active.
		if _, in := fault.At(ms.staleWins, &ms.staleIdx, start); in {
			errRate = math.Min(errRate*ms.cfg.Faults.StaleErrorFactor, 1)
		}
	}
	if ms.r.Float64() < errRate {
		status = trace.StatusError
		execSec *= 0.5 // errored jobs die partway through
	}
	if status == trace.StatusDone && ms.cfg.Faults != nil {
		// Transient backend fault, decided on its own stateless hash
		// stream (no machine-RNG draw): retryable, unlike the job-level
		// error above.
		tRate := ms.cfg.Faults.TransientErrorRate
		if len(ms.bursts) > 0 {
			if _, in := fault.At(ms.bursts, &ms.burstIdx, start); in {
				tRate = ms.cfg.Faults.BurstErrorRate
			}
		}
		if fault.Decide(tRate, ms.cfg.Seed, ms.m.Seed, q.id, int64(q.attempt), 3) {
			ms.startTransientFail(q, start)
			return
		}
	}
	end := start + execSec
	if ms.observed() {
		ms.emit(Event{
			Kind: EventStart, Machine: ms.m.Name, Time: ms.toTime(start),
			Background: q.spec == nil, Pending: len(ms.queue), Handle: ms.handles[q.spec],
			Attempt: q.attempt,
		})
	}
	if q.spec != nil {
		ms.recordStudy(q, start, end, status)
	} else if ms.observed() {
		ms.emit(Event{
			Kind: terminalKind(status), Machine: ms.m.Name, Time: ms.toTime(end),
			Background: true, Pending: len(ms.queue),
		})
	}
	// Charge fair-share usage at completion.
	*q.userUsage += execSec
	ms.busyUntil = end
	ms.inStep = true
	ms.stepEndsAt = end
	ms.admittedDuringStep = 0
}

// startTransientFail serves a start attempt that dies to a transient
// backend fault a quarter of the way through: the burnt machine time
// is charged like any other execution, and the job either schedules a
// retry after its backoff (emitting retry, balanced later by a
// requeue) or records a terminal error when the policy is exhausted.
// The failure occupies a normal busy step, preserving the
// start ≡ done+error+retry conservation law.
func (ms *machineSim) startTransientFail(q *queuedJob, start float64) {
	burnt := 0.25 * q.execSec
	failT := start + burnt
	if ms.observed() {
		ms.emit(Event{
			Kind: EventStart, Machine: ms.m.Name, Time: ms.toTime(start),
			Background: q.spec == nil, Pending: len(ms.queue), Handle: ms.handles[q.spec],
			Attempt: q.attempt,
		})
	}
	retryable := ms.retry != nil && q.attempt+1 < ms.retry.MaxAttempts
	if retryable && ms.retry.BudgetPerUser > 0 && ms.retrySpent[q.user] >= ms.retry.BudgetPerUser {
		retryable = false
	}
	var retryAt float64
	if retryable {
		retryAt = failT + ms.retry.backoffSec(q.attempt+1, ms.cfg.Seed, ms.m.Seed, q.id)
		// A retry that cannot re-enter the window would orphan its
		// retry event (no requeue could balance it): fail terminally
		// instead, so finalize always drains the retry list.
		retryable = retryAt < ms.endSec
	}
	switch {
	case retryable:
		if ms.retry.BudgetPerUser > 0 {
			ms.retrySpent[q.user]++
		}
		ms.scheduleRetry(pendingRetry{
			spec: q.spec, at: retryAt, execSec: q.execSec, patience: q.patience,
			user: q.user, id: q.id, attempt: q.attempt + 1,
		})
		if ms.observed() {
			ms.emit(Event{
				Kind: EventRetry, Machine: ms.m.Name, Time: ms.toTime(failT),
				Background: q.spec == nil, Pending: len(ms.queue), Handle: ms.handles[q.spec],
				Attempt: q.attempt + 1, NextAttemptAt: ms.toTime(retryAt),
			})
		}
	case q.spec != nil:
		ms.recordStudy(q, start, failT, trace.StatusError)
	default:
		if ms.observed() {
			ms.emit(Event{
				Kind: EventError, Machine: ms.m.Name, Time: ms.toTime(failT),
				Background: true, Pending: len(ms.queue),
			})
		}
	}
	*q.userUsage += burnt
	ms.busyUntil = failT
	ms.inStep = true
	ms.stepEndsAt = failT
	ms.admittedDuringStep = 0
}

func (ms *machineSim) setFrontier(f float64, inclusive bool) {
	if f > ms.frontier {
		ms.frontier, ms.frontierInclusive = f, inclusive
	} else if f == ms.frontier && inclusive {
		ms.frontierInclusive = true
	}
	if len(ms.outages) > 0 {
		ms.announceFaults()
	}
}

// advanceTo processes every machine action whose effects lie strictly
// before sim-second t: it finishes in-flight steps ending before t,
// starts queued jobs, jumps idle gaps to arrivals before t, and admits
// arrivals below t. Arrivals at or after t are never consumed, so a
// subsequent submit at t replays exactly. t = +Inf runs to the end of
// the window (the batch path).
func (ms *machineSim) advanceTo(t float64) {
	if ms.dead {
		return
	}
	jr := ms.journal()
	for {
		// A halted journal (write failure or deterministic kill) stops
		// the machine mid-advance: the crash being modeled stops here.
		if jr != nil && jr.stop.Load() {
			return
		}
		if ms.inStep {
			if ms.stepEndsAt < t {
				// Complete the step: admit everything up to its
				// horizon, then emit the deferred queue samples with
				// the pre-admission length (the batch loop samples
				// before admitting).
				ms.admitArrivals(ms.stepEndsAt, false)
				ms.samplePending(ms.stepEndsAt, len(ms.queue)-ms.admittedDuringStep)
				ms.setFrontier(ms.stepEndsAt, true)
				ms.inStep = false
				continue
			}
			ms.admitArrivals(t, true)
			ms.setFrontier(t, false)
			return
		}
		if len(ms.queue) > 0 {
			ms.startNext()
			continue
		}
		// Idle: jump to the next arrival (background, study spec, or a
		// retry coming off its backoff).
		bgT, bgOK := ms.bg.peek()
		spT, spOK := ms.nextSpecTime()
		rtT, rtOK := ms.nextRetryTime()
		if !bgOK && !spOK && !rtOK {
			ms.setFrontier(t, false)
			if math.IsInf(t, 1) {
				ms.finished = true
			}
			return
		}
		next := math.Inf(1)
		if bgOK {
			next = bgT
		}
		if spOK && spT < next {
			next = spT
		}
		if rtOK && rtT < next {
			next = rtT
		}
		if next >= ms.endSec {
			// Nothing more can start inside the window; remaining
			// specs become boundary cancellations at finalize.
			ms.setFrontier(t, false)
			if math.IsInf(t, 1) {
				ms.finished = true
			}
			return
		}
		if next >= t {
			ms.setFrontier(t, false)
			return
		}
		ms.samplePending(next, len(ms.queue))
		ms.admitArrivals(next, false)
		ms.setFrontier(next, true)
		if ms.busyUntil < next {
			ms.busyUntil = next
		}
	}
}

// finalize runs the machine to the end of the window, records
// boundary cancellations for specs that were never admitted, and
// computes the wait-ratio calibration quantiles.
func (ms *machineSim) finalize() {
	if ms.dead {
		return
	}
	ms.advanceTo(math.Inf(1))
	// Study jobs submitted after the machine went offline (or never
	// admitted before the loop ended) are recorded as cancelled.
	for ; ms.specIdx < len(ms.specs); ms.specIdx++ {
		s := ms.specs[ms.specIdx]
		at := s.SubmitTime
		if at.Before(ms.online) {
			at = ms.online
		}
		ms.cancelReason[s] = CancelWindow
		ms.recordSpecCancelled(s, at)
	}
	if len(ms.waitRatios) >= 30 {
		sorted := stats.SortedCopy(ms.waitRatios)
		qs := stats.QuantilesSorted(sorted, 0.1, 0.5, 0.9)
		ms.mstats.WaitRatioP10, ms.mstats.WaitRatioP50, ms.mstats.WaitRatioP90 = qs[0], qs[1], qs[2]
	}
}

// snapshot reports the live queue state at the machine's frontier.
func (ms *machineSim) snapshot() QueueSnapshot {
	snap := QueueSnapshot{Machine: ms.m.Name}
	if ms.dead {
		return snap
	}
	f := ms.frontier
	if math.IsInf(f, -1) {
		f = ms.toSec(ms.cfg.Start)
	}
	if math.IsInf(f, 1) || f > ms.endSec {
		f = ms.endSec
	}
	snap.Time = ms.toTime(f)
	for _, q := range ms.queue {
		if q.spec != nil {
			if _, withdrawn := ms.cancelledAt[q.spec]; withdrawn {
				// Cancelled while queued: the server discards it on
				// arrival, so it is not load a scheduler should see.
				continue
			}
			snap.PendingStudy++
		}
		snap.Pending++
		snap.BacklogSeconds += q.execSec
	}
	if ms.busyUntil > f {
		snap.RunningUntil = ms.toTime(ms.busyUntil)
	}
	// Maintenance windows the backlog must ride out: walk the calendar
	// from the cursor, pushing the projected completion across every
	// window it overlaps (a window in progress counts its remainder).
	// Unplanned fault outages are skipped — the vendor's calendar does
	// not know about them, and leaking future outages here would hand
	// schedulers an oracle.
	c := f + snap.BacklogSeconds
	if ms.busyUntil > f {
		c += ms.busyUntil - f
	}
	for _, w := range ms.downtimes[ms.dtIdx:] {
		if w.fault || w.end <= f {
			continue
		}
		if w.start >= c {
			break
		}
		dur := w.end - math.Max(w.start, f)
		snap.DowntimeSeconds += dur
		c += dur
	}
	// An outage in progress at the frontier IS visible: the machine is
	// observably down right now, even though future outages are not.
	snap.Down = fault.Covers(ms.outages, f)
	snap.MeanExecSeconds = ms.bg.meanExec
	return snap
}

// jobState reports where a submitted spec currently stands.
func (ms *machineSim) jobState(spec *JobSpec) JobState {
	if ms.dead || ms.recorded[spec] {
		return JobStateFinished
	}
	if _, ok := ms.cancelledAt[spec]; ok {
		return JobStateWithdrawn
	}
	for i := ms.specIdx; i < len(ms.specs); i++ {
		if ms.specs[i] == spec {
			return JobStatePending
		}
	}
	for _, q := range ms.queue {
		if q.spec == spec {
			return JobStateQueued
		}
	}
	for _, rt := range ms.retries {
		if rt.spec == spec {
			return JobStateQueued
		}
	}
	// Admitted specs are queued, retrying, or recorded the moment they
	// are served; nothing else remains.
	return JobStateFinished
}

func (ms *machineSim) observed() bool { return ms.sess != nil && ms.sess.hasObs.Load() }

func (ms *machineSim) journal() *sessionJournal {
	if ms.sess == nil {
		return nil
	}
	return ms.sess.jr
}

func (ms *machineSim) emit(ev Event) { ms.sess.dispatch(ev) }

func terminalKind(status trace.Status) EventKind {
	switch status {
	case trace.StatusError:
		return EventError
	case trace.StatusCancelled:
		return EventCancel
	default:
		return EventDone
	}
}
