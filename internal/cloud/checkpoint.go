package cloud

import (
	"fmt"
	"io"
	"sort"
	"time"

	"qcloud/internal/fault"
	"qcloud/internal/trace"
)

// checkpointVersion is the snapshot payload version; bump it whenever
// MachineCheckpoint's layout or semantics change so stale snapshots
// are rejected instead of silently misread. Version 2 adds the CRC32C
// snapshot footer and the Journal* resume fields; version 3 adds the
// cancel-reason classification on pending withdrawals. Older files are
// still readable (missing fields decode as zero / unclassified).
const checkpointVersion byte = 3

// checkpointOldestReadable is the oldest envelope version
// ReadCheckpoint still accepts.
const checkpointOldestReadable byte = 1

// Checkpoint is a complete, restorable snapshot of an open session:
// every machine's queue heap, arrival-stream cursors, fair-share
// accumulators, fault/retry state, in-flight frontier, and the trace
// records produced so far. Restoring it into a freshly opened session
// with the same Config resumes the run bit-for-bit — the crash-replay
// contract the future dispatcher/worker split inherits.
type Checkpoint struct {
	// Seed, Start and End identify the run; Restore refuses a config
	// that disagrees.
	Seed       int64
	Start, End time.Time
	// Faults and Retry pin the robustness configuration the snapshot
	// was taken under (both shape the event timeline).
	Faults *fault.Profile
	Retry  *RetryPolicy
	// Machines holds per-machine state in fleet order.
	Machines []MachineCheckpoint

	// Journal* pin the durable-journal resume point for sessions in
	// journal mode (zero otherwise): the per-machine stream record
	// counts and input-log length at snapshot time, this checkpoint's
	// sequence number in its journal directory, and the next
	// auto-checkpoint instant.
	JournalMachineRecords []int64
	JournalSubmits        int64
	JournalSeq            int64
	JournalNextCkpt       time.Time
}

// MachineCheckpoint is one machine's serialized state. Spec-pointer
// fields are stored as indices into Specs; the RNG is pinned by its
// draw count (construction replays deterministically, then the source
// fast-forwards to the recorded count).
type MachineCheckpoint struct {
	Name string
	Dead bool

	RNGDraws          uint64
	Frontier          float64
	FrontierInclusive bool
	Finished          bool
	BusyUntil         float64
	InStep            bool
	StepEndsAt        float64
	AdmittedDuring    int
	Seq               int64
	NextSample        float64

	// Monotone cursors: downtime displacement, outage announcement,
	// burst/staleness windows, submit-fault sequence, background
	// surge/arrival stream.
	DtIdx       int
	AnnIdx      int
	AnnPhase    int
	BurstIdx    int
	StaleIdx    int
	SubmitSeq   int64
	BgSurgeIdx  int
	BgNextAt    float64
	BgExhausted bool

	Specs   []JobSpec
	SpecIdx int
	// Queue preserves the heap slice verbatim (a valid heap reloads as
	// one); Retries preserves the (at, id)-sorted backoff list.
	Queue   []QueuedJobCheckpoint
	Retries []RetryCheckpoint
	// CancelledAt / Recorded mark specs (by index) withdrawn but not
	// yet recorded, and specs with a terminal trace record.
	CancelledAt []SpecCancelCheckpoint
	Recorded    []int

	Jobs       []trace.Job
	Stats      trace.MachineStats
	WaitRatios []float64

	Usage      []UserUsageCheckpoint
	RetrySpent []UserCountCheckpoint
}

// QueuedJobCheckpoint is one queue-heap entry; SpecIdx is -1 for
// background jobs.
type QueuedJobCheckpoint struct {
	SpecIdx         int
	Submit          float64
	ExecSec         float64
	Patience        float64
	Priority        float64
	Seq             int64
	ID              int64
	User            string
	Attempt         int
	PendingAtSubmit int
}

// RetryCheckpoint is one pending retry; SpecIdx is -1 for background
// jobs.
type RetryCheckpoint struct {
	SpecIdx  int
	At       float64
	ExecSec  float64
	Patience float64
	User     string
	ID       int64
	Attempt  int
}

// SpecCancelCheckpoint marks a queued spec withdrawn at At. Reason is
// the cancel classification carried onto the eventual terminal event
// (empty in pre-v3 snapshots, which restore as unclassified cancels).
type SpecCancelCheckpoint struct {
	SpecIdx int
	At      float64
	Reason  CancelReason
}

// UserUsageCheckpoint is one fair-share accumulator.
type UserUsageCheckpoint struct {
	User      string
	Usage     float64
	LastDecay float64
}

// UserCountCheckpoint is one per-user retry-budget counter.
type UserCountCheckpoint struct {
	User string
	N    int
}

// Checkpoint snapshots the session's full state at its current
// frontiers. The session stays open and can keep advancing; the
// snapshot is an independent copy.
func (s *Session) Checkpoint() (*Checkpoint, error) {
	if s.closed {
		return nil, ErrSessionClosed
	}
	if s.jr != nil {
		if err := s.jr.haltErr(); err != nil {
			return nil, err
		}
	}
	ck := &Checkpoint{
		Seed:   s.cfg.Seed,
		Start:  s.cfg.Start,
		End:    s.cfg.End,
		Faults: s.cfg.Faults,
		Retry:  s.cfg.Retry,
	}
	for _, ms := range s.sims {
		ck.Machines = append(ck.Machines, ms.checkpoint())
	}
	return ck, nil
}

func (ms *machineSim) checkpoint() MachineCheckpoint {
	mc := MachineCheckpoint{Name: ms.m.Name, Dead: ms.dead}
	if ms.dead {
		return mc
	}
	mc.RNGDraws = ms.rsrc.draws
	mc.Frontier, mc.FrontierInclusive = ms.frontier, ms.frontierInclusive
	mc.Finished = ms.finished
	mc.BusyUntil = ms.busyUntil
	mc.InStep, mc.StepEndsAt, mc.AdmittedDuring = ms.inStep, ms.stepEndsAt, ms.admittedDuringStep
	mc.Seq, mc.NextSample = ms.seq, ms.nextSample
	mc.DtIdx, mc.AnnIdx, mc.AnnPhase = ms.dtIdx, ms.annIdx, ms.annPhase
	mc.BurstIdx, mc.StaleIdx, mc.SubmitSeq = ms.burstIdx, ms.staleIdx, ms.submitSeq
	mc.BgSurgeIdx, mc.BgNextAt, mc.BgExhausted = ms.bg.surgeIdx, ms.bg.nextAt, ms.bg.exhausted

	specIndex := make(map[*JobSpec]int, len(ms.specs))
	for i, sp := range ms.specs {
		specIndex[sp] = i
		mc.Specs = append(mc.Specs, *sp)
		// Spec-keyed maps are walked through the ordered spec slice, so
		// checkpoint bytes are deterministic (specs removed by a
		// pre-admission cancel were recorded immediately and are
		// unreachable after a restore; dropping them is safe).
		if at, ok := ms.cancelledAt[sp]; ok {
			mc.CancelledAt = append(mc.CancelledAt, SpecCancelCheckpoint{SpecIdx: i, At: at, Reason: ms.cancelReason[sp]})
		}
		if ms.recorded[sp] {
			mc.Recorded = append(mc.Recorded, i)
		}
	}
	mc.SpecIdx = ms.specIdx

	for _, q := range ms.queue {
		cj := QueuedJobCheckpoint{
			SpecIdx: -1, Submit: q.submit, ExecSec: q.execSec, Patience: q.patience,
			Priority: q.priority, Seq: q.seq, ID: q.id, User: q.user,
			Attempt: q.attempt, PendingAtSubmit: q.pendingAtSubmit,
		}
		if q.spec != nil {
			cj.SpecIdx = specIndex[q.spec]
		}
		mc.Queue = append(mc.Queue, cj)
	}
	for _, rt := range ms.retries {
		cr := RetryCheckpoint{
			SpecIdx: -1, At: rt.at, ExecSec: rt.execSec, Patience: rt.patience,
			User: rt.user, ID: rt.id, Attempt: rt.attempt,
		}
		if rt.spec != nil {
			cr.SpecIdx = specIndex[rt.spec]
		}
		mc.Retries = append(mc.Retries, cr)
	}

	for _, j := range ms.jobs {
		mc.Jobs = append(mc.Jobs, *j)
	}
	mc.Stats = *ms.mstats
	mc.WaitRatios = append([]float64(nil), ms.waitRatios...)

	var users []string
	for u := range ms.usage {
		users = append(users, u)
	}
	sort.Strings(users)
	for _, u := range users {
		mc.Usage = append(mc.Usage, UserUsageCheckpoint{
			User: u, Usage: *ms.usage[u], LastDecay: ms.lastDecay[u],
		})
	}
	var spenders []string
	for u := range ms.retrySpent {
		spenders = append(spenders, u)
	}
	sort.Strings(spenders)
	for _, u := range spenders {
		mc.RetrySpent = append(mc.RetrySpent, UserCountCheckpoint{User: u, N: ms.retrySpent[u]})
	}
	return mc
}

// Restore opens a new session from cfg and overwrites its state with
// the checkpoint: construction replays the deterministic setup
// (downtime calendars, fault windows, surge episodes), the RNG
// fast-forwards to the recorded draw count, and every cursor, queue
// entry and record is reloaded. The config must be the one the
// checkpointed session was opened with; the identifying fields are
// validated, the rest (fleet composition, background model) must match
// by contract.
func Restore(cfg Config, ck *Checkpoint) (*Session, error) {
	if cfg.Journal != nil {
		return nil, fmt.Errorf("cloud: Restore cannot attach a journal; use Recover for journaled sessions")
	}
	c := cfg.withDefaults()
	if c.Seed != ck.Seed || !c.Start.Equal(ck.Start) || !c.End.Equal(ck.End) {
		return nil, fmt.Errorf("cloud: restore config mismatch: seed/window %d %s..%s vs checkpoint %d %s..%s",
			c.Seed, c.Start, c.End, ck.Seed, ck.Start, ck.End)
	}
	if (c.Faults == nil) != (ck.Faults == nil) || (c.Faults != nil && *c.Faults != *ck.Faults) {
		return nil, fmt.Errorf("cloud: restore config mismatch: fault profile differs from checkpoint")
	}
	if (c.Retry == nil) != (ck.Retry == nil) || (c.Retry != nil && *c.Retry != *ck.Retry) {
		return nil, fmt.Errorf("cloud: restore config mismatch: retry policy differs from checkpoint")
	}
	s, err := Open(cfg)
	if err != nil {
		return nil, err
	}
	if len(s.sims) != len(ck.Machines) {
		return nil, fmt.Errorf("cloud: restore fleet mismatch: %d machines vs checkpoint %d", len(s.sims), len(ck.Machines))
	}
	for i := range ck.Machines {
		ms := s.sims[i]
		mc := &ck.Machines[i]
		if ms.m.Name != mc.Name {
			return nil, fmt.Errorf("cloud: restore fleet mismatch: machine %d is %s, checkpoint has %s", i, ms.m.Name, mc.Name)
		}
		if ms.dead != mc.Dead {
			return nil, fmt.Errorf("cloud: restore mismatch: machine %s dead=%v vs checkpoint %v", ms.m.Name, ms.dead, mc.Dead)
		}
		if ms.dead {
			continue
		}
		if err := ms.restore(mc); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (ms *machineSim) restore(mc *MachineCheckpoint) error {
	if mc.RNGDraws < ms.rsrc.draws {
		return fmt.Errorf("cloud: restore %s: checkpoint RNG count %d behind construction's %d (corrupt snapshot?)",
			ms.m.Name, mc.RNGDraws, ms.rsrc.draws)
	}
	for ms.rsrc.draws < mc.RNGDraws {
		ms.rsrc.Uint64()
	}
	ms.frontier, ms.frontierInclusive = mc.Frontier, mc.FrontierInclusive
	ms.finished = mc.Finished
	ms.busyUntil = mc.BusyUntil
	ms.inStep, ms.stepEndsAt, ms.admittedDuringStep = mc.InStep, mc.StepEndsAt, mc.AdmittedDuring
	ms.seq, ms.nextSample = mc.Seq, mc.NextSample
	ms.dtIdx, ms.annIdx, ms.annPhase = mc.DtIdx, mc.AnnIdx, mc.AnnPhase
	ms.burstIdx, ms.staleIdx, ms.submitSeq = mc.BurstIdx, mc.StaleIdx, mc.SubmitSeq
	ms.bg.surgeIdx, ms.bg.nextAt, ms.bg.exhausted = mc.BgSurgeIdx, mc.BgNextAt, mc.BgExhausted

	ms.specs = make([]*JobSpec, len(mc.Specs))
	ms.handles = make(map[*JobSpec]*JobHandle, len(mc.Specs))
	for i := range mc.Specs {
		sp := mc.Specs[i]
		ms.specs[i] = &sp
		ms.handles[&sp] = &JobHandle{spec: &sp, machine: ms.m.Name, sess: ms.sess}
	}
	ms.specIdx = mc.SpecIdx

	ms.usage = make(map[string]*float64, len(mc.Usage))
	ms.lastDecay = make(map[string]float64, len(mc.Usage))
	for _, u := range mc.Usage {
		v := u.Usage
		ms.usage[u.User] = &v
		ms.lastDecay[u.User] = u.LastDecay
	}

	ms.queue = make(jobHeap, 0, len(mc.Queue))
	for _, cj := range mc.Queue {
		q := &queuedJob{
			submit: cj.Submit, execSec: cj.ExecSec, patience: cj.Patience,
			priority: cj.Priority, seq: cj.Seq, id: cj.ID, user: cj.User,
			attempt: cj.Attempt, pendingAtSubmit: cj.PendingAtSubmit,
		}
		if cj.SpecIdx >= 0 {
			if cj.SpecIdx >= len(ms.specs) {
				return fmt.Errorf("cloud: restore %s: queue entry spec index %d out of range", ms.m.Name, cj.SpecIdx)
			}
			q.spec = ms.specs[cj.SpecIdx]
		}
		q.userUsage = ms.usage[cj.User]
		if q.userUsage == nil {
			return fmt.Errorf("cloud: restore %s: queue entry for %q has no usage accumulator", ms.m.Name, cj.User)
		}
		ms.queue = append(ms.queue, q)
	}

	ms.retries = nil
	for _, cr := range mc.Retries {
		rt := pendingRetry{
			at: cr.At, execSec: cr.ExecSec, patience: cr.Patience,
			user: cr.User, id: cr.ID, attempt: cr.Attempt,
		}
		if cr.SpecIdx >= 0 {
			if cr.SpecIdx >= len(ms.specs) {
				return fmt.Errorf("cloud: restore %s: retry spec index %d out of range", ms.m.Name, cr.SpecIdx)
			}
			rt.spec = ms.specs[cr.SpecIdx]
		}
		ms.retries = append(ms.retries, rt)
	}

	ms.cancelledAt = make(map[*JobSpec]float64, len(mc.CancelledAt))
	ms.cancelReason = make(map[*JobSpec]CancelReason, len(mc.CancelledAt))
	for _, cc := range mc.CancelledAt {
		if cc.SpecIdx < 0 || cc.SpecIdx >= len(ms.specs) {
			return fmt.Errorf("cloud: restore %s: cancel spec index %d out of range", ms.m.Name, cc.SpecIdx)
		}
		ms.cancelledAt[ms.specs[cc.SpecIdx]] = cc.At
		if cc.Reason != "" {
			ms.cancelReason[ms.specs[cc.SpecIdx]] = cc.Reason
		}
	}
	ms.recorded = make(map[*JobSpec]bool, len(mc.Recorded))
	for _, ri := range mc.Recorded {
		if ri < 0 || ri >= len(ms.specs) {
			return fmt.Errorf("cloud: restore %s: recorded spec index %d out of range", ms.m.Name, ri)
		}
		ms.recorded[ms.specs[ri]] = true
	}

	ms.jobs = make([]*trace.Job, len(mc.Jobs))
	for i := range mc.Jobs {
		j := mc.Jobs[i]
		ms.jobs[i] = &j
	}
	st := mc.Stats
	ms.mstats = &st
	ms.waitRatios = append([]float64(nil), mc.WaitRatios...)

	if ms.retrySpent != nil || len(mc.RetrySpent) > 0 {
		ms.retrySpent = make(map[string]int, len(mc.RetrySpent))
		for _, uc := range mc.RetrySpent {
			ms.retrySpent[uc.User] = uc.N
		}
	}
	return nil
}

// WriteCheckpoint serializes the checkpoint through the versioned
// trace snapshot codec.
func WriteCheckpoint(w io.Writer, ck *Checkpoint) error {
	return trace.WriteSnapshot(w, checkpointVersion, ck)
}

// ReadCheckpoint decodes a checkpoint, rejecting snapshots from other
// format versions.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	ck := &Checkpoint{}
	v, err := trace.ReadSnapshot(r, ck)
	if err != nil {
		return nil, err
	}
	if v < checkpointOldestReadable || v > checkpointVersion {
		return nil, fmt.Errorf("cloud: checkpoint version %d not supported (want %d..%d)", v, checkpointOldestReadable, checkpointVersion)
	}
	return ck, nil
}
