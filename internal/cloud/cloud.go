// Package cloud is the discrete-event simulator of the quantum cloud:
// per-machine fair-share queues, background load from the wider user
// population, job lifecycle (queued, running, done/error/cancelled),
// calibration-epoch tracking, and pending-queue sampling.
//
// The paper's dataset is the authors' 6000 jobs executed on machines
// shared with thousands of other users; here the study jobs are
// explicit JobSpecs and everyone else is the modeled background load,
// which is what produces the queuing-time distributions of Figs 3, 4,
// 10 and the pending-job counts of Fig 9.
//
// The core is the event-driven Session API: Open a session, Submit
// jobs (up-front or mid-run), Observe lifecycle events, query live
// QueueState snapshots, and Run to the end of the window. Simulate is
// the batch convenience wrapper over it.
package cloud

import (
	"math"
	"math/rand"
	"time"

	"qcloud/internal/backend"
	"qcloud/internal/fault"
	"qcloud/internal/trace"
)

// JobSpec is a study job to submit: what the client sends to the cloud.
type JobSpec struct {
	// SubmitTime is when the job enters the queue.
	SubmitTime time.Time
	// User identifies the submitter (fair-share accounting key).
	User string
	// Machine is the target backend name.
	Machine string
	// BatchSize and Shots shape execution time.
	BatchSize, Shots int
	// CircuitName labels the batch's circuit family.
	CircuitName string
	// Width, TotalDepth, TotalGateOps, CXTotal, MemSlots are the
	// aggregate circuit features recorded in the trace (the paper's
	// Fig 15 predictor features).
	Width, TotalDepth, TotalGateOps, CXTotal, MemSlots int
	// PatienceSec cancels the job if it has not started within this
	// wait (0 = infinite patience).
	PatienceSec float64
	// Privileged marks paid-access users, who may target private
	// machines (used by scheduling policies).
	Privileged bool
}

// Config parameterizes a simulation run.
type Config struct {
	// Seed drives all stochastic behavior deterministically.
	Seed int64
	// Start and End bound the simulated window.
	Start, End time.Time
	// Machines is the fleet (default backend.Fleet()).
	Machines []*backend.Machine
	// Background controls the non-study load (default DefaultBackground).
	Background *BackgroundModel
	// PendingSampleEvery sets the queue-length sampling period
	// (default 6h).
	PendingSampleEvery time.Duration
	// ErrorRate is the probability an executed job errors out
	// (default 0.035, matching Fig 2b's ~5% non-DONE combined with
	// cancellations). A zero value means "use the default"; set
	// NoErrors to model a perfect-execution fleet.
	ErrorRate float64
	// NoErrors disables execution errors entirely. Without it an
	// explicit zero ErrorRate is indistinguishable from "unset" and
	// silently becomes the default.
	NoErrors bool
	// Workers bounds the per-machine simulation fan-out (0 = process
	// default, 1 = serial). Machines are independent event loops with
	// machine-seeded RNGs, so the trace is bit-identical for any
	// worker count.
	Workers int
	// Faults enables the deterministic fault injector: unplanned
	// outages, transient submit/backend errors, failure bursts and
	// calibration-staleness waves (nil = nothing ever fails
	// unexpectedly). Fault decisions come from their own splitmix64
	// streams, so enabling them never perturbs the machine RNG
	// sequence.
	Faults *fault.Profile
	// Retry requeues transiently-failed jobs with capped exponential
	// backoff (nil = transient failures are terminal errors).
	Retry *RetryPolicy
	// Journal enables durable journaling: finished jobs stream into an
	// append-only journal directory instead of memory, the session
	// auto-checkpoints itself, and a killed run resumes with Recover
	// (nil = in-memory traces, the default).
	Journal *JournalConfig
	// RecordSink, if set, receives every finished study-job record
	// synchronously from the recording machine's advance loop, tagged
	// with the machine's fleet index. Calls for one machine arrive in
	// that machine's deterministic record order, but different machines
	// record concurrently under the worker budget — implementations
	// must be race-free across indices (e.g. append to a per-machine
	// buffer and merge after AdvanceTo returns). This is the tenant
	// broker's allocation-accounting hook; unlike Observe it adds no
	// goroutines and no buffering, so it cannot reorder or drop.
	RecordSink func(machine int, spec *JobSpec, job *trace.Job)
}

// RetryPolicy governs how a machine requeues jobs killed by transient
// backend faults: capped exponential backoff with deterministic
// jitter, a per-job attempt budget, and an optional per-user retry
// budget. Backoff jitter is a stateless splitmix64 hash of (seed,
// machine, job, attempt), so retry timing is bit-identical across
// worker counts and checkpoint/restore.
type RetryPolicy struct {
	// MaxAttempts bounds total executions per job, first try included
	// (default 3).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry (default 60s);
	// each further attempt doubles it, capped at MaxBackoff (default
	// 1h). The cap applies after jitter: no retry waits longer than
	// MaxBackoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// JitterFrac spreads each delay uniformly over ±JitterFrac of
	// itself (default 0.25; negative = no jitter).
	JitterFrac float64
	// BudgetPerUser caps retries charged to one user per machine
	// (0 = unlimited): a tenant-level circuit breaker so a pathological
	// workload cannot monopolize recovery capacity.
	BudgetPerUser int
}

func (p *RetryPolicy) withDefaults() *RetryPolicy {
	q := *p
	if q.MaxAttempts <= 0 {
		q.MaxAttempts = 3
	}
	if q.BaseBackoff <= 0 {
		q.BaseBackoff = time.Minute
	}
	if q.MaxBackoff <= 0 {
		q.MaxBackoff = time.Hour
	}
	if q.JitterFrac == 0 {
		q.JitterFrac = 0.25
	}
	return &q
}

// backoffSec returns the delay before the given retry attempt
// (attempt 1 = first retry): exponential in the attempt, jittered by
// the job's deterministic stream, capped at MaxBackoff.
func (p *RetryPolicy) backoffSec(attempt int, seed, machineSeed, jobID int64) float64 {
	d := p.BaseBackoff.Seconds() * math.Pow(2, float64(attempt-1))
	if p.JitterFrac > 0 {
		d *= 1 + p.JitterFrac*(2*fault.Unit(seed, machineSeed, jobID, int64(attempt), 11)-1)
	}
	return math.Min(d, p.MaxBackoff.Seconds())
}

func (c Config) withDefaults() Config {
	if c.Machines == nil {
		c.Machines = backend.Fleet()
	}
	if c.Start.IsZero() {
		c.Start = backend.StudyStart
	}
	if c.End.IsZero() {
		c.End = backend.StudyEnd
	}
	if c.Background == nil {
		c.Background = DefaultBackground()
	}
	if c.PendingSampleEvery <= 0 {
		c.PendingSampleEvery = 6 * time.Hour
	}
	if c.NoErrors {
		c.ErrorRate = 0
	} else if c.ErrorRate <= 0 {
		c.ErrorRate = 0.035
	}
	return c
}

// Simulate runs the cloud over the configured window with the given
// study jobs and returns the trace: the batch wrapper over the Session
// API (open, submit everything, run to completion). Study jobs may
// target any machine in the fleet; specs on unknown machines are an
// error. Transient submit rejections from the fault injector are
// retried like a patient client would (and never occur with faults
// disabled).
func Simulate(cfg Config, specs []*JobSpec) (*trace.Trace, error) {
	s, err := Open(cfg)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	for _, spec := range specs {
		if _, err := s.SubmitRetried(spec, 0); err != nil {
			return nil, err
		}
	}
	return s.Run()
}

// queuedJob is a job waiting in a machine queue (study or background).
type queuedJob struct {
	spec      *JobSpec // nil for background jobs
	submit    float64  // seconds since sim start
	execSec   float64
	patience  float64 // 0 = infinite
	priority  float64 // fair-share score: lower runs first
	seq       int64   // tiebreaker
	userUsage *float64
	// user is the fair-share key (kept by name so retries and
	// checkpoints can re-link the usage accumulator).
	user string
	// id identifies the job across retries: the seq of its first
	// enqueue, stable while seq changes on every requeue.
	id int64
	// attempt counts completed executions before this one (0 = first
	// try); the retry policy's per-job budget is spent against it.
	attempt int
	// pendingAtSubmit is the queue length observed at enqueue time,
	// kept for wait-prediction calibration.
	pendingAtSubmit int
}

// jobHeap is a min-heap on (priority, seq).
type jobHeap []*queuedJob

func (h jobHeap) less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority < h[j].priority
	}
	return h[i].seq < h[j].seq
}

func (h *jobHeap) push(j *queuedJob) {
	*h = append(*h, j)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h).less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *jobHeap) pop() *queuedJob {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(*h) && (*h).less(l, smallest) {
			smallest = l
		}
		if r < len(*h) && (*h).less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
	return top
}

// fairSharePenalty converts recent machine-seconds of usage into queue
// priority penalty seconds: heavy users wait behind light users even
// when they submitted earlier, the IBM fair-share behavior the paper
// describes ("the order in which jobs complete is not necessarily the
// order in which they were submitted").
const fairSharePenalty = 8

// usageDecayHours is the half-life of fair-share usage accounting.
const usageDecayHours = 24

// decayFactor returns the exponential usage decay over dt seconds with
// a half-life of usageDecayHours.
func decayFactor(dt float64) float64 {
	return math.Exp2(-dt / (usageDecayHours * 3600))
}

// genDowntimes samples maintenance windows over [startSec, endSec):
// exponentially spaced (~12 day mean), log-normal duration with a
// median around six hours and a tail reaching multiple days.
func genDowntimes(r *rand.Rand, startSec, endSec float64) [][2]float64 {
	const meanGapDays = 18
	var out [][2]float64
	t := startSec + r.ExpFloat64()*meanGapDays*86400
	for t < endSec {
		dur := math.Exp(math.Log(12*3600) + 1.1*r.NormFloat64())
		if dur > 5*86400 {
			dur = 5 * 86400
		}
		out = append(out, [2]float64{t, math.Min(t+dur, endSec)})
		t += dur + r.ExpFloat64()*meanGapDays*86400
	}
	return out
}
