// Package cloud is the discrete-event simulator of the quantum cloud:
// per-machine fair-share queues, background load from the wider user
// population, job lifecycle (queued, running, done/error/cancelled),
// calibration-epoch tracking, and pending-queue sampling.
//
// The paper's dataset is the authors' 6000 jobs executed on machines
// shared with thousands of other users; here the study jobs are
// explicit JobSpecs and everyone else is the modeled background load,
// which is what produces the queuing-time distributions of Figs 3, 4,
// 10 and the pending-job counts of Fig 9.
package cloud

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"qcloud/internal/backend"
	"qcloud/internal/par"
	"qcloud/internal/stats"
	"qcloud/internal/trace"
)

// JobSpec is a study job to submit: what the client sends to the cloud.
type JobSpec struct {
	// SubmitTime is when the job enters the queue.
	SubmitTime time.Time
	// User identifies the submitter (fair-share accounting key).
	User string
	// Machine is the target backend name.
	Machine string
	// BatchSize and Shots shape execution time.
	BatchSize, Shots int
	// CircuitName labels the batch's circuit family.
	CircuitName string
	// Width, TotalDepth, TotalGateOps, CXTotal, MemSlots are the
	// aggregate circuit features recorded in the trace (the paper's
	// Fig 15 predictor features).
	Width, TotalDepth, TotalGateOps, CXTotal, MemSlots int
	// PatienceSec cancels the job if it has not started within this
	// wait (0 = infinite patience).
	PatienceSec float64
	// Privileged marks paid-access users, who may target private
	// machines (used by scheduling policies).
	Privileged bool
}

// Config parameterizes a simulation run.
type Config struct {
	// Seed drives all stochastic behavior deterministically.
	Seed int64
	// Start and End bound the simulated window.
	Start, End time.Time
	// Machines is the fleet (default backend.Fleet()).
	Machines []*backend.Machine
	// Background controls the non-study load (default DefaultBackground).
	Background *BackgroundModel
	// PendingSampleEvery sets the queue-length sampling period
	// (default 6h).
	PendingSampleEvery time.Duration
	// ErrorRate is the probability an executed job errors out
	// (default 0.035, matching Fig 2b's ~5% non-DONE combined with
	// cancellations).
	ErrorRate float64
	// Workers bounds the per-machine simulation fan-out (0 = process
	// default, 1 = serial). Machines are independent event loops with
	// machine-seeded RNGs, so the trace is bit-identical for any
	// worker count.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Machines == nil {
		c.Machines = backend.Fleet()
	}
	if c.Start.IsZero() {
		c.Start = backend.StudyStart
	}
	if c.End.IsZero() {
		c.End = backend.StudyEnd
	}
	if c.Background == nil {
		c.Background = DefaultBackground()
	}
	if c.PendingSampleEvery <= 0 {
		c.PendingSampleEvery = 6 * time.Hour
	}
	if c.ErrorRate <= 0 {
		c.ErrorRate = 0.035
	}
	return c
}

// Simulate runs the cloud over the configured window with the given
// study jobs and returns the trace. Study jobs may target any machine
// in the fleet; specs on unknown machines are an error.
func Simulate(cfg Config, specs []*JobSpec) (*trace.Trace, error) {
	c := cfg.withDefaults()
	byMachine := make(map[string][]*JobSpec)
	for _, s := range specs {
		byMachine[s.Machine] = append(byMachine[s.Machine], s)
	}
	known := make(map[string]bool)
	for _, m := range c.Machines {
		known[m.Name] = true
	}
	for name := range byMachine {
		if !known[name] {
			return nil, fmt.Errorf("cloud: study job targets unknown machine %q", name)
		}
	}
	// Each machine is an independent single-server queue with its own
	// seeded RNG, so the fleet sweep runs on a worker pool. Job IDs are
	// assigned afterwards in (machine order, record order) — the exact
	// sequence the serial loop produced — keeping traces bit-identical
	// across worker counts.
	out := &trace.Trace{}
	results := make([]machineResult, len(c.Machines))
	par.ForEach(len(c.Machines), c.Workers, func(i int) {
		results[i] = simulateMachine(c, c.Machines[i], byMachine[c.Machines[i].Name])
	})
	var nextID int64
	for _, ms := range results {
		for _, j := range ms.jobs {
			nextID++
			j.ID = nextID
		}
		out.Jobs = append(out.Jobs, ms.jobs...)
		out.Machines = append(out.Machines, ms.stats)
	}
	sort.Slice(out.Jobs, func(i, j int) bool {
		if !out.Jobs[i].SubmitTime.Equal(out.Jobs[j].SubmitTime) {
			return out.Jobs[i].SubmitTime.Before(out.Jobs[j].SubmitTime)
		}
		return out.Jobs[i].ID < out.Jobs[j].ID
	})
	return out, nil
}

// queuedJob is a job waiting in a machine queue (study or background).
type queuedJob struct {
	spec      *JobSpec // nil for background jobs
	submit    float64  // seconds since sim start
	execSec   float64
	patience  float64 // 0 = infinite
	priority  float64 // fair-share score: lower runs first
	seq       int64   // tiebreaker
	userUsage *float64
	// pendingAtSubmit is the queue length observed at enqueue time,
	// kept for wait-prediction calibration.
	pendingAtSubmit int
}

// jobHeap is a min-heap on (priority, seq).
type jobHeap []*queuedJob

func (h jobHeap) less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority < h[j].priority
	}
	return h[i].seq < h[j].seq
}

func (h *jobHeap) push(j *queuedJob) {
	*h = append(*h, j)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h).less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *jobHeap) pop() *queuedJob {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(*h) && (*h).less(l, smallest) {
			smallest = l
		}
		if r < len(*h) && (*h).less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
	return top
}

type machineResult struct {
	jobs  []*trace.Job
	stats *trace.MachineStats
}

// fairSharePenalty converts recent machine-seconds of usage into queue
// priority penalty seconds: heavy users wait behind light users even
// when they submitted earlier, the IBM fair-share behavior the paper
// describes ("the order in which jobs complete is not necessarily the
// order in which they were submitted").
const fairSharePenalty = 8

// usageDecayHours is the half-life of fair-share usage accounting.
const usageDecayHours = 24

// simulateMachine runs the single-server queue for one machine. Job
// IDs are left zero; Simulate assigns them in deterministic fleet
// order after the parallel sweep.
func simulateMachine(cfg Config, m *backend.Machine, specs []*JobSpec) machineResult {
	r := rand.New(rand.NewSource(cfg.Seed*7919 + m.Seed))
	mstats := &trace.MachineStats{Name: m.Name, Qubits: m.NumQubits(), Public: m.Public}
	res := machineResult{stats: mstats}

	sort.Slice(specs, func(i, j int) bool { return specs[i].SubmitTime.Before(specs[j].SubmitTime) })

	simStart := cfg.Start
	toSec := func(t time.Time) float64 { return t.Sub(simStart).Seconds() }
	toTime := func(s float64) time.Time { return simStart.Add(time.Duration(s * float64(time.Second))) }

	online := m.Online
	if online.Before(cfg.Start) {
		online = cfg.Start
	}
	offline := cfg.End
	if !m.Retired.IsZero() && m.Retired.Before(offline) {
		offline = m.Retired
	}
	if !online.Before(offline) {
		return res // machine never online within the window
	}

	bg := newBackgroundStream(cfg.Background, m, r,
		toSec(online), toSec(offline),
		toSec(m.Online), toSec(backend.StudyEnd))

	// Maintenance downtimes: hardware drops offline for hours (rarely
	// days) roughly fortnightly. Backlogs built during downtime are the
	// source of the paper's day-plus queuing tail (Fig 3).
	downtimes := genDowntimes(r, toSec(online), toSec(offline))
	// Start times are monotone (the server is serial), so a moving
	// index suffices to apply downtime displacement in O(1) amortized.
	dtIdx := 0
	afterDowntime := func(t float64) float64 {
		for dtIdx < len(downtimes) && t >= downtimes[dtIdx][1] {
			dtIdx++
		}
		if dtIdx < len(downtimes) && t >= downtimes[dtIdx][0] {
			t = downtimes[dtIdx][1]
			dtIdx++
		}
		return t
	}

	// Fair-share usage accounting, exponentially decayed.
	usage := make(map[string]*float64)
	lastDecay := make(map[string]float64)
	chargedUsage := func(user string, now float64) *float64 {
		u, ok := usage[user]
		if !ok {
			v := 0.0
			u = &v
			usage[user] = u
			lastDecay[user] = now
		} else {
			dt := now - lastDecay[user]
			if dt > 0 {
				*u *= decayFactor(dt)
				lastDecay[user] = now
			}
		}
		return u
	}

	var queue jobHeap
	var seq int64
	var waitRatios []float64
	enqueue := func(spec *JobSpec, submit, execSec, patience float64, user string) {
		u := chargedUsage(user, submit)
		seq++
		queue.push(&queuedJob{
			spec: spec, submit: submit, execSec: execSec, patience: patience,
			priority: submit + fairSharePenalty*(*u), seq: seq, userUsage: u,
			pendingAtSubmit: len(queue),
		})
	}

	specIdx := 0
	nextSpecTime := func() (float64, bool) {
		if specIdx >= len(specs) {
			return 0, false
		}
		st := toSec(specs[specIdx].SubmitTime)
		if specs[specIdx].SubmitTime.Before(online) {
			// Submitted before machine online: queue at online time.
			st = toSec(online)
		}
		return st, true
	}

	endSec := toSec(offline)
	sampleEvery := cfg.PendingSampleEvery.Seconds()
	nextSample := toSec(online) + sampleEvery

	busyUntil := toSec(online)
	// admitArrivals pulls every arrival (study + background) with
	// submit time <= horizon into the queue.
	admitArrivals := func(horizon float64) {
		for {
			bgT, bgOK := bg.peek()
			spT, spOK := nextSpecTime()
			switch {
			case bgOK && bgT <= horizon && (!spOK || bgT <= spT):
				bg.next()
				execSec := bg.sampleExecSeconds(r)
				user := fmt.Sprintf("bg-%d", r.Intn(cfg.Background.Users))
				enqueue(nil, bgT, execSec, bg.samplePatience(r), user)
				mstats.BackgroundJobs++
			case spOK && spT <= horizon:
				s := specs[specIdx]
				specIdx++
				execSec := m.ExecSeconds(s.BatchSize, s.Shots, s.TotalDepth) * (0.9 + 0.2*r.Float64())
				enqueue(s, spT, execSec, s.PatienceSec, s.User)
			default:
				return
			}
		}
	}

	samplePending := func(now float64) {
		for nextSample <= now && nextSample <= endSec {
			mstats.PendingSamples = append(mstats.PendingSamples, trace.PendingSample{
				Machine: m.Name, Time: toTime(nextSample), Pending: len(queue),
			})
			nextSample += sampleEvery
		}
	}

	recordStudy := func(q *queuedJob, start, end float64, status trace.Status) {
		s := q.spec
		startT, endT := toTime(start), toTime(end)
		// Float-second round-tripping can land a nanosecond before the
		// submission instant; clamp to keep records consistent.
		if startT.Before(s.SubmitTime) {
			startT = s.SubmitTime
		}
		if endT.Before(startT) {
			endT = startT
		}
		j := &trace.Job{
			User: s.User, Machine: m.Name,
			MachineQubits: m.NumQubits(), Public: m.Public,
			CircuitName: s.CircuitName, BatchSize: s.BatchSize, Shots: s.Shots,
			Width: s.Width, TotalDepth: s.TotalDepth, TotalGateOps: s.TotalGateOps,
			CXTotal: s.CXTotal, MemSlots: s.MemSlots,
			SubmitTime: s.SubmitTime, StartTime: startT, EndTime: endT,
			Status:       status,
			CompileEpoch: m.CalibrationEpochAt(s.SubmitTime),
			ExecEpoch:    m.CalibrationEpochAt(startT),
		}
		res.jobs = append(res.jobs, j)
	}

	for {
		if len(queue) == 0 {
			// Idle: jump to the next arrival.
			bgT, bgOK := bg.peek()
			spT, spOK := nextSpecTime()
			if !bgOK && !spOK {
				break
			}
			t := spT
			if bgOK && (!spOK || bgT <= spT) {
				t = bgT
			}
			if t >= endSec {
				break
			}
			samplePending(t)
			admitArrivals(t)
			if busyUntil < t {
				busyUntil = t
			}
			continue
		}
		q := queue.pop()
		start := busyUntil
		if start < q.submit {
			start = q.submit
		}
		start = afterDowntime(start)
		if start >= endSec {
			// Machine retires/window closes with jobs still queued:
			// study jobs get cancelled at the boundary.
			if q.spec != nil {
				recordStudy(q, endSec, endSec, trace.StatusCancelled)
			}
			continue
		}
		if q.patience > 0 && start > q.submit+q.patience {
			// User gave up while waiting.
			if q.spec != nil {
				cancelAt := q.submit + q.patience
				recordStudy(q, cancelAt, cancelAt, trace.StatusCancelled)
			}
			continue
		}
		// Wait-prediction calibration sample (subsampled; background
		// jobs only, with a non-empty queue at submission).
		if q.spec == nil && q.pendingAtSubmit > 0 && q.seq%13 == 0 {
			ratio := (start - q.submit) / (float64(q.pendingAtSubmit) * bg.meanExec)
			waitRatios = append(waitRatios, ratio)
		}
		status := trace.StatusDone
		execSec := q.execSec
		if r.Float64() < cfg.ErrorRate {
			status = trace.StatusError
			execSec *= 0.5 // errored jobs die partway through
		}
		end := start + execSec
		if q.spec != nil {
			recordStudy(q, start, end, status)
		}
		// Charge fair-share usage at completion.
		*q.userUsage += execSec
		busyUntil = end
		samplePending(end)
		admitArrivals(end)
	}
	// Study jobs submitted after the machine went offline (or never
	// admitted before the loop ended) are recorded as cancelled.
	for ; specIdx < len(specs); specIdx++ {
		s := specs[specIdx]
		at := s.SubmitTime
		if at.Before(online) {
			at = online
		}
		res.jobs = append(res.jobs, &trace.Job{
			User: s.User, Machine: m.Name,
			MachineQubits: m.NumQubits(), Public: m.Public,
			CircuitName: s.CircuitName, BatchSize: s.BatchSize, Shots: s.Shots,
			Width: s.Width, TotalDepth: s.TotalDepth, TotalGateOps: s.TotalGateOps,
			CXTotal: s.CXTotal, MemSlots: s.MemSlots,
			SubmitTime: s.SubmitTime, StartTime: at, EndTime: at,
			Status:       trace.StatusCancelled,
			CompileEpoch: m.CalibrationEpochAt(s.SubmitTime),
			ExecEpoch:    m.CalibrationEpochAt(at),
		})
	}
	if len(waitRatios) >= 30 {
		sorted := stats.SortedCopy(waitRatios)
		qs := stats.QuantilesSorted(sorted, 0.1, 0.5, 0.9)
		mstats.WaitRatioP10, mstats.WaitRatioP50, mstats.WaitRatioP90 = qs[0], qs[1], qs[2]
	}
	return res
}

// decayFactor returns the exponential usage decay over dt seconds with
// a half-life of usageDecayHours.
func decayFactor(dt float64) float64 {
	return math.Exp2(-dt / (usageDecayHours * 3600))
}

// genDowntimes samples maintenance windows over [startSec, endSec):
// exponentially spaced (~12 day mean), log-normal duration with a
// median around six hours and a tail reaching multiple days.
func genDowntimes(r *rand.Rand, startSec, endSec float64) [][2]float64 {
	const meanGapDays = 18
	var out [][2]float64
	t := startSec + r.ExpFloat64()*meanGapDays*86400
	for t < endSec {
		dur := math.Exp(math.Log(12*3600) + 1.1*r.NormFloat64())
		if dur > 5*86400 {
			dur = 5 * 86400
		}
		out = append(out, [2]float64{t, math.Min(t+dur, endSec)})
		t += dur + r.ExpFloat64()*meanGapDays*86400
	}
	return out
}
