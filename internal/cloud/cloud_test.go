package cloud

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"qcloud/internal/backend"
	"qcloud/internal/stats"
	"qcloud/internal/trace"
)

// testWindow is a short simulation window keeping unit tests fast.
var testWindow = struct{ start, end time.Time }{
	start: time.Date(2021, 2, 1, 0, 0, 0, 0, time.UTC),
	end:   time.Date(2021, 2, 21, 0, 0, 0, 0, time.UTC),
}

func testConfig(seed int64, machines ...string) Config {
	fleet := backend.Fleet()
	var selected []*backend.Machine
	for _, name := range machines {
		for _, m := range fleet {
			if m.Name == name {
				selected = append(selected, m)
			}
		}
	}
	return Config{
		Seed: seed, Start: testWindow.start, End: testWindow.end,
		Machines: selected,
	}
}

func makeSpecs(machine string, n int, spacing time.Duration) []*JobSpec {
	specs := make([]*JobSpec, n)
	for i := range specs {
		specs[i] = &JobSpec{
			SubmitTime:  testWindow.start.Add(24*time.Hour + time.Duration(i)*spacing),
			User:        fmt.Sprintf("study-%d", i%5),
			Machine:     machine,
			BatchSize:   10 + i%50,
			Shots:       1024,
			CircuitName: "qft4",
			Width:       4, TotalDepth: 200, TotalGateOps: 700, CXTotal: 90, MemSlots: 4,
		}
	}
	return specs
}

func TestSimulateBasicInvariants(t *testing.T) {
	cfg := testConfig(1, "ibmq_rome")
	specs := makeSpecs("ibmq_rome", 100, 90*time.Minute)
	tr, err := Simulate(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 100 {
		t.Fatalf("jobs = %d, want 100", len(tr.Jobs))
	}
	for _, j := range tr.Jobs {
		if err := j.Validate(); err != nil {
			t.Fatal(err)
		}
		if j.QueueSeconds() < 0 {
			t.Fatalf("negative queue time: %+v", j)
		}
		if j.Status == trace.StatusDone && j.ExecSeconds() <= 0 {
			t.Fatalf("done job with no exec time: %+v", j)
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	cfg := testConfig(7, "ibmq_bogota")
	specs := makeSpecs("ibmq_bogota", 40, 2*time.Hour)
	a, err := Simulate(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg, makeSpecs("ibmq_bogota", 40, 2*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Jobs {
		if !a.Jobs[i].StartTime.Equal(b.Jobs[i].StartTime) || a.Jobs[i].Status != b.Jobs[i].Status {
			t.Fatalf("job %d differs across identical runs", i)
		}
	}
}

func TestSimulateUnknownMachine(t *testing.T) {
	cfg := testConfig(1, "ibmq_rome")
	if _, err := Simulate(cfg, []*JobSpec{{Machine: "nope", SubmitTime: testWindow.start, BatchSize: 1, Shots: 1}}); err == nil {
		t.Fatal("unknown machine should fail")
	}
}

func TestPublicMachineQueuesLonger(t *testing.T) {
	cfg := testConfig(3, "ibmq_athens", "ibmq_bogota")
	var specs []*JobSpec
	specs = append(specs, makeSpecs("ibmq_athens", 60, 4*time.Hour)...)
	specs = append(specs, makeSpecs("ibmq_bogota", 60, 4*time.Hour)...)
	tr, err := Simulate(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	var athens, bogota []float64
	for _, j := range tr.Jobs {
		if j.Status == trace.StatusCancelled {
			continue
		}
		q := j.QueueSeconds() / 60
		if j.Machine == "ibmq_athens" {
			athens = append(athens, q)
		} else {
			bogota = append(bogota, q)
		}
	}
	if stats.Median(athens) <= stats.Median(bogota) {
		t.Fatalf("public athens median queue %v min should exceed private bogota %v min",
			stats.Median(athens), stats.Median(bogota))
	}
}

func TestErrorRateApproximate(t *testing.T) {
	cfg := testConfig(5, "ibmq_rome")
	cfg.ErrorRate = 0.2 // exaggerate to measure with fewer jobs
	specs := makeSpecs("ibmq_rome", 300, 30*time.Minute)
	tr, err := Simulate(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	errors := 0
	completed := 0
	for _, j := range tr.Jobs {
		if j.Status == trace.StatusCancelled {
			continue
		}
		completed++
		if j.Status == trace.StatusError {
			errors++
		}
	}
	frac := float64(errors) / float64(completed)
	if frac < 0.1 || frac > 0.3 {
		t.Fatalf("error fraction = %v, want ~0.2", frac)
	}
}

func TestPatienceCancellation(t *testing.T) {
	cfg := testConfig(6, "ibmq_athens") // saturated public machine
	specs := makeSpecs("ibmq_athens", 50, time.Hour)
	for _, s := range specs {
		s.PatienceSec = 30 // nobody waits half a minute on athens
	}
	tr, err := Simulate(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	cancelled := 0
	for _, j := range tr.Jobs {
		if j.Status == trace.StatusCancelled {
			cancelled++
			if j.ExecSeconds() != 0 {
				t.Fatal("cancelled job should not execute")
			}
		}
	}
	if cancelled < len(specs)/2 {
		t.Fatalf("cancelled = %d of %d, expected most to give up", cancelled, len(specs))
	}
}

func TestPendingSamplesRecorded(t *testing.T) {
	cfg := testConfig(8, "ibmq_athens", "ibmq_rome")
	tr, err := Simulate(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]*trace.MachineStats)
	for _, ms := range tr.Machines {
		byName[ms.Name] = ms
	}
	athens, rome := byName["ibmq_athens"], byName["ibmq_rome"]
	if athens == nil || rome == nil {
		t.Fatal("machine stats missing")
	}
	if len(athens.PendingSamples) < 20 {
		t.Fatalf("athens pending samples = %d, want many", len(athens.PendingSamples))
	}
	if athens.BackgroundJobs == 0 {
		t.Fatal("background load missing on athens")
	}
	// Fig 9 shape: the public machine's average pending queue exceeds
	// the private machine's.
	avg := func(ms *trace.MachineStats) float64 {
		s := 0.0
		for _, p := range ms.PendingSamples {
			s += float64(p.Pending)
		}
		return s / float64(len(ms.PendingSamples))
	}
	if avg(athens) <= avg(rome) {
		t.Fatalf("avg pending: athens %v <= rome %v", avg(athens), avg(rome))
	}
}

func TestOfflineMachineProducesNoBackground(t *testing.T) {
	cfg := testConfig(9, "ibmq_20_tokyo") // retired 2019, window is 2021
	tr, err := Simulate(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, ms := range tr.Machines {
		if ms.BackgroundJobs != 0 {
			t.Fatal("retired machine should process nothing")
		}
	}
}

func TestJobsAfterRetirementCancelled(t *testing.T) {
	fleet := backend.Fleet()
	var tokyo *backend.Machine
	for _, m := range fleet {
		if m.Name == "ibmq_20_tokyo" {
			tokyo = m
		}
	}
	cfg := Config{
		Seed:     10,
		Start:    time.Date(2019, 8, 15, 0, 0, 0, 0, time.UTC),
		End:      time.Date(2019, 10, 15, 0, 0, 0, 0, time.UTC),
		Machines: []*backend.Machine{tokyo},
	}
	// Tokyo retires 2019-09-01; submit after that.
	spec := &JobSpec{
		SubmitTime: time.Date(2019, 9, 20, 0, 0, 0, 0, time.UTC),
		User:       "late", Machine: "ibmq_20_tokyo",
		BatchSize: 5, Shots: 1024, Width: 4,
	}
	tr, err := Simulate(cfg, []*JobSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 1 || tr.Jobs[0].Status != trace.StatusCancelled {
		t.Fatalf("late job should be cancelled: %+v", tr.Jobs)
	}
}

func TestFairShareReordersHeavyUser(t *testing.T) {
	// One user floods the queue; a light user submitting later should
	// start before the flood finishes.
	fleet := backend.Fleet()
	var rome *backend.Machine
	for _, m := range fleet {
		if m.Name == "ibmq_rome" {
			rome = m
		}
	}
	cfg := Config{
		Seed: 11, Start: testWindow.start, End: testWindow.end,
		Machines: []*backend.Machine{rome},
		// Silence background load so the test isolates fair-share.
		Background: &BackgroundModel{
			Users: 1, PublicUtil: 0, PrivateUtil: 0,
			RampFraction: 1, RampFloor: 0,
			BatchDist: stats.Uniform{Lo: 1, Hi: 2}, ShotsDist: stats.Uniform{Lo: 1024, Hi: 1025},
			MeanPatienceSec: 1e9,
		},
	}
	base := testWindow.start.Add(24 * time.Hour)
	var specs []*JobSpec
	for i := 0; i < 30; i++ {
		specs = append(specs, &JobSpec{
			SubmitTime: base.Add(time.Duration(i) * time.Second),
			User:       "hog", Machine: "ibmq_rome",
			BatchSize: 900, Shots: 8192, CircuitName: "flood",
			Width: 4, TotalDepth: 100,
		})
	}
	specs = append(specs, &JobSpec{
		SubmitTime: base.Add(10 * time.Minute),
		User:       "light", Machine: "ibmq_rome",
		BatchSize: 1, Shots: 1024, CircuitName: "tiny", Width: 2,
	})
	tr, err := Simulate(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	var lightStart time.Time
	hogDone := 0
	for _, j := range tr.Jobs {
		if j.User == "light" {
			lightStart = j.StartTime
		}
	}
	for _, j := range tr.Jobs {
		if j.User == "hog" && j.EndTime.Before(lightStart) {
			hogDone++
		}
	}
	if hogDone >= 29 {
		t.Fatalf("light user waited behind %d hog jobs; fair share failed", hogDone)
	}
}

// TestLittlesLawHolds validates the queueing core scientifically: in a
// (near) steady-state single-server queue, the time-averaged queue
// length L must approximately equal arrival rate x average wait
// (Little's law). Probe jobs with negligible service time measure W.
func TestLittlesLawHolds(t *testing.T) {
	fleet := backend.Fleet()
	var m *backend.Machine
	for _, mm := range fleet {
		if mm.Name == "ibmq_toronto" {
			m = mm
		}
	}
	cfg := Config{
		Seed:  21,
		Start: time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC),
		End:   time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC),
		// Fine sampling for an accurate L.
		PendingSampleEvery: 15 * time.Minute,
		Machines:           []*backend.Machine{m},
	}
	// Probe jobs: tiny, frequent, spread across distinct users so
	// fair-share does not systematically favor them as a group.
	var probes []*JobSpec
	for i := 0; i < 500; i++ {
		probes = append(probes, &JobSpec{
			SubmitTime: cfg.Start.Add(time.Duration(i)*170*time.Minute + 24*time.Hour),
			User:       fmt.Sprintf("probe-%d", i),
			Machine:    m.Name, BatchSize: 1, Shots: 1024, Width: 2,
		})
	}
	tr, err := Simulate(cfg, probes)
	if err != nil {
		t.Fatal(err)
	}
	// L: time-averaged pending count.
	var ms *trace.MachineStats
	for _, s := range tr.Machines {
		if s.Name == m.Name {
			ms = s
		}
	}
	var lSum float64
	for _, p := range ms.PendingSamples {
		lSum += float64(p.Pending)
	}
	L := lSum / float64(len(ms.PendingSamples))
	// λ: background jobs per second over the window (probes negligible).
	window := cfg.End.Sub(cfg.Start).Seconds()
	lambda := float64(ms.BackgroundJobs) / window
	// W: waiting time measured by the probes (queue wait only, since L
	// counts queued-not-running jobs).
	var wSum float64
	n := 0
	for _, j := range tr.Jobs {
		if j.Status == trace.StatusCancelled {
			continue
		}
		wSum += j.QueueSeconds()
		n++
	}
	W := wSum / float64(n)
	ratio := L / (lambda * W)
	// Bursty arrivals, fair-share reordering and probe bias keep this
	// from being exact; a factor-2 agreement validates the core.
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("Little's law violated: L=%.1f lambda=%.5f/s W=%.0fs ratio=%.2f",
			L, lambda, W, ratio)
	}
}

func TestWithDefaultsErrorRate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want float64
	}{
		{"zero means default", Config{}, 0.035},
		{"explicit rate kept", Config{ErrorRate: 0.2}, 0.2},
		{"NoErrors disables", Config{NoErrors: true}, 0},
		{"NoErrors wins over a rate", Config{NoErrors: true, ErrorRate: 0.5}, 0},
	}
	for _, c := range cases {
		if got := c.cfg.withDefaults().ErrorRate; got != c.want {
			t.Errorf("%s: ErrorRate = %v, want %v", c.name, got, c.want)
		}
	}
}

// downtimeSim builds a bare machineSim carrying only the downtime
// cursor state afterDowntime needs.
func downtimeSim(windows [][2]float64, endSec float64) *machineSim {
	ms := &machineSim{endSec: endSec}
	for _, w := range windows {
		ms.downtimes = append(ms.downtimes, dtWin{start: w[0], end: w[1]})
	}
	return ms
}

func TestGenDowntimesClippedAtEnd(t *testing.T) {
	// Scan seeds for a window whose sampled duration overruns the end
	// of the simulation: its clipped end must land exactly on endSec.
	const endSec = 40 * 86400
	clipped := false
	for seed := int64(0); seed < 200 && !clipped; seed++ {
		r := rand.New(rand.NewSource(seed))
		wins := genDowntimes(r, 0, endSec)
		for _, w := range wins {
			if w[1] > endSec {
				t.Fatalf("seed %d: downtime %v extends past endSec", seed, w)
			}
			if w[1] == endSec {
				clipped = true
			}
		}
	}
	if !clipped {
		t.Fatal("no seed produced an end-clipped downtime; clipping untested")
	}
}

func TestAfterDowntimeBoundaries(t *testing.T) {
	wins := [][2]float64{{100, 200}, {400, 500}}
	ms := downtimeSim(wins, 1e9)
	// A start landing exactly on a window's opening boundary is
	// displaced to its end.
	if got := ms.afterDowntime(100); got != 200 {
		t.Fatalf("start at window open: got %v, want 200", got)
	}
	// A start landing exactly on a window's closing boundary is not
	// displaced: the machine is back up.
	if got := ms.afterDowntime(200); got != 200 {
		t.Fatalf("start at window close: got %v, want 200 (no displacement)", got)
	}
	// Starts strictly inside a later window displace to its end; the
	// moving cursor must have skipped the earlier window.
	if got := ms.afterDowntime(450); got != 500 {
		t.Fatalf("start inside second window: got %v, want 500", got)
	}
	// Monotone starts clear of any window pass through untouched.
	if got := ms.afterDowntime(600); got != 600 {
		t.Fatalf("start after all windows: got %v, want 600", got)
	}
}

func TestAfterDowntimeBackToBackDisplacesTwice(t *testing.T) {
	// Two abutting windows: a start in the first must hop over both,
	// not land on the shared boundary inside the second outage.
	ms := downtimeSim([][2]float64{{100, 200}, {200, 300}}, 1e9)
	if got := ms.afterDowntime(150); got != 300 {
		t.Fatalf("back-to-back downtime: got %v, want 300 (double displacement)", got)
	}
	// Three in a row for good measure.
	ms = downtimeSim([][2]float64{{10, 20}, {20, 30}, {30, 45}}, 1e9)
	if got := ms.afterDowntime(12); got != 45 {
		t.Fatalf("triple back-to-back downtime: got %v, want 45", got)
	}
}

func TestDowntimesDeterministicAndBounded(t *testing.T) {
	r1 := rand.New(rand.NewSource(5))
	r2 := rand.New(rand.NewSource(5))
	a := genDowntimes(r1, 0, 200*86400)
	b := genDowntimes(r2, 0, 200*86400)
	if len(a) != len(b) {
		t.Fatal("downtimes not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("downtimes not deterministic")
		}
		if a[i][1] <= a[i][0] {
			t.Fatal("empty downtime interval")
		}
		if a[i][1]-a[i][0] > 5*86400+1 {
			t.Fatalf("downtime longer than the 5-day cap: %v", a[i])
		}
		if i > 0 && a[i][0] < a[i-1][1] {
			t.Fatal("downtimes overlap")
		}
	}
	if len(a) < 4 || len(a) > 40 {
		t.Fatalf("downtime count %d implausible for 200 days", len(a))
	}
}
