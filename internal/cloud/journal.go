package cloud

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qcloud/internal/journal"
	"qcloud/internal/par"
	"qcloud/internal/trace"
)

// JournalConfig turns on the session's durable journaling mode: every
// finished job record streams into an append-only journal directory
// instead of accumulating in memory, and the session auto-checkpoints
// itself every CheckpointEvery of simulated time. A run killed at any
// point is resumed with Recover, which loads the newest valid
// checkpoint, replays the input log's suffix, and continues to a trace
// byte-identical to an uninterrupted run.
//
// Layout of Dir: one journal stream per machine (m_<name>/), the
// session input log (submits/), and checkpoint files (ckpt-NNNNNNNN.qcsn).
type JournalConfig struct {
	// Dir is the journal directory. Open requires its streams to be
	// empty (a fresh run); Recover requires them to exist.
	Dir string
	// CheckpointEvery is the auto-checkpoint cadence in simulated time
	// (default 30 days). Shorter cadence = less journal to re-simulate
	// after a crash, at the cost of more checkpoint writes.
	CheckpointEvery time.Duration
	// SegmentBytes and SyncEvery tune the underlying journal streams
	// (segment rotation size and per-stream fsync cadence in records);
	// zero values use the journal package defaults. Acknowledged
	// submissions are additionally flushed to the OS on every accept,
	// so a process kill never loses accepted input.
	SegmentBytes int64
	SyncEvery    int

	// Test hooks (white-box): kill the session deterministically after
	// N journal appends, cap write retries, intercept segment file
	// opens with a faulty writer, or write the input log in the legacy
	// gob framing (to pin that old journals stay recoverable).
	killAfterRecords int64
	retryAppends     int
	openFile         func(path string) (journal.File, error)
	legacyGobSubmits bool
}

func (jc *JournalConfig) withDefaults() *JournalConfig {
	q := *jc
	if q.CheckpointEvery <= 0 {
		q.CheckpointEvery = 30 * 24 * time.Hour
	}
	return &q
}

func (jc *JournalConfig) options() journal.Options {
	return journal.Options{
		SegmentBytes: jc.SegmentBytes,
		SyncEvery:    jc.SyncEvery,
		RetryAppends: jc.retryAppends,
		OpenFile:     jc.openFile,
	}
}

// Journal record types: the first payload byte of every frame.
const (
	jrecJob     byte = 1 // machine stream: one trace.Job (binary codec)
	jrecStats   byte = 2 // machine stream: the machine's final MachineStats (gob)
	jrecEnd     byte = 3 // machine stream: seal marker — the run completed
	jrecSubmit  byte = 4 // input log: one accepted study submission (legacy gob)
	jrecSubmit2 byte = 5 // input log: one accepted study submission (binary codec)
)

// journalSubmit is one accepted study submission in the input log.
// SubmitSeq is the machine's submit-fault sequence after acceptance,
// so replay restores the deterministic rejection stream without
// re-deciding attempts that already happened.
type journalSubmit struct {
	Machine   string
	SubmitSeq int64
	Spec      JobSpec
}

// errJournalKilled reports a session halted by the deterministic
// in-process kill hook (crash-recovery tests only).
var errJournalKilled = errors.New("cloud: journal session killed by test hook")

func submitStreamDir(dir string) string { return filepath.Join(dir, "submits") }
func machineStreamDir(dir, name string) string {
	return filepath.Join(dir, "m_"+name)
}
func ckptFilePath(dir string, seq int64) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%08d.qcsn", seq))
}

// sessionJournal is the session's durable-journaling state: one writer
// per machine stream (owned by that machine's advance goroutine), the
// input log (owned by the driver goroutine), the auto-checkpoint
// cursor, and the halt latch that fail-stops every machine when a
// write outlives its retries (or the kill hook fires).
type sessionJournal struct {
	jc    *JournalConfig
	every time.Duration

	submits  *journal.Writer
	machines []*journal.Writer
	// subBuf is the reused input-log encode buffer; appendSubmit runs
	// only on the driver goroutine (Submit), so no lock is needed.
	subBuf []byte

	nextCkpt time.Time
	seq      int64
	ckpts    int

	// stop is the hot-path halt latch machines poll each event-loop
	// iteration; mu guards the cold fields behind it.
	stop      atomic.Bool
	killAfter int64
	appended  atomic.Int64

	mu       sync.Mutex
	err      error
	isKilled bool
	closed   bool
	closeErr error
}

// openSessionJournal creates fresh journal streams for a newly opened
// session. Existing streams are an error: resuming one is Recover's
// job, and silently appending to it would corrupt the record counts
// its checkpoints pin.
func openSessionJournal(s *Session, jc *JournalConfig) error {
	jr := &sessionJournal{jc: jc, every: jc.CheckpointEvery, killAfter: jc.killAfterRecords}
	opts := jc.options()
	var err error
	if jr.submits, err = journal.Create(submitStreamDir(jc.Dir), opts); err != nil {
		return fmt.Errorf("cloud: open journal (did you mean Recover?): %w", err)
	}
	jr.machines = make([]*journal.Writer, len(s.sims))
	for i, ms := range s.sims {
		if jr.machines[i], err = journal.Create(machineStreamDir(jc.Dir, ms.m.Name), opts); err != nil {
			return fmt.Errorf("cloud: open journal (did you mean Recover?): %w", err)
		}
	}
	jr.nextCkpt = s.cfg.Start.Add(jr.every)
	s.jr = jr
	return nil
}

// append frames payload into w unless the session has halted. The kill
// hook counts every append across all streams, so crash points are
// deterministic for a serial session.
func (jr *sessionJournal) append(w *journal.Writer, payload []byte) {
	if jr.stop.Load() {
		return
	}
	if jr.killAfter > 0 && jr.appended.Add(1) > jr.killAfter {
		jr.kill()
		return
	}
	if err := w.Append(payload); err != nil {
		jr.fail(err)
	}
}

func (jr *sessionJournal) kill() {
	jr.mu.Lock()
	jr.isKilled = true
	jr.mu.Unlock()
	jr.stop.Store(true)
}

// fail latches the first journal write error and halts the session:
// persistent write failures fail-stop rather than silently continuing
// undurable.
func (jr *sessionJournal) fail(err error) {
	jr.mu.Lock()
	if jr.err == nil {
		jr.err = fmt.Errorf("cloud: journal write failed; session is fail-stopped: %w", err)
	}
	jr.mu.Unlock()
	jr.stop.Store(true)
}

// haltErr reports why the session halted (nil while healthy).
func (jr *sessionJournal) haltErr() error {
	if !jr.stop.Load() {
		return nil
	}
	jr.mu.Lock()
	defer jr.mu.Unlock()
	if jr.err != nil {
		return jr.err
	}
	if jr.isKilled {
		return errJournalKilled
	}
	return nil
}

// appendSubmit records an accepted study submission in the input log
// and flushes it to the OS, so a process kill cannot lose a submission
// the caller saw accepted.
func (jr *sessionJournal) appendSubmit(ms *machineSim, spec *JobSpec) error {
	if err := jr.haltErr(); err != nil {
		return err
	}
	if jr.jc.legacyGobSubmits {
		// Legacy framing, kept behind a test hook so the read path's
		// old-format support stays exercised.
		var buf bytes.Buffer
		buf.WriteByte(jrecSubmit)
		if err := gob.NewEncoder(&buf).Encode(journalSubmit{Machine: ms.m.Name, SubmitSeq: ms.submitSeq, Spec: *spec}); err != nil {
			return fmt.Errorf("cloud: encode submit record: %w", err)
		}
		jr.append(jr.submits, buf.Bytes())
	} else {
		jr.subBuf = appendSubmitRecord(jr.subBuf[:0], ms.m.Name, ms.submitSeq, spec)
		jr.append(jr.submits, jr.subBuf)
	}
	if err := jr.haltErr(); err != nil {
		return err
	}
	if err := jr.submits.Flush(); err != nil {
		jr.fail(err)
		return jr.haltErr()
	}
	return nil
}

// appendJob records a finished job in ms's machine stream (replacing
// the in-memory ms.jobs append of plain sessions).
func (jr *sessionJournal) appendJob(ms *machineSim, j *trace.Job) {
	ms.jbuf = append(ms.jbuf[:0], jrecJob)
	ms.jbuf = trace.AppendJob(ms.jbuf, j)
	jr.append(jr.machines[ms.idx], ms.jbuf)
}

// close seals every stream. After a halt the writers are abandoned
// instead — buffered frames are dropped exactly as the crash being
// modeled would drop them.
func (jr *sessionJournal) close() error {
	jr.mu.Lock()
	if jr.closed {
		defer jr.mu.Unlock()
		return jr.closeErr
	}
	jr.closed = true
	jr.mu.Unlock()
	all := append([]*journal.Writer{jr.submits}, jr.machines...)
	if jr.stop.Load() {
		for _, w := range all {
			w.Abandon()
		}
		err := jr.haltErr()
		jr.mu.Lock()
		jr.closeErr = err
		jr.mu.Unlock()
		return err
	}
	var first error
	for _, w := range all {
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
	}
	jr.mu.Lock()
	jr.closeErr = first
	jr.mu.Unlock()
	return first
}

// journalAfterAdvance runs on the driver goroutine after every
// AdvanceTo: flush machine streams (so an OS-surviving kill keeps all
// records emitted so far) and write the auto-checkpoint when the
// frontier crosses the cadence. Errors latch into the halt state and
// surface on the next Submit/Checkpoint/Run/DrainJournal call.
func (s *Session) journalAfterAdvance(t time.Time) {
	jr := s.jr
	if jr.stop.Load() {
		return
	}
	for _, w := range jr.machines {
		if err := w.Flush(); err != nil {
			jr.fail(err)
			return
		}
	}
	if jr.nextCkpt.After(t) {
		return
	}
	next := jr.nextCkpt
	for !next.After(t) {
		next = next.Add(jr.every)
	}
	if err := s.writeJournalCheckpoint(next); err != nil {
		jr.fail(err)
		return
	}
	jr.nextCkpt = next
}

// writeJournalCheckpoint persists a checkpoint pinned to the journal
// streams' current record counts. Streams are fsynced first: a
// checkpoint is only usable if the journals durably hold at least the
// counts it records, so the sync order is journals before checkpoint.
func (s *Session) writeJournalCheckpoint(nextCkpt time.Time) error {
	jr := s.jr
	for _, w := range jr.machines {
		if err := w.Sync(); err != nil {
			return err
		}
	}
	if err := jr.submits.Sync(); err != nil {
		return err
	}
	ck, err := s.Checkpoint()
	if err != nil {
		return err
	}
	ck.JournalMachineRecords = make([]int64, len(jr.machines))
	for i, w := range jr.machines {
		ck.JournalMachineRecords[i] = w.Records()
	}
	ck.JournalSubmits = jr.submits.Records()
	jr.seq++
	ck.JournalSeq = jr.seq
	ck.JournalNextCkpt = nextCkpt
	path := ckptFilePath(jr.jc.Dir, jr.seq)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCheckpoint(f, ck); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	jr.ckpts++
	return nil
}

// JournalStats summarizes a drained journaled session.
type JournalStats struct {
	// Records and Bytes count frames across every stream (jobs, stats
	// and seal markers, plus the input log).
	Records int64
	Bytes   int64
	// JobRecords counts finished-job frames alone.
	JobRecords int64
	// Checkpoints is the number of auto-checkpoints written.
	Checkpoints int
}

// HeldTraceEntries reports how many finished trace records the session
// currently retains in memory — the journaled-session RSS proxy. A
// journal-mode session streams records to disk and holds none; a plain
// session holds one per finished study job.
func (s *Session) HeldTraceEntries() int {
	n := 0
	for _, ms := range s.sims {
		n += len(ms.jobs)
	}
	return n
}

// DrainJournal runs a journaled session to completion — stepping the
// fleet at the checkpoint cadence, finalizing, and sealing every
// stream — without materializing the trace in memory. This is the
// constant-memory path for million-job sessions: consume events
// through Observe/ObserveBuffered while it runs, and read the trace
// back later with ReadJournalTrace if needed. The session is closed
// when it returns.
func (s *Session) DrainJournal() (JournalStats, error) {
	if s.closed {
		return JournalStats{}, ErrSessionClosed
	}
	if s.jr == nil {
		return JournalStats{}, errors.New("cloud: DrainJournal on a session without a journal (set Config.Journal)")
	}
	st, err := s.drainJournal()
	s.Close()
	return st, err
}

func (s *Session) drainJournal() (JournalStats, error) {
	jr := s.jr
	for jr.nextCkpt.Before(s.cfg.End) && !jr.stop.Load() {
		s.AdvanceTo(jr.nextCkpt)
	}
	if err := jr.haltErr(); err != nil {
		jr.close()
		return JournalStats{}, err
	}
	par.ForEach(len(s.sims), s.cfg.Workers, func(i int) {
		s.sims[i].finalize()
	})
	if err := jr.haltErr(); err != nil {
		jr.close()
		return JournalStats{}, err
	}
	// Seal each machine stream: final stats, then the end marker. Both
	// appended from the driver goroutine — the machines are done.
	for i, ms := range s.sims {
		var buf bytes.Buffer
		buf.WriteByte(jrecStats)
		if err := gob.NewEncoder(&buf).Encode(ms.mstats); err != nil {
			jr.close()
			return JournalStats{}, fmt.Errorf("cloud: encode machine stats: %w", err)
		}
		jr.append(jr.machines[i], buf.Bytes())
		jr.append(jr.machines[i], []byte{jrecEnd})
	}
	if err := jr.haltErr(); err != nil {
		jr.close()
		return JournalStats{}, err
	}
	var st JournalStats
	for _, w := range append([]*journal.Writer{jr.submits}, jr.machines...) {
		st.Records += w.Records()
		st.Bytes += w.Bytes()
	}
	st.JobRecords = st.Records - jr.submits.Records() - 2*int64(len(jr.machines))
	st.Checkpoints = jr.ckpts
	if err := jr.close(); err != nil {
		return st, err
	}
	return st, nil
}

// JournaledSubmits returns how many accepted study submissions the
// input log holds (replayed ones included, after Recover). A driver
// resuming a deterministic submission stream skips this many specs and
// submits the rest.
func (s *Session) JournaledSubmits() int64 {
	if s.jr == nil {
		return 0
	}
	return s.jr.submits.Records()
}

// Recover reopens a crashed (or interrupted) journaled session from
// its journal directory: it picks the newest checkpoint whose pinned
// record counts the streams can still satisfy, restores it, truncates
// each machine stream back to exactly the checkpoint's counts (those
// records regenerate deterministically), replays the input log's
// accepted submissions past the checkpoint, and resumes. With no
// usable checkpoint it restarts from the window start, replaying every
// accepted submission. Either way the finished trace is byte-identical
// to an uninterrupted run.
//
// cfg must be the original run's config with Journal.Dir set to the
// journal directory.
func Recover(cfg Config) (*Session, error) {
	if cfg.Journal == nil || cfg.Journal.Dir == "" {
		return nil, errors.New("cloud: Recover needs Config.Journal.Dir")
	}
	c := cfg.withDefaults()
	jc := c.Journal.withDefaults()
	if _, err := os.Stat(submitStreamDir(jc.Dir)); err != nil {
		return nil, fmt.Errorf("cloud: %s is not a session journal (no input log): %w", jc.Dir, err)
	}
	subScan, err := journal.Scan(submitStreamDir(jc.Dir))
	if err != nil {
		return nil, err
	}
	mScans := make([]journal.ScanResult, len(c.Machines))
	for i, m := range c.Machines {
		if mScans[i], err = journal.Scan(machineStreamDir(jc.Dir, m.Name)); err != nil {
			return nil, err
		}
	}
	chosen, chosenSeq, err := pickCheckpoint(c, jc.Dir, subScan, mScans)
	if err != nil {
		return nil, err
	}
	// Build the restored session with journaling detached, then attach
	// resumed writers (Open with a Journal config creates fresh
	// streams, which is exactly wrong here).
	base := c
	base.Journal = nil
	var s *Session
	if chosen != nil {
		s, err = Restore(base, chosen)
	} else {
		s, err = Open(base)
	}
	if err != nil {
		return nil, err
	}
	s.cfg.Journal = jc
	// Checkpoints newer than the chosen one are unusable (invalid, or
	// ahead of what the streams hold); the resumed run re-numbers from
	// the chosen sequence.
	if err := removeCheckpointsAfter(jc.Dir, chosenSeq); err != nil {
		return nil, err
	}
	jr := &sessionJournal{jc: jc, every: jc.CheckpointEvery, killAfter: jc.killAfterRecords}
	opts := jc.options()
	if jr.submits, err = journal.OpenAt(submitStreamDir(jc.Dir), subScan.Records, opts); err != nil {
		return nil, err
	}
	jr.machines = make([]*journal.Writer, len(s.sims))
	for i, ms := range s.sims {
		var at int64
		if chosen != nil {
			at = chosen.JournalMachineRecords[i]
		}
		if jr.machines[i], err = journal.OpenAt(machineStreamDir(jc.Dir, ms.m.Name), at, opts); err != nil {
			return nil, err
		}
	}
	jr.seq = chosenSeq
	if chosen != nil {
		jr.nextCkpt = chosen.JournalNextCkpt
	} else {
		jr.nextCkpt = s.cfg.Start.Add(jr.every)
	}
	s.jr = jr
	// Replay the input log's suffix: accepted submissions after the
	// checkpoint re-enter exactly as first accepted (the recorded
	// submit-fault sequence bypasses re-deciding their attempts).
	var from int64
	if chosen != nil {
		from = chosen.JournalSubmits
	}
	_, err = journal.ForEach(submitStreamDir(jc.Dir), func(rec int64, payload []byte) error {
		if rec < from {
			return nil
		}
		var js journalSubmit
		switch {
		case len(payload) == 0:
			return fmt.Errorf("cloud: input log record %d is not a submission", rec)
		case payload[0] == jrecSubmit2:
			var err error
			if js, err = decodeSubmitRecord(payload[1:]); err != nil {
				return fmt.Errorf("cloud: decode input log record %d: %w", rec, err)
			}
		case payload[0] == jrecSubmit:
			// Legacy gob framing, kept readable so pre-existing journal
			// directories recover unchanged.
			if err := gob.NewDecoder(bytes.NewReader(payload[1:])).Decode(&js); err != nil {
				return fmt.Errorf("cloud: decode input log record %d: %w", rec, err)
			}
		default:
			return fmt.Errorf("cloud: input log record %d is not a submission", rec)
		}
		ms := s.byName[js.Machine]
		if ms == nil {
			return fmt.Errorf("cloud: input log record %d targets unknown machine %q", rec, js.Machine)
		}
		return ms.resubmitJournaled(&js.Spec, js.SubmitSeq)
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// pickCheckpoint returns the newest on-disk checkpoint that validates
// (config identity, checksum) and whose pinned counts the scanned
// streams satisfy — nil if none, meaning recovery restarts from the
// window start.
func pickCheckpoint(c Config, dir string, subScan journal.ScanResult, mScans []journal.ScanResult) (*Checkpoint, int64, error) {
	seqs, err := listCheckpointSeqs(dir)
	if err != nil {
		return nil, 0, err
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		ck, err := readCheckpointFile(ckptFilePath(dir, seqs[i]))
		if err != nil {
			continue // torn or corrupt (CRC): fall back to an older one
		}
		if !checkpointUsable(c, ck, subScan, mScans) {
			continue
		}
		return ck, seqs[i], nil
	}
	return nil, 0, nil
}

func checkpointUsable(c Config, ck *Checkpoint, subScan journal.ScanResult, mScans []journal.ScanResult) bool {
	if c.Seed != ck.Seed || !c.Start.Equal(ck.Start) || !c.End.Equal(ck.End) {
		return false
	}
	if len(ck.JournalMachineRecords) != len(mScans) || ck.JournalSubmits > subScan.Records {
		return false
	}
	for i, n := range ck.JournalMachineRecords {
		if n > mScans[i].Records {
			return false
		}
	}
	return true
}

func listCheckpointSeqs(dir string) ([]int64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []int64
	for _, e := range ents {
		name := e.Name()
		stem, ok := strings.CutPrefix(name, "ckpt-")
		if !ok {
			continue
		}
		stem, ok = strings.CutSuffix(stem, ".qcsn")
		if !ok {
			continue
		}
		n, err := strconv.ParseInt(stem, 10, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, n)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

func removeCheckpointsAfter(dir string, seq int64) error {
	seqs, err := listCheckpointSeqs(dir)
	if err != nil {
		return err
	}
	for _, n := range seqs {
		if n > seq {
			if err := os.Remove(ckptFilePath(dir, n)); err != nil {
				return err
			}
		}
	}
	return nil
}

func readCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCheckpoint(f)
}

// ReadJournalTrace assembles the finished trace from a sealed journal
// directory, assigning job IDs exactly as Session.Run does (fleet
// order, then record order, then a (SubmitTime, ID) sort) so the
// result is byte-identical to the in-memory trace. It fails on an
// unsealed stream — that journal belongs to a crashed run and needs
// Recover first.
func ReadJournalTrace(cfg Config) (*trace.Trace, error) {
	c := cfg.withDefaults()
	if c.Journal == nil || c.Journal.Dir == "" {
		return nil, errors.New("cloud: ReadJournalTrace needs Config.Journal.Dir")
	}
	out := &trace.Trace{}
	var nextID int64
	for _, m := range c.Machines {
		sealed := false
		var mstats *trace.MachineStats
		dir := machineStreamDir(c.Journal.Dir, m.Name)
		_, err := journal.ForEach(dir, func(rec int64, payload []byte) error {
			if len(payload) == 0 {
				return fmt.Errorf("cloud: %s record %d is empty", dir, rec)
			}
			if sealed {
				return fmt.Errorf("cloud: %s has records past its seal marker", dir)
			}
			switch payload[0] {
			case jrecJob:
				j, err := trace.DecodeJob(payload[1:])
				if err != nil {
					return fmt.Errorf("cloud: %s record %d: %w", dir, rec, err)
				}
				nextID++
				j.ID = nextID
				out.Jobs = append(out.Jobs, j)
			case jrecStats:
				var st trace.MachineStats
				if err := gob.NewDecoder(bytes.NewReader(payload[1:])).Decode(&st); err != nil {
					return fmt.Errorf("cloud: %s record %d: %w", dir, rec, err)
				}
				mstats = &st
			case jrecEnd:
				sealed = true
			default:
				return fmt.Errorf("cloud: %s record %d has unknown type %d", dir, rec, payload[0])
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if !sealed || mstats == nil {
			return nil, fmt.Errorf("cloud: journal stream for %s is not sealed — the run did not complete (use Recover)", m.Name)
		}
		out.Machines = append(out.Machines, mstats)
	}
	sort.Slice(out.Jobs, func(i, j int) bool {
		if !out.Jobs[i].SubmitTime.Equal(out.Jobs[j].SubmitTime) {
			return out.Jobs[i].SubmitTime.Before(out.Jobs[j].SubmitTime)
		}
		return out.Jobs[i].ID < out.Jobs[j].ID
	})
	return out, nil
}
