package cloud

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"qcloud/internal/backend"
	"qcloud/internal/par"
	"qcloud/internal/trace"
)

// EventKind classifies session events.
type EventKind string

// Session event kinds.
const (
	// EventEnqueue fires when a job (study or background) enters a
	// machine queue.
	EventEnqueue EventKind = "enqueue"
	// EventStart fires when the server begins executing a job.
	EventStart EventKind = "start"
	// EventDone / EventError / EventCancel are terminal job states,
	// mirroring trace.Status.
	EventDone   EventKind = "done"
	EventError  EventKind = "error"
	EventCancel EventKind = "cancel"
	// EventDowntime fires when a maintenance window displaces a start.
	EventDowntime EventKind = "downtime"
	// EventPendingSample fires at each queue-length sampling point.
	EventPendingSample EventKind = "pending-sample"
	// EventMachineDown / EventMachineUp bracket an unplanned fault
	// outage as the machine's frontier crosses its boundaries. Unlike
	// planned maintenance, outages are invisible until they begin.
	EventMachineDown EventKind = "machine-down"
	EventMachineUp   EventKind = "machine-up"
	// EventRetry fires when a transiently-failed job is scheduled for
	// another attempt; every retry is balanced by a later EventRequeue
	// when the job re-enters the queue after its backoff.
	EventRetry   EventKind = "retry"
	EventRequeue EventKind = "requeue"
)

// CancelReason classifies why a job was withdrawn. It rides on the
// terminal cancel event so consumers can tell a tenant-broker
// preemption (the job will be requeued and tried again) apart from a
// user giving up — the two move opposite directions in fairness
// accounting.
type CancelReason string

const (
	// CancelUser: explicit Session.Cancel by the submitting caller.
	CancelUser CancelReason = "user"
	// CancelPreempted: withdrawn by a scheduling layer (tenant broker)
	// to make room for a more deserving job; the spec is re-submitted.
	CancelPreempted CancelReason = "preempted"
	// CancelPatience: the simulated user gave up waiting in queue.
	CancelPatience CancelReason = "patience"
	// CancelWindow: the simulation window or machine retirement closed
	// over a job that never started.
	CancelWindow CancelReason = "window"
)

// Event is one observation from the simulated cloud's lifecycle stream.
type Event struct {
	Kind    EventKind
	Machine string
	// Time is the simulated instant of the event.
	Time time.Time
	// Background marks events of the modeled non-study population.
	Background bool
	// Pending is the queue length after the event (for enqueue/start/
	// terminal events) or the sampled value (for pending-sample).
	Pending int
	// Job is the trace record for terminal study-job events.
	Job *trace.Job
	// Handle identifies the study job for enqueue/start/terminal
	// events (nil for background jobs).
	Handle *JobHandle
	// Downtime is the window for downtime and machine-down/up events.
	Downtime [2]time.Time
	// Attempt is the execution attempt the event belongs to (0 = first
	// try; for retry/requeue events, the upcoming attempt).
	Attempt int
	// NextAttemptAt is when a retry re-enters the queue (retry events
	// only).
	NextAttemptAt time.Time
	// Reason classifies cancel events (empty for other kinds).
	Reason CancelReason
}

// EventFilter selects which events an observer receives. Nil slices
// mean "everything"; an explicitly empty (non-nil) slice matches
// nothing. The distinction matters to callers that build filters
// programmatically: appending zero kinds to an allocated slice must
// not silently subscribe to the whole stream.
type EventFilter struct {
	// Machines restricts to the named backends (nil = all machines,
	// empty non-nil = none).
	Machines []string
	// Kinds restricts to the listed kinds (nil = all kinds, empty
	// non-nil = none).
	Kinds []EventKind
	// StudyOnly drops background-population events.
	StudyOnly bool
}

// JobHandle identifies a study job submitted to a session; it is the
// token Cancel takes and the correlation key events carry.
type JobHandle struct {
	spec    *JobSpec
	machine string
	sess    *Session
}

// Spec returns the submitted job spec.
func (h *JobHandle) Spec() *JobSpec { return h.spec }

// Machine returns the backend the job was submitted to.
func (h *JobHandle) Machine() string { return h.machine }

// QueueSnapshot is a live view of one machine's queue at its frontier
// — the information a vendor-side scheduler can act on at a job's
// submit instant (the paper's §IV-D machine-aware management and
// §V-E queue-time prediction).
type QueueSnapshot struct {
	Machine string
	// Time is the machine's frontier: every arrival before it has
	// been observed.
	Time time.Time
	// Pending counts queued (not yet started) jobs; PendingStudy is
	// the study-job subset.
	Pending      int
	PendingStudy int
	// RunningUntil is when the in-flight job finishes (zero when the
	// server is idle at the frontier).
	RunningUntil time.Time
	// BacklogSeconds sums the service times of the queued jobs — the
	// vendor-side runtime-prediction view of the queue's depth.
	BacklogSeconds float64
	// DowntimeSeconds is scheduled maintenance the queue must ride out
	// before the backlog clears (including a window in progress at the
	// frontier). Vendors know their own maintenance calendar, so this
	// is legitimately visible to a placement policy.
	DowntimeSeconds float64
	// MeanExecSeconds is the machine's mean background service time.
	MeanExecSeconds float64
	// Down reports an unplanned fault outage in progress at the
	// frontier. Only an outage already underway is visible — future
	// outages never leak into snapshots, unlike the planned calendar
	// in DowntimeSeconds.
	Down bool
}

// EstimatedWaitSeconds predicts the queue wait a job submitted at the
// snapshot instant would see: the in-flight job's remaining service,
// the queued backlog, and any maintenance windows in the way.
func (q QueueSnapshot) EstimatedWaitSeconds() float64 {
	w := q.BacklogSeconds + q.DowntimeSeconds
	if q.RunningUntil.After(q.Time) {
		w += q.RunningUntil.Sub(q.Time).Seconds()
	}
	return w
}

// Session is an open, steppable cloud simulation: jobs can be
// submitted while it runs, queues observed at their live frontier, and
// lifecycle events streamed. The batch Simulate call is a thin wrapper
// (open, submit everything, run) and produces bit-identical traces.
//
// A Session is driven from one goroutine: Submit/Cancel/AdvanceTo/
// QueueState/Run must not be called concurrently with each other.
// Event channels returned by Observe deliver asynchronously and may be
// consumed from any goroutine.
type Session struct {
	cfg    Config
	sims   []*machineSim
	byName map[string]*machineSim

	obsMu     sync.Mutex
	observers []*observer
	hasObs    atomic.Bool
	closed    bool

	// jr is non-nil when the session journals durably (Config.Journal).
	jr *sessionJournal
}

// Open initializes a session over the configured window: one machine
// state machine per fleet member, constructed in parallel under the
// config's worker budget. With Config.Journal set, fresh journal
// streams are created (an existing journal must go through Recover).
func Open(cfg Config) (*Session, error) {
	c := cfg.withDefaults()
	s := &Session{cfg: c, byName: make(map[string]*machineSim)}
	s.sims = make([]*machineSim, len(c.Machines))
	par.ForEach(len(c.Machines), c.Workers, func(i int) {
		s.sims[i] = newMachineSim(c, c.Machines[i], s)
		s.sims[i].idx = i
	})
	for _, ms := range s.sims {
		s.byName[ms.m.Name] = ms
	}
	if c.Journal != nil {
		if c.Journal.Dir == "" {
			return nil, errors.New("cloud: Config.Journal needs a Dir")
		}
		s.cfg.Journal = c.Journal.withDefaults()
		if err := openSessionJournal(s, s.cfg.Journal); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Machines returns the fleet in machine-index order — the index a
// RecordSink call reports. Callers must not mutate the slice.
func (s *Session) Machines() []*backend.Machine { return s.cfg.Machines }

// Window returns the simulated window after defaulting.
func (s *Session) Window() (start, end time.Time) { return s.cfg.Start, s.cfg.End }

// Submit enters a study job into its machine's arrival stream. It is
// valid mid-run: the job may be submitted any time before the session
// has advanced past its submit instant, and the resulting trace is
// identical to one where the job was present from the start. With
// fault injection enabled, Submit can fail with ErrTransientSubmit —
// a retryable API-level rejection; see SubmitRetried.
func (s *Session) Submit(spec *JobSpec) (*JobHandle, error) {
	if s.closed {
		return nil, ErrSessionClosed
	}
	ms := s.byName[spec.Machine]
	if ms == nil {
		return nil, fmt.Errorf("cloud: study job targets unknown machine %q", spec.Machine)
	}
	h, err := ms.submit(spec)
	if err != nil {
		return nil, err
	}
	// Journaled sessions log every accepted submission before
	// acknowledging it — the input log recovery replays from.
	if s.jr != nil {
		if jerr := s.jr.appendSubmit(ms, spec); jerr != nil {
			return nil, jerr
		}
	}
	return h, nil
}

// SubmitRetried submits like Submit but re-attempts transient
// API-level rejections up to maxAttempts times (<=0 means a generous
// default of 8). Each attempt is a fresh deterministic decision, so
// callers that always use SubmitRetried see the same admission
// sequence at any worker count. Non-transient errors fail immediately.
func (s *Session) SubmitRetried(spec *JobSpec, maxAttempts int) (*JobHandle, error) {
	if maxAttempts <= 0 {
		maxAttempts = 8
	}
	var err error
	for i := 0; i < maxAttempts; i++ {
		var h *JobHandle
		if h, err = s.Submit(spec); err == nil || !errors.Is(err, ErrTransientSubmit) {
			return h, err
		}
	}
	return nil, err
}

// JobState is the lifecycle position JobStatus reports.
type JobState string

// Job lifecycle states.
const (
	// JobStatePending: submitted but not yet admitted into the queue.
	JobStatePending JobState = "pending"
	// JobStateQueued: in the machine queue, or waiting out a retry
	// backoff.
	JobStateQueued JobState = "queued"
	// JobStateWithdrawn: cancelled by the caller, record still pending.
	JobStateWithdrawn JobState = "withdrawn"
	// JobStateFinished: a terminal trace record exists.
	JobStateFinished JobState = "finished"
)

// JobStatus reports where a submitted job currently stands at its
// machine's frontier — what a reactive scheduler polls before deciding
// whether a job is still worth re-placing.
func (s *Session) JobStatus(h *JobHandle) (JobState, error) {
	if s.closed {
		return "", ErrSessionClosed
	}
	if h == nil || h.sess != s {
		return "", fmt.Errorf("cloud: handle does not belong to this session")
	}
	return s.byName[h.machine].jobState(h.spec), nil
}

// Cancel withdraws a submitted job that has not finished; it is
// recorded as CANCELLED at the machine's current frontier (or its
// submit instant, if that is later). The terminal event carries
// CancelUser.
func (s *Session) Cancel(h *JobHandle) error {
	return s.CancelWithReason(h, CancelUser)
}

// CancelWithReason is Cancel with an explicit classification on the
// terminal event — CancelPreempted is how the tenant broker marks a
// withdrawal it will follow with a requeue, keeping preemptions
// distinguishable from users giving up in event tallies and metrics.
func (s *Session) CancelWithReason(h *JobHandle, reason CancelReason) error {
	if s.closed {
		return ErrSessionClosed
	}
	if h == nil || h.sess != s {
		return fmt.Errorf("cloud: handle does not belong to this session")
	}
	if reason == "" {
		reason = CancelUser
	}
	ms := s.byName[h.machine]
	at := ms.frontier
	if sub := ms.toSec(h.spec.SubmitTime); at < sub || math.IsInf(at, -1) {
		at = sub
	}
	return ms.cancel(h.spec, at, reason)
}

// AdvanceTo moves every machine's frontier to t, processing all
// arrivals, starts, completions, downtimes and queue samples strictly
// before it. Machines advance in parallel under the config's worker
// budget; each is an independent event loop, so the result does not
// depend on the worker count.
func (s *Session) AdvanceTo(t time.Time) {
	if s.closed {
		return
	}
	par.ForEach(len(s.sims), s.cfg.Workers, func(i int) {
		ms := s.sims[i]
		ms.advanceTo(ms.toSec(t))
	})
	if s.jr != nil {
		s.journalAfterAdvance(t)
	}
}

// QueueState returns the live queue snapshot of one machine at its
// current frontier.
func (s *Session) QueueState(machine string) (QueueSnapshot, error) {
	ms := s.byName[machine]
	if ms == nil {
		return QueueSnapshot{}, fmt.Errorf("cloud: unknown machine %q", machine)
	}
	return ms.snapshot(), nil
}

// Observe subscribes to the session's event stream. The returned
// channel delivers events matching the filter without ever blocking
// the simulation (delivery is buffered and pumped asynchronously) and
// closes once the session ends and the backlog has drained. Observing
// a closed session returns ErrSessionClosed.
func (s *Session) Observe(f EventFilter) (<-chan Event, error) {
	o, err := s.attachObserver(newObserver(f))
	if err != nil {
		return nil, err
	}
	return o.ch, nil
}

// OverflowPolicy selects what a bounded observer does when its buffer
// is full.
type OverflowPolicy int

const (
	// BlockOnFull stalls the producing machine until the consumer
	// drains — backpressure: no event is ever lost, at the cost of
	// coupling simulation speed to the consumer.
	BlockOnFull OverflowPolicy = iota
	// DropOldest evicts the oldest buffered events to admit new ones;
	// the simulation never stalls and Dropped counts the evictions.
	DropOldest
)

// BufferedObserver is a bounded event subscription (ObserveBuffered).
type BufferedObserver struct {
	o *observer
}

// Events is the subscription channel; it closes once the session ends
// and the (bounded) backlog drains.
func (b *BufferedObserver) Events() <-chan Event { return b.o.ch }

// Dropped reports how many events a DropOldest observer has evicted.
func (b *BufferedObserver) Dropped() int64 { return b.o.dropped.Load() }

// ObserveBuffered subscribes like Observe but bounds the observer's
// backlog to n events, so a slow consumer on a long (million-job)
// session costs O(n) memory instead of an unbounded buffer. The policy
// picks the overflow behavior: BlockOnFull backpressures the
// simulation, DropOldest sheds the oldest events and counts them. The
// default Observe path is untouched — unbounded, never blocking.
func (s *Session) ObserveBuffered(f EventFilter, n int, policy OverflowPolicy) (*BufferedObserver, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cloud: ObserveBuffered needs a positive buffer bound, got %d", n)
	}
	o := newObserver(f)
	o.limit = n
	o.policy = policy
	if _, err := s.attachObserver(o); err != nil {
		return nil, err
	}
	return &BufferedObserver{o: o}, nil
}

func (s *Session) attachObserver(o *observer) (*observer, error) {
	s.obsMu.Lock()
	closed := s.closed
	if !closed {
		s.observers = append(s.observers, o)
	}
	s.obsMu.Unlock()
	if closed {
		return nil, ErrSessionClosed
	}
	s.hasObs.Store(true)
	go o.pump()
	return o, nil
}

// Run advances every machine to the end of the window, assembles the
// trace exactly as the batch simulation does (job IDs in fleet order,
// then submit-time order), and closes the session. A journaled session
// drains through its journal and reads the trace back from disk — the
// bytes are identical either way.
func (s *Session) Run() (*trace.Trace, error) {
	if s.closed {
		return nil, ErrSessionClosed
	}
	if s.jr != nil {
		cfg := s.cfg
		if _, err := s.DrainJournal(); err != nil {
			return nil, err
		}
		return ReadJournalTrace(cfg)
	}
	par.ForEach(len(s.sims), s.cfg.Workers, func(i int) {
		s.sims[i].finalize()
	})
	// Job IDs are assigned in (machine order, record order) — the
	// exact sequence the serial batch loop produced — keeping traces
	// bit-identical across worker counts.
	out := &trace.Trace{}
	var nextID int64
	for _, ms := range s.sims {
		for _, j := range ms.jobs {
			nextID++
			j.ID = nextID
		}
		out.Jobs = append(out.Jobs, ms.jobs...)
		out.Machines = append(out.Machines, ms.mstats)
	}
	sort.Slice(out.Jobs, func(i, j int) bool {
		if !out.Jobs[i].SubmitTime.Equal(out.Jobs[j].SubmitTime) {
			return out.Jobs[i].SubmitTime.Before(out.Jobs[j].SubmitTime)
		}
		return out.Jobs[i].ID < out.Jobs[j].ID
	})
	s.Close()
	return out, nil
}

// Close releases the session: further calls fail, and observer
// channels close once their backlog drains. Closing a session that is
// already closed (Run closes implicitly) is safe — it touches nothing
// and reports ErrSessionClosed so misuse is visible without
// panicking on the cond-pumped observer buffers.
func (s *Session) Close() error {
	s.obsMu.Lock()
	if s.closed {
		s.obsMu.Unlock()
		return ErrSessionClosed
	}
	s.closed = true
	obs := s.observers
	s.observers = nil
	s.obsMu.Unlock()
	for _, o := range obs {
		o.finish()
	}
	if s.jr != nil {
		return s.jr.close()
	}
	return nil
}

// dispatch fans an event out to matching observers. Machines advance
// in parallel, so this is the only cross-machine synchronization point
// — and it is only reached when at least one observer is attached.
func (s *Session) dispatch(ev Event) {
	s.obsMu.Lock()
	obs := s.observers
	s.obsMu.Unlock()
	for _, o := range obs {
		if o.matches(ev) {
			o.send(ev)
		}
	}
}

// ErrSessionClosed is returned by every Session call made after Close
// (including a second Close).
var ErrSessionClosed = errors.New("cloud: session is closed")

// ErrTransientSubmit marks a fault-injected API-level submission
// rejection: the job was NOT accepted, and the client may retry
// (errors.Is-matchable; SubmitRetried does this automatically).
var ErrTransientSubmit = errors.New("cloud: transient submit failure")

// observer buffers matched events and pumps them to its channel from a
// dedicated goroutine, so a slow (or absent) consumer can never stall
// the simulation.
type observer struct {
	machines map[string]bool
	kinds    map[EventKind]bool
	study    bool
	ch       chan Event

	// limit bounds the backlog (0 = unbounded, the Observe default);
	// policy applies when it is hit; dropped counts DropOldest
	// evictions.
	limit   int
	policy  OverflowPolicy
	dropped atomic.Int64

	mu   sync.Mutex
	cond *sync.Cond
	buf  []Event
	done bool
}

func newObserver(f EventFilter) *observer {
	o := &observer{study: f.StudyOnly, ch: make(chan Event, 64)}
	// Non-nil slices build a restriction map even when empty: an empty
	// non-nil filter matches nothing, only nil means "all".
	if f.Machines != nil {
		o.machines = make(map[string]bool, len(f.Machines))
		for _, m := range f.Machines {
			o.machines[m] = true
		}
	}
	if f.Kinds != nil {
		o.kinds = make(map[EventKind]bool, len(f.Kinds))
		for _, k := range f.Kinds {
			o.kinds[k] = true
		}
	}
	o.cond = sync.NewCond(&o.mu)
	return o
}

func (o *observer) matches(ev Event) bool {
	if o.study && ev.Background {
		return false
	}
	if o.machines != nil && !o.machines[ev.Machine] {
		return false
	}
	if o.kinds != nil && !o.kinds[ev.Kind] {
		return false
	}
	return true
}

func (o *observer) send(ev Event) {
	o.mu.Lock()
	if o.limit > 0 && len(o.buf) >= o.limit {
		switch o.policy {
		case BlockOnFull:
			// Backpressure: park the producing machine until the pump
			// takes the batch (or the session finishes).
			for len(o.buf) >= o.limit && !o.done {
				o.cond.Wait()
			}
		case DropOldest:
			drop := len(o.buf) - o.limit + 1
			o.buf = append(o.buf[:0], o.buf[drop:]...)
			o.dropped.Add(int64(drop))
		}
	}
	o.buf = append(o.buf, ev)
	o.mu.Unlock()
	// Broadcast, not Signal: with a bounded Block observer both the
	// pump and stalled producers may be waiting on the same cond.
	o.cond.Broadcast()
}

func (o *observer) finish() {
	o.mu.Lock()
	o.done = true
	o.mu.Unlock()
	o.cond.Broadcast()
}

// pump is the session's owned event-delivery goroutine: it drains the
// observer's cond-pumped buffer into the subscriber channel so a slow
// consumer can never stall the sim. Delivery order within a machine is
// the advance loop's emission order (dispatch appends under the buffer
// lock); cross-machine interleaving is unordered by design.
//
//qcloud:eventowner
func (o *observer) pump() {
	for {
		o.mu.Lock()
		for len(o.buf) == 0 && !o.done {
			o.cond.Wait()
		}
		batch := o.buf
		o.buf = nil
		done := o.done
		o.mu.Unlock()
		// Taking the batch freed the whole buffer — wake any producers
		// blocked on a full bounded buffer.
		o.cond.Broadcast()
		for _, ev := range batch {
			o.ch <- ev
		}
		if done {
			o.mu.Lock()
			drained := len(o.buf) == 0
			o.mu.Unlock()
			if drained {
				close(o.ch)
				return
			}
		}
	}
}
