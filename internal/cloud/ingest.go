package cloud

import (
	"encoding/csv"
	"io"
	"sort"
	"strconv"
	"sync"
)

// JobResult is one execution outcome arriving from a worker (or from
// the in-process reference runner): the merged measurement counts of
// one submission's trajectory batch, keyed by the dispatcher-assigned
// submission sequence.
type JobResult struct {
	// Seq is the submission sequence number — the merge key.
	Seq int64
	// Circuit labels the executed circuit family (e.g. "qft8").
	Circuit string
	// Batch and Shots are the executed dimensions.
	Batch, Shots int
	// Counts are the merged bitstring tallies (nil when Err is set).
	Counts map[string]int
	// Err is the terminal execution error, empty on success.
	Err string
	// Cancelled marks a submission cancelled before completion.
	Cancelled bool
}

// ResultSet is the dispatcher's result merge/ingest hook: an
// idempotent, seq-keyed accumulator whose serialized form depends only
// on the set of (seq, outcome) pairs — not on arrival order, worker
// identity, or how many times a result was reported. Exactly-once
// merging on top of at-least-once delivery: the first outcome for a
// seq wins and duplicates (late reports after a lease expiry, replays
// after a dispatcher restart) are dropped. Because every worker
// computes the same deterministic counts for a given seq, first-write-
// wins never loses information.
type ResultSet struct {
	mu    sync.Mutex
	bySeq map[int64]JobResult
}

// NewResultSet returns an empty ResultSet.
func NewResultSet() *ResultSet {
	return &ResultSet{bySeq: make(map[int64]JobResult)}
}

// Ingest merges one result, reporting whether it was kept (false = a
// result for this seq already landed).
func (rs *ResultSet) Ingest(r JobResult) bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if _, dup := rs.bySeq[r.Seq]; dup {
		return false
	}
	rs.bySeq[r.Seq] = r
	return true
}

// Len reports the number of merged results.
func (rs *ResultSet) Len() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return len(rs.bySeq)
}

// Get returns the result merged for seq, if any.
func (rs *ResultSet) Get(seq int64) (JobResult, bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	r, ok := rs.bySeq[seq]
	return r, ok
}

// Seqs returns the merged sequence numbers in ascending order.
func (rs *ResultSet) Seqs() []int64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	ks := make([]int64, 0, len(rs.bySeq))
	for k := range rs.bySeq {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// FormatCounts canonicalizes a counts map as "bits:n" pairs joined by
// spaces in bitstring order — the CSV cell form. Every serialization
// of the same counts is byte-identical.
func FormatCounts(m map[string]int) string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	out := ""
	for i, k := range ks {
		if i > 0 {
			out += " "
		}
		out += k + ":" + strconv.Itoa(m[k])
	}
	return out
}

// WriteCSV writes the merged results in seq order. The bytes are a
// pure function of the merged outcomes: a dispatcher + N workers run
// and the in-process reference runner produce identical files.
func (rs *ResultSet) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"seq", "circuit", "batch", "shots", "status", "error", "counts"}); err != nil {
		return err
	}
	for _, seq := range rs.Seqs() {
		r, _ := rs.Get(seq)
		status := "ok"
		switch {
		case r.Cancelled:
			status = "cancelled"
		case r.Err != "":
			status = "error"
		}
		row := []string{
			strconv.FormatInt(r.Seq, 10),
			r.Circuit,
			strconv.Itoa(r.Batch),
			strconv.Itoa(r.Shots),
			status,
			r.Err,
			FormatCounts(r.Counts),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Backoff exposes the retry policy's deterministic backoff schedule to
// callers outside the machine loop (the dispatcher's lease-expiry
// requeue path): the delay before retry `attempt` (1 = first retry) of
// job `jobID`, jittered by the policy's stateless splitmix stream.
// Defaults are applied, so a zero-valued policy behaves like the
// session's.
func (p *RetryPolicy) Backoff(attempt int, seed, machineSeed, jobID int64) float64 {
	return p.withDefaults().backoffSec(attempt, seed, machineSeed, jobID)
}
