package cloud

import (
	"reflect"
	"testing"
	"time"
)

// TestSimulateDeterministicAcrossWorkers checks the fleet fan-out's
// contract: the trace (jobs, IDs, machine stats) is bit-identical
// whether machines are simulated serially or on the worker pool.
func TestSimulateDeterministicAcrossWorkers(t *testing.T) {
	start := time.Date(2021, 2, 1, 0, 0, 0, 0, time.UTC)
	end := start.AddDate(0, 2, 0)
	mkSpecs := func() []*JobSpec {
		var specs []*JobSpec
		for i := 0; i < 60; i++ {
			specs = append(specs, &JobSpec{
				SubmitTime: start.Add(time.Duration(i) * 13 * time.Hour),
				User:       "study",
				Machine:    []string{"ibmq_bogota", "ibmq_rome", "ibmq_toronto"}[i%3],
				BatchSize:  1 + i%5, Shots: 1024,
				CircuitName: "qft", Width: 4, TotalDepth: 30, TotalGateOps: 60, CXTotal: 12,
			})
		}
		return specs
	}
	base := Config{Seed: 17, Start: start, End: end}

	serialCfg := base
	serialCfg.Workers = 1
	serial, err := Simulate(serialCfg, mkSpecs())
	if err != nil {
		t.Fatal(err)
	}
	parallelCfg := base
	parallelCfg.Workers = 0 // process default (NumCPU)
	parallel, err := Simulate(parallelCfg, mkSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Jobs) == 0 {
		t.Fatal("no jobs simulated")
	}
	if !reflect.DeepEqual(serial.Jobs, parallel.Jobs) {
		t.Fatal("job records differ between serial and parallel fleet sweeps")
	}
	if !reflect.DeepEqual(serial.Machines, parallel.Machines) {
		t.Fatal("machine stats differ between serial and parallel fleet sweeps")
	}
}
