package cloud

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"qcloud/internal/fault"
	"qcloud/internal/journal"
	"qcloud/internal/trace"
)

// jtConfig is the journal-test scenario: two machines, the short test
// window, and the full fault/retry stack so recovery must reproduce
// outages, transient kills, retries and flaky submits — not just the
// happy path.
func jtConfig(seed int64, workers int) Config {
	cfg := testConfig(seed, "ibmq_athens", "ibmq_rome")
	cfg.Workers = workers
	cfg.Faults = &fault.Profile{
		OutageMeanGapDays:  6,
		OutageMeanHours:    8,
		OutageMaxHours:     36,
		TransientErrorRate: 0.08,
		SubmitErrorRate:    0.02,
	}
	cfg.Retry = &RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: 2 * time.Minute,
		MaxBackoff:  45 * time.Minute,
		JitterFrac:  0.3,
	}
	return cfg
}

func jtSpecs() []*JobSpec {
	a := makeSpecs("ibmq_athens", 60, 5*time.Hour)
	b := makeSpecs("ibmq_rome", 60, 7*time.Hour)
	var specs []*JobSpec
	for i := range a {
		specs = append(specs, a[i], b[i])
	}
	return specs
}

func jtJSON(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// jtGolden is the uninterrupted in-memory trace every journaled and
// recovered variant must reproduce byte-for-byte.
func jtGolden(t *testing.T, workers int) []byte {
	t.Helper()
	tr, err := Simulate(jtConfig(3, workers), jtSpecs())
	if err != nil {
		t.Fatal(err)
	}
	return jtJSON(t, tr)
}

// runJournaled opens a journaled session, submits the spec stream and
// runs it, tolerating a deterministic kill at any point: it returns
// the trace (nil if the run was killed) and whether the kill fired.
func runJournaled(t *testing.T, cfg Config, specs []*JobSpec) (*trace.Trace, bool) {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range specs {
		if _, err := s.SubmitRetried(sp, 0); err != nil {
			if errors.Is(err, errJournalKilled) {
				s.Close()
				return nil, true
			}
			t.Fatal(err)
		}
	}
	tr, err := s.Run()
	if err != nil {
		if errors.Is(err, errJournalKilled) {
			s.Close()
			return nil, true
		}
		t.Fatal(err)
	}
	return tr, false
}

// recoverAndFinish resumes a killed journal directory: recover, submit
// whatever suffix of the deterministic spec stream the input log has
// not yet accepted, and run to completion.
func recoverAndFinish(t *testing.T, cfg Config, specs []*JobSpec) *trace.Trace {
	t.Helper()
	s, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range specs[s.JournaledSubmits():] {
		if _, err := s.SubmitRetried(sp, 0); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestJournaledRunMatchesInMemory pins the tentpole's baseline: a
// journaled session's trace — streamed to disk, then read back — is
// byte-identical to the in-memory run, at serial and parallel worker
// counts, and the session holds no trace records in memory while it
// runs.
func TestJournaledRunMatchesInMemory(t *testing.T) {
	for _, workers := range []int{1, 4} {
		golden := jtGolden(t, workers)
		cfg := jtConfig(3, workers)
		cfg.Journal = &JournalConfig{Dir: t.TempDir(), CheckpointEvery: 4 * 24 * time.Hour}
		s, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, sp := range jtSpecs() {
			if _, err := s.SubmitRetried(sp, 0); err != nil {
				t.Fatal(err)
			}
		}
		s.AdvanceTo(cfg.Start.Add(10 * 24 * time.Hour))
		if n := s.HeldTraceEntries(); n != 0 {
			t.Fatalf("workers=%d: journaled session holds %d trace entries mid-run, want 0", workers, n)
		}
		tr, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(jtJSON(t, tr), golden) {
			t.Fatalf("workers=%d: journaled trace differs from in-memory trace", workers)
		}
		// The sealed journal reads back identically a second time.
		tr2, err := ReadJournalTrace(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(jtJSON(t, tr2), golden) {
			t.Fatalf("workers=%d: ReadJournalTrace differs from in-memory trace", workers)
		}
	}
}

// journalRecordTotal measures how many journal appends a full
// uninterrupted run performs, so kill points can cover the whole run.
func journalRecordTotal(t *testing.T, workers int) int64 {
	t.Helper()
	cfg := jtConfig(3, workers)
	cfg.Journal = &JournalConfig{Dir: t.TempDir(), CheckpointEvery: 4 * 24 * time.Hour}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range jtSpecs() {
		if _, err := s.SubmitRetried(sp, 0); err != nil {
			t.Fatal(err)
		}
	}
	st, err := s.DrainJournal()
	if err != nil {
		t.Fatal(err)
	}
	if st.Checkpoints == 0 || st.JobRecords == 0 {
		t.Fatalf("drain stats look wrong: %+v", st)
	}
	return st.Records
}

// TestKillAnywhereRecoversByteIdentical is the tentpole contract: a
// session killed deterministically after ANY number of journal appends
// — during submission, mid-window, mid-checkpoint interval, or during
// the final drain — recovers to a finished trace byte-identical to the
// uninterrupted run.
func TestKillAnywhereRecoversByteIdentical(t *testing.T) {
	golden := jtGolden(t, 1)
	total := journalRecordTotal(t, 1)
	// Kill points: the first few appends (crash during submission), a
	// spread across the run, and the last appends (crash during seal).
	points := []int64{1, 2, 3, 5, total - 2, total - 1}
	for i := int64(1); i <= 10; i++ {
		points = append(points, i*total/11)
	}
	for _, kill := range points {
		if kill <= 0 || kill >= total {
			continue
		}
		dir := t.TempDir()
		cfg := jtConfig(3, 1)
		cfg.Journal = &JournalConfig{Dir: dir, CheckpointEvery: 4 * 24 * time.Hour, killAfterRecords: kill}
		_, killed := runJournaled(t, cfg, jtSpecs())
		if !killed {
			t.Fatalf("kill point %d/%d did not fire", kill, total)
		}
		cfg.Journal = &JournalConfig{Dir: dir, CheckpointEvery: 4 * 24 * time.Hour}
		tr := recoverAndFinish(t, cfg, jtSpecs())
		if !bytes.Equal(jtJSON(t, tr), golden) {
			t.Fatalf("kill point %d/%d: recovered trace differs from uninterrupted run", kill, total)
		}
	}
}

// TestKillParallelRecoversByteIdentical reruns the crash-recovery
// contract at four workers: the kill lands nondeterministically across
// machine goroutines, but recovery must still reproduce the golden
// trace exactly.
func TestKillParallelRecoversByteIdentical(t *testing.T) {
	golden := jtGolden(t, 4)
	total := journalRecordTotal(t, 4)
	for _, kill := range []int64{total / 5, total / 2, 4 * total / 5} {
		dir := t.TempDir()
		cfg := jtConfig(3, 4)
		cfg.Journal = &JournalConfig{Dir: dir, CheckpointEvery: 4 * 24 * time.Hour, killAfterRecords: kill}
		_, killed := runJournaled(t, cfg, jtSpecs())
		if !killed {
			t.Fatalf("kill point %d/%d did not fire", kill, total)
		}
		cfg.Journal = &JournalConfig{Dir: dir, CheckpointEvery: 4 * 24 * time.Hour}
		tr := recoverAndFinish(t, cfg, jtSpecs())
		if !bytes.Equal(jtJSON(t, tr), golden) {
			t.Fatalf("kill point %d/%d (4 workers): recovered trace differs", kill, total)
		}
	}
}

// TestRecoverSurvivesCorruptNewestCheckpoint: recovery falls back to
// an older checkpoint (or a fresh replay) when the newest one is
// bit-flipped, and still finishes byte-identical.
func TestRecoverSurvivesCorruptNewestCheckpoint(t *testing.T) {
	golden := jtGolden(t, 1)
	total := journalRecordTotal(t, 1)
	dir := t.TempDir()
	cfg := jtConfig(3, 1)
	cfg.Journal = &JournalConfig{Dir: dir, CheckpointEvery: 4 * 24 * time.Hour, killAfterRecords: 4 * total / 5}
	if _, killed := runJournaled(t, cfg, jtSpecs()); !killed {
		t.Fatal("kill did not fire")
	}
	seqs, err := listCheckpointSeqs(dir)
	if err != nil || len(seqs) < 2 {
		t.Fatalf("want >=2 checkpoints on disk, got %d (err %v)", len(seqs), err)
	}
	// Flip one byte in the middle of the newest checkpoint's payload.
	path := ckptFilePath(dir, seqs[len(seqs)-1])
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x20
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	cfg.Journal = &JournalConfig{Dir: dir, CheckpointEvery: 4 * 24 * time.Hour}
	tr := recoverAndFinish(t, cfg, jtSpecs())
	if !bytes.Equal(jtJSON(t, tr), golden) {
		t.Fatal("recovered trace differs after corrupt-checkpoint fallback")
	}
}

// TestRecoverSurvivesTornMachineJournal: machine-stream records behind
// the checkpoint regenerate deterministically, so a torn machine
// journal tail (beyond the newest checkpoint) cannot prevent an exact
// recovery.
func TestRecoverSurvivesTornMachineJournal(t *testing.T) {
	golden := jtGolden(t, 1)
	total := journalRecordTotal(t, 1)
	dir := t.TempDir()
	cfg := jtConfig(3, 1)
	cfg.Journal = &JournalConfig{Dir: dir, CheckpointEvery: 4 * 24 * time.Hour, killAfterRecords: 3 * total / 4}
	if _, killed := runJournaled(t, cfg, jtSpecs()); !killed {
		t.Fatal("kill did not fire")
	}
	// Tear bytes off the final segment of the first machine's stream.
	mdir := machineStreamDir(dir, "ibmq_athens")
	segs, err := filepath.Glob(filepath.Join(mdir, "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s (err %v)", mdir, err)
	}
	last := segs[len(segs)-1]
	raw, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) > 11 {
		if err := os.WriteFile(last, raw[:len(raw)-11], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cfg.Journal = &JournalConfig{Dir: dir, CheckpointEvery: 4 * 24 * time.Hour}
	tr := recoverAndFinish(t, cfg, jtSpecs())
	if !bytes.Equal(jtJSON(t, tr), golden) {
		t.Fatal("recovered trace differs after torn machine journal")
	}
}

// TestJournalMisuseErrors pins the guard rails: reading an unsealed
// journal, opening over an existing one, restoring with a journal
// config, and recovering a non-journal directory all fail loudly.
func TestJournalMisuseErrors(t *testing.T) {
	dir := t.TempDir()
	cfg := jtConfig(3, 1)
	cfg.Journal = &JournalConfig{Dir: dir, CheckpointEvery: 4 * 24 * time.Hour, killAfterRecords: 40}
	if _, killed := runJournaled(t, cfg, jtSpecs()); !killed {
		t.Fatal("kill did not fire")
	}
	cfg.Journal = &JournalConfig{Dir: dir}
	if _, err := ReadJournalTrace(cfg); err == nil || !strings.Contains(err.Error(), "Recover") {
		t.Fatalf("unsealed journal read: %v", err)
	}
	if _, err := Open(cfg); err == nil || !strings.Contains(err.Error(), "Recover") {
		t.Fatalf("open over existing journal: %v", err)
	}
	if _, err := Restore(cfg, &Checkpoint{}); err == nil || !strings.Contains(err.Error(), "Recover") {
		t.Fatalf("restore with journal config: %v", err)
	}
	empty := jtConfig(3, 1)
	empty.Journal = &JournalConfig{Dir: t.TempDir()}
	if _, err := Recover(empty); err == nil || !strings.Contains(err.Error(), "not a session journal") {
		t.Fatalf("recover of non-journal dir: %v", err)
	}
}

// flakyFile fails every write once its countdown of successes runs
// out — a persistent filesystem failure.
type flakyFile struct {
	f         journal.File
	successes int
}

func (ff *flakyFile) Write(p []byte) (int, error) {
	if ff.successes <= 0 {
		return 0, errors.New("injected disk failure")
	}
	ff.successes--
	return ff.f.Write(p)
}
func (ff *flakyFile) Sync() error  { return ff.f.Sync() }
func (ff *flakyFile) Close() error { return ff.f.Close() }

// TestPersistentWriteFailureFailStops: when journal writes keep
// failing past the retry cap, the session fail-stops with a clear
// error instead of silently continuing undurable.
func TestPersistentWriteFailureFailStops(t *testing.T) {
	cfg := jtConfig(3, 1)
	budget := 25
	cfg.Journal = &JournalConfig{
		Dir:             t.TempDir(),
		CheckpointEvery: 4 * 24 * time.Hour,
		openFile: func(path string) (journal.File, error) {
			f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, err
			}
			ff := &flakyFile{f: f, successes: budget}
			budget = 0 // only the first segments get any successes
			return ff, nil
		},
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var failed error
	for _, sp := range jtSpecs() {
		if _, err := s.SubmitRetried(sp, 0); err != nil {
			failed = err
			break
		}
	}
	if failed == nil {
		_, failed = s.Run()
	}
	s.Close()
	if failed == nil || !strings.Contains(failed.Error(), "fail-stopped") {
		t.Fatalf("persistent write failure surfaced as %v, want fail-stopped error", failed)
	}
}

// TestCheckpointFileBitFlipRejected: a checkpoint file with any bit
// flipped is rejected by ReadCheckpoint with a checksum error — never
// a gob panic, never a silent wrong restore.
func TestCheckpointFileBitFlipRejected(t *testing.T) {
	cfg := jtConfig(3, 1)
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, sp := range jtSpecs()[:20] {
		if _, err := s.SubmitRetried(sp, 0); err != nil {
			t.Fatal(err)
		}
	}
	s.AdvanceTo(cfg.Start.Add(6 * 24 * time.Hour))
	ck, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a byte every stride positions across the whole file (header,
	// payload, footer); each corruption must error.
	for pos := 0; pos < len(data); pos += 37 {
		corrupt := bytes.Clone(data)
		corrupt[pos] ^= 0x08
		if _, err := ReadCheckpoint(bytes.NewReader(corrupt)); err == nil {
			t.Fatalf("bit flip at byte %d of %d went undetected", pos, len(data))
		}
	}
}

// TestCheckpointV1StillReadable: pre-checksum (version-1) checkpoint
// files remain loadable after the format bump.
func TestCheckpointV1StillReadable(t *testing.T) {
	cfg := jtConfig(3, 1)
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.AdvanceTo(cfg.Start.Add(3 * 24 * time.Hour))
	ck, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteSnapshot(&buf, 1, ck); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != ck.Seed || len(got.Machines) != len(ck.Machines) {
		t.Fatalf("v1 checkpoint decoded wrong: seed %d, %d machines", got.Seed, len(got.Machines))
	}
}
