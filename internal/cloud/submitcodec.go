package cloud

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// Binary codec for the journal's input log. The original jrecSubmit
// format framed every record with a fresh gob stream — each one
// carrying full type metadata, which dominated the journaled session's
// submit-path cost. jrecSubmit2 uses the same compact varint layout as
// the trace job codec; old gob records stay readable, so a journal
// written by a previous version recovers unchanged.

// submitWireVersion stamps each jrecSubmit2 payload so the layout can
// evolve without guessing.
const submitWireVersion byte = 1

// appendSubmitRecord appends the jrecSubmit2 encoding of one accepted
// submission (record type byte included) to buf and returns the
// extended slice.
func appendSubmitRecord(buf []byte, machine string, submitSeq int64, s *JobSpec) []byte {
	buf = append(buf, jrecSubmit2, submitWireVersion)
	buf = appendSubmitString(buf, machine)
	buf = binary.AppendVarint(buf, submitSeq)
	buf = binary.AppendVarint(buf, s.SubmitTime.UnixNano())
	buf = appendSubmitString(buf, s.User)
	buf = appendSubmitString(buf, s.Machine)
	buf = binary.AppendVarint(buf, int64(s.BatchSize))
	buf = binary.AppendVarint(buf, int64(s.Shots))
	buf = appendSubmitString(buf, s.CircuitName)
	buf = binary.AppendVarint(buf, int64(s.Width))
	buf = binary.AppendVarint(buf, int64(s.TotalDepth))
	buf = binary.AppendVarint(buf, int64(s.TotalGateOps))
	buf = binary.AppendVarint(buf, int64(s.CXTotal))
	buf = binary.AppendVarint(buf, int64(s.MemSlots))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.PatienceSec))
	if s.Privileged {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return buf
}

// decodeSubmitRecord decodes one jrecSubmit2 payload (record type byte
// already stripped). Malformed input is an error, never a panic — the
// second line of defense behind the journal's frame checksums.
func decodeSubmitRecord(b []byte) (journalSubmit, error) {
	d := &submitDecoder{b: b}
	if v := d.byte(); v != submitWireVersion {
		if d.err == nil {
			d.err = fmt.Errorf("cloud: submit record version %d, want %d", v, submitWireVersion)
		}
		return journalSubmit{}, d.err
	}
	var js journalSubmit
	js.Machine = d.string()
	js.SubmitSeq = d.varint()
	js.Spec.SubmitTime = time.Unix(0, d.varint()).UTC()
	js.Spec.User = d.string()
	js.Spec.Machine = d.string()
	js.Spec.BatchSize = d.int()
	js.Spec.Shots = d.int()
	js.Spec.CircuitName = d.string()
	js.Spec.Width = d.int()
	js.Spec.TotalDepth = d.int()
	js.Spec.TotalGateOps = d.int()
	js.Spec.CXTotal = d.int()
	js.Spec.MemSlots = d.int()
	js.Spec.PatienceSec = d.float64()
	js.Spec.Privileged = d.byte() != 0
	if d.err != nil {
		return journalSubmit{}, d.err
	}
	if len(d.b) != d.off {
		return journalSubmit{}, fmt.Errorf("cloud: submit record has %d trailing bytes", len(d.b)-d.off)
	}
	return js, nil
}

func appendSubmitString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// submitDecoder reads the fixed field sequence with a sticky error, so
// the decode body stays a flat field list.
type submitDecoder struct {
	b   []byte
	off int
	err error
}

func (d *submitDecoder) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("cloud: truncated submit record: %s at offset %d", msg, d.off)
	}
}

func (d *submitDecoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail("byte")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *submitDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.off += n
	return v
}

func (d *submitDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *submitDecoder) int() int { return int(d.varint()) }

func (d *submitDecoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail("string body")
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *submitDecoder) float64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b)-d.off < 8 {
		d.fail("float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}
