// Gate fusion: circuits are compiled once per Run into a flat op
// stream so the per-shot trajectory loop does zero map lookups, zero
// matrix construction, and far fewer amplitude sweeps.
//
// Four prepasses run during compilation:
//
//   - consecutive 1q gates on the same qubit are merged into one
//     precomputed Mat2 (the classic rz-sx-rz-sx-rz chains compiled
//     circuits are full of become a single sweep);
//   - runs of gates touching the same qubit pair — 1q gates on either
//     qubit, CX/CZ/CPhase/SWAP on the pair — collapse into one
//     precomputed Mat4 (qsim/qulacs-style 2q block fusion): a compiled
//     rz·sx·rz—cx—rz·sx·rz conjugation becomes a single
//     four-amplitude sweep instead of five to seven;
//   - runs of diagonal gates (I/Z/S/Sdg/T/Tdg/RZ/CZ/CPhase) collapse
//     into a single phase-table kernel: one sweep multiplies each
//     amplitude by a precomputed phase indexed by the gathered bits of
//     the run's touched qubits;
//   - noise-channel probabilities are sampled from the model once per
//     gate at compile time instead of once per gate per shot.
//
// Determinism: fusion never reorders gates and never changes the
// per-shot RNG draw sequence. Noise draws are state-independent (a
// uniform variate compared against the gate's precomputed probability),
// so the executor consumes them gate by gate in program order before
// applying a fused kernel; in the rare shot where a draw fires inside a
// fused block, the executor falls back to replaying that block's
// original gates one by one with the Pauli injected in place, exactly
// as the unfused engine would. Counts for a fixed seed are therefore
// identical across fused/unfused execution and any worker count (fused
// amplitudes may differ from unfused in the last ulps — matrix products
// associate differently — which leaves every sampled outcome unchanged).
package qsim

import (
	"fmt"
	"math/cmplx"
	"math/rand"

	"qcloud/internal/circuit"
)

// exactFuseMinQubits is the register width below which the exact
// (single-evolution) path skips the fusion prepass: compiling the op
// stream costs tens of microseconds, which a sub-1024-amplitude
// evolution cannot recover. Trajectory runs always fuse — the compile
// amortizes across shots. Measured crossover: fused wins from ~11
// qubits up (see BENCH_*.json's StatevectorScaling/8q vs 12q rows).
const exactFuseMinQubits = 11

// maxDiagQubits caps the touched-qubit set of one fused diagonal run:
// the phase table holds 2^k entries and the gather loop costs k bit
// tests per amplitude, so runs touching more qubits split. 10 keeps the
// table (16 KiB) inside L1/L2 while still collapsing a full QFT
// controlled-phase cascade on 10 qubits into one sweep.
const maxDiagQubits = 10

// Precomputed Pauli matrices for noise injection and qubit reset — the
// unfused engine rebuilt these through GateMat2 on every application.
var (
	pauliXMat = circuit.Mat2{0, 1, 1, 0}
	pauliYMat = circuit.Mat2{0, complex(0, -1), complex(0, 1), 0}
	pauliZMat = circuit.Mat2{1, 0, 0, -1}
)

// opKind discriminates fused ops.
type opKind uint8

const (
	// opSrc applies a single source gate through the precomputed
	// dispatch in srcGate (2q/3q non-diagonal gates, and every unitary
	// when fusion is disabled).
	opSrc opKind = iota
	// opMat2 applies one precomputed 2x2 unitary to q0 (a fused run of
	// 1q gates).
	opMat2
	// opMat4 applies one precomputed 4x4 unitary to the pair (q0, q1): a
	// fused two-qubit block absorbing 1q gates on either qubit and
	// CX/CZ/CPhase/SWAP on the pair, so a compiled rz·sx·rz—cx—rz·sx·rz
	// conjugation becomes a single four-amplitude sweep.
	opMat4
	// opDiag multiplies each amplitude by a phase-table entry indexed by
	// the gathered bits of the run's touched qubits (a fused run of
	// diagonal gates).
	opDiag
	opMeasure
	opReset
)

// srcGate is the unfused view of one original gate: enough precomputed
// state to apply it without map lookups or matrix construction. The
// executor uses it on the rare noisy fallback path; opSrc ops use it as
// their fast path too.
type srcGate struct {
	op     circuit.Op
	q0, q1 int
	q2     int
	nq     int     // operand count (the Pauli-site Intn draw)
	theta  float64 // cphase angle
	mat    circuit.Mat2
	// noiseP is the precomputed post-gate error probability; 0 means the
	// model draws nothing for this gate.
	noiseP float64
}

// qubit returns operand i (for Pauli-site selection).
func (g *srcGate) qubit(i int) int {
	switch i {
	case 0:
		return g.q0
	case 1:
		return g.q1
	default:
		return g.q2
	}
}

// fusedOp is one instruction of a compiled program.
type fusedOp struct {
	kind opKind
	q0   int
	// q1 is the second qubit of an opMat4 pair: q0 is the Mat4 basis's
	// low bit b0, q1 its high bit b1.
	q1 int
	// identity marks a fused kernel that reduced to the identity (up to
	// global phase), e.g. a cp(0) run: the sweep is skipped while its
	// noise draws still happen.
	identity bool
	mat      circuit.Mat2 // opMat2
	mat4     circuit.Mat4 // opMat4
	// opDiag: masks[k] is the bit mask of table qubit k; the table holds
	// 2^len(masks) phases split into real/imag halves.
	masks        []int
	tabRe, tabIm []float64
	// lut[b][v] is the table-index contribution of amplitude-index byte
	// b having value v, so the kernel gathers a table index with one
	// load+or per byte instead of one test+shift per touched qubit.
	// Built once per program by finalizeDiag.
	lut [][256]uint16
	// src lists the original gates in program order (unitary ops only).
	src []srcGate
	// opMeasure: classical target and precomputed readout flip
	// probability.
	clbit int
	roErr float64
}

// program is a compiled circuit: the unit of per-shot execution.
type program struct {
	ops     []fusedOp
	nqubits int
	nclbits int
	// noisy records whether a noise model was attached at compile time;
	// it gates the per-gate and per-measure RNG draws.
	noisy bool
}

// gateNoiseP mirrors NoiseModel.applyAfterGate's probability selection:
// 2q gates take the coupler model, 1q gates the single-qubit model, and
// everything else (CCX, barrier) draws nothing.
func gateNoiseP(noise *NoiseModel, g circuit.Gate) float64 {
	if noise == nil {
		return 0
	}
	switch {
	case g.Op.IsTwoQubit() && noise.TwoQubit != nil:
		return noise.TwoQubit(g.Qubits[0], g.Qubits[1])
	case len(g.Qubits) == 1 && noise.OneQubit != nil:
		return noise.OneQubit(g.Qubits[0])
	}
	return 0
}

// compileProgram lowers a circuit into a fused op stream. With fuse
// false every unitary becomes its own opSrc — the pre-fusion engine,
// kept for A/B benchmarks and equivalence tests. fuse2q additionally
// enables two-qubit block fusion (4x4 kernels); it is an independent
// A/B toggle so benchmarks can isolate the 2q lever, and is ignored
// when fuse is false.
func compileProgram(c *circuit.Circuit, noise *NoiseModel, fuse, fuse2q bool) (*program, error) {
	p := &program{nqubits: c.NQubits, nclbits: c.NClbits, noisy: noise != nil}
	p.ops = make([]fusedOp, 0, len(c.Gates))
	for _, g := range c.Gates {
		switch g.Op {
		case circuit.OpBarrier:
			continue
		case circuit.OpMeasure:
			p.ops = append(p.ops, fusedOp{
				kind:  opMeasure,
				q0:    g.Qubits[0],
				clbit: g.Clbit,
				roErr: noise.ReadoutError(g.Qubits[0]),
			})
			continue
		case circuit.OpReset:
			p.ops = append(p.ops, fusedOp{kind: opReset, q0: g.Qubits[0]})
			continue
		}
		src, err := lowerGate(g, noise)
		if err != nil {
			return nil, err
		}
		last := p.lastOp()
		switch {
		case fuse && fuse2q && last != nil && last.kind == opMat4 && last.canAbsorb2Q(g):
			// The open two-qubit block takes 1q gates on either pair
			// qubit and CX/CZ/CPhase/SWAP on the pair: one 4x4 product.
			last.absorb2Q(g, src)
		case fuse && len(g.Qubits) == 1 && last != nil && last.kind == opMat2 && last.q0 == g.Qubits[0]:
			// Adjacent 1q gates on the same qubit: one matrix product.
			last.mat = src.mat.Mul(last.mat)
			last.identity = last.mat.IsIdentity()
			last.src = append(last.src, src)
		case fuse && g.Op.IsDiagonal() && last != nil && last.kind == opDiag && last.diagCanAbsorb(g):
			last.absorbDiag(g, src)
		case fuse && fuse2q && (g.Op == circuit.OpCX || g.Op == circuit.OpSWAP) && p.open2QBlock(g, src):
			// A non-diagonal 2q gate preceded by fused 1q runs on its
			// qubits: the runs and the gate collapsed into one 4x4 block.
		case fuse && (g.Op == circuit.OpCZ || g.Op == circuit.OpCPhase):
			// 2q diagonal: starts a phase-table run.
			op := fusedOp{kind: opDiag, identity: true}
			op.absorbDiag(g, src)
			p.ops = append(p.ops, op)
		case fuse && len(g.Qubits) == 1:
			// Lone 1q gate: seed a Mat2 op so later neighbors merge in.
			p.ops = append(p.ops, fusedOp{
				kind:     opMat2,
				q0:       g.Qubits[0],
				mat:      src.mat,
				identity: src.mat.IsIdentity(),
				src:      []srcGate{src},
			})
		default:
			p.ops = append(p.ops, fusedOp{kind: opSrc, src: []srcGate{src}})
		}
	}
	for oi := range p.ops {
		p.ops[oi].finalizeDiag(c.NQubits)
	}
	return p, nil
}

// KernelCounts reports the compiled op-stream length of circuit c under
// each fusion setting: no fusion, 1q-chain + diagonal-run fusion (the
// PR 2 engine), and full two-qubit block fusion. It is the
// kernel-sweep-count lever the prepasses pull, recorded per compiled
// circuit by cmd/qcloud-bench.
func KernelCounts(c *circuit.Circuit, noise *NoiseModel) (unfused, fused1q, blocked int, err error) {
	for _, cfg := range []struct {
		fuse, fuse2q bool
		out          *int
	}{{false, false, &unfused}, {true, false, &fused1q}, {true, true, &blocked}} {
		prog, cerr := compileProgram(c, noise, cfg.fuse, cfg.fuse2q)
		if cerr != nil {
			return 0, 0, 0, cerr
		}
		*cfg.out = len(prog.ops)
	}
	return unfused, fused1q, blocked, nil
}

// finalizeDiag precomputes the byte-indexed gather LUT of a diagonal
// run once its touched-qubit set is final.
func (op *fusedOp) finalizeDiag(nqubits int) {
	if op.kind != opDiag || op.identity {
		return
	}
	nbytes := (nqubits + 7) / 8
	op.lut = make([][256]uint16, nbytes)
	for b := 0; b < nbytes; b++ {
		l := &op.lut[b]
		// Single-bit entries by scanning the masks; composite values as
		// the OR of their lowest bit and the rest (dynamic programming,
		// so the build is O(256) per byte, not O(256 * touched qubits)).
		for bit := 0; bit < 8; bit++ {
			idx := uint16(0)
			for k, m := range op.masks {
				if (1<<uint(bit+8*b))&m != 0 {
					idx |= 1 << uint(k)
				}
			}
			l[1<<uint(bit)] = idx
		}
		for v := 3; v < 256; v++ {
			if v&(v-1) != 0 {
				l[v] = l[v&-v] | l[v&(v-1)]
			}
		}
	}
}

func (p *program) lastOp() *fusedOp {
	if len(p.ops) == 0 {
		return nil
	}
	return &p.ops[len(p.ops)-1]
}

// lowerGate precomputes one gate's dispatch state and noise probability.
func lowerGate(g circuit.Gate, noise *NoiseModel) (srcGate, error) {
	src := srcGate{op: g.Op, nq: len(g.Qubits), noiseP: gateNoiseP(noise, g)}
	src.q0 = g.Qubits[0]
	if len(g.Qubits) > 1 {
		src.q1 = g.Qubits[1]
	}
	if len(g.Qubits) > 2 {
		src.q2 = g.Qubits[2]
	}
	switch g.Op {
	case circuit.OpCX, circuit.OpCZ, circuit.OpSWAP, circuit.OpCCX:
	case circuit.OpCPhase:
		src.theta = g.Params[0]
	default:
		m, ok := circuit.GateMat2(g)
		if !ok {
			return srcGate{}, fmt.Errorf("qsim: cannot apply op %v", g.Op)
		}
		src.mat = m
	}
	return src, nil
}

// canAbsorb2Q reports whether the open two-qubit block (an opMat4 on
// the pair {q0, q1}) can take gate g: a 1q gate on either pair qubit,
// or a CX/CZ/CPhase/SWAP on exactly the pair.
func (op *fusedOp) canAbsorb2Q(g circuit.Gate) bool {
	switch g.Op {
	case circuit.OpCX, circuit.OpCZ, circuit.OpCPhase, circuit.OpSWAP:
		a, b := g.Qubits[0], g.Qubits[1]
		return (a == op.q0 && b == op.q1) || (a == op.q1 && b == op.q0)
	default:
		return g.Op.NumQubits() == 1 && (g.Qubits[0] == op.q0 || g.Qubits[0] == op.q1)
	}
}

// absorb2Q folds gate g into the block's 4x4 product (left-multiplied:
// later gates act after earlier ones).
func (op *fusedOp) absorb2Q(g circuit.Gate, src srcGate) {
	m, ok := circuit.GateMat4(g, op.q0, op.q1)
	if !ok {
		// canAbsorb2Q guarantees the embedding exists.
		panic(fmt.Sprintf("qsim: unembeddable gate %v in 2q block (%d,%d)", g.Op, op.q0, op.q1))
	}
	op.mat4 = m.Mul(op.mat4)
	op.identity = op.mat4.IsIdentity()
	op.src = append(op.src, src)
}

// open2QBlock tries to start a two-qubit block at a CX/SWAP on the
// pair (a, b) by folding in the trailing fused 1q runs on a and/or b.
// A block only opens when at least one such run is waiting — a bare
// CX/SWAP keeps its cheaper dedicated exchange kernel — so opening
// always strictly reduces the sweep count. Absorbed run matrices are
// multiplied in program order, which preserves both the semantics and
// the noise-draw sequence (src lists concatenate in program order).
func (p *program) open2QBlock(g circuit.Gate, src srcGate) bool {
	a, b := g.Qubits[0], g.Qubits[1]
	n := len(p.ops)
	take := 0
	if n > 0 && p.ops[n-1].kind == opMat2 && (p.ops[n-1].q0 == a || p.ops[n-1].q0 == b) {
		take = 1
		other := a
		if p.ops[n-1].q0 == a {
			other = b
		}
		if n > 1 && p.ops[n-2].kind == opMat2 && p.ops[n-2].q0 == other {
			take = 2
		}
	}
	if take == 0 {
		return false
	}
	block := fusedOp{kind: opMat4, q0: a, q1: b, mat4: circuit.Identity4}
	for k := n - take; k < n; k++ {
		prev := &p.ops[k]
		block.mat4 = circuit.Kron1Q(prev.mat, prev.q0 == b).Mul(block.mat4)
		block.src = append(block.src, prev.src...)
	}
	gm, ok := circuit.GateMat4(g, a, b)
	if !ok {
		return false // unreachable: CX/SWAP on (a, b) always embeds
	}
	block.mat4 = gm.Mul(block.mat4)
	block.identity = block.mat4.IsIdentity()
	block.src = append(block.src, src)
	p.ops = append(p.ops[:n-take], block)
	return true
}

// diagCanAbsorb reports whether the diagonal run can take g without its
// touched-qubit set growing past maxDiagQubits.
func (op *fusedOp) diagCanAbsorb(g circuit.Gate) bool {
	grown := len(op.masks)
	for _, q := range g.Qubits {
		if op.tableBit(q) < 0 {
			grown++
		}
	}
	return grown <= maxDiagQubits
}

// tableBit returns the table-bit index of qubit q, or -1.
func (op *fusedOp) tableBit(q int) int {
	mask := 1 << uint(q)
	for k, m := range op.masks {
		if m == mask {
			return k
		}
	}
	return -1
}

// growTable adds qubit q as a new table bit, doubling the phase table
// (both halves of the new bit start with the run's existing phases).
func (op *fusedOp) growTable(q int) int {
	if len(op.tabRe) == 0 {
		op.tabRe = []float64{1}
		op.tabIm = []float64{0}
	}
	op.masks = append(op.masks, 1<<uint(q))
	op.tabRe = append(op.tabRe, op.tabRe...)
	op.tabIm = append(op.tabIm, op.tabIm...)
	return len(op.masks) - 1
}

// absorbDiag folds one diagonal gate into the run's phase table.
func (op *fusedOp) absorbDiag(g circuit.Gate, src srcGate) {
	op.src = append(op.src, src)
	switch g.Op {
	case circuit.OpCZ, circuit.OpCPhase:
		ph := complex(-1, 0) // CZ
		if g.Op == circuit.OpCPhase {
			if g.Params[0] == 0 {
				return // identity phase: the table, and the sweep, skip it
			}
			ph = cmplx.Exp(complex(0, g.Params[0]))
		}
		ka := op.tableBit(g.Qubits[0])
		if ka < 0 {
			ka = op.growTable(g.Qubits[0])
		}
		kb := op.tableBit(g.Qubits[1])
		if kb < 0 {
			kb = op.growTable(g.Qubits[1])
		}
		sel := 1<<uint(ka) | 1<<uint(kb)
		op.mulWhere(sel, sel, ph)
		op.identity = false
	default:
		d0, d1, _ := circuit.DiagEntries(g)
		if d0 == 1 && d1 == 1 {
			return // identity (id, rz(0)): nothing to fold in
		}
		k := op.tableBit(g.Qubits[0])
		if k < 0 {
			k = op.growTable(g.Qubits[0])
		}
		bit := 1 << uint(k)
		if d0 != 1 {
			op.mulWhere(bit, 0, d0)
		}
		if d1 != 1 {
			op.mulWhere(bit, bit, d1)
		}
		op.identity = false
	}
}

// mulWhere multiplies table entries whose index masked by sel equals
// want by the phase ph.
func (op *fusedOp) mulWhere(sel, want int, ph complex128) {
	pr, pi := real(ph), imag(ph)
	for idx := range op.tabRe {
		if idx&sel != want {
			continue
		}
		ar, ai := op.tabRe[idx], op.tabIm[idx]
		op.tabRe[idx] = ar*pr - ai*pi
		op.tabIm[idx] = ar*pi + ai*pr
	}
}

// applyDiagRange is the phase-table kernel: gather the run's qubit bits
// into a table index (one LUT load per index byte; the upper bytes'
// contribution is hoisted out of each 256-amplitude block) and
// multiply. Entries equal to 1 are skipped so sparse tables (a lone CZ
// touches a quarter of the index space) do not pay for writes they
// would not have made unfused.
//
//qcloud:noalloc
func (s *State) applyDiagRange(op *fusedOp, lo, hi int) {
	re, im := s.re, s.im
	tabRe, tabIm := op.tabRe, op.tabIm
	low := &op.lut[0]
	upper := op.lut[1:]
	for base := lo &^ 255; base < hi; base += 256 {
		hiIdx := uint16(0)
		for b := range upper {
			hiIdx |= upper[b][(base>>uint(8*(b+1)))&255]
		}
		first, last := base, base+256
		if first < lo {
			first = lo
		}
		if last > hi {
			last = hi
		}
		for i := first; i < last; i++ {
			idx := hiIdx | low[i&255]
			pr, pi := tabRe[idx], tabIm[idx]
			if pr == 1 && pi == 0 {
				continue
			}
			ar, ai := re[i], im[i]
			re[i] = ar*pr - ai*pi
			im[i] = ar*pi + ai*pr
		}
	}
}

// applyDiag sweeps a fused diagonal run over the state.
func (s *State) applyDiag(op *fusedOp) {
	if s.serialKernel() {
		s.applyDiagRange(op, 0, len(s.re))
		return
	}
	s.shard(func(lo, hi int) { s.applyDiagRange(op, lo, hi) })
}

// applySrc dispatches one lowered source gate onto the state.
//
//qcloud:noalloc
func applySrc(st *State, g *srcGate) {
	switch g.op {
	case circuit.OpCX:
		st.ApplyCX(g.q0, g.q1)
	case circuit.OpCZ:
		st.ApplyCZ(g.q0, g.q1)
	case circuit.OpCPhase:
		st.ApplyCPhase(g.q0, g.q1, g.theta)
	case circuit.OpSWAP:
		st.ApplySWAP(g.q0, g.q1)
	case circuit.OpCCX:
		st.ApplyCCX(g.q0, g.q1, g.q2)
	default:
		st.Apply1Q(g.mat, g.q0)
	}
}

// applyFast applies the op's fused kernel (the no-error path).
//
//qcloud:noalloc
func (op *fusedOp) applyFast(st *State) {
	switch op.kind {
	case opSrc:
		applySrc(st, &op.src[0])
	case opMat2:
		if !op.identity {
			st.Apply1Q(op.mat, op.q0)
		}
	case opMat4:
		if !op.identity {
			st.apply2Q(&op.mat4, op.q0, op.q1)
		}
	case opDiag:
		if !op.identity {
			st.applyDiag(op)
		}
	}
}

// applySlow replays the op's original gates one by one because the
// noise draw for gate `fired` came up positive: the Pauli must land
// between that gate and the next, which the fused kernel cannot
// represent. Draws for gates before `fired` were already consumed (and
// missed); draws after it happen here, in program order, exactly as the
// unfused engine would have made them.
//
//qcloud:noalloc
func (op *fusedOp) applySlow(st *State, sr *rand.Rand, fired int) {
	for k := range op.src {
		g := &op.src[k]
		applySrc(st, g)
		if k < fired {
			continue
		}
		if k > fired && (g.noiseP <= 0 || sr.Float64() >= g.noiseP) {
			continue
		}
		// Uniform non-identity Pauli on a random operand qubit; for 2q
		// errors this is the standard local-depolarizing approximation.
		q := g.qubit(sr.Intn(g.nq))
		switch sr.Intn(3) {
		case 0:
			st.Apply1Q(pauliXMat, q)
		case 1:
			st.Apply1Q(pauliYMat, q)
		default:
			st.Apply1Q(pauliZMat, q)
		}
	}
}

// exec runs one shot of the program on st, writing measurement results
// into clbits. st must be freshly Reset; clbits must be zeroed by the
// caller (unmeasured bits stay 0). The steady-state loop allocates
// nothing.
//
//qcloud:noalloc
func (p *program) exec(st *State, clbits []int, sr *rand.Rand) {
	noisy := p.noisy
	for oi := range p.ops {
		op := &p.ops[oi]
		switch op.kind {
		case opMeasure:
			bit := st.MeasureQubit(op.q0, sr)
			if noisy && sr.Float64() < op.roErr {
				bit ^= 1
			}
			clbits[op.clbit] = bit
		case opReset:
			st.ResetQubit(op.q0, sr)
		default:
			if noisy {
				// Consume the block's noise draws in gate order. Draws are
				// state-independent, so pulling them ahead of the fused
				// kernel leaves the shot's RNG stream identical to the
				// unfused engine's.
				fired := -1
				for j := range op.src {
					if pj := op.src[j].noiseP; pj > 0 && sr.Float64() < pj {
						fired = j
						break
					}
				}
				if fired >= 0 {
					op.applySlow(st, sr, fired)
					continue
				}
			}
			op.applyFast(st)
		}
	}
}
