// Batched shot dispatch: analysis sweeps (Fig 7 per machine, Fig 12
// staleness per day) run many small-shot jobs, each of which used to
// spin up its own trajectory pool — with the outer sweep parallel, the
// inner pools were forced serial to keep -workers a real concurrency
// bound. BatchRun instead submits every job's shots into ONE shared
// worker pool: jobs compile up front, shots split into fixed-size work
// units pulled from a shared queue, and each pool slot reuses its
// simulator state (per register width), RNG, and histogram buffers
// across jobs.
//
// Determinism: job j's shot s runs on the stream
// shotSeed(base_j, s) where base_j is derived from BatchJob.Seed
// exactly as RunOpts derives it from the caller's generator, so a
// job's Counts are bit-identical to a standalone
// RunOpts(job.Circ, job.Shots, job.Noise, rand.New(rand.NewSource(job.Seed)), p)
// for any worker count and any unit granularity (counts merge by
// commutative integer addition).
package qsim

import (
	"fmt"
	"math/rand"

	"qcloud/internal/circuit"
	"qcloud/internal/par"
)

// BatchJob is one circuit execution submitted to BatchRun.
type BatchJob struct {
	Circ  *circuit.Circuit
	Shots int
	// Noise is the job's noise model (nil runs noiseless).
	Noise *NoiseModel
	// Seed seeds the job's RNG stream: the job's Counts are
	// bit-identical to RunOpts with rand.New(rand.NewSource(Seed)).
	Seed int64
}

// BatchResult is one job's outcome. Err is per-job: a failing job does
// not abort the rest of the batch.
type BatchResult struct {
	Counts Counts
	Err    error
}

// batchChunkShots is the trajectory work-unit granularity: small enough
// that a handful of 300-shot jobs load-balance across a pool, large
// enough that per-unit bookkeeping (one Counts map) is noise.
const batchChunkShots = 64

// batchWorker owns one pool slot's reusable buffers, shared across
// every unit (and therefore every job) the slot executes.
type batchWorker struct {
	// states caches one simulator state per register width, since a
	// batch may interleave jobs of different widths.
	states map[int]*State
	sr     *rand.Rand
	clbits []int
	dense  []int
}

func (bw *batchWorker) state(n, workers, minAmps int) (*State, error) {
	if st, ok := bw.states[n]; ok {
		return st, nil
	}
	st, err := NewState(n)
	if err != nil {
		return nil, err
	}
	st.SetWorkers(workers).SetKernelMinAmps(minAmps)
	bw.states[n] = st
	return st, nil
}

// BatchRun executes every job on one shared trajectory worker pool and
// returns per-job results in input order. Exact-path jobs (no noise,
// terminal measurement only) run as single work units; trajectory jobs
// are split into shot-range units so many small jobs spread across the
// pool instead of nesting serial inner pools.
func BatchRun(jobs []BatchJob, p Parallelism) []BatchResult {
	results := make([]BatchResult, len(jobs))
	type jobProg struct {
		prog  *program
		base  int64
		exact bool
	}
	progs := make([]jobProg, len(jobs))
	type unit struct {
		job    int
		lo, hi int // trajectory shot range (unused for exact jobs)
	}
	var units []unit
	fuse, fuse2q := p.fusePasses()
	for j := range jobs {
		job := &jobs[j]
		if job.Circ == nil {
			results[j].Err = fmt.Errorf("qsim: batch job %d: nil circuit", j)
			continue
		}
		if job.Shots <= 0 {
			results[j].Err = fmt.Errorf("qsim: batch job %d: shots must be positive, got %d", j, job.Shots)
			continue
		}
		if usedQubits(job.Circ) > MaxQubits {
			results[j].Err = fmt.Errorf("qsim: batch job %d: circuit touches qubits beyond the %d-qubit dense limit", j, MaxQubits)
			continue
		}
		if job.Noise == nil && isTerminalMeasureOnly(job.Circ) {
			progs[j].exact = true
			units = append(units, unit{job: j})
			continue
		}
		prog, err := compileProgram(job.Circ, job.Noise, fuse, fuse2q)
		if err != nil {
			results[j].Err = err
			continue
		}
		progs[j].prog = prog
		// The base seed is the first Int63 of the job's generator —
		// exactly what runTrajectories would have drawn.
		progs[j].base = rand.New(rand.NewSource(job.Seed)).Int63()
		for lo := 0; lo < job.Shots; lo += batchChunkShots {
			hi := lo + batchChunkShots
			if hi > job.Shots {
				hi = job.Shots
			}
			units = append(units, unit{j, lo, hi})
		}
	}
	workers := p.workers()
	if workers > len(units) {
		workers = len(units)
	}
	// As in runTrajectories: once the unit pool is parallel it
	// saturates the CPUs, so per-unit kernels stay serial.
	kernelWorkers := p.Workers
	if workers > 1 {
		kernelWorkers = 1
	}
	nSlots := workers
	if nSlots < 1 {
		nSlots = 1
	}
	pool := make([]batchWorker, nSlots)
	unitCounts := make([]Counts, len(units))
	unitErrs := make([]error, len(units))
	par.ForEachWorker(len(units), workers, func(w, u int) {
		ut := units[u]
		job := &jobs[ut.job]
		if progs[ut.job].exact {
			// One evolution + multinomial sampling; the job's generator
			// is created here so its draw sequence matches RunOpts.
			counts, err := runExact(job.Circ, job.Shots, rand.New(rand.NewSource(job.Seed)), Parallelism{
				Workers:         kernelWorkers,
				KernelMinAmps:   p.KernelMinAmps,
				DisableFusion:   p.DisableFusion,
				DisableFusion2Q: p.DisableFusion2Q,
			})
			unitCounts[u], unitErrs[u] = counts, err
			return
		}
		bw := &pool[w]
		if bw.sr == nil {
			bw.states = make(map[int]*State)
			// Reseeded per shot; lfSource replays the rand.NewSource
			// streams with a ~4x cheaper reseed (see rngsource.go).
			bw.sr = rand.New(newLFSource())
		}
		st, err := bw.state(job.Circ.NQubits, kernelWorkers, p.KernelMinAmps)
		if err != nil {
			unitErrs[u] = err
			return
		}
		nclbits := job.Circ.NClbits
		if cap(bw.clbits) < nclbits {
			bw.clbits = make([]int, nclbits)
		}
		clbits := bw.clbits[:nclbits]
		var dense []int
		if nclbits <= maxDenseClbits {
			if cap(bw.dense) < 1<<uint(nclbits) {
				bw.dense = make([]int, 1<<uint(nclbits))
			}
			dense = bw.dense[:1<<uint(nclbits)]
			clear(dense)
		}
		local := make(Counts)
		prog := progs[ut.job].prog
		base := progs[ut.job].base
		for s := ut.lo; s < ut.hi; s++ {
			bw.sr.Seed(shotSeed(base, s))
			st.Reset()
			for i := range clbits {
				clbits[i] = 0
			}
			prog.exec(st, clbits, bw.sr)
			if dense != nil {
				idx := 0
				for i, b := range clbits {
					idx |= b << uint(i)
				}
				dense[idx]++
			} else {
				local[bitstring(clbits)]++
			}
		}
		for idx, n := range dense {
			if n > 0 {
				local[indexBitstring(idx, nclbits)] = n
			}
		}
		unitCounts[u] = local
	})
	for u := range units {
		j := units[u].job
		if unitErrs[u] != nil && results[j].Err == nil {
			results[j].Err = unitErrs[u]
		}
	}
	for u := range units {
		j := units[u].job
		if results[j].Err != nil {
			continue
		}
		if results[j].Counts == nil {
			results[j].Counts = make(Counts)
		}
		results[j].Counts.merge(unitCounts[u])
	}
	for j := range results {
		if results[j].Err != nil {
			results[j].Counts = nil
		}
	}
	return results
}
