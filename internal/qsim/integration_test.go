package qsim

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"qcloud/internal/backend"
	"qcloud/internal/circuit"
	"qcloud/internal/circuit/gens"
	"qcloud/internal/compile"
)

// These tests close the loop between the transpiler and the simulator:
// a compiled circuit, compacted back down to its active qubits, must
// produce the same measurement statistics as the source circuit. This
// is the strongest semantic check on the compiler (layout, routing,
// basis translation, and all optimizations together).

func compileAndCompact(t *testing.T, c *circuit.Circuit, machineName string, seed int64) *circuit.Circuit {
	t.Helper()
	m, err := backend.FindMachine(backend.Fleet(), machineName)
	if err != nil {
		t.Fatal(err)
	}
	cal := m.CalibrationAt(time.Date(2021, 3, 15, 9, 0, 0, 0, time.UTC))
	res, err := compile.Compile(c, m, cal, compile.Options{Seed: seed})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	compacted, _ := Compact(res.Circ)
	return compacted
}

func TestCompiledBVStillRecoversSecret(t *testing.T) {
	secret := uint64(0b1101)
	for _, machine := range []string{"ibmq_athens", "ibmq_vigo", "ibmqx2", "ibmq_casablanca"} {
		cc := compileAndCompact(t, gens.BernsteinVazirani(4, secret), machine, 21)
		r := rand.New(rand.NewSource(22))
		counts, err := Run(cc, 300, nil, r)
		if err != nil {
			t.Fatalf("%s: %v", machine, err)
		}
		if p := counts.Prob("1101"); p < 0.999 {
			t.Fatalf("%s: compiled BV P(secret) = %v, counts %v", machine, p, counts)
		}
	}
}

func TestCompiledGHZKeepsDistribution(t *testing.T) {
	for _, machine := range []string{"ibmq_athens", "ibmq_belem", "ibmq_16_melbourne"} {
		cc := compileAndCompact(t, gens.GHZ(4), machine, 23)
		r := rand.New(rand.NewSource(24))
		counts, err := Run(cc, 3000, nil, r)
		if err != nil {
			t.Fatalf("%s: %v", machine, err)
		}
		good := counts.Prob("0000") + counts.Prob("1111")
		if good < 0.999 {
			t.Fatalf("%s: compiled GHZ support broken: %v", machine, counts)
		}
		if math.Abs(counts.Prob("0000")-0.5) > 0.05 {
			t.Fatalf("%s: compiled GHZ imbalance: %v", machine, counts.Prob("0000"))
		}
	}
}

func TestCompiledQFTBenchAllZeros(t *testing.T) {
	for _, machine := range []string{"ibmq_rome", "ibmq_vigo", "ibmq_guadalupe"} {
		cc := compileAndCompact(t, gens.QFTBench(4), machine, 25)
		r := rand.New(rand.NewSource(26))
		counts, err := Run(cc, 400, nil, r)
		if err != nil {
			t.Fatalf("%s: %v", machine, err)
		}
		if p := counts.Prob("0000"); p < 0.995 {
			t.Fatalf("%s: compiled QFT bench P(0000) = %v", machine, p)
		}
	}
}

func TestCompiledAdderComputesSum(t *testing.T) {
	// 2-bit adder: a=01, b=01 -> b out = 10, carry 0. Build inputs by
	// X gates before the adder body.
	n := 2
	c := circuit.New("addertest", 2*n+2)
	c.X(0) // a = 01
	c.X(2) // b = 01 (b register starts at index n=2)
	add := gens.RippleCarryAdder(n)
	c.Gates = append(c.Gates, add.Gates...)
	cc := compileAndCompact(t, c, "ibmq_16_melbourne", 27)
	r := rand.New(rand.NewSource(28))
	counts, err := Run(cc, 200, nil, r)
	if err != nil {
		t.Fatal(err)
	}
	best, _ := counts.MostFrequent()
	// Register layout (clbit order, msb leftmost in the string):
	// [cout cin b1 b0 a1 a0]. a stays 01, b holds the sum 10, no carry.
	want := "001001"
	if best != want {
		t.Fatalf("adder result %q, want %q (counts %v)", best, want, counts)
	}
	if counts.Prob(want) < 0.999 {
		t.Fatal("adder should be deterministic")
	}
}

func TestNoisyCompiledQFTDegradesWithCXCount(t *testing.T) {
	// The Fig 7 mechanism: more CX gates after compilation means lower
	// POS under the same noise. Compare a CSP-embeddable GHZ-like
	// workload with QFT (dense interactions) on the same machine.
	m, err := backend.FindMachine(backend.Fleet(), "ibmq_vigo")
	if err != nil {
		t.Fatal(err)
	}
	cal := m.CalibrationAt(time.Date(2021, 3, 15, 9, 0, 0, 0, time.UTC))
	noise := UniformNoise(5e-4, 0.03, 0.02)

	light, err := compile.Compile(gens.GHZ(4), m, cal, compile.Options{Seed: 30})
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := compile.Compile(gens.QFTBench(4), m, cal, compile.Options{Seed: 30})
	if err != nil {
		t.Fatal(err)
	}
	if heavy.Metrics.CXCount <= light.Metrics.CXCount {
		t.Fatalf("expected QFT to need more CX than GHZ: %d vs %d",
			heavy.Metrics.CXCount, light.Metrics.CXCount)
	}
	lightC, lm := Compact(light.Circ)
	heavyC, hm := Compact(heavy.Circ)
	r := rand.New(rand.NewSource(31))
	posLight, err := ProbabilityOfSuccess(lightC, strings.Repeat("0", 4), 1500, noise.Remap(lm), r)
	if err != nil {
		t.Fatal(err)
	}
	// GHZ succeeds on 0000 or 1111; count both.
	countsLight, err := Run(lightC, 1500, noise.Remap(lm), rand.New(rand.NewSource(32)))
	if err != nil {
		t.Fatal(err)
	}
	posLight = countsLight.Prob("0000") + countsLight.Prob("1111")
	posHeavy, err := ProbabilityOfSuccess(heavyC, "0000", 1500, noise.Remap(hm), r)
	if err != nil {
		t.Fatal(err)
	}
	if posHeavy >= posLight {
		t.Fatalf("POS should fall with CX count: light %v vs heavy %v", posLight, posHeavy)
	}
}

func TestEstimatePOSBounds(t *testing.T) {
	m, err := backend.FindMachine(backend.Fleet(), "ibmq_toronto")
	if err != nil {
		t.Fatal(err)
	}
	cal := m.CalibrationAt(time.Date(2021, 2, 1, 12, 0, 0, 0, time.UTC))
	res, err := compile.Compile(gens.QFTBench(4), m, cal, compile.Options{Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	pos := EstimatePOS(res.Circ, cal, 0)
	if pos <= 0 || pos > 1 {
		t.Fatalf("POS estimate out of range: %v", pos)
	}
	// Staleness should not increase the estimate much; it mostly hurts.
	stale := EstimatePOS(res.Circ, cal, 48)
	if stale > pos*1.15 {
		t.Fatalf("48h-stale estimate implausibly better: %v vs %v", stale, pos)
	}
}

func TestEstimatePOSMoreCXLower(t *testing.T) {
	m, err := backend.FindMachine(backend.Fleet(), "ibmq_guadalupe")
	if err != nil {
		t.Fatal(err)
	}
	cal := m.CalibrationAt(time.Date(2021, 3, 1, 12, 0, 0, 0, time.UTC))
	small, err := compile.Compile(gens.QFTBench(3), m, cal, compile.Options{Seed: 34})
	if err != nil {
		t.Fatal(err)
	}
	big, err := compile.Compile(gens.QFTBench(6), m, cal, compile.Options{Seed: 34})
	if err != nil {
		t.Fatal(err)
	}
	if EstimatePOS(big.Circ, cal, 0) >= EstimatePOS(small.Circ, cal, 0) {
		t.Fatal("bigger QFT should have lower estimated POS")
	}
}

func TestCompactRemapsNoise(t *testing.T) {
	c := circuit.New("wide", 10)
	c.H(7).CX(7, 8).Measure(7, 0).Measure(8, 1)
	cc, origOf := Compact(c)
	if cc.NQubits != 2 {
		t.Fatalf("compacted width = %d, want 2", cc.NQubits)
	}
	if origOf[0] != 7 || origOf[1] != 8 {
		t.Fatalf("origOf = %v", origOf)
	}
	// Noise keyed on original indices must survive the remap.
	seen := map[int]bool{}
	noise := &NoiseModel{Readout: func(q int) float64 {
		seen[q] = true
		return 0
	}}
	remapped := noise.Remap(origOf)
	remapped.ReadoutError(0)
	remapped.ReadoutError(1)
	if !seen[7] || !seen[8] {
		t.Fatalf("remapped noise queried %v, want {7,8}", seen)
	}
}

func TestCompactEmptyCircuit(t *testing.T) {
	c := circuit.New("empty", 4)
	cc, origOf := Compact(c)
	if cc.NQubits != 1 || len(origOf) != 0 {
		t.Fatalf("empty compact: %d qubits, origOf %v", cc.NQubits, origOf)
	}
}

func TestMultiProgramBothProgramsCorrect(t *testing.T) {
	// §IV-D.3 multi-programming: co-compiled GHZ and BV must both
	// behave as if they ran alone.
	m, err := backend.FindMachine(backend.Fleet(), "ibmq_16_melbourne")
	if err != nil {
		t.Fatal(err)
	}
	cal := m.CalibrationAt(time.Date(2021, 3, 1, 12, 0, 0, 0, time.UTC))
	secret := uint64(0b110)
	res, err := compile.MultiProgram(gens.GHZ(4), gens.BernsteinVazirani(3, secret), m, cal, compile.Options{Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	compacted, _ := Compact(res.Circ)
	counts, err := Run(compacted, 2000, nil, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	// Bitstring layout: [BV(3 bits) | GHZ(4 bits)], clbit 0 rightmost.
	ghzBalance := 0.0
	for bits, n := range counts {
		bv := bits[:3]  // clbits 6..4
		ghz := bits[3:] // clbits 3..0
		if bv != "110" {
			t.Fatalf("BV half corrupted: %q in %q", bv, bits)
		}
		if ghz != "0000" && ghz != "1111" {
			t.Fatalf("GHZ half corrupted: %q in %q", ghz, bits)
		}
		if ghz == "0000" {
			ghzBalance += float64(n)
		}
	}
	frac := ghzBalance / float64(counts.Total())
	if math.Abs(frac-0.5) > 0.05 {
		t.Fatalf("GHZ balance off: %v", frac)
	}
}
