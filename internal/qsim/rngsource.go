// Fast reseedable RNG source for the per-shot streams.
//
// The determinism contract pins every shot to the stream
// rand.NewSource(shotSeed(base, s)) — the kept-verbatim PR 1 reference
// engine draws from exactly that generator, so the pooled engines may
// not change the stream, only produce it faster. Profiling the Fig 7
// trajectory sweep shows ~3/4 of per-shot wall time inside
// rand.(*rngSource).Seed: the additive-lagged-Fibonacci warm-up runs
// 1841 steps of the seeding LCG x' = 48271·x mod 2³¹-1, each paying an
// integer division (Schrage's algorithm).
//
// lfSource is a bit-identical reimplementation of that source with two
// changes invisible in the output stream:
//
//   - the seeding LCG reduces mod the Mersenne prime 2³¹-1 by folding
//     (v & p) + (v >> 31) — two adds and a compare instead of a
//     division, ~4x faster per step;
//   - the stdlib's unexported rngCooked seeding table is recovered
//     once at init from the public API (see recoverCooked), so no
//     internal state is copied and any upstream change to the
//     generator would be caught by the stream-equality test instead of
//     silently diverging.
//
// Workers reseed one lfSource-backed rand.Rand per shot; everything
// above the Source64 interface (Float64, Intn) is the stdlib's own
// mapping, so counts are unchanged by construction — and pinned by the
// reference-engine equivalence suites.
package qsim

import "math/rand"

const (
	lfLen    = 607       // lagged-Fibonacci register length
	lfTap    = 273       // feedback tap distance
	lfMask   = 1<<63 - 1 // Int63 output mask
	int31max = 1<<31 - 1 // the Mersenne prime 2³¹-1 of the seeding LCG
)

// lfCooked is the recovered seeding table (stdlib rngCooked).
var lfCooked = recoverCooked()

// lfMul3 is 48271³ mod 2³¹-1: the three-step jump of the seeding LCG,
// letting Seed run three independent strided lanes instead of one
// serial chain of 3·607 dependent multiplies.
var lfMul3 = uint64(48271) * 48271 % int31max * 48271 % int31max

// lfSeedrand advances the seeding LCG: (48271·x) mod 2³¹-1, reduced by
// Mersenne folding instead of division. The product fits 47 bits, so
// one fold plus one conditional subtract lands in [0, 2³¹-2], exactly
// as the stdlib's Schrage-method seedrand produces (x is never 0).
//
//qcloud:noalloc
func lfSeedrand(x int32) int32 {
	v := uint64(x) * 48271
	v = (v & int31max) + (v >> 31)
	if v >= int31max {
		v -= int31max
	}
	return int32(v)
}

// lfSource is the fast reseedable source. It implements rand.Source64.
type lfSource struct {
	vec       [lfLen]int64
	tap, feed int
}

// newLFSource returns an unseeded source; callers must Seed before use
// (the trajectory pools reseed per shot).
func newLFSource() *lfSource { return &lfSource{} }

// lfStep advances one seeding lane by an arbitrary multiplier mod
// 2³¹-1 (x, mul < 2³¹, so the product fits 62 bits and two folds plus
// a conditional subtract reduce it exactly).
//
//qcloud:noalloc
func lfStep(x, mul uint64) uint64 {
	v := x * mul
	v = (v & int31max) + (v >> 31)
	v = (v & int31max) + (v >> 31)
	if v >= int31max {
		v -= int31max
	}
	return v
}

// Seed produces exactly the register state rand.(*rngSource).Seed
// does: same seed reduction, same 20-step warm-up, same per-slot
// 64-bit assembly from three consecutive LCG values, same cooked-table
// XOR. Slot i consumes chain values x_{3i+1..3i+3}, so the fill runs
// as three strided lanes stepped by 48271³ — independent dependency
// chains the CPU can overlap — instead of 3·607 serial multiplies.
//
//qcloud:noalloc
func (s *lfSource) Seed(seed int64) {
	s.tap = 0
	s.feed = lfLen - lfTap
	seed = seed % int31max
	if seed < 0 {
		seed += int31max
	}
	if seed == 0 {
		seed = 89482311
	}
	x := int32(seed)
	for i := -20; i < 0; i++ {
		x = lfSeedrand(x)
	}
	a := lfStep(uint64(x), 48271)
	b := lfStep(a, 48271)
	c := lfStep(b, 48271)
	for i := 0; i < lfLen; i++ {
		s.vec[i] = int64(a<<40 ^ b<<20 ^ c ^ uint64(lfCooked[i]))
		a = lfStep(a, lfMul3)
		b = lfStep(b, lfMul3)
		c = lfStep(c, lfMul3)
	}
}

//qcloud:noalloc
func (s *lfSource) Uint64() uint64 {
	s.tap--
	if s.tap < 0 {
		s.tap += lfLen
	}
	s.feed--
	if s.feed < 0 {
		s.feed += lfLen
	}
	x := s.vec[s.feed] + s.vec[s.tap]
	s.vec[s.feed] = x
	return uint64(x)
}

//qcloud:noalloc
func (s *lfSource) Int63() int64 {
	return int64(s.Uint64() & lfMask)
}

// recoverCooked reconstructs the stdlib's unexported seeding table from
// observable output. Seeding with any known seed sets
// vec0[i] = u_i ^ cooked[i], where the u_i chain is the public seeding
// algorithm (reproduced above). The generator is additive with taps
// (607, 273): draw k computes out_k = vec[feed_k] + vec[tap_k] and
// stores the sum at feed_k. Within the first 607 draws every register
// slot is written exactly once, and:
//
//   - for draws 273..606 the tap slot was itself written exactly 273
//     draws earlier, so vec0[feed_k] = out_k - out_{k-273};
//   - for draws 0..272 the tap slot is still original — and is one of
//     the slots the first phase just recovered — so
//     vec0[feed_k] = out_k - vec0[tap_k].
//
// Together they yield all of vec0, and cooked[i] = vec0[i] ^ u_i.
// Integer addition wraps identically for int64 and uint64, so the
// subtractions invert the sums exactly.
func recoverCooked() [lfLen]int64 {
	src := rand.NewSource(1).(rand.Source64)
	outs := make([]int64, lfLen)
	for k := range outs {
		outs[k] = int64(src.Uint64())
	}
	taps := make([]int, lfLen)
	feeds := make([]int, lfLen)
	tap, feed := 0, lfLen-lfTap
	for k := 0; k < lfLen; k++ {
		tap--
		if tap < 0 {
			tap += lfLen
		}
		feed--
		if feed < 0 {
			feed += lfLen
		}
		taps[k], feeds[k] = tap, feed
	}
	var vec0 [lfLen]int64
	for k := lfTap; k < lfLen; k++ {
		vec0[feeds[k]] = outs[k] - outs[k-lfTap]
	}
	for k := 0; k < lfTap; k++ {
		vec0[feeds[k]] = outs[k] - vec0[taps[k]]
	}
	// Replay the seeding chain for seed 1 to strip the u_i layer.
	var cooked [lfLen]int64
	x := int32(1)
	for i := -20; i < 0; i++ {
		x = lfSeedrand(x)
	}
	for i := 0; i < lfLen; i++ {
		x = lfSeedrand(x)
		u := uint64(x) << 40
		x = lfSeedrand(x)
		u ^= uint64(x) << 20
		x = lfSeedrand(x)
		u ^= uint64(x)
		cooked[i] = int64(u ^ uint64(vec0[i]))
	}
	return cooked
}
