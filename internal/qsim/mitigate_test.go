package qsim

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"qcloud/internal/backend"
	"qcloud/internal/circuit"
	"qcloud/internal/circuit/gens"
	"qcloud/internal/compile"
)

func TestMitigatorValidation(t *testing.T) {
	if _, err := NewReadoutMitigator(2, func(int) float64 { return 0.5 }); err == nil {
		t.Fatal("p=0.5 is not invertible")
	}
	if _, err := NewReadoutMitigator(2, func(int) float64 { return -0.1 }); err == nil {
		t.Fatal("negative p should fail")
	}
}

func TestMitigatorIdentityWhenNoError(t *testing.T) {
	m, err := NewReadoutMitigator(2, func(int) float64 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	counts := Counts{"01": 300, "10": 700}
	quasi := m.Apply(counts)
	if math.Abs(quasi["01"]-0.3) > 1e-12 || math.Abs(quasi["10"]-0.7) > 1e-12 {
		t.Fatalf("zero-error mitigation changed counts: %v", quasi)
	}
}

func TestMitigatorRecoversDeterministicState(t *testing.T) {
	// Prepare |1> with a noisy readout; mitigation should recover
	// P(1) ~ 1 from the corrupted counts.
	r := rand.New(rand.NewSource(1))
	c := circuit.New("one", 1)
	c.X(0).Measure(0, 0)
	flip := 0.12
	noise := &NoiseModel{Readout: func(int) float64 { return flip }}
	counts, err := Run(c, 40000, noise, r)
	if err != nil {
		t.Fatal(err)
	}
	// Raw is visibly corrupted.
	if counts.Prob("1") > 0.92 {
		t.Fatalf("raw counts not corrupted enough: %v", counts.Prob("1"))
	}
	m, err := NewReadoutMitigator(1, func(int) float64 { return flip })
	if err != nil {
		t.Fatal(err)
	}
	if got := m.MitigatedProb(counts, "1"); math.Abs(got-1) > 0.02 {
		t.Fatalf("mitigated P(1) = %v, want ~1", got)
	}
}

func TestMitigatorImprovesGHZ(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	flip := 0.06
	noise := &NoiseModel{Readout: func(int) float64 { return flip }}
	counts, err := Run(gens.GHZ(4), 30000, noise, r)
	if err != nil {
		t.Fatal(err)
	}
	raw := counts.Prob("0000") + counts.Prob("1111")
	m, err := NewReadoutMitigator(4, func(int) float64 { return flip })
	if err != nil {
		t.Fatal(err)
	}
	quasi := m.Apply(counts)
	mitigated := quasi["0000"] + quasi["1111"]
	if mitigated <= raw {
		t.Fatalf("mitigation did not help: raw %v vs mitigated %v", raw, mitigated)
	}
	if mitigated < 0.97 {
		t.Fatalf("mitigated GHZ fidelity %v, want ~1", mitigated)
	}
	// Quasi-distribution must be a valid distribution after projection.
	sum := 0.0
	for _, v := range quasi {
		if v < 0 {
			t.Fatalf("negative probability survived projection: %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("mitigated distribution sums to %v", sum)
	}
}

func TestMitigatorFromCalibrationEndToEnd(t *testing.T) {
	// Full pipeline: compile QFT bench, run with calibration noise,
	// mitigate with the same calibration's readout errors; POS improves.
	m, err := backend.FindMachine(backend.Fleet(), "ibmq_rome")
	if err != nil {
		t.Fatal(err)
	}
	cal := m.CalibrationAt(time.Date(2021, 3, 10, 12, 0, 0, 0, time.UTC))
	res, err := compile.Compile(gens.QFTBench(3), m, cal, compile.Options{Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	compacted, origOf := Compact(res.Circ)
	noise := NoiseFromCalibration(cal, 0).Remap(origOf)
	counts, err := Run(compacted, 20000, noise, rand.New(rand.NewSource(72)))
	if err != nil {
		t.Fatal(err)
	}
	// clbit -> physical qubit mapping from the compiled measures.
	clbitQubit := make([]int, compacted.NClbits)
	for _, g := range res.Circ.Gates {
		if g.Op == circuit.OpMeasure {
			clbitQubit[g.Clbit] = g.Qubits[0]
		}
	}
	mit, err := MitigatorFromCalibration(cal, clbitQubit)
	if err != nil {
		t.Fatal(err)
	}
	raw := counts.Prob("000")
	mitigated := mit.MitigatedProb(counts, "000")
	if mitigated <= raw {
		t.Fatalf("calibrated mitigation did not improve POS: %v -> %v", raw, mitigated)
	}
}
