package qsim

import (
	"fmt"
	"math"
	"sort"

	"qcloud/internal/backend"
)

// ReadoutMitigator undoes calibrated readout (measurement) error from
// observed counts using the tensor-product error model: each qubit's
// readout is an independent binary channel with known flip
// probabilities, so the 2x2 confusion matrix per qubit can be inverted
// and applied bit by bit. This is the standard NISQ measurement-error
// mitigation technique, one of the fidelity levers the paper's
// recommendations motivate.
type ReadoutMitigator struct {
	// inv[i] is the inverted 2x2 confusion matrix of clbit i,
	// row-major: [p(true0|obs0), p(true0|obs1), p(true1|obs0), ...]
	// stored as the matrix applied to observed probability vectors.
	inv [][4]float64
}

// NewReadoutMitigator builds a mitigator for nClbits classical bits.
// flipProb(i) returns the symmetric readout flip probability of clbit
// i (probability of reading the wrong value). Flip probabilities must
// be below 0.5 for the confusion matrix to be invertible.
func NewReadoutMitigator(nClbits int, flipProb func(i int) float64) (*ReadoutMitigator, error) {
	m := &ReadoutMitigator{inv: make([][4]float64, nClbits)}
	for i := 0; i < nClbits; i++ {
		p := flipProb(i)
		if p < 0 || p >= 0.5 {
			return nil, fmt.Errorf("qsim: clbit %d flip probability %v outside [0, 0.5)", i, p)
		}
		// Confusion matrix A = [[1-p, p], [p, 1-p]]; inverse is
		// 1/(1-2p) * [[1-p, -p], [-p, 1-p]].
		d := 1 - 2*p
		m.inv[i] = [4]float64{(1 - p) / d, -p / d, -p / d, (1 - p) / d}
	}
	return m, nil
}

// MitigatorFromCalibration builds a ReadoutMitigator for a compiled
// circuit's measured qubits: clbitQubit maps clbit index -> physical
// qubit, and cal supplies per-qubit readout errors.
func MitigatorFromCalibration(cal *backend.Calibration, clbitQubit []int) (*ReadoutMitigator, error) {
	return NewReadoutMitigator(len(clbitQubit), func(i int) float64 {
		q := clbitQubit[i]
		if q >= 0 && q < len(cal.ErrRO) {
			return cal.ErrRO[q]
		}
		return 0
	})
}

// Apply returns the mitigated quasi-probability distribution for the
// observed counts. The tensor-product inverse can produce small
// negative quasi-probabilities; they are clipped to zero and the
// result renormalized (the usual least-disturbance projection).
func (m *ReadoutMitigator) Apply(counts Counts) map[string]float64 {
	n := len(m.inv)
	total := float64(counts.Total())
	quasi := make(map[string]float64)
	// Accumulate in sorted bitstring order: quasi[...] sums float
	// weights across observed strings, and float addition is
	// order-sensitive, so map iteration order would perturb the output
	// at the ulp level from run to run.
	observedKeys := make([]string, 0, len(counts))
	for observed := range counts {
		observedKeys = append(observedKeys, observed)
	}
	sort.Strings(observedKeys)
	for _, observed := range observedKeys {
		pObs := float64(counts[observed]) / total
		// Distribute this observation's probability over all true
		// strings reachable by flipping bits, weighted by the inverse
		// channel. Expanding all 2^n terms is exponential; instead walk
		// bit by bit, keeping only weights above a floor.
		type partial struct {
			bits   []byte
			weight float64
		}
		parts := []partial{{bits: make([]byte, 0, n), weight: pObs}}
		for i := 0; i < n; i++ {
			// Clbit i is rendered at string position n-1-i.
			obsBit := observed[n-1-i] - '0'
			var next []partial
			for _, p := range parts {
				for trueBit := byte(0); trueBit <= 1; trueBit++ {
					// inv is indexed [trueBit][obsBit].
					w := p.weight * m.inv[i][int(trueBit)*2+int(obsBit)]
					if math.Abs(w) < 1e-12 {
						continue
					}
					nb := append(append([]byte(nil), p.bits...), '0'+trueBit)
					next = append(next, partial{bits: nb, weight: w})
				}
			}
			parts = next
		}
		for _, p := range parts {
			// p.bits were built clbit 0 first; render high bit leftmost.
			rev := make([]byte, n)
			for i := 0; i < n; i++ {
				rev[n-1-i] = p.bits[i]
			}
			quasi[string(rev)] += p.weight
		}
	}
	// Clip negatives and renormalize, again folding the float sum in
	// sorted key order for reproducibility.
	keys := make([]string, 0, len(quasi))
	for k := range quasi {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sum := 0.0
	for _, k := range keys {
		if quasi[k] < 0 {
			delete(quasi, k)
			continue
		}
		sum += quasi[k]
	}
	if sum > 0 {
		for _, k := range keys {
			if v, ok := quasi[k]; ok {
				quasi[k] = v / sum
			}
		}
	}
	return quasi
}

// MitigatedProb returns the mitigated probability of one bitstring.
func (m *ReadoutMitigator) MitigatedProb(counts Counts, bits string) float64 {
	return m.Apply(counts)[bits]
}
