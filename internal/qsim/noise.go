package qsim

import (
	"math/rand"

	"qcloud/internal/backend"
	"qcloud/internal/circuit"
)

// NoiseModel supplies per-qubit and per-coupler error probabilities for
// Monte-Carlo trajectory simulation. Indices refer to the qubit labels
// of the circuit being run (use Remap after Compact).
type NoiseModel struct {
	// OneQubit returns the depolarizing probability after a 1q gate.
	OneQubit func(q int) float64
	// TwoQubit returns the depolarizing probability after a 2q gate.
	TwoQubit func(a, b int) float64
	// Readout returns the bit-flip probability at measurement.
	Readout func(q int) float64
}

// ReadoutError returns the readout flip probability for qubit q
// (0 when no readout model is set).
func (n *NoiseModel) ReadoutError(q int) float64 {
	if n == nil || n.Readout == nil {
		return 0
	}
	return n.Readout(q)
}

// applyAfterGate injects a random Pauli error after gate g with the
// modeled probability. It is the reference semantics of the noise
// channel: the fused executor reproduces exactly this draw sequence and
// Pauli placement from precomputed per-gate probabilities (see fuse.go
// and the equivalence tests), so the per-shot hot path never calls the
// model closures or rebuilds Pauli matrices.
func (n *NoiseModel) applyAfterGate(st *State, g circuit.Gate, r *rand.Rand) {
	var p float64
	switch {
	case g.Op.IsTwoQubit() && n.TwoQubit != nil:
		p = n.TwoQubit(g.Qubits[0], g.Qubits[1])
	case len(g.Qubits) == 1 && n.OneQubit != nil:
		p = n.OneQubit(g.Qubits[0])
	}
	if p <= 0 || r.Float64() >= p {
		return
	}
	// Uniform non-identity Pauli on a random operand qubit; for 2q
	// errors this is the standard local-depolarizing approximation.
	q := g.Qubits[r.Intn(len(g.Qubits))]
	switch r.Intn(3) {
	case 0:
		m, _ := circuit.GateMat2(circuit.Gate{Op: circuit.OpX, Qubits: []int{q}})
		st.Apply1Q(m, q)
	case 1:
		m, _ := circuit.GateMat2(circuit.Gate{Op: circuit.OpY, Qubits: []int{q}})
		st.Apply1Q(m, q)
	default:
		m, _ := circuit.GateMat2(circuit.Gate{Op: circuit.OpZ, Qubits: []int{q}})
		st.Apply1Q(m, q)
	}
}

// UniformNoise returns a NoiseModel with flat error rates.
func UniformNoise(oneQ, twoQ, readout float64) *NoiseModel {
	return &NoiseModel{
		OneQubit: func(int) float64 { return oneQ },
		TwoQubit: func(int, int) float64 { return twoQ },
		Readout:  func(int) float64 { return readout },
	}
}

// NoiseFromCalibration builds a NoiseModel from a machine calibration
// snapshot, with staleHours of drift applied to coupler errors — the
// mechanism behind the paper's calibration-crossover fidelity loss
// (Fig 12).
func NoiseFromCalibration(cal *backend.Calibration, staleHours float64) *NoiseModel {
	return &NoiseModel{
		OneQubit: func(q int) float64 {
			if q < len(cal.Err1Q) {
				return cal.Err1Q[q]
			}
			return 0
		},
		TwoQubit: func(a, b int) float64 {
			return backend.DriftedCXError(cal, a, b, staleHours, cal.MeanCXError())
		},
		Readout: func(q int) float64 {
			if q < len(cal.ErrRO) {
				return cal.ErrRO[q]
			}
			return 0
		},
	}
}

// Remap returns a NoiseModel whose indices are the compacted labels
// produced by Compact: origOf[new] = original physical index.
func (n *NoiseModel) Remap(origOf []int) *NoiseModel {
	if n == nil {
		return nil
	}
	orig := func(q int) int {
		if q < len(origOf) {
			return origOf[q]
		}
		return q
	}
	out := &NoiseModel{}
	if n.OneQubit != nil {
		f := n.OneQubit
		out.OneQubit = func(q int) float64 { return f(orig(q)) }
	}
	if n.TwoQubit != nil {
		f := n.TwoQubit
		out.TwoQubit = func(a, b int) float64 { return f(orig(a), orig(b)) }
	}
	if n.Readout != nil {
		f := n.Readout
		out.Readout = func(q int) float64 { return f(orig(q)) }
	}
	return out
}

// Compact relabels the circuit's touched qubits densely to 0..k-1 so a
// machine-wide compiled circuit (e.g. 65 physical qubits, 4 used) fits
// the dense simulator. It returns the compacted circuit and origOf,
// where origOf[new] = original index. Barrier operands on untouched
// qubits are dropped.
func Compact(c *circuit.Circuit) (*circuit.Circuit, []int) {
	newIdx := make(map[int]int)
	var origOf []int
	for _, g := range c.Gates {
		if g.Op == circuit.OpBarrier {
			continue
		}
		for _, q := range g.Qubits {
			if _, ok := newIdx[q]; !ok {
				newIdx[q] = len(origOf)
				origOf = append(origOf, q)
			}
		}
	}
	out := &circuit.Circuit{Name: c.Name, NQubits: len(origOf), NClbits: c.NClbits}
	if out.NQubits == 0 {
		out.NQubits = 1 // degenerate: keep the simulator happy
	}
	for _, g := range c.Gates {
		ng := g.Clone()
		if g.Op == circuit.OpBarrier {
			kept := ng.Qubits[:0]
			for _, q := range ng.Qubits {
				if ni, ok := newIdx[q]; ok {
					kept = append(kept, ni)
				}
			}
			ng.Qubits = kept
			if len(ng.Qubits) == 0 {
				continue
			}
		} else {
			for i, q := range ng.Qubits {
				ng.Qubits[i] = newIdx[q]
			}
		}
		out.Gates = append(out.Gates, ng)
	}
	return out, origOf
}
