// Package qsim is a dense state-vector quantum simulator with
// Monte-Carlo Pauli noise and readout error. It executes the circuits
// produced by the compiler and measures the probability-of-success
// metric of the paper's Fig 7 fidelity study.
//
// The simulator is exact for noiseless circuits; noisy execution runs
// independent trajectories, inserting random Pauli errors after gates
// and flipping measured bits with the calibrated readout error.
//
// Both layers are parallel: gate kernels shard the amplitude array
// across a goroutine pool once the state is large enough to amortize
// the fan-out, and noisy shots run on a worker pool with deterministic
// per-shot RNG streams. Results are bit-identical for a fixed seed
// regardless of worker count (see Parallelism in run.go).
package qsim

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"qcloud/internal/circuit"
	"qcloud/internal/par"
)

// MaxQubits bounds the dense simulation (2^24 amplitudes = 256 MiB).
const MaxQubits = 24

// kernelMinAmps is the state size below which gate kernels stay serial:
// goroutine fan-out costs a few microseconds, which only pays off once
// the per-gate sweep is tens of microseconds (>= 14 qubits).
const kernelMinAmps = 1 << 14

// reduceChunk is the fixed block size for chunked reductions (Norm,
// ProbOne). Chunk boundaries depend only on the state size — never on
// the worker count — so the floating-point summation order, and with it
// every sampled measurement outcome, is identical for any -workers.
const reduceChunk = 1 << 13

// State is a dense state vector over n qubits. Qubit q corresponds to
// bit q of the amplitude index (little-endian).
type State struct {
	n   int
	amp []complex128
	// workers pins the kernel pool size: 0 = process default
	// (par.Workers()), 1 = serial.
	workers int
}

// NewState returns |0...0> over n qubits.
func NewState(n int) (*State, error) {
	if n < 1 || n > MaxQubits {
		return nil, fmt.Errorf("qsim: %d qubits outside [1,%d]", n, MaxQubits)
	}
	s := &State{n: n, amp: make([]complex128, 1<<uint(n))}
	s.amp[0] = 1
	return s, nil
}

// SetWorkers pins the kernel worker count for this state (0 = process
// default, 1 = serial) and returns s for chaining. Kernels write the
// same amplitudes for any worker count, so this is purely a
// performance knob.
func (s *State) SetWorkers(n int) *State {
	if n < 0 {
		n = 0
	}
	s.workers = n
	return s
}

// NumQubits returns the register size.
func (s *State) NumQubits() int { return s.n }

// Amplitude returns the amplitude of basis state i.
func (s *State) Amplitude(i int) complex128 { return s.amp[i] }

// forRange runs fn over contiguous shards of the amplitude index space,
// in parallel for large states. Shards only ever write amplitudes whose
// "low" pair index falls inside their own range (the partner index is
// skipped by its owning shard), so chunk work is race-free and the
// result is independent of the worker count.
func (s *State) forRange(fn func(lo, hi int)) {
	n := len(s.amp)
	if n < kernelMinAmps {
		fn(0, n)
		return
	}
	par.Shard(n, par.Resolve(s.workers), fn)
}

// reduce sums fn over fixed-size chunks of the index space. Small
// states use one flat pass; large states always use the same chunk
// boundaries whether the partials are computed serially or in
// parallel, keeping the summation order deterministic.
func (s *State) reduce(fn func(lo, hi int) float64) float64 {
	n := len(s.amp)
	if n < kernelMinAmps {
		return fn(0, n)
	}
	nChunks := (n + reduceChunk - 1) / reduceChunk
	partial := make([]float64, nChunks)
	par.ForEach(nChunks, par.Resolve(s.workers), func(c int) {
		lo := c * reduceChunk
		hi := lo + reduceChunk
		if hi > n {
			hi = n
		}
		partial[c] = fn(lo, hi)
	})
	t := 0.0
	for _, p := range partial {
		t += p
	}
	return t
}

// Norm returns the squared norm of the state (1 for a valid state).
func (s *State) Norm() float64 {
	return s.reduce(func(lo, hi int) float64 {
		t := 0.0
		for _, a := range s.amp[lo:hi] {
			t += real(a)*real(a) + imag(a)*imag(a)
		}
		return t
	})
}

// Apply1Q applies a 2x2 unitary to qubit q.
func (s *State) Apply1Q(m circuit.Mat2, q int) {
	bit := 1 << uint(q)
	s.forRange(func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i&bit != 0 {
				continue
			}
			j := i | bit
			a0, a1 := s.amp[i], s.amp[j]
			s.amp[i] = m[0]*a0 + m[1]*a1
			s.amp[j] = m[2]*a0 + m[3]*a1
		}
	})
}

// ApplyCX applies a controlled-X with the given control and target.
func (s *State) ApplyCX(ctrl, tgt int) {
	cb, tb := 1<<uint(ctrl), 1<<uint(tgt)
	s.forRange(func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i&cb != 0 && i&tb == 0 {
				j := i | tb
				s.amp[i], s.amp[j] = s.amp[j], s.amp[i]
			}
		}
	})
}

// ApplyCZ applies a controlled-Z on the pair (a, b).
func (s *State) ApplyCZ(a, b int) {
	ab, bb := 1<<uint(a), 1<<uint(b)
	s.forRange(func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i&ab != 0 && i&bb != 0 {
				s.amp[i] = -s.amp[i]
			}
		}
	})
}

// ApplyCPhase applies a controlled phase rotation of theta.
func (s *State) ApplyCPhase(a, b int, theta float64) {
	ph := cmplx.Exp(complex(0, theta))
	ab, bb := 1<<uint(a), 1<<uint(b)
	s.forRange(func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i&ab != 0 && i&bb != 0 {
				s.amp[i] *= ph
			}
		}
	})
}

// ApplySWAP exchanges qubits a and b.
func (s *State) ApplySWAP(a, b int) {
	ab, bb := 1<<uint(a), 1<<uint(b)
	s.forRange(func(lo, hi int) {
		for i := lo; i < hi; i++ {
			// Visit each (01) index once; its partner is (10).
			if i&ab != 0 && i&bb == 0 {
				j := (i &^ ab) | bb
				s.amp[i], s.amp[j] = s.amp[j], s.amp[i]
			}
		}
	})
}

// ApplyCCX applies a Toffoli gate.
func (s *State) ApplyCCX(c1, c2, tgt int) {
	b1, b2, tb := 1<<uint(c1), 1<<uint(c2), 1<<uint(tgt)
	s.forRange(func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i&b1 != 0 && i&b2 != 0 && i&tb == 0 {
				j := i | tb
				s.amp[i], s.amp[j] = s.amp[j], s.amp[i]
			}
		}
	})
}

// ProbOne returns the probability of measuring qubit q as 1.
func (s *State) ProbOne(q int) float64 {
	bit := 1 << uint(q)
	return s.reduce(func(lo, hi int) float64 {
		p := 0.0
		for i := lo; i < hi; i++ {
			if i&bit != 0 {
				a := s.amp[i]
				p += real(a)*real(a) + imag(a)*imag(a)
			}
		}
		return p
	})
}

// MeasureQubit samples qubit q, collapses the state, renormalizes, and
// returns the outcome.
func (s *State) MeasureQubit(q int, r *rand.Rand) int {
	p1 := s.ProbOne(q)
	outcome := 0
	if r.Float64() < p1 {
		outcome = 1
	}
	s.collapse(q, outcome, p1)
	return outcome
}

func (s *State) collapse(q, outcome int, p1 float64) {
	bit := 1 << uint(q)
	p := p1
	if outcome == 0 {
		p = 1 - p1
	}
	if p <= 0 {
		p = 1e-300 // numerically impossible branch; avoid div by zero
	}
	scale := complex(1/math.Sqrt(p), 0)
	s.forRange(func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if (i&bit != 0) != (outcome == 1) {
				s.amp[i] = 0
			} else {
				s.amp[i] *= scale
			}
		}
	})
}

// ResetQubit measures q and flips it to |0> if needed.
func (s *State) ResetQubit(q int, r *rand.Rand) {
	if s.MeasureQubit(q, r) == 1 {
		x, _ := circuit.GateMat2(circuit.Gate{Op: circuit.OpX, Qubits: []int{q}})
		s.Apply1Q(x, q)
	}
}

// ApplyGate dispatches one circuit gate onto the state. Measurement,
// reset, and barrier are not handled here — Run owns those.
func (s *State) ApplyGate(g circuit.Gate) error {
	switch g.Op {
	case circuit.OpCX:
		s.ApplyCX(g.Qubits[0], g.Qubits[1])
	case circuit.OpCZ:
		s.ApplyCZ(g.Qubits[0], g.Qubits[1])
	case circuit.OpCPhase:
		s.ApplyCPhase(g.Qubits[0], g.Qubits[1], g.Params[0])
	case circuit.OpSWAP:
		s.ApplySWAP(g.Qubits[0], g.Qubits[1])
	case circuit.OpCCX:
		s.ApplyCCX(g.Qubits[0], g.Qubits[1], g.Qubits[2])
	case circuit.OpBarrier:
		// no-op
	default:
		m, ok := circuit.GateMat2(g)
		if !ok {
			return fmt.Errorf("qsim: cannot apply op %v", g.Op)
		}
		s.Apply1Q(m, g.Qubits[0])
	}
	return nil
}

// Probabilities returns the |amp|² distribution over basis states.
func (s *State) Probabilities() []float64 {
	ps := make([]float64, len(s.amp))
	s.forRange(func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a := s.amp[i]
			ps[i] = real(a)*real(a) + imag(a)*imag(a)
		}
	})
	return ps
}
