// Package qsim is a dense state-vector quantum simulator with
// Monte-Carlo Pauli noise and readout error. It executes the circuits
// produced by the compiler and measures the probability-of-success
// metric of the paper's Fig 7 fidelity study.
//
// The simulator is exact for noiseless circuits; noisy execution runs
// independent trajectories, inserting random Pauli errors after gates
// and flipping measured bits with the calibrated readout error.
//
// Execution is staged for throughput: circuits are compiled once per
// Run into a fused op stream (see fuse.go; 1q chains, 2q blocks, and
// diagonal runs each collapse into single kernels) so the per-shot
// loop does no map lookups or matrix construction, amplitudes live in
// split real/imag (SoA) arrays so kernel sweeps are flat float64
// loops, gate kernels shard the amplitude array across a goroutine
// pool once the state is large enough to amortize the fan-out, and
// noisy shots run on a worker pool with deterministic per-shot RNG
// streams (see rngsource.go) over pooled state buffers. Many small
// jobs share one pool through BatchRun (see batch.go). Results are
// bit-identical for a fixed seed regardless of worker count (see
// Parallelism in run.go).
package qsim

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"qcloud/internal/circuit"
	"qcloud/internal/par"
)

// MaxQubits bounds the dense simulation (2^24 amplitudes = 256 MiB).
const MaxQubits = 24

// kernelMinAmps is the default state size below which gate kernels stay
// serial: goroutine fan-out costs a few microseconds, which only pays
// off once the per-gate sweep is tens of microseconds (>= 14 qubits).
// Parallelism.KernelMinAmps overrides it per run.
const kernelMinAmps = 1 << 14

// reduceChunk is the fixed block size for chunked reductions (Norm,
// ProbOne). Chunk boundaries depend only on the state size — never on
// the worker count — so the floating-point summation order, and with it
// every sampled measurement outcome, is identical for any -workers.
const reduceChunk = 1 << 13

// State is a dense state vector over n qubits. Qubit q corresponds to
// bit q of the amplitude index (little-endian). Amplitudes are stored
// as split real/imag arrays (structure-of-arrays) so the gate kernels
// compile to flat float64 sweeps.
type State struct {
	n      int
	re, im []float64
	// workers pins the kernel pool size: 0 = process default
	// (par.Workers()), 1 = serial.
	workers int
	// minAmps overrides the parallel/chunked threshold (0 = the
	// kernelMinAmps default).
	minAmps int
	// partial is scratch for chunked reductions, reused across calls so
	// the steady-state trajectory loop stays allocation-free.
	partial []float64
}

// NewState returns |0...0> over n qubits.
func NewState(n int) (*State, error) {
	if n < 1 || n > MaxQubits {
		return nil, fmt.Errorf("qsim: %d qubits outside [1,%d]", n, MaxQubits)
	}
	s := &State{n: n, re: make([]float64, 1<<uint(n)), im: make([]float64, 1<<uint(n))}
	s.re[0] = 1
	return s, nil
}

// Reset returns the state to |0...0> in place, so trajectory workers
// can reuse one buffer across shots instead of allocating per shot.
//
//qcloud:noalloc
func (s *State) Reset() {
	clear(s.re)
	clear(s.im)
	s.re[0] = 1
}

// SetWorkers pins the kernel worker count for this state (0 = process
// default, 1 = serial) and returns s for chaining. Kernels write the
// same amplitudes for any worker count, so this is purely a
// performance knob.
func (s *State) SetWorkers(n int) *State {
	if n < 0 {
		n = 0
	}
	s.workers = n
	return s
}

// SetKernelMinAmps overrides the state size at which kernels go
// parallel and reductions go chunked (0 restores the package default).
// Changing it moves the serial/parallel crossover — and, for states
// larger than reduceChunk, the reduction chunking — so it is a
// performance knob that is part of the determinism contract's fixed
// configuration (see Parallelism).
func (s *State) SetKernelMinAmps(n int) *State {
	if n < 0 {
		n = 0
	}
	s.minAmps = n
	return s
}

// kernelMin resolves the effective parallel threshold.
func (s *State) kernelMin() int {
	if s.minAmps > 0 {
		return s.minAmps
	}
	return kernelMinAmps
}

// serialKernel reports whether kernel sweeps should run in place on the
// calling goroutine. The serial path is taken branch-first (not through
// a closure) so small-state gate application does not allocate.
func (s *State) serialKernel() bool {
	return len(s.re) < s.kernelMin() || par.Resolve(s.workers) <= 1
}

// shard fans a kernel body out across the amplitude index space.
// Shards only ever write amplitudes whose "low" pair index falls inside
// their own range (the partner index is skipped by its owning shard),
// so chunk work is race-free and the result is independent of the
// worker count.
func (s *State) shard(fn func(lo, hi int)) {
	par.Shard(len(s.re), par.Resolve(s.workers), fn)
}

// forRange runs fn over contiguous shards of the amplitude index space,
// in parallel for large states. Used by cold-path sweeps; hot kernels
// branch on serialKernel directly to keep the serial path closure-free.
func (s *State) forRange(fn func(lo, hi int)) {
	if len(s.re) < s.kernelMin() {
		fn(0, len(s.re))
		return
	}
	s.shard(fn)
}

// NumQubits returns the register size.
func (s *State) NumQubits() int { return s.n }

// Amplitude returns the amplitude of basis state i.
func (s *State) Amplitude(i int) complex128 { return complex(s.re[i], s.im[i]) }

// reduceFn is a chunk reducer: a partial sum over [lo, hi) of some
// per-amplitude quantity, parameterized by one int (e.g. a qubit bit
// mask). Implementations are method expressions so passing them does
// not allocate.
type reduceFn func(s *State, arg, lo, hi int) float64

// reduce sums fn over fixed-size chunks of the index space. Small
// states use one flat pass; large states always use the same chunk
// boundaries whether the partials are computed serially or in
// parallel, keeping the summation order deterministic.
func (s *State) reduce(fn reduceFn, arg int) float64 {
	n := len(s.re)
	if n < s.kernelMin() {
		return fn(s, arg, 0, n)
	}
	nChunks := (n + reduceChunk - 1) / reduceChunk
	if cap(s.partial) < nChunks {
		s.partial = make([]float64, nChunks)
	}
	partial := s.partial[:nChunks]
	chunk := func(c int) {
		lo := c * reduceChunk
		hi := lo + reduceChunk
		if hi > n {
			hi = n
		}
		partial[c] = fn(s, arg, lo, hi)
	}
	if workers := par.Resolve(s.workers); workers <= 1 {
		for c := 0; c < nChunks; c++ {
			chunk(c)
		}
	} else {
		par.ForEach(nChunks, workers, chunk)
	}
	t := 0.0
	for _, p := range partial {
		t += p
	}
	return t
}

// normChunk is the Norm reducer (arg unused).
//
//qcloud:noalloc
func (s *State) normChunk(_, lo, hi int) float64 {
	t := 0.0
	re, im := s.re, s.im
	for i := lo; i < hi; i++ {
		t += re[i]*re[i] + im[i]*im[i]
	}
	return t
}

// Norm returns the squared norm of the state (1 for a valid state).
func (s *State) Norm() float64 {
	return s.reduce((*State).normChunk, 0)
}

// apply1QRange applies a 2x2 unitary to qubit q over the shard whose
// "low" pair indices fall in [lo, hi). Pairs are walked block by block
// (the bit-clear half of each 2*bit-aligned block) so the inner loop is
// a branch-free sequential sweep instead of a skip-half scan.
//
//qcloud:noalloc
func (s *State) apply1QRange(m circuit.Mat2, q, lo, hi int) {
	bit := 1 << uint(q)
	m00r, m00i := real(m[0]), imag(m[0])
	m01r, m01i := real(m[1]), imag(m[1])
	m10r, m10i := real(m[2]), imag(m[2])
	m11r, m11i := real(m[3]), imag(m[3])
	re, im := s.re, s.im
	step := bit << 1
	for base := lo &^ (step - 1); base < hi; base += step {
		first, last := base, base+bit
		if first < lo {
			first = lo
		}
		if last > hi {
			last = hi
		}
		for i := first; i < last; i++ {
			j := i | bit
			ar, ai := re[i], im[i]
			br, bi := re[j], im[j]
			re[i] = m00r*ar - m00i*ai + m01r*br - m01i*bi
			im[i] = m00r*ai + m00i*ar + m01r*bi + m01i*br
			re[j] = m10r*ar - m10i*ai + m11r*br - m11i*bi
			im[j] = m10r*ai + m10i*ar + m11r*bi + m11i*br
		}
	}
}

// apply1QRealRange is apply1QRange specialized for matrices with no
// imaginary parts (H, X, RY, ...): half the multiplies, and the real
// and imaginary state halves decouple into independent SIMD-friendly
// streams.
//
//qcloud:noalloc
func (s *State) apply1QRealRange(m circuit.Mat2, q, lo, hi int) {
	bit := 1 << uint(q)
	m00, m01 := real(m[0]), real(m[1])
	m10, m11 := real(m[2]), real(m[3])
	re, im := s.re, s.im
	step := bit << 1
	for base := lo &^ (step - 1); base < hi; base += step {
		first, last := base, base+bit
		if first < lo {
			first = lo
		}
		if last > hi {
			last = hi
		}
		for i := first; i < last; i++ {
			j := i | bit
			ar, ai := re[i], im[i]
			br, bi := re[j], im[j]
			re[i] = m00*ar + m01*br
			im[i] = m00*ai + m01*bi
			re[j] = m10*ar + m11*br
			im[j] = m10*ai + m11*bi
		}
	}
}

// isRealMat reports whether every entry of m is real.
func isRealMat(m circuit.Mat2) bool {
	return imag(m[0]) == 0 && imag(m[1]) == 0 && imag(m[2]) == 0 && imag(m[3]) == 0
}

// Apply1Q applies a 2x2 unitary to qubit q.
func (s *State) Apply1Q(m circuit.Mat2, q int) {
	if isRealMat(m) {
		if s.serialKernel() {
			s.apply1QRealRange(m, q, 0, len(s.re))
			return
		}
		s.shard(func(lo, hi int) { s.apply1QRealRange(m, q, lo, hi) })
		return
	}
	if s.serialKernel() {
		s.apply1QRange(m, q, 0, len(s.re))
		return
	}
	s.shard(func(lo, hi int) { s.apply1QRange(m, q, lo, hi) })
}

// apply2QRange applies a 4x4 unitary to the pair (q0, q1) over the
// shard whose quad-base indices (both pair bits clear) fall in
// [lo, hi). The four gathered amplitudes of base i are (i, i|b0, i|b1,
// i|b0|b1), matching Mat4's |b1 b0> basis. Bases are walked with
// two-level bit-aligned block iteration — branch-free inner sweeps, no
// skip-scanning — and every amplitude of a quad is written only by the
// shard owning the base index, so sharded sweeps are race-free.
//
//qcloud:noalloc
func (s *State) apply2QRange(m *circuit.Mat4, q0, q1, lo, hi int) {
	b0, b1 := 1<<uint(q0), 1<<uint(q1)
	var mr, mi [16]float64
	for k, v := range m {
		mr[k], mi[k] = real(v), imag(v)
	}
	re, im := s.re, s.im
	bl, bh := b0, b1
	if bl > bh {
		bl, bh = bh, bl
	}
	stepH, stepL := bh<<1, bl<<1
	for baseH := lo &^ (stepH - 1); baseH < hi; baseH += stepH {
		hFirst, hLast := baseH, baseH+bh
		if hFirst < lo {
			hFirst = lo
		}
		if hLast > hi {
			hLast = hi
		}
		for baseL := hFirst &^ (stepL - 1); baseL < hLast; baseL += stepL {
			first, last := baseL, baseL+bl
			if first < hFirst {
				first = hFirst
			}
			if last > hLast {
				last = hLast
			}
			for i := first; i < last; i++ {
				i1, i2 := i|b0, i|b1
				i3 := i1 | b1
				a0r, a0i := re[i], im[i]
				a1r, a1i := re[i1], im[i1]
				a2r, a2i := re[i2], im[i2]
				a3r, a3i := re[i3], im[i3]
				re[i] = mr[0]*a0r - mi[0]*a0i + mr[1]*a1r - mi[1]*a1i + mr[2]*a2r - mi[2]*a2i + mr[3]*a3r - mi[3]*a3i
				im[i] = mr[0]*a0i + mi[0]*a0r + mr[1]*a1i + mi[1]*a1r + mr[2]*a2i + mi[2]*a2r + mr[3]*a3i + mi[3]*a3r
				re[i1] = mr[4]*a0r - mi[4]*a0i + mr[5]*a1r - mi[5]*a1i + mr[6]*a2r - mi[6]*a2i + mr[7]*a3r - mi[7]*a3i
				im[i1] = mr[4]*a0i + mi[4]*a0r + mr[5]*a1i + mi[5]*a1r + mr[6]*a2i + mi[6]*a2r + mr[7]*a3i + mi[7]*a3r
				re[i2] = mr[8]*a0r - mi[8]*a0i + mr[9]*a1r - mi[9]*a1i + mr[10]*a2r - mi[10]*a2i + mr[11]*a3r - mi[11]*a3i
				im[i2] = mr[8]*a0i + mi[8]*a0r + mr[9]*a1i + mi[9]*a1r + mr[10]*a2i + mi[10]*a2r + mr[11]*a3i + mi[11]*a3r
				re[i3] = mr[12]*a0r - mi[12]*a0i + mr[13]*a1r - mi[13]*a1i + mr[14]*a2r - mi[14]*a2i + mr[15]*a3r - mi[15]*a3i
				im[i3] = mr[12]*a0i + mi[12]*a0r + mr[13]*a1i + mi[13]*a1r + mr[14]*a2i + mi[14]*a2r + mr[15]*a3i + mi[15]*a3r
			}
		}
	}
}

// apply2QRealRange is apply2QRange specialized for matrices with no
// imaginary parts: half the multiplies, and the real and imaginary
// state halves decouple into independent SIMD-friendly streams.
//
//qcloud:noalloc
func (s *State) apply2QRealRange(m *circuit.Mat4, q0, q1, lo, hi int) {
	b0, b1 := 1<<uint(q0), 1<<uint(q1)
	var mr [16]float64
	for k, v := range m {
		mr[k] = real(v)
	}
	re, im := s.re, s.im
	bl, bh := b0, b1
	if bl > bh {
		bl, bh = bh, bl
	}
	stepH, stepL := bh<<1, bl<<1
	for baseH := lo &^ (stepH - 1); baseH < hi; baseH += stepH {
		hFirst, hLast := baseH, baseH+bh
		if hFirst < lo {
			hFirst = lo
		}
		if hLast > hi {
			hLast = hi
		}
		for baseL := hFirst &^ (stepL - 1); baseL < hLast; baseL += stepL {
			first, last := baseL, baseL+bl
			if first < hFirst {
				first = hFirst
			}
			if last > hLast {
				last = hLast
			}
			for i := first; i < last; i++ {
				i1, i2 := i|b0, i|b1
				i3 := i1 | b1
				a0r, a0i := re[i], im[i]
				a1r, a1i := re[i1], im[i1]
				a2r, a2i := re[i2], im[i2]
				a3r, a3i := re[i3], im[i3]
				re[i] = mr[0]*a0r + mr[1]*a1r + mr[2]*a2r + mr[3]*a3r
				im[i] = mr[0]*a0i + mr[1]*a1i + mr[2]*a2i + mr[3]*a3i
				re[i1] = mr[4]*a0r + mr[5]*a1r + mr[6]*a2r + mr[7]*a3r
				im[i1] = mr[4]*a0i + mr[5]*a1i + mr[6]*a2i + mr[7]*a3i
				re[i2] = mr[8]*a0r + mr[9]*a1r + mr[10]*a2r + mr[11]*a3r
				im[i2] = mr[8]*a0i + mr[9]*a1i + mr[10]*a2i + mr[11]*a3i
				re[i3] = mr[12]*a0r + mr[13]*a1r + mr[14]*a2r + mr[15]*a3r
				im[i3] = mr[12]*a0i + mr[13]*a1i + mr[14]*a2i + mr[15]*a3i
			}
		}
	}
}

// isRealMat4 reports whether every entry of m is real.
func isRealMat4(m *circuit.Mat4) bool {
	for _, v := range m {
		if imag(v) != 0 {
			return false
		}
	}
	return true
}

// Apply2Q applies a 4x4 unitary to the ordered qubit pair (q0, q1):
// q0 is the matrix's low basis bit b0 and q1 the high bit b1 (see
// circuit.Mat4). The two qubits must be distinct.
func (s *State) Apply2Q(m circuit.Mat4, q0, q1 int) {
	s.apply2Q(&m, q0, q1)
}

// apply2Q is the pointer-taking kernel entry the fused executor uses:
// a Mat4 is too large for by-value closure capture, so taking it by
// pointer (into the heap-resident compiled program) keeps the
// steady-state shot loop allocation-free.
func (s *State) apply2Q(m *circuit.Mat4, q0, q1 int) {
	if q0 == q1 {
		panic("qsim: Apply2Q requires distinct qubits")
	}
	if isRealMat4(m) {
		if s.serialKernel() {
			s.apply2QRealRange(m, q0, q1, 0, len(s.re))
			return
		}
		s.shard(func(lo, hi int) { s.apply2QRealRange(m, q0, q1, lo, hi) })
		return
	}
	if s.serialKernel() {
		s.apply2QRange(m, q0, q1, 0, len(s.re))
		return
	}
	s.shard(func(lo, hi int) { s.apply2QRange(m, q0, q1, lo, hi) })
}

//qcloud:noalloc
func (s *State) applyCXRange(ctrl, tgt, lo, hi int) {
	cb, tb := 1<<uint(ctrl), 1<<uint(tgt)
	re, im := s.re, s.im
	for i := lo; i < hi; i++ {
		if i&cb != 0 && i&tb == 0 {
			j := i | tb
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
}

// ApplyCX applies a controlled-X with the given control and target.
func (s *State) ApplyCX(ctrl, tgt int) {
	if s.serialKernel() {
		s.applyCXRange(ctrl, tgt, 0, len(s.re))
		return
	}
	s.shard(func(lo, hi int) { s.applyCXRange(ctrl, tgt, lo, hi) })
}

//qcloud:noalloc
func (s *State) applyCZRange(a, b, lo, hi int) {
	ab, bb := 1<<uint(a), 1<<uint(b)
	re, im := s.re, s.im
	for i := lo; i < hi; i++ {
		if i&ab != 0 && i&bb != 0 {
			re[i] = -re[i]
			im[i] = -im[i]
		}
	}
}

// ApplyCZ applies a controlled-Z on the pair (a, b).
func (s *State) ApplyCZ(a, b int) {
	if s.serialKernel() {
		s.applyCZRange(a, b, 0, len(s.re))
		return
	}
	s.shard(func(lo, hi int) { s.applyCZRange(a, b, lo, hi) })
}

//qcloud:noalloc
func (s *State) applyCPhaseRange(a, b int, ph complex128, lo, hi int) {
	ab, bb := 1<<uint(a), 1<<uint(b)
	pr, pi := real(ph), imag(ph)
	re, im := s.re, s.im
	for i := lo; i < hi; i++ {
		if i&ab != 0 && i&bb != 0 {
			ar, ai := re[i], im[i]
			re[i] = ar*pr - ai*pi
			im[i] = ar*pi + ai*pr
		}
	}
}

// ApplyCPhase applies a controlled phase rotation of theta. A zero
// theta is the identity, so the sweep is skipped entirely.
func (s *State) ApplyCPhase(a, b int, theta float64) {
	if theta == 0 {
		return
	}
	ph := cmplx.Exp(complex(0, theta))
	if s.serialKernel() {
		s.applyCPhaseRange(a, b, ph, 0, len(s.re))
		return
	}
	s.shard(func(lo, hi int) { s.applyCPhaseRange(a, b, ph, lo, hi) })
}

// applySWAPRange exchanges the (a=1,b=0) and (a=0,b=1) amplitudes.
// Like apply2QRange it walks quad bases (both bits clear) with
// two-level bit-aligned block iteration instead of skip-scanning the
// full index space; a shard owning base i writes only i|ab and i|bb,
// which no other shard enumerates, so sharded sweeps stay race-free.
//
//qcloud:noalloc
func (s *State) applySWAPRange(a, b, lo, hi int) {
	ab, bb := 1<<uint(a), 1<<uint(b)
	re, im := s.re, s.im
	bl, bh := ab, bb
	if bl > bh {
		bl, bh = bh, bl
	}
	stepH, stepL := bh<<1, bl<<1
	for baseH := lo &^ (stepH - 1); baseH < hi; baseH += stepH {
		hFirst, hLast := baseH, baseH+bh
		if hFirst < lo {
			hFirst = lo
		}
		if hLast > hi {
			hLast = hi
		}
		for baseL := hFirst &^ (stepL - 1); baseL < hLast; baseL += stepL {
			first, last := baseL, baseL+bl
			if first < hFirst {
				first = hFirst
			}
			if last > hLast {
				last = hLast
			}
			for i := first; i < last; i++ {
				p, q := i|ab, i|bb
				re[p], re[q] = re[q], re[p]
				im[p], im[q] = im[q], im[p]
			}
		}
	}
}

// ApplySWAP exchanges qubits a and b.
func (s *State) ApplySWAP(a, b int) {
	if s.serialKernel() {
		s.applySWAPRange(a, b, 0, len(s.re))
		return
	}
	s.shard(func(lo, hi int) { s.applySWAPRange(a, b, lo, hi) })
}

// applyCCXRange flips the target amplitude pairs where both controls
// are set. Octet bases (all three bits clear) are walked with
// three-level bit-aligned block iteration — an eighth of the index
// space, branch-free — instead of condition-scanning every index. A
// shard owning base i writes only i|b1|b2 and i|b1|b2|tb, which no
// other shard enumerates.
//
//qcloud:noalloc
func (s *State) applyCCXRange(c1, c2, tgt, lo, hi int) {
	b1, b2, tb := 1<<uint(c1), 1<<uint(c2), 1<<uint(tgt)
	re, im := s.re, s.im
	set := b1 | b2
	s0, s1, s2 := b1, b2, tb
	if s0 > s1 {
		s0, s1 = s1, s0
	}
	if s1 > s2 {
		s1, s2 = s2, s1
	}
	if s0 > s1 {
		s0, s1 = s1, s0
	}
	step2, step1, step0 := s2<<1, s1<<1, s0<<1
	for base2 := lo &^ (step2 - 1); base2 < hi; base2 += step2 {
		f2, l2 := base2, base2+s2
		if f2 < lo {
			f2 = lo
		}
		if l2 > hi {
			l2 = hi
		}
		for base1 := f2 &^ (step1 - 1); base1 < l2; base1 += step1 {
			f1, l1 := base1, base1+s1
			if f1 < f2 {
				f1 = f2
			}
			if l1 > l2 {
				l1 = l2
			}
			for base0 := f1 &^ (step0 - 1); base0 < l1; base0 += step0 {
				first, last := base0, base0+s0
				if first < f1 {
					first = f1
				}
				if last > l1 {
					last = l1
				}
				for i := first; i < last; i++ {
					p := i | set
					q := p | tb
					re[p], re[q] = re[q], re[p]
					im[p], im[q] = im[q], im[p]
				}
			}
		}
	}
}

// ApplyCCX applies a Toffoli gate.
func (s *State) ApplyCCX(c1, c2, tgt int) {
	if s.serialKernel() {
		s.applyCCXRange(c1, c2, tgt, 0, len(s.re))
		return
	}
	s.shard(func(lo, hi int) { s.applyCCXRange(c1, c2, tgt, lo, hi) })
}

// probOneChunk is the ProbOne reducer; arg is the qubit's bit mask.
//
//qcloud:noalloc
func (s *State) probOneChunk(bit, lo, hi int) float64 {
	p := 0.0
	re, im := s.re, s.im
	for i := lo; i < hi; i++ {
		if i&bit != 0 {
			p += re[i]*re[i] + im[i]*im[i]
		}
	}
	return p
}

// ProbOne returns the probability of measuring qubit q as 1.
func (s *State) ProbOne(q int) float64 {
	return s.reduce((*State).probOneChunk, 1<<uint(q))
}

// MeasureQubit samples qubit q, collapses the state, renormalizes, and
// returns the outcome.
func (s *State) MeasureQubit(q int, r *rand.Rand) int {
	p1 := s.ProbOne(q)
	outcome := 0
	if r.Float64() < p1 {
		outcome = 1
	}
	s.collapse(q, outcome, p1)
	return outcome
}

//qcloud:noalloc
func (s *State) collapseRange(bit, outcome int, scale float64, lo, hi int) {
	re, im := s.re, s.im
	for i := lo; i < hi; i++ {
		if (i&bit != 0) != (outcome == 1) {
			re[i], im[i] = 0, 0
		} else {
			re[i] *= scale
			im[i] *= scale
		}
	}
}

func (s *State) collapse(q, outcome int, p1 float64) {
	bit := 1 << uint(q)
	p := p1
	if outcome == 0 {
		p = 1 - p1
	}
	if p <= 0 {
		p = 1e-300 // numerically impossible branch; avoid div by zero
	}
	scale := 1 / math.Sqrt(p)
	if s.serialKernel() {
		s.collapseRange(bit, outcome, scale, 0, len(s.re))
		return
	}
	s.shard(func(lo, hi int) { s.collapseRange(bit, outcome, scale, lo, hi) })
}

// ResetQubit measures q and flips it to |0> if needed.
func (s *State) ResetQubit(q int, r *rand.Rand) {
	if s.MeasureQubit(q, r) == 1 {
		s.Apply1Q(pauliXMat, q)
	}
}

// ApplyGate dispatches one circuit gate onto the state. Measurement,
// reset, and barrier are not handled here — Run owns those.
func (s *State) ApplyGate(g circuit.Gate) error {
	switch g.Op {
	case circuit.OpCX:
		s.ApplyCX(g.Qubits[0], g.Qubits[1])
	case circuit.OpCZ:
		s.ApplyCZ(g.Qubits[0], g.Qubits[1])
	case circuit.OpCPhase:
		s.ApplyCPhase(g.Qubits[0], g.Qubits[1], g.Params[0])
	case circuit.OpSWAP:
		s.ApplySWAP(g.Qubits[0], g.Qubits[1])
	case circuit.OpCCX:
		s.ApplyCCX(g.Qubits[0], g.Qubits[1], g.Qubits[2])
	case circuit.OpBarrier:
		// no-op
	default:
		m, ok := circuit.GateMat2(g)
		if !ok {
			return fmt.Errorf("qsim: cannot apply op %v", g.Op)
		}
		s.Apply1Q(m, g.Qubits[0])
	}
	return nil
}

// Probabilities returns the |amp|² distribution over basis states.
func (s *State) Probabilities() []float64 {
	ps := make([]float64, len(s.re))
	s.forRange(func(lo, hi int) {
		re, im := s.re, s.im
		for i := lo; i < hi; i++ {
			ps[i] = re[i]*re[i] + im[i]*im[i]
		}
	})
	return ps
}
