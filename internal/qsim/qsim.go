// Package qsim is a dense state-vector quantum simulator with
// Monte-Carlo Pauli noise and readout error. It executes the circuits
// produced by the compiler and measures the probability-of-success
// metric of the paper's Fig 7 fidelity study.
//
// The simulator is exact for noiseless circuits; noisy execution runs
// independent trajectories, inserting random Pauli errors after gates
// and flipping measured bits with the calibrated readout error.
//
// Execution is staged for throughput: circuits are compiled once per
// Run into a fused op stream (see fuse.go) so the per-shot loop does no
// map lookups or matrix construction, amplitudes live in split
// real/imag (SoA) arrays so kernel sweeps are flat float64 loops, gate
// kernels shard the amplitude array across a goroutine pool once the
// state is large enough to amortize the fan-out, and noisy shots run on
// a worker pool with deterministic per-shot RNG streams over pooled
// state buffers. Results are bit-identical for a fixed seed regardless
// of worker count (see Parallelism in run.go).
package qsim

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"qcloud/internal/circuit"
	"qcloud/internal/par"
)

// MaxQubits bounds the dense simulation (2^24 amplitudes = 256 MiB).
const MaxQubits = 24

// kernelMinAmps is the default state size below which gate kernels stay
// serial: goroutine fan-out costs a few microseconds, which only pays
// off once the per-gate sweep is tens of microseconds (>= 14 qubits).
// Parallelism.KernelMinAmps overrides it per run.
const kernelMinAmps = 1 << 14

// reduceChunk is the fixed block size for chunked reductions (Norm,
// ProbOne). Chunk boundaries depend only on the state size — never on
// the worker count — so the floating-point summation order, and with it
// every sampled measurement outcome, is identical for any -workers.
const reduceChunk = 1 << 13

// State is a dense state vector over n qubits. Qubit q corresponds to
// bit q of the amplitude index (little-endian). Amplitudes are stored
// as split real/imag arrays (structure-of-arrays) so the gate kernels
// compile to flat float64 sweeps.
type State struct {
	n      int
	re, im []float64
	// workers pins the kernel pool size: 0 = process default
	// (par.Workers()), 1 = serial.
	workers int
	// minAmps overrides the parallel/chunked threshold (0 = the
	// kernelMinAmps default).
	minAmps int
	// partial is scratch for chunked reductions, reused across calls so
	// the steady-state trajectory loop stays allocation-free.
	partial []float64
}

// NewState returns |0...0> over n qubits.
func NewState(n int) (*State, error) {
	if n < 1 || n > MaxQubits {
		return nil, fmt.Errorf("qsim: %d qubits outside [1,%d]", n, MaxQubits)
	}
	s := &State{n: n, re: make([]float64, 1<<uint(n)), im: make([]float64, 1<<uint(n))}
	s.re[0] = 1
	return s, nil
}

// Reset returns the state to |0...0> in place, so trajectory workers
// can reuse one buffer across shots instead of allocating per shot.
func (s *State) Reset() {
	clear(s.re)
	clear(s.im)
	s.re[0] = 1
}

// SetWorkers pins the kernel worker count for this state (0 = process
// default, 1 = serial) and returns s for chaining. Kernels write the
// same amplitudes for any worker count, so this is purely a
// performance knob.
func (s *State) SetWorkers(n int) *State {
	if n < 0 {
		n = 0
	}
	s.workers = n
	return s
}

// SetKernelMinAmps overrides the state size at which kernels go
// parallel and reductions go chunked (0 restores the package default).
// Changing it moves the serial/parallel crossover — and, for states
// larger than reduceChunk, the reduction chunking — so it is a
// performance knob that is part of the determinism contract's fixed
// configuration (see Parallelism).
func (s *State) SetKernelMinAmps(n int) *State {
	if n < 0 {
		n = 0
	}
	s.minAmps = n
	return s
}

// kernelMin resolves the effective parallel threshold.
func (s *State) kernelMin() int {
	if s.minAmps > 0 {
		return s.minAmps
	}
	return kernelMinAmps
}

// serialKernel reports whether kernel sweeps should run in place on the
// calling goroutine. The serial path is taken branch-first (not through
// a closure) so small-state gate application does not allocate.
func (s *State) serialKernel() bool {
	return len(s.re) < s.kernelMin() || par.Resolve(s.workers) <= 1
}

// shard fans a kernel body out across the amplitude index space.
// Shards only ever write amplitudes whose "low" pair index falls inside
// their own range (the partner index is skipped by its owning shard),
// so chunk work is race-free and the result is independent of the
// worker count.
func (s *State) shard(fn func(lo, hi int)) {
	par.Shard(len(s.re), par.Resolve(s.workers), fn)
}

// forRange runs fn over contiguous shards of the amplitude index space,
// in parallel for large states. Used by cold-path sweeps; hot kernels
// branch on serialKernel directly to keep the serial path closure-free.
func (s *State) forRange(fn func(lo, hi int)) {
	if len(s.re) < s.kernelMin() {
		fn(0, len(s.re))
		return
	}
	s.shard(fn)
}

// NumQubits returns the register size.
func (s *State) NumQubits() int { return s.n }

// Amplitude returns the amplitude of basis state i.
func (s *State) Amplitude(i int) complex128 { return complex(s.re[i], s.im[i]) }

// reduceFn is a chunk reducer: a partial sum over [lo, hi) of some
// per-amplitude quantity, parameterized by one int (e.g. a qubit bit
// mask). Implementations are method expressions so passing them does
// not allocate.
type reduceFn func(s *State, arg, lo, hi int) float64

// reduce sums fn over fixed-size chunks of the index space. Small
// states use one flat pass; large states always use the same chunk
// boundaries whether the partials are computed serially or in
// parallel, keeping the summation order deterministic.
func (s *State) reduce(fn reduceFn, arg int) float64 {
	n := len(s.re)
	if n < s.kernelMin() {
		return fn(s, arg, 0, n)
	}
	nChunks := (n + reduceChunk - 1) / reduceChunk
	if cap(s.partial) < nChunks {
		s.partial = make([]float64, nChunks)
	}
	partial := s.partial[:nChunks]
	chunk := func(c int) {
		lo := c * reduceChunk
		hi := lo + reduceChunk
		if hi > n {
			hi = n
		}
		partial[c] = fn(s, arg, lo, hi)
	}
	if workers := par.Resolve(s.workers); workers <= 1 {
		for c := 0; c < nChunks; c++ {
			chunk(c)
		}
	} else {
		par.ForEach(nChunks, workers, chunk)
	}
	t := 0.0
	for _, p := range partial {
		t += p
	}
	return t
}

// normChunk is the Norm reducer (arg unused).
func (s *State) normChunk(_, lo, hi int) float64 {
	t := 0.0
	re, im := s.re, s.im
	for i := lo; i < hi; i++ {
		t += re[i]*re[i] + im[i]*im[i]
	}
	return t
}

// Norm returns the squared norm of the state (1 for a valid state).
func (s *State) Norm() float64 {
	return s.reduce((*State).normChunk, 0)
}

// apply1QRange applies a 2x2 unitary to qubit q over the shard whose
// "low" pair indices fall in [lo, hi). Pairs are walked block by block
// (the bit-clear half of each 2*bit-aligned block) so the inner loop is
// a branch-free sequential sweep instead of a skip-half scan.
func (s *State) apply1QRange(m circuit.Mat2, q, lo, hi int) {
	bit := 1 << uint(q)
	m00r, m00i := real(m[0]), imag(m[0])
	m01r, m01i := real(m[1]), imag(m[1])
	m10r, m10i := real(m[2]), imag(m[2])
	m11r, m11i := real(m[3]), imag(m[3])
	re, im := s.re, s.im
	step := bit << 1
	for base := lo &^ (step - 1); base < hi; base += step {
		first, last := base, base+bit
		if first < lo {
			first = lo
		}
		if last > hi {
			last = hi
		}
		for i := first; i < last; i++ {
			j := i | bit
			ar, ai := re[i], im[i]
			br, bi := re[j], im[j]
			re[i] = m00r*ar - m00i*ai + m01r*br - m01i*bi
			im[i] = m00r*ai + m00i*ar + m01r*bi + m01i*br
			re[j] = m10r*ar - m10i*ai + m11r*br - m11i*bi
			im[j] = m10r*ai + m10i*ar + m11r*bi + m11i*br
		}
	}
}

// apply1QRealRange is apply1QRange specialized for matrices with no
// imaginary parts (H, X, RY, ...): half the multiplies, and the real
// and imaginary state halves decouple into independent SIMD-friendly
// streams.
func (s *State) apply1QRealRange(m circuit.Mat2, q, lo, hi int) {
	bit := 1 << uint(q)
	m00, m01 := real(m[0]), real(m[1])
	m10, m11 := real(m[2]), real(m[3])
	re, im := s.re, s.im
	step := bit << 1
	for base := lo &^ (step - 1); base < hi; base += step {
		first, last := base, base+bit
		if first < lo {
			first = lo
		}
		if last > hi {
			last = hi
		}
		for i := first; i < last; i++ {
			j := i | bit
			ar, ai := re[i], im[i]
			br, bi := re[j], im[j]
			re[i] = m00*ar + m01*br
			im[i] = m00*ai + m01*bi
			re[j] = m10*ar + m11*br
			im[j] = m10*ai + m11*bi
		}
	}
}

// isRealMat reports whether every entry of m is real.
func isRealMat(m circuit.Mat2) bool {
	return imag(m[0]) == 0 && imag(m[1]) == 0 && imag(m[2]) == 0 && imag(m[3]) == 0
}

// Apply1Q applies a 2x2 unitary to qubit q.
func (s *State) Apply1Q(m circuit.Mat2, q int) {
	if isRealMat(m) {
		if s.serialKernel() {
			s.apply1QRealRange(m, q, 0, len(s.re))
			return
		}
		s.shard(func(lo, hi int) { s.apply1QRealRange(m, q, lo, hi) })
		return
	}
	if s.serialKernel() {
		s.apply1QRange(m, q, 0, len(s.re))
		return
	}
	s.shard(func(lo, hi int) { s.apply1QRange(m, q, lo, hi) })
}

func (s *State) applyCXRange(ctrl, tgt, lo, hi int) {
	cb, tb := 1<<uint(ctrl), 1<<uint(tgt)
	re, im := s.re, s.im
	for i := lo; i < hi; i++ {
		if i&cb != 0 && i&tb == 0 {
			j := i | tb
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
}

// ApplyCX applies a controlled-X with the given control and target.
func (s *State) ApplyCX(ctrl, tgt int) {
	if s.serialKernel() {
		s.applyCXRange(ctrl, tgt, 0, len(s.re))
		return
	}
	s.shard(func(lo, hi int) { s.applyCXRange(ctrl, tgt, lo, hi) })
}

func (s *State) applyCZRange(a, b, lo, hi int) {
	ab, bb := 1<<uint(a), 1<<uint(b)
	re, im := s.re, s.im
	for i := lo; i < hi; i++ {
		if i&ab != 0 && i&bb != 0 {
			re[i] = -re[i]
			im[i] = -im[i]
		}
	}
}

// ApplyCZ applies a controlled-Z on the pair (a, b).
func (s *State) ApplyCZ(a, b int) {
	if s.serialKernel() {
		s.applyCZRange(a, b, 0, len(s.re))
		return
	}
	s.shard(func(lo, hi int) { s.applyCZRange(a, b, lo, hi) })
}

func (s *State) applyCPhaseRange(a, b int, ph complex128, lo, hi int) {
	ab, bb := 1<<uint(a), 1<<uint(b)
	pr, pi := real(ph), imag(ph)
	re, im := s.re, s.im
	for i := lo; i < hi; i++ {
		if i&ab != 0 && i&bb != 0 {
			ar, ai := re[i], im[i]
			re[i] = ar*pr - ai*pi
			im[i] = ar*pi + ai*pr
		}
	}
}

// ApplyCPhase applies a controlled phase rotation of theta. A zero
// theta is the identity, so the sweep is skipped entirely.
func (s *State) ApplyCPhase(a, b int, theta float64) {
	if theta == 0 {
		return
	}
	ph := cmplx.Exp(complex(0, theta))
	if s.serialKernel() {
		s.applyCPhaseRange(a, b, ph, 0, len(s.re))
		return
	}
	s.shard(func(lo, hi int) { s.applyCPhaseRange(a, b, ph, lo, hi) })
}

func (s *State) applySWAPRange(a, b, lo, hi int) {
	ab, bb := 1<<uint(a), 1<<uint(b)
	re, im := s.re, s.im
	for i := lo; i < hi; i++ {
		// Visit each (01) index once; its partner is (10).
		if i&ab != 0 && i&bb == 0 {
			j := (i &^ ab) | bb
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
}

// ApplySWAP exchanges qubits a and b.
func (s *State) ApplySWAP(a, b int) {
	if s.serialKernel() {
		s.applySWAPRange(a, b, 0, len(s.re))
		return
	}
	s.shard(func(lo, hi int) { s.applySWAPRange(a, b, lo, hi) })
}

func (s *State) applyCCXRange(c1, c2, tgt, lo, hi int) {
	b1, b2, tb := 1<<uint(c1), 1<<uint(c2), 1<<uint(tgt)
	re, im := s.re, s.im
	for i := lo; i < hi; i++ {
		if i&b1 != 0 && i&b2 != 0 && i&tb == 0 {
			j := i | tb
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
}

// ApplyCCX applies a Toffoli gate.
func (s *State) ApplyCCX(c1, c2, tgt int) {
	if s.serialKernel() {
		s.applyCCXRange(c1, c2, tgt, 0, len(s.re))
		return
	}
	s.shard(func(lo, hi int) { s.applyCCXRange(c1, c2, tgt, lo, hi) })
}

// probOneChunk is the ProbOne reducer; arg is the qubit's bit mask.
func (s *State) probOneChunk(bit, lo, hi int) float64 {
	p := 0.0
	re, im := s.re, s.im
	for i := lo; i < hi; i++ {
		if i&bit != 0 {
			p += re[i]*re[i] + im[i]*im[i]
		}
	}
	return p
}

// ProbOne returns the probability of measuring qubit q as 1.
func (s *State) ProbOne(q int) float64 {
	return s.reduce((*State).probOneChunk, 1<<uint(q))
}

// MeasureQubit samples qubit q, collapses the state, renormalizes, and
// returns the outcome.
func (s *State) MeasureQubit(q int, r *rand.Rand) int {
	p1 := s.ProbOne(q)
	outcome := 0
	if r.Float64() < p1 {
		outcome = 1
	}
	s.collapse(q, outcome, p1)
	return outcome
}

func (s *State) collapseRange(bit, outcome int, scale float64, lo, hi int) {
	re, im := s.re, s.im
	for i := lo; i < hi; i++ {
		if (i&bit != 0) != (outcome == 1) {
			re[i], im[i] = 0, 0
		} else {
			re[i] *= scale
			im[i] *= scale
		}
	}
}

func (s *State) collapse(q, outcome int, p1 float64) {
	bit := 1 << uint(q)
	p := p1
	if outcome == 0 {
		p = 1 - p1
	}
	if p <= 0 {
		p = 1e-300 // numerically impossible branch; avoid div by zero
	}
	scale := 1 / math.Sqrt(p)
	if s.serialKernel() {
		s.collapseRange(bit, outcome, scale, 0, len(s.re))
		return
	}
	s.shard(func(lo, hi int) { s.collapseRange(bit, outcome, scale, lo, hi) })
}

// ResetQubit measures q and flips it to |0> if needed.
func (s *State) ResetQubit(q int, r *rand.Rand) {
	if s.MeasureQubit(q, r) == 1 {
		s.Apply1Q(pauliXMat, q)
	}
}

// ApplyGate dispatches one circuit gate onto the state. Measurement,
// reset, and barrier are not handled here — Run owns those.
func (s *State) ApplyGate(g circuit.Gate) error {
	switch g.Op {
	case circuit.OpCX:
		s.ApplyCX(g.Qubits[0], g.Qubits[1])
	case circuit.OpCZ:
		s.ApplyCZ(g.Qubits[0], g.Qubits[1])
	case circuit.OpCPhase:
		s.ApplyCPhase(g.Qubits[0], g.Qubits[1], g.Params[0])
	case circuit.OpSWAP:
		s.ApplySWAP(g.Qubits[0], g.Qubits[1])
	case circuit.OpCCX:
		s.ApplyCCX(g.Qubits[0], g.Qubits[1], g.Qubits[2])
	case circuit.OpBarrier:
		// no-op
	default:
		m, ok := circuit.GateMat2(g)
		if !ok {
			return fmt.Errorf("qsim: cannot apply op %v", g.Op)
		}
		s.Apply1Q(m, g.Qubits[0])
	}
	return nil
}

// Probabilities returns the |amp|² distribution over basis states.
func (s *State) Probabilities() []float64 {
	ps := make([]float64, len(s.re))
	s.forRange(func(lo, hi int) {
		re, im := s.re, s.im
		for i := lo; i < hi; i++ {
			ps[i] = re[i]*re[i] + im[i]*im[i]
		}
	})
	return ps
}
