package qsim

import (
	"math"

	"qcloud/internal/backend"
	"qcloud/internal/circuit"
)

// Nominal gate durations (µs) for the decoherence estimate; IBM
// superconducting devices run 1q gates in tens of nanoseconds, CX in a
// few hundred, measurement around a microsecond.
const (
	dur1QUs      = 0.05
	dur2QUs      = 0.35
	durMeasureUs = 1.0
)

// EstimatePOS is the closed-form probability-of-success estimator: the
// product of per-gate success probabilities, per-qubit readout success,
// and a T2 decoherence factor, floored by the uniform-guess probability
// over the measured register. It lets machine-selection analyses rank
// backends without running trajectories, which is how the paper argues
// compile-time CX metrics predict fidelity (Fig 7, §IV-B).
func EstimatePOS(c *circuit.Circuit, cal *backend.Calibration, staleHours float64) float64 {
	fidelity := 1.0
	// Per-qubit active time, indexed by qubit: a dense slice (not a
	// map) so the decoherence product below multiplies in a fixed qubit
	// order — float products are order-sensitive at the ulp level, and
	// map iteration order would make the estimate vary run to run.
	activeUs := make([]float64, c.NQubits)
	measured := 0
	for _, g := range c.Gates {
		switch {
		case g.Op == circuit.OpBarrier:
		case g.Op == circuit.OpMeasure:
			q := g.Qubits[0]
			fidelity *= 1 - calRO(cal, q)
			activeUs[q] += durMeasureUs
			measured++
		case g.Op == circuit.OpReset:
			activeUs[g.Qubits[0]] += durMeasureUs
		case g.Op.IsTwoQubit():
			a, b := g.Qubits[0], g.Qubits[1]
			fidelity *= 1 - backend.DriftedCXError(cal, a, b, staleHours, cal.MeanCXError())
			activeUs[a] += dur2QUs
			activeUs[b] += dur2QUs
		default:
			q := g.Qubits[0]
			fidelity *= 1 - cal1Q(cal, q)
			activeUs[q] += dur1QUs
		}
	}
	// Decoherence: each qubit decays with its T2 over its active time,
	// folded in ascending qubit order so the product is reproducible.
	for q, t := range activeUs {
		if t == 0 {
			continue
		}
		if q < len(cal.T2) && cal.T2[q] > 0 {
			fidelity *= math.Exp(-t / cal.T2[q])
		}
	}
	if measured == 0 {
		return fidelity
	}
	guess := 1 / math.Pow(2, float64(measured))
	return fidelity + (1-fidelity)*guess
}

func calRO(cal *backend.Calibration, q int) float64 {
	if q < len(cal.ErrRO) {
		return cal.ErrRO[q]
	}
	return 0
}

func cal1Q(cal *backend.Calibration, q int) float64 {
	if q < len(cal.Err1Q) {
		return cal.Err1Q[q]
	}
	return 0
}
