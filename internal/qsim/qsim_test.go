package qsim

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"qcloud/internal/circuit"
	"qcloud/internal/circuit/gens"
)

func TestNewStateValidation(t *testing.T) {
	if _, err := NewState(0); err == nil {
		t.Fatal("0 qubits should fail")
	}
	if _, err := NewState(MaxQubits + 1); err == nil {
		t.Fatal("too many qubits should fail")
	}
	s, err := NewState(3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Amplitude(0) != 1 || math.Abs(s.Norm()-1) > 1e-12 {
		t.Fatal("initial state should be |000>")
	}
}

func TestHadamardAmplitudes(t *testing.T) {
	s, _ := NewState(1)
	h, _ := circuit.GateMat2(circuit.NewGate(circuit.OpH, []int{0}))
	s.Apply1Q(h, 0)
	want := 1 / math.Sqrt2
	if cmplx.Abs(s.Amplitude(0)-complex(want, 0)) > 1e-12 ||
		cmplx.Abs(s.Amplitude(1)-complex(want, 0)) > 1e-12 {
		t.Fatalf("H|0> amplitudes wrong: %v %v", s.Amplitude(0), s.Amplitude(1))
	}
}

func TestCXEntangles(t *testing.T) {
	s, _ := NewState(2)
	h, _ := circuit.GateMat2(circuit.NewGate(circuit.OpH, []int{0}))
	s.Apply1Q(h, 0)
	s.ApplyCX(0, 1)
	// Bell state: |00> + |11>.
	if cmplx.Abs(s.Amplitude(0b00)) < 0.7 || cmplx.Abs(s.Amplitude(0b11)) < 0.7 {
		t.Fatal("Bell state amplitudes wrong")
	}
	if cmplx.Abs(s.Amplitude(0b01)) > 1e-12 || cmplx.Abs(s.Amplitude(0b10)) > 1e-12 {
		t.Fatal("Bell state has spurious amplitudes")
	}
}

func TestSWAPMovesState(t *testing.T) {
	s, _ := NewState(2)
	x, _ := circuit.GateMat2(circuit.NewGate(circuit.OpX, []int{0}))
	s.Apply1Q(x, 0) // |01> (qubit0 = 1)
	s.ApplySWAP(0, 1)
	if cmplx.Abs(s.Amplitude(0b10)-1) > 1e-12 {
		t.Fatal("SWAP did not move the excitation")
	}
}

func TestCPhaseAppliesPhaseOnlyOn11(t *testing.T) {
	s, _ := NewState(2)
	h, _ := circuit.GateMat2(circuit.NewGate(circuit.OpH, []int{0}))
	s.Apply1Q(h, 0)
	s.Apply1Q(h, 1)
	s.ApplyCPhase(0, 1, math.Pi/2)
	// Only the |11> amplitude gets the i factor.
	if cmplx.Abs(s.Amplitude(0b11)-complex(0, 0.5)) > 1e-12 {
		t.Fatalf("|11> amplitude = %v, want 0.5i", s.Amplitude(0b11))
	}
	if cmplx.Abs(s.Amplitude(0b01)-complex(0.5, 0)) > 1e-12 {
		t.Fatal("|01> amplitude should be unchanged")
	}
}

func TestCCXTruthTable(t *testing.T) {
	for in, want := range map[int]int{
		0b011: 0b111, // both controls set: flip target (qubit 2)
		0b111: 0b011,
		0b001: 0b001, // single control: no flip
		0b100: 0b100,
	} {
		s, _ := NewState(3)
		x, _ := circuit.GateMat2(circuit.NewGate(circuit.OpX, []int{0}))
		for q := 0; q < 3; q++ {
			if in&(1<<q) != 0 {
				s.Apply1Q(x, q)
			}
		}
		s.ApplyCCX(0, 1, 2)
		if cmplx.Abs(s.Amplitude(want)-1) > 1e-12 {
			t.Fatalf("CCX on %03b: want basis %03b", in, want)
		}
	}
}

func TestNormPreservedProperty(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		c := gens.Random(rr, 5, 8, 0.3)
		s, _ := NewState(5)
		for _, g := range c.Gates {
			if g.Op == circuit.OpMeasure {
				continue
			}
			if err := s.ApplyGate(g); err != nil {
				return false
			}
		}
		return math.Abs(s.Norm()-1) < 1e-9
	}
	_ = r
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMeasurementCollapse(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		s, _ := NewState(1)
		h, _ := circuit.GateMat2(circuit.NewGate(circuit.OpH, []int{0}))
		s.Apply1Q(h, 0)
		first := s.MeasureQubit(0, r)
		second := s.MeasureQubit(0, r)
		if first != second {
			t.Fatal("repeated measurement after collapse must agree")
		}
		if math.Abs(s.Norm()-1) > 1e-9 {
			t.Fatal("collapse should renormalize")
		}
	}
}

func TestResetQubit(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	s, _ := NewState(1)
	x, _ := circuit.GateMat2(circuit.NewGate(circuit.OpX, []int{0}))
	s.Apply1Q(x, 0)
	s.ResetQubit(0, r)
	if cmplx.Abs(s.Amplitude(0)-1) > 1e-9 {
		t.Fatal("reset should return qubit to |0>")
	}
}

func TestGHZCounts(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	counts, err := Run(gens.GHZ(5), 4000, nil, r)
	if err != nil {
		t.Fatal(err)
	}
	p0 := counts.Prob("00000")
	p1 := counts.Prob("11111")
	if math.Abs(p0-0.5) > 0.05 || math.Abs(p1-0.5) > 0.05 {
		t.Fatalf("GHZ probabilities %v / %v, want ~0.5 each", p0, p1)
	}
	if p0+p1 < 0.999 {
		t.Fatal("GHZ should only produce all-zeros or all-ones")
	}
}

func TestBernsteinVaziraniRecoversSecret(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	counts, err := Run(gens.BernsteinVazirani(5, 0b10110), 200, nil, r)
	if err != nil {
		t.Fatal(err)
	}
	best, _ := counts.MostFrequent()
	if best != "10110" {
		t.Fatalf("BV returned %q, want 10110", best)
	}
	if counts.Prob("10110") < 0.999 {
		t.Fatal("BV should be deterministic in the noiseless case")
	}
}

func TestQFTBenchAllZeros(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	counts, err := Run(gens.QFTBench(4), 500, nil, r)
	if err != nil {
		t.Fatal(err)
	}
	if counts.Prob("0000") < 0.999 {
		t.Fatalf("QFT bench should return all zeros ideally, got %v", counts)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if _, err := Run(gens.GHZ(3), 0, nil, r); err == nil {
		t.Fatal("0 shots should fail")
	}
	wide := circuit.New("wide", MaxQubits+2)
	wide.H(0)
	if _, err := Run(wide, 10, nil, r); err == nil {
		t.Fatal("too-wide circuit should fail")
	}
}

func TestCountsHelpers(t *testing.T) {
	c := Counts{"00": 30, "11": 70}
	if c.Total() != 100 {
		t.Fatal("total wrong")
	}
	if c.Prob("11") != 0.7 {
		t.Fatal("prob wrong")
	}
	best, n := c.MostFrequent()
	if best != "11" || n != 70 {
		t.Fatal("most frequent wrong")
	}
	var empty Counts
	if empty.Prob("x") != 0 {
		t.Fatal("empty counts prob should be 0")
	}
}

func TestNoiseReducesGHZFidelity(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	noisy, err := Run(gens.GHZ(4), 2000, UniformNoise(0.002, 0.05, 0.03), r)
	if err != nil {
		t.Fatal(err)
	}
	pGood := noisy.Prob("0000") + noisy.Prob("1111")
	if pGood > 0.97 {
		t.Fatalf("noise had no effect: %v", pGood)
	}
	if pGood < 0.5 {
		t.Fatalf("noise implausibly strong: %v", pGood)
	}
}

func TestReadoutErrorRate(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	c := circuit.New("ro", 1)
	c.X(0).Measure(0, 0)
	noise := &NoiseModel{Readout: func(int) float64 { return 0.2 }}
	counts, err := Run(c, 5000, noise, r)
	if err != nil {
		t.Fatal(err)
	}
	if p := counts.Prob("1"); math.Abs(p-0.8) > 0.03 {
		t.Fatalf("readout flip rate: P(1) = %v, want ~0.8", p)
	}
}

func TestMidCircuitMeasurementUsesTrajectories(t *testing.T) {
	// Measure, then conditionally nothing: a mid-circuit measurement
	// followed by H and another measure — outcomes must be 50/50 again.
	r := rand.New(rand.NewSource(12))
	c := circuit.New("mid", 1)
	c.H(0).Measure(0, 0)
	c.H(0).Measure(0, 0)
	counts, err := Run(c, 3000, nil, r)
	if err != nil {
		t.Fatal(err)
	}
	p1 := counts.Prob("1")
	if math.Abs(p1-0.5) > 0.05 {
		t.Fatalf("P(1) = %v, want ~0.5", p1)
	}
}
