package qsim

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"qcloud/internal/circuit"
	"qcloud/internal/circuit/gens"
)

// trajectoryCircuit builds a circuit that forces the trajectory engine
// even without noise (mid-circuit measurement).
func trajectoryCircuit() *circuit.Circuit {
	c := circuit.New("traj", 3)
	c.H(0).CX(0, 1).Measure(0, 0)
	c.H(0).CX(0, 2).Measure(0, 1).Measure(1, 2)
	return c
}

// TestParallelSerialCountsBitIdentical is the engine's determinism
// contract: for a fixed caller seed, Counts are bit-identical across
// worker counts (1, 2, NumCPU) on both the exact and trajectory paths,
// with and without noise.
func TestParallelSerialCountsBitIdentical(t *testing.T) {
	cases := []struct {
		name  string
		circ  *circuit.Circuit
		noise *NoiseModel
	}{
		{"exact-ghz", gens.GHZ(5), nil},
		{"trajectory-midmeasure", trajectoryCircuit(), nil},
		{"trajectory-noisy-ghz", gens.GHZ(4), UniformNoise(0.002, 0.05, 0.03)},
		{"trajectory-noisy-qft", gens.QFTBench(4), UniformNoise(0.001, 0.02, 0.02)},
	}
	workerCounts := []int{1, 2, runtime.NumCPU()}
	for _, tc := range cases {
		var want Counts
		for _, w := range workerCounts {
			r := rand.New(rand.NewSource(99))
			got, err := RunOpts(tc.circ, 700, tc.noise, r, Parallelism{Workers: w})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.name, w, err)
			}
			if want == nil {
				want = got
				continue
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s: counts differ between workers=1 and workers=%d:\n%v\nvs\n%v",
					tc.name, w, want, got)
			}
		}
	}
}

// TestKernelShardingMatchesSerial applies every pooled kernel to a
// state above the parallel threshold with serial and parallel workers
// and requires exactly equal amplitudes.
func TestKernelShardingMatchesSerial(t *testing.T) {
	const n = 15 // 2^15 amps, above kernelMinAmps
	build := func(workers int) *State {
		s, err := NewState(n)
		if err != nil {
			t.Fatal(err)
		}
		s.SetWorkers(workers)
		h, _ := circuit.GateMat2(circuit.NewGate(circuit.OpH, []int{0}))
		for q := 0; q < n; q++ {
			s.Apply1Q(h, q)
		}
		s.ApplyCX(0, n-1)
		s.ApplyCZ(1, n-2)
		s.ApplyCPhase(2, n-3, 0.7)
		// SWAP and CCX on low/high/adjacent/straddling bit positions:
		// the block-iteration kernels clip differently when the bits
		// are below, at, or above the shard-chunk granularity.
		s.ApplySWAP(3, n-4)
		s.ApplySWAP(0, 1)
		s.ApplySWAP(n-2, n-1)
		s.ApplySWAP(n-1, 2)
		s.ApplyCCX(4, 5, n-5)
		s.ApplyCCX(0, 1, 2)
		s.ApplyCCX(n-1, 0, n-2)
		s.ApplyCCX(n-3, n-1, 1)
		// 2q block kernels, complex and real, both role orders.
		cxm, _ := circuit.GateMat4(circuit.NewGate(circuit.OpCX, []int{2, n - 2}), 2, n-2)
		s.Apply2Q(cxm, 2, n-2)
		u := circuit.Kron1Q(circuit.U3Mat(0.4, 1.2, -0.8), true).Mul(circuit.Kron1Q(circuit.U3Mat(1.1, 0.2, 0.9), false))
		s.Apply2Q(u, n-1, 0)
		s.Apply2Q(u, 1, n-3)
		return s
	}
	serial := build(1)
	for _, w := range []int{2, 3, runtime.NumCPU()} {
		parallel := build(w)
		for i := range serial.re {
			if serial.Amplitude(i) != parallel.Amplitude(i) {
				t.Fatalf("workers=%d: amplitude %d differs: %v vs %v",
					w, i, serial.Amplitude(i), parallel.Amplitude(i))
			}
		}
	}
}

// TestReductionsDeterministicAcrossWorkers checks that the chunked
// reductions (Norm, ProbOne, Probabilities) return bit-identical
// floats for any worker count on a large state.
func TestReductionsDeterministicAcrossWorkers(t *testing.T) {
	const n = 15
	mk := func(workers int) *State {
		s, _ := NewState(n)
		s.SetWorkers(workers)
		h, _ := circuit.GateMat2(circuit.NewGate(circuit.OpH, []int{0}))
		for q := 0; q < n; q++ {
			s.Apply1Q(h, q)
		}
		s.ApplyCPhase(0, 1, 1.1)
		return s
	}
	ref := mk(1)
	refNorm, refP1 := ref.Norm(), ref.ProbOne(3)
	refProbs := ref.Probabilities()
	for _, w := range []int{2, runtime.NumCPU()} {
		s := mk(w)
		if got := s.Norm(); got != refNorm {
			t.Fatalf("workers=%d: Norm %v != serial %v", w, got, refNorm)
		}
		if got := s.ProbOne(3); got != refP1 {
			t.Fatalf("workers=%d: ProbOne %v != serial %v", w, got, refP1)
		}
		for i, p := range s.Probabilities() {
			if p != refProbs[i] {
				t.Fatalf("workers=%d: Probabilities[%d] %v != %v", w, i, p, refProbs[i])
			}
		}
	}
}

// TestShotSeedStreamsDiffer guards the per-shot stream derivation: the
// same (base, shot) always maps to the same seed, and nearby shots get
// well-separated seeds.
func TestShotSeedStreamsDiffer(t *testing.T) {
	seen := make(map[int64]int)
	for s := 0; s < 10000; s++ {
		seed := shotSeed(12345, s)
		if prev, dup := seen[seed]; dup {
			t.Fatalf("shots %d and %d collide on seed %d", prev, s, seed)
		}
		seen[seed] = s
	}
	if shotSeed(1, 5) != shotSeed(1, 5) {
		t.Fatal("shotSeed must be a pure function")
	}
	if shotSeed(1, 5) == shotSeed(2, 5) {
		t.Fatal("different bases should give different streams")
	}
}

// TestMostFrequentEmpty pins the empty-map contract: no sentinel, just
// the zero frequency.
func TestMostFrequentEmpty(t *testing.T) {
	var empty Counts
	best, n := empty.MostFrequent()
	if best != "" || n != 0 {
		t.Fatalf(`empty Counts MostFrequent = (%q, %d), want ("", 0)`, best, n)
	}
}
