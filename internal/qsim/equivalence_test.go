package qsim

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"qcloud/internal/backend"
	"qcloud/internal/circuit"
	"qcloud/internal/circuit/gens"
	"qcloud/internal/compile"
)

// exactDistribution computes the exact terminal-measurement
// distribution over classical bitstrings for a circuit whose
// measurements are all terminal: evolve the state exactly, then map
// basis-state probabilities through the measure gates.
func exactDistribution(t *testing.T, c *circuit.Circuit) map[string]float64 {
	t.Helper()
	if !isTerminalMeasureOnly(c) {
		t.Fatal("exactDistribution requires terminal-measure-only circuits")
	}
	st, err := NewState(c.NQubits)
	if err != nil {
		t.Fatal(err)
	}
	var measures []circuit.Gate
	for _, g := range c.Gates {
		switch g.Op {
		case circuit.OpMeasure:
			measures = append(measures, g)
		case circuit.OpBarrier:
		default:
			if err := st.ApplyGate(g); err != nil {
				t.Fatal(err)
			}
		}
	}
	dist := make(map[string]float64)
	clbits := make([]int, c.NClbits)
	for basis, p := range st.Probabilities() {
		if p < 1e-15 {
			continue
		}
		for i := range clbits {
			clbits[i] = 0
		}
		for _, m := range measures {
			clbits[m.Clbit] = (basis >> uint(m.Qubits[0])) & 1
		}
		dist[bitstring(clbits)] += p
	}
	return dist
}

// totalVariation returns the TV distance between two distributions.
func totalVariation(a, b map[string]float64) float64 {
	keys := make(map[string]bool)
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	tv := 0.0
	for k := range keys {
		tv += math.Abs(a[k] - b[k])
	}
	return tv / 2
}

// TestCompileEquivalenceProperty is the compiler's strongest semantic
// property test: for seeded random circuits, the compiled circuit's
// exact measurement distribution must match the source circuit's
// (layout, routing, basis translation and every optimization pass are
// all distribution-preserving up to global phase).
func TestCompileEquivalenceProperty(t *testing.T) {
	machines := []string{"ibmqx2", "ibmq_vigo", "ibmq_athens"}
	fleet := backend.Fleet()
	at := time.Date(2021, 3, 20, 9, 0, 0, 0, time.UTC)
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		width := 3 + r.Intn(2) // 3-4 qubits
		depth := 3 + r.Intn(6)
		src := gens.Random(r, width, depth, 0.35)
		want := exactDistribution(t, src)

		name := machines[int(seed)%len(machines)]
		m, err := backend.FindMachine(fleet, name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := compile.Compile(src, m, m.CalibrationAt(at), compile.Options{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d on %s: %v", seed, name, err)
		}
		compacted, _ := Compact(res.Circ)
		got := exactDistribution(t, compacted)
		if tv := totalVariation(want, got); tv > 1e-9 {
			t.Fatalf("seed %d on %s: TV distance %v\nsource:\n%scompiled:\n%s",
				seed, name, tv, src, res.Circ)
		}
	}
}

// TestCompileEquivalenceStructured repeats the equivalence check on
// the structured generators, which exercise gate types the random
// generator does not emit (cphase, swap, ccx, ry cascades).
func TestCompileEquivalenceStructured(t *testing.T) {
	fleet := backend.Fleet()
	at := time.Date(2021, 3, 20, 9, 0, 0, 0, time.UTC)
	cases := []struct {
		circ    *circuit.Circuit
		machine string
	}{
		{gens.QFTBench(4), "ibmq_guadalupe"},
		{gens.QAOAMaxCut(4, gens.RingEdges(4), 2), "ibmq_vigo"},
		{gens.WState(4), "ibmq_casablanca"},
		{gens.Grover(3, 0b110), "ibmqx2"},
		{gens.HardwareEfficientAnsatz(rand.New(rand.NewSource(5)), 4, 2), "ibmq_rome"},
	}
	for _, tc := range cases {
		m, err := backend.FindMachine(fleet, tc.machine)
		if err != nil {
			t.Fatal(err)
		}
		res, err := compile.Compile(tc.circ, m, m.CalibrationAt(at), compile.Options{Seed: 61})
		if err != nil {
			t.Fatalf("%s on %s: %v", tc.circ.Name, tc.machine, err)
		}
		compacted, _ := Compact(res.Circ)
		want := exactDistribution(t, tc.circ)
		got := exactDistribution(t, compacted)
		if tv := totalVariation(want, got); tv > 1e-9 {
			t.Fatalf("%s on %s: TV distance %v", tc.circ.Name, tc.machine, tv)
		}
	}
}

// TestCompileEquivalenceSabre repeats the distribution-equivalence
// property with the SABRE router.
func TestCompileEquivalenceSabre(t *testing.T) {
	fleet := backend.Fleet()
	at := time.Date(2021, 3, 20, 9, 0, 0, 0, time.UTC)
	for seed := int64(100); seed < 115; seed++ {
		r := rand.New(rand.NewSource(seed))
		src := gens.Random(r, 4, 4+r.Intn(5), 0.35)
		m, err := backend.FindMachine(fleet, "ibmq_guadalupe")
		if err != nil {
			t.Fatal(err)
		}
		res, err := compile.Compile(src, m, m.CalibrationAt(at), compile.Options{Seed: seed, Router: "sabre"})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		compacted, _ := Compact(res.Circ)
		if tv := totalVariation(exactDistribution(t, src), exactDistribution(t, compacted)); tv > 1e-9 {
			t.Fatalf("seed %d: sabre-compiled TV distance %v", seed, tv)
		}
	}
}
