package qsim

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"qcloud/internal/circuit"
	"qcloud/internal/circuit/gens"
)

// fusionCases are the circuits the fused-engine equivalence suites run:
// they cover 1q-chain fusion, diagonal runs (cphase cascades), 2q/3q
// passthrough gates, mid-circuit measurement, and reset.
func fusionCases() []struct {
	name  string
	circ  *circuit.Circuit
	noise *NoiseModel
} {
	resetCirc := circuit.New("reset", 2)
	resetCirc.H(0).CX(0, 1).Reset(0).H(0).Measure(0, 0).Measure(1, 1)
	mixed := circuit.New("mixed", 4)
	mixed.H(0).T(0).H(1).Z(1).CPhase(0, 1, 0.3).CPhase(2, 3, 0).
		CCX(0, 1, 2).SWAP(2, 3).S(3).Sdg(3).RZ(2, 1.2).CZ(1, 2).MeasureAll()
	return []struct {
		name  string
		circ  *circuit.Circuit
		noise *NoiseModel
	}{
		{"exact-qft", gens.QFTBench(5), nil},
		// 12 qubits is above exactFuseMinQubits, so this case drives the
		// fused runExact path (the 5q exact cases compile unfused).
		{"exact-qft-fused", gens.QFTBench(12), nil},
		{"exact-ghz", gens.GHZ(5), nil},
		{"noisy-qft", gens.QFTBench(5), UniformNoise(0.002, 0.02, 0.02)},
		{"noisy-ghz", gens.GHZ(5), UniformNoise(0.004, 0.05, 0.03)},
		{"noisy-random", gens.Random(rand.New(rand.NewSource(8)), 5, 10, 0.35), UniformNoise(0.003, 0.03, 0.01)},
		{"noisy-qaoa", gens.QAOAMaxCut(4, gens.RingEdges(4), 2), UniformNoise(0.002, 0.02, 0.02)},
		{"midmeasure", trajectoryCircuit(), nil},
		{"reset", resetCirc, UniformNoise(0.01, 0.05, 0.02)},
		{"mixed-gates", mixed, UniformNoise(0.005, 0.03, 0.02)},
	}
}

// TestFusedMatchesUnfusedCounts is the fusion prepass's contract: for a
// fixed seed, Counts are bit-identical across {2q block fusion on/off,
// all fusion on/off} on both the exact and trajectory paths, for every
// worker count.
func TestFusedMatchesUnfusedCounts(t *testing.T) {
	fusionModes := []struct {
		name               string
		disable, disable2q bool
	}{
		{"blocked", false, false},
		{"fused-no2q", false, true},
		{"unfused", true, false},
	}
	for _, tc := range fusionCases() {
		var want Counts
		for _, w := range []int{1, 2, runtime.NumCPU()} {
			for _, mode := range fusionModes {
				r := rand.New(rand.NewSource(41))
				got, err := RunOpts(tc.circ, 600, tc.noise, r, Parallelism{
					Workers: w, DisableFusion: mode.disable, DisableFusion2Q: mode.disable2q,
				})
				if err != nil {
					t.Fatalf("%s workers=%d %s: %v", tc.name, w, mode.name, err)
				}
				if want == nil {
					want = got
					continue
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("%s: counts diverge at workers=%d %s:\n%v\nvs\n%v",
						tc.name, w, mode.name, want, got)
				}
			}
		}
	}
}

// referenceTrajectories is the pre-pooling engine, kept verbatim as the
// oracle: a fresh State and a fresh RNG source per shot, per-gate
// dispatch through ApplyGate, and noise through applyAfterGate.
func referenceTrajectories(t *testing.T, c *circuit.Circuit, shots int, noise *NoiseModel, seed int64) Counts {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	base := r.Int63()
	counts := make(Counts)
	clbits := make([]int, c.NClbits)
	for s := 0; s < shots; s++ {
		sr := rand.New(rand.NewSource(shotSeed(base, s)))
		st, err := NewState(c.NQubits)
		if err != nil {
			t.Fatal(err)
		}
		st.SetWorkers(1)
		for i := range clbits {
			clbits[i] = 0
		}
		for _, g := range c.Gates {
			switch g.Op {
			case circuit.OpMeasure:
				bit := st.MeasureQubit(g.Qubits[0], sr)
				if noise != nil && sr.Float64() < noise.ReadoutError(g.Qubits[0]) {
					bit ^= 1
				}
				clbits[g.Clbit] = bit
			case circuit.OpReset:
				st.ResetQubit(g.Qubits[0], sr)
			case circuit.OpBarrier:
			default:
				if err := st.ApplyGate(g); err != nil {
					t.Fatal(err)
				}
				if noise != nil {
					noise.applyAfterGate(st, g, sr)
				}
			}
		}
		counts[bitstring(clbits)]++
	}
	return counts
}

// TestPooledMatchesFreshReference pins the buffer pool: reusing one
// State/RNG/histogram per worker across shots yields exactly the Counts
// of the allocate-per-shot reference engine, for every worker count.
func TestPooledMatchesFreshReference(t *testing.T) {
	const shots, seed = 500, 23
	for _, tc := range fusionCases() {
		if tc.noise == nil && isTerminalMeasureOnly(tc.circ) {
			continue // exact path: no per-shot state to pool
		}
		want := referenceTrajectories(t, tc.circ, shots, tc.noise, seed)
		for _, w := range []int{1, 3, runtime.NumCPU()} {
			got, err := RunOpts(tc.circ, shots, tc.noise, rand.New(rand.NewSource(seed)), Parallelism{Workers: w})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.name, w, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s workers=%d: pooled counts diverge from fresh-per-shot reference:\n%v\nvs\n%v",
					tc.name, w, got, want)
			}
		}
	}
}

// TestShotLoopAllocationFree pins the steady-state trajectory loop at
// zero allocations per shot: program execution, state reset, RNG
// reseeding, and dense outcome counting must all reuse worker-owned
// buffers.
func TestShotLoopAllocationFree(t *testing.T) {
	c := gens.QFTBench(8)
	noise := UniformNoise(0.002, 0.02, 0.02)
	prog, err := compileProgram(c, noise, true, true)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewState(c.NQubits)
	if err != nil {
		t.Fatal(err)
	}
	st.SetWorkers(1)
	sr := rand.New(rand.NewSource(1))
	clbits := make([]int, c.NClbits)
	dense := make([]int, 1<<uint(c.NClbits))
	shot := 0
	avg := testing.AllocsPerRun(200, func() {
		sr.Seed(shotSeed(7, shot))
		shot++
		st.Reset()
		for i := range clbits {
			clbits[i] = 0
		}
		prog.exec(st, clbits, sr)
		idx := 0
		for i, b := range clbits {
			idx |= b << uint(i)
		}
		dense[idx]++
	})
	if avg != 0 {
		t.Fatalf("steady-state shot loop allocates %v per shot, want 0", avg)
	}
}

// TestFusionCollapsesOps checks the prepass actually fuses: the QFT
// benchmark's controlled-phase cascades and Hadamard chains must
// compile to far fewer kernel sweeps than source gates.
func TestFusionCollapsesOps(t *testing.T) {
	c := gens.QFTBench(10)
	fused, err := compileProgram(c, nil, true, true)
	if err != nil {
		t.Fatal(err)
	}
	unfused, err := compileProgram(c, nil, false, false)
	if err != nil {
		t.Fatal(err)
	}
	// QFTBench(10) is 80 ops unfused; its 45 controlled phases collapse
	// into 9 diagonal runs (the Hadamards sit on distinct qubits and
	// correctly stay separate), so expect at least ~40% compression.
	if len(fused.ops) > len(unfused.ops)*6/10 {
		t.Fatalf("fusion barely compressed the stream: %d fused ops vs %d unfused", len(fused.ops), len(unfused.ops))
	}
	hasDiag := false
	for _, op := range fused.ops {
		if op.kind == opDiag && len(op.src) > 1 {
			hasDiag = true
		}
	}
	if !hasDiag {
		t.Fatal("expected at least one multi-gate diagonal run in fused QFT")
	}
}

// TestFusedAmplitudesMatchNaive compares the fused execution of a
// diagonal-heavy circuit against gate-by-gate ApplyGate dispatch: the
// state must agree to floating-point accumulation error.
func TestFusedAmplitudesMatchNaive(t *testing.T) {
	c := circuit.New("diagheavy", 6)
	for q := 0; q < 6; q++ {
		c.H(q)
	}
	c.T(0).Z(1).CZ(0, 2).CPhase(3, 1, 0.8).RZ(4, 0.7).S(5).Sdg(2).
		CPhase(5, 0, 0).Tdg(3).CZ(4, 5).H(0).SX(0).RX(1, 0.3).RY(1, 1.1)
	prog, err := compileProgram(c, nil, true, true)
	if err != nil {
		t.Fatal(err)
	}
	fusedSt, err := NewState(6)
	if err != nil {
		t.Fatal(err)
	}
	for oi := range prog.ops {
		prog.ops[oi].applyFast(fusedSt)
	}
	naiveSt, err := NewState(6)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range c.Gates {
		if err := naiveSt.ApplyGate(g); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1<<6; i++ {
		d := fusedSt.Amplitude(i) - naiveSt.Amplitude(i)
		if real(d)*real(d)+imag(d)*imag(d) > 1e-24 {
			t.Fatalf("amplitude %d: fused %v vs naive %v", i, fusedSt.Amplitude(i), naiveSt.Amplitude(i))
		}
	}
}

// TestCPhaseZeroThetaIsFree pins the identity-phase satellite: a cp(0)
// leaves the state bitwise untouched, and a fused run of only identity
// phases compiles to a skipped sweep.
func TestCPhaseZeroThetaIsFree(t *testing.T) {
	st, err := NewState(4)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := circuit.GateMat2(circuit.NewGate(circuit.OpH, []int{0}))
	for q := 0; q < 4; q++ {
		st.Apply1Q(h, q)
	}
	st.ApplyCPhase(0, 1, 0.9)
	before := make([]complex128, 1<<4)
	for i := range before {
		before[i] = st.Amplitude(i)
	}
	st.ApplyCPhase(2, 3, 0)
	for i := range before {
		if st.Amplitude(i) != before[i] {
			t.Fatalf("cp(0) modified amplitude %d: %v -> %v", i, before[i], st.Amplitude(i))
		}
	}

	c := circuit.New("cp0", 3)
	c.CPhase(0, 1, 0).CPhase(1, 2, 0).CPhase(0, 2, 0)
	prog, err := compileProgram(c, nil, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.ops) != 1 || !prog.ops[0].identity {
		t.Fatalf("cp(0) run should fuse to one skipped op, got %+v", prog.ops)
	}
}

// TestKernelMinAmpsKnob exercises the exposed serial/parallel crossover
// threshold: forcing kernels parallel on a tiny state must not change
// Counts (the register is far below one reduction chunk, so summation
// order is unchanged).
func TestKernelMinAmpsKnob(t *testing.T) {
	circ := gens.QFTBench(6)
	noise := UniformNoise(0.002, 0.02, 0.02)
	want, err := RunOpts(circ, 400, noise, rand.New(rand.NewSource(5)), Parallelism{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, minAmps := range []int{1, 16, 1 << 20} {
		got, err := RunOpts(circ, 400, noise, rand.New(rand.NewSource(5)),
			Parallelism{Workers: 4, KernelMinAmps: minAmps})
		if err != nil {
			t.Fatalf("minAmps=%d: %v", minAmps, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("minAmps=%d: counts diverge from default threshold:\n%v\nvs\n%v", minAmps, want, got)
		}
	}
}
