package qsim

import (
	"math/rand"
	"testing"
)

// TestLFSourceMatchesStdlib is the fast source's entire contract:
// bit-identical output to rand.NewSource for the same seed — raw
// Uint64/Int63 streams and the derived Float64/Intn draws the
// trajectory engine consumes — across positive, negative, zero, and
// shot-derived seeds, including reseeding the same instance.
func TestLFSourceMatchesStdlib(t *testing.T) {
	seeds := []int64{1, 0, -1, 42, 1<<62 + 12345, -(1 << 40), int31max, int31max + 1}
	for s := 0; s < 40; s++ {
		seeds = append(seeds, shotSeed(977, s))
	}
	fast := newLFSource()
	fastRand := rand.New(newLFSource())
	for _, seed := range seeds {
		ref := rand.NewSource(seed).(rand.Source64)
		fast.Seed(seed)
		for k := 0; k < 700; k++ {
			if got, want := fast.Uint64(), ref.Uint64(); got != want {
				t.Fatalf("seed %d draw %d: Uint64 %d != stdlib %d", seed, k, got, want)
			}
		}
		refRand := rand.New(rand.NewSource(seed))
		fastRand.Seed(seed)
		for k := 0; k < 200; k++ {
			switch k % 3 {
			case 0:
				if got, want := fastRand.Float64(), refRand.Float64(); got != want {
					t.Fatalf("seed %d draw %d: Float64 %v != stdlib %v", seed, k, got, want)
				}
			case 1:
				if got, want := fastRand.Intn(3), refRand.Intn(3); got != want {
					t.Fatalf("seed %d draw %d: Intn(3) %d != stdlib %d", seed, k, got, want)
				}
			default:
				if got, want := fastRand.Int63(), refRand.Int63(); got != want {
					t.Fatalf("seed %d draw %d: Int63 %d != stdlib %d", seed, k, got, want)
				}
			}
		}
	}
}

// TestLFSeedrandMatchesSchrage checks the Mersenne-fold reduction
// against the reference (48271·x) mod 2³¹-1 over boundary and random
// inputs.
func TestLFSeedrandMatchesSchrage(t *testing.T) {
	check := func(x int32) {
		want := int32((int64(x) * 48271) % int31max)
		if got := lfSeedrand(x); got != want {
			t.Fatalf("lfSeedrand(%d) = %d, want %d", x, got, want)
		}
	}
	for _, x := range []int32{1, 2, 89482311, int31max - 1, 44488, 48271} {
		check(x)
	}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		check(int32(r.Intn(int31max-1)) + 1)
	}
}

// BenchmarkSeed compares per-shot reseeding cost: the stdlib source's
// division-based warm-up vs the folded reimplementation.
func BenchmarkSeedStdlib(b *testing.B) {
	src := rand.NewSource(1)
	for i := 0; i < b.N; i++ {
		src.Seed(int64(i))
	}
}

func BenchmarkSeedLFSource(b *testing.B) {
	src := newLFSource()
	for i := 0; i < b.N; i++ {
		src.Seed(int64(i))
	}
}
