package qsim

import (
	"fmt"
	"math/rand"
	"strings"

	"qcloud/internal/circuit"
	"qcloud/internal/par"
)

// Parallelism configures the worker pools of a simulation run. Workers
// is the goroutine target for both the amplitude-kernel shards and the
// trajectory shot pool: 0 takes the process-wide default
// (par.Workers(), i.e. runtime.NumCPU() unless a -workers flag
// overrode it) and 1 forces fully serial execution.
//
// Determinism contract: for a fixed caller seed (and fixed
// KernelMinAmps), Run produces bit-identical Counts for every worker
// count and whether or not fusion is enabled. Kernels write the same
// amplitudes regardless of sharding, reductions use size-dependent (not
// worker-dependent) chunk boundaries, each noisy shot derives its own
// RNG stream from the caller's generator rather than sharing it, and
// the fusion prepass never changes a shot's RNG draw sequence (see
// fuse.go).
type Parallelism struct {
	Workers int
	// KernelMinAmps overrides the state size at which gate kernels go
	// parallel and reductions go chunked (0 = the package default,
	// 1<<14). Exposed so benchmarks can probe the serial/parallel
	// crossover instead of hardcoding it. Runs with different values
	// are individually deterministic, but — like the seed — the value is
	// part of the fixed configuration the determinism contract assumes,
	// because chunk boundaries move with it.
	KernelMinAmps int
	// DisableFusion skips the fusion prepass and executes one kernel
	// per source gate (the pre-fusion engine). Purely a benchmarking
	// and verification knob: Counts are identical either way.
	DisableFusion bool
	// DisableFusion2Q keeps the 1q-chain and diagonal-run fusion but
	// skips two-qubit block fusion (the PR 2 engine) — an A/B toggle
	// isolating the 2q lever. Implied by DisableFusion; Counts are
	// identical either way.
	DisableFusion2Q bool
}

// fusePasses resolves the (fuse, fuse2q) compile flags.
func (p Parallelism) fusePasses() (fuse, fuse2q bool) {
	fuse = !p.DisableFusion
	return fuse, fuse && !p.DisableFusion2Q
}

// workers resolves the effective worker count.
func (p Parallelism) workers() int { return par.Resolve(p.Workers) }

// maxDenseClbits bounds the dense per-worker outcome histogram (2^n
// ints); wider classical registers fall back to map counting.
const maxDenseClbits = 16

// Counts maps classical bitstrings (clbit NClbits-1 leftmost, Qiskit
// style) to observed frequencies.
type Counts map[string]int

// Total returns the number of shots recorded.
func (c Counts) Total() int {
	t := 0
	// Integer addition is exact, so the fold is order-invariant.
	//qcloud:orderinvariant
	for _, n := range c {
		t += n
	}
	return t
}

// Prob returns the empirical probability of the given bitstring.
func (c Counts) Prob(bits string) float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c[bits]) / float64(t)
}

// MostFrequent returns the modal bitstring (ties broken
// lexicographically) and its count. An empty Counts map has no mode:
// it returns ("", 0) so the count is usable as a frequency without a
// sentinel check.
func (c Counts) MostFrequent() (string, int) {
	best, bestN := "", 0
	first := true
	// The lexicographic tie-break totally orders candidates, so the
	// selected mode is independent of iteration order.
	//qcloud:orderinvariant
	for b, n := range c {
		if first || n > bestN || (n == bestN && b < best) {
			best, bestN = b, n
			first = false
		}
	}
	return best, bestN
}

// merge adds other's observations into c.
func (c Counts) merge(other Counts) {
	// Per-key integer addition commutes exactly.
	//qcloud:orderinvariant
	for b, n := range other {
		c[b] += n
	}
}

// bitstring renders clbits as a string with the highest clbit leftmost.
func bitstring(clbits []int) string {
	var b strings.Builder
	for i := len(clbits) - 1; i >= 0; i-- {
		if clbits[i] == 1 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// indexBitstring renders a dense-histogram index (clbit i at bit i) in
// the same highest-clbit-leftmost form as bitstring.
func indexBitstring(idx, nclbits int) string {
	b := make([]byte, nclbits)
	for i := 0; i < nclbits; i++ {
		if idx>>uint(i)&1 == 1 {
			b[nclbits-1-i] = '1'
		} else {
			b[nclbits-1-i] = '0'
		}
	}
	return string(b)
}

// Run executes circuit c for the given number of shots and returns the
// measurement counts, using the process-default parallelism. With a
// nil noise model and no mid-circuit measurement/reset, a single
// state-vector evolution is sampled multinomially; otherwise each shot
// is an independent trajectory.
func Run(c *circuit.Circuit, shots int, noise *NoiseModel, r *rand.Rand) (Counts, error) {
	return RunOpts(c, shots, noise, r, Parallelism{})
}

// RunOpts is Run with an explicit Parallelism. The circuit is compiled
// once into a fused op stream (unless p.DisableFusion) and executed
// shot by shot on pooled per-worker state buffers. Counts are
// bit-identical across worker counts for the same caller seed.
func RunOpts(c *circuit.Circuit, shots int, noise *NoiseModel, r *rand.Rand, p Parallelism) (Counts, error) {
	if shots <= 0 {
		return nil, fmt.Errorf("qsim: shots must be positive, got %d", shots)
	}
	if usedQubits(c) > MaxQubits {
		return nil, fmt.Errorf("qsim: circuit touches qubits beyond the %d-qubit dense limit", MaxQubits)
	}
	if noise == nil && isTerminalMeasureOnly(c) {
		return runExact(c, shots, r, p)
	}
	return runTrajectories(c, shots, noise, r, p)
}

// usedQubits returns 1 + the largest qubit index referenced (compiled
// circuits are machine-wide, but simulation cost depends on the full
// register width, so callers should compact first when possible).
func usedQubits(c *circuit.Circuit) int {
	return c.NQubits
}

// isTerminalMeasureOnly reports whether every measurement is terminal
// for its own qubit: no unitary (or reset) touches a qubit after it has
// been measured. Such measurements commute to the end of the circuit,
// so a single exact state evolution suffices.
func isTerminalMeasureOnly(c *circuit.Circuit) bool {
	measured := make([]bool, c.NQubits)
	for _, g := range c.Gates {
		switch g.Op {
		case circuit.OpMeasure:
			measured[g.Qubits[0]] = true
		case circuit.OpReset:
			return false
		case circuit.OpBarrier:
		default:
			for _, q := range g.Qubits {
				if q < len(measured) && measured[q] {
					return false
				}
			}
		}
	}
	return true
}

// runExact evolves the state once through the fused op stream (with
// parallel gate kernels) and samples the terminal measurement
// distribution multinomially from the caller's generator, exactly as
// the serial engine did.
func runExact(c *circuit.Circuit, shots int, r *rand.Rand, p Parallelism) (Counts, error) {
	fuse, fuse2q := p.fusePasses()
	fuse = fuse && c.NQubits >= exactFuseMinQubits
	prog, err := compileProgram(c, nil, fuse, fuse && fuse2q)
	if err != nil {
		return nil, err
	}
	st, err := NewState(c.NQubits)
	if err != nil {
		return nil, err
	}
	st.SetWorkers(p.Workers).SetKernelMinAmps(p.KernelMinAmps)
	type meas struct{ q, clbit int }
	var measures []meas
	for oi := range prog.ops {
		op := &prog.ops[oi]
		if op.kind == opMeasure {
			measures = append(measures, meas{op.q0, op.clbit})
			continue
		}
		op.applyFast(st)
	}
	probs := st.Probabilities()
	// Cumulative distribution for sampling.
	cum := make([]float64, len(probs))
	total := 0.0
	for i, p := range probs {
		total += p
		cum[i] = total
	}
	counts := make(Counts)
	clbits := make([]int, c.NClbits)
	for s := 0; s < shots; s++ {
		x := r.Float64() * total
		// Binary search the cumulative distribution.
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		for i := range clbits {
			clbits[i] = 0
		}
		for _, m := range measures {
			clbits[m.clbit] = (lo >> uint(m.q)) & 1
		}
		counts[bitstring(clbits)]++
	}
	return counts, nil
}

// shotSeed derives shot s's RNG seed from the run's base seed with a
// splitmix64 finalizer, giving every shot a well-separated stream that
// depends only on (base, s) — never on which worker runs it.
func shotSeed(base int64, s int) int64 {
	z := uint64(base) + uint64(s+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// runTrajectories runs each shot as an independent noisy trajectory on
// a worker pool. The caller's generator contributes one Int63 draw as
// the base seed; each shot then uses its own derived stream, so the
// merged Counts are identical for any worker count.
//
// Steady-state shot execution is allocation-free: each worker owns one
// State (Reset in place between shots), one reseeded RNG, one clbit
// scratch buffer, and — for registers up to maxDenseClbits — a dense
// outcome histogram that is converted to Counts once at the end.
func runTrajectories(c *circuit.Circuit, shots int, noise *NoiseModel, r *rand.Rand, p Parallelism) (Counts, error) {
	fuse, fuse2q := p.fusePasses()
	prog, err := compileProgram(c, noise, fuse, fuse2q)
	if err != nil {
		return nil, err
	}
	base := r.Int63()
	workers := p.workers()
	if workers > shots {
		workers = shots
	}
	// Shot-level parallelism saturates the CPUs whenever it is active;
	// per-trajectory states then keep their kernels serial. A lone shot
	// (or workers=1 overall) inherits the run's kernel parallelism.
	kernelWorkers := p.Workers
	if workers > 1 {
		kernelWorkers = 1
	}

	type shard struct {
		counts Counts
		err    error
	}
	nShards := workers
	if nShards < 1 {
		nShards = 1
	}
	shards := make([]shard, nShards)
	per := (shots + nShards - 1) / nShards
	par.ForEach(nShards, workers, func(w int) {
		lo, hi := w*per, (w+1)*per
		if hi > shots {
			hi = shots
		}
		local := make(Counts)
		shards[w].counts = local
		if lo >= hi {
			return
		}
		st, err := NewState(c.NQubits)
		if err != nil {
			shards[w].err = err
			return
		}
		st.SetWorkers(kernelWorkers).SetKernelMinAmps(p.KernelMinAmps)
		// lfSource replays exactly the rand.NewSource streams with a
		// ~4x cheaper per-shot reseed (see rngsource.go).
		sr := rand.New(newLFSource())
		clbits := make([]int, c.NClbits)
		var dense []int
		if c.NClbits <= maxDenseClbits {
			dense = make([]int, 1<<uint(c.NClbits))
		}
		for s := lo; s < hi; s++ {
			// Reseeding replays the exact stream rand.NewSource(seed)
			// would produce, without the per-shot source allocation.
			sr.Seed(shotSeed(base, s))
			st.Reset()
			for i := range clbits {
				clbits[i] = 0
			}
			prog.exec(st, clbits, sr)
			if dense != nil {
				idx := 0
				for i, b := range clbits {
					idx |= b << uint(i)
				}
				dense[idx]++
			} else {
				local[bitstring(clbits)]++
			}
		}
		for idx, n := range dense {
			if n > 0 {
				local[indexBitstring(idx, c.NClbits)] = n
			}
		}
	})
	counts := make(Counts)
	for _, sh := range shards {
		if sh.err != nil {
			return nil, sh.err
		}
		counts.merge(sh.counts)
	}
	return counts, nil
}

// ProbabilityOfSuccess executes c with the given noise and returns the
// fraction of shots yielding the expected bitstring — the paper's "POS"
// metric.
func ProbabilityOfSuccess(c *circuit.Circuit, expected string, shots int, noise *NoiseModel, r *rand.Rand) (float64, error) {
	counts, err := Run(c, shots, noise, r)
	if err != nil {
		return 0, err
	}
	return counts.Prob(expected), nil
}
