package qsim

import (
	"fmt"
	"math/rand"
	"strings"

	"qcloud/internal/circuit"
)

// Counts maps classical bitstrings (clbit NClbits-1 leftmost, Qiskit
// style) to observed frequencies.
type Counts map[string]int

// Total returns the number of shots recorded.
func (c Counts) Total() int {
	t := 0
	for _, n := range c {
		t += n
	}
	return t
}

// Prob returns the empirical probability of the given bitstring.
func (c Counts) Prob(bits string) float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c[bits]) / float64(t)
}

// MostFrequent returns the modal bitstring (ties broken
// lexicographically) and its count.
func (c Counts) MostFrequent() (string, int) {
	best, bestN := "", -1
	for b, n := range c {
		if n > bestN || (n == bestN && b < best) {
			best, bestN = b, n
		}
	}
	return best, bestN
}

// bitstring renders clbits as a string with the highest clbit leftmost.
func bitstring(clbits []int) string {
	var b strings.Builder
	for i := len(clbits) - 1; i >= 0; i-- {
		if clbits[i] == 1 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Run executes circuit c for the given number of shots and returns the
// measurement counts. With a nil noise model and no mid-circuit
// measurement/reset, a single state-vector evolution is sampled
// multinomially; otherwise each shot is an independent trajectory.
func Run(c *circuit.Circuit, shots int, noise *NoiseModel, r *rand.Rand) (Counts, error) {
	if shots <= 0 {
		return nil, fmt.Errorf("qsim: shots must be positive, got %d", shots)
	}
	if usedQubits(c) > MaxQubits {
		return nil, fmt.Errorf("qsim: circuit touches qubits beyond the %d-qubit dense limit", MaxQubits)
	}
	if noise == nil && isTerminalMeasureOnly(c) {
		return runExact(c, shots, r)
	}
	return runTrajectories(c, shots, noise, r)
}

// usedQubits returns 1 + the largest qubit index referenced (compiled
// circuits are machine-wide, but simulation cost depends on the full
// register width, so callers should compact first when possible).
func usedQubits(c *circuit.Circuit) int {
	return c.NQubits
}

// isTerminalMeasureOnly reports whether every measurement is terminal
// for its own qubit: no unitary (or reset) touches a qubit after it has
// been measured. Such measurements commute to the end of the circuit,
// so a single exact state evolution suffices.
func isTerminalMeasureOnly(c *circuit.Circuit) bool {
	measured := make([]bool, c.NQubits)
	for _, g := range c.Gates {
		switch g.Op {
		case circuit.OpMeasure:
			measured[g.Qubits[0]] = true
		case circuit.OpReset:
			return false
		case circuit.OpBarrier:
		default:
			for _, q := range g.Qubits {
				if q < len(measured) && measured[q] {
					return false
				}
			}
		}
	}
	return true
}

// runExact evolves the state once and samples the terminal measurement
// distribution multinomially.
func runExact(c *circuit.Circuit, shots int, r *rand.Rand) (Counts, error) {
	st, err := NewState(c.NQubits)
	if err != nil {
		return nil, err
	}
	var measures []circuit.Gate
	for _, g := range c.Gates {
		if g.Op == circuit.OpMeasure {
			measures = append(measures, g)
			continue
		}
		if err := st.ApplyGate(g); err != nil {
			return nil, err
		}
	}
	probs := st.Probabilities()
	// Cumulative distribution for sampling.
	cum := make([]float64, len(probs))
	total := 0.0
	for i, p := range probs {
		total += p
		cum[i] = total
	}
	counts := make(Counts)
	clbits := make([]int, c.NClbits)
	for s := 0; s < shots; s++ {
		x := r.Float64() * total
		// Binary search the cumulative distribution.
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		for i := range clbits {
			clbits[i] = 0
		}
		for _, m := range measures {
			bit := (lo >> uint(m.Qubits[0])) & 1
			clbits[m.Clbit] = bit
		}
		counts[bitstring(clbits)]++
	}
	return counts, nil
}

// runTrajectories runs each shot as an independent noisy trajectory.
func runTrajectories(c *circuit.Circuit, shots int, noise *NoiseModel, r *rand.Rand) (Counts, error) {
	counts := make(Counts)
	clbits := make([]int, c.NClbits)
	for s := 0; s < shots; s++ {
		st, err := NewState(c.NQubits)
		if err != nil {
			return nil, err
		}
		for i := range clbits {
			clbits[i] = 0
		}
		for _, g := range c.Gates {
			switch g.Op {
			case circuit.OpMeasure:
				bit := st.MeasureQubit(g.Qubits[0], r)
				if noise != nil && r.Float64() < noise.ReadoutError(g.Qubits[0]) {
					bit ^= 1
				}
				clbits[g.Clbit] = bit
			case circuit.OpReset:
				st.ResetQubit(g.Qubits[0], r)
			case circuit.OpBarrier:
			default:
				if err := st.ApplyGate(g); err != nil {
					return nil, err
				}
				if noise != nil {
					noise.applyAfterGate(st, g, r)
				}
			}
		}
		counts[bitstring(clbits)]++
	}
	return counts, nil
}

// ProbabilityOfSuccess executes c with the given noise and returns the
// fraction of shots yielding the expected bitstring — the paper's "POS"
// metric.
func ProbabilityOfSuccess(c *circuit.Circuit, expected string, shots int, noise *NoiseModel, r *rand.Rand) (float64, error) {
	counts, err := Run(c, shots, noise, r)
	if err != nil {
		return 0, err
	}
	return counts.Prob(expected), nil
}
