package qsim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"qcloud/internal/circuit"
	"qcloud/internal/circuit/gens"
)

// TestApply2QMatchesGateDispatch pins the 4x4 kernel against the
// dedicated per-gate kernels: applying GateMat4(g) through Apply2Q must
// reproduce ApplyGate(g) on a non-trivial state, for every embeddable
// gate and both role orders, serial and sharded.
func TestApply2QMatchesGateDispatch(t *testing.T) {
	const n = 6
	gates := []circuit.Gate{
		circuit.NewGate(circuit.OpCX, []int{1, 4}),
		circuit.NewGate(circuit.OpCX, []int{4, 1}),
		circuit.NewGate(circuit.OpCZ, []int{0, 5}),
		circuit.NewGate(circuit.OpCPhase, []int{2, 3}, 0.8),
		circuit.NewGate(circuit.OpSWAP, []int{0, 3}),
		circuit.NewGate(circuit.OpSX, []int{2}),
		circuit.NewGate(circuit.OpRZ, []int{4}, 1.1),
	}
	prep := func() *State {
		st, err := NewState(n)
		if err != nil {
			t.Fatal(err)
		}
		st.SetWorkers(1)
		r := rand.New(rand.NewSource(7))
		for q := 0; q < n; q++ {
			m := circuit.U3Mat(r.Float64()*3, r.Float64()*6, r.Float64()*6)
			st.Apply1Q(m, q)
		}
		st.ApplyCX(0, 1)
		st.ApplyCX(2, 3)
		return st
	}
	for _, g := range gates {
		for _, roles := range [][2]int{{1, 4}, {4, 1}, {2, 3}, {0, 5}, {3, 0}, {5, 2}} {
			q0, q1 := roles[0], roles[1]
			m, ok := circuit.GateMat4(g, q0, q1)
			if !ok {
				continue // gate does not fit this pair
			}
			want := prep()
			if err := want.ApplyGate(g); err != nil {
				t.Fatal(err)
			}
			got := prep()
			got.Apply2Q(m, q0, q1)
			for i := 0; i < 1<<n; i++ {
				d := want.Amplitude(i) - got.Amplitude(i)
				if real(d)*real(d)+imag(d)*imag(d) > 1e-24 {
					t.Fatalf("%v on roles (%d,%d): amplitude %d differs: %v vs %v",
						g, q0, q1, i, got.Amplitude(i), want.Amplitude(i))
				}
			}
		}
	}
}

// conjugationCircuit builds the compiled-shape hot path: rz·sx·rz
// chains on both qubits of each CX, the stream 2q block fusion exists
// to collapse.
func conjugationCircuit(n, rounds int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("conj%dx%d", n, rounds), n)
	r := rand.New(rand.NewSource(int64(n*1000 + rounds)))
	for k := 0; k < rounds; k++ {
		a := r.Intn(n)
		b := (a + 1 + r.Intn(n-1)) % n
		c.RZ(a, r.Float64()*6).SX(a).RZ(a, r.Float64()*6)
		c.RZ(b, r.Float64()*6).SX(b).RZ(b, r.Float64()*6)
		c.CX(a, b)
		c.RZ(b, r.Float64()*6).SX(b).RZ(b, r.Float64()*6)
	}
	c.MeasureAll()
	return c
}

// TestFusion2QCollapsesConjugation is the tentpole's compile-shape
// contract: a full rz·sx·rz — cx — rz·sx·rz conjugation on one pair
// compiles to exactly one 4x4 sweep, and the blocked stream of a
// conjugation-chain circuit is much shorter than the PR 2 stream.
func TestFusion2QCollapsesConjugation(t *testing.T) {
	c := circuit.New("conj", 2)
	c.RZ(0, 0.3).SX(0).RZ(0, 0.5)
	c.RZ(1, 0.7).SX(1).RZ(1, 0.9)
	c.CX(0, 1)
	c.RZ(1, 1.1).SX(1).RZ(1, 1.3)
	c.RZ(0, 1.5).SX(0).RZ(0, 1.7)
	prog, err := compileProgram(c, nil, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.ops) != 1 {
		t.Fatalf("conjugation compiled to %d ops, want 1: %+v", len(prog.ops), prog.ops)
	}
	op := &prog.ops[0]
	if op.kind != opMat4 || len(op.src) != 13 {
		t.Fatalf("want one opMat4 holding all 13 source gates, got kind=%d src=%d", op.kind, len(op.src))
	}

	big := conjugationCircuit(6, 20)
	unfused, fused1q, blocked, err := KernelCounts(big, nil)
	if err != nil {
		t.Fatal(err)
	}
	if blocked*2 > fused1q {
		t.Fatalf("2q blocking barely compressed: %d blocked vs %d fused1q (%d unfused)", blocked, fused1q, unfused)
	}
}

// Test2QBlockGrammar pins when blocks open and close: a bare CX keeps
// its dedicated exchange kernel, a CX preceded by a fused 1q run opens
// a block, CZ/CPhase prefer diagonal runs unless a same-pair block is
// already open, and a gate off the pair closes the block.
func Test2QBlockGrammar(t *testing.T) {
	// GHZ: h(0) cx(0,1) opens a block (the H is waiting); the later
	// bare cx(1,2), cx(2,3) stay opSrc exchanges.
	prog, err := compileProgram(gens.GHZ(4), nil, true, true)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []opKind
	for i := range prog.ops {
		if prog.ops[i].kind != opMeasure {
			kinds = append(kinds, prog.ops[i].kind)
		}
	}
	if !reflect.DeepEqual(kinds, []opKind{opMat4, opSrc, opSrc}) {
		t.Fatalf("GHZ(4) unitary stream = %v, want [opMat4 opSrc opSrc]", kinds)
	}

	// QAOA RZZ: cx — rz — cx on one pair is one block (the first cx
	// opens on the preceding mixer 1q run, then rz and cx absorb).
	c := circuit.New("rzz", 2)
	c.H(0).H(1).CX(0, 1).RZ(1, 0.8).CX(0, 1)
	prog, err = compileProgram(c, nil, true, true)
	if err != nil {
		t.Fatal(err)
	}
	// h(0) stays a lone Mat2 (wrong qubit order to fold both), h(1)
	// + cx + rz + cx collapse. Accept any stream of <= 2 unitary ops
	// ending in a multi-gate block.
	var unitary []*fusedOp
	for i := range prog.ops {
		if prog.ops[i].kind != opMeasure {
			unitary = append(unitary, &prog.ops[i])
		}
	}
	lastOp := unitary[len(unitary)-1]
	if len(unitary) > 2 || lastOp.kind != opMat4 || len(lastOp.src) < 4 {
		t.Fatalf("RZZ sandwich did not collapse: %d unitary ops, last kind=%d src=%d",
			len(unitary), lastOp.kind, len(lastOp.src))
	}

	// CZ with no same-pair block open joins a diagonal run even when a
	// different-pair block precedes it.
	c = circuit.New("czdiag", 3)
	c.H(0).CX(0, 1).CZ(1, 2).CZ(0, 2)
	prog, err = compileProgram(c, nil, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if prog.ops[0].kind != opMat4 || prog.ops[1].kind != opDiag || len(prog.ops[1].src) != 2 {
		t.Fatalf("cz gates should share one diagonal run after the block, got %+v", prog.ops)
	}

	// A same-pair CZ absorbs into the open block instead.
	c = circuit.New("czblock", 2)
	c.H(0).CX(0, 1).CZ(0, 1)
	prog, err = compileProgram(c, nil, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.ops) != 1 || prog.ops[0].kind != opMat4 || len(prog.ops[0].src) != 3 {
		t.Fatalf("same-pair cz should absorb into the block, got %+v", prog.ops)
	}
}

// randomCompiledShape generates the property-suite circuits: mixed 1q
// conjugation chains, CX/CZ/CPhase/SWAP pairs, diagonal runs, CCX, and
// occasional mid-circuit measurement/reset — the gate mix compiled
// circuits and the fusion grammar have to agree on.
func randomCompiledShape(r *rand.Rand, n int) *circuit.Circuit {
	c := circuit.New("prop", n)
	pair := func() (int, int) {
		a := r.Intn(n)
		return a, (a + 1 + r.Intn(n-1)) % n
	}
	steps := 10 + r.Intn(14)
	for s := 0; s < steps; s++ {
		switch r.Intn(12) {
		case 0, 1, 2:
			q := r.Intn(n)
			c.RZ(q, r.Float64()*6).SX(q).RZ(q, r.Float64()*6)
		case 3, 4:
			a, b := pair()
			c.CX(a, b)
		case 5:
			a, b := pair()
			c.SWAP(a, b)
		case 6:
			a, b := pair()
			c.CZ(a, b)
		case 7:
			a, b := pair()
			c.CPhase(a, b, r.Float64()*6)
		case 8:
			q := r.Intn(n)
			c.H(q)
		case 9:
			q := r.Intn(n)
			c.T(q).RZ(q, r.Float64())
		case 10:
			if n >= 3 {
				a := r.Intn(n - 2)
				c.CCX(a, a+1, a+2)
			} else {
				c.X(r.Intn(n))
			}
		case 11:
			q := r.Intn(n)
			if r.Intn(2) == 0 {
				c.Reset(q)
			} else {
				c.Measure(q, q)
			}
		}
	}
	c.MeasureAll()
	return c
}

// TestFused2QPropertySuite is the randomized equivalence property: for
// >= 200 random compiled-shape circuits with mixed noise levels —
// including probability-1 noise that forces every block through the
// applySlow replay path — the fully blocked engine's counts are
// bit-identical to the kept-verbatim PR 1 reference engine, for
// serial and parallel pools.
func TestFused2QPropertySuite(t *testing.T) {
	const cases, shots = 210, 40
	gen := rand.New(rand.NewSource(99))
	for i := 0; i < cases; i++ {
		n := 3 + gen.Intn(4)
		c := randomCompiledShape(gen, n)
		var noise *NoiseModel
		switch i % 4 {
		case 0:
			noise = UniformNoise(0.01, 0.05, 0.02)
		case 1:
			// High rates: most blocks see a mid-block fire.
			noise = UniformNoise(0.3, 0.5, 0.1)
		case 2:
			// Forced fires: every gate's draw hits, so every fused
			// block (including 4x4 blocks) replays through applySlow.
			noise = UniformNoise(1, 1, 0.5)
		case 3:
			noise = UniformNoise(0.002, 0.02, 0)
		}
		seed := int64(1000 + i)
		want := referenceTrajectories(t, c, shots, noise, seed)
		for _, w := range []int{1, 4} {
			got, err := RunOpts(c, shots, noise, rand.New(rand.NewSource(seed)), Parallelism{Workers: w})
			if err != nil {
				t.Fatalf("case %d workers=%d: %v", i, w, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("case %d workers=%d (%s): blocked counts diverge from reference:\n%v\nvs\n%v",
					i, w, c.Name, got, want)
			}
		}
	}
}

// TestForcedMidBlockSlowPath pins the applySlow contract on 4x4 blocks
// directly: with certain noise, a conjugation circuit (which compiles
// to multi-gate opMat4 blocks) must still match the reference engine
// exactly — every shot replays blocks gate by gate with Paulis
// injected in place.
func TestForcedMidBlockSlowPath(t *testing.T) {
	c := conjugationCircuit(4, 6)
	prog, err := compileProgram(c, UniformNoise(1, 1, 0.2), true, true)
	if err != nil {
		t.Fatal(err)
	}
	blocks := 0
	for i := range prog.ops {
		if prog.ops[i].kind == opMat4 && len(prog.ops[i].src) > 1 {
			blocks++
		}
	}
	if blocks == 0 {
		t.Fatal("conjugation circuit should compile to multi-gate 4x4 blocks")
	}
	noise := UniformNoise(1, 1, 0.2)
	want := referenceTrajectories(t, c, 120, noise, 17)
	got, err := RunOpts(c, 120, noise, rand.New(rand.NewSource(17)), Parallelism{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("forced slow-path counts diverge:\n%v\nvs\n%v", got, want)
	}
}

// TestBlockedShotLoopAllocationFree extends the steady-state
// zero-allocation pin to the blocked executor: a conjugation-heavy
// program full of opMat4 blocks must execute shots without allocating.
func TestBlockedShotLoopAllocationFree(t *testing.T) {
	c := conjugationCircuit(6, 12)
	noise := UniformNoise(0.01, 0.03, 0.02)
	prog, err := compileProgram(c, noise, true, true)
	if err != nil {
		t.Fatal(err)
	}
	hasBlock := false
	for i := range prog.ops {
		if prog.ops[i].kind == opMat4 {
			hasBlock = true
		}
	}
	if !hasBlock {
		t.Fatal("expected 4x4 blocks in the compiled stream")
	}
	st, err := NewState(c.NQubits)
	if err != nil {
		t.Fatal(err)
	}
	st.SetWorkers(1)
	sr := rand.New(rand.NewSource(1))
	clbits := make([]int, c.NClbits)
	dense := make([]int, 1<<uint(c.NClbits))
	shot := 0
	avg := testing.AllocsPerRun(200, func() {
		sr.Seed(shotSeed(11, shot))
		shot++
		st.Reset()
		for i := range clbits {
			clbits[i] = 0
		}
		prog.exec(st, clbits, sr)
		idx := 0
		for i, b := range clbits {
			idx |= b << uint(i)
		}
		dense[idx]++
	})
	if avg != 0 {
		t.Fatalf("blocked steady-state shot loop allocates %v per shot, want 0", avg)
	}
}
