package qsim

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"qcloud/internal/circuit/gens"
)

func TestGrover2qExact(t *testing.T) {
	for marked := uint64(0); marked < 4; marked++ {
		c := gens.Grover(2, marked)
		counts, err := Run(c, 500, nil, rand.New(rand.NewSource(int64(marked)+1)))
		if err != nil {
			t.Fatal(err)
		}
		want := bitstringOf(marked, 2)
		if p := counts.Prob(want); p < 0.999 {
			t.Fatalf("Grover(2, %02b): P(%s) = %v, want 1 (counts %v)", marked, want, p, counts)
		}
	}
}

func TestGrover3qAmplifies(t *testing.T) {
	for _, marked := range []uint64{0b000, 0b101, 0b111} {
		c := gens.Grover(3, marked)
		counts, err := Run(c, 3000, nil, rand.New(rand.NewSource(int64(marked)+7)))
		if err != nil {
			t.Fatal(err)
		}
		want := bitstringOf(marked, 3)
		// Two iterations on 3 qubits: P ~ 0.945.
		if p := counts.Prob(want); math.Abs(p-0.945) > 0.04 {
			t.Fatalf("Grover(3, %03b): P(%s) = %v, want ~0.945", marked, want, p)
		}
	}
}

func TestGroverInvalidSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unsupported width")
		}
	}()
	gens.Grover(4, 0)
}

func TestWStateUniformOneHot(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5} {
		c := gens.WState(n)
		counts, err := Run(c, 6000, nil, rand.New(rand.NewSource(int64(n))))
		if err != nil {
			t.Fatal(err)
		}
		seen := 0
		for bits, cnt := range counts {
			if strings.Count(bits, "1") != 1 {
				t.Fatalf("W(%d) produced non-one-hot outcome %q", n, bits)
			}
			seen++
			p := float64(cnt) / float64(counts.Total())
			if math.Abs(p-1/float64(n)) > 0.03 {
				t.Fatalf("W(%d) outcome %q probability %v, want %v", n, bits, p, 1/float64(n))
			}
		}
		if seen != n {
			t.Fatalf("W(%d) support size %d, want %d", n, seen, n)
		}
	}
}

func TestCompiledGroverStillFindsMarked(t *testing.T) {
	// Grover uses CZ and CCX: compiling it exercises 3q unrolling,
	// basis translation and routing; the marked state must survive.
	cc := compileAndCompact(t, gens.Grover(3, 0b011), "ibmq_casablanca", 51)
	counts, err := Run(cc, 3000, nil, rand.New(rand.NewSource(52)))
	if err != nil {
		t.Fatal(err)
	}
	if p := counts.Prob("011"); math.Abs(p-0.945) > 0.05 {
		t.Fatalf("compiled Grover P(011) = %v, want ~0.945", p)
	}
}

func TestCompiledWStateKeepsSupport(t *testing.T) {
	cc := compileAndCompact(t, gens.WState(4), "ibmq_athens", 53)
	counts, err := Run(cc, 4000, nil, rand.New(rand.NewSource(54)))
	if err != nil {
		t.Fatal(err)
	}
	for bits, cnt := range counts {
		if strings.Count(bits, "1") != 1 {
			t.Fatalf("compiled W state broke: outcome %q x%d", bits, cnt)
		}
	}
}

// bitstringOf renders value as an n-bit string, bit n-1 leftmost.
func bitstringOf(v uint64, n int) string {
	var b strings.Builder
	for i := n - 1; i >= 0; i-- {
		if v&(1<<uint(i)) != 0 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

func TestTeleportation(t *testing.T) {
	for _, angles := range [][2]float64{{0, 0}, {0.7, 1.3}, {math.Pi / 2, math.Pi / 4}, {2.2, -0.9}} {
		c := gens.Teleport(angles[0], angles[1])
		counts, err := Run(c, 1000, nil, rand.New(rand.NewSource(int64(angles[0]*100)+3)))
		if err != nil {
			t.Fatal(err)
		}
		if p := counts.Prob("0"); p < 0.999 {
			t.Fatalf("teleport(%v,%v): P(verify) = %v, want 1", angles[0], angles[1], p)
		}
	}
}

func TestCompiledTeleportation(t *testing.T) {
	cc := compileAndCompact(t, gens.Teleport(0.9, 0.4), "ibmq_lima", 57)
	counts, err := Run(cc, 600, nil, rand.New(rand.NewSource(58)))
	if err != nil {
		t.Fatal(err)
	}
	if p := counts.Prob("0"); p < 0.999 {
		t.Fatalf("compiled teleport P(verify) = %v", p)
	}
}
