package qsim

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"qcloud/internal/circuit/gens"
)

// batchCases builds a mixed batch: trajectory jobs of different widths
// and noise levels, an exact-path job (no noise, terminal measures),
// and a mid-measure trajectory job, with well-separated seeds.
func batchCases() []BatchJob {
	return []BatchJob{
		{Circ: gens.QFTBench(4), Shots: 300, Noise: UniformNoise(0.002, 0.02, 0.02), Seed: 11},
		{Circ: gens.GHZ(5), Shots: 150, Noise: UniformNoise(0.004, 0.05, 0.03), Seed: 22},
		{Circ: gens.QFTBench(6), Shots: 90, Noise: UniformNoise(0.01, 0.03, 0.01), Seed: 33},
		{Circ: gens.GHZ(3), Shots: 500, Noise: nil, Seed: 44},         // exact path
		{Circ: trajectoryCircuit(), Shots: 200, Noise: nil, Seed: 55}, // mid-measure trajectories
		{Circ: conjugationCircuit(5, 8), Shots: 120, Noise: UniformNoise(0.01, 0.04, 0.02), Seed: 66},
	}
}

// TestBatchRunMatchesPerJobRuns is the batching determinism contract:
// every job's Counts are bit-identical to a standalone RunOpts with
// rand.NewSource(job.Seed), for any shared-pool worker count — batched
// vs per-job pools changes scheduling only, never results.
func TestBatchRunMatchesPerJobRuns(t *testing.T) {
	jobs := batchCases()
	want := make([]Counts, len(jobs))
	for j, job := range jobs {
		counts, err := RunOpts(job.Circ, job.Shots, job.Noise, rand.New(rand.NewSource(job.Seed)), Parallelism{Workers: 1})
		if err != nil {
			t.Fatalf("job %d reference: %v", j, err)
		}
		want[j] = counts
	}
	for _, w := range []int{1, 2, 3, runtime.NumCPU()} {
		got := BatchRun(jobs, Parallelism{Workers: w})
		if len(got) != len(jobs) {
			t.Fatalf("workers=%d: %d results for %d jobs", w, len(got), len(jobs))
		}
		for j := range jobs {
			if got[j].Err != nil {
				t.Fatalf("workers=%d job %d: %v", w, j, got[j].Err)
			}
			if !reflect.DeepEqual(want[j], got[j].Counts) {
				t.Fatalf("workers=%d job %d: batched counts diverge from per-job pool:\n%v\nvs\n%v",
					w, j, got[j].Counts, want[j])
			}
		}
	}
}

// TestBatchRunFusionToggles checks the batch path honors the A/B
// toggles without changing counts.
func TestBatchRunFusionToggles(t *testing.T) {
	jobs := batchCases()
	base := BatchRun(jobs, Parallelism{Workers: 2})
	for _, p := range []Parallelism{
		{Workers: 2, DisableFusion2Q: true},
		{Workers: 2, DisableFusion: true},
		{Workers: runtime.NumCPU(), DisableFusion: true, DisableFusion2Q: true},
	} {
		got := BatchRun(jobs, p)
		for j := range jobs {
			if got[j].Err != nil {
				t.Fatalf("job %d (%+v): %v", j, p, got[j].Err)
			}
			if !reflect.DeepEqual(base[j].Counts, got[j].Counts) {
				t.Fatalf("job %d: counts change under %+v:\n%v\nvs\n%v",
					j, p, got[j].Counts, base[j].Counts)
			}
		}
	}
}

// TestBatchRunPerJobErrors pins error isolation: invalid jobs report
// their own Err while the rest of the batch completes normally.
func TestBatchRunPerJobErrors(t *testing.T) {
	jobs := []BatchJob{
		{Circ: gens.GHZ(4), Shots: 100, Noise: UniformNoise(0.01, 0.02, 0.01), Seed: 1},
		{Circ: nil, Shots: 100, Seed: 2},
		{Circ: gens.GHZ(3), Shots: 0, Seed: 3},
		{Circ: gens.GHZ(4), Shots: 100, Noise: UniformNoise(0.01, 0.02, 0.01), Seed: 1},
	}
	res := BatchRun(jobs, Parallelism{Workers: 2})
	if res[1].Err == nil || res[1].Counts != nil {
		t.Fatalf("nil-circuit job should fail, got %+v", res[1])
	}
	if res[2].Err == nil || res[2].Counts != nil {
		t.Fatalf("zero-shot job should fail, got %+v", res[2])
	}
	for _, j := range []int{0, 3} {
		if res[j].Err != nil {
			t.Fatalf("valid job %d failed: %v", j, res[j].Err)
		}
		if got := res[j].Counts.Total(); got != 100 {
			t.Fatalf("job %d recorded %d shots, want 100", j, got)
		}
	}
	// Identical (Circ, Seed) jobs produce identical counts.
	if !reflect.DeepEqual(res[0].Counts, res[3].Counts) {
		t.Fatalf("same-seed jobs diverge: %v vs %v", res[0].Counts, res[3].Counts)
	}
	// An empty batch is fine.
	if out := BatchRun(nil, Parallelism{}); len(out) != 0 {
		t.Fatalf("empty batch returned %d results", len(out))
	}
}

// TestBatchRunSharedPoolRace drives the shared pool with enough
// concurrent units to matter under -race: many small jobs of mixed
// widths, full worker pool.
func TestBatchRunSharedPoolRace(t *testing.T) {
	var jobs []BatchJob
	for i := 0; i < 12; i++ {
		n := 3 + i%3
		jobs = append(jobs, BatchJob{
			Circ:  gens.QFTBench(n),
			Shots: 130,
			Noise: UniformNoise(0.005, 0.03, 0.02),
			Seed:  int64(100 + i),
		})
	}
	res := BatchRun(jobs, Parallelism{})
	for j := range res {
		if res[j].Err != nil {
			t.Fatalf("job %d: %v", j, res[j].Err)
		}
		if res[j].Counts.Total() != 130 {
			t.Fatalf("job %d recorded %d shots, want 130", j, res[j].Counts.Total())
		}
	}
}
