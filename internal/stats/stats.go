// Package stats provides the statistical machinery used throughout the
// qcloud reproduction: descriptive statistics, quantiles, histograms,
// violin-plot summaries, correlation, linear and nonlinear least-squares
// fitting, and seeded random distributions.
//
// Everything operates on plain float64 slices and explicit *rand.Rand
// sources so results are deterministic and the package stays free of
// global state.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot operate on empty input.
var ErrEmpty = errors.New("stats: empty input")

// Sum returns the sum of xs. An empty slice sums to 0.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// non-positive values yield NaN. Empty input yields NaN.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Variance returns the population variance of xs (divide by n), or NaN
// for empty input.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// SampleVariance returns the sample variance of xs (divide by n-1), or
// NaN when len(xs) < 2.
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CoV returns the coefficient of variation (population stddev / mean).
// It is the spatial-variation metric the paper quotes for calibration
// data (e.g. "CoV of 30-40% for T1/T2"). NaN when the mean is zero.
func CoV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return math.NaN()
	}
	return StdDev(xs) / m
}

// Min returns the minimum of xs, or NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs (interpolated for even lengths).
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-th quantile of xs, q in [0,1], using linear
// interpolation between closest ranks (the same convention as numpy's
// default). Returns NaN for empty input or q outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// QuantilesSorted returns the quantiles qs of an already-sorted slice.
// It avoids re-sorting when many quantiles of the same data are needed.
func QuantilesSorted(sorted []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		if len(sorted) == 0 || q < 0 || q > 1 {
			out[i] = math.NaN()
			continue
		}
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// SortedCopy returns an ascending-sorted copy of xs.
func SortedCopy(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	sort.Float64s(out)
	return out
}

// FractionBelow returns the fraction of xs strictly below threshold.
func FractionBelow(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	n := 0
	for _, x := range xs {
		if x < threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// FractionAtLeast returns the fraction of xs greater than or equal to
// threshold.
func FractionAtLeast(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return 1 - FractionBelow(xs, threshold)
}
