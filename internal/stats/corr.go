package stats

import (
	"math"
	"sort"
)

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It is the metric the paper uses for Fig 15 ("Correlation is calculated
// with the Pearson Coefficient"). Returns NaN if the lengths differ, the
// input is shorter than 2, or either series is constant.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation between xs and ys:
// the Pearson correlation of the two rank vectors, with ties assigned
// their average rank.
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks returns the 1-based fractional ranks of xs (ties get the average
// of the ranks they span).
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// average rank for the tie group [i, j]
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}
