package stats

import (
	"math"
	"math/rand"
	"testing"
)

func sampleN(s Sampler, r *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = s.Sample(r)
	}
	return xs
}

func TestUniformRange(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	xs := sampleN(Uniform{Lo: 2, Hi: 5}, r, 10000)
	if Min(xs) < 2 || Max(xs) >= 5 {
		t.Fatalf("uniform out of range: [%v,%v]", Min(xs), Max(xs))
	}
	if !almostEqual(Mean(xs), 3.5, 0.05) {
		t.Fatalf("uniform mean = %v, want ~3.5", Mean(xs))
	}
}

func TestExponentialMean(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	xs := sampleN(Exponential{Mean: 4}, r, 50000)
	if !almostEqual(Mean(xs), 4, 0.1) {
		t.Fatalf("exp mean = %v, want ~4", Mean(xs))
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	xs := sampleN(LogNormal{Mu: 1, Sigma: 2}, r, 10000)
	if Min(xs) <= 0 {
		t.Fatal("lognormal produced non-positive value")
	}
	// Median of lognormal is exp(mu).
	if med := Median(xs); !almostEqual(med, math.E, 0.2) {
		t.Fatalf("lognormal median = %v, want ~e", med)
	}
}

func TestParetoTail(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	p := Pareto{Xm: 1, Alpha: 1.5}
	xs := sampleN(p, r, 20000)
	if Min(xs) < 1 {
		t.Fatal("pareto below scale")
	}
	// P(X > 10) = (1/10)^1.5 ≈ 0.0316
	frac := FractionAtLeast(xs, 10)
	if !almostEqual(frac, 0.0316, 0.01) {
		t.Fatalf("pareto tail = %v, want ~0.0316", frac)
	}
}

func TestPoissonMean(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, mean := range []float64{0.5, 3, 20, 120} {
		var sum float64
		n := 20000
		for i := 0; i < n; i++ {
			sum += float64(Poisson(r, mean))
		}
		got := sum / float64(n)
		if !almostEqual(got, mean, mean*0.05+0.05) {
			t.Fatalf("poisson(%v) mean = %v", mean, got)
		}
	}
	if Poisson(r, -1) != 0 || Poisson(r, 0) != 0 {
		t.Fatal("non-positive mean should produce 0")
	}
}

func TestClamped(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	c := Clamped{S: Normal{Mu: 0, Sigma: 100}, Lo: -1, Hi: 1}
	xs := sampleN(c, r, 1000)
	if Min(xs) < -1 || Max(xs) > 1 {
		t.Fatal("clamped out of range")
	}
}

func TestMixtureWeights(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	m := Mixture{
		Weights:    []float64{9, 1},
		Components: []Sampler{Uniform{0, 1}, Uniform{100, 101}},
	}
	xs := sampleN(m, r, 20000)
	frac := FractionAtLeast(xs, 50)
	if !almostEqual(frac, 0.1, 0.02) {
		t.Fatalf("mixture high-component fraction = %v, want ~0.1", frac)
	}
}

func TestWeightedChoiceDegenerate(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	if WeightedChoice(r, nil) != 0 {
		t.Fatal("empty weights should return 0")
	}
	if WeightedChoice(r, []float64{0, 0}) != 0 {
		t.Fatal("all-zero weights should return 0")
	}
	if WeightedChoice(r, []float64{0, 5, 0}) != 1 {
		t.Fatal("single positive weight must always be chosen")
	}
}

func TestWeightedChoiceProportions(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	counts := make([]int, 3)
	n := 30000
	for i := 0; i < n; i++ {
		counts[WeightedChoice(r, []float64{1, 2, 7})]++
	}
	fracs := []float64{0.1, 0.2, 0.7}
	for i, want := range fracs {
		got := float64(counts[i]) / float64(n)
		if !almostEqual(got, want, 0.02) {
			t.Fatalf("choice %d frequency = %v, want ~%v", i, got, want)
		}
	}
}
