package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a least-squares system has no unique
// solution (collinear features, too few observations).
var ErrSingular = errors.New("stats: singular system")

// LinearFit solves the ordinary-least-squares problem y ≈ X·beta via the
// normal equations with Gaussian elimination and partial pivoting.
// X is row-major: X[i] is the feature vector of observation i (include a
// 1.0 column yourself for an intercept). It returns the coefficient
// vector beta.
func LinearFit(X [][]float64, y []float64) ([]float64, error) {
	n := len(X)
	if n == 0 || n != len(y) {
		return nil, ErrEmpty
	}
	p := len(X[0])
	for i, row := range X {
		if len(row) != p {
			return nil, fmt.Errorf("stats: ragged design matrix at row %d", i)
		}
	}
	// Normal equations: (XᵀX) beta = Xᵀy.
	xtx := make([][]float64, p)
	xty := make([]float64, p)
	for i := 0; i < p; i++ {
		xtx[i] = make([]float64, p)
	}
	for _, row := range X {
		for i := 0; i < p; i++ {
			for j := i; j < p; j++ {
				xtx[i][j] += row[i] * row[j]
			}
		}
	}
	for i := 0; i < p; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
	}
	for k, row := range X {
		for i := 0; i < p; i++ {
			xty[i] += row[i] * y[k]
		}
	}
	return SolveLinear(xtx, xty)
}

// SolveLinear solves A·x = b by Gaussian elimination with partial
// pivoting. A and b are not modified.
func SolveLinear(A [][]float64, b []float64) ([]float64, error) {
	n := len(A)
	if n == 0 || len(b) != n {
		return nil, ErrEmpty
	}
	// Work on copies.
	m := make([][]float64, n)
	for i := range A {
		if len(A[i]) != n {
			return nil, fmt.Errorf("stats: non-square matrix row %d", i)
		}
		m[i] = append([]float64(nil), A[i]...)
		m[i] = append(m[i], b[i])
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := m[i][n]
		for j := i + 1; j < n; j++ {
			s -= m[i][j] * x[j]
		}
		x[i] = s / m[i][i]
	}
	return x, nil
}

// ModelFunc evaluates a parametric model at feature vector x with
// parameters theta.
type ModelFunc func(x []float64, theta []float64) float64

// CurveFitOptions controls the Levenberg-Marquardt iteration in CurveFit.
type CurveFitOptions struct {
	MaxIter int     // maximum LM iterations (default 200)
	Tol     float64 // relative improvement tolerance (default 1e-10)
	Lambda0 float64 // initial damping (default 1e-3)
}

func (o CurveFitOptions) withDefaults() CurveFitOptions {
	if o.MaxIter <= 0 {
		o.MaxIter = 200
	}
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.Lambda0 <= 0 {
		o.Lambda0 = 1e-3
	}
	return o
}

// CurveFit fits theta to minimize Σ (y_i - f(X_i, theta))² using
// Levenberg-Marquardt with a forward-difference Jacobian. It is the Go
// equivalent of the scipy.optimize curve_fit call the paper uses to
// train its execution-time model (§VI-C). theta0 is the starting point
// and is not modified; the fitted parameters are returned.
func CurveFit(f ModelFunc, X [][]float64, y []float64, theta0 []float64, opts CurveFitOptions) ([]float64, error) {
	n := len(X)
	if n == 0 || n != len(y) {
		return nil, ErrEmpty
	}
	o := opts.withDefaults()
	p := len(theta0)
	theta := append([]float64(nil), theta0...)
	lambda := o.Lambda0

	residuals := func(t []float64) ([]float64, float64) {
		r := make([]float64, n)
		ss := 0.0
		for i := range X {
			r[i] = y[i] - f(X[i], t)
			ss += r[i] * r[i]
		}
		return r, ss
	}

	r, ss := residuals(theta)
	for iter := 0; iter < o.MaxIter; iter++ {
		// Forward-difference Jacobian J[i][j] = ∂f(X_i)/∂theta_j.
		J := make([][]float64, n)
		for i := range J {
			J[i] = make([]float64, p)
		}
		for j := 0; j < p; j++ {
			h := 1e-7 * (math.Abs(theta[j]) + 1e-7)
			tp := append([]float64(nil), theta...)
			tp[j] += h
			for i := range X {
				J[i][j] = (f(X[i], tp) - (y[i] - r[i])) / h
			}
		}
		// Solve (JᵀJ + λ·diag(JᵀJ))·δ = Jᵀr.
		jtj := make([][]float64, p)
		jtr := make([]float64, p)
		for i := 0; i < p; i++ {
			jtj[i] = make([]float64, p)
		}
		for i := 0; i < n; i++ {
			for a := 0; a < p; a++ {
				jtr[a] += J[i][a] * r[i]
				for b := a; b < p; b++ {
					jtj[a][b] += J[i][a] * J[i][b]
				}
			}
		}
		for a := 0; a < p; a++ {
			for b := 0; b < a; b++ {
				jtj[a][b] = jtj[b][a]
			}
		}
		improved := false
		for attempt := 0; attempt < 20; attempt++ {
			damped := make([][]float64, p)
			for a := 0; a < p; a++ {
				damped[a] = append([]float64(nil), jtj[a]...)
				damped[a][a] += lambda * (jtj[a][a] + 1e-12)
			}
			delta, err := SolveLinear(damped, jtr)
			if err != nil {
				lambda *= 10
				continue
			}
			trial := make([]float64, p)
			for a := 0; a < p; a++ {
				trial[a] = theta[a] + delta[a]
			}
			rt, sst := residuals(trial)
			if sst < ss {
				relImprove := (ss - sst) / (ss + 1e-300)
				theta, r, ss = trial, rt, sst
				lambda = math.Max(lambda/10, 1e-12)
				improved = true
				if relImprove < o.Tol {
					return theta, nil
				}
				break
			}
			lambda *= 10
		}
		if !improved {
			break // converged (or stuck): current theta is the best found
		}
	}
	return theta, nil
}

// RSquared returns the coefficient of determination of predictions yhat
// against observations y.
func RSquared(y, yhat []float64) float64 {
	if len(y) != len(yhat) || len(y) == 0 {
		return math.NaN()
	}
	m := Mean(y)
	var ssRes, ssTot float64
	for i := range y {
		d := y[i] - yhat[i]
		ssRes += d * d
		t := y[i] - m
		ssTot += t * t
	}
	if ssTot == 0 {
		return math.NaN()
	}
	return 1 - ssRes/ssTot
}
