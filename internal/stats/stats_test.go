package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestMeanBasic(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
}

func TestSumEmpty(t *testing.T) {
	if got := Sum(nil); got != 0 {
		t.Fatalf("Sum(nil) = %v, want 0", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); !almostEqual(got, 10, 1e-9) {
		t.Fatalf("GeoMean = %v, want 10", got)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Fatal("GeoMean with negative input should be NaN")
	}
}

func TestVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestSampleVariance(t *testing.T) {
	xs := []float64{1, 2, 3}
	if got := SampleVariance(xs); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("SampleVariance = %v, want 1", got)
	}
	if !math.IsNaN(SampleVariance([]float64{5})) {
		t.Fatal("SampleVariance of single element should be NaN")
	}
}

func TestCoV(t *testing.T) {
	xs := []float64{10, 10, 10}
	if got := CoV(xs); got != 0 {
		t.Fatalf("CoV of constants = %v, want 0", got)
	}
	if !math.IsNaN(CoV([]float64{-1, 1})) {
		t.Fatal("CoV with zero mean should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestMedianOddEven(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("odd median = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("even median = %v, want 2.5", got)
	}
}

func TestQuantileEdges(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if Quantile(xs, 0) != 10 || Quantile(xs, 1) != 40 {
		t.Fatalf("quantile extremes wrong: %v %v", Quantile(xs, 0), Quantile(xs, 1))
	}
	if !math.IsNaN(Quantile(xs, -0.1)) || !math.IsNaN(Quantile(xs, 1.1)) {
		t.Fatal("out-of-range q should be NaN")
	}
	if got := Quantile([]float64{7}, 0.3); got != 7 {
		t.Fatalf("single-element quantile = %v, want 7", got)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.25); !almostEqual(got, 2.5, 1e-12) {
		t.Fatalf("Quantile(0.25) = %v, want 2.5", got)
	}
}

func TestFractionBelowAtLeast(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := FractionBelow(xs, 3); got != 0.4 {
		t.Fatalf("FractionBelow = %v, want 0.4", got)
	}
	if got := FractionAtLeast(xs, 3); !almostEqual(got, 0.6, 1e-12) {
		t.Fatalf("FractionAtLeast = %v, want 0.6", got)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0001; q += 0.1 {
			qq := math.Min(q, 1)
			v := Quantile(xs, qq)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanBetweenMinMaxProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-6 && m <= Max(xs)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	var run Running
	for i := range xs {
		xs[i] = r.NormFloat64()*3 + 7
		run.Add(xs[i])
	}
	if !almostEqual(run.Mean(), Mean(xs), 1e-9) {
		t.Fatalf("running mean %v vs batch %v", run.Mean(), Mean(xs))
	}
	if !almostEqual(run.Variance(), Variance(xs), 1e-9) {
		t.Fatalf("running var %v vs batch %v", run.Variance(), Variance(xs))
	}
	if run.Min() != Min(xs) || run.Max() != Max(xs) {
		t.Fatal("running min/max mismatch")
	}
	if run.N() != 1000 {
		t.Fatalf("N = %d", run.N())
	}
}

func TestRunningEmpty(t *testing.T) {
	var run Running
	if !math.IsNaN(run.Mean()) || !math.IsNaN(run.Variance()) || !math.IsNaN(run.Min()) || !math.IsNaN(run.Max()) {
		t.Fatal("empty Running should report NaN")
	}
}
