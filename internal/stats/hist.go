package stats

import (
	"fmt"
	"math"
)

// Histogram is a fixed-bucket histogram over [Lo, Hi). Values outside the
// range are clamped into the first/last bucket so no observation is lost.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	N      int64
	log    bool
}

// NewHistogram returns a linear-bucket histogram with n buckets over
// [lo, hi). It panics if n < 1 or hi <= lo, since those are programming
// errors, not data errors.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram [%g,%g) n=%d", lo, hi, n))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, n)}
}

// NewLogHistogram returns a histogram whose buckets are uniform in
// log-space over [lo, hi). lo must be positive. Log-space buckets suit
// the heavy-tailed queuing-time distributions in the paper (Fig 3 spans
// 10^-2 to 10^3 minutes).
func NewLogHistogram(lo, hi float64, n int) *Histogram {
	if lo <= 0 {
		panic(fmt.Sprintf("stats: log histogram requires lo > 0, got %g", lo))
	}
	h := NewHistogram(math.Log(lo), math.Log(hi), n)
	h.log = true
	return h
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	if h.log {
		if x <= 0 {
			x = math.Inf(-1) // clamps to the first bucket below
		} else {
			x = math.Log(x)
		}
	}
	i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.N++
}

// BucketLo returns the lower edge of bucket i in data space.
func (h *Histogram) BucketLo(i int) float64 {
	edge := h.Lo + (h.Hi-h.Lo)*float64(i)/float64(len(h.Counts))
	if h.log {
		return math.Exp(edge)
	}
	return edge
}

// CDF returns the empirical cumulative fraction of observations at or
// below the upper edge of bucket i.
func (h *Histogram) CDF(i int) float64 {
	if h.N == 0 {
		return math.NaN()
	}
	var c int64
	for j := 0; j <= i && j < len(h.Counts); j++ {
		c += h.Counts[j]
	}
	return float64(c) / float64(h.N)
}

// ViolinSummary captures the quantile skeleton of a distribution the way
// the paper's violin plots do (Figs 8, 10, 13): extremes, quartiles,
// 5th/95th percentiles, mean and count.
type ViolinSummary struct {
	N                    int
	Min, Max             float64
	P5, Q1, Med, Q3, P95 float64
	Mean                 float64
}

// Violin computes a ViolinSummary of xs. Empty input yields a summary
// with N == 0 and NaN statistics.
func Violin(xs []float64) ViolinSummary {
	v := ViolinSummary{N: len(xs)}
	if len(xs) == 0 {
		nan := math.NaN()
		v.Min, v.Max, v.P5, v.Q1, v.Med, v.Q3, v.P95, v.Mean = nan, nan, nan, nan, nan, nan, nan, nan
		return v
	}
	sorted := SortedCopy(xs)
	qs := QuantilesSorted(sorted, 0, 0.05, 0.25, 0.5, 0.75, 0.95, 1)
	v.Min, v.P5, v.Q1, v.Med, v.Q3, v.P95, v.Max = qs[0], qs[1], qs[2], qs[3], qs[4], qs[5], qs[6]
	v.Mean = Mean(xs)
	return v
}
