package stats

import "math"

// Running accumulates mean and variance incrementally using Welford's
// algorithm, so multi-gigabyte traces can be summarized in one pass
// without buffering all observations.
type Running struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Running) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations recorded.
func (s *Running) N() int64 { return s.n }

// Mean returns the running mean, or NaN if no observations were added.
func (s *Running) Mean() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.mean
}

// Variance returns the running population variance.
func (s *Running) Variance() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.m2 / float64(s.n)
}

// StdDev returns the running population standard deviation.
func (s *Running) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or NaN if none.
func (s *Running) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest observation, or NaN if none.
func (s *Running) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}
