package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestSolveLinearKnown(t *testing.T) {
	A := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := SolveLinear(A, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 1, 1e-9) || !almostEqual(x[1], 3, 1e-9) {
		t.Fatalf("x = %v, want [1 3]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	A := [][]float64{{1, 2}, {2, 4}}
	if _, err := SolveLinear(A, []float64{1, 2}); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestSolveLinearPivoting(t *testing.T) {
	// Zero on the first diagonal entry forces a pivot swap.
	A := [][]float64{{0, 1}, {1, 0}}
	x, err := SolveLinear(A, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 4, 1e-12) || !almostEqual(x[1], 3, 1e-12) {
		t.Fatalf("x = %v, want [4 3]", x)
	}
}

func TestLinearFitRecoversCoefficients(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	n := 500
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		a, b := r.Float64()*10, r.Float64()*10
		X[i] = []float64{1, a, b}
		y[i] = 2 + 3*a - 0.5*b + r.NormFloat64()*0.01
	}
	beta, err := LinearFit(X, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -0.5}
	for i := range want {
		if !almostEqual(beta[i], want[i], 0.01) {
			t.Fatalf("beta = %v, want approx %v", beta, want)
		}
	}
}

func TestLinearFitRagged(t *testing.T) {
	if _, err := LinearFit([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Fatal("expected error for ragged matrix")
	}
}

// productModel is the paper's execution-time model: Π(a_i + b_i·x_i).
func productModel(x []float64, theta []float64) float64 {
	prod := 1.0
	for i := range x {
		prod *= theta[2*i] + theta[2*i+1]*x[i]
	}
	return prod
}

func TestCurveFitProductOfLinearTerms(t *testing.T) {
	// Ground truth: (1 + 2x)(3 + 0.5y)
	r := rand.New(rand.NewSource(5))
	n := 400
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		a, b := r.Float64()*4, r.Float64()*4
		X[i] = []float64{a, b}
		y[i] = (1 + 2*a) * (3 + 0.5*b)
	}
	theta, err := CurveFit(productModel, X, y, []float64{0.5, 1, 1, 1}, CurveFitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The parameterization is only unique up to scaling between factors,
	// so validate by prediction quality instead of raw parameters.
	yhat := make([]float64, n)
	for i := range X {
		yhat[i] = productModel(X[i], theta)
	}
	if r2 := RSquared(y, yhat); r2 < 0.999 {
		t.Fatalf("R² = %v, want > 0.999", r2)
	}
}

func TestCurveFitNoisy(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	n := 600
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		a := r.Float64() * 10
		X[i] = []float64{a}
		y[i] = (2 + 1.5*a) + r.NormFloat64()*0.2
	}
	theta, err := CurveFit(productModel, X, y, []float64{1, 1}, CurveFitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(theta[0], 2, 0.1) || !almostEqual(theta[1], 1.5, 0.05) {
		t.Fatalf("theta = %v, want approx [2 1.5]", theta)
	}
}

func TestCurveFitEmpty(t *testing.T) {
	if _, err := CurveFit(productModel, nil, nil, []float64{1, 1}, CurveFitOptions{}); err == nil {
		t.Fatal("expected error on empty input")
	}
}

func TestRSquaredPerfect(t *testing.T) {
	y := []float64{1, 2, 3}
	if got := RSquared(y, y); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("R² = %v, want 1", got)
	}
	if !math.IsNaN(RSquared([]float64{1, 1}, []float64{1, 1})) {
		t.Fatal("R² of constant y should be NaN")
	}
}
