package stats

import (
	"math"
	"math/rand"
)

// Sampler draws values from a distribution using the provided source.
// All workload-model distributions in qcloud implement Sampler so that
// generators can be composed and swapped in tests.
type Sampler interface {
	Sample(r *rand.Rand) float64
}

// Uniform samples uniformly from [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample implements Sampler.
func (u Uniform) Sample(r *rand.Rand) float64 { return u.Lo + r.Float64()*(u.Hi-u.Lo) }

// Exponential samples from an exponential distribution with the given
// mean (not rate). Used for inter-arrival times.
type Exponential struct{ Mean float64 }

// Sample implements Sampler.
func (e Exponential) Sample(r *rand.Rand) float64 { return r.ExpFloat64() * e.Mean }

// Normal samples from a normal distribution.
type Normal struct{ Mu, Sigma float64 }

// Sample implements Sampler.
func (n Normal) Sample(r *rand.Rand) float64 { return n.Mu + n.Sigma*r.NormFloat64() }

// LogNormal samples from a log-normal distribution parameterized by the
// mean and stddev of the underlying normal. Queuing and service-time
// distributions in the trace model are log-normal: the paper's Fig 3
// spans five decades, which a log-normal tail reproduces.
type LogNormal struct{ Mu, Sigma float64 }

// Sample implements Sampler.
func (l LogNormal) Sample(r *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// Pareto samples from a Pareto (power-law) distribution with scale Xm
// and shape Alpha. Heavy tails model the "queued for days" extreme of
// the paper's queuing data.
type Pareto struct {
	Xm    float64
	Alpha float64
}

// Sample implements Sampler.
func (p Pareto) Sample(r *rand.Rand) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return p.Xm / math.Pow(u, 1/p.Alpha)
}

// Poisson draws a Poisson-distributed count with the given mean using
// Knuth's method for small means and a normal approximation above 50.
func Poisson(r *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 50 {
		// Normal approximation with continuity correction.
		n := int(math.Round(mean + math.Sqrt(mean)*r.NormFloat64()))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Clamped wraps a Sampler and clamps its output to [Lo, Hi].
type Clamped struct {
	S      Sampler
	Lo, Hi float64
}

// Sample implements Sampler.
func (c Clamped) Sample(r *rand.Rand) float64 {
	x := c.S.Sample(r)
	if x < c.Lo {
		return c.Lo
	}
	if x > c.Hi {
		return c.Hi
	}
	return x
}

// Mixture samples from one of several component distributions chosen
// with the given weights. Weights need not be normalized.
type Mixture struct {
	Weights    []float64
	Components []Sampler
}

// Sample implements Sampler.
func (m Mixture) Sample(r *rand.Rand) float64 {
	i := WeightedChoice(r, m.Weights)
	return m.Components[i].Sample(r)
}

// WeightedChoice returns an index drawn proportionally to weights.
// All-zero or empty weights return 0.
func WeightedChoice(r *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
