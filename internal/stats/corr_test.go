package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("Pearson = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEqual(got, -1, 1e-12) {
		t.Fatalf("Pearson = %v, want -1", got)
	}
}

func TestPearsonConstantIsNaN(t *testing.T) {
	if !math.IsNaN(Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})) {
		t.Fatal("constant series should yield NaN")
	}
}

func TestPearsonMismatched(t *testing.T) {
	if !math.IsNaN(Pearson([]float64{1, 2}, []float64{1})) {
		t.Fatal("mismatched lengths should yield NaN")
	}
}

func TestPearsonBoundedProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func(n uint8) bool {
		m := int(n%50) + 2
		xs := make([]float64, m)
		ys := make([]float64, m)
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = r.NormFloat64()
		}
		c := Pearson(xs, ys)
		return math.IsNaN(c) || (c >= -1-1e-9 && c <= 1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPearsonInvariantToAffineTransform(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	xs := make([]float64, 100)
	ys := make([]float64, 100)
	for i := range xs {
		xs[i] = r.NormFloat64()
		ys[i] = xs[i]*0.5 + r.NormFloat64()*0.2
	}
	c1 := Pearson(xs, ys)
	scaled := make([]float64, len(ys))
	for i := range ys {
		scaled[i] = ys[i]*42 + 17
	}
	c2 := Pearson(xs, scaled)
	if !almostEqual(c1, c2, 1e-9) {
		t.Fatalf("Pearson not affine-invariant: %v vs %v", c1, c2)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125} // monotone but nonlinear
	if got := Spearman(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("Spearman = %v, want 1", got)
	}
}

func TestRanksTies(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}
