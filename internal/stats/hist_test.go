package stats

import (
	"math"
	"testing"
)

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for i, c := range h.Counts {
		if c != 1 {
			t.Fatalf("bucket %d count = %d, want 1", i, c)
		}
	}
	if h.N != 10 {
		t.Fatalf("N = %d", h.N)
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(-100)
	h.Add(100)
	if h.Counts[0] != 1 || h.Counts[4] != 1 {
		t.Fatalf("clamping failed: %v", h.Counts)
	}
}

func TestHistogramInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid range")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestLogHistogram(t *testing.T) {
	h := NewLogHistogram(0.01, 1000, 5) // decades: .01-.1-1-10-100-1000
	h.Add(0.05)
	h.Add(0.5)
	h.Add(5)
	h.Add(50)
	h.Add(500)
	for i, c := range h.Counts {
		if c != 1 {
			t.Fatalf("log bucket %d count = %d (%v)", i, c, h.Counts)
		}
	}
	// Non-positive value clamps to lowest bucket.
	h.Add(0)
	if h.Counts[0] != 2 {
		t.Fatal("non-positive should clamp to first bucket")
	}
}

func TestLogHistogramInvalidLo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for lo <= 0")
		}
	}()
	NewLogHistogram(0, 10, 3)
}

func TestHistogramCDF(t *testing.T) {
	h := NewHistogram(0, 4, 4)
	for _, x := range []float64{0.5, 1.5, 2.5, 3.5} {
		h.Add(x)
	}
	if got := h.CDF(1); got != 0.5 {
		t.Fatalf("CDF(1) = %v, want 0.5", got)
	}
	if got := h.CDF(3); got != 1 {
		t.Fatalf("CDF(3) = %v, want 1", got)
	}
	empty := NewHistogram(0, 1, 2)
	if !math.IsNaN(empty.CDF(0)) {
		t.Fatal("empty CDF should be NaN")
	}
}

func TestBucketLo(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	if h.BucketLo(3) != 30 {
		t.Fatalf("BucketLo = %v", h.BucketLo(3))
	}
	lh := NewLogHistogram(1, 1000, 3)
	if !almostEqual(lh.BucketLo(1), 10, 1e-9) {
		t.Fatalf("log BucketLo = %v, want 10", lh.BucketLo(1))
	}
}

func TestViolinSummary(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i) // 0..100
	}
	v := Violin(xs)
	if v.N != 101 || v.Min != 0 || v.Max != 100 {
		t.Fatalf("violin extremes: %+v", v)
	}
	if v.Med != 50 || v.Q1 != 25 || v.Q3 != 75 {
		t.Fatalf("violin quartiles: %+v", v)
	}
	if v.P5 != 5 || v.P95 != 95 {
		t.Fatalf("violin percentiles: %+v", v)
	}
	if v.Mean != 50 {
		t.Fatalf("violin mean: %v", v.Mean)
	}
}

func TestViolinEmpty(t *testing.T) {
	v := Violin(nil)
	if v.N != 0 || !math.IsNaN(v.Med) {
		t.Fatalf("empty violin: %+v", v)
	}
}
