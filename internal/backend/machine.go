package backend

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Study period covered by the reproduction, matching the paper's "two
// year period up to April 2021".
var (
	StudyStart = time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)
	StudyEnd   = time.Date(2021, 4, 30, 0, 0, 0, 0, time.UTC)
)

// Machine is one quantum backend in the fleet: its coupling map, access
// class, calibration model, and execution-cost parameters.
type Machine struct {
	// Name is the IBM-style backend name, e.g. "ibmq_manhattan".
	Name string
	// Topo is the coupling map.
	Topo *Topology
	// Public marks freely accessible machines (vs privileged/paid).
	Public bool
	// Simulator marks the qasm-simulator pseudo-backend.
	Simulator bool
	// Tier is the hardware quality generation (0 best).
	Tier int
	// Calib parameterizes the calibration generator.
	Calib CalibModel
	// Seed drives all machine-specific randomness deterministically.
	Seed int64
	// Online/Retired bound the machine's availability inside the study
	// window. A zero Retired means the machine stays online.
	Online, Retired time.Time
	// Popularity weights user machine-selection demand; public machines
	// carry most of the load (Fig 9).
	Popularity float64
	// JobOverheadSec is the fixed per-job execution overhead (loading,
	// initialization); grows with machine size.
	JobOverheadSec float64
	// CircuitOverheadSec is the per-circuit overhead within a job.
	CircuitOverheadSec float64
	// ShotMicros is the per-shot cost in microseconds (reset + execute
	// + readout), the dominant term at high shot counts.
	ShotMicros float64

	calMu    sync.Mutex
	calCache map[int]*Calibration
}

// NumQubits returns the machine size.
func (m *Machine) NumQubits() int { return m.Topo.N }

// AvailableAt reports whether the machine is online at time t.
func (m *Machine) AvailableAt(t time.Time) bool {
	if t.Before(m.Online) {
		return false
	}
	return m.Retired.IsZero() || t.Before(m.Retired)
}

// calibrationHour is when the daily recalibration lands ("usually
// calibrated once a day, likely around 12:00am - 2:00am").
const calibrationHour = 1

// CalibrationEpochAt returns the calibration cycle index covering time
// t: epochs advance at 01:00 UTC daily.
func (m *Machine) CalibrationEpochAt(t time.Time) int {
	shifted := t.Add(-calibrationHour * time.Hour)
	return int(shifted.Sub(StudyStart.Add(-24*time.Hour)) / (24 * time.Hour))
}

// CalibrationAt returns the calibration snapshot in effect at time t.
// Snapshots are deterministic in (machine seed, epoch) and memoized.
func (m *Machine) CalibrationAt(t time.Time) *Calibration {
	epoch := m.CalibrationEpochAt(t)
	m.calMu.Lock()
	defer m.calMu.Unlock()
	if m.calCache == nil {
		m.calCache = make(map[int]*Calibration)
	}
	if c, ok := m.calCache[epoch]; ok {
		return c
	}
	calTime := StudyStart.Add(-24 * time.Hour).Add(time.Duration(epoch) * 24 * time.Hour).Add(calibrationHour * time.Hour)
	c := GenCalibration(m.Topo, m.Calib, m.Seed, epoch, calTime)
	m.calCache[epoch] = c
	return c
}

// ExecSeconds returns the modeled wall-clock seconds to execute a job
// of batchSize circuits at the given shots on this machine. The model
// matches the paper's finding (§VI) that overheads dominate: runtime is
// proportional to batch size, sub-linearly affected by shots, and only
// weakly by circuit structure (depth adds nanoseconds per shot).
func (m *Machine) ExecSeconds(batchSize, shots, totalDepth int) float64 {
	if batchSize <= 0 {
		return 0
	}
	perShot := m.ShotMicros*1e-6 + float64(totalDepth)/float64(batchSize)*0.4e-6
	perCircuit := m.CircuitOverheadSec + float64(shots)*perShot
	return m.JobOverheadSec + float64(batchSize)*perCircuit
}

func date(y int, mo time.Month, d int) time.Time {
	return time.Date(y, mo, d, 0, 0, 0, 0, time.UTC)
}

// newMachine fills in the derived execution-cost parameters. Per-shot
// cost falls with hardware generation (faster reset/readout on newer
// devices) and grows mildly with machine size; job overhead grows with
// size (loading and initialization).
func newMachine(name string, topo *Topology, public bool, tier int, online time.Time, retired time.Time, popularity float64, seed int64) *Machine {
	n := topo.N
	shotBase := [3]float64{250, 450, 650}[minInt(tier, 2)]
	return &Machine{
		Name: name, Topo: topo, Public: public, Tier: tier,
		Calib: DefaultCalibModel(tier), Seed: seed,
		Online: online, Retired: retired, Popularity: popularity,
		JobOverheadSec:     20 + 0.4*float64(n),
		CircuitOverheadSec: 0.02 + 0.002*float64(n),
		ShotMicros:         shotBase + 4*float64(n),
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Fleet returns the full machine registry of the study: the 25+ IBM
// devices of Figs 6, 9, 10, 13 plus the qasm simulator. Machines carry
// approximate real-world online/retirement dates so the two-year trace
// sees the fleet evolve (tokyo retiring, manhattan arriving, ...).
func Fleet() []*Machine {
	ms := []*Machine{
		newMachine("ibmqx4", Bowtie5(), true, 2, date(2017, 9, 1), date(2019, 6, 1), 2.0, 101),
		newMachine("ibmqx2", Bowtie5(), true, 2, date(2017, 1, 1), time.Time{}, 3.0, 102),
		newMachine("ibmq_16_melbourne", Melbourne15(), true, 2, date(2018, 9, 1), time.Time{}, 4.0, 103),
		newMachine("ibmq_20_tokyo", Tokyo20(), false, 1, date(2018, 9, 1), date(2019, 9, 1), 0.6, 104),
		newMachine("ibmq_poughkeepsie", Penguin20(), false, 1, date(2019, 2, 1), date(2020, 4, 1), 0.5, 105),
		newMachine("ibmq_johannesburg", Penguin20(), false, 1, date(2019, 5, 1), date(2020, 9, 1), 0.6, 106),
		newMachine("ibmq_boeblingen", Penguin20(), false, 1, date(2019, 7, 1), date(2021, 1, 1), 0.6, 107),
		newMachine("ibmq_ourense", TShape5(), false, 1, date(2019, 7, 1), date(2021, 1, 15), 0.9, 108),
		newMachine("ibmq_vigo", TShape5(), false, 1, date(2019, 7, 1), date(2021, 1, 15), 0.9, 109),
		newMachine("ibmq_valencia", TShape5(), false, 1, date(2019, 7, 15), date(2021, 1, 15), 0.8, 110),
		newMachine("ibmq_london", TShape5(), false, 1, date(2019, 9, 1), date(2021, 1, 15), 0.7, 111),
		newMachine("ibmq_burlington", TShape5(), false, 1, date(2019, 9, 1), date(2021, 1, 15), 0.7, 112),
		newMachine("ibmq_essex", TShape5(), false, 1, date(2019, 9, 1), date(2021, 1, 15), 0.7, 113),
		newMachine("ibmq_armonk", MustTopology(1, nil), true, 1, date(2019, 10, 1), time.Time{}, 1.2, 114),
		newMachine("ibmq_rochester", HeavyHexLike(53), false, 1, date(2019, 11, 1), date(2021, 1, 1), 0.5, 115),
		newMachine("ibmq_paris", Falcon27(), false, 0, date(2020, 4, 1), time.Time{}, 1.0, 116),
		newMachine("ibmq_rome", Line(5), false, 0, date(2020, 4, 15), time.Time{}, 1.0, 117),
		newMachine("ibmq_athens", Line(5), true, 0, date(2020, 5, 1), time.Time{}, 6.0, 118),
		newMachine("ibmq_toronto", Falcon27(), false, 0, date(2020, 7, 1), time.Time{}, 1.2, 119),
		newMachine("ibmq_bogota", Line(5), false, 0, date(2020, 8, 1), time.Time{}, 1.0, 120),
		newMachine("ibmq_santiago", Line(5), true, 0, date(2020, 9, 1), time.Time{}, 4.5, 121),
		newMachine("ibmq_casablanca", HShape7(), false, 0, date(2020, 10, 1), time.Time{}, 1.1, 122),
		newMachine("ibmq_manhattan", HeavyHexLike(65), false, 0, date(2020, 11, 1), time.Time{}, 1.3, 123),
		newMachine("ibmq_guadalupe", Guadalupe16(), false, 0, date(2021, 1, 15), time.Time{}, 0.9, 124),
		newMachine("ibmq_belem", TShape5(), true, 0, date(2021, 1, 15), time.Time{}, 3.5, 125),
		newMachine("ibmq_lima", TShape5(), true, 0, date(2021, 2, 1), time.Time{}, 3.0, 126),
		newMachine("ibmq_quito", TShape5(), true, 0, date(2021, 3, 1), time.Time{}, 2.5, 127),
	}
	sim := newMachine("ibmq_qasm_simulator", FullyConnected(32), true, 0, date(2017, 1, 1), time.Time{}, 2.0, 128)
	sim.Simulator = true
	// The simulator executes far faster than hardware and never queues
	// long; shrink its cost parameters accordingly.
	sim.JobOverheadSec = 3
	sim.CircuitOverheadSec = 0.01
	sim.ShotMicros = 5
	ms = append(ms, sim)
	return ms
}

// Fake1000 returns the illustrative 1000-qubit machine the paper
// compiles a 980q QFT against in Fig 5.
func Fake1000() *Machine {
	m := newMachine("fake_1000q", HeavyHexLike(1000), false, 0, date(2021, 1, 1), time.Time{}, 0, 999)
	return m
}

// CustomMachine wraps an arbitrary topology as a machine, for benchmark
// and what-if studies at sizes the fleet does not cover.
func CustomMachine(name string, topo *Topology, tier int) *Machine {
	return newMachine(name, topo, false, tier, date(2021, 1, 1), time.Time{}, 1, int64(topo.N)*101+7)
}

// FleetByName returns the fleet indexed by machine name.
func FleetByName() map[string]*Machine {
	out := make(map[string]*Machine)
	for _, m := range Fleet() {
		out[m.Name] = m
	}
	return out
}

// FindMachine returns the named machine from ms or an error listing
// what exists.
func FindMachine(ms []*Machine, name string) (*Machine, error) {
	for _, m := range ms {
		if m.Name == name {
			return m, nil
		}
	}
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = m.Name
	}
	sort.Strings(names)
	return nil, fmt.Errorf("backend: unknown machine %q (have %v)", name, names)
}
