package backend

import "sort"

// Coupling-map constructors. Small devices use their published edge
// lists; large devices use a heavy-hex-like generator that reproduces
// the sparse, low-bisection-bandwidth structure Fig 6 reports.

// Line returns an n-qubit linear chain (athens, santiago, bogota, rome).
func Line(n int) *Topology {
	edges := make([][2]int, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	return MustTopology(n, edges)
}

// Ring returns an n-qubit cycle.
func Ring(n int) *Topology {
	edges := make([][2]int, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, (i + 1) % n})
	}
	return MustTopology(n, edges)
}

// Grid returns a rows x cols mesh; qubit r*cols+c.
func Grid(rows, cols int) *Topology {
	var edges [][2]int
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, [2]int{id(r, c), id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, [2]int{id(r, c), id(r+1, c)})
			}
		}
	}
	return MustTopology(rows*cols, edges)
}

// FullyConnected returns the complete graph on n qubits; used for the
// ibmq_qasm_simulator pseudo-backend, which has no routing constraints.
func FullyConnected(n int) *Topology {
	var edges [][2]int
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			edges = append(edges, [2]int{a, b})
		}
	}
	return MustTopology(n, edges)
}

// TShape5 returns the 5-qubit "T" map used by vigo, ourense, valencia,
// london, burlington, essex, belem, lima and quito:
//
//	0 - 1 - 2
//	    |
//	    3
//	    |
//	    4
func TShape5() *Topology {
	return MustTopology(5, [][2]int{{0, 1}, {1, 2}, {1, 3}, {3, 4}})
}

// Bowtie5 returns the ibmqx2/ibmqx4 5-qubit bowtie map.
func Bowtie5() *Topology {
	return MustTopology(5, [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 4}})
}

// HShape7 returns the 7-qubit heavy-hex "H" fragment used by casablanca
// (and jakarta, lagos):
//
//	0 - 1 - 2
//	    |
//	    3
//	    |
//	4 - 5 - 6
func HShape7() *Topology {
	return MustTopology(7, [][2]int{{0, 1}, {1, 2}, {1, 3}, {3, 5}, {4, 5}, {5, 6}})
}

// Melbourne15 returns the 15-qubit ladder map of ibmq_16_melbourne.
func Melbourne15() *Topology {
	return MustTopology(15, [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6},
		{7, 8}, {8, 9}, {9, 10}, {10, 11}, {11, 12}, {12, 13}, {13, 14},
		{0, 14}, {1, 13}, {2, 12}, {3, 11}, {4, 10}, {5, 9}, {6, 8},
	})
}

// Guadalupe16 returns the 16-qubit heavy-hex fragment of ibmq_guadalupe.
func Guadalupe16() *Topology {
	return MustTopology(16, [][2]int{
		{0, 1}, {1, 2}, {1, 4}, {2, 3}, {3, 5}, {4, 7}, {5, 8},
		{6, 7}, {7, 10}, {8, 9}, {8, 11}, {10, 12}, {11, 14},
		{12, 13}, {12, 15}, {13, 14},
	})
}

// Falcon27 returns the 27-qubit heavy-hex map shared by toronto, paris,
// and the other Falcon-generation devices.
func Falcon27() *Topology {
	return MustTopology(27, [][2]int{
		{0, 1}, {1, 2}, {1, 4}, {2, 3}, {3, 5}, {4, 7}, {5, 8},
		{6, 7}, {7, 10}, {8, 9}, {8, 11}, {10, 12}, {11, 14},
		{12, 13}, {12, 15}, {13, 14}, {14, 16}, {15, 18}, {16, 19},
		{17, 18}, {18, 21}, {19, 20}, {19, 22}, {21, 23}, {22, 25},
		{23, 24}, {24, 25}, {25, 26},
	})
}

// Tokyo20 returns the 20-qubit ibmq_20_tokyo map: a 4x5 grid with
// diagonal couplers, the densest topology in the fleet.
func Tokyo20() *Topology {
	edges := [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4},
		{5, 6}, {6, 7}, {7, 8}, {8, 9},
		{10, 11}, {11, 12}, {12, 13}, {13, 14},
		{15, 16}, {16, 17}, {17, 18}, {18, 19},
		{0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9},
		{5, 10}, {6, 11}, {7, 12}, {8, 13}, {9, 14},
		{10, 15}, {11, 16}, {12, 17}, {13, 18}, {14, 19},
		{1, 7}, {2, 6}, {3, 9}, {4, 8},
		{5, 11}, {6, 10}, {7, 13}, {8, 12},
		{11, 17}, {12, 16}, {13, 19}, {14, 18},
	}
	return MustTopology(20, edges)
}

// Penguin20 returns the sparser 20-qubit map used by johannesburg,
// boeblingen and poughkeepsie: a 4x5 grid with only the outer-column
// verticals.
func Penguin20() *Topology {
	edges := [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4},
		{5, 6}, {6, 7}, {7, 8}, {8, 9},
		{10, 11}, {11, 12}, {12, 13}, {13, 14},
		{15, 16}, {16, 17}, {17, 18}, {18, 19},
		{0, 5}, {4, 9}, {5, 10}, {7, 12}, {9, 14}, {10, 15}, {14, 19}, {2, 7}, {12, 17},
	}
	return MustTopology(20, edges)
}

// HeavyHexLike generates a heavy-hex-style topology with exactly n
// qubits: rows of horizontal chains of length chainLen connected by
// rung qubits every fourth column, alternating offset per row pair.
// After generation the qubit set is trimmed from the end (preserving
// connectivity, since trailing qubits are chain/rung tails) to hit n
// exactly. Used for rochester (53q), manhattan (65q), and the fake
// 1000-qubit machine of Fig 5.
func HeavyHexLike(n int) *Topology {
	if n < 2 {
		return MustTopology(n, nil)
	}
	// Pick chain length ~ sqrt(3n) to keep the lattice roughly square.
	chainLen := 4
	for chainLen*chainLen < 3*n {
		chainLen++
	}
	var edges [][2]int
	var rows [][]int
	next := 0
	newRow := func() []int {
		row := make([]int, chainLen)
		for i := range row {
			row[i] = next
			next++
		}
		for i := 0; i+1 < chainLen; i++ {
			edges = append(edges, [2]int{row[i], row[i+1]})
		}
		return row
	}
	rows = append(rows, newRow())
	for rowIdx := 0; next < n+chainLen; rowIdx++ {
		prev := rows[len(rows)-1]
		row := newRow()
		rows = append(rows, row)
		offset := (rowIdx % 2) * 2
		for c := offset; c < chainLen; c += 4 {
			// Rung qubit between prev[c] and row[c].
			rung := next
			next++
			edges = append(edges, [2]int{prev[c], rung}, [2]int{rung, row[c]})
		}
	}
	// Trim to exactly n qubits: drop any edge touching a removed qubit.
	var kept [][2]int
	for _, e := range edges {
		if e[0] < n && e[1] < n {
			kept = append(kept, e)
		}
	}
	// Trimming can strand trailing fragments; stitch each disconnected
	// component to its predecessor qubit until the graph is connected.
	for {
		t := MustTopology(n, kept)
		if t.IsConnected() {
			return t
		}
		comp := components(t)
		for _, c := range comp[1:] {
			kept = append(kept, [2]int{c[0] - 1, c[0]})
		}
	}
}

// components returns the connected components of t, each sorted, ordered
// by smallest member.
func components(t *Topology) [][]int {
	seen := make([]bool, t.N)
	var comps [][]int
	for s := 0; s < t.N; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			q := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, q)
			for _, nb := range t.Neighbors(q) {
				if !seen[nb] {
					seen[nb] = true
					stack = append(stack, nb)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}
