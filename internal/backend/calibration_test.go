package backend

import (
	"math"
	"testing"
	"time"

	"qcloud/internal/stats"
)

func TestGenCalibrationDeterministic(t *testing.T) {
	topo := Falcon27()
	model := DefaultCalibModel(0)
	// Fixed timestamps keep the test input reproducible: a failure
	// replays bit-for-bit, and the wallclock analyzer's test-package
	// exemption list stays empty.
	ts := time.Date(2021, 4, 1, 9, 30, 0, 0, time.UTC)
	a := GenCalibration(topo, model, 42, 100, ts)
	b := GenCalibration(topo, model, 42, 100, ts.Add(37*time.Minute))
	for q := range a.T1 {
		if a.T1[q] != b.T1[q] || a.ErrRO[q] != b.ErrRO[q] {
			t.Fatal("same (seed, epoch) must reproduce calibration")
		}
	}
	c := GenCalibration(topo, model, 42, 101, ts)
	same := true
	for q := range a.T1 {
		if a.T1[q] != c.T1[q] {
			same = false
		}
	}
	if same {
		t.Fatal("different epochs should differ")
	}
}

// TestCalibrationVariationSpatial checks the paper's §IV-B targets:
// CoV of 30-40% for T1/T2 and around 75% for two-qubit error rates.
func TestCalibrationVariationSpatial(t *testing.T) {
	topo := HeavyHexLike(65)
	model := DefaultCalibModel(0)
	var t1CoVs, cxCoVs []float64
	for epoch := 0; epoch < 60; epoch++ {
		cal := GenCalibration(topo, model, 7, epoch, time.Time{})
		t1CoVs = append(t1CoVs, stats.CoV(cal.T1))
		cxErrs := make([]float64, 0, len(cal.ErrCX))
		for _, e := range cal.ErrCX {
			cxErrs = append(cxErrs, e)
		}
		cxCoVs = append(cxCoVs, stats.CoV(cxErrs))
	}
	t1 := stats.Mean(t1CoVs)
	cx := stats.Mean(cxCoVs)
	if t1 < 0.25 || t1 > 0.55 {
		t.Fatalf("T1 CoV = %.2f, want ~0.30-0.40", t1)
	}
	if cx < 0.55 || cx > 1.0 {
		t.Fatalf("CX-error CoV = %.2f, want ~0.75", cx)
	}
}

// TestCalibrationVariationTemporal checks the ">2x variation in error
// rates in terms of day-to-day averages" claim drives our model.
func TestCalibrationVariationTemporal(t *testing.T) {
	topo := Falcon27()
	model := DefaultCalibModel(0)
	var dayMeans []float64
	for epoch := 0; epoch < 120; epoch++ {
		cal := GenCalibration(topo, model, 11, epoch, time.Time{})
		dayMeans = append(dayMeans, cal.MeanCXError())
	}
	ratio := stats.Max(dayMeans) / stats.Min(dayMeans)
	if ratio < 2 {
		t.Fatalf("day-to-day max/min CX error ratio = %.2f, want > 2", ratio)
	}
}

func TestCXErrorLookup(t *testing.T) {
	cal := GenCalibration(Line(3), DefaultCalibModel(0), 1, 0, time.Time{})
	if cal.CXError(1, 0, 9) == 9 {
		t.Fatal("coupled pair should have calibrated error either order")
	}
	if cal.CXError(0, 2, 9) != 9 {
		t.Fatal("uncoupled pair should return default")
	}
}

func TestMeanCXErrorEmpty(t *testing.T) {
	cal := GenCalibration(MustTopology(1, nil), DefaultCalibModel(0), 1, 0, time.Time{})
	if cal.MeanCXError() != 0 {
		t.Fatal("no couplers should mean 0")
	}
}

func TestT2AtMostTwiceT1(t *testing.T) {
	cal := GenCalibration(HeavyHexLike(65), DefaultCalibModel(1), 3, 17, time.Time{})
	for q := range cal.T1 {
		if cal.T2[q] > 2*cal.T1[q]+1e-9 {
			t.Fatalf("qubit %d: T2=%v > 2*T1=%v", q, cal.T2[q], 2*cal.T1[q])
		}
	}
}

func TestClampProb(t *testing.T) {
	if clampProb(-1) != 1e-6 || clampProb(0.9) != 0.5 || clampProb(0.01) != 0.01 {
		t.Fatal("clampProb wrong")
	}
}

func TestDriftedCXError(t *testing.T) {
	cal := GenCalibration(Line(5), DefaultCalibModel(0), 5, 3, time.Time{})
	base := cal.CXError(0, 1, 0)
	// Drift at zero hours equals the calibrated value.
	if got := DriftedCXError(cal, 0, 1, 0, 0); math.Abs(got-base) > 1e-12 {
		t.Fatalf("zero-hour drift changed error: %v vs %v", got, base)
	}
	// Drift stays within physical bounds over a long stale window.
	for h := 0.0; h < 72; h += 1.5 {
		e := DriftedCXError(cal, 0, 1, h, 0)
		if e <= 0 || e > 0.5 {
			t.Fatalf("drifted error out of range at h=%v: %v", h, e)
		}
	}
	// Order of qubits must not matter.
	if DriftedCXError(cal, 1, 0, 10, 0) != DriftedCXError(cal, 0, 1, 10, 0) {
		t.Fatal("drift should be symmetric in qubit order")
	}
}

func TestDefaultCalibModelTiers(t *testing.T) {
	if DefaultCalibModel(0).BaseCXErr >= DefaultCalibModel(2).BaseCXErr {
		t.Fatal("tier 0 should be better than tier 2")
	}
}
