package backend

import (
	"testing"
	"time"
)

func TestFleetComposition(t *testing.T) {
	fleet := Fleet()
	if len(fleet) < 25 {
		t.Fatalf("fleet size = %d, want >= 25 (paper: '25 different quantum machines')", len(fleet))
	}
	byName := FleetByName()
	// Spot-check the sizes the paper states.
	checks := map[string]int{
		"ibmq_armonk":       1,
		"ibmq_athens":       5,
		"ibmq_casablanca":   7,
		"ibmq_16_melbourne": 15,
		"ibmq_guadalupe":    16,
		"ibmq_20_tokyo":     20,
		"ibmq_toronto":      27,
		"ibmq_rochester":    53,
		"ibmq_manhattan":    65,
	}
	for name, want := range checks {
		m, ok := byName[name]
		if !ok {
			t.Fatalf("missing machine %s", name)
		}
		if m.NumQubits() != want {
			t.Fatalf("%s qubits = %d, want %d", name, m.NumQubits(), want)
		}
	}
	for _, m := range fleet {
		if !m.Topo.IsConnected() {
			t.Fatalf("%s has disconnected topology", m.Name)
		}
		if m.Popularity <= 0 {
			t.Fatalf("%s popularity must be positive", m.Name)
		}
	}
}

func TestFleetQubitRangeMatchesPaper(t *testing.T) {
	// "Our study encompasses 25 different quantum machines with qubits
	// ranging from 1 to 65."
	min, max := 1<<30, 0
	for _, m := range Fleet() {
		if m.Simulator {
			continue
		}
		if n := m.NumQubits(); n < min {
			min = n
		} else if n > max {
			max = n
		}
		if n := m.NumQubits(); n > max {
			max = n
		}
	}
	if min != 1 || max != 65 {
		t.Fatalf("hardware qubit range = [%d,%d], want [1,65]", min, max)
	}
}

func TestAvailability(t *testing.T) {
	byName := FleetByName()
	tokyo := byName["ibmq_20_tokyo"]
	if tokyo.AvailableAt(date(2020, 6, 1)) {
		t.Fatal("tokyo retired in 2019")
	}
	if !tokyo.AvailableAt(date(2019, 3, 1)) {
		t.Fatal("tokyo online early 2019")
	}
	manhattan := byName["ibmq_manhattan"]
	if manhattan.AvailableAt(date(2019, 6, 1)) {
		t.Fatal("manhattan not online in 2019")
	}
	if !manhattan.AvailableAt(date(2021, 3, 1)) {
		t.Fatal("manhattan online in 2021")
	}
}

func TestCalibrationEpochAdvancesDaily(t *testing.T) {
	m := FleetByName()["ibmq_athens"]
	e1 := m.CalibrationEpochAt(date(2020, 6, 1).Add(2 * time.Hour))
	e2 := m.CalibrationEpochAt(date(2020, 6, 2).Add(2 * time.Hour))
	if e2 != e1+1 {
		t.Fatalf("epochs %d -> %d, want +1 per day", e1, e2)
	}
	// Before and after the 01:00 calibration boundary differ.
	before := m.CalibrationEpochAt(date(2020, 6, 2)) // 00:00
	after := m.CalibrationEpochAt(date(2020, 6, 2).Add(90 * time.Minute))
	if after != before+1 {
		t.Fatalf("boundary: %d -> %d, want +1 across 01:00", before, after)
	}
}

func TestCalibrationAtMemoized(t *testing.T) {
	m := FleetByName()["ibmq_rome"]
	at := date(2020, 7, 1).Add(10 * time.Hour)
	c1 := m.CalibrationAt(at)
	c2 := m.CalibrationAt(at.Add(time.Hour))
	if c1 != c2 {
		t.Fatal("same epoch should return the memoized snapshot")
	}
	c3 := m.CalibrationAt(at.Add(24 * time.Hour))
	if c1 == c3 {
		t.Fatal("next day should be a new calibration")
	}
}

func TestExecSecondsModel(t *testing.T) {
	m := FleetByName()["ibmq_manhattan"]
	small := m.ExecSeconds(1, 1024, 50)
	big := m.ExecSeconds(900, 1024, 50*900)
	if big <= small {
		t.Fatal("runtime must grow with batch size")
	}
	// Proportionality: doubling batch roughly doubles the variable part.
	b1 := m.ExecSeconds(100, 8192, 100*40) - m.JobOverheadSec
	b2 := m.ExecSeconds(200, 8192, 200*40) - m.JobOverheadSec
	if b2 < 1.8*b1 || b2 > 2.2*b1 {
		t.Fatalf("batch scaling not proportional: %v -> %v", b1, b2)
	}
	if m.ExecSeconds(0, 100, 0) != 0 {
		t.Fatal("zero batch should cost nothing")
	}
}

func TestExecSecondsLargerMachinesSlower(t *testing.T) {
	byName := FleetByName()
	vigo := byName["ibmq_vigo"].ExecSeconds(100, 4096, 100*20)
	manhattan := byName["ibmq_manhattan"].ExecSeconds(100, 4096, 100*20)
	if manhattan <= vigo {
		t.Fatal("Fig 13 shape: larger machines have higher run times")
	}
}

func TestFindMachine(t *testing.T) {
	fleet := Fleet()
	m, err := FindMachine(fleet, "ibmq_bogota")
	if err != nil || m.Name != "ibmq_bogota" {
		t.Fatalf("FindMachine failed: %v", err)
	}
	if _, err := FindMachine(fleet, "nope"); err == nil {
		t.Fatal("unknown machine should error")
	}
}

func TestFake1000(t *testing.T) {
	m := Fake1000()
	if m.NumQubits() != 1000 {
		t.Fatalf("fake machine qubits = %d", m.NumQubits())
	}
	if !m.Topo.IsConnected() {
		t.Fatal("fake 1000q should be connected")
	}
}

func TestSimulatorInFleet(t *testing.T) {
	sim := FleetByName()["ibmq_qasm_simulator"]
	if sim == nil || !sim.Simulator {
		t.Fatal("fleet must include the qasm simulator")
	}
	if sim.ShotMicros >= 100 {
		t.Fatal("simulator should be far cheaper per shot")
	}
}
