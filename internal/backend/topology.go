// Package backend models the quantum machines of the paper's fleet:
// coupling-map topologies, calibration data with spatial and temporal
// variation, and a registry of the 25+ IBM devices (plus the fake
// 1000-qubit target of Fig 5) the study spans.
package backend

import (
	"fmt"
	"math/rand"
	"sort"
)

// Topology is an undirected coupling map over N qubits. Edges are
// stored with A < B exactly once.
type Topology struct {
	N     int
	Edges [][2]int
	adj   [][]int
}

// NewTopology validates and builds a topology. Duplicate or reversed
// edges are collapsed; self-loops and out-of-range endpoints error.
func NewTopology(n int, edges [][2]int) (*Topology, error) {
	if n < 0 {
		return nil, fmt.Errorf("backend: negative qubit count %d", n)
	}
	seen := make(map[[2]int]bool, len(edges))
	t := &Topology{N: n, adj: make([][]int, n)}
	for _, e := range edges {
		a, b := e[0], e[1]
		if a > b {
			a, b = b, a
		}
		if a == b {
			return nil, fmt.Errorf("backend: self-loop on qubit %d", a)
		}
		if a < 0 || b >= n {
			return nil, fmt.Errorf("backend: edge (%d,%d) out of range [0,%d)", a, b, n)
		}
		key := [2]int{a, b}
		if seen[key] {
			continue
		}
		seen[key] = true
		t.Edges = append(t.Edges, key)
		t.adj[a] = append(t.adj[a], b)
		t.adj[b] = append(t.adj[b], a)
	}
	sort.Slice(t.Edges, func(i, j int) bool {
		if t.Edges[i][0] != t.Edges[j][0] {
			return t.Edges[i][0] < t.Edges[j][0]
		}
		return t.Edges[i][1] < t.Edges[j][1]
	})
	for q := range t.adj {
		sort.Ints(t.adj[q])
	}
	return t, nil
}

// MustTopology is NewTopology that panics on error; used for the
// hard-coded device maps, where an error is a programming mistake.
func MustTopology(n int, edges [][2]int) *Topology {
	t, err := NewTopology(n, edges)
	if err != nil {
		panic(err)
	}
	return t
}

// Neighbors returns the sorted adjacency of qubit q.
func (t *Topology) Neighbors(q int) []int { return t.adj[q] }

// Degree returns the degree of qubit q.
func (t *Topology) Degree(q int) int { return len(t.adj[q]) }

// HasEdge reports whether qubits a and b are coupled.
func (t *Topology) HasEdge(a, b int) bool {
	for _, n := range t.adj[a] {
		if n == b {
			return true
		}
	}
	return false
}

// IsConnected reports whether the coupling graph is connected
// (single-qubit machines are trivially connected).
func (t *Topology) IsConnected() bool {
	if t.N <= 1 {
		return true
	}
	seen := make([]bool, t.N)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, n := range t.adj[q] {
			if !seen[n] {
				seen[n] = true
				count++
				stack = append(stack, n)
			}
		}
	}
	return count == t.N
}

// Distances returns the all-pairs shortest-path matrix (hop counts) via
// BFS from every qubit. Unreachable pairs get -1.
func (t *Topology) Distances() [][]int {
	d := make([][]int, t.N)
	for s := 0; s < t.N; s++ {
		row := make([]int, t.N)
		for i := range row {
			row[i] = -1
		}
		row[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			q := queue[0]
			queue = queue[1:]
			for _, n := range t.adj[q] {
				if row[n] == -1 {
					row[n] = row[q] + 1
					queue = append(queue, n)
				}
			}
		}
		d[s] = row
	}
	return d
}

// cutSize counts edges crossing the bipartition given by inA.
func (t *Topology) cutSize(inA []bool) int {
	cut := 0
	for _, e := range t.Edges {
		if inA[e[0]] != inA[e[1]] {
			cut++
		}
	}
	return cut
}

// BisectionBandwidth returns the minimum number of coupler edges that
// must be cut to split the machine into two halves of floor(N/2) and
// ceil(N/2) qubits — the connectivity metric of the paper's Fig 6.
// Exact (exhaustive over balanced bipartitions) for N <= exactLimit;
// Kernighan-Lin with seeded random restarts up to a few hundred qubits;
// greedy region growth with boundary refinement beyond that.
func (t *Topology) BisectionBandwidth() int {
	const exactLimit = 20
	if t.N <= 1 {
		return 0
	}
	if t.N <= exactLimit {
		return t.exactBisection()
	}
	r := rand.New(rand.NewSource(int64(t.N)*2654435761 + 12345))
	if t.N <= 256 {
		return t.klBisection(r)
	}
	return t.growBisection(r)
}

func (t *Topology) exactBisection() int {
	half := t.N / 2
	inA := make([]bool, t.N)
	best := len(t.Edges) + 1
	// Fix qubit 0 in side A to halve the search space.
	var rec func(next, chosen int)
	rec = func(next, chosen int) {
		if chosen == half {
			if c := t.cutSize(inA); c < best {
				best = c
			}
			return
		}
		if t.N-next < half-chosen {
			return
		}
		inA[next] = true
		rec(next+1, chosen+1)
		inA[next] = false
		rec(next+1, chosen)
	}
	inA[0] = true
	rec(1, 1)
	return best
}

// klBisection runs classic Kernighan-Lin (tentative full passes with
// rollback to the best prefix) from multiple seeded random balanced
// partitions and returns the best cut found.
func (t *Topology) klBisection(r *rand.Rand) int {
	const restarts = 16
	best := len(t.Edges) + 1
	half := t.N / 2
	for rs := 0; rs < restarts; rs++ {
		perm := r.Perm(t.N)
		inA := make([]bool, t.N)
		for _, q := range perm[:half] {
			inA[q] = true
		}
		cut := t.cutSize(inA)
		for {
			gain := t.klPass(inA)
			if gain <= 0 {
				break
			}
			cut -= gain
		}
		if cut < best {
			best = cut
		}
	}
	return best
}

// klPass performs one Kernighan-Lin pass over the bipartition inA:
// it tentatively swaps the best remaining (a, b) pair (locking both)
// even when the step gain is negative, then rolls back to the prefix of
// swaps with the highest cumulative gain. It returns that gain and
// leaves inA updated accordingly.
func (t *Topology) klPass(inA []bool) int {
	n := t.N
	locked := make([]bool, n)
	type swapRec struct{ a, b int }
	var recs []swapRec
	cum, bestCum, bestK := 0, 0, 0
	steps := n / 2
	d := make([]int, n) // external - internal degree
	for step := 0; step < steps; step++ {
		for v := 0; v < n; v++ {
			if locked[v] {
				continue
			}
			d[v] = 0
			for _, nb := range t.adj[v] {
				if inA[v] != inA[nb] {
					d[v]++
				} else {
					d[v]--
				}
			}
		}
		bestGain := -1 << 30
		ba, bb := -1, -1
		for a := 0; a < n; a++ {
			if locked[a] || !inA[a] {
				continue
			}
			for b := 0; b < n; b++ {
				if locked[b] || inA[b] {
					continue
				}
				g := d[a] + d[b]
				if t.HasEdge(a, b) {
					g -= 2
				}
				if g > bestGain {
					bestGain, ba, bb = g, a, b
				}
			}
		}
		if ba == -1 {
			break
		}
		inA[ba], inA[bb] = false, true
		locked[ba], locked[bb] = true, true
		cum += bestGain
		recs = append(recs, swapRec{ba, bb})
		if cum > bestCum {
			bestCum, bestK = cum, len(recs)
		}
	}
	// Roll back the swaps beyond the best prefix.
	for i := len(recs) - 1; i >= bestK; i-- {
		inA[recs[i].a], inA[recs[i].b] = true, false
	}
	return bestCum
}

// growBisection approximates the bisection of large sparse graphs by
// greedy min-cut region growth from several deterministic seeds,
// followed by a boundary-swap hill climb.
func (t *Topology) growBisection(r *rand.Rand) int {
	half := t.N / 2
	best := len(t.Edges) + 1
	seeds := make([]int, 0, 24)
	for i := 0; i < 24; i++ {
		seeds = append(seeds, r.Intn(t.N))
	}
	for _, seed := range seeds {
		inA := make([]bool, t.N)
		inA[seed] = true
		for size := 1; size < half; size++ {
			bestV, bestDelta := -1, 1<<30
			for v := 0; v < t.N; v++ {
				if inA[v] {
					continue
				}
				eA := 0
				for _, nb := range t.adj[v] {
					if inA[nb] {
						eA++
					}
				}
				delta := len(t.adj[v]) - 2*eA
				// Prefer vertices attached to the region to keep growth
				// contiguous.
				if eA == 0 {
					delta += 1 << 10
				}
				if delta < bestDelta {
					bestDelta, bestV = delta, v
				}
			}
			inA[bestV] = true
		}
		// A few KL passes refine the grown region cheaply.
		cut := t.cutSize(inA)
		for pass := 0; pass < 3; pass++ {
			gain := t.klPass(inA)
			if gain <= 0 {
				break
			}
			cut -= gain
		}
		if cut < best {
			best = cut
		}
	}
	return best
}
