package backend

import (
	"testing"
	"testing/quick"
)

func TestNewTopologyValidation(t *testing.T) {
	if _, err := NewTopology(-1, nil); err == nil {
		t.Fatal("negative size should fail")
	}
	if _, err := NewTopology(3, [][2]int{{0, 0}}); err == nil {
		t.Fatal("self-loop should fail")
	}
	if _, err := NewTopology(3, [][2]int{{0, 3}}); err == nil {
		t.Fatal("out-of-range should fail")
	}
	// Duplicate and reversed edges collapse.
	tp, err := NewTopology(3, [][2]int{{0, 1}, {1, 0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tp.Edges) != 1 {
		t.Fatalf("edges = %v, want single edge", tp.Edges)
	}
}

func TestNeighborsAndDegree(t *testing.T) {
	tp := TShape5()
	if got := tp.Neighbors(1); len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("Neighbors(1) = %v", got)
	}
	if tp.Degree(4) != 1 {
		t.Fatalf("Degree(4) = %d", tp.Degree(4))
	}
	if !tp.HasEdge(1, 3) || tp.HasEdge(0, 4) {
		t.Fatal("HasEdge wrong")
	}
}

func TestConnectivity(t *testing.T) {
	for name, tp := range map[string]*Topology{
		"line":      Line(10),
		"ring":      Ring(8),
		"grid":      Grid(3, 4),
		"tshape":    TShape5(),
		"bowtie":    Bowtie5(),
		"hshape":    HShape7(),
		"melbourne": Melbourne15(),
		"guadalupe": Guadalupe16(),
		"falcon":    Falcon27(),
		"tokyo":     Tokyo20(),
		"penguin":   Penguin20(),
		"full":      FullyConnected(6),
	} {
		if !tp.IsConnected() {
			t.Fatalf("%s topology is disconnected", name)
		}
	}
	disc := MustTopology(4, [][2]int{{0, 1}, {2, 3}})
	if disc.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
	if !MustTopology(1, nil).IsConnected() {
		t.Fatal("single qubit should be connected")
	}
}

func TestDistances(t *testing.T) {
	tp := Line(5)
	d := tp.Distances()
	if d[0][4] != 4 || d[2][2] != 0 || d[1][3] != 2 {
		t.Fatalf("line distances wrong: %v", d)
	}
	disc := MustTopology(3, [][2]int{{0, 1}})
	if disc.Distances()[0][2] != -1 {
		t.Fatal("unreachable pair should be -1")
	}
}

func TestBisectionLine(t *testing.T) {
	// Cutting a line in half severs exactly one edge.
	if got := Line(10).BisectionBandwidth(); got != 1 {
		t.Fatalf("line bisection = %d, want 1", got)
	}
}

func TestBisectionRing(t *testing.T) {
	if got := Ring(10).BisectionBandwidth(); got != 2 {
		t.Fatalf("ring bisection = %d, want 2", got)
	}
}

func TestBisectionGridMatchesPaperExample(t *testing.T) {
	// The paper: "a 64-node classical system employing a standard mesh
	// topology would have a bisection bandwidth of 8".
	if got := Grid(8, 8).BisectionBandwidth(); got != 8 {
		t.Fatalf("8x8 mesh bisection = %d, want 8", got)
	}
}

func TestBisectionManhattanLow(t *testing.T) {
	// The paper reports bisection bandwidth 3 for the 65q Manhattan.
	// Our heavy-hex-like 65q generator should land in the same low
	// range (small relative to the mesh's 8).
	got := HeavyHexLike(65).BisectionBandwidth()
	if got < 1 || got > 5 {
		t.Fatalf("heavy-hex 65q bisection = %d, want 1..5", got)
	}
}

func TestBisectionExactSmall(t *testing.T) {
	// K4: balanced split cuts exactly 4 edges.
	if got := FullyConnected(4).BisectionBandwidth(); got != 4 {
		t.Fatalf("K4 bisection = %d, want 4", got)
	}
	if got := MustTopology(1, nil).BisectionBandwidth(); got != 0 {
		t.Fatalf("singleton bisection = %d, want 0", got)
	}
}

func TestHeavyHexLikeSizes(t *testing.T) {
	for _, n := range []int{2, 16, 27, 53, 65, 128, 1000} {
		tp := HeavyHexLike(n)
		if tp.N != n {
			t.Fatalf("HeavyHexLike(%d).N = %d", n, tp.N)
		}
		if !tp.IsConnected() {
			t.Fatalf("HeavyHexLike(%d) disconnected", n)
		}
		// Heavy-hex sparsity: average degree stays below 3.
		if n >= 16 && 2*len(tp.Edges) > 3*n {
			t.Fatalf("HeavyHexLike(%d) too dense: %d edges", n, len(tp.Edges))
		}
	}
}

func TestHeavyHexConnectedProperty(t *testing.T) {
	f := func(raw uint16) bool {
		n := int(raw%500) + 2
		tp := HeavyHexLike(n)
		return tp.N == n && tp.IsConnected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestComponents(t *testing.T) {
	tp := MustTopology(5, [][2]int{{0, 1}, {3, 4}})
	comps := components(tp)
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
}
