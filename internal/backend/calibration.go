package backend

import (
	"math"
	"math/rand"
	"time"
)

// Calibration is one calibrated snapshot of a machine's error
// characteristics: per-qubit coherence and readout, per-edge two-qubit
// error. The paper's §IV-B cites coefficients of variation of 30-40%
// for T1/T2 and ~75% for two-qubit error across a machine, with >2x
// day-to-day drift; the generator below is tuned to those targets.
type Calibration struct {
	// Epoch is the calibration cycle index (days since the machine's
	// first calibration).
	Epoch int
	// Time is when this calibration was performed.
	Time time.Time
	// T1 and T2 are per-qubit coherence times in microseconds.
	T1, T2 []float64
	// Err1Q is the per-qubit single-qubit gate error probability.
	Err1Q []float64
	// ErrRO is the per-qubit readout error probability.
	ErrRO []float64
	// ErrCX maps coupler edges (a<b) to two-qubit error probability.
	ErrCX map[[2]int]float64
}

// CXError returns the calibrated two-qubit error for the coupler (a,b)
// in either order, or def if the pair is not coupled.
func (c *Calibration) CXError(a, b int, def float64) float64 {
	if a > b {
		a, b = b, a
	}
	if e, ok := c.ErrCX[[2]int{a, b}]; ok {
		return e
	}
	return def
}

// MeanCXError returns the average two-qubit error across all couplers
// (0 when the machine has none).
func (c *Calibration) MeanCXError() float64 {
	if len(c.ErrCX) == 0 {
		return 0
	}
	s := 0.0
	for _, e := range c.ErrCX {
		s += e
	}
	return s / float64(len(c.ErrCX))
}

// CalibModel holds the machine-level parameters the calibration
// generator draws from.
type CalibModel struct {
	// BaseT1Us / BaseT2Us are the machine-median coherence times (µs).
	BaseT1Us, BaseT2Us float64
	// Base1QErr / BaseCXErr / BaseROErr are machine-median error rates.
	Base1QErr, BaseCXErr, BaseROErr float64
	// SpatialSigma* are the log-space sigmas for per-qubit/per-edge
	// spread (CoV ≈ sqrt(exp(σ²)-1): σ=0.38 → ~40%, σ=0.65 → ~73%).
	SpatialSigmaT, SpatialSigmaCX float64
	// DailySigma is the log-space sigma of the day-to-day multiplier
	// applied to the whole machine.
	DailySigma float64
}

// DefaultCalibModel returns the calibration model for a device of the
// given quality tier, where tier 0 is the best (newest) hardware and
// tier 2 the noisiest.
func DefaultCalibModel(tier int) CalibModel {
	m := CalibModel{
		BaseT1Us: 90, BaseT2Us: 75,
		Base1QErr: 4e-4, BaseCXErr: 1.1e-2, BaseROErr: 2.2e-2,
		SpatialSigmaT: 0.38, SpatialSigmaCX: 0.65,
		DailySigma: 0.30,
	}
	switch {
	case tier <= 0:
	case tier == 1:
		m.BaseT1Us, m.BaseT2Us = 65, 55
		m.Base1QErr, m.BaseCXErr, m.BaseROErr = 8e-4, 1.6e-2, 3.5e-2
	default:
		m.BaseT1Us, m.BaseT2Us = 45, 35
		m.Base1QErr, m.BaseCXErr, m.BaseROErr = 1.6e-3, 2.6e-2, 6e-2
	}
	return m
}

// GenCalibration produces the deterministic calibration snapshot for
// the given machine seed and epoch (calibration day). The same
// (seed, epoch) always yields the same snapshot, which is what lets the
// cloud simulator and the compiler agree on "the machine state at
// time t".
func GenCalibration(t *Topology, model CalibModel, seed int64, epoch int, at time.Time) *Calibration {
	r := rand.New(rand.NewSource(seed*1_000_003 + int64(epoch)))
	c := &Calibration{
		Epoch: epoch,
		Time:  at,
		T1:    make([]float64, t.N),
		T2:    make([]float64, t.N),
		Err1Q: make([]float64, t.N),
		ErrRO: make([]float64, t.N),
		ErrCX: make(map[[2]int]float64, len(t.Edges)),
	}
	// Day-to-day machine-wide multiplier (the ">2x day-to-day variation"
	// in error averages the paper cites).
	dayErrMult := math.Exp(r.NormFloat64() * model.DailySigma)
	dayCohMult := math.Exp(r.NormFloat64() * model.DailySigma * 0.5)
	for q := 0; q < t.N; q++ {
		c.T1[q] = model.BaseT1Us * dayCohMult * math.Exp(r.NormFloat64()*model.SpatialSigmaT)
		// T2 <= 2*T1 physically; clamp after sampling.
		c.T2[q] = math.Min(
			model.BaseT2Us*dayCohMult*math.Exp(r.NormFloat64()*model.SpatialSigmaT),
			2*c.T1[q])
		c.Err1Q[q] = clampProb(model.Base1QErr * dayErrMult * math.Exp(r.NormFloat64()*model.SpatialSigmaCX*0.6))
		c.ErrRO[q] = clampProb(model.BaseROErr * dayErrMult * math.Exp(r.NormFloat64()*model.SpatialSigmaCX*0.5))
	}
	for _, e := range t.Edges {
		c.ErrCX[e] = clampProb(model.BaseCXErr * dayErrMult * math.Exp(r.NormFloat64()*model.SpatialSigmaCX))
	}
	return c
}

// clampProb keeps a sampled error rate inside (1e-6, 0.5).
func clampProb(p float64) float64 {
	if p < 1e-6 {
		return 1e-6
	}
	if p > 0.5 {
		return 0.5
	}
	return p
}

// DriftedCXError applies intra-epoch drift to a calibrated edge error:
// error grows (or shrinks) smoothly with hours since calibration, with
// a deterministic per-edge phase. This models the staleness effect
// behind the paper's calibration-crossover discussion (Fig 12).
func DriftedCXError(cal *Calibration, a, b int, hoursSince float64, def float64) float64 {
	base := cal.CXError(a, b, def)
	if a > b {
		a, b = b, a
	}
	phase := float64((a*31+b*17+cal.Epoch*7)%100) / 100 * 2 * math.Pi
	drift := 1 + 0.15*(hoursSince/24)*math.Sin(phase+hoursSince/6)
	if drift < 0.5 {
		drift = 0.5
	}
	return clampProb(base * drift)
}
