package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"qcloud/internal/backend"
	"qcloud/internal/stats"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestGenerateScaleMatchesPaper(t *testing.T) {
	specs := Generate(Config{Seed: 1})
	// "over 6000 jobs ... over 600,000 quantum circuits ... almost 10
	// billion shots": check orders of magnitude.
	if len(specs) < 4500 || len(specs) > 9000 {
		t.Fatalf("jobs = %d, want ~6200", len(specs))
	}
	var circuits, trials int64
	for _, s := range specs {
		circuits += int64(s.BatchSize)
		trials += int64(s.BatchSize) * int64(s.Shots)
	}
	if circuits < 200_000 || circuits > 3_000_000 {
		t.Fatalf("circuits = %d, want order 600k", circuits)
	}
	if trials < 1e9 || trials > 3e10 {
		t.Fatalf("trials = %d, want order 10^10", trials)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 42})
	b := Generate(Config{Seed: 42})
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatalf("spec %d differs", i)
		}
	}
	c := Generate(Config{Seed: 43})
	if len(a) == len(c) {
		same := true
		for i := range a {
			if *a[i] != *c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical workloads")
		}
	}
}

func TestGenerateSortedAndInWindow(t *testing.T) {
	cfg := Config{Seed: 2}.withDefaults()
	specs := Generate(Config{Seed: 2})
	for i, s := range specs {
		if i > 0 && s.SubmitTime.Before(specs[i-1].SubmitTime) {
			t.Fatal("specs not sorted by submit time")
		}
		if s.SubmitTime.Before(cfg.Start) || !s.SubmitTime.Before(cfg.End) {
			t.Fatalf("submit %v outside window", s.SubmitTime)
		}
	}
}

func TestGenerateGrowthIsExponential(t *testing.T) {
	specs := Generate(Config{Seed: 3})
	// Compare job counts in the first year vs the last year.
	early, late := 0, 0
	cut1 := backend.StudyStart.AddDate(1, 0, 0)
	for _, s := range specs {
		if s.SubmitTime.Before(cut1) {
			early++
		} else {
			late++
		}
	}
	if late < 5*early {
		t.Fatalf("growth too flat: %d early vs %d late", early, late)
	}
	if early == 0 {
		t.Fatal("no early jobs at all")
	}
}

func TestGenerateTargetsOnlineMachinesOnly(t *testing.T) {
	byName := backend.FleetByName()
	for _, s := range Generate(Config{Seed: 4}) {
		m, ok := byName[s.Machine]
		if !ok {
			t.Fatalf("unknown machine %s", s.Machine)
		}
		if !m.AvailableAt(s.SubmitTime) {
			t.Fatalf("job targets %s before online/after retirement at %v", s.Machine, s.SubmitTime)
		}
		if s.Width > m.NumQubits() {
			t.Fatalf("width %d exceeds %s size %d", s.Width, s.Machine, m.NumQubits())
		}
	}
}

func TestGenerateBatchAndShotRanges(t *testing.T) {
	var batches, shots []float64
	for _, s := range Generate(Config{Seed: 5}) {
		if s.BatchSize < 1 || s.BatchSize > 900 {
			t.Fatalf("batch %d outside [1,900]", s.BatchSize)
		}
		if s.Shots > 8192 {
			t.Fatalf("shots %d above the 8192 cap", s.Shots)
		}
		batches = append(batches, float64(s.BatchSize))
		shots = append(shots, float64(s.Shots))
	}
	// Wide batch spread (Fig 11): small and maxed batches both present.
	if stats.Min(batches) != 1 || stats.Max(batches) != 900 {
		t.Fatalf("batch range [%v,%v], want [1,900]", stats.Min(batches), stats.Max(batches))
	}
	if stats.Quantile(batches, 0.5) > 200 {
		t.Fatal("median batch should be modest (most users underbatch)")
	}
	if stats.Max(shots) != 8192 {
		t.Fatal("some jobs should use max shots")
	}
}

func TestGenerateFeaturesConsistent(t *testing.T) {
	for _, s := range Generate(Config{Seed: 6}) {
		if s.TotalGateOps <= 0 || s.TotalDepth <= 0 {
			t.Fatalf("degenerate features: %+v", s)
		}
		if s.CXTotal > s.TotalGateOps {
			t.Fatal("CX count cannot exceed total gates")
		}
		if s.MemSlots != s.Width {
			t.Fatal("mem slots should equal width")
		}
		if s.PatienceSec <= 0 {
			t.Fatal("patience must be positive")
		}
	}
}

func TestGeneratePublicUsersStayPublic(t *testing.T) {
	byName := backend.FleetByName()
	// user-01 is not privileged (only every third user is).
	for _, s := range Generate(Config{Seed: 7}) {
		if s.User == "user-01" && !byName[s.Machine].Public {
			t.Fatalf("non-privileged user on private machine %s", s.Machine)
		}
	}
}

func TestMonthsBetween(t *testing.T) {
	ms := monthsBetween(
		time.Date(2020, 11, 15, 0, 0, 0, 0, time.UTC),
		time.Date(2021, 2, 1, 0, 0, 0, 0, time.UTC))
	if len(ms) != 3 { // Nov (partial), Dec, Jan
		t.Fatalf("months = %v", ms)
	}
}

func TestWidthGrowsWithProgress(t *testing.T) {
	r := newRand(9)
	var early, late []float64
	for i := 0; i < 4000; i++ {
		early = append(early, float64(pickWidth(r, 0)))
		late = append(late, float64(pickWidth(r, 1)))
	}
	if stats.Mean(late) <= stats.Mean(early) {
		t.Fatal("widths should grow over the study")
	}
	if math.IsNaN(stats.Mean(early)) {
		t.Fatal("width sampling broken")
	}
}
