package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"qcloud/internal/backend"
	"qcloud/internal/cloud"
	"qcloud/internal/stats"
	"qcloud/internal/tenant"
)

// TenantConfig parameterizes multi-tenant scenario generation.
type TenantConfig struct {
	// Seed makes generation deterministic.
	Seed int64
	// Start and End bound the arrival window (defaults: three weeks
	// from the study start).
	Start, End time.Time
	// Machines is the fleet to target (default backend.Fleet()).
	Machines []*backend.Machine
	// Tenants is the leaf-queue count where the scenario scales
	// (default 8).
	Tenants int
	// TotalJobs is the expected submission count across all tenants
	// (default 1200).
	TotalJobs int
}

func (c TenantConfig) withDefaults() TenantConfig {
	if c.Start.IsZero() {
		c.Start = backend.StudyStart
	}
	if c.End.IsZero() {
		c.End = c.Start.Add(21 * 24 * time.Hour)
	}
	if c.Machines == nil {
		c.Machines = backend.Fleet()
	}
	if c.Tenants <= 0 {
		c.Tenants = 8
	}
	if c.TotalJobs <= 0 {
		c.TotalJobs = 1200
	}
	return c
}

// TenantScenario is a named multi-tenant contention preset: the quota
// tree plus the submission stream that stresses it.
type TenantScenario struct {
	Name string
	// Desc is a one-line human description for CLI listings.
	Desc string
	// Build produces the broker config (quota tree included) and the
	// arrival-ordered submission stream for the given parameters.
	Build func(cfg TenantConfig) (tenant.Config, []tenant.Submission)
}

// TenantScenarios returns the built-in multi-tenant presets.
func TenantScenarios() []TenantScenario {
	return []TenantScenario{
		{
			Name:  "uniform",
			Desc:  "equal shares, equal demand — the sanity baseline",
			Build: buildUniform,
		},
		{
			Name:  "skewed",
			Desc:  "Zipf-weighted shares under saturating demand from everyone",
			Build: buildSkewed,
		},
		{
			Name:  "flash-crowd",
			Desc:  "steady trickle, then one tenant floods half the total volume in two days",
			Build: buildFlashCrowd,
		},
		{
			Name:  "priority-inversion",
			Desc:  "bulk tenants backlog the fleet before a high-priority interactive tenant arrives",
			Build: buildPriorityInversion,
		},
	}
}

// FindTenantScenario resolves a preset by name.
func FindTenantScenario(name string) (TenantScenario, error) {
	for _, s := range TenantScenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	return TenantScenario{}, fmt.Errorf("workload: unknown tenant scenario %q", name)
}

// brokerDefaults is the broker tuning the presets share: a short decay
// half-life and tick relative to the (weeks-long) scenario windows.
func brokerDefaults(queues []tenant.QueueConfig) tenant.Config {
	return tenant.Config{
		Queues:        queues,
		HalfLife:      12 * time.Hour,
		Tick:          2 * time.Minute,
		MaxPerMachine: 2,
	}
}

// tenantJob synthesizes one tenant job spec: modest NISQ circuits on a
// popularity-weighted public machine that is online at submission.
func tenantJob(r *rand.Rand, c TenantConfig, cache templateCache, at time.Time) *cloud.JobSpec {
	var candidates []*backend.Machine
	var weights []float64
	for _, m := range c.Machines {
		if !m.Public || m.Simulator || !m.AvailableAt(at) || m.NumQubits() < 4 {
			continue
		}
		candidates = append(candidates, m)
		weights = append(weights, m.Popularity)
	}
	if len(candidates) == 0 {
		return nil
	}
	machine := candidates[stats.WeightedChoice(r, weights)]
	kinds := []circuitKind{kindGHZ, kindBV, kindQFT}
	kind := kinds[r.Intn(len(kinds))]
	width := 3 + r.Intn(3)
	if width > machine.NumQubits() {
		width = machine.NumQubits()
	}
	m := cache.metrics(kind, width, r)
	batch := 1 + int(stats.Clamped{S: stats.LogNormal{Mu: 2.2, Sigma: 0.8}, Lo: 0, Hi: 120}.Sample(r))
	shots := []int{1024, 4096, 8192}[r.Intn(3)]
	varf := 0.85 + 0.3*r.Float64()
	return &cloud.JobSpec{
		SubmitTime:   at,
		Machine:      machine.Name,
		BatchSize:    batch,
		Shots:        shots,
		CircuitName:  fmt.Sprintf("%s%d", kind, m.Width),
		Width:        m.Width,
		TotalDepth:   int(float64(m.Depth*batch) * varf),
		TotalGateOps: int(float64(m.GateOps*batch) * varf),
		CXTotal:      int(float64(m.CXCount*batch) * varf),
		MemSlots:     m.Width,
	}
}

// tenantStream emits ~n submissions for one queue, arrivals uniform in
// [from, to).
func tenantStream(r *rand.Rand, c TenantConfig, cache templateCache, queue string, n int, from, to time.Time) []tenant.Submission {
	span := to.Sub(from)
	var subs []tenant.Submission
	for i := 0; i < n; i++ {
		at := from.Add(time.Duration(r.Float64() * float64(span)))
		if spec := tenantJob(r, c, cache, at); spec != nil {
			subs = append(subs, tenant.Submission{Queue: queue, Spec: spec})
		}
	}
	return subs
}

func sortSubs(subs []tenant.Submission) []tenant.Submission {
	sort.SliceStable(subs, func(i, j int) bool {
		return subs[i].Spec.SubmitTime.Before(subs[j].Spec.SubmitTime)
	})
	return subs
}

func buildUniform(cfg TenantConfig) (tenant.Config, []tenant.Submission) {
	c := cfg.withDefaults()
	r := rand.New(rand.NewSource(c.Seed))
	cache := make(templateCache)
	var queues []tenant.QueueConfig
	var subs []tenant.Submission
	per := c.TotalJobs / c.Tenants
	for i := 0; i < c.Tenants; i++ {
		name := fmt.Sprintf("t%02d", i)
		queues = append(queues, tenant.QueueConfig{Name: name, Share: 1})
		subs = append(subs, tenantStream(r, c, cache, name, per, c.Start, c.End)...)
	}
	return brokerDefaults(queues), sortSubs(subs)
}

// buildSkewed gives tenant i the Zipf share 1/(i+1) while every tenant
// submits the same saturating volume — the convergence stressor: raw
// allocation must track the deserved shares, not the demand.
func buildSkewed(cfg TenantConfig) (tenant.Config, []tenant.Submission) {
	c := cfg.withDefaults()
	r := rand.New(rand.NewSource(c.Seed))
	cache := make(templateCache)
	var queues []tenant.QueueConfig
	var subs []tenant.Submission
	per := c.TotalJobs / c.Tenants
	for i := 0; i < c.Tenants; i++ {
		name := fmt.Sprintf("t%02d", i)
		queues = append(queues, tenant.QueueConfig{
			Name:            name,
			Share:           1 / float64(i+1),
			OverQuotaWeight: 1 / float64(i+1),
		})
		subs = append(subs, tenantStream(r, c, cache, name, per, c.Start, c.End)...)
	}
	return brokerDefaults(queues), sortSubs(subs)
}

// buildFlashCrowd runs a steady equal-share trickle, then tenant t00
// floods half the total volume into a two-day window mid-run. The
// decayed ledger should cap the crowd near its deserved share during
// the flood and forgive it afterwards.
func buildFlashCrowd(cfg TenantConfig) (tenant.Config, []tenant.Submission) {
	c := cfg.withDefaults()
	r := rand.New(rand.NewSource(c.Seed))
	cache := make(templateCache)
	var queues []tenant.QueueConfig
	var subs []tenant.Submission
	per := c.TotalJobs / (2 * c.Tenants)
	for i := 0; i < c.Tenants; i++ {
		name := fmt.Sprintf("t%02d", i)
		queues = append(queues, tenant.QueueConfig{Name: name, Share: 1})
		subs = append(subs, tenantStream(r, c, cache, name, per, c.Start, c.End)...)
	}
	mid := c.Start.Add(c.End.Sub(c.Start) / 2)
	subs = append(subs, tenantStream(r, c, cache, "t00", c.TotalJobs/2, mid, mid.Add(48*time.Hour))...)
	return brokerDefaults(queues), sortSubs(subs)
}

// bulkStream emits ~n long-running submissions for one queue: maxed
// batches at the full shot preset, the multi-hour jobs that wedge a
// machine queue.
func bulkStream(r *rand.Rand, c TenantConfig, cache templateCache, queue string, n int, from, to time.Time) []tenant.Submission {
	span := to.Sub(from)
	var subs []tenant.Submission
	for i := 0; i < n; i++ {
		at := from.Add(time.Duration(r.Float64() * float64(span)))
		spec := tenantJob(r, c, cache, at)
		if spec == nil {
			continue
		}
		scale := float64(200+r.Intn(500)) / float64(spec.BatchSize)
		spec.BatchSize = int(float64(spec.BatchSize) * scale)
		spec.TotalDepth = int(float64(spec.TotalDepth) * scale)
		spec.TotalGateOps = int(float64(spec.TotalGateOps) * scale)
		spec.CXTotal = int(float64(spec.CXTotal) * scale)
		spec.Shots = 8192
		subs = append(subs, tenant.Submission{Queue: queue, Spec: spec})
	}
	return subs
}

// buildPriorityInversion floods the fleet with low-priority bulk
// tenants' long jobs in the first half of the window; a high-priority
// "interactive" queue submits sporadic short jobs from the midpoint
// on. With preemption on, its release latency is bounded by the
// residual of whatever is executing instead of the bulk backlog.
func buildPriorityInversion(cfg TenantConfig) (tenant.Config, []tenant.Submission) {
	c := cfg.withDefaults()
	r := rand.New(rand.NewSource(c.Seed))
	cache := make(templateCache)
	var queues []tenant.QueueConfig
	var subs []tenant.Submission
	bulk := c.Tenants - 1
	if bulk < 1 {
		bulk = 1
	}
	mid := c.Start.Add(c.End.Sub(c.Start) / 2)
	per := (c.TotalJobs * 9 / 10) / bulk
	for i := 0; i < bulk; i++ {
		name := fmt.Sprintf("bulk%02d", i)
		queues = append(queues, tenant.QueueConfig{Name: name, Share: 1})
		subs = append(subs, bulkStream(r, c, cache, name, per, c.Start, mid)...)
	}
	queues = append(queues, tenant.QueueConfig{Name: "interactive", Share: 1, Priority: 1})
	subs = append(subs, tenantStream(r, c, cache, "interactive", c.TotalJobs/10, mid, c.End)...)
	tc := brokerDefaults(queues)
	tc.Preemption = true
	return tc, sortSubs(subs)
}
