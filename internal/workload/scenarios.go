package workload

import (
	"fmt"
	"time"

	"qcloud/internal/cloud"
	"qcloud/internal/fault"
)

// FaultScenario is a named fault-injection preset: the injector
// profile plus the retry policy a study run pairs with it. Scenarios
// parameterize robustness experiments the way Config parameterizes
// demand — everything stays a pure function of the run seed.
type FaultScenario struct {
	Name string
	// Desc is a one-line human description for CLI listings.
	Desc string
	// Faults is the injector profile (nil = no faults).
	Faults *fault.Profile
	// Retry is the recovery policy (nil = transient failures are
	// terminal).
	Retry *cloud.RetryPolicy
}

// Apply copies the scenario onto a cloud config.
func (s FaultScenario) Apply(cfg cloud.Config) cloud.Config {
	cfg.Faults = s.Faults
	cfg.Retry = s.Retry
	return cfg
}

// defaultRetry is the recovery policy the faulted presets share.
func defaultRetry() *cloud.RetryPolicy {
	return &cloud.RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: time.Minute,
		MaxBackoff:  time.Hour,
		JitterFrac:  0.25,
	}
}

// FaultScenarios returns the built-in presets, mildest first. The
// adversarial entry is the evaluation gauntlet for fault-aware
// scheduling: frequent multi-hour outages on top of elevated error
// rates, so policies that ignore machine health pay for it.
func FaultScenarios() []FaultScenario {
	return []FaultScenario{
		{
			Name: "none",
			Desc: "no injected faults (the calm baseline)",
		},
		{
			Name: "flaky-fleet",
			Desc: "persistent low-grade transient errors and flaky submissions",
			Faults: &fault.Profile{
				TransientErrorRate: 0.04,
				SubmitErrorRate:    0.01,
			},
			Retry: defaultRetry(),
		},
		{
			Name: "outage-storm",
			Desc: "frequent unplanned outages, hours long",
			Faults: &fault.Profile{
				OutageMeanGapDays: 5,
				OutageMeanHours:   10,
				OutageMaxHours:    48,
			},
			Retry: defaultRetry(),
		},
		{
			Name: "error-burst",
			Desc: "windows where most executions die to transient faults",
			Faults: &fault.Profile{
				TransientErrorRate: 0.01,
				BurstMeanGapDays:   7,
				BurstMeanHours:     6,
				BurstErrorRate:     0.7,
			},
			Retry: defaultRetry(),
		},
		{
			Name: "stale-waves",
			Desc: "calibration-staleness waves multiplying the error rate",
			Faults: &fault.Profile{
				StaleMeanGapDays: 6,
				StaleMeanHours:   18,
				StaleErrorFactor: 6,
			},
			Retry: defaultRetry(),
		},
		{
			Name: "adversarial",
			Desc: "everything at once: outages, bursts, staleness, flaky submits",
			Faults: &fault.Profile{
				OutageMeanGapDays:  4,
				OutageMeanHours:    12,
				OutageMaxHours:     48,
				TransientErrorRate: 0.06,
				BurstMeanGapDays:   6,
				BurstMeanHours:     6,
				BurstErrorRate:     0.6,
				StaleMeanGapDays:   7,
				StaleMeanHours:     12,
				StaleErrorFactor:   5,
				SubmitErrorRate:    0.02,
			},
			Retry: defaultRetry(),
		},
	}
}

// FindFaultScenario resolves a preset by name.
func FindFaultScenario(name string) (FaultScenario, error) {
	for _, s := range FaultScenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	return FaultScenario{}, fmt.Errorf("workload: unknown fault scenario %q", name)
}
