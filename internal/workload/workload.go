// Package workload synthesizes the study's two-year job stream: the
// 6000+ jobs (600k+ circuits, ~10 billion shots) the paper analyzes.
// Demand grows exponentially month over month (Fig 2a), users choose
// machines with popularity- and size-driven heuristics (Figs 8, 9),
// batch sizes span 1-900 (Fig 11), and shots cluster at the IBM presets
// with a cap of 8192.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"qcloud/internal/backend"
	"qcloud/internal/circuit"
	"qcloud/internal/circuit/gens"
	"qcloud/internal/cloud"
	"qcloud/internal/stats"
)

// Config parameterizes workload generation.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// Start and End bound the submission window (defaults: the study
	// period).
	Start, End time.Time
	// Machines is the fleet to target (default backend.Fleet()).
	Machines []*backend.Machine
	// TotalJobs is the expected number of jobs (default 6200; actual
	// count is Poisson-distributed around it).
	TotalJobs int
	// GrowthPerMonth is the exponential monthly demand growth rate
	// (default 0.22, ~e^6 over two years).
	GrowthPerMonth float64
	// Users is the study user-pool size (default 12).
	Users int
}

func (c Config) withDefaults() Config {
	if c.Start.IsZero() {
		c.Start = backend.StudyStart
	}
	if c.End.IsZero() {
		c.End = backend.StudyEnd
	}
	if c.Machines == nil {
		c.Machines = backend.Fleet()
	}
	if c.TotalJobs <= 0 {
		c.TotalJobs = 6200
	}
	if c.GrowthPerMonth <= 0 {
		c.GrowthPerMonth = 0.22
	}
	if c.Users <= 0 {
		c.Users = 12
	}
	return c
}

// user is a study-user profile driving machine and workload choices.
type user struct {
	name string
	// privileged users favor the paid, larger machines.
	privileged bool
	// batchDiscipline in [0,1]: disciplined users batch aggressively
	// (the paper notes users "are not always adept at combining their
	// executed circuits into a highly batched job").
	batchDiscipline float64
	// favorite circuit family index bias.
	famBias int
}

// circuitKind identifies a template family in the library.
type circuitKind int

const (
	kindGHZ circuitKind = iota
	kindBV
	kindQFT
	kindQAOA
	kindVQE
	kindRandom
	numKinds
)

func (k circuitKind) String() string {
	switch k {
	case kindGHZ:
		return "ghz"
	case kindBV:
		return "bv"
	case kindQFT:
		return "qft"
	case kindQAOA:
		return "qaoa"
	case kindVQE:
		return "vqe"
	default:
		return "random"
	}
}

// templateMetrics builds (and caches) logical circuit metrics per
// (kind, width) template.
type templateCache map[string]circuit.Metrics

func (tc templateCache) metrics(kind circuitKind, width int, r *rand.Rand) circuit.Metrics {
	key := fmt.Sprintf("%s/%d", kind, width)
	if m, ok := tc[key]; ok {
		return m
	}
	var c *circuit.Circuit
	switch kind {
	case kindGHZ:
		c = gens.GHZ(width)
	case kindBV:
		c = gens.BernsteinVazirani(width-1, uint64(r.Int63())&((1<<uint(width-1))-1))
	case kindQFT:
		c = gens.QFT(width)
	case kindQAOA:
		c = gens.QAOAMaxCut(width, gens.RingEdges(width), 2)
	case kindVQE:
		c = gens.HardwareEfficientAnsatz(rand.New(rand.NewSource(int64(width)*31+7)), width, 3)
	default:
		c = gens.Random(rand.New(rand.NewSource(int64(width)*17+3)), width, 8+width, 0.3)
	}
	m := circuit.ComputeMetrics(c)
	tc[key] = m
	return m
}

// Generate produces the study job stream, sorted by submission time.
func Generate(cfg Config) []*cloud.JobSpec {
	c := cfg.withDefaults()
	r := rand.New(rand.NewSource(c.Seed))
	users := makeUsers(c.Users, r)
	cache := make(templateCache)

	months := monthsBetween(c.Start, c.End)
	weights := make([]float64, len(months))
	total := 0.0
	for i := range months {
		weights[i] = math.Exp(c.GrowthPerMonth * float64(i))
		total += weights[i]
	}
	var specs []*cloud.JobSpec
	for i, m := range months {
		expected := float64(c.TotalJobs) * weights[i] / total
		n := stats.Poisson(r, expected)
		// progress in [0,1] tracks how late in the study we are; job
		// shapes grow with it.
		progress := float64(i) / math.Max(float64(len(months)-1), 1)
		for j := 0; j < n; j++ {
			at := randomTimeInMonth(r, m, c.End)
			u := users[r.Intn(len(users))]
			spec := makeJob(r, c, u, cache, at, progress)
			if spec != nil {
				specs = append(specs, spec)
			}
		}
	}
	sort.Slice(specs, func(a, b int) bool { return specs[a].SubmitTime.Before(specs[b].SubmitTime) })
	return specs
}

func makeUsers(n int, r *rand.Rand) []*user {
	users := make([]*user, n)
	for i := range users {
		users[i] = &user{
			name:            fmt.Sprintf("user-%02d", i),
			privileged:      i%3 == 0, // a third of the group has paid access
			batchDiscipline: r.Float64(),
			famBias:         r.Intn(int(numKinds)),
		}
	}
	return users
}

// monthsBetween lists the first day of every month in [start, end).
func monthsBetween(start, end time.Time) []time.Time {
	var months []time.Time
	m := time.Date(start.Year(), start.Month(), 1, 0, 0, 0, 0, time.UTC)
	for m.Before(end) {
		if !m.Before(start) || m.AddDate(0, 1, 0).After(start) {
			months = append(months, m)
		}
		m = m.AddDate(0, 1, 0)
	}
	return months
}

// randomTimeInMonth picks a submission instant inside the month,
// biased toward weekday working hours.
func randomTimeInMonth(r *rand.Rand, month, end time.Time) time.Time {
	next := month.AddDate(0, 1, 0)
	if next.After(end) {
		next = end
	}
	span := next.Sub(month)
	for attempt := 0; attempt < 8; attempt++ {
		at := month.Add(time.Duration(r.Float64() * float64(span)))
		h, wd := at.Hour(), at.Weekday()
		// Accept working-hours weekday times always; off-hours with
		// lower probability.
		accept := 0.35
		if wd != time.Saturday && wd != time.Sunday && h >= 8 && h <= 22 {
			accept = 1.0
		}
		if r.Float64() < accept {
			return at
		}
	}
	return month.Add(time.Duration(r.Float64() * float64(span)))
}

// makeJob assembles one JobSpec, or nil when no machine fits.
func makeJob(r *rand.Rand, cfg Config, u *user, cache templateCache, at time.Time, progress float64) *cloud.JobSpec {
	kind := pickKind(r, u)
	width := pickWidth(r, progress)
	machine := pickMachine(r, cfg.Machines, u, at, width)
	if machine == nil {
		return nil
	}
	if width > machine.NumQubits() {
		width = machine.NumQubits()
	}
	if width < 1 {
		width = 1
	}
	m := cache.metrics(kind, maxInt(width, 2), r)
	batch := pickBatch(r, u, progress)
	shots := pickShots(r, progress)
	// Aggregate batch-level features with mild per-circuit variation.
	varf := 0.85 + 0.3*r.Float64()
	spec := &cloud.JobSpec{
		SubmitTime:   at,
		User:         u.name,
		Machine:      machine.Name,
		BatchSize:    batch,
		Shots:        shots,
		CircuitName:  fmt.Sprintf("%s%d", kind, m.Width),
		Width:        m.Width,
		TotalDepth:   int(float64(m.Depth*batch) * varf),
		TotalGateOps: int(float64(m.GateOps*batch) * varf),
		CXTotal:      int(float64(m.CXCount*batch) * varf),
		MemSlots:     m.Width,
		PatienceSec:  stats.LogNormal{Mu: math.Log(2.2 * 24 * 3600), Sigma: 0.8}.Sample(r),
		Privileged:   u.privileged,
	}
	return spec
}

func pickKind(r *rand.Rand, u *user) circuitKind {
	// Favorite family gets extra weight.
	w := []float64{2, 2, 2.5, 1.5, 1.5, 1}
	w[u.famBias] += 2.5
	return circuitKind(stats.WeightedChoice(r, w))
}

// pickWidth draws a circuit width: NISQ-era circuits are small, with
// the tail growing as the study progresses.
func pickWidth(r *rand.Rand, progress float64) int {
	base := stats.Clamped{S: stats.LogNormal{Mu: 1.1 + 0.5*progress, Sigma: 0.45}, Lo: 2, Hi: 30}
	return int(base.Sample(r))
}

// pickBatch draws the circuits-per-job batch size (Fig 11's 1-900
// spread). Disciplined users and later periods batch more.
func pickBatch(r *rand.Rand, u *user, progress float64) int {
	mu := 1.8 + 2.6*u.batchDiscipline + 1.7*progress
	b := int(stats.Clamped{S: stats.LogNormal{Mu: mu, Sigma: 1.0}, Lo: 1, Hi: 900}.Sample(r))
	// A slice of disciplined users max the batch out entirely.
	if u.batchDiscipline > 0.85 && r.Float64() < 0.25 {
		b = 900
	}
	return b
}

// pickShots draws the per-circuit shot count from the IBM presets,
// capped at 8192.
func pickShots(r *rand.Rand, progress float64) int {
	w := []float64{0.30 - 0.15*progress, 0.30, 0.40 + 0.15*progress}
	presets := []int{1024, 4096, 8192}
	return presets[stats.WeightedChoice(r, w)]
}

// pickMachine implements the user machine-selection heuristic: among
// machines online at submission with enough qubits, weight by
// popularity; privileged users triple the weight of private machines,
// public users can only use public ones.
func pickMachine(r *rand.Rand, machines []*backend.Machine, u *user, at time.Time, width int) *backend.Machine {
	var candidates []*backend.Machine
	var weights []float64
	for _, m := range machines {
		if !m.AvailableAt(at) || m.NumQubits() < width {
			continue
		}
		if !m.Public && !u.privileged {
			continue
		}
		w := m.Popularity
		if u.privileged {
			if !m.Public {
				w *= 3 // privileged users exploit their quieter machines
			} else {
				w *= 0.6
			}
		}
		if m.Simulator {
			w *= 0.5 // the study focuses on hardware
		}
		candidates = append(candidates, m)
		weights = append(weights, w)
	}
	if len(candidates) == 0 {
		return nil
	}
	return candidates[stats.WeightedChoice(r, weights)]
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
