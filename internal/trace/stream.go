package trace

import (
	"encoding/binary"
	"fmt"
	"time"
)

// Streaming job codec: a compact binary encoding of single Job
// records for the session journal's append-only frames. Unlike the
// CSV/JSON codecs this one is record-at-a-time (no header, no
// enclosing document), so a journaled session can write each job as
// it finishes and hold none of them in memory.
//
// Times are encoded as UTC Unix nanoseconds; every trace instant lies
// inside the study window, far from UnixNano's ±292-year range limit.

// jobWireVersion stamps each encoded record so the layout can evolve
// without guessing.
const jobWireVersion byte = 1

// AppendJob appends the binary encoding of j to buf and returns the
// extended slice (append-style, so callers can reuse one buffer for a
// whole stream).
func AppendJob(buf []byte, j *Job) []byte {
	buf = append(buf, jobWireVersion)
	buf = binary.AppendVarint(buf, j.ID)
	buf = appendString(buf, j.User)
	buf = appendString(buf, j.Machine)
	buf = binary.AppendVarint(buf, int64(j.MachineQubits))
	buf = appendBool(buf, j.Public)
	buf = appendString(buf, j.CircuitName)
	buf = binary.AppendVarint(buf, int64(j.BatchSize))
	buf = binary.AppendVarint(buf, int64(j.Shots))
	buf = binary.AppendVarint(buf, int64(j.Width))
	buf = binary.AppendVarint(buf, int64(j.TotalDepth))
	buf = binary.AppendVarint(buf, int64(j.TotalGateOps))
	buf = binary.AppendVarint(buf, int64(j.CXTotal))
	buf = binary.AppendVarint(buf, int64(j.MemSlots))
	buf = binary.AppendVarint(buf, j.SubmitTime.UnixNano())
	buf = binary.AppendVarint(buf, j.StartTime.UnixNano())
	buf = binary.AppendVarint(buf, j.EndTime.UnixNano())
	buf = appendString(buf, string(j.Status))
	buf = binary.AppendVarint(buf, int64(j.CompileEpoch))
	buf = binary.AppendVarint(buf, int64(j.ExecEpoch))
	return buf
}

// DecodeJob decodes one record produced by AppendJob. It never
// panics: malformed input (truncation, bad lengths) is an error, a
// second line of defense behind the journal's frame checksums.
func DecodeJob(b []byte) (*Job, error) {
	d := &jobDecoder{b: b}
	if v := d.byte(); v != jobWireVersion {
		if d.err == nil {
			d.err = fmt.Errorf("trace: job record version %d, want %d", v, jobWireVersion)
		}
		return nil, d.err
	}
	j := &Job{}
	j.ID = d.varint()
	j.User = d.string()
	j.Machine = d.string()
	j.MachineQubits = d.int()
	j.Public = d.bool()
	j.CircuitName = d.string()
	j.BatchSize = d.int()
	j.Shots = d.int()
	j.Width = d.int()
	j.TotalDepth = d.int()
	j.TotalGateOps = d.int()
	j.CXTotal = d.int()
	j.MemSlots = d.int()
	j.SubmitTime = d.time()
	j.StartTime = d.time()
	j.EndTime = d.time()
	j.Status = Status(d.string())
	j.CompileEpoch = d.int()
	j.ExecEpoch = d.int()
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != d.off {
		return nil, fmt.Errorf("trace: job record has %d trailing bytes", len(d.b)-d.off)
	}
	return j, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// jobDecoder reads the fixed field sequence with a sticky error, so
// the decode body stays a flat field list.
type jobDecoder struct {
	b   []byte
	off int
	err error
}

func (d *jobDecoder) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("trace: truncated job record: %s at offset %d", msg, d.off)
	}
}

func (d *jobDecoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail("byte")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *jobDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.off += n
	return v
}

func (d *jobDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *jobDecoder) int() int { return int(d.varint()) }

func (d *jobDecoder) bool() bool { return d.byte() != 0 }

func (d *jobDecoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail("string body")
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *jobDecoder) time() time.Time {
	return time.Unix(0, d.varint()).UTC()
}
