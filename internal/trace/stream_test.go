package trace

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// streamJobs builds a deterministic job set covering the field space:
// every status, empty and long strings, zero and large counters.
func streamJobs() []*Job {
	base := time.Date(2019, 3, 14, 9, 26, 53, 589793238, time.UTC)
	r := rand.New(rand.NewSource(11))
	statuses := []Status{StatusDone, StatusError, StatusCancelled}
	jobs := make([]*Job, 64)
	for i := range jobs {
		submit := base.Add(time.Duration(i) * 97 * time.Minute)
		start := submit.Add(time.Duration(r.Intn(7200)) * time.Second)
		jobs[i] = &Job{
			ID:            int64(i),
			User:          "",
			Machine:       "ibmq_athens",
			MachineQubits: 5 + i%60,
			Public:        i%2 == 0,
			CircuitName:   "qft",
			BatchSize:     1 + i%900,
			Shots:         1 + r.Intn(8192),
			Width:         1 + i%27,
			TotalDepth:    r.Intn(1 << 20),
			TotalGateOps:  r.Intn(1 << 24),
			CXTotal:       r.Intn(1 << 16),
			MemSlots:      i % 32,
			SubmitTime:    submit,
			StartTime:     start,
			EndTime:       start.Add(time.Duration(r.Intn(3600)) * time.Second),
			Status:        statuses[i%3],
			CompileEpoch:  i,
			ExecEpoch:     i + i%2,
		}
		if i%5 == 0 {
			jobs[i].User = "user-with-a-longer-name-0123456789"
			jobs[i].CircuitName = ""
		}
	}
	return jobs
}

func TestJobStreamRoundTrip(t *testing.T) {
	var buf []byte
	jobs := streamJobs()
	var frames [][]byte
	for _, j := range jobs {
		buf = buf[:0]
		buf = AppendJob(buf, j)
		frames = append(frames, bytes.Clone(buf))
	}
	for i, f := range frames {
		got, err := DecodeJob(f)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, jobs[i]) {
			t.Fatalf("job %d round-trip mismatch:\n got %+v\nwant %+v", i, got, jobs[i])
		}
		// The JSON view — what traces are compared by — must be
		// byte-identical too (UTC locations, nanosecond precision).
		gj, _ := json.Marshal(got)
		wj, _ := json.Marshal(jobs[i])
		if !bytes.Equal(gj, wj) {
			t.Fatalf("job %d JSON mismatch:\n got %s\nwant %s", i, gj, wj)
		}
	}
}

// TestJobStreamTruncationSafe decodes every strict prefix of an
// encoded record and a version-mangled copy: all must error, none may
// panic.
func TestJobStreamTruncationSafe(t *testing.T) {
	j := streamJobs()[7]
	full := AppendJob(nil, j)
	for n := 0; n < len(full); n++ {
		if _, err := DecodeJob(full[:n]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", n, len(full))
		}
	}
	if _, err := DecodeJob(append(bytes.Clone(full), 0x7f)); err == nil {
		t.Fatal("trailing garbage decoded without error")
	}
	bad := bytes.Clone(full)
	bad[0] = 99
	if _, err := DecodeJob(bad); err == nil {
		t.Fatal("unknown wire version decoded without error")
	}
}

func TestSnapshotChecksumRoundTrip(t *testing.T) {
	type payload struct {
		Name  string
		Count int
		When  time.Time
	}
	in := payload{Name: "fleet", Count: 42, When: time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, 2, in); err != nil {
		t.Fatal(err)
	}
	var out payload
	v, err := ReadSnapshot(bytes.NewReader(buf.Bytes()), &out)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 || !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: version %d payload %+v", v, out)
	}
}

// TestSnapshotBitFlipRejected flips one bit at every byte position of
// a checksummed snapshot: every corruption must surface as a clear
// error (never a panic, never a silent wrong decode).
func TestSnapshotBitFlipRejected(t *testing.T) {
	type payload struct {
		Name  string
		Count int
	}
	in := payload{Name: "fleet", Count: 42}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, 2, in); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for pos := 0; pos < len(data); pos++ {
		corrupt := bytes.Clone(data)
		corrupt[pos] ^= 0x04
		var out payload
		v, err := ReadSnapshot(bytes.NewReader(corrupt), &out)
		if err == nil && v == 2 && reflect.DeepEqual(in, out) {
			// Flipping the version byte alone changes the envelope,
			// not the payload; the caller's version check owns that.
			if pos != len(snapshotMagic) {
				t.Fatalf("bit flip at byte %d went undetected", pos)
			}
		}
	}
	// Torn footer: a file cut inside the checksum is corrupt, not
	// silently short.
	var out payload
	if _, err := ReadSnapshot(bytes.NewReader(data[:len(data)-2]), &out); err == nil {
		t.Fatal("torn checksum footer went undetected")
	}
}

// TestSnapshotV1StillReadable pins backward compatibility: version-1
// envelopes (pre-checksum) decode as before.
func TestSnapshotV1StillReadable(t *testing.T) {
	type payload struct{ Count int }
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, 1, payload{Count: 7}); err != nil {
		t.Fatal(err)
	}
	var out payload
	v, err := ReadSnapshot(bytes.NewReader(buf.Bytes()), &out)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 || out.Count != 7 {
		t.Fatalf("v1 decode: version %d payload %+v", v, out)
	}
}
