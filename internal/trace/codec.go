package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// csvHeader is the column layout of the CSV codec, stable across
// versions so external tooling can rely on it.
var csvHeader = []string{
	"id", "user", "machine", "machine_qubits", "public", "circuit",
	"batch_size", "shots", "width", "total_depth", "total_gate_ops",
	"cx_total", "mem_slots", "submit_time", "start_time", "end_time",
	"status", "compile_epoch", "exec_epoch",
}

// WriteCSV streams the trace's jobs as CSV with a header row.
func WriteCSV(w io.Writer, jobs []*Job) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, j := range jobs {
		rec := []string{
			strconv.FormatInt(j.ID, 10),
			j.User,
			j.Machine,
			strconv.Itoa(j.MachineQubits),
			strconv.FormatBool(j.Public),
			j.CircuitName,
			strconv.Itoa(j.BatchSize),
			strconv.Itoa(j.Shots),
			strconv.Itoa(j.Width),
			strconv.Itoa(j.TotalDepth),
			strconv.Itoa(j.TotalGateOps),
			strconv.Itoa(j.CXTotal),
			strconv.Itoa(j.MemSlots),
			j.SubmitTime.UTC().Format(time.RFC3339),
			j.StartTime.UTC().Format(time.RFC3339),
			j.EndTime.UTC().Format(time.RFC3339),
			string(j.Status),
			strconv.Itoa(j.CompileEpoch),
			strconv.Itoa(j.ExecEpoch),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) ([]*Job, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if len(header) != len(csvHeader) {
		return nil, fmt.Errorf("trace: header has %d columns, want %d", len(header), len(csvHeader))
	}
	var jobs []*Job
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		j, err := parseCSVRecord(rec)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

func parseCSVRecord(rec []string) (*Job, error) {
	atoi := func(s string) (int, error) { return strconv.Atoi(s) }
	j := &Job{}
	var err error
	if j.ID, err = strconv.ParseInt(rec[0], 10, 64); err != nil {
		return nil, fmt.Errorf("id: %w", err)
	}
	j.User, j.Machine = rec[1], rec[2]
	if j.MachineQubits, err = atoi(rec[3]); err != nil {
		return nil, fmt.Errorf("machine_qubits: %w", err)
	}
	if j.Public, err = strconv.ParseBool(rec[4]); err != nil {
		return nil, fmt.Errorf("public: %w", err)
	}
	j.CircuitName = rec[5]
	ints := []struct {
		dst *int
		col int
		nm  string
	}{
		{&j.BatchSize, 6, "batch_size"}, {&j.Shots, 7, "shots"},
		{&j.Width, 8, "width"}, {&j.TotalDepth, 9, "total_depth"},
		{&j.TotalGateOps, 10, "total_gate_ops"}, {&j.CXTotal, 11, "cx_total"},
		{&j.MemSlots, 12, "mem_slots"},
	}
	for _, f := range ints {
		if *f.dst, err = atoi(rec[f.col]); err != nil {
			return nil, fmt.Errorf("%s: %w", f.nm, err)
		}
	}
	times := []struct {
		dst *time.Time
		col int
		nm  string
	}{
		{&j.SubmitTime, 13, "submit_time"}, {&j.StartTime, 14, "start_time"}, {&j.EndTime, 15, "end_time"},
	}
	for _, f := range times {
		if *f.dst, err = time.Parse(time.RFC3339, rec[f.col]); err != nil {
			return nil, fmt.Errorf("%s: %w", f.nm, err)
		}
	}
	j.Status = Status(rec[16])
	if j.CompileEpoch, err = atoi(rec[17]); err != nil {
		return nil, fmt.Errorf("compile_epoch: %w", err)
	}
	if j.ExecEpoch, err = atoi(rec[18]); err != nil {
		return nil, fmt.Errorf("exec_epoch: %w", err)
	}
	return j, j.Validate()
}

// WriteJSON encodes the full trace (jobs + machine stats) as JSON.
func WriteJSON(w io.Writer, t *Trace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t)
}

// ReadJSON decodes a trace written by WriteJSON.
func ReadJSON(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decoding JSON: %w", err)
	}
	for _, j := range t.Jobs {
		if err := j.Validate(); err != nil {
			return nil, err
		}
	}
	return &t, nil
}
