package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func sampleJob(id int64) *Job {
	t0 := time.Date(2020, 6, 1, 10, 0, 0, 0, time.UTC)
	return &Job{
		ID: id, User: "u1", Machine: "ibmq_athens", MachineQubits: 5, Public: true,
		CircuitName: "qft4", BatchSize: 20, Shots: 4096,
		Width: 4, TotalDepth: 240, TotalGateOps: 800, CXTotal: 120, MemSlots: 4,
		SubmitTime: t0, StartTime: t0.Add(45 * time.Minute), EndTime: t0.Add(47 * time.Minute),
		Status: StatusDone, CompileEpoch: 100, ExecEpoch: 100,
	}
}

func TestJobDerivedQuantities(t *testing.T) {
	j := sampleJob(1)
	if got := j.QueueSeconds(); got != 45*60 {
		t.Fatalf("QueueSeconds = %v", got)
	}
	if got := j.ExecSeconds(); got != 2*60 {
		t.Fatalf("ExecSeconds = %v", got)
	}
	if got := j.Trials(); got != 20*4096 {
		t.Fatalf("Trials = %v", got)
	}
	if got := j.Utilization(); got != 0.8 {
		t.Fatalf("Utilization = %v", got)
	}
	if j.CrossedCalibration() {
		t.Fatal("same epochs should not be a crossover")
	}
	j.ExecEpoch = 101
	if !j.CrossedCalibration() {
		t.Fatal("different epochs must be a crossover")
	}
}

func TestCancelledExecSecondsZero(t *testing.T) {
	j := sampleJob(2)
	j.Status = StatusCancelled
	if j.ExecSeconds() != 0 {
		t.Fatal("cancelled job should report zero exec time")
	}
}

func TestValidate(t *testing.T) {
	good := sampleJob(3)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	cases := map[string]func(*Job){
		"no machine":     func(j *Job) { j.Machine = "" },
		"bad batch":      func(j *Job) { j.BatchSize = 0 },
		"bad shots":      func(j *Job) { j.Shots = 0 },
		"start<submit":   func(j *Job) { j.StartTime = j.SubmitTime.Add(-time.Minute) },
		"end<start":      func(j *Job) { j.EndTime = j.StartTime.Add(-time.Minute) },
		"unknown status": func(j *Job) { j.Status = "WAT" },
	}
	for name, corrupt := range cases {
		j := sampleJob(4)
		corrupt(j)
		if err := j.Validate(); err == nil {
			t.Fatalf("%s: expected validation error", name)
		}
	}
}

func TestCSVRoundtrip(t *testing.T) {
	jobs := []*Job{sampleJob(1), sampleJob(2)}
	jobs[1].Status = StatusError
	jobs[1].Machine = "ibmq_manhattan"
	jobs[1].Public = false
	var buf bytes.Buffer
	if err := WriteCSV(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("roundtrip job count = %d", len(back))
	}
	for i := range jobs {
		if *back[i] != *jobs[i] {
			t.Fatalf("job %d mismatch:\n got %+v\nwant %+v", i, back[i], jobs[i])
		}
	}
}

func TestCSVRejectsCorrupt(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("not,a,trace\n")); err == nil {
		t.Fatal("wrong header should fail")
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []*Job{sampleJob(1)}); err != nil {
		t.Fatal(err)
	}
	corrupted := strings.Replace(buf.String(), "4096", "notanumber", 1)
	if _, err := ReadCSV(strings.NewReader(corrupted)); err == nil {
		t.Fatal("corrupt field should fail")
	}
}

func TestJSONRoundtrip(t *testing.T) {
	tr := &Trace{
		Jobs: []*Job{sampleJob(1)},
		Machines: []*MachineStats{{
			Name: "ibmq_athens", Qubits: 5, Public: true, BackgroundJobs: 123,
			PendingSamples: []PendingSample{{Machine: "ibmq_athens", Time: time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC), Pending: 42}},
		}},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Jobs) != 1 || len(back.Machines) != 1 {
		t.Fatal("JSON roundtrip lost records")
	}
	if back.Machines[0].PendingSamples[0].Pending != 42 {
		t.Fatal("pending sample lost")
	}
}

func TestTraceGrouping(t *testing.T) {
	a, b, c := sampleJob(1), sampleJob(2), sampleJob(3)
	b.Machine = "ibmq_rome"
	c.Status = StatusCancelled
	tr := &Trace{Jobs: []*Job{a, b, c}}
	groups := tr.JobsByMachine()
	if len(groups["ibmq_athens"]) != 2 || len(groups["ibmq_rome"]) != 1 {
		t.Fatalf("grouping wrong: %v", groups)
	}
	if got := len(tr.Completed()); got != 2 {
		t.Fatalf("completed = %d, want 2", got)
	}
}
