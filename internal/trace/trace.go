// Package trace defines the job-trace records produced by the cloud
// simulator and consumed by every analysis — the synthetic equivalent
// of the two-year IBM Quantum job dataset the paper studies — plus CSV
// and JSON codecs for persisting and reloading traces.
package trace

import (
	"fmt"
	"time"
)

// Status is the terminal state of a job, mirroring the IBM job states
// the paper's Fig 2b breaks down.
type Status string

// Job statuses.
const (
	StatusDone      Status = "DONE"
	StatusError     Status = "ERROR"
	StatusCancelled Status = "CANCELLED"
)

// Job is one completed (or failed) job record in the study trace.
type Job struct {
	// ID is the job's unique index in the trace.
	ID int64
	// User identifies the submitting user.
	User string
	// Machine is the backend name, e.g. "ibmq_athens".
	Machine string
	// MachineQubits is the backend size at execution.
	MachineQubits int
	// Public marks free-access backends.
	Public bool
	// CircuitName labels the dominant circuit family in the batch.
	CircuitName string
	// BatchSize is the number of circuits in the job (1..900).
	BatchSize int
	// Shots is the per-circuit repetition count (<= 8192).
	Shots int
	// Width is the maximum circuit width in the batch.
	Width int
	// TotalDepth is the summed depth over the batch's circuits.
	TotalDepth int
	// TotalGateOps is the summed gate count over the batch.
	TotalGateOps int
	// CXTotal is the summed two-qubit gate count over the batch.
	CXTotal int
	// MemSlots is the classical memory slots the job requires.
	MemSlots int
	// SubmitTime, StartTime, EndTime delimit queueing and execution.
	SubmitTime, StartTime, EndTime time.Time
	// Status is the terminal job state.
	Status Status
	// CompileEpoch and ExecEpoch are the calibration cycles at
	// compile (submit) time and execution time; a mismatch is a
	// calibration crossover (Fig 12a).
	CompileEpoch, ExecEpoch int
}

// QueueSeconds returns time spent waiting in the queue.
func (j *Job) QueueSeconds() float64 { return j.StartTime.Sub(j.SubmitTime).Seconds() }

// ExecSeconds returns machine execution time (zero for cancellations).
func (j *Job) ExecSeconds() float64 {
	if j.Status == StatusCancelled {
		return 0
	}
	return j.EndTime.Sub(j.StartTime).Seconds()
}

// Trials returns machine trials this job contributed (batch x shots).
func (j *Job) Trials() int64 { return int64(j.BatchSize) * int64(j.Shots) }

// Utilization returns the fraction of machine qubits the job's widest
// circuit uses — the Fig 8 metric.
func (j *Job) Utilization() float64 {
	if j.MachineQubits == 0 {
		return 0
	}
	return float64(j.Width) / float64(j.MachineQubits)
}

// CrossedCalibration reports whether the job compiled against one
// calibration cycle but executed in another (Fig 12a).
func (j *Job) CrossedCalibration() bool { return j.CompileEpoch != j.ExecEpoch }

// Validate checks internal consistency of a record.
func (j *Job) Validate() error {
	switch {
	case j.Machine == "":
		return fmt.Errorf("trace: job %d has no machine", j.ID)
	case j.BatchSize < 1:
		return fmt.Errorf("trace: job %d batch %d < 1", j.ID, j.BatchSize)
	case j.Shots < 1:
		return fmt.Errorf("trace: job %d shots %d < 1", j.ID, j.Shots)
	case j.StartTime.Before(j.SubmitTime):
		return fmt.Errorf("trace: job %d starts before submission", j.ID)
	case j.EndTime.Before(j.StartTime):
		return fmt.Errorf("trace: job %d ends before start", j.ID)
	case j.Status != StatusDone && j.Status != StatusError && j.Status != StatusCancelled:
		return fmt.Errorf("trace: job %d has unknown status %q", j.ID, j.Status)
	}
	return nil
}

// PendingSample is a point-in-time queue-length observation for one
// machine (Fig 9's raw data).
type PendingSample struct {
	Machine string
	Time    time.Time
	Pending int
}

// MachineStats aggregates per-machine simulation outputs that are not
// attributable to single study jobs.
type MachineStats struct {
	Name           string
	Qubits         int
	Public         bool
	BackgroundJobs int64
	PendingSamples []PendingSample
	// WaitRatioP10/P50/P90 are empirical quantiles of
	// actualWait / (pendingAtSubmit x meanService) over background
	// jobs: the calibration for prediction intervals on queue waits
	// (zero when too few samples).
	WaitRatioP10, WaitRatioP50, WaitRatioP90 float64
}

// Trace is the full output of one simulated study.
type Trace struct {
	Jobs     []*Job
	Machines []*MachineStats
}

// JobsByMachine groups the study jobs by machine name.
func (t *Trace) JobsByMachine() map[string][]*Job {
	out := make(map[string][]*Job)
	for _, j := range t.Jobs {
		out[j.Machine] = append(out[j.Machine], j)
	}
	return out
}

// Completed returns jobs that actually executed (DONE or ERROR).
func (t *Trace) Completed() []*Job {
	var out []*Job
	for _, j := range t.Jobs {
		if j.Status != StatusCancelled {
			out = append(out, j)
		}
	}
	return out
}
