package trace

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
)

// Snapshot framing: a four-byte magic, one version byte, then a gob
// payload. Gob (not JSON) because simulator state legitimately holds
// ±Inf floats — a fresh machine frontier is -Inf, a finalized one +Inf
// — which JSON cannot encode. The version byte belongs to the
// envelope so readers can reject incompatible payloads before
// decoding them.
//
// Envelope versions 2 and above end with a 4-byte little-endian
// CRC32C footer over the gob payload, so a bit-flipped or torn
// checkpoint is rejected with a checksum error instead of being fed
// to gob. Version 1 files (written before the footer existed) have no
// checksum and are still readable.
const snapshotMagic = "QCSN"

// snapshotChecksummed is the first envelope version carrying the
// CRC32C footer.
const snapshotChecksummed = 2

// snapshotCRC is the footer polynomial (CRC32C, as in the journal's
// frame checksums).
var snapshotCRC = crc32.MakeTable(crc32.Castagnoli)

// WriteSnapshot frames payload as a versioned snapshot on w. For
// versions >= 2 the payload is followed by its CRC32C footer.
func WriteSnapshot(w io.Writer, version byte, payload any) error {
	if _, err := w.Write(append([]byte(snapshotMagic), version)); err != nil {
		return fmt.Errorf("trace: write snapshot header: %w", err)
	}
	if version < snapshotChecksummed {
		if err := gob.NewEncoder(w).Encode(payload); err != nil {
			return fmt.Errorf("trace: encode snapshot: %w", err)
		}
		return nil
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(payload); err != nil {
		return fmt.Errorf("trace: encode snapshot: %w", err)
	}
	var footer [4]byte
	binary.LittleEndian.PutUint32(footer[:], crc32.Checksum(buf.Bytes(), snapshotCRC))
	if _, err := w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("trace: write snapshot payload: %w", err)
	}
	if _, err := w.Write(footer[:]); err != nil {
		return fmt.Errorf("trace: write snapshot checksum: %w", err)
	}
	return nil
}

// ReadSnapshot decodes a snapshot from r into payload and returns the
// envelope's version byte. Callers own the version compatibility
// check; the codec validates the magic and, for versions >= 2, the
// payload checksum — corruption is reported as an error before gob
// ever sees the bytes.
func ReadSnapshot(r io.Reader, payload any) (byte, error) {
	hdr := make([]byte, len(snapshotMagic)+1)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, fmt.Errorf("trace: read snapshot header: %w", err)
	}
	if string(hdr[:len(snapshotMagic)]) != snapshotMagic {
		return 0, fmt.Errorf("trace: bad snapshot magic %q", hdr[:len(snapshotMagic)])
	}
	version := hdr[len(snapshotMagic)]
	if version < snapshotChecksummed {
		if err := gob.NewDecoder(r).Decode(payload); err != nil {
			return version, fmt.Errorf("trace: decode snapshot: %w", err)
		}
		return version, nil
	}
	body, err := io.ReadAll(r)
	if err != nil {
		return version, fmt.Errorf("trace: read snapshot payload: %w", err)
	}
	if len(body) < 4 {
		return version, fmt.Errorf("trace: snapshot truncated before its checksum footer")
	}
	gobBytes, footer := body[:len(body)-4], body[len(body)-4:]
	want := binary.LittleEndian.Uint32(footer)
	if got := crc32.Checksum(gobBytes, snapshotCRC); got != want {
		return version, fmt.Errorf("trace: snapshot checksum mismatch (have %08x, want %08x): file is corrupt or torn", got, want)
	}
	if err := gob.NewDecoder(bytes.NewReader(gobBytes)).Decode(payload); err != nil {
		return version, fmt.Errorf("trace: decode snapshot: %w", err)
	}
	return version, nil
}
