package trace

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Snapshot framing: a four-byte magic, one version byte, then a gob
// payload. Gob (not JSON) because simulator state legitimately holds
// ±Inf floats — a fresh machine frontier is -Inf, a finalized one +Inf
// — which JSON cannot encode. The version byte belongs to the
// envelope so readers can reject incompatible payloads before
// decoding them.
const snapshotMagic = "QCSN"

// WriteSnapshot frames payload as a versioned snapshot on w.
func WriteSnapshot(w io.Writer, version byte, payload any) error {
	if _, err := w.Write(append([]byte(snapshotMagic), version)); err != nil {
		return fmt.Errorf("trace: write snapshot header: %w", err)
	}
	if err := gob.NewEncoder(w).Encode(payload); err != nil {
		return fmt.Errorf("trace: encode snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot decodes a snapshot from r into payload and returns the
// envelope's version byte. Callers own the version compatibility
// check; the codec only validates the magic.
func ReadSnapshot(r io.Reader, payload any) (byte, error) {
	hdr := make([]byte, len(snapshotMagic)+1)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, fmt.Errorf("trace: read snapshot header: %w", err)
	}
	if string(hdr[:len(snapshotMagic)]) != snapshotMagic {
		return 0, fmt.Errorf("trace: bad snapshot magic %q", hdr[:len(snapshotMagic)])
	}
	version := hdr[len(snapshotMagic)]
	if err := gob.NewDecoder(r).Decode(payload); err != nil {
		return version, fmt.Errorf("trace: decode snapshot: %w", err)
	}
	return version, nil
}
