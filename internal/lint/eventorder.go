package lint

import (
	"go/ast"
	"go/types"
)

// EventOrder enforces the session's event-emission ownership: only the
// machineSim advance loop (and the session's owned delivery machinery,
// marked //qcloud:eventowner) may send on Event channels or append to
// trace.Trace records. Machines advance in parallel, but each
// machine's loop is a serial event source; an Event send or a trace
// append from an ad-hoc goroutine interleaves nondeterministically
// with the owned stream and breaks the per-machine ordering (and with
// it trace bit-identity).
//
// Mechanically: for every `go` statement, the analyzer inspects the
// launched body — a function literal inline, or the body of a
// same-package function started by name — and flags sends on channels
// of cloud.Event and appends to trace.Trace fields. Functions carrying
// //qcloud:eventowner in their doc comment are the sanctioned delivery
// path and are skipped. The check is one level deep by design: the
// owned paths are shallow, and deeper indirection through goroutines
// is itself a smell in this codebase.
var EventOrder = &Analyzer{
	Name:  "eventorder",
	Doc:   "flag Event-channel sends and trace.Trace appends from goroutines outside the machineSim advance loop",
	Scope: []string{"qcloud/internal/cloud", "qcloud/internal/journal", "qcloud/internal/tenant"},
	Run:   runEventOrder,
}

const (
	cloudPkgPath = "qcloud/internal/cloud"
	tracePkgPath = "qcloud/internal/trace"
)

func runEventOrder(p *Pass) error {
	// Resolve same-package function declarations so `go f()` can be
	// followed into f's body.
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj := p.TypesInfo.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	// A named function may be launched from several sites; report each
	// offending send once.
	reported := make(map[ast.Node]bool)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			switch fun := g.Call.Fun.(type) {
			case *ast.FuncLit:
				checkGoroutineBody(p, fun.Body, reported)
			default:
				var obj types.Object
				switch e := fun.(type) {
				case *ast.Ident:
					obj = p.TypesInfo.Uses[e]
				case *ast.SelectorExpr:
					obj = p.TypesInfo.Uses[e.Sel]
				}
				if fd := decls[obj]; fd != nil && fd.Body != nil && !hasDirective(fd.Doc, DirectiveEventOwner) {
					checkGoroutineBody(p, fd.Body, reported)
				}
			}
			return true
		})
	}
	return nil
}

// checkGoroutineBody flags Event sends and trace.Trace appends inside
// a body that runs on a non-owned goroutine.
func checkGoroutineBody(p *Pass, body *ast.BlockStmt, reported map[ast.Node]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			t := p.TypesInfo.TypeOf(n.Chan)
			if t == nil {
				return true
			}
			ch, ok := t.Underlying().(*types.Chan)
			if !ok || !isNamedType(ch.Elem(), cloudPkgPath, "Event") {
				return true
			}
			if !reported[n] {
				reported[n] = true
				p.Reportf(n.Pos(), "send on Event channel from a goroutine outside the machineSim advance loop; only the session's owned delivery path (//%s) may deliver events", DirectiveEventOwner)
			}
		case *ast.CallExpr:
			if !isBuiltin(p.TypesInfo, n.Fun, "append") || len(n.Args) == 0 {
				return true
			}
			sel, ok := n.Args[0].(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if !isNamedType(p.TypesInfo.TypeOf(sel.X), tracePkgPath, "Trace") {
				return true
			}
			if !reported[n] {
				reported[n] = true
				p.Reportf(n.Pos(), "append to trace.Trace field %s from a goroutine outside the machineSim advance loop breaks trace bit-identity", types.ExprString(n.Args[0]))
			}
		}
		return true
	})
}
