// Package lint implements qcloud-vet: project-specific static
// analyzers that mechanically enforce the repo's determinism and
// hot-path contracts. Every PR so far stakes correctness on invariants
// held only by convention — bit-identical traces at any worker count,
// per-(job,shot) RNG streams, a zero-alloc shot loop, event emission
// owned by the machineSim advance loop — and this package turns each
// into a diagnostic that fails review instead of (or before) a test.
//
// The suite is built on stdlib go/parser + go/types only, so it adds
// no module dependencies. The Analyzer/Pass split deliberately mirrors
// golang.org/x/tools/go/analysis so the analyzers could later be
// lifted onto that framework without rewriting their bodies.
//
// Analyzers (see DESIGN.md "Determinism invariants" for the catalog):
//
//   - maprange: no map iteration in deterministic packages unless the
//     keys are collected and sorted before use, or the loop is
//     annotated //qcloud:orderinvariant.
//   - wallclock: no time.Now/Since/Until (or timer constructors) in
//     simulation packages — all time comes from sim clocks.
//   - globalrand: no top-level math/rand draws — every stream derives
//     from a per-(job,shot) seed.
//   - noalloc: functions annotated //qcloud:noalloc may not contain
//     allocation-forcing constructs.
//   - eventorder: Event-channel sends and trace.Trace appends may not
//     happen on goroutines outside the session's owned delivery path
//     (//qcloud:eventowner).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Source directives recognized by the suite. Each is written as a
// comment of the form //qcloud:name (no space after //, like
// //go:noinline), either in a declaration's doc comment or on/above
// the annotated statement.
const (
	// DirectiveNoAlloc marks a function whose body must not contain
	// allocation-forcing constructs (checked by the noalloc analyzer;
	// pinned dynamically by the AllocsPerRun tests).
	DirectiveNoAlloc = "qcloud:noalloc"
	// DirectiveOrderInvariant marks a map-range loop whose effect does
	// not depend on iteration order (exact commutative folds such as
	// integer sums, or selections with a total-order tie-break).
	DirectiveOrderInvariant = "qcloud:orderinvariant"
	// DirectiveEventOwner marks a function that is part of the
	// session's owned event-delivery machinery and may therefore send
	// events from its own goroutine.
	DirectiveEventOwner = "qcloud:eventowner"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one named check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer (Name/Doc/Run over a Pass).
type Analyzer struct {
	Name string
	Doc  string
	// Scope restricts the analyzer to packages whose import path
	// matches one of these prefixes ("p" matches p and p/...). Empty
	// means every package. Scoping is applied by Vet, not by Run, so
	// fixture tests can exercise analyzers on arbitrary packages.
	Scope []string
	// IncludeTests extends the analyzer to _test.go files.
	IncludeTests bool
	Run          func(*Pass) error
}

// applies reports whether the analyzer's scope covers the import path.
func (a *Analyzer) applies(path string) bool {
	if len(a.Scope) == 0 {
		return true
	}
	// External test packages share their library package's contracts.
	path = strings.TrimSuffix(path, "_test")
	for _, p := range a.Scope {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// Pass carries one analyzer's view of one type-checked package. Files
// is already filtered down to non-test files unless the analyzer sets
// IncludeTests. The field set mirrors analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	pkg    *Pkg
	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether f is a _test.go file of the package.
func (p *Pass) IsTestFile(f *ast.File) bool { return p.pkg.TestFiles[f] }

// Analyzers returns the qcloud-vet suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{MapRange, Wallclock, GlobalRand, NoAlloc, EventOrder}
}

// DeterministicPackages are the packages whose outputs are pinned
// bit-identical for a fixed seed (golden trace hashes, worker-count
// equivalence suites). The maprange/wallclock/globalrand analyzers
// default to this set.
var DeterministicPackages = []string{
	"qcloud/internal/qsim",
	"qcloud/internal/cloud",
	"qcloud/internal/fault",
	"qcloud/internal/trace",
	"qcloud/internal/sched",
	"qcloud/internal/workload",
	"qcloud/internal/journal",
	"qcloud/internal/tenant",
	// The dispatcher's wire/queue-ordering layer feeds the
	// deterministic merge, so it carries the same contracts. Its parent
	// qcloud/internal/dispatch — the daemons themselves — is
	// deliberately NOT listed: lease deadlines and drain timeouts are
	// real wall-clock concerns ("p" matches p and p/..., so listing the
	// subpackage does not pull the parent in).
	"qcloud/internal/dispatch/wire",
}

// Vet runs every applicable analyzer over the packages and returns all
// diagnostics sorted by position. Analyzer errors (not diagnostics)
// abort the run.
func Vet(pkgs []*Pkg, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	seen := make(map[string]bool)
	collect := func(d Diagnostic) {
		// A package loaded twice (e.g. overlapping patterns) must not
		// double-report.
		key := d.String()
		if !seen[key] {
			seen[key] = true
			diags = append(diags, d)
		}
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if !a.applies(pkg.PkgPath) {
				continue
			}
			files := pkg.Files
			if !a.IncludeTests {
				files = nil
				for _, f := range pkg.Files {
					if !pkg.TestFiles[f] {
						files = append(files, f)
					}
				}
			}
			if len(files) == 0 {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				pkg:       pkg,
				report:    collect,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// hasDirective reports whether the comment group carries //qcloud:name.
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if isDirectiveComment(c.Text, name) {
			return true
		}
	}
	return false
}

// isDirectiveComment matches a single //qcloud:name comment, allowing
// trailing explanation after whitespace.
func isDirectiveComment(text, name string) bool {
	rest, ok := strings.CutPrefix(text, "//"+name)
	return ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t')
}

// directiveLines returns the set of source lines in f on which the
// directive appears, for statement-level directives (a statement is
// annotated when the directive sits on its own line or the line above).
func directiveLines(fset *token.FileSet, f *ast.File, name string) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if isDirectiveComment(c.Text, name) {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// stmtAnnotated reports whether a directive line coincides with pos's
// line or the line immediately above it.
func stmtAnnotated(fset *token.FileSet, lines map[int]bool, pos token.Pos) bool {
	l := fset.Position(pos).Line
	return lines[l] || lines[l-1]
}

// pkgNameOf resolves an expression to the *types.PkgName it denotes
// (nil if it is not a package qualifier).
func pkgNameOf(info *types.Info, e ast.Expr) *types.PkgName {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := info.Uses[id].(*types.PkgName)
	return pn
}

// isNamedType reports whether t (after pointer indirection) is the
// named type path.name.
func isNamedType(t types.Type, path, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == path
}

// enclosingFuncBody returns the body of the innermost function
// declaration or literal on the node stack (nil if at file scope).
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// inspectWithStack walks f like ast.Inspect while maintaining the
// ancestor stack (excluding n itself) for each visited node.
func inspectWithStack(f *ast.File, visit func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := visit(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}
