package lint_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"qcloud/internal/lint"
)

// The fixture tests are golden-diagnostic tests in the style of
// x/tools' analysistest: each testdata/src/<analyzer>_broken package
// marks every line that must produce a diagnostic with a
// `// want `regex`` comment, and its <analyzer>_fixed twin carries no
// marks and must stay completely quiet. Matching is bidirectional —
// an unmarked diagnostic and an unmatched mark both fail.

var (
	loaderOnce sync.Once
	loaderVal  *lint.Loader
	loaderErr  error
)

// sharedLoader reuses one Loader (and its source-importer cache)
// across the fixture tests; each LoadDir only re-type-checks the
// fixture files themselves.
func sharedLoader(t *testing.T) *lint.Loader {
	t.Helper()
	loaderOnce.Do(func() { loaderVal, loaderErr = lint.NewLoader("") })
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loaderVal
}

var wantRE = regexp.MustCompile("// want `([^`]*)`")

// fixtureWant is one expected diagnostic: a regexp anchored to a
// fixture file and line.
type fixtureWant struct {
	file string
	line int
	re   *regexp.Regexp
}

func collectWants(t *testing.T, dir string) []fixtureWant {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var wants []fixtureWant
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("reading fixture %s: %v", e.Name(), err)
		}
		for i, ln := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(ln)
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", e.Name(), i+1, m[1], err)
			}
			wants = append(wants, fixtureWant{file: e.Name(), line: i + 1, re: re})
		}
	}
	return wants
}

// checkFixture loads one testdata package under the claimed import
// path (so Vet's scope filtering is exercised too), runs the full
// suite, and matches diagnostics against the want marks exactly.
func checkFixture(t *testing.T, fixture, pkgPath string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	pkg, err := sharedLoader(t).LoadDir(pkgPath, dir)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", fixture, err)
	}
	diags, err := lint.Vet([]*lint.Pkg{pkg}, lint.Analyzers())
	if err != nil {
		t.Fatalf("Vet(%s): %v", fixture, err)
	}
	wants := collectWants(t, dir)
	matched := make([]bool, len(wants))
	for _, d := range diags {
		file := filepath.Base(d.Pos.Filename)
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != file || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic at %s:%d: [%s] %s",
				fixture, file, d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s: missing diagnostic at %s:%d matching %q",
				fixture, w.file, w.line, w.re)
		}
	}
}

// The claimed import paths put each fixture inside (or outside) the
// analyzers' real scopes, so these tests cover the scope filter as
// well as the analyzer bodies.
func TestMapRangeFixtures(t *testing.T) {
	checkFixture(t, "maprange_broken", "qcloud/internal/qsim/lintfixture")
	checkFixture(t, "maprange_fixed", "qcloud/internal/qsim/lintfixture")
}

func TestWallclockFixtures(t *testing.T) {
	checkFixture(t, "wallclock_broken", "qcloud/internal/backend/lintfixture")
	checkFixture(t, "wallclock_fixed", "qcloud/internal/backend/lintfixture")
}

func TestGlobalRandFixtures(t *testing.T) {
	checkFixture(t, "globalrand_broken", "qcloud/internal/workload/lintfixture")
	checkFixture(t, "globalrand_fixed", "qcloud/internal/workload/lintfixture")
}

func TestNoAllocFixtures(t *testing.T) {
	// noalloc is annotation-gated and unscoped; a path outside every
	// Scope list proves it still runs.
	checkFixture(t, "noalloc_broken", "qcloud/lintfixture")
	checkFixture(t, "noalloc_fixed", "qcloud/lintfixture")
}

func TestEventOrderFixtures(t *testing.T) {
	checkFixture(t, "eventorder_broken", "qcloud/internal/cloud/lintfixture")
	checkFixture(t, "eventorder_fixed", "qcloud/internal/cloud/lintfixture")
}

// The tenant twin pins the broker's record-sink contract: machine
// goroutines may only append into eventowner-marked per-machine
// buffers; the merge into the shared trace belongs to the driver
// goroutine. Claiming qcloud/internal/tenant/... also proves the
// scope extension took.
func TestEventOrderTenantFixtures(t *testing.T) {
	checkFixture(t, "eventorder_tenant_broken", "qcloud/internal/tenant/lintfixture")
	checkFixture(t, "eventorder_tenant_fixed", "qcloud/internal/tenant/lintfixture")
}

// The dispatch twin pins the service-decomposition boundary: the
// wire/queue-ordering layer (qcloud/internal/dispatch/wire) carries
// the deterministic-package contracts, while the daemon layer above
// it (qcloud/internal/dispatch) keeps its wall clock for lease
// deadlines and drain timeouts.
func TestWallclockDispatchFixtures(t *testing.T) {
	checkFixture(t, "wallclock_dispatch_broken", "qcloud/internal/dispatch/wire/lintfixture")
	checkFixture(t, "wallclock_dispatch_fixed", "qcloud/internal/dispatch/wire/lintfixture")
}

// The same broken source claimed on the daemon side of the boundary
// must go quiet: listing the wire subpackage in DeterministicPackages
// must not pull its parent qcloud/internal/dispatch into scope.
func TestWallclockDispatchDaemonSideQuiet(t *testing.T) {
	pkg, err := sharedLoader(t).LoadDir("qcloud/internal/dispatch/lintfixture", filepath.Join("testdata", "src", "wallclock_dispatch_broken"))
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	diags, err := lint.Vet([]*lint.Pkg{pkg}, lint.Analyzers())
	if err != nil {
		t.Fatalf("Vet: %v", err)
	}
	for _, d := range diags {
		t.Errorf("daemon-side package still diagnosed: %s", d)
	}
}

// TestScopeFiltering proves a broken fixture goes quiet when its
// claimed path is outside the analyzer's scope — the wallclock fixture
// under an unscoped path must yield only diagnostics from unscoped
// analyzers (none, for these sources).
func TestScopeFiltering(t *testing.T) {
	pkg, err := sharedLoader(t).LoadDir("example.com/elsewhere", filepath.Join("testdata", "src", "wallclock_broken"))
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	diags, err := lint.Vet([]*lint.Pkg{pkg}, lint.Analyzers())
	if err != nil {
		t.Fatalf("Vet: %v", err)
	}
	for _, d := range diags {
		t.Errorf("out-of-scope package still diagnosed: %s", d)
	}
}

func TestSuiteComplete(t *testing.T) {
	want := []string{"maprange", "wallclock", "globalrand", "noalloc", "eventorder"}
	got := lint.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
	}
}

// TestVetRepoClean runs the full suite over the whole module — the
// same gate CI's lint job enforces — so `go test ./...` cannot pass
// with a determinism violation anywhere in the tree.
func TestVetRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module vet is slow")
	}
	pkgs, err := sharedLoader(t).Load("./...")
	if err != nil {
		t.Fatalf("Load ./...: %v", err)
	}
	diags, err := lint.Vet(pkgs, lint.Analyzers())
	if err != nil {
		t.Fatalf("Vet: %v", err)
	}
	for _, d := range diags {
		t.Errorf("repo not vet-clean: %s", d)
	}
}
