package lint

import (
	"go/ast"
)

// Wallclock flags reads of the wall clock in simulation packages,
// where every instant must derive from the simulated clock (config
// windows, machine frontiers, trace timestamps). A stray time.Now in a
// sim path makes replays diverge run-to-run — the exact class of bug
// the golden trace hashes can only catch after the fact.
//
// The check includes _test.go files: test inputs built from time.Now
// are unreproducible, so failures cannot be replayed. A test package
// with a legitimate need can be listed in wallclockTestExemptions —
// which is intentionally empty and should stay that way.
var Wallclock = &Analyzer{
	Name:         "wallclock",
	Doc:          "flag time.Now/Since/Until and timer constructors in simulation packages; all time must come from sim clocks",
	Scope:        append([]string{"qcloud/internal/backend"}, DeterministicPackages...),
	IncludeTests: true,
	Run:          runWallclock,
}

// wallclockTestExemptions lists test packages (by import path) allowed
// to read the wall clock. Keep it empty: fix the test to use a fixed
// timestamp instead of adding an entry.
var wallclockTestExemptions = map[string]bool{}

// wallclockForbidden are the package-level time functions that read or
// schedule off the wall clock.
var wallclockForbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

func runWallclock(p *Pass) error {
	for _, f := range p.Files {
		if p.IsTestFile(f) && wallclockTestExemptions[p.Pkg.Path()] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pn := pkgNameOf(p.TypesInfo, sel.X)
			if pn == nil || pn.Imported().Path() != "time" {
				return true
			}
			if !wallclockForbidden[sel.Sel.Name] {
				return true
			}
			p.Reportf(sel.Pos(), "time.%s reads the wall clock in a simulation package; take the instant as a parameter or derive it from the sim clock",
				sel.Sel.Name)
			return true
		})
	}
	return nil
}
