// Package fixture is the fixed twin of globalrand_broken: every draw
// comes from an explicitly-seeded local source, so the analyzer must
// stay quiet.
package fixture

import "math/rand"

func roll(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}
