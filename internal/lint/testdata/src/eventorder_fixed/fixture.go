// Package fixture is the fixed twin of eventorder_broken: emission
// happens on the calling goroutine (the advance-loop pattern) or in a
// sanctioned //qcloud:eventowner delivery function, so the analyzer
// must stay quiet.
package fixture

import (
	"qcloud/internal/cloud"
	"qcloud/internal/trace"
)

// advance emits from the calling goroutine — the advance loop itself —
// and hands asynchronous delivery to the sanctioned path.
func advance(ch chan cloud.Event, ev cloud.Event, tr *trace.Trace, j *trace.Job) {
	ch <- ev
	tr.Jobs = append(tr.Jobs, j)
	go deliver(ch, ev)
}

// deliver is the session's owned asynchronous delivery path.
//
//qcloud:eventowner
func deliver(ch chan cloud.Event, ev cloud.Event) {
	ch <- ev
}

// retryLater mirrors the fault-recovery shape: the advance loop emits
// the retry event inline, then hands its matching requeue announcement
// to a sanctioned delivery goroutine once the backoff elapses.
func retryLater(ch chan cloud.Event, retry, requeue cloud.Event) {
	ch <- retry
	go deliverRequeue(ch, requeue)
}

// deliverRequeue is the owned retry-delivery path: requeue events are
// paired with their retry and may be announced asynchronously.
//
//qcloud:eventowner
func deliverRequeue(ch chan cloud.Event, ev cloud.Event) {
	ch <- ev
}
