// Package fixture is the fixed twin of eventorder_broken: emission
// happens on the calling goroutine (the advance-loop pattern) or in a
// sanctioned //qcloud:eventowner delivery function, so the analyzer
// must stay quiet.
package fixture

import (
	"qcloud/internal/cloud"
	"qcloud/internal/trace"
)

// advance emits from the calling goroutine — the advance loop itself —
// and hands asynchronous delivery to the sanctioned path.
func advance(ch chan cloud.Event, ev cloud.Event, tr *trace.Trace, j *trace.Job) {
	ch <- ev
	tr.Jobs = append(tr.Jobs, j)
	go deliver(ch, ev)
}

// deliver is the session's owned asynchronous delivery path.
//
//qcloud:eventowner
func deliver(ch chan cloud.Event, ev cloud.Event) {
	ch <- ev
}
