// Package fixture pins the service-decomposition lint boundary from
// the inside: queue-ordering code that feeds the deterministic merge
// (claimed under qcloud/internal/dispatch/wire/...) may not read the
// wall clock — eligibility must be decided against an instant the
// caller passes in. The same source claimed under the daemon package
// qcloud/internal/dispatch/... must stay quiet (see the boundary test).
package fixture

import "time"

type unit struct {
	seq       int64
	notBefore time.Time
}

// eligible selects the units whose backoff gate has opened — but reads
// the clock itself, so two replicas of the merge layer could order the
// same queue differently.
func eligible(us []unit) []unit {
	var out []unit
	for _, u := range us {
		if !u.notBefore.After(time.Now()) { // want `time.Now reads the wall clock in a simulation package`
			out = append(out, u)
		}
	}
	return out
}

// leaseDeadline schedules off the wall clock in the deterministic
// layer; deadlines belong to the daemon package.
func leaseDeadline(lease time.Duration) <-chan time.Time {
	return time.After(lease) // want `time.After reads the wall clock in a simulation package`
}
