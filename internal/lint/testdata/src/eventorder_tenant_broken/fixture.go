// Package fixture is the deliberately-broken tenant eventorder
// fixture: a broker-shaped drain that merges per-machine record
// buffers into the tenant trace from ad-hoc goroutines (and forwards
// tenant events the same way), so each site must be flagged.
package fixture

import (
	"qcloud/internal/cloud"
	"qcloud/internal/trace"
)

// drainAsync is the record-sink anti-pattern: one goroutine per
// machine buffer, all appending into the shared trace concurrently.
// The merge order then depends on goroutine scheduling, not on the
// deterministic per-machine event order.
func drainAsync(tr *trace.Trace, perMach [][]*trace.Job) {
	for _, buf := range perMach {
		buf := buf
		go func() {
			for _, j := range buf {
				tr.Jobs = append(tr.Jobs, j) // want `append to trace.Trace field tr.Jobs from a goroutine`
			}
		}()
	}
}

// forward is started as a goroutine below and carries no eventowner
// directive, so its send is flagged at the send site.
func forward(ch chan cloud.Event, ev cloud.Event) {
	ch <- ev // want `send on Event channel from a goroutine outside the machineSim advance loop`
}

// observe relays broker admission events to a subscriber channel from
// an unsanctioned goroutine.
func observe(ch chan cloud.Event, ev cloud.Event) {
	go forward(ch, ev)
}
