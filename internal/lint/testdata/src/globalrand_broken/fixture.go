// Package fixture is the deliberately-broken globalrand fixture:
// every draw below goes through the shared process-global source, so
// the sequence depends on every other caller in the process.
package fixture

import "math/rand"

func roll() int {
	rand.Seed(99)       // want `rand.Seed uses the process-global source`
	return rand.Intn(6) // want `rand.Intn uses the process-global source`
}

var pick = rand.Float64 // want `rand.Float64 uses the process-global source`
