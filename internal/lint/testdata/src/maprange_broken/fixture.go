// Package fixture is the deliberately-broken maprange fixture: every
// loop below iterates a map without sorting, and none carries the
// orderinvariant directive, so each must be flagged.
package fixture

// sumWeights folds floats in map order — the exact bug class the
// analyzer exists for (float addition is not associative).
func sumWeights(m map[string]float64) float64 {
	t := 0.0
	for _, v := range m { // want `range over map m iterates in nondeterministic order`
		t += v
	}
	return t
}

// collectUnsorted gathers keys but never sorts them, so the
// collect-keys-then-sort escape hatch does not apply.
func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `range over map m iterates in nondeterministic order`
		keys = append(keys, k)
	}
	return keys
}

// emit writes map entries straight to an output slice.
func emit(m map[int]int, out []int) []int {
	for k, v := range m { // want `range over map m iterates in nondeterministic order`
		out = append(out, k, v)
	}
	return out
}
