// Package fixture is the fixed twin of noalloc_broken: the annotated
// kernels reuse caller-owned buffers and only move pointer-shaped
// values into interfaces, so the analyzer must stay quiet.
package fixture

//qcloud:noalloc
func axpy(dst, xs []float64, a float64) []float64 {
	// Array values are stack-allocated; only slice/map literals force
	// a heap allocation.
	var acc [4]float64
	for i, x := range xs {
		acc[i&3] += a * x
	}
	dst = append(dst[:0], xs...) // self-append reuse form over preallocated capacity
	dst = append(dst, acc[0], acc[1], acc[2], acc[3])
	return dst
}

// describe moves pointer-shaped values into interfaces: pointers and
// funcs fit the interface data word without boxing.
//
//qcloud:noalloc
func describe(p *int, f func() int) (a, b interface{}) {
	a = p
	b = f
	return a, b
}

// unannotated functions may allocate freely.
func unannotated(n int) []float64 { return make([]float64, n) }
