// Package fixture is the fixed twin of wallclock_dispatch_broken: the
// wire/queue-ordering layer takes every instant as a parameter, so the
// same sealed queue orders identically on any replica, and wall-clock
// scheduling stays in the daemon package above.
package fixture

import "time"

type unit struct {
	seq       int64
	notBefore time.Time
}

// eligible decides against a caller-supplied instant: the daemon reads
// its clock once and the deterministic layer only compares.
func eligible(us []unit, now time.Time) []unit {
	var out []unit
	for _, u := range us {
		if !u.notBefore.After(now) {
			out = append(out, u)
		}
	}
	return out
}

// deadlineAfter derives a lease deadline from the supplied instant;
// the timer that enforces it belongs to the daemon.
func deadlineAfter(now time.Time, lease time.Duration) time.Time {
	return now.Add(lease)
}
