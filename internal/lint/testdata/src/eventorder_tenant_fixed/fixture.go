// Package fixture is the fixed twin of eventorder_tenant_broken: the
// broker's record sink appends into per-machine buffers from the
// machine goroutines (the sanctioned //qcloud:eventowner path) and the
// merge into the shared trace happens on the driver goroutine between
// advances, so the analyzer must stay quiet.
package fixture

import (
	"qcloud/internal/cloud"
	"qcloud/internal/trace"
)

// sink is the broker's per-machine record hook: machine goroutines
// append into their own buffer, never into the shared trace.
//
//qcloud:eventowner per-machine append buffer drained on the driver goroutine
func sink(perMach [][]*trace.Job, machine int, j *trace.Job) {
	perMach[machine] = append(perMach[machine], j)
}

// drain merges the per-machine buffers on the calling (driver)
// goroutine between AdvanceTo calls — the advance-loop pattern — so
// the trace append is owned and ordered.
func drain(tr *trace.Trace, perMach [][]*trace.Job) {
	for mi, buf := range perMach {
		tr.Jobs = append(tr.Jobs, buf...)
		perMach[mi] = buf[:0]
	}
	go startSink(perMach)
}

// startSink is the session's owned delivery machinery for the sink
// path and may run on its own goroutine.
//
//qcloud:eventowner
func startSink(perMach [][]*trace.Job) {
	_ = perMach
}

// relay emits broker events from the calling goroutine and hands
// asynchronous delivery to the sanctioned path.
func relay(ch chan cloud.Event, ev cloud.Event) {
	ch <- ev
	go deliver(ch, ev)
}

// deliver is the broker's owned asynchronous delivery path.
//
//qcloud:eventowner
func deliver(ch chan cloud.Event, ev cloud.Event) {
	ch <- ev
}
