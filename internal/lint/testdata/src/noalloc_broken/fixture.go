// Package fixture is the deliberately-broken noalloc fixture: kernel
// is annotated, so every allocation-forcing construct in its body
// must produce exactly one diagnostic.
package fixture

var sink interface{}

func use(v interface{}) { sink = v }

func spin() {}

//qcloud:noalloc
func kernel(dst, src []float64, s string, n int) []float64 {
	buf := make([]float64, n)      // want `make in //qcloud:noalloc function kernel allocates`
	p := new(int)                  // want `new in //qcloud:noalloc function kernel allocates`
	w := []float64{1, 2}           // want `slice literal in //qcloud:noalloc function kernel allocates`
	m := map[int]int{}             // want `map literal in //qcloud:noalloc function kernel allocates`
	dst = append(src, w...)        // want `append into a non-reused slice in //qcloud:noalloc function kernel`
	f := func() int { return n }   // want `closure literal in //qcloud:noalloc function kernel`
	go spin()                      // want `go statement in //qcloud:noalloc function kernel`
	use(n)                         // want `converting int to interface in //qcloud:noalloc function kernel heap-boxes`
	var box interface{} = [2]int{} // want `converting \[2\]int to interface in //qcloud:noalloc function kernel heap-boxes`
	t := s + s                     // want `string concatenation in //qcloud:noalloc function kernel allocates`
	bs := []byte(s)                // want `string/\[\]byte conversion in //qcloud:noalloc function kernel`
	_ = box
	_ = buf[0] + float64(*p) + float64(m[n]) + float64(f()) + float64(len(t)) + float64(len(bs))
	return dst
}
