// Package fixture is the deliberately-broken eventorder fixture: it
// launches goroutines that emit session events and mutate traces
// outside the owned delivery path, so each site must be flagged.
package fixture

import (
	"qcloud/internal/cloud"
	"qcloud/internal/trace"
)

func leak(ch chan cloud.Event, ev cloud.Event, tr *trace.Trace, j *trace.Job) {
	go func() {
		ch <- ev                     // want `send on Event channel from a goroutine outside the machineSim advance loop`
		tr.Jobs = append(tr.Jobs, j) // want `append to trace.Trace field tr.Jobs from a goroutine`
	}()
	go relay(ch, ev)
}

// relay is started as a goroutine above and carries no eventowner
// directive, so its send is flagged at the send site.
func relay(ch chan cloud.Event, ev cloud.Event) {
	ch <- ev // want `send on Event channel from a goroutine outside the machineSim advance loop`
}
