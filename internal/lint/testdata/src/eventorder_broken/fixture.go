// Package fixture is the deliberately-broken eventorder fixture: it
// launches goroutines that emit session events and mutate traces
// outside the owned delivery path, so each site must be flagged.
package fixture

import (
	"qcloud/internal/cloud"
	"qcloud/internal/trace"
)

func leak(ch chan cloud.Event, ev cloud.Event, tr *trace.Trace, j *trace.Job) {
	go func() {
		ch <- ev                     // want `send on Event channel from a goroutine outside the machineSim advance loop`
		tr.Jobs = append(tr.Jobs, j) // want `append to trace.Trace field tr.Jobs from a goroutine`
	}()
	go relay(ch, ev)
}

// relay is started as a goroutine above and carries no eventowner
// directive, so its send is flagged at the send site.
func relay(ch chan cloud.Event, ev cloud.Event) {
	ch <- ev // want `send on Event channel from a goroutine outside the machineSim advance loop`
}

// retryLeak is the fault-recovery anti-pattern: announcing a retry's
// requeue from an unsanctioned goroutine when the backoff timer fires.
func retryLeak(ch chan cloud.Event, retry, requeue cloud.Event) {
	ch <- retry
	go announceRequeue(ch, requeue)
}

// announceRequeue emits requeue events asynchronously but carries no
// eventowner directive, so the send must be flagged.
func announceRequeue(ch chan cloud.Event, ev cloud.Event) {
	ch <- ev // want `send on Event channel from a goroutine outside the machineSim advance loop`
}
