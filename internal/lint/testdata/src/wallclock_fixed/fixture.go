// Package fixture is the fixed twin of wallclock_broken: every
// instant is a parameter or a fixed literal, so the analyzer must
// stay quiet.
package fixture

import "time"

func stamp(now time.Time) time.Time { return now }

func age(now, t0 time.Time) time.Duration { return now.Sub(t0) }

func window(start time.Time, d time.Duration) time.Time {
	return start.Add(d)
}
