package fixture

import (
	"testing"
	"time"
)

// TestStamp uses a fixed timestamp, so the test replays bit-for-bit.
func TestStamp(t *testing.T) {
	ts := time.Date(2021, 4, 1, 9, 30, 0, 0, time.UTC)
	if stamp(ts) != ts {
		t.Fatal("stamp must be identity")
	}
}
