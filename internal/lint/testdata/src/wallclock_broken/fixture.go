// Package fixture is the deliberately-broken wallclock fixture: both
// non-test and _test.go uses of the wall clock must be flagged.
package fixture

import "time"

func stamp() time.Time {
	return time.Now() // want `time.Now reads the wall clock in a simulation package`
}

func age(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since reads the wall clock in a simulation package`
}

func deadline(d time.Duration) <-chan time.Time {
	return time.After(d) // want `time.After reads the wall clock in a simulation package`
}
