package fixture

import (
	"testing"
	"time"
)

// TestStamp builds its input from the wall clock, so a failure cannot
// be replayed — the analyzer covers test files too.
func TestStamp(t *testing.T) {
	t0 := time.Now() // want `time.Now reads the wall clock in a simulation package`
	if stamp().Before(t0.Add(-time.Hour)) {
		t.Fatal("impossible")
	}
}
