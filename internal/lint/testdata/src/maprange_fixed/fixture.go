// Package fixture is the fixed twin of maprange_broken: every loop is
// either key-sorted, provably order-invariant, or not a map range at
// all, so the analyzer must stay quiet.
package fixture

import "sort"

// collectSorted uses the collect-keys-then-sort idiom the analyzer
// recognizes structurally.
func collectSorted(m map[string]float64) float64 {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	t := 0.0
	for _, k := range keys {
		t += m[k]
	}
	return t
}

// total is an exact commutative fold: per-key integer addition cannot
// depend on iteration order, which the directive asserts.
func total(m map[string]int) int {
	t := 0
	//qcloud:orderinvariant
	for _, v := range m {
		t += v
	}
	return t
}

// overSlice ranges a slice, which iterates in index order.
func overSlice(xs []float64) float64 {
	t := 0.0
	for _, v := range xs {
		t += v
	}
	return t
}
