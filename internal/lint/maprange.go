package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapRange flags `range` over a map in the deterministic packages. Go
// randomizes map iteration order, so any map range that feeds a trace,
// an event stream, a float fold, or any other pinned output silently
// breaks bit-identity. Two escape hatches keep honest code quiet:
//
//   - the collect-keys-then-sort idiom (the loop body only appends the
//     key to a slice that is later passed to sort/slices in the same
//     function) is recognized structurally;
//   - loops whose effect provably cannot depend on order (exact
//     commutative folds like integer sums, selections with a
//     total-order tie-break) carry //qcloud:orderinvariant with a
//     justification.
var MapRange = &Analyzer{
	Name:  "maprange",
	Doc:   "flag map iteration in deterministic packages unless keys are sorted before use or the loop is annotated //" + DirectiveOrderInvariant,
	Scope: DeterministicPackages,
	Run:   runMapRange,
}

func runMapRange(p *Pass) error {
	for _, f := range p.Files {
		annotated := directiveLines(p.Fset, f, DirectiveOrderInvariant)
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if stmtAnnotated(p.Fset, annotated, rs.Pos()) {
				return true
			}
			if sortedKeyCollection(p, rs, enclosingFuncBody(stack)) {
				return true
			}
			p.Reportf(rs.Pos(), "range over map %s iterates in nondeterministic order; sort the keys before use or annotate the loop //%s",
				types.ExprString(rs.X), DirectiveOrderInvariant)
			return true
		})
	}
	return nil
}

// sortedKeyCollection recognizes the collect-keys-then-sort idiom: the
// loop body is exactly `ks = append(ks, k)` for the range key k, and a
// later statement in the same function passes ks to a sort/slices
// sorting call. The subsequent iteration over the sorted slice is then
// deterministic by construction.
func sortedKeyCollection(p *Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt) bool {
	if funcBody == nil || rs.Body == nil || len(rs.Body.List) != 1 {
		return false
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	asg, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	dst, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || !isBuiltin(p.TypesInfo, call.Fun, "append") || len(call.Args) < 2 {
		return false
	}
	arg0, ok := call.Args[0].(*ast.Ident)
	if !ok || p.TypesInfo.ObjectOf(arg0) != p.TypesInfo.ObjectOf(dst) {
		return false
	}
	keyObj := p.TypesInfo.ObjectOf(key)
	appendsKey := false
	for _, a := range call.Args[1:] {
		if id, ok := a.(*ast.Ident); ok && p.TypesInfo.ObjectOf(id) == keyObj {
			appendsKey = true
		}
	}
	if !appendsKey {
		return false
	}
	// Look for a later sort of dst anywhere in the enclosing function.
	dstObj := p.TypesInfo.ObjectOf(dst)
	sorted := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if sorted {
			return false
		}
		c, ok := n.(*ast.CallExpr)
		if !ok || c.Pos() <= rs.End() {
			return true
		}
		sel, ok := c.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pn := pkgNameOf(p.TypesInfo, sel.X)
		if pn == nil {
			return true
		}
		switch pn.Imported().Path() {
		case "sort":
			// Every sort.* entry point orders its argument.
		case "slices":
			if !strings.HasPrefix(sel.Sel.Name, "Sort") {
				return true
			}
		default:
			return true
		}
		for _, a := range c.Args {
			if mentionsObject(p.TypesInfo, a, dstObj) {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

// isBuiltin reports whether e denotes the named Go builtin.
func isBuiltin(info *types.Info, e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// mentionsObject reports whether expression e references obj.
func mentionsObject(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}
