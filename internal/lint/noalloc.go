package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc checks functions annotated //qcloud:noalloc — the PR 2/3
// hot-path kernels whose steady-state execution the AllocsPerRun tests
// pin at zero allocations. The analyzer flags allocation-forcing
// constructs at review time, so a stray make or closure fails vet
// before it fails the benchmark suite:
//
//   - make / new calls;
//   - slice and map composite literals (array and struct literals are
//     stack values and stay legal);
//   - append, unless in the self-append reuse form x = append(x, ...)
//     (or x = append(x[:0], ...)) over preallocated capacity;
//   - function literals (closures capture their environment on the
//     heap — the reason the fused executor takes Mat4 by pointer);
//   - go statements;
//   - interface conversions of non-pointer-shaped values (explicit
//     conversions, assignments, and call arguments), which box the
//     value; pointers, funcs, maps and channels fit the interface word
//     and stay legal;
//   - string([]byte) / []byte(string) conversions and string
//     concatenation.
//
// The check is intraprocedural by design: each annotated function
// vouches for its own body, and the dynamic AllocsPerRun pin remains
// the backstop for everything it calls.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "flag allocation-forcing constructs inside functions annotated //" + DirectiveNoAlloc,
	Run:  runNoAlloc,
}

func runNoAlloc(p *Pass) error {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, DirectiveNoAlloc) {
				continue
			}
			checkNoAlloc(p, fd)
		}
	}
	return nil
}

func checkNoAlloc(p *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	// Self-appends are validated where they are assigned, so the plain
	// CallExpr visit must skip the ones already vetted.
	selfAppend := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok && isBuiltin(p.TypesInfo, call.Fun, "append") {
					if isSelfAppend(n.Lhs[0], call) {
						selfAppend[call] = true
					}
				}
			}
			checkInterfaceAssign(p, name, n.Lhs, n.Rhs)
		case *ast.ValueSpec:
			if n.Type != nil && len(n.Values) > 0 {
				t := p.TypesInfo.TypeOf(n.Type)
				for _, v := range n.Values {
					reportIfBoxed(p, name, t, v)
				}
			}
		case *ast.GoStmt:
			p.Reportf(n.Pos(), "go statement in //%s function %s allocates a goroutine", DirectiveNoAlloc, name)
		case *ast.FuncLit:
			p.Reportf(n.Pos(), "closure literal in //%s function %s captures its environment on the heap", DirectiveNoAlloc, name)
			return false
		case *ast.CompositeLit:
			t := p.TypesInfo.TypeOf(n)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					p.Reportf(n.Pos(), "slice literal in //%s function %s allocates; reuse a preallocated buffer", DirectiveNoAlloc, name)
				case *types.Map:
					p.Reportf(n.Pos(), "map literal in //%s function %s allocates", DirectiveNoAlloc, name)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := p.TypesInfo.TypeOf(n); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						p.Reportf(n.Pos(), "string concatenation in //%s function %s allocates", DirectiveNoAlloc, name)
					}
				}
			}
		case *ast.CallExpr:
			checkNoAllocCall(p, name, n, selfAppend)
		}
		return true
	})
}

func checkNoAllocCall(p *Pass, name string, call *ast.CallExpr, selfAppend map[*ast.CallExpr]bool) {
	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := p.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				p.Reportf(call.Pos(), "make in //%s function %s allocates; hoist the buffer to the worker and reuse it", DirectiveNoAlloc, name)
			case "new":
				p.Reportf(call.Pos(), "new in //%s function %s allocates", DirectiveNoAlloc, name)
			case "append":
				if !selfAppend[call] {
					p.Reportf(call.Pos(), "append into a non-reused slice in //%s function %s allocates on growth; use the x = append(x, ...) reuse form over preallocated capacity", DirectiveNoAlloc, name)
				}
			}
			return
		}
	}
	// Explicit conversions: T(x).
	if tv, ok := p.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := p.TypesInfo.TypeOf(call.Args[0])
		if isInterface(dst) {
			reportIfBoxed(p, name, dst, call.Args[0])
			return
		}
		if isStringByteConversion(dst, src) {
			p.Reportf(call.Pos(), "string/[]byte conversion in //%s function %s copies and allocates", DirectiveNoAlloc, name)
		}
		return
	}
	// Ordinary calls: arguments passed as interface parameters box
	// non-pointer-shaped values.
	sig, ok := p.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
			// f(xs...) passes the slice itself; nothing boxes.
			continue
		}
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if pt != nil && isInterface(pt) {
			reportIfBoxed(p, name, pt, arg)
		}
	}
}

// checkInterfaceAssign flags assignments that box a concrete value
// into an interface-typed destination.
func checkInterfaceAssign(p *Pass, name string, lhs, rhs []ast.Expr) {
	if len(lhs) != len(rhs) {
		return
	}
	for i := range lhs {
		t := p.TypesInfo.TypeOf(lhs[i])
		if t != nil && isInterface(t) {
			reportIfBoxed(p, name, t, rhs[i])
		}
	}
}

// reportIfBoxed reports a conversion of expression e to interface type
// dst when it would heap-box the value. Interface-typed sources move
// without boxing; pointer-shaped values (pointers, funcs, maps,
// channels, unsafe pointers) fit the interface data word directly.
func reportIfBoxed(p *Pass, name string, dst types.Type, e ast.Expr) {
	if !isInterface(dst) {
		return
	}
	src := p.TypesInfo.TypeOf(e)
	if src == nil || isInterface(src) {
		return
	}
	if b, ok := src.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	switch src.Underlying().(type) {
	case *types.Pointer, *types.Signature, *types.Map, *types.Chan:
		return
	}
	p.Reportf(e.Pos(), "converting %s to interface in //%s function %s heap-boxes the value", src.String(), DirectiveNoAlloc, name)
}

func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// isStringByteConversion reports string<->[]byte/[]rune conversions.
func isStringByteConversion(dst, src types.Type) bool {
	if dst == nil || src == nil {
		return false
	}
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteSlice := func(t types.Type) bool {
		sl, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := sl.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(dst) && isByteSlice(src)) || (isByteSlice(dst) && isStr(src))
}

// isSelfAppend reports the x = append(x, ...) reuse form, also
// accepting a reslice of the destination (x = append(x[:0], ...)).
func isSelfAppend(lhs ast.Expr, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	arg0 := call.Args[0]
	if sl, ok := arg0.(*ast.SliceExpr); ok {
		arg0 = sl.X
	}
	return types.ExprString(lhs) == types.ExprString(arg0)
}
