package lint

import (
	"go/ast"
	"go/types"
)

// GlobalRand flags uses of the top-level math/rand (and math/rand/v2)
// functions in the deterministic packages. Those draw from a shared
// ambient source: the draw sequence then depends on goroutine
// interleaving and on every other caller in the process, which breaks
// the per-(job,shot) stream contract (each shot's RNG derives from
// splitmix64(base, shot) and replays identically at any worker count —
// see qsim/rngsource.go). Constructors (rand.New, rand.NewSource, ...)
// are allowed; only ambient draws and rand.Seed are not.
var GlobalRand = &Analyzer{
	Name:  "globalrand",
	Doc:   "flag top-level math/rand draws and rand.Seed in deterministic packages; derive per-(job,shot) streams instead",
	Scope: append([]string{"qcloud/internal/backend"}, DeterministicPackages...),
	Run:   runGlobalRand,
}

// globalRandAllowed are math/rand package-level functions that do not
// touch the global source.
var globalRandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runGlobalRand(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pn := pkgNameOf(p.TypesInfo, sel.X)
			if pn == nil {
				return true
			}
			path := pn.Imported().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			fn, ok := p.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
			if !ok || globalRandAllowed[fn.Name()] {
				return true
			}
			p.Reportf(sel.Pos(), "%s.%s uses the process-global source; derive a per-(job,shot) stream (rand.New(rand.NewSource(seed)) or the qsim rngsource/splitmix64 plumbing)",
				pn.Imported().Name(), fn.Name())
			return true
		})
	}
	return nil
}
