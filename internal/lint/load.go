package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Pkg is one loaded, type-checked package: its syntax (including
// in-package _test.go files) plus type information. External test
// packages (package foo_test) load as their own Pkg with import path
// "foo_test"-suffixed.
type Pkg struct {
	PkgPath   string
	Fset      *token.FileSet
	Files     []*ast.File
	TestFiles map[*ast.File]bool
	Types     *types.Package
	Info      *types.Info
}

// Loader parses and type-checks packages of the enclosing module using
// only the standard library: `go list` enumerates packages and the
// go/importer "source" importer resolves imports (stdlib and module
// packages alike) by compiling them from source. That keeps qcloud-vet
// dependency-free at the cost of requiring an on-disk module — which a
// vet tool has by construction.
type Loader struct {
	ModuleRoot string
	fset       *token.FileSet
	imp        types.Importer
}

// NewLoader locates the enclosing module root (walking up from dir, or
// the working directory if dir is empty) and prepares a loader rooted
// there.
func NewLoader(dir string) (*Loader, error) {
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			return nil, err
		}
		dir = wd
	}
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	// The source importer consults build.Default; pinning its Dir to
	// the module root makes module-path imports (qcloud/internal/...)
	// resolve regardless of the process working directory.
	build.Default.Dir = root
	return &Loader{
		ModuleRoot: root,
		fset:       fset,
		imp:        importer.ForCompiler(fset, "source", nil),
	}, nil
}

// findModuleRoot walks up from dir to the directory holding go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod found above %s (qcloud-vet must run inside the module)", dir)
		}
		d = parent
	}
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath   string
	Dir          string
	Standard     bool
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
}

// Load enumerates the packages matching the patterns (resolved
// relative to the module root, so "./..." always means the whole
// module) and type-checks each, including its test files.
func (l *Loader) Load(patterns ...string) ([]*Pkg, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.ModuleRoot
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var listed []listedPkg
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		listed = append(listed, p)
	}
	var pkgs []*Pkg
	for _, lp := range listed {
		if lp.Standard || len(lp.GoFiles)+len(lp.TestGoFiles) == 0 && len(lp.XTestGoFiles) == 0 {
			continue
		}
		if len(lp.GoFiles)+len(lp.TestGoFiles) > 0 {
			pkg, err := l.check(lp.ImportPath, lp.Dir, lp.GoFiles, lp.TestGoFiles)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
		}
		if len(lp.XTestGoFiles) > 0 {
			pkg, err := l.check(lp.ImportPath+"_test", lp.Dir, nil, lp.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the .go files of one directory as a
// single package under the claimed import path, treating _test.go
// files as test files. Used by the fixture tests (testdata packages
// are invisible to `go list`).
func (l *Loader) LoadDir(pkgPath, dir string) (*Pkg, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names, testNames []string
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		if isTestFileName(e.Name()) {
			testNames = append(testNames, e.Name())
		} else {
			names = append(names, e.Name())
		}
	}
	return l.check(pkgPath, dir, names, testNames)
}

func isTestFileName(name string) bool {
	return len(name) > len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}

// check parses the named files and type-checks them as one package.
func (l *Loader) check(pkgPath, dir string, goFiles, testGoFiles []string) (*Pkg, error) {
	pkg := &Pkg{
		PkgPath:   pkgPath,
		Fset:      l.fset,
		TestFiles: make(map[*ast.File]bool),
	}
	parse := func(names []string, test bool) error {
		sort.Strings(names)
		for _, name := range names {
			f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return fmt.Errorf("lint: parsing %s: %v", name, err)
			}
			pkg.Files = append(pkg.Files, f)
			if test {
				pkg.TestFiles[f] = true
			}
		}
		return nil
	}
	if err := parse(goFiles, false); err != nil {
		return nil, err
	}
	if err := parse(testGoFiles, true); err != nil {
		return nil, err
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l.imp}
	tp, err := conf.Check(pkgPath, l.fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", pkgPath, err)
	}
	pkg.Types = tp
	return pkg, nil
}
