package analysis

import (
	"sync"
	"testing"
	"time"

	"qcloud/internal/cloud"
	"qcloud/internal/stats"
	"qcloud/internal/trace"
	"qcloud/internal/workload"
)

// The analysis tests assert the *shapes* the paper reports, on a
// moderately sized deterministic trace shared across tests.

var (
	fixtureOnce sync.Once
	fixture     *trace.Trace
	fixtureErr  error
)

func studyTrace(t *testing.T) *trace.Trace {
	t.Helper()
	fixtureOnce.Do(func() {
		specs := workload.Generate(workload.Config{Seed: 77, TotalJobs: 3000})
		fixture, fixtureErr = cloud.Simulate(cloud.Config{Seed: 77}, specs)
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixture
}

func TestFig02aCumulativeTrialsGrowth(t *testing.T) {
	tr := studyTrace(t)
	months := CumulativeTrials(tr)
	if len(months) < 20 {
		t.Fatalf("months = %d, want a two-year span", len(months))
	}
	var prev int64
	for _, m := range months {
		if m.Cumulative < prev {
			t.Fatal("cumulative trials must be monotone")
		}
		prev = m.Cumulative
	}
	// Exponential growth: the last six months dominate the first year.
	firstYear := months[11].Cumulative
	total := months[len(months)-1].Cumulative
	if firstYear*10 > total {
		t.Fatalf("growth too flat: first year %d vs total %d", firstYear, total)
	}
	if total < 5e8 {
		t.Fatalf("total trials = %d, want billions (Fig 2a scale)", total)
	}
}

func TestFig02bStatusBreakdown(t *testing.T) {
	tr := studyTrace(t)
	b := StatusBreakdown(tr)
	done := b[trace.StatusDone]
	failed := b[trace.StatusError] + b[trace.StatusCancelled]
	// "around 95% of the jobs were successfully executed, around 5%
	// errored out or were cancelled".
	if done < 0.88 || done > 0.98 {
		t.Fatalf("DONE fraction = %v, want ~0.95", done)
	}
	if failed < 0.02 || failed > 0.12 {
		t.Fatalf("ERROR+CANCELLED = %v, want ~0.05", failed)
	}
}

func TestFig03QueueShape(t *testing.T) {
	tr := studyTrace(t)
	s := QueueShapeOf(tr)
	if s.TotalCircuits < 100_000 {
		t.Fatalf("circuits = %d, want the Fig 3 scale (600k in the paper)", s.TotalCircuits)
	}
	if s.MedianMinutes < 15 || s.MedianMinutes > 300 {
		t.Fatalf("median queue = %v min, want the ~60 min regime", s.MedianMinutes)
	}
	if s.FracUnderMin < 0.05 || s.FracUnderMin > 0.45 {
		t.Fatalf("frac <1min = %v, want ~0.2", s.FracUnderMin)
	}
	if s.FracOver2h < 0.2 || s.FracOver2h > 0.65 {
		t.Fatalf("frac >2h = %v, want >0.3", s.FracOver2h)
	}
	if s.FracOverDay < 0.005 || s.FracOverDay > 0.25 {
		t.Fatalf("frac >=1day = %v, want a heavy tail", s.FracOverDay)
	}
	// Sortedness of the series itself.
	qs := SortedCircuitQueuingTimes(tr)
	for i := 1; i < len(qs); i += 10_000 {
		if qs[i] < qs[i-1] {
			t.Fatal("queuing series must be sorted")
		}
	}
}

func TestFig04QueueExecRatios(t *testing.T) {
	tr := studyTrace(t)
	ratios := QueueExecRatios(tr)
	med := stats.Median(ratios)
	// "the median ratio is around 10x".
	if med < 2 || med > 60 {
		t.Fatalf("ratio median = %v, want ~10x regime", med)
	}
	// "around 25% of the total jobs experience ratios which are 100x or
	// more".
	if f := stats.FractionAtLeast(ratios, 100); f < 0.1 || f > 0.45 {
		t.Fatalf("frac >=100x = %v, want ~0.25", f)
	}
	// "In around 30% of the total quantum jobs, the experienced queuing
	// time is at par or lower than the execution time".
	if f := stats.FractionBelow(ratios, 1); f < 0.1 || f > 0.5 {
		t.Fatalf("frac <=1x = %v, want ~0.3", f)
	}
}

func TestFig08UtilizationInverseToSize(t *testing.T) {
	tr := studyTrace(t)
	util := UtilizationByMachine(tr)
	// Small machines see high utilization; the large ones low (Fig 8).
	small, okS := util["ibmq_athens"]
	large, okL := util["ibmq_manhattan"]
	if !okS || !okL {
		t.Skip("fixture lacks jobs on comparison machines")
	}
	if small.Mean <= large.Mean {
		t.Fatalf("utilization: athens %v <= manhattan %v", small.Mean, large.Mean)
	}
	for m, v := range util {
		if v.Max > 1.0001 || v.Min < 0 {
			t.Fatalf("%s utilization outside [0,1]: %+v", m, v)
		}
	}
}

func TestFig09PendingJobsPublicDominates(t *testing.T) {
	tr := studyTrace(t)
	// The paper samples a week in March 2021.
	from := time.Date(2021, 3, 8, 0, 0, 0, 0, time.UTC)
	rows := PendingJobsByMachine(tr, from, from.AddDate(0, 0, 7))
	if len(rows) < 10 {
		t.Fatalf("rows = %d, want most of the fleet", len(rows))
	}
	var pub, priv []float64
	for _, r := range rows {
		if r.Machine == "ibmq_qasm_simulator" {
			continue
		}
		if r.Public {
			pub = append(pub, r.AvgPending)
		} else {
			priv = append(priv, r.AvgPending)
		}
	}
	if stats.Mean(pub) <= stats.Mean(priv) {
		t.Fatalf("public pending %v <= private %v", stats.Mean(pub), stats.Mean(priv))
	}
	// "Jobs are unequally distributed across machines": spread within
	// the fleet should exceed an order of magnitude.
	all := append(append([]float64{}, pub...), priv...)
	if stats.Max(all) < 20*(stats.Min(all)+0.1) {
		t.Fatalf("pending spread too narrow: [%v, %v]", stats.Min(all), stats.Max(all))
	}
}

func TestFig10QueuingByMachine(t *testing.T) {
	tr := studyTrace(t)
	q := QueuingByMachine(tr)
	athens, okA := q["ibmq_athens"]
	rome, okR := q["ibmq_rome"]
	if !okA || !okR {
		t.Skip("fixture lacks jobs on comparison machines")
	}
	// Public machines queue longer (Fig 10: "On public access machines,
	// the mean queuing times are of the order of multiple hours").
	if athens.Mean <= rome.Mean {
		t.Fatalf("athens mean queue %v <= rome %v", athens.Mean, rome.Mean)
	}
	if athens.Mean < 60 {
		t.Fatalf("athens mean queue = %v min, want multiple hours", athens.Mean)
	}
}

func TestFig11QueuingVsBatch(t *testing.T) {
	tr := studyTrace(t)
	buckets := ByBatchSize(tr, nil)
	var withData []BatchBucket
	for _, b := range buckets {
		if b.N >= 10 {
			withData = append(withData, b)
		}
	}
	if len(withData) < 3 {
		t.Fatalf("only %d populated batch buckets", len(withData))
	}
	first, last := withData[0], withData[len(withData)-1]
	// "as batch sizes increase, the effective queuing time per circuit
	// almost always decreases".
	if last.PerCircuitQueueMedianMin >= first.PerCircuitQueueMedianMin {
		t.Fatalf("per-circuit queue should fall with batch: %v -> %v",
			first.PerCircuitQueueMedianMin, last.PerCircuitQueueMedianMin)
	}
}

func TestFig12aCalibrationCrossover(t *testing.T) {
	tr := studyTrace(t)
	frac := CalibrationCrossovers(tr)
	// Paper: 21.9% crossover.
	if frac < 0.08 || frac > 0.45 {
		t.Fatalf("crossover fraction = %v, want ~0.22", frac)
	}
}

func TestFig13RuntimeByMachine(t *testing.T) {
	tr := studyTrace(t)
	rt := RuntimeByMachine(tr)
	athens, okA := rt["ibmq_athens"]
	manhattan, okM := rt["ibmq_manhattan"]
	if !okA || !okM {
		t.Skip("fixture lacks jobs on comparison machines")
	}
	// "A common trend ... larger machines have higher run times."
	if manhattan.Med <= athens.Med {
		t.Fatalf("per-circ runtime: manhattan %v <= athens %v", manhattan.Med, athens.Med)
	}
}

func TestFig14RuntimeProportionalToBatch(t *testing.T) {
	tr := studyTrace(t)
	trend := RuntimeVsBatch(tr)
	if trend.SlopeMinPerCircuit <= 0 {
		t.Fatalf("slope = %v, want positive (runtime grows with batch)", trend.SlopeMinPerCircuit)
	}
	if trend.Correlation < 0.7 {
		t.Fatalf("batch-runtime correlation = %v, want strong", trend.Correlation)
	}
}

func TestFig15PredictionCorrelations(t *testing.T) {
	tr := studyTrace(t)
	preds := PredictionCorrelations(tr, 80, 99)
	if len(preds) < 4 {
		t.Fatalf("only %d machines had enough jobs", len(preds))
	}
	highFull := 0
	for _, p := range preds {
		full := p.Correlations[len(p.Correlations)-1]
		if full >= 0.95 {
			highFull++
		}
		// Batch alone is the major contributor (paper: "The major
		// contributor to the correlation is the batch size").
		if p.Correlations[0] < 0.5 {
			t.Fatalf("%s: batch-only correlation = %v, want the dominant term", p.Machine, p.Correlations[0])
		}
	}
	// "the correlation is 0.95 or above on all but two machines".
	if float64(highFull) < 0.6*float64(len(preds)) {
		t.Fatalf("only %d/%d machines reach 0.95 full-feature correlation", highFull, len(preds))
	}
}

func TestFig16PredictionSeries(t *testing.T) {
	tr := studyTrace(t)
	// Use the machine with the most jobs for a stable series.
	byMachine := tr.JobsByMachine()
	best, bestN := "", 0
	for name, jobs := range byMachine {
		if len(jobs) > bestN {
			best, bestN = name, len(jobs)
		}
	}
	actual, predicted, err := PredictionSeries(tr, best, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(actual) != len(predicted) || len(actual) < 10 {
		t.Fatalf("series lengths %d/%d", len(actual), len(predicted))
	}
	if c := stats.Pearson(actual, predicted); c < 0.9 {
		t.Fatalf("%s actual-vs-predicted correlation = %v", best, c)
	}
}

func TestByBatchSizeDefaultEdges(t *testing.T) {
	tr := studyTrace(t)
	buckets := ByBatchSize(tr, nil)
	if len(buckets) != 7 {
		t.Fatalf("default buckets = %d, want 7", len(buckets))
	}
	total := 0
	for _, b := range buckets {
		total += b.N
	}
	if total != len(tr.Completed()) {
		t.Fatalf("buckets cover %d of %d jobs", total, len(tr.Completed()))
	}
}
