package analysis

import (
	"reflect"
	"testing"
	"time"

	"qcloud/internal/backend"
	"qcloud/internal/par"
)

// TestFidelitySweepDeterministicAcrossWorkers runs the Fig 7 sweep
// serially and on the full worker pool and requires identical rows —
// the determinism contract of the parallel analysis fan-out.
func TestFidelitySweepDeterministicAcrossWorkers(t *testing.T) {
	byName := backend.FleetByName()
	machines := []*backend.Machine{byName["ibmq_rome"], byName["ibmq_casablanca"]}
	at := time.Date(2021, 3, 10, 12, 0, 0, 0, time.UTC)

	par.SetWorkers(1)
	serial, err := FidelityVsCXMetrics(machines, 4, 150, at, 5)
	par.SetWorkers(0)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := FidelityVsCXMetrics(machines, 4, 150, at, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("fidelity rows differ between serial and parallel sweeps:\n%v\nvs\n%v", serial, parallel)
	}
}

// TestStalenessSweepDeterministicAcrossWorkers repeats the check for
// the per-day staleness fan-out, whose means are summed in day order.
func TestStalenessSweepDeterministicAcrossWorkers(t *testing.T) {
	m := backend.FleetByName()["ibmq_toronto"]
	t0 := time.Date(2021, 3, 1, 15, 0, 0, 0, time.UTC)

	par.SetWorkers(1)
	serial, err := StaleCompilationPenalty(m, 4, 2, 4, 120, t0, 9)
	par.SetWorkers(0)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := StaleCompilationPenalty(m, 4, 2, 4, 120, t0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if *serial != *parallel {
		t.Fatalf("staleness result differs: serial %+v vs parallel %+v", serial, parallel)
	}
}
