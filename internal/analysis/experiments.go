package analysis

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"qcloud/internal/backend"
	"qcloud/internal/circuit"
	"qcloud/internal/circuit/gens"
	"qcloud/internal/compile"
	"qcloud/internal/par"
	"qcloud/internal/qsim"
)

// PassCost is one compiler pass's wall time at the small and large
// problem size (Fig 5's paired bars).
type PassCost struct {
	Pass               string
	SmallSec, LargeSec float64
}

// CompilePassProfile compiles a QFT of smallN qubits onto smallM and a
// QFT of largeN onto largeM (nil largeM uses the fake 1000q machine),
// returning cumulative per-pass wall times. The paper's instance is
// (64q QFT -> 65q Manhattan) vs (980q QFT -> fake 1000q machine); that
// full-size run takes hours exactly as the paper reports, so callers
// may scale the large size down and extrapolate the trend.
func CompilePassProfile(smallN int, smallM *backend.Machine, largeN int, largeM *backend.Machine, seed int64) ([]PassCost, error) {
	if largeM == nil {
		largeM = backend.Fake1000()
	}
	// The two compiles are independent; with workers > 1 they run
	// concurrently (the large one dominates, so the small one overlaps
	// for free). -workers 1 keeps them sequential, which is what you
	// want for uncontended per-pass wall-clock profiles.
	var small, large *compile.Result
	errs := make([]error, 2)
	par.ForEach(2, 0, func(i int) {
		if i == 0 {
			var err error
			small, err = compile.Compile(gens.QFT(smallN), smallM, nil, compile.Options{Seed: seed})
			if err != nil {
				errs[0] = fmt.Errorf("small compile: %w", err)
			}
		} else {
			var err error
			large, err = compile.Compile(gens.QFT(largeN), largeM, nil, compile.Options{Seed: seed})
			if err != nil {
				errs[1] = fmt.Errorf("large compile: %w", err)
			}
		}
	})
	if err := par.FirstError(errs); err != nil {
		return nil, err
	}
	byName := make(map[string]*PassCost)
	var order []string
	add := func(timings []compile.PassTiming, large bool) {
		for _, t := range timings {
			pc, ok := byName[t.Name]
			if !ok {
				pc = &PassCost{Pass: t.Name}
				byName[t.Name] = pc
				order = append(order, t.Name)
			}
			if large {
				pc.LargeSec += t.Seconds
			} else {
				pc.SmallSec += t.Seconds
			}
		}
	}
	add(small.Timings, false)
	add(large.Timings, true)
	out := make([]PassCost, 0, len(order))
	for _, name := range order {
		out = append(out, *byName[name])
	}
	return out, nil
}

// BisectionRow is one machine's Fig 6 entry.
type BisectionRow struct {
	Machine            string
	Qubits             int
	BisectionBandwidth int
}

// BisectionTable computes qubits vs bisection bandwidth across the
// fleet (Fig 6), skipping the simulator pseudo-backend.
func BisectionTable(machines []*backend.Machine) []BisectionRow {
	var rows []BisectionRow
	for _, m := range machines {
		if m.Simulator {
			continue
		}
		rows = append(rows, BisectionRow{
			Machine:            m.Name,
			Qubits:             m.NumQubits(),
			BisectionBandwidth: m.Topo.BisectionBandwidth(),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Qubits != rows[j].Qubits {
			return rows[i].Qubits < rows[j].Qubits
		}
		return rows[i].Machine < rows[j].Machine
	})
	return rows
}

// FidelityRow is one machine's Fig 7 entry: measured probability of
// success of the 4q QFT benchmark next to its compile-time CX metrics.
type FidelityRow struct {
	Machine string
	Qubits  int
	// POS is the trajectory-simulated probability of success (%).
	POS float64
	// CXDepth and CXTotal are the compiled circuit's CX metrics.
	CXDepth, CXTotal int
	// CXDepthErr / CXTotalErr are the metrics scaled by the mean CX
	// error of the qubits the circuit uses (the paper's "CX-D * CX-Err"
	// and "CX-T * CX-Err", in percent).
	CXDepthErr, CXTotalErr float64
}

// FidelityVsCXMetrics compiles the n-qubit QFT POS benchmark onto each
// machine under its calibration at time at, runs the noisy trajectory
// simulations, and reports POS alongside the CX metrics (Fig 7; the
// paper uses casablanca, toronto, guadalupe, rome and manhattan).
// Compiles fan out on a worker pool, then every machine's shots are
// submitted to one shared trajectory pool (qsim.BatchRun) instead of
// nesting a serial pool per machine. Each machine's RNG stream is
// seeded by (seed, machine), so rows are deterministic: identical to a
// serial sweep and to the old per-machine pools.
func FidelityVsCXMetrics(machines []*backend.Machine, n, shots int, at time.Time, seed int64) ([]FidelityRow, error) {
	rows := make([]FidelityRow, len(machines))
	errs := make([]error, len(machines))
	comps := make([]*compile.Result, len(machines))
	cals := make([]*backend.Calibration, len(machines))
	jobs := make([]qsim.BatchJob, len(machines))
	par.ForEach(len(machines), 0, func(i int) {
		m := machines[i]
		cal := m.CalibrationAt(at)
		res, err := compile.Compile(gens.QFTBench(n), m, cal, compile.Options{Seed: seed})
		if err != nil {
			errs[i] = fmt.Errorf("%s: %w", m.Name, err)
			return
		}
		comps[i], cals[i] = res, cal
		compacted, origOf := qsim.Compact(res.Circ)
		jobs[i] = qsim.BatchJob{
			Circ:  compacted,
			Shots: shots,
			Noise: qsim.NoiseFromCalibration(cal, 0).Remap(origOf),
			Seed:  seed + m.Seed,
		}
	})
	if err := par.FirstError(errs); err != nil {
		return nil, err
	}
	batch := qsim.BatchRun(jobs, qsim.Parallelism{})
	for i, m := range machines {
		if batch[i].Err != nil {
			return nil, fmt.Errorf("%s: %w", m.Name, batch[i].Err)
		}
		res, cal := comps[i], cals[i]
		pos := batch[i].Counts.Prob(strings.Repeat("0", n))
		// Mean CX error over the couplers the compiled circuit uses.
		errSum, errN := 0.0, 0
		for _, g := range res.Circ.Gates {
			if g.Op.IsTwoQubit() {
				errSum += cal.CXError(g.Qubits[0], g.Qubits[1], cal.MeanCXError())
				errN++
			}
		}
		meanErr := 0.0
		if errN > 0 {
			meanErr = errSum / float64(errN)
		}
		rows[i] = FidelityRow{
			Machine: m.Name, Qubits: m.NumQubits(),
			POS:        pos * 100,
			CXDepth:    res.Metrics.CXDepth,
			CXTotal:    res.Metrics.CXCount,
			CXDepthErr: float64(res.Metrics.CXDepth) * meanErr * 100,
			CXTotalErr: float64(res.Metrics.CXCount) * meanErr * 100,
		}
	}
	return rows, nil
}

// LayoutDivergence re-compiles the same circuit with the
// noise-adaptive layout across consecutive calibration epochs and
// reports how often the chosen mapping changes (Fig 12b: stale
// compilations bind to qubit assignments that are no longer optimal).
type LayoutDivergence struct {
	// ChangedFraction is the fraction of consecutive epoch pairs whose
	// layouts differ.
	ChangedFraction float64
	// Layouts holds the logical->physical mapping per epoch.
	Layouts [][]int
}

// LayoutDivergenceOf measures layout churn for circuit c on machine m
// over the given number of consecutive calibration days starting at t0.
func LayoutDivergenceOf(c *circuit.Circuit, m *backend.Machine, t0 time.Time, days int, seed int64) (*LayoutDivergence, error) {
	if days < 2 {
		return nil, fmt.Errorf("analysis: need at least 2 days, got %d", days)
	}
	out := &LayoutDivergence{}
	changed := 0
	for d := 0; d < days; d++ {
		cal := m.CalibrationAt(t0.Add(time.Duration(d) * 24 * time.Hour))
		res, err := compile.Compile(c, m, cal, compile.Options{Seed: seed, SkipCSP: true})
		if err != nil {
			return nil, err
		}
		out.Layouts = append(out.Layouts, res.Layout)
		if d > 0 && !equalLayouts(out.Layouts[d-1], out.Layouts[d]) {
			changed++
		}
	}
	out.ChangedFraction = float64(changed) / float64(days-1)
	return out, nil
}

func equalLayouts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// StalenessResult quantifies the §V-E.2 / Fig 12 recommendation: how
// much fidelity a job loses by executing a compilation made against an
// older calibration cycle, versus re-compiling fresh.
type StalenessResult struct {
	// FreshPOS / StalePOS are mean probabilities of success across the
	// sampled days.
	FreshPOS, StalePOS float64
	// Days is the number of calibration days sampled.
	Days int
}

// StaleCompilationPenalty compiles the n-qubit QFT benchmark twice for
// each sampled day d: once against day d's calibration (fresh) and once
// against day d-staleDays' calibration (stale); both are executed under
// day d's noise. The gap is the fidelity cost of calibration
// crossovers, the quantity motivating dynamic re-compilation.
func StaleCompilationPenalty(m *backend.Machine, n, staleDays, days, shots int, t0 time.Time, seed int64) (*StalenessResult, error) {
	if days < 1 || staleDays < 1 {
		return nil, fmt.Errorf("analysis: need days >= 1 and staleDays >= 1")
	}
	bench := gens.QFTBench(n)
	expected := strings.Repeat("0", n)
	// Days are independent (each has its own seeded RNG streams): the
	// fresh/stale compiles fan out per day, then all 2*days small-shot
	// simulations go to one shared trajectory pool. Per-day results are
	// summed in day order to keep the means bit-identical to a serial
	// sweep (and to the old nested per-day pools).
	errs := make([]error, days)
	jobs := make([]qsim.BatchJob, 2*days)
	par.ForEach(days, 0, func(d int) {
		execAt := t0.Add(time.Duration(d) * 24 * time.Hour)
		calNow := m.CalibrationAt(execAt)
		calOld := m.CalibrationAt(execAt.Add(-time.Duration(staleDays) * 24 * time.Hour))
		staleHours := float64(staleDays) * 24

		fresh, err := compile.Compile(bench, m, calNow, compile.Options{Seed: seed, SkipCSP: true})
		if err != nil {
			errs[d] = err
			return
		}
		stale, err := compile.Compile(bench, m, calOld, compile.Options{Seed: seed, SkipCSP: true})
		if err != nil {
			errs[d] = err
			return
		}
		// Both run under *today's* noise; the stale compilation also
		// suffers drift relative to its pulse-era calibration.
		fc, fm := qsim.Compact(fresh.Circ)
		sc, sm := qsim.Compact(stale.Circ)
		jobs[2*d] = qsim.BatchJob{
			Circ: fc, Shots: shots,
			Noise: qsim.NoiseFromCalibration(calNow, 0).Remap(fm),
			Seed:  seed + int64(d)*17,
		}
		jobs[2*d+1] = qsim.BatchJob{
			Circ: sc, Shots: shots,
			Noise: qsim.NoiseFromCalibration(calNow, staleHours).Remap(sm),
			Seed:  seed + int64(d)*17 + 1,
		}
	})
	if err := par.FirstError(errs); err != nil {
		return nil, err
	}
	batch := qsim.BatchRun(jobs, qsim.Parallelism{})
	var freshSum, staleSum float64
	for d := 0; d < days; d++ {
		if err := batch[2*d].Err; err != nil {
			return nil, err
		}
		if err := batch[2*d+1].Err; err != nil {
			return nil, err
		}
		freshSum += batch[2*d].Counts.Prob(expected)
		staleSum += batch[2*d+1].Counts.Prob(expected)
	}
	return &StalenessResult{
		FreshPOS: freshSum / float64(days),
		StalePOS: staleSum / float64(days),
		Days:     days,
	}, nil
}
