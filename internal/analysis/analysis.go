// Package analysis reproduces every table and figure of the paper's
// evaluation from a simulated trace (Figs 2-4, 8-16) or by running the
// compiler/simulator substrates directly (Figs 5-7, 12b). Each figure
// has one entry point returning plain data that the qcloud-analyze
// command formats; README.md's figure index maps figures to entry
// points.
package analysis

import (
	"sort"
	"time"

	"qcloud/internal/par"
	"qcloud/internal/predict"
	"qcloud/internal/stats"
	"qcloud/internal/trace"
)

// violinByMachine summarizes each machine's sample vector on a worker
// pool. Summaries land in name-indexed slots, so the result is
// identical for any worker count.
func violinByMachine(byMachine map[string][]float64) map[string]stats.ViolinSummary {
	names := make([]string, 0, len(byMachine))
	for m := range byMachine {
		names = append(names, m)
	}
	sort.Strings(names)
	summaries := make([]stats.ViolinSummary, len(names))
	par.ForEach(len(names), 0, func(i int) {
		summaries[i] = stats.Violin(byMachine[names[i]])
	})
	out := make(map[string]stats.ViolinSummary, len(names))
	for i, m := range names {
		out[m] = summaries[i]
	}
	return out
}

// MonthlyTrials is one month's machine-trial count (Fig 2a).
type MonthlyTrials struct {
	Month      time.Time
	Trials     int64
	Cumulative int64
}

// CumulativeTrials buckets executed trials (batch x shots) by end
// month and accumulates them — the Fig 2a growth curve.
func CumulativeTrials(tr *trace.Trace) []MonthlyTrials {
	byMonth := make(map[time.Time]int64)
	for _, j := range tr.Completed() {
		m := time.Date(j.EndTime.Year(), j.EndTime.Month(), 1, 0, 0, 0, 0, time.UTC)
		byMonth[m] += j.Trials()
	}
	months := make([]time.Time, 0, len(byMonth))
	for m := range byMonth {
		months = append(months, m)
	}
	sort.Slice(months, func(i, j int) bool { return months[i].Before(months[j]) })
	out := make([]MonthlyTrials, len(months))
	var cum int64
	for i, m := range months {
		cum += byMonth[m]
		out[i] = MonthlyTrials{Month: m, Trials: byMonth[m], Cumulative: cum}
	}
	return out
}

// StatusBreakdown returns the fraction of jobs per terminal status
// (Fig 2b).
func StatusBreakdown(tr *trace.Trace) map[trace.Status]float64 {
	counts := make(map[trace.Status]int)
	for _, j := range tr.Jobs {
		counts[j.Status]++
	}
	out := make(map[trace.Status]float64, len(counts))
	total := float64(len(tr.Jobs))
	for s, n := range counts {
		out[s] = float64(n) / total
	}
	return out
}

// SortedCircuitQueuingTimes expands each executed job's queuing time to
// its constituent circuits (every circuit in a batch waits once, as a
// whole) and returns the per-circuit queuing times in minutes, sorted
// ascending — the Fig 3 series.
func SortedCircuitQueuingTimes(tr *trace.Trace) []float64 {
	var out []float64
	for _, j := range tr.Completed() {
		q := j.QueueSeconds() / 60
		for c := 0; c < j.BatchSize; c++ {
			out = append(out, q)
		}
	}
	sort.Float64s(out)
	return out
}

// QueueShape summarizes the Fig 3 headline numbers.
type QueueShape struct {
	MedianMinutes float64
	FracUnderMin  float64 // "around 20% ... less than a minute"
	FracOver2h    float64 // "more than 30% ... greater than 2 hours"
	FracOverDay   float64 // "around 10% ... a day or even longer"
	TotalCircuits int
}

// QueueShapeOf computes the headline queuing-shape numbers.
func QueueShapeOf(tr *trace.Trace) QueueShape {
	q := SortedCircuitQueuingTimes(tr)
	return QueueShape{
		MedianMinutes: stats.Median(q),
		FracUnderMin:  stats.FractionBelow(q, 1),
		FracOver2h:    stats.FractionAtLeast(q, 120),
		FracOverDay:   stats.FractionAtLeast(q, 24*60),
		TotalCircuits: len(q),
	}
}

// QueueExecRatios returns per-job queuing:execution ratios, sorted
// ascending (Fig 4).
func QueueExecRatios(tr *trace.Trace) []float64 {
	var out []float64
	for _, j := range tr.Completed() {
		if e := j.ExecSeconds(); e > 0 {
			out = append(out, j.QueueSeconds()/e)
		}
	}
	sort.Float64s(out)
	return out
}

// UtilizationByMachine returns the Fig 8 violin summaries: the fraction
// of machine qubits used by each job's widest circuit, per machine.
func UtilizationByMachine(tr *trace.Trace) map[string]stats.ViolinSummary {
	byMachine := make(map[string][]float64)
	for _, j := range tr.Completed() {
		byMachine[j.Machine] = append(byMachine[j.Machine], j.Utilization())
	}
	return violinByMachine(byMachine)
}

// PendingRow is one machine's average pending-job count over a window
// (Fig 9).
type PendingRow struct {
	Machine    string
	Qubits     int
	Public     bool
	AvgPending float64
}

// PendingJobsByMachine averages each machine's sampled queue length
// over [from, to) — the paper uses a one-week window in March 2021.
// Machines with no samples in the window are omitted.
func PendingJobsByMachine(tr *trace.Trace, from, to time.Time) []PendingRow {
	var rows []PendingRow
	for _, ms := range tr.Machines {
		var sum float64
		n := 0
		for _, p := range ms.PendingSamples {
			if !p.Time.Before(from) && p.Time.Before(to) {
				sum += float64(p.Pending)
				n++
			}
		}
		if n == 0 {
			continue
		}
		rows = append(rows, PendingRow{
			Machine: ms.Name, Qubits: ms.Qubits, Public: ms.Public,
			AvgPending: sum / float64(n),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Qubits != rows[j].Qubits {
			return rows[i].Qubits < rows[j].Qubits
		}
		return rows[i].Machine < rows[j].Machine
	})
	return rows
}

// QueuingByMachine returns Fig 10's per-machine queuing-time (minutes)
// violin summaries.
func QueuingByMachine(tr *trace.Trace) map[string]stats.ViolinSummary {
	byMachine := make(map[string][]float64)
	for _, j := range tr.Completed() {
		byMachine[j.Machine] = append(byMachine[j.Machine], j.QueueSeconds()/60)
	}
	return violinByMachine(byMachine)
}

// BatchBucket aggregates jobs whose batch size falls in [Lo, Hi)
// (Figs 11 and 14).
type BatchBucket struct {
	Lo, Hi int
	// PerJobQueueMin is the per-job queuing-time distribution (minutes).
	PerJobQueueMin stats.ViolinSummary
	// PerCircuitQueueMedianMin is the median queuing time divided by
	// batch size — the "effective queuing time per circuit".
	PerCircuitQueueMedianMin float64
	// PerJobRunMin is the per-job runtime distribution (minutes).
	PerJobRunMin stats.ViolinSummary
	N            int
}

// ByBatchSize buckets executed jobs into batch-size ranges and
// aggregates their queuing and running times.
func ByBatchSize(tr *trace.Trace, edges []int) []BatchBucket {
	if len(edges) < 2 {
		edges = []int{1, 10, 50, 100, 200, 400, 700, 901}
	}
	buckets := make([]BatchBucket, len(edges)-1)
	queues := make([][]float64, len(buckets))
	perCirc := make([][]float64, len(buckets))
	runs := make([][]float64, len(buckets))
	for i := range buckets {
		buckets[i].Lo, buckets[i].Hi = edges[i], edges[i+1]
	}
	for _, j := range tr.Completed() {
		for i := range buckets {
			if j.BatchSize >= buckets[i].Lo && j.BatchSize < buckets[i].Hi {
				q := j.QueueSeconds() / 60
				queues[i] = append(queues[i], q)
				perCirc[i] = append(perCirc[i], q/float64(j.BatchSize))
				runs[i] = append(runs[i], j.ExecSeconds()/60)
				break
			}
		}
	}
	for i := range buckets {
		buckets[i].PerJobQueueMin = stats.Violin(queues[i])
		buckets[i].PerCircuitQueueMedianMin = stats.Median(perCirc[i])
		buckets[i].PerJobRunMin = stats.Violin(runs[i])
		buckets[i].N = len(queues[i])
	}
	return buckets
}

// CalibrationCrossovers returns the fraction of jobs whose compile-time
// calibration epoch differs from their execution epoch (Fig 12a: the
// paper estimates 21.9%).
func CalibrationCrossovers(tr *trace.Trace) float64 {
	if len(tr.Jobs) == 0 {
		return 0
	}
	crossed := 0
	for _, j := range tr.Jobs {
		if j.CrossedCalibration() {
			crossed++
		}
	}
	return float64(crossed) / float64(len(tr.Jobs))
}

// RuntimeByMachine returns Fig 13's per-circuit run-time (minutes)
// violin summaries per machine: job execution time amortized over its
// batch.
func RuntimeByMachine(tr *trace.Trace) map[string]stats.ViolinSummary {
	byMachine := make(map[string][]float64)
	for _, j := range tr.Completed() {
		if j.ExecSeconds() <= 0 {
			continue
		}
		perCirc := j.ExecSeconds() / float64(j.BatchSize) / 60
		byMachine[j.Machine] = append(byMachine[j.Machine], perCirc)
	}
	return violinByMachine(byMachine)
}

// RuntimeTrend is the Fig 14 scatter with its least-squares trend line
// (runtime in minutes vs batch size).
type RuntimeTrend struct {
	// SlopeMinPerCircuit and InterceptMin define the red trend line.
	SlopeMinPerCircuit, InterceptMin float64
	// Correlation is Pearson between batch size and runtime.
	Correlation float64
	N           int
}

// RuntimeVsBatch fits runtime-vs-batch across executed jobs.
func RuntimeVsBatch(tr *trace.Trace) RuntimeTrend {
	var xs, ys []float64
	for _, j := range tr.Completed() {
		if j.ExecSeconds() <= 0 {
			continue
		}
		xs = append(xs, float64(j.BatchSize))
		ys = append(ys, j.ExecSeconds()/60)
	}
	out := RuntimeTrend{N: len(xs), Correlation: stats.Pearson(xs, ys)}
	X := make([][]float64, len(xs))
	for i, x := range xs {
		X[i] = []float64{1, x}
	}
	if beta, err := stats.LinearFit(X, ys); err == nil {
		out.InterceptMin, out.SlopeMinPerCircuit = beta[0], beta[1]
	}
	return out
}

// MachinePrediction is one machine's Fig 15 column: correlation per
// cumulative feature set.
type MachinePrediction struct {
	Machine string
	// Correlations[i] corresponds to predict.CumulativeSets()[i].
	Correlations []float64
	Jobs         int
}

// PredictionCorrelations trains the Π(aᵢ+bᵢxᵢ) model per machine for
// each cumulative feature set and reports test-set Pearson correlation
// (Fig 15). Machines with fewer than minJobs executed jobs are skipped.
func PredictionCorrelations(tr *trace.Trace, minJobs int, seed int64) []MachinePrediction {
	if minJobs <= 0 {
		minJobs = 60
	}
	sets := predict.CumulativeSets()
	byMachine := tr.JobsByMachine()
	names := make([]string, 0, len(byMachine))
	for name := range byMachine {
		names = append(names, name)
	}
	sort.Strings(names)
	// Per-machine model training is independent; fan it out and keep
	// name-order by collecting into indexed slots.
	preds := make([]*MachinePrediction, len(names))
	par.ForEach(len(names), 0, func(i int) {
		name := names[i]
		jobs := byMachine[name]
		executed := 0
		for _, j := range jobs {
			if j.Status != trace.StatusCancelled {
				executed++
			}
		}
		if executed < minJobs {
			return
		}
		mp := &MachinePrediction{Machine: name, Jobs: executed}
		for _, set := range sets {
			ev, err := predict.TrainTest(jobs, set, seed)
			if err != nil {
				mp.Correlations = append(mp.Correlations, 0)
				continue
			}
			mp.Correlations = append(mp.Correlations, ev.Correlation)
		}
		preds[i] = mp
	})
	var out []MachinePrediction
	for _, mp := range preds {
		if mp != nil {
			out = append(out, *mp)
		}
	}
	return out
}

// PredictionSeries returns the Fig 16 actual-vs-predicted test series
// for one machine using the full feature set.
func PredictionSeries(tr *trace.Trace, machine string, seed int64) (actual, predicted []float64, err error) {
	jobs := tr.JobsByMachine()[machine]
	sets := predict.CumulativeSets()
	ev, err := predict.TrainTest(jobs, sets[len(sets)-1], seed)
	if err != nil {
		return nil, nil, err
	}
	return ev.TestActual, ev.TestPredicted, nil
}
