package analysis

import (
	"testing"
	"time"

	"qcloud/internal/backend"
	"qcloud/internal/circuit/gens"
	"qcloud/internal/stats"
)

func TestFig05CompilePassProfileScales(t *testing.T) {
	byName := backend.FleetByName()
	small := byName["ibmq_16_melbourne"]
	// Scaled-down instance of the paper's (64q->Manhattan, 980q->1000q)
	// pair. Fig 5's quantitative claim is that per-pass times grow by
	// orders of magnitude with problem size, with routing among the
	// most expensive passes; that is what we assert (cmd/qcloud-compilebench
	// runs the full-size instance).
	costs, err := CompilePassProfile(8, small, 64, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	var totalSmall, totalLarge float64
	byPass := make(map[string]PassCost)
	for _, c := range costs {
		totalSmall += c.SmallSec
		totalLarge += c.LargeSec
		byPass[c.Pass] = c
	}
	if totalLarge < 20*totalSmall {
		t.Fatalf("large compile %.4fs not orders slower than small %.4fs", totalLarge, totalSmall)
	}
	swap := byPass["StochasticSwap"]
	if swap.LargeSec < 30*swap.SmallSec {
		t.Fatalf("routing grew only %.1fx (%.5fs -> %.5fs), want orders of magnitude",
			swap.LargeSec/(swap.SmallSec+1e-12), swap.SmallSec, swap.LargeSec)
	}
	// Routing sits among the top passes of the large compile.
	higher := 0
	for _, c := range costs {
		if c.LargeSec > swap.LargeSec {
			higher++
		}
	}
	if higher > 4 {
		t.Fatalf("StochasticSwap ranked %d-th by large-compile cost, want top 5", higher+1)
	}
}

func TestFig06BisectionTable(t *testing.T) {
	rows := BisectionTable(backend.Fleet())
	if len(rows) < 25 {
		t.Fatalf("rows = %d, want the full fleet", len(rows))
	}
	byName := make(map[string]BisectionRow)
	for _, r := range rows {
		byName[r.Machine] = r
		// Fig 6: "the bisection bandwidth is very low across these
		// quantum machines" — all under the 8 of a 64-node mesh.
		if r.BisectionBandwidth > 8 {
			t.Fatalf("%s bisection = %d, too high for a quantum coupler graph", r.Machine, r.BisectionBandwidth)
		}
	}
	if m := byName["ibmq_manhattan"]; m.BisectionBandwidth > 5 {
		t.Fatalf("manhattan bisection = %d, paper reports 3", m.BisectionBandwidth)
	}
	if byName["ibmq_armonk"].BisectionBandwidth != 0 {
		t.Fatal("single-qubit machine has no couplers to cut")
	}
	// Larger machines do not gain bandwidth proportionally: manhattan
	// (65q) stays at or below the densest 20q machine.
	if byName["ibmq_manhattan"].BisectionBandwidth > byName["ibmq_20_tokyo"].BisectionBandwidth {
		t.Fatal("heavy-hex 65q should not out-connect the dense 20q tokyo")
	}
}

func TestFig07FidelityTracksCXMetrics(t *testing.T) {
	byName := backend.FleetByName()
	var machines []*backend.Machine
	for _, name := range []string{"ibmq_casablanca", "ibmq_toronto", "ibmq_guadalupe", "ibmq_rome", "ibmq_manhattan"} {
		machines = append(machines, byName[name])
	}
	at := time.Date(2021, 3, 10, 12, 0, 0, 0, time.UTC)
	rows, err := FidelityVsCXMetrics(machines, 4, 600, at, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	var pos, cxTErr []float64
	minPOS, maxPOS := 101.0, -1.0
	for _, r := range rows {
		if r.POS <= 0 || r.POS > 100 {
			t.Fatalf("%s POS = %v out of range", r.Machine, r.POS)
		}
		if r.CXTotal < r.CXDepth {
			t.Fatalf("%s CX totals inconsistent: total %d < depth %d", r.Machine, r.CXTotal, r.CXDepth)
		}
		pos = append(pos, r.POS)
		cxTErr = append(cxTErr, r.CXTotalErr)
		if r.POS < minPOS {
			minPOS = r.POS
		}
		if r.POS > maxPOS {
			maxPOS = r.POS
		}
	}
	// Fig 7: POS varies widely across machines (62% to 19% in the
	// paper; we require a clear spread).
	if maxPOS < 1.2*minPOS {
		t.Fatalf("POS spread too narrow: %v..%v", minPOS, maxPOS)
	}
	// POS anti-correlates with the CX-Total x CX-Err metric.
	if c := stats.Pearson(pos, cxTErr); c >= 0 {
		t.Fatalf("POS vs CX-T*Err correlation = %v, want negative", c)
	}
}

func TestFig12bLayoutDivergence(t *testing.T) {
	m := backend.FleetByName()["ibmq_toronto"]
	t0 := time.Date(2021, 2, 1, 12, 0, 0, 0, time.UTC)
	div, err := LayoutDivergenceOf(gens.QFT(4), m, t0, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(div.Layouts) != 12 {
		t.Fatalf("layouts = %d", len(div.Layouts))
	}
	// Fig 12b: noise-aware mappings change across calibration cycles.
	if div.ChangedFraction == 0 {
		t.Fatal("layouts never changed across calibrations")
	}
	if _, err := LayoutDivergenceOf(gens.QFT(4), m, t0, 1, 5); err == nil {
		t.Fatal("days < 2 should error")
	}
}

func TestStaleCompilationPenalty(t *testing.T) {
	// §V-E.2: executing a stale compilation under fresh noise costs
	// fidelity on average, motivating dynamic re-compilation.
	m := backend.FleetByName()["ibmq_toronto"]
	t0 := time.Date(2021, 3, 1, 15, 0, 0, 0, time.UTC)
	res, err := StaleCompilationPenalty(m, 4, 3, 10, 400, t0, 21)
	if err != nil {
		t.Fatal(err)
	}
	if res.Days != 10 {
		t.Fatalf("days = %d", res.Days)
	}
	if res.FreshPOS <= 0 || res.FreshPOS > 1 || res.StalePOS <= 0 || res.StalePOS > 1 {
		t.Fatalf("POS out of range: fresh %v stale %v", res.FreshPOS, res.StalePOS)
	}
	if res.StalePOS >= res.FreshPOS {
		t.Fatalf("stale compilation (%v) should underperform fresh (%v) on average",
			res.StalePOS, res.FreshPOS)
	}
	if _, err := StaleCompilationPenalty(m, 4, 0, 5, 100, t0, 1); err == nil {
		t.Fatal("staleDays < 1 should error")
	}
}
