// Package dispatch is the service decomposition of the simulator: a
// dispatcher daemon owning a durable pull queue, worker daemons that
// lease trajectory batches and stream results back, and the HTTP
// plumbing between them (the SIMQ dispatcher/simd/psq shape).
//
// The package is deliberately OUTSIDE lint.DeterministicPackages: a
// daemon legitimately reads the wall clock (lease deadlines, drain
// timeouts) and moves data across goroutines. Everything that must be
// deterministic — wire schemas, payload expansion, result
// canonicalization — lives in the dispatch/wire subpackage, which is
// in scope; the merged outputs are pure functions of (seed, sealed
// submission stream) no matter what this package's clocks do.
package dispatch

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"qcloud/internal/cloud"
	"qcloud/internal/dispatch/wire"
	"qcloud/internal/journal"
)

// TaskState is one queue entry's lifecycle state.
type TaskState int

const (
	TaskQueued TaskState = iota
	TaskLeased
	TaskDone
	TaskFailed
	TaskCancelled
)

func (s TaskState) String() string {
	switch s {
	case TaskQueued:
		return "queued"
	case TaskLeased:
		return "leased"
	case TaskDone:
		return "done"
	case TaskFailed:
		return "failed"
	case TaskCancelled:
		return "cancelled"
	}
	return fmt.Sprintf("TaskState(%d)", int(s))
}

// terminal reports whether the state is final.
func (s TaskState) terminal() bool {
	return s == TaskDone || s == TaskFailed || s == TaskCancelled
}

// Task is one submission's queue entry.
type Task struct {
	Seq     int64
	Key     string
	Spec    wire.Spec
	State   TaskState
	Attempt int // lease attempts consumed (expired leases + the completing one)
	Worker  string
	Counts  map[string]int
	Err     string

	deadline  time.Time // lease expiry, valid while leased
	notBefore time.Time // retry backoff gate, valid while queued
	// requeuePending marks a retried task whose requeue event has not
	// fired yet (it fires when the backoff gate opens, mirroring the
	// session's retry→requeue pairing).
	requeuePending bool
}

// ErrSealed rejects submissions after Seal.
var ErrSealed = errors.New("dispatch: submission stream sealed")

// QueueConfig parameterizes a durable queue.
type QueueConfig struct {
	// Dir is the queue's state directory: Dir/submits and Dir/results
	// hold the two WAL streams, Dir/checkpoint the watermark file.
	Dir string
	// Seed drives the deterministic backoff jitter (same seed as the
	// workload it queues).
	Seed int64
	// Lease bounds how long a pulled unit may go without a heartbeat
	// before it is requeued (default 30s).
	Lease time.Duration
	// Retry governs lease-expiry requeues through the session's
	// machinery. Defaults here are daemon-scale (5 attempts, 500ms
	// base, 15s cap) rather than the session's sim-scale defaults.
	Retry *cloud.RetryPolicy
	// CheckpointEvery writes the watermark checkpoint after this many
	// completion-log appends (default 64; Close always checkpoints).
	CheckpointEvery int
	// SyncEvery fsyncs the WALs every N records (default 0: flush to
	// the OS on every accept — SIGKILL-safe — but no fsync; see
	// journal.Options.SyncEvery).
	SyncEvery int
	// Now supplies wall time (default time.Now; tests inject clocks).
	Now func() time.Time
	// OnEvent, if set, observes the queue's live event stream (called
	// synchronously under the queue lock — keep it cheap and never
	// call back into the queue).
	OnEvent func(wire.Event)
}

func (c QueueConfig) withDefaults() QueueConfig {
	if c.Lease <= 0 {
		c.Lease = 30 * time.Second
	}
	if c.Retry == nil {
		c.Retry = &cloud.RetryPolicy{
			MaxAttempts: 5,
			BaseBackoff: 500 * time.Millisecond,
			MaxBackoff:  15 * time.Second,
		}
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 64
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Queue is the dispatcher's durable pull queue. Every accepted
// mutation (submit, seal, lease expiry, result, cancel) is appended to
// a WAL and flushed to the OS before it is acknowledged, so a SIGKILL
// at any instant loses nothing that was acked; recovery replays both
// streams. Leases are NOT journaled — they are leases precisely
// because losing them is safe: a restarted dispatcher forgets all
// in-flight leases and the units become pullable again, and the
// deterministic merge makes re-execution idempotent.
type Queue struct {
	cfg QueueConfig

	mu        sync.Mutex
	err       error // sticky WAL failure; queue refuses mutations after
	tasks     []*Task
	byKey     map[string]int64
	sealed    bool
	recovered bool

	submits *journal.Writer // submit/seal records
	results *journal.Writer // expire/result/cancel records

	sinceCkpt int
}

// checkpoint is the watermark file: how far each stream had definitely
// been written when the checkpoint was taken. Recovery refuses to
// proceed if a stream's surviving valid prefix is shorter than the
// watermark — that is media damage or tampering, not a crash tail, and
// silently replaying less than was acked would un-happen
// acknowledged work.
type checkpoint struct {
	V          int   `json:"v"`
	SubmitRecs int64 `json:"submit_recs"`
	ResultRecs int64 `json:"result_recs"`
}

var ckptMagic = []byte("QDC1")

const (
	submitsDirName = "submits"
	resultsDirName = "results"
	ckptName       = "checkpoint"
)

// OpenQueue opens (or creates) the durable queue rooted at cfg.Dir,
// replaying any existing state.
func OpenQueue(cfg QueueConfig) (*Queue, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("dispatch: QueueConfig.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	q := &Queue{cfg: cfg, byKey: make(map[string]int64)}

	subDir := filepath.Join(cfg.Dir, submitsDirName)
	resDir := filepath.Join(cfg.Dir, resultsDirName)

	subScan, err := journal.ForEach(subDir, q.replaySubmit)
	if err != nil {
		return nil, fmt.Errorf("dispatch: replaying submit log: %w", err)
	}
	resScan, err := journal.ForEach(resDir, q.replayResult)
	if err != nil {
		return nil, fmt.Errorf("dispatch: replaying completion log: %w", err)
	}
	ck, err := readCheckpoint(filepath.Join(cfg.Dir, ckptName))
	if err != nil {
		return nil, err
	}
	if ck != nil {
		if subScan.Records < ck.SubmitRecs {
			return nil, fmt.Errorf("dispatch: submit log has %d valid records but checkpoint pins %d — log damaged beyond the crash tail",
				subScan.Records, ck.SubmitRecs)
		}
		if resScan.Records < ck.ResultRecs {
			return nil, fmt.Errorf("dispatch: completion log has %d valid records but checkpoint pins %d — log damaged beyond the crash tail",
				resScan.Records, ck.ResultRecs)
		}
	}
	opts := journal.Options{SyncEvery: cfg.SyncEvery}
	if q.submits, err = journal.OpenAt(subDir, subScan.Records, opts); err != nil {
		return nil, fmt.Errorf("dispatch: opening submit log: %w", err)
	}
	if q.results, err = journal.OpenAt(resDir, resScan.Records, opts); err != nil {
		q.submits.Abandon()
		return nil, fmt.Errorf("dispatch: opening completion log: %w", err)
	}
	q.recovered = subScan.Records > 0 || resScan.Records > 0
	// Recovery forgets leases: anything non-terminal is queued and
	// immediately eligible (its backoff, if any, died with the
	// process — harmless, since eligibility timing never reaches the
	// merged outputs).
	for _, t := range q.tasks {
		if !t.State.terminal() {
			t.State = TaskQueued
			t.Worker = ""
			t.notBefore = time.Time{}
			t.requeuePending = false
		}
	}
	return q, nil
}

// replaySubmit applies one submit-log record during recovery.
func (q *Queue) replaySubmit(rec int64, payload []byte) error {
	env, err := wire.DecodeRecord(payload)
	if err != nil {
		return fmt.Errorf("submit record %d: %w", rec, err)
	}
	switch env.Type {
	case wire.RecSubmit:
		var sr wire.SubmitRec
		if err := json.Unmarshal(env.Data, &sr); err != nil {
			return fmt.Errorf("submit record %d: %w", rec, err)
		}
		if sr.Seq != int64(len(q.tasks)) {
			return fmt.Errorf("submit record %d: seq %d out of order (want %d)", rec, sr.Seq, len(q.tasks))
		}
		q.tasks = append(q.tasks, &Task{Seq: sr.Seq, Key: sr.Key, Spec: sr.Spec})
		if sr.Key != "" {
			q.byKey[sr.Key] = sr.Seq
		}
	case wire.RecSeal:
		q.sealed = true
	default:
		return fmt.Errorf("submit record %d: unexpected type %q", rec, env.Type)
	}
	return nil
}

// replayResult applies one completion-log record during recovery.
func (q *Queue) replayResult(rec int64, payload []byte) error {
	env, err := wire.DecodeRecord(payload)
	if err != nil {
		return fmt.Errorf("completion record %d: %w", rec, err)
	}
	task := func(seq int64) (*Task, error) {
		if seq < 0 || seq >= int64(len(q.tasks)) {
			return nil, fmt.Errorf("completion record %d: unknown seq %d", rec, seq)
		}
		return q.tasks[seq], nil
	}
	switch env.Type {
	case wire.RecExpire:
		var er wire.ExpireRec
		if err := json.Unmarshal(env.Data, &er); err != nil {
			return err
		}
		t, err := task(er.Seq)
		if err != nil {
			return err
		}
		if er.Attempt > t.Attempt {
			t.Attempt = er.Attempt
		}
	case wire.RecResult:
		var rr wire.ResultRec
		if err := json.Unmarshal(env.Data, &rr); err != nil {
			return err
		}
		t, err := task(rr.Seq)
		if err != nil {
			return err
		}
		if t.State.terminal() {
			break // first outcome wins, exactly like the live path
		}
		t.Worker = rr.Worker
		if rr.Attempt > t.Attempt {
			t.Attempt = rr.Attempt
		}
		if rr.Err != "" {
			t.State, t.Err = TaskFailed, rr.Err
		} else {
			t.State, t.Counts = TaskDone, wire.PairsToCounts(rr.Counts)
		}
	case wire.RecCancel:
		var cr wire.CancelRec
		if err := json.Unmarshal(env.Data, &cr); err != nil {
			return err
		}
		t, err := task(cr.Seq)
		if err != nil {
			return err
		}
		if !t.State.terminal() {
			t.State = TaskCancelled
		}
	default:
		return fmt.Errorf("completion record %d: unexpected type %q", rec, env.Type)
	}
	return nil
}

// Recovered reports whether OpenQueue replayed pre-existing state.
func (q *Queue) Recovered() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.recovered
}

// emit delivers one live event (caller holds q.mu).
func (q *Queue) emit(ev wire.Event) {
	if q.cfg.OnEvent != nil {
		ev.At = q.cfg.Now()
		q.cfg.OnEvent(ev)
	}
}

// appendLocked journals one record to w and flushes it to the OS —
// the ack barrier. A failure here is sticky: the queue stops accepting
// mutations rather than diverging from its log.
func (q *Queue) appendLocked(w *journal.Writer, typ string, payload any) error {
	if q.err != nil {
		return q.err
	}
	raw, err := wire.EncodeRecord(typ, payload)
	if err == nil {
		if err = w.Append(raw); err == nil {
			err = w.Flush()
		}
	}
	if err != nil {
		q.err = fmt.Errorf("dispatch: journal append failed, queue is read-only: %w", err)
		return q.err
	}
	return nil
}

// Submit accepts one spec under an idempotency key. A repeated key
// returns the original seq with dup=true and journals nothing.
func (q *Queue) Submit(key string, spec wire.Spec) (seq int64, dup bool, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.err != nil {
		return 0, false, q.err
	}
	if key != "" {
		if s, ok := q.byKey[key]; ok {
			return s, true, nil
		}
	}
	if q.sealed {
		return 0, false, ErrSealed
	}
	seq = int64(len(q.tasks))
	if err := q.appendLocked(q.submits, wire.RecSubmit, wire.SubmitRec{Seq: seq, Key: key, Spec: spec}); err != nil {
		return 0, false, err
	}
	q.tasks = append(q.tasks, &Task{Seq: seq, Key: key, Spec: spec})
	if key != "" {
		q.byKey[key] = seq
	}
	q.emit(wire.Event{Kind: cloud.EventEnqueue, Seq: seq})
	return seq, false, nil
}

// Seal closes the submission stream (idempotent).
func (q *Queue) Seal() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.err != nil {
		return q.err
	}
	if q.sealed {
		return nil
	}
	if err := q.appendLocked(q.submits, wire.RecSeal, wire.SealRec{}); err != nil {
		return err
	}
	q.sealed = true
	return nil
}

// Sealed reports whether the submission stream is closed.
func (q *Queue) Sealed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.sealed
}

// sweepLocked advances lease and backoff state to now: expired leases
// consume an attempt and either requeue through the retry policy or
// fail terminally; requeued tasks whose backoff gate has opened fire
// their requeue event.
func (q *Queue) sweepLocked(now time.Time) {
	for _, t := range q.tasks {
		switch t.State {
		case TaskLeased:
			if t.deadline.After(now) {
				continue
			}
			t.Attempt++
			worker := t.Worker
			t.Worker = ""
			if q.appendLocked(q.results, wire.RecExpire, wire.ExpireRec{Seq: t.Seq, Attempt: t.Attempt}) != nil {
				return
			}
			if t.Attempt >= q.cfg.Retry.MaxAttempts {
				errMsg := fmt.Sprintf("lease expired on attempt %d/%d (last worker %s)",
					t.Attempt, q.cfg.Retry.MaxAttempts, worker)
				if q.appendLocked(q.results, wire.RecResult, wire.ResultRec{Seq: t.Seq, Attempt: t.Attempt, Err: errMsg}) != nil {
					return
				}
				t.State, t.Err = TaskFailed, errMsg
				q.noteCompletionLocked()
				q.emit(wire.Event{Kind: cloud.EventError, Seq: t.Seq, Attempt: t.Attempt, Worker: worker, Err: errMsg})
				continue
			}
			delay := q.cfg.Retry.Backoff(t.Attempt, q.cfg.Seed, 0, t.Seq)
			t.State = TaskQueued
			t.notBefore = now.Add(time.Duration(delay * float64(time.Second)))
			t.requeuePending = true
			q.emit(wire.Event{Kind: cloud.EventRetry, Seq: t.Seq, Attempt: t.Attempt, Worker: worker, NextAttemptAt: t.notBefore})
		case TaskQueued:
			if t.requeuePending && !t.notBefore.After(now) {
				t.requeuePending = false
				q.emit(wire.Event{Kind: cloud.EventRequeue, Seq: t.Seq, Attempt: t.Attempt})
			}
		}
	}
}

// Pull leases up to max eligible units to the worker, lowest seq
// first.
func (q *Queue) Pull(worker string, max int) ([]wire.Unit, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.err != nil {
		return nil, q.err
	}
	now := q.cfg.Now()
	q.sweepLocked(now)
	if max <= 0 {
		max = 1
	}
	var units []wire.Unit
	for _, t := range q.tasks {
		if len(units) >= max {
			break
		}
		if t.State != TaskQueued || t.notBefore.After(now) {
			continue
		}
		t.State = TaskLeased
		t.Worker = worker
		t.deadline = now.Add(q.cfg.Lease)
		t.requeuePending = false
		units = append(units, wire.Unit{
			Seq:      t.Seq,
			Attempt:  t.Attempt,
			Spec:     t.Spec,
			LeaseSec: q.cfg.Lease.Seconds(),
		})
		q.emit(wire.Event{Kind: cloud.EventStart, Seq: t.Seq, Attempt: t.Attempt, Worker: worker})
	}
	return units, nil
}

// Heartbeat extends the worker's live leases, returning how many were
// still held.
func (q *Queue) Heartbeat(worker string, seqs []int64) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.cfg.Now()
	q.sweepLocked(now)
	extended := 0
	for _, seq := range seqs {
		if seq < 0 || seq >= int64(len(q.tasks)) {
			continue
		}
		t := q.tasks[seq]
		if t.State == TaskLeased && t.Worker == worker {
			t.deadline = now.Add(q.cfg.Lease)
			extended++
		}
	}
	return extended
}

// Result records one unit's outcome. accepted=false means the task
// was already terminal (duplicate or post-cancel report) and the first
// outcome was kept. A late result from an expired lease is accepted:
// the work is deterministic, so the outcome is the one any other
// attempt would produce.
func (q *Queue) Result(worker string, seq int64, attempt int, counts map[string]int, errMsg string) (accepted bool, state TaskState, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.err != nil {
		return false, 0, q.err
	}
	q.sweepLocked(q.cfg.Now())
	if seq < 0 || seq >= int64(len(q.tasks)) {
		return false, 0, fmt.Errorf("dispatch: result for unknown seq %d", seq)
	}
	t := q.tasks[seq]
	if t.State.terminal() {
		return false, t.State, nil
	}
	rr := wire.ResultRec{Seq: seq, Attempt: attempt, Worker: worker, Err: errMsg}
	if errMsg == "" {
		rr.Counts = wire.CountsToPairs(counts)
	}
	if err := q.appendLocked(q.results, wire.RecResult, rr); err != nil {
		return false, 0, err
	}
	t.Worker = worker
	if attempt > t.Attempt {
		t.Attempt = attempt
	}
	if errMsg != "" {
		t.State, t.Err = TaskFailed, errMsg
		q.emit(wire.Event{Kind: cloud.EventError, Seq: seq, Attempt: attempt, Worker: worker, Err: errMsg})
	} else {
		t.State, t.Counts = TaskDone, counts
		q.emit(wire.Event{Kind: cloud.EventDone, Seq: seq, Attempt: attempt, Worker: worker})
	}
	q.noteCompletionLocked()
	return true, t.State, nil
}

// Cancel cancels by key (preferred) or seq. accepted=false means the
// task was already terminal.
func (q *Queue) Cancel(key string, seq int64) (accepted bool, state TaskState, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.err != nil {
		return false, 0, q.err
	}
	q.sweepLocked(q.cfg.Now())
	if key != "" {
		s, ok := q.byKey[key]
		if !ok {
			return false, 0, fmt.Errorf("dispatch: cancel of unknown key %q", key)
		}
		seq = s
	}
	if seq < 0 || seq >= int64(len(q.tasks)) {
		return false, 0, fmt.Errorf("dispatch: cancel of unknown seq %d", seq)
	}
	t := q.tasks[seq]
	if t.State.terminal() {
		return false, t.State, nil
	}
	if err := q.appendLocked(q.results, wire.RecCancel, wire.CancelRec{Seq: seq}); err != nil {
		return false, 0, err
	}
	t.State = TaskCancelled
	q.noteCompletionLocked()
	q.emit(wire.Event{Kind: cloud.EventCancel, Seq: seq, Attempt: t.Attempt})
	return true, TaskCancelled, nil
}

// Stats is a point-in-time tally of queue states.
type Stats struct {
	Sealed    bool
	Jobs      int
	Queued    int
	Leased    int
	Done      int
	Failed    int
	Cancelled int
}

// Terminal reports the number of finished tasks.
func (s Stats) Terminal() int { return s.Done + s.Failed + s.Cancelled }

// Stats sweeps and tallies.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.sweepLocked(q.cfg.Now())
	st := Stats{Sealed: q.sealed, Jobs: len(q.tasks)}
	for _, t := range q.tasks {
		switch t.State {
		case TaskQueued:
			st.Queued++
		case TaskLeased:
			st.Leased++
		case TaskDone:
			st.Done++
		case TaskFailed:
			st.Failed++
		case TaskCancelled:
			st.Cancelled++
		}
	}
	return st
}

// Results assembles the counts-plane merge of every terminal task.
func (q *Queue) Results() *cloud.ResultSet {
	q.mu.Lock()
	defer q.mu.Unlock()
	rs := cloud.NewResultSet()
	for _, t := range q.tasks {
		if !t.State.terminal() {
			continue
		}
		jr := cloud.JobResult{
			Seq: t.Seq, Circuit: t.Spec.ExecLabel(),
			Batch: t.Spec.ExecBatch, Shots: t.Spec.ExecShots,
		}
		switch t.State {
		case TaskCancelled:
			jr.Cancelled = true
		case TaskFailed:
			jr.Err = t.Err
		case TaskDone:
			jr.Counts = t.Counts
		}
		rs.Ingest(jr)
	}
	return rs
}

// TraceInputs returns every submission's spec in seq order plus its
// cancelled flag — the trace plane's replay input.
func (q *Queue) TraceInputs() (specs []wire.Spec, cancelled []bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	specs = make([]wire.Spec, len(q.tasks))
	cancelled = make([]bool, len(q.tasks))
	for i, t := range q.tasks {
		specs[i] = t.Spec
		cancelled[i] = t.State == TaskCancelled
	}
	return specs, cancelled
}

// noteCompletionLocked counts completion-log activity toward the
// checkpoint cadence.
func (q *Queue) noteCompletionLocked() {
	q.sinceCkpt++
	if q.sinceCkpt >= q.cfg.CheckpointEvery {
		q.writeCheckpointLocked()
	}
}

// writeCheckpointLocked persists the watermark (best-effort: a failed
// checkpoint only weakens future damage detection, never correctness).
func (q *Queue) writeCheckpointLocked() {
	q.sinceCkpt = 0
	ck := checkpoint{V: wire.Version, SubmitRecs: q.submits.Records(), ResultRecs: q.results.Records()}
	_ = writeCheckpointFile(filepath.Join(q.cfg.Dir, ckptName), ck)
}

// Close checkpoints and seals both WAL streams. The queue refuses
// further mutations once closed.
func (q *Queue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.submits == nil {
		return nil
	}
	q.writeCheckpointLocked()
	err1 := q.submits.Close()
	err2 := q.results.Close()
	q.submits, q.results = nil, nil
	if q.err == nil {
		q.err = errors.New("dispatch: queue closed")
	}
	if err1 != nil {
		return err1
	}
	return err2
}

// --- checkpoint file framing ---------------------------------------------

// writeCheckpointFile frames the checkpoint as magic · u32le len ·
// u32le CRC32C(payload) · payload, written to a temp file and renamed
// into place so a crash never leaves a half-written checkpoint.
func writeCheckpointFile(path string, ck checkpoint) error {
	payload, err := json.Marshal(ck)
	if err != nil {
		return err
	}
	buf := make([]byte, 0, len(ckptMagic)+8+len(payload))
	buf = append(buf, ckptMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)))
	buf = append(buf, payload...)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// readCheckpoint loads the watermark file. A missing file is nil (no
// watermark to enforce); a torn or corrupt file is likewise nil — the
// checkpoint is an extra guard, and a file that died mid-rename must
// not block an otherwise clean recovery.
func readCheckpoint(path string) (*checkpoint, error) {
	buf, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if len(buf) < len(ckptMagic)+8 || string(buf[:len(ckptMagic)]) != string(ckptMagic) {
		return nil, nil
	}
	n := binary.LittleEndian.Uint32(buf[len(ckptMagic):])
	crc := binary.LittleEndian.Uint32(buf[len(ckptMagic)+4:])
	payload := buf[len(ckptMagic)+8:]
	if uint32(len(payload)) != n || crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)) != crc {
		return nil, nil
	}
	var ck checkpoint
	if err := json.Unmarshal(payload, &ck); err != nil {
		return nil, nil
	}
	if ck.V != wire.Version {
		return nil, nil
	}
	return &ck, nil
}
