package dispatch

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"qcloud/internal/cloud"
	"qcloud/internal/dispatch/wire"
	"qcloud/internal/workload"
)

// testPlans builds a small deterministic workload's exec plans.
func testPlans(t *testing.T, seed int64, jobs int) []wire.Spec {
	t.Helper()
	start := time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)
	specs := workload.Generate(workload.Config{
		Seed: seed, TotalJobs: jobs,
		Start: start, End: start.Add(30 * 24 * time.Hour),
	})
	if len(specs) == 0 {
		t.Fatal("empty workload")
	}
	caps := wire.ExecCaps{MaxWidth: 4, MaxBatch: 1, MaxShots: 16}
	plans := make([]wire.Spec, len(specs))
	for i, js := range specs {
		plans[i] = wire.Plan(js, caps, seed, i)
	}
	return plans
}

// fakeClock is an injectable, manually-advanced wall clock.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

func openTestQueue(t *testing.T, dir string, clk *fakeClock, events *[]wire.Event) *Queue {
	t.Helper()
	cfg := QueueConfig{
		Dir:   dir,
		Seed:  11,
		Lease: time.Second,
		Retry: &cloud.RetryPolicy{MaxAttempts: 2, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 20 * time.Millisecond},
	}
	if clk != nil {
		cfg.Now = clk.Now
	}
	if events != nil {
		cfg.OnEvent = func(ev wire.Event) { *events = append(*events, ev) }
	}
	q, err := OpenQueue(cfg)
	if err != nil {
		t.Fatalf("OpenQueue: %v", err)
	}
	return q
}

func TestQueueSubmitIdempotentAndSeal(t *testing.T) {
	plans := testPlans(t, 3, 10)
	q := openTestQueue(t, t.TempDir(), nil, nil)
	defer q.Close()

	seq0, dup, err := q.Submit("c/0", plans[0])
	if err != nil || dup || seq0 != 0 {
		t.Fatalf("first submit = (%d, %v, %v)", seq0, dup, err)
	}
	again, dup, err := q.Submit("c/0", plans[0])
	if err != nil || !dup || again != seq0 {
		t.Fatalf("duplicate submit = (%d, %v, %v), want (0, true, nil)", again, dup, err)
	}
	if _, _, err := q.Submit("c/1", plans[1]); err != nil {
		t.Fatal(err)
	}
	if err := q.Seal(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.Submit("c/2", plans[2]); err != ErrSealed {
		t.Fatalf("post-seal submit err = %v, want ErrSealed", err)
	}
	// Sealed duplicates still resolve: the load client may re-send
	// after a restart that happened post-seal.
	if _, dup, err := q.Submit("c/1", plans[1]); err != nil || !dup {
		t.Fatalf("post-seal duplicate = (%v, %v), want (true, nil)", dup, err)
	}
	if st := q.Stats(); st.Jobs != 2 || !st.Sealed {
		t.Fatalf("stats = %+v", st)
	}
}

func TestQueueLeaseExpiryRequeuesThenFails(t *testing.T) {
	plans := testPlans(t, 3, 10)
	clk := &fakeClock{now: time.Unix(1_700_000_000, 0)}
	var events []wire.Event
	q := openTestQueue(t, t.TempDir(), clk, &events)
	defer q.Close()

	if _, _, err := q.Submit("c/0", plans[0]); err != nil {
		t.Fatal(err)
	}
	units, err := q.Pull("w1", 4)
	if err != nil || len(units) != 1 || units[0].Attempt != 0 {
		t.Fatalf("pull = %v, %v", units, err)
	}
	// Heartbeats keep the lease alive across the nominal deadline.
	clk.Advance(900 * time.Millisecond)
	if n := q.Heartbeat("w1", []int64{0}); n != 1 {
		t.Fatalf("heartbeat extended %d, want 1", n)
	}
	clk.Advance(900 * time.Millisecond)
	if st := q.Stats(); st.Leased != 1 {
		t.Fatalf("lease lost despite heartbeat: %+v", st)
	}

	// Silence: the lease expires, attempt 1 is consumed, the unit
	// requeues behind the retry backoff.
	clk.Advance(2 * time.Second)
	if st := q.Stats(); st.Queued != 1 || st.Leased != 0 {
		t.Fatalf("after expiry: %+v", st)
	}
	// Not eligible until the backoff gate opens.
	if units, _ := q.Pull("w2", 4); len(units) != 0 {
		t.Fatalf("pulled %v before backoff opened", units)
	}
	clk.Advance(time.Second)
	units, err = q.Pull("w2", 4)
	if err != nil || len(units) != 1 || units[0].Attempt != 1 {
		t.Fatalf("requeued pull = %v, %v (want attempt 1)", units, err)
	}
	// Second expiry exhausts MaxAttempts=2: terminal failure.
	clk.Advance(5 * time.Second)
	st := q.Stats()
	if st.Failed != 1 || st.Queued != 0 || st.Leased != 0 {
		t.Fatalf("after exhaustion: %+v", st)
	}

	var kinds []cloud.EventKind
	for _, ev := range events {
		kinds = append(kinds, ev.Kind)
	}
	want := []cloud.EventKind{
		cloud.EventEnqueue, cloud.EventStart, cloud.EventRetry,
		cloud.EventRequeue, cloud.EventStart, cloud.EventError,
	}
	if len(kinds) != len(want) {
		t.Fatalf("event kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d = %s, want %s (all: %v)", i, kinds[i], want[i], kinds)
		}
	}
}

func TestQueueLateResultAfterExpiryAccepted(t *testing.T) {
	plans := testPlans(t, 3, 10)
	clk := &fakeClock{now: time.Unix(1_700_000_000, 0)}
	q := openTestQueue(t, t.TempDir(), clk, nil)
	defer q.Close()

	if _, _, err := q.Submit("c/0", plans[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Pull("w1", 1); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second) // lease expires, unit requeues
	accepted, state, err := q.Result("w1", 0, 0, map[string]int{"00": 16}, "")
	if err != nil || !accepted || state != TaskDone {
		t.Fatalf("late result = (%v, %v, %v)", accepted, state, err)
	}
	// A duplicate report of the now-terminal unit is dropped.
	accepted, state, err = q.Result("w2", 0, 1, map[string]int{"00": 16}, "")
	if err != nil || accepted || state != TaskDone {
		t.Fatalf("duplicate result = (%v, %v, %v)", accepted, state, err)
	}
	if st := q.Stats(); st.Done != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestQueueReopenRestoresStateAndForgetsLeases(t *testing.T) {
	plans := testPlans(t, 3, 20)
	dir := t.TempDir()
	q := openTestQueue(t, dir, nil, nil)
	if q.Recovered() {
		t.Fatal("fresh queue claims recovery")
	}
	for i, p := range plans[:6] {
		if _, _, err := q.Submit(key(t, i), p); err != nil {
			t.Fatal(err)
		}
	}
	// One done, one failed, one cancelled, one leased, two queued.
	if _, err := q.Pull("w1", 2); err != nil { // leases seq 0,1
		t.Fatal(err)
	}
	if _, _, err := q.Result("w1", 0, 0, map[string]int{"0000": 16}, ""); err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.Result("w1", 1, 0, nil, "deterministic build failure"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.Cancel("", 2); err != nil {
		t.Fatal(err)
	}
	if units, err := q.Pull("w1", 1); err != nil || len(units) != 1 || units[0].Seq != 3 {
		t.Fatalf("lease pull = %v, %v", units, err)
	}
	if err := q.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	r := openTestQueue(t, dir, nil, nil)
	defer r.Close()
	if !r.Recovered() {
		t.Fatal("reopened queue does not report recovery")
	}
	st := r.Stats()
	if st.Jobs != 6 || st.Done != 1 || st.Failed != 1 || st.Cancelled != 1 ||
		st.Leased != 0 || st.Queued != 3 || !st.Sealed {
		t.Fatalf("recovered stats = %+v", st)
	}
	// The idempotency index survives replay.
	if _, dup, err := r.Submit(key(t, 4), plans[4]); err != nil || !dup {
		t.Fatalf("post-recovery duplicate = (%v, %v)", dup, err)
	}
	// The completed counts survive byte-exactly.
	res, ok := r.Results().Get(0)
	if !ok || res.Counts["0000"] != 16 {
		t.Fatalf("recovered result = %+v, %v", res, ok)
	}
}

func key(t *testing.T, i int) string {
	t.Helper()
	return "c/" + string(rune('0'+i))
}

func TestQueueWatermarkViolationRefusesRecovery(t *testing.T) {
	plans := testPlans(t, 3, 10)
	dir := t.TempDir()
	q := openTestQueue(t, dir, nil, nil)
	for i, p := range plans[:3] {
		if _, _, err := q.Submit(key(t, i), p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := q.Pull("w1", 3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.Result("w1", 0, 0, map[string]int{"00": 1}, ""); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil { // checkpoint pins both streams
		t.Fatal(err)
	}

	// Losing a whole journaled stream is not a crash tail: the
	// checkpoint watermark must refuse to silently un-happen acked
	// completions.
	segs, err := filepath.Glob(filepath.Join(dir, resultsDirName, "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no result segments: %v %v", segs, err)
	}
	for _, s := range segs {
		if err := os.Remove(s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := OpenQueue(QueueConfig{Dir: dir, Seed: 11}); err == nil {
		t.Fatal("recovery succeeded despite completion log loss")
	}
}

func TestQueueTornTailTolerated(t *testing.T) {
	plans := testPlans(t, 3, 10)
	dir := t.TempDir()
	q := openTestQueue(t, dir, nil, nil)
	for i, p := range plans[:3] {
		if _, _, err := q.Submit(key(t, i), p); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	// A crash can tear the tail of the last frame; garbage past the
	// valid prefix must not block recovery. (Anything before the
	// checkpoint watermark is covered by the previous test.)
	segs, err := filepath.Glob(filepath.Join(dir, submitsDirName, "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no submit segments: %v %v", segs, err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r := openTestQueue(t, dir, nil, nil)
	defer r.Close()
	if st := r.Stats(); st.Jobs != 3 {
		t.Fatalf("recovered stats = %+v", st)
	}
}
