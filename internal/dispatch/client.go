package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"qcloud/internal/dispatch/wire"
)

// Client is the psq-style thin client for the dispatcher's HTTP API.
type Client struct {
	// Server is the dispatcher's base URL.
	Server string
	// HTTP is the transport (default http.DefaultClient).
	HTTP *http.Client
	// Timeout bounds each call (default 10s).
	Timeout time.Duration
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 10 * time.Second
}

// do runs one JSON round trip; non-200 responses surface the server's
// error string.
func (c *Client) do(method, path string, req, resp any) error {
	var body io.Reader
	if req != nil {
		raw, err := json.Marshal(req)
		if err != nil {
			return err
		}
		body = bytes.NewReader(raw)
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.timeout())
	defer cancel()
	hr, err := http.NewRequestWithContext(ctx, method, c.Server+path, body)
	if err != nil {
		return err
	}
	if req != nil {
		hr.Header.Set("Content-Type", "application/json")
	}
	res, err := c.http().Do(hr)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	data, err := io.ReadAll(io.LimitReader(res.Body, 256<<20))
	if err != nil {
		return err
	}
	if res.StatusCode != http.StatusOK {
		var ge wire.GenericResponse
		if json.Unmarshal(data, &ge) == nil && ge.Err != "" {
			return fmt.Errorf("dispatch: %s: %s", path, ge.Err)
		}
		return fmt.Errorf("dispatch: %s: HTTP %d", path, res.StatusCode)
	}
	if raw, ok := resp.(*[]byte); ok {
		*raw = data
		return nil
	}
	return json.Unmarshal(data, resp)
}

// Submit submits one spec under an idempotency key.
func (c *Client) Submit(key string, spec wire.Spec) (wire.SubmitResponse, error) {
	var resp wire.SubmitResponse
	err := c.do(http.MethodPost, "/v1/submit", wire.SubmitRequest{V: wire.Version, Key: key, Spec: spec}, &resp)
	return resp, err
}

// Seal closes the submission stream.
func (c *Client) Seal() error {
	var resp wire.GenericResponse
	return c.do(http.MethodPost, "/v1/seal", wire.SealRequest{V: wire.Version}, &resp)
}

// Cancel cancels by key or seq.
func (c *Client) Cancel(key string, seq int64) (wire.ResultResponse, error) {
	var resp wire.ResultResponse
	err := c.do(http.MethodPost, "/v1/cancel", wire.CancelRequest{V: wire.Version, Key: key, Seq: seq}, &resp)
	return resp, err
}

// Status fetches the live status summary.
func (c *Client) Status() (wire.StatusResponse, error) {
	var resp wire.StatusResponse
	err := c.do(http.MethodGet, "/v1/status", nil, &resp)
	return resp, err
}

// Events pages the observable event stream from the cursor.
func (c *Client) Events(since int64) (wire.EventsResponse, error) {
	var resp wire.EventsResponse
	err := c.do(http.MethodGet, fmt.Sprintf("/v1/events?since=%d", since), nil, &resp)
	return resp, err
}

// TraceCSV fetches the trace-plane result (requires a sealed stream).
func (c *Client) TraceCSV() ([]byte, error) {
	var raw []byte
	err := c.do(http.MethodGet, "/v1/result/trace", nil, &raw)
	return raw, err
}

// CountsCSV fetches the counts-plane result (requires a sealed,
// fully-terminal stream unless partial).
func (c *Client) CountsCSV(partial bool) ([]byte, error) {
	path := "/v1/result/counts"
	if partial {
		path += "?partial=1"
	}
	var raw []byte
	err := c.do(http.MethodGet, path, nil, &raw)
	return raw, err
}
