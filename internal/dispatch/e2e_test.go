package dispatch_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"qcloud/internal/backend"
	"qcloud/internal/cloud"
	"qcloud/internal/dispatch"
	"qcloud/internal/dispatch/wire"
	"qcloud/internal/qsim"
	"qcloud/internal/trace"
	"qcloud/internal/workload"
)

const (
	e2eSeed = 7
	e2eJobs = 40
	e2eDays = 60
)

// e2eWorkload builds the shared test workload: the study specs and
// their exec plans.
func e2eWorkload(t *testing.T) (specs []*cloud.JobSpec, plans []wire.Spec, start, end time.Time) {
	t.Helper()
	start = backend.StudyStart
	end = start.Add(e2eDays * 24 * time.Hour)
	specs = workload.Generate(workload.Config{Seed: e2eSeed, TotalJobs: e2eJobs, Start: start, End: end})
	if len(specs) < 10 {
		t.Fatalf("workload too small: %d jobs", len(specs))
	}
	plans = make([]wire.Spec, len(specs))
	for i, js := range specs {
		plans[i] = wire.Plan(js, wire.ExecCaps{}, e2eSeed, i)
	}
	return specs, plans, start, end
}

// goldenTrace is the single-process Session.Run reference for the
// trace plane.
func goldenTrace(t *testing.T, specs []*cloud.JobSpec, start, end time.Time) []byte {
	t.Helper()
	tr, err := cloud.Simulate(cloud.Config{Seed: e2eSeed, Start: start, End: end}, specs)
	if err != nil {
		t.Fatalf("golden Simulate: %v", err)
	}
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, tr.Jobs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// goldenCounts is the in-process reference for the counts plane.
func goldenCounts(t *testing.T, plans []wire.Spec) []byte {
	t.Helper()
	rs, err := wire.RunLocal(plans, qsim.Parallelism{})
	if err != nil {
		t.Fatalf("golden RunLocal: %v", err)
	}
	var buf bytes.Buffer
	if err := rs.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// startDispatcher builds a dispatcher + HTTP server over dir.
func startDispatcher(t *testing.T, dir string, start, end time.Time) (*dispatch.Dispatcher, *httptest.Server, *dispatch.Client) {
	t.Helper()
	d, err := dispatch.New(dispatch.Config{
		Dir: dir, Seed: e2eSeed, Start: start, End: end,
		Lease: 10 * time.Second,
	})
	if err != nil {
		t.Fatalf("dispatch.New: %v", err)
	}
	srv := httptest.NewServer(d.Handler())
	return d, srv, &dispatch.Client{Server: srv.URL}
}

// startWorkers launches n in-process workers against the server.
func startWorkers(t *testing.T, n int, server string) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w, err := dispatch.NewWorker(dispatch.WorkerConfig{
			Server: server,
			Name:   fmt.Sprintf("w%d", i),
			Poll:   5 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("NewWorker: %v", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run(ctx)
		}()
	}
	return func() {
		cancel()
		wg.Wait()
	}
}

// waitDrained polls status until every submission is terminal.
func waitDrained(t *testing.T, cl *dispatch.Client, jobs int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st, err := cl.Status()
		if err == nil && st.Sealed && st.Terminal() >= jobs {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	st, _ := cl.Status()
	t.Fatalf("workload did not drain: %+v", st)
}

// TestEndToEndDeterminism is the tentpole acceptance pin: dispatcher +
// N workers, N ∈ {1, 4}, produces merged trace and counts CSVs
// byte-identical to the single-process references, regardless of
// worker count.
func TestEndToEndDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e is slow")
	}
	specs, plans, start, end := e2eWorkload(t)
	wantTrace := goldenTrace(t, specs, start, end)
	wantCounts := goldenCounts(t, plans)

	for _, n := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", n), func(t *testing.T) {
			d, srv, cl := startDispatcher(t, t.TempDir(), start, end)
			defer func() {
				srv.Close()
				_ = d.Close()
			}()
			stop := startWorkers(t, n, srv.URL)
			defer stop()

			for i, p := range plans {
				resp, err := cl.Submit(fmt.Sprintf("load/%d", i), p)
				if err != nil {
					t.Fatalf("submit %d: %v", i, err)
				}
				if resp.Seq != int64(i) {
					t.Fatalf("seq = %d, want %d", resp.Seq, i)
				}
			}
			if err := cl.Seal(); err != nil {
				t.Fatal(err)
			}
			waitDrained(t, cl, len(plans))

			gotCounts, err := cl.CountsCSV(false)
			if err != nil {
				t.Fatalf("counts: %v", err)
			}
			if !bytes.Equal(gotCounts, wantCounts) {
				t.Errorf("counts CSV differs from in-process reference (%d vs %d bytes)", len(gotCounts), len(wantCounts))
			}
			gotTrace, err := cl.TraceCSV()
			if err != nil {
				t.Fatalf("trace: %v", err)
			}
			if !bytes.Equal(gotTrace, wantTrace) {
				t.Errorf("trace CSV differs from single-process Session.Run (%d vs %d bytes)", len(gotTrace), len(wantTrace))
			}

			// The observable stream saw exactly one terminal event per
			// submission (dup-free merge).
			ev, err := cl.Events(0)
			if err != nil {
				t.Fatal(err)
			}
			terminal := 0
			for _, e := range ev.Events {
				switch e.Kind {
				case cloud.EventDone, cloud.EventError, cloud.EventCancel:
					terminal++
				}
			}
			if terminal != len(plans) {
				t.Errorf("terminal events = %d, want %d", terminal, len(plans))
			}
		})
	}
}

// TestDispatcherRestartMidRun pins the durability contract in-process:
// a dispatcher torn down mid-run (submissions partially landed, units
// leased, some results merged) and reopened on the same state
// directory finishes with byte-identical merged output, with the load
// client blindly resubmitting through its idempotency keys.
func TestDispatcherRestartMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e is slow")
	}
	specs, plans, start, end := e2eWorkload(t)
	wantTrace := goldenTrace(t, specs, start, end)
	wantCounts := goldenCounts(t, plans)

	dir := t.TempDir()
	d1, srv1, cl1 := startDispatcher(t, dir, start, end)

	// First half submitted; a few units leased and two results merged;
	// one lease left dangling to be forgotten by the restart.
	half := len(plans) / 2
	for i := 0; i < half; i++ {
		if _, err := cl1.Submit(fmt.Sprintf("load/%d", i), plans[i]); err != nil {
			t.Fatal(err)
		}
	}
	units, err := d1.Queue().Pull("w-old", 3)
	if err != nil || len(units) != 3 {
		t.Fatalf("pull = %v, %v", units, err)
	}
	for _, u := range units[:2] {
		counts, err := runUnit(&u.Spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := d1.Queue().Result("w-old", u.Seq, u.Attempt, counts, ""); err != nil {
			t.Fatal(err)
		}
	}
	srv1.Close()
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same directory.
	d2, srv2, cl2 := startDispatcher(t, dir, start, end)
	defer func() {
		srv2.Close()
		_ = d2.Close()
	}()
	if !d2.Recovered() {
		t.Fatal("restarted dispatcher does not report recovery")
	}
	st, err := cl2.Status()
	if err != nil || st.Jobs != half || st.Done != 2 || st.Leased != 0 {
		t.Fatalf("recovered status = %+v, %v", st, err)
	}

	// The load client re-drives the whole stream: first half dedupes,
	// second half is new.
	dups := 0
	for i, p := range plans {
		resp, err := cl2.Submit(fmt.Sprintf("load/%d", i), p)
		if err != nil {
			t.Fatalf("resubmit %d: %v", i, err)
		}
		if resp.Dup {
			dups++
		}
		if resp.Seq != int64(i) {
			t.Fatalf("resubmit %d landed at seq %d", i, resp.Seq)
		}
	}
	if dups != half {
		t.Fatalf("dups = %d, want %d", dups, half)
	}
	if err := cl2.Seal(); err != nil {
		t.Fatal(err)
	}
	stop := startWorkers(t, 2, srv2.URL)
	defer stop()
	waitDrained(t, cl2, len(plans))

	gotCounts, err := cl2.CountsCSV(false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotCounts, wantCounts) {
		t.Error("counts CSV differs after mid-run restart")
	}
	gotTrace, err := cl2.TraceCSV()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotTrace, wantTrace) {
		t.Error("trace CSV differs after mid-run restart")
	}
}

// runUnit executes one unit the way a worker would.
func runUnit(s *wire.Spec) (map[string]int, error) {
	jobs, err := wire.BuildBatch(s)
	if err != nil {
		return nil, err
	}
	return wire.MergeBatch(qsim.BatchRun(jobs, qsim.Parallelism{}))
}

// TestDrainRejectsNewWorkLandsInFlight pins the dispatcher half of the
// graceful-shutdown contract at the API level: draining rejects
// submissions and stops granting leases, but an in-flight unit can
// still heartbeat and land its result, after which the dispatcher
// reports itself drained.
func TestDrainRejectsNewWorkLandsInFlight(t *testing.T) {
	_, plans, start, end := e2eWorkload(t)
	d, srv, cl := startDispatcher(t, t.TempDir(), start, end)
	defer func() {
		srv.Close()
		_ = d.Close()
	}()

	for i := 0; i < 2; i++ {
		if _, err := cl.Submit(fmt.Sprintf("load/%d", i), plans[i]); err != nil {
			t.Fatal(err)
		}
	}
	units, err := d.Queue().Pull("w0", 1)
	if err != nil || len(units) != 1 {
		t.Fatalf("pull = %v, %v", units, err)
	}

	d.BeginDrain()
	if d.Drained() {
		t.Fatal("drained with a lease in flight")
	}
	if _, err := cl.Submit("load/2", plans[2]); err == nil {
		t.Fatal("draining dispatcher accepted a submission")
	}
	st, err := cl.Status()
	if err != nil || !st.Draining {
		t.Fatalf("status = %+v, %v", st, err)
	}
	// HTTP pulls grant nothing while draining (the second queued unit
	// stays queued for the post-restart fleet)…
	body, _ := json.Marshal(wire.PullRequest{V: wire.Version, Worker: "w1", Max: 4})
	resp, err := http.Post(srv.URL+"/v1/pull", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var pull wire.PullResponse
	if err := json.NewDecoder(resp.Body).Decode(&pull); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(pull.Units) != 0 {
		t.Fatalf("draining dispatcher leased %d units", len(pull.Units))
	}
	// …but the in-flight unit still lands.
	if n := d.Queue().Heartbeat("w0", []int64{units[0].Seq}); n != 1 {
		t.Fatalf("heartbeat during drain extended %d", n)
	}
	counts, err := runUnit(&units[0].Spec)
	if err != nil {
		t.Fatal(err)
	}
	accepted, _, err := d.Queue().Result("w0", units[0].Seq, units[0].Attempt, counts, "")
	if err != nil || !accepted {
		t.Fatalf("result during drain = (%v, %v)", accepted, err)
	}
	if !d.Drained() {
		t.Fatal("not drained after the in-flight unit landed")
	}
}
