// Package wire defines the dispatcher's versioned JSON wire protocol
// and the deterministic execution-payload builders shared by the
// dispatcher, the workers, and the load client.
//
// The package splits the service decomposition along the determinism
// boundary: everything here — message schemas, the WAL record
// envelope, the spec → trajectory-batch expansion, the counts
// canonicalization feeding the merged CSV — must be bit-identical
// across hosts, worker counts, and restarts, so the package joins
// lint.DeterministicPackages (no wall clock, no global rand, no
// order-dependent map iteration). The daemons' operational code
// (listeners, lease timers, heartbeats) lives one level up in
// internal/dispatch and is deliberately outside that scope.
//
// The event taxonomy is cloud.EventKind verbatim: a dispatcher event
// stream is read with the same vocabulary as an in-process
// Session.Observe stream (enqueue, start, done, error, cancel, retry,
// requeue).
package wire

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"qcloud/internal/cloud"
)

// Version is the wire-protocol version. Every HTTP body and every WAL
// record carries it; both sides reject other versions loudly rather
// than guessing.
const Version = 1

// Spec is one submission: the trace-plane JobSpec the dispatcher's
// embedded deterministic session replays, plus the exec plan the
// workers execute as a qsim.BatchRun payload. The exec plan is derived
// from the JobSpec by Plan with capped width/batch/shots (study-scale
// circuits are queue-model entities, not statevector payloads).
type Spec struct {
	// Trace plane — mirrors cloud.JobSpec field for field. time.Time
	// round-trips RFC3339-nano in UTC, so replaying a decoded Spec
	// through cloud.Simulate is bit-identical to submitting the
	// original.
	SubmitTime   time.Time `json:"submit_time"`
	User         string    `json:"user"`
	Machine      string    `json:"machine"`
	BatchSize    int       `json:"batch_size"`
	Shots        int       `json:"shots"`
	CircuitName  string    `json:"circuit_name"`
	Width        int       `json:"width"`
	TotalDepth   int       `json:"total_depth"`
	TotalGateOps int       `json:"total_gate_ops"`
	CXTotal      int       `json:"cx_total"`
	MemSlots     int       `json:"mem_slots"`
	PatienceSec  float64   `json:"patience_sec,omitempty"`
	Privileged   bool      `json:"privileged,omitempty"`

	// Exec plane — the worker-side trajectory batch.
	ExecKind  string `json:"exec_kind"`
	ExecWidth int    `json:"exec_width"`
	ExecBatch int    `json:"exec_batch"`
	ExecShots int    `json:"exec_shots"`
	ExecSeed  int64  `json:"exec_seed"`
}

// JobSpec converts the trace plane back into the session's submission
// type.
func (s *Spec) JobSpec() *cloud.JobSpec {
	return &cloud.JobSpec{
		SubmitTime:   s.SubmitTime,
		User:         s.User,
		Machine:      s.Machine,
		BatchSize:    s.BatchSize,
		Shots:        s.Shots,
		CircuitName:  s.CircuitName,
		Width:        s.Width,
		TotalDepth:   s.TotalDepth,
		TotalGateOps: s.TotalGateOps,
		CXTotal:      s.CXTotal,
		MemSlots:     s.MemSlots,
		PatienceSec:  s.PatienceSec,
		Privileged:   s.Privileged,
	}
}

// ExecLabel names the exec-plane circuit family the way workload names
// trace circuits (kind + width).
func (s *Spec) ExecLabel() string {
	return fmt.Sprintf("%s%d", s.ExecKind, s.ExecWidth)
}

// Count is one bitstring tally. Counts cross the wire and the WAL as
// sorted []Count rather than map[string]int so every serialization of
// the same result is byte-identical.
type Count struct {
	Bits string `json:"bits"`
	N    int    `json:"n"`
}

// Event mirrors cloud.Event for the dispatcher's observable stream.
// Seq is the dispatcher-assigned submission sequence (the analogue of
// a session job ID), Attempt the lease attempt it describes.
type Event struct {
	Kind    cloud.EventKind `json:"kind"`
	Seq     int64           `json:"seq"`
	Attempt int             `json:"attempt"`
	Worker  string          `json:"worker,omitempty"`
	Err     string          `json:"err,omitempty"`
	// At is daemon wall time, informational only — nothing
	// deterministic may derive from it.
	At time.Time `json:"at"`
	// NextAttemptAt accompanies requeue events: when the retried lease
	// becomes eligible again.
	NextAttemptAt time.Time `json:"next_attempt_at,omitempty"`
}

// --- HTTP message bodies -------------------------------------------------

// SubmitRequest submits one Spec. Key is the client's idempotency key:
// resubmitting the same key returns the original seq with Dup set, so
// a load client can blindly retry across dispatcher restarts.
type SubmitRequest struct {
	V    int    `json:"v"`
	Key  string `json:"key"`
	Spec Spec   `json:"spec"`
}

type SubmitResponse struct {
	V   int   `json:"v"`
	Seq int64 `json:"seq"`
	Dup bool  `json:"dup,omitempty"`
}

// SealRequest marks the submission stream complete: no further submits
// are accepted and the trace-plane result becomes computable.
type SealRequest struct {
	V int `json:"v"`
}

// RegisterRequest registers or deregisters a worker by name.
type RegisterRequest struct {
	V    int    `json:"v"`
	Name string `json:"name"`
}

// PullRequest asks for up to Max leased units.
type PullRequest struct {
	V      int    `json:"v"`
	Worker string `json:"worker"`
	Max    int    `json:"max"`
}

// Unit is one leased unit of work: run the Spec's exec plan through
// qsim.BatchRun and report the merged counts before the lease expires.
type Unit struct {
	Seq     int64 `json:"seq"`
	Attempt int   `json:"attempt"`
	Spec    Spec  `json:"spec"`
	// LeaseSec is the lease duration in seconds; workers heartbeat a
	// few times per lease interval.
	LeaseSec float64 `json:"lease_sec"`
}

type PullResponse struct {
	V int `json:"v"`
	// Sealed tells an idle worker whether more work can still arrive.
	Sealed bool   `json:"sealed"`
	Units  []Unit `json:"units"`
}

// HeartbeatRequest extends the leases the worker still holds.
type HeartbeatRequest struct {
	V      int     `json:"v"`
	Worker string  `json:"worker"`
	Seqs   []int64 `json:"seqs"`
}

type HeartbeatResponse struct {
	V int `json:"v"`
	// Extended counts the leases that were still held by this worker
	// and got their deadlines pushed out; a shortfall tells the worker
	// some leases already expired.
	Extended int `json:"extended"`
}

// ResultRequest reports one finished unit. Err non-empty means the
// payload itself failed deterministically (build or simulation error).
type ResultRequest struct {
	V       int     `json:"v"`
	Worker  string  `json:"worker"`
	Seq     int64   `json:"seq"`
	Attempt int     `json:"attempt"`
	Counts  []Count `json:"counts,omitempty"`
	Err     string  `json:"err,omitempty"`
}

type ResultResponse struct {
	V int `json:"v"`
	// Accepted is false when the task already reached a terminal state
	// (duplicate or post-cancel report); the dispatcher kept its first
	// outcome.
	Accepted bool   `json:"accepted"`
	State    string `json:"state"`
}

// CancelRequest cancels by idempotency key or by seq (key wins when
// both are set).
type CancelRequest struct {
	V   int    `json:"v"`
	Key string `json:"key,omitempty"`
	Seq int64  `json:"seq,omitempty"`
}

// GenericResponse acknowledges requests with no payload.
type GenericResponse struct {
	V   int    `json:"v"`
	Err string `json:"err,omitempty"`
}

// StatusResponse is the dispatcher's live state summary.
type StatusResponse struct {
	V         int      `json:"v"`
	Sealed    bool     `json:"sealed"`
	Draining  bool     `json:"draining"`
	Jobs      int      `json:"jobs"`
	Queued    int      `json:"queued"`
	Leased    int      `json:"leased"`
	Done      int      `json:"done"`
	Failed    int      `json:"failed"`
	Cancelled int      `json:"cancelled"`
	Workers   []string `json:"workers,omitempty"`
	Recovered bool     `json:"recovered,omitempty"`
}

// Terminal reports how many tasks have reached a terminal state.
func (s *StatusResponse) Terminal() int { return s.Done + s.Failed + s.Cancelled }

// EventsResponse pages the observable event stream. Next is the cursor
// for the following request. The stream is a bounded in-memory ring:
// Truncated reports that events before the returned window were
// dropped (or lost to a restart) — observability is best-effort, the
// WALs are the durable record.
type EventsResponse struct {
	V         int     `json:"v"`
	Next      int64   `json:"next"`
	Truncated bool    `json:"truncated,omitempty"`
	Events    []Event `json:"events"`
}

// --- WAL record envelope -------------------------------------------------

// Record types appearing in the dispatcher's journals. The submit log
// carries submit/seal; the completion log carries expire/result/cancel.
const (
	RecSubmit = "submit"
	RecSeal   = "seal"
	RecExpire = "expire"
	RecResult = "result"
	RecCancel = "cancel"
)

// Envelope frames one WAL record: a version, a type tag, and the
// type's own JSON payload.
type Envelope struct {
	V    int             `json:"v"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data"`
}

// SubmitRec journals one accepted submission.
type SubmitRec struct {
	Seq  int64  `json:"seq"`
	Key  string `json:"key"`
	Spec Spec   `json:"spec"`
}

// SealRec journals the submission stream's seal.
type SealRec struct{}

// ExpireRec journals one lease expiry: the attempt that was lost.
type ExpireRec struct {
	Seq     int64 `json:"seq"`
	Attempt int   `json:"attempt"`
}

// ResultRec journals one terminal execution outcome.
type ResultRec struct {
	Seq     int64   `json:"seq"`
	Attempt int     `json:"attempt"`
	Worker  string  `json:"worker,omitempty"`
	Counts  []Count `json:"counts,omitempty"`
	Err     string  `json:"err,omitempty"`
}

// CancelRec journals one cancellation.
type CancelRec struct {
	Seq int64 `json:"seq"`
}

// EncodeRecord wraps a typed payload in a versioned envelope.
func EncodeRecord(typ string, payload any) ([]byte, error) {
	data, err := json.Marshal(payload)
	if err != nil {
		return nil, err
	}
	return json.Marshal(Envelope{V: Version, Type: typ, Data: data})
}

// DecodeRecord unwraps an envelope, enforcing the version.
func DecodeRecord(raw []byte) (*Envelope, error) {
	var env Envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return nil, fmt.Errorf("wire: bad record: %w", err)
	}
	if env.V != Version {
		return nil, fmt.Errorf("wire: record version %d, want %d", env.V, Version)
	}
	return &env, nil
}

// CheckVersion validates an HTTP body's version field.
func CheckVersion(v int) error {
	if v != Version {
		return fmt.Errorf("wire: message version %d, want %d", v, Version)
	}
	return nil
}

// CountsToPairs canonicalizes a counts map into the sorted wire form.
func CountsToPairs(m map[string]int) []Count {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	out := make([]Count, len(ks))
	for i, k := range ks {
		out[i] = Count{Bits: k, N: m[k]}
	}
	return out
}

// PairsToCounts inverts CountsToPairs.
func PairsToCounts(cs []Count) map[string]int {
	m := make(map[string]int, len(cs))
	for _, c := range cs {
		m[c.Bits] += c.N
	}
	return m
}
