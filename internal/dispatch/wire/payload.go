package wire

import (
	"fmt"
	"math/rand"
	"strings"

	"qcloud/internal/circuit"
	"qcloud/internal/circuit/gens"
	"qcloud/internal/cloud"
	"qcloud/internal/qsim"
)

// ExecCaps bounds the exec plan derived from a study JobSpec. Study
// circuits reach 65 qubits and millions of shots — queue-model scale,
// not statevector scale — so the worker payload is a capped replica:
// same circuit family, width/batch/shots clamped to something a
// trajectory simulator finishes in milliseconds.
type ExecCaps struct {
	MaxWidth int
	MaxBatch int
	MaxShots int
}

// DefaultExecCaps keeps a unit of work small enough that a single
// worker drains thousands of submissions in seconds.
func DefaultExecCaps() ExecCaps { return ExecCaps{MaxWidth: 8, MaxBatch: 2, MaxShots: 128} }

func (c ExecCaps) withDefaults() ExecCaps {
	d := DefaultExecCaps()
	if c.MaxWidth <= 0 {
		c.MaxWidth = d.MaxWidth
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = d.MaxBatch
	}
	if c.MaxShots <= 0 {
		c.MaxShots = d.MaxShots
	}
	return c
}

// Mix is a stateless splitmix64 fold of (seed, parts...) onto a
// non-negative int63 — the same construction the fault injector uses
// for per-attempt decisions, reused here to derive per-unit and
// per-circuit RNG seeds that are independent of submission order.
func Mix(seed int64, parts ...int64) int64 {
	h := splitmix(uint64(seed))
	for _, p := range parts {
		h = splitmix(h ^ uint64(p))
	}
	return int64(splitmix(h) >> 1)
}

// splitmix is the splitmix64 output scrambler.
func splitmix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ExecKindOf extracts the circuit family from a workload circuit name
// ("qft27" → "qft"). Unknown families fail later, in BuildCircuit.
func ExecKindOf(circuitName string) string {
	return strings.TrimRight(circuitName, "0123456789")
}

// Plan fills a Spec from a study JobSpec: the trace plane copied
// verbatim, the exec plane derived deterministically from (seed, idx)
// with capped dimensions. idx is the submission's position in the
// client's stream, so the exec seeds of a workload are a pure function
// of (seed, order), independent of which dispatcher or worker touches
// them.
func Plan(js *cloud.JobSpec, caps ExecCaps, seed int64, idx int) Spec {
	caps = caps.withDefaults()
	w := js.Width
	if w > caps.MaxWidth {
		w = caps.MaxWidth
	}
	if w < 2 {
		w = 2
	}
	b := js.BatchSize
	if b > caps.MaxBatch {
		b = caps.MaxBatch
	}
	if b < 1 {
		b = 1
	}
	sh := js.Shots
	if sh > caps.MaxShots {
		sh = caps.MaxShots
	}
	if sh < 1 {
		sh = 1
	}
	return Spec{
		SubmitTime:   js.SubmitTime,
		User:         js.User,
		Machine:      js.Machine,
		BatchSize:    js.BatchSize,
		Shots:        js.Shots,
		CircuitName:  js.CircuitName,
		Width:        js.Width,
		TotalDepth:   js.TotalDepth,
		TotalGateOps: js.TotalGateOps,
		CXTotal:      js.CXTotal,
		MemSlots:     js.MemSlots,
		PatienceSec:  js.PatienceSec,
		Privileged:   js.Privileged,

		ExecKind:  ExecKindOf(js.CircuitName),
		ExecWidth: w,
		ExecBatch: b,
		ExecShots: sh,
		ExecSeed:  Mix(seed, int64(idx)),
	}
}

// BuildCircuit constructs one exec-plane circuit. Families mirror
// internal/workload's catalog; the seed shapes the stochastic builders
// (vqe angles, random-circuit structure, bv secret) deterministically.
func BuildCircuit(kind string, width int, seed int64) (*circuit.Circuit, error) {
	if width < 2 {
		width = 2
	}
	switch kind {
	case "ghz":
		return gens.GHZ(width), nil
	case "bv":
		secret := uint64(Mix(seed, 1)) & ((1 << (width - 1)) - 1)
		return gens.BernsteinVazirani(width-1, secret), nil
	case "qft":
		return gens.QFT(width), nil
	case "qaoa":
		return gens.QAOAMaxCut(width, gens.RingEdges(width), 2), nil
	case "vqe":
		return gens.HardwareEfficientAnsatz(rand.New(rand.NewSource(seed)), width, 3), nil
	case "random":
		return gens.Random(rand.New(rand.NewSource(seed)), width, 8+width, 0.3), nil
	}
	return nil, fmt.Errorf("wire: unknown exec circuit kind %q", kind)
}

// BuildBatch expands a Spec's exec plan into the qsim.BatchRun jobs
// for one unit of work: ExecBatch circuits of the Spec's family, each
// with its own structure seed and shot-RNG seed derived from ExecSeed.
// Noiseless terminal-measure circuits take qsim's exact path, so the
// counts are a pure function of (circuit, shots, seed) — identical on
// any worker, at any parallelism.
func BuildBatch(s *Spec) ([]qsim.BatchJob, error) {
	if s.ExecBatch < 1 || s.ExecShots < 1 {
		return nil, fmt.Errorf("wire: empty exec plan for %s", s.CircuitName)
	}
	jobs := make([]qsim.BatchJob, 0, s.ExecBatch)
	for c := 0; c < s.ExecBatch; c++ {
		circ, err := BuildCircuit(s.ExecKind, s.ExecWidth, Mix(s.ExecSeed, int64(2*c)))
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, qsim.BatchJob{
			Circ:  circ,
			Shots: s.ExecShots,
			Seed:  Mix(s.ExecSeed, int64(2*c+1)),
		})
	}
	return jobs, nil
}

// MergeBatch folds one unit's per-circuit results into the unit's
// counts. Any circuit error fails the whole unit (the unit is the
// retry granularity).
func MergeBatch(res []qsim.BatchResult) (map[string]int, error) {
	merged := make(map[string]int)
	for _, r := range res {
		if r.Err != nil {
			return nil, r.Err
		}
		// Per-key integer addition commutes exactly.
		//qcloud:orderinvariant
		for bits, n := range r.Counts {
			merged[bits] += n
		}
	}
	return merged, nil
}

// RunLocal executes a slice of Specs in-process — the single-process
// reference the distributed counts plane must match byte for byte. One
// BatchRun spans all units (the shared trajectory pool is the whole
// point of BatchRun), then results fold back per unit. Seq is the
// slice index: the same numbering a dispatcher assigns a sealed
// submission stream.
func RunLocal(specs []Spec, p qsim.Parallelism) (*cloud.ResultSet, error) {
	var jobs []qsim.BatchJob
	spans := make([][2]int, len(specs)) // [start, end) into jobs, per spec
	rs := cloud.NewResultSet()
	for i := range specs {
		js, err := BuildBatch(&specs[i])
		if err != nil {
			rs.Ingest(cloud.JobResult{
				Seq: int64(i), Circuit: specs[i].ExecLabel(),
				Batch: specs[i].ExecBatch, Shots: specs[i].ExecShots,
				Err: err.Error(),
			})
			spans[i] = [2]int{-1, -1}
			continue
		}
		spans[i] = [2]int{len(jobs), len(jobs) + len(js)}
		jobs = append(jobs, js...)
	}
	res := qsim.BatchRun(jobs, p)
	for i := range specs {
		if spans[i][0] < 0 {
			continue
		}
		counts, err := MergeBatch(res[spans[i][0]:spans[i][1]])
		jr := cloud.JobResult{
			Seq: int64(i), Circuit: specs[i].ExecLabel(),
			Batch: specs[i].ExecBatch, Shots: specs[i].ExecShots,
		}
		if err != nil {
			jr.Err = err.Error()
		} else {
			jr.Counts = counts
		}
		rs.Ingest(jr)
	}
	return rs, nil
}
