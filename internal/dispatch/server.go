package dispatch

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"qcloud/internal/cloud"
	"qcloud/internal/dispatch/wire"
	"qcloud/internal/trace"
)

// eventRingCap bounds the in-memory observable event stream. The ring
// is best-effort observability (and empties on restart); the WALs are
// the durable record.
const eventRingCap = 1 << 16

// Config parameterizes a Dispatcher.
type Config struct {
	// Dir, Seed, Lease, Retry, CheckpointEvery, SyncEvery, Now pass
	// through to the queue.
	Dir             string
	Seed            int64
	Lease           time.Duration
	Retry           *cloud.RetryPolicy
	CheckpointEvery int
	SyncEvery       int
	Now             func() time.Time

	// Start/End bound the embedded trace-plane session (defaults: the
	// study window). SimWorkers is its per-machine fan-out — the trace
	// is bit-identical at any value.
	Start, End time.Time
	SimWorkers int
}

// Dispatcher is the queue-owning daemon: it accepts submissions,
// leases units to pulling workers, merges their results, and — once
// the stream is sealed — replays the submissions through an embedded
// deterministic cloud.Session to produce the trace-plane result.
//
// Determinism contract: both result CSVs are pure functions of (seed,
// sealed submission stream, cancellations). The trace CSV is exactly
// what cloud.Simulate produces in-process for the same specs; the
// counts CSV is exactly what wire.RunLocal produces. Worker count,
// join/leave order, lease churn, duplicate reports, and dispatcher
// SIGKILL + recovery are all invisible in the bytes.
type Dispatcher struct {
	cfg Config
	q   *Queue

	mu       sync.Mutex
	draining bool
	workers  map[string]time.Time // name → last seen

	evMu    sync.Mutex
	evBase  int64 // stream index of events[0]
	events  []wire.Event
	evTrunc bool

	traceMu   sync.Mutex
	traceCSV  []byte // computed once after seal
	traceErr  error
	traceDone bool
}

// New opens the dispatcher's durable queue (recovering any prior
// state) and returns the daemon.
func New(cfg Config) (*Dispatcher, error) {
	d := &Dispatcher{cfg: cfg, workers: make(map[string]time.Time)}
	qcfg := QueueConfig{
		Dir:             cfg.Dir,
		Seed:            cfg.Seed,
		Lease:           cfg.Lease,
		Retry:           cfg.Retry,
		CheckpointEvery: cfg.CheckpointEvery,
		SyncEvery:       cfg.SyncEvery,
		Now:             cfg.Now,
		OnEvent:         d.appendEvent,
	}
	q, err := OpenQueue(qcfg)
	if err != nil {
		return nil, err
	}
	d.q = q
	return d, nil
}

// Recovered reports whether New replayed pre-existing queue state.
func (d *Dispatcher) Recovered() bool { return d.q.Recovered() }

// appendEvent feeds the observable ring (the queue's OnEvent hook).
func (d *Dispatcher) appendEvent(ev wire.Event) {
	d.evMu.Lock()
	defer d.evMu.Unlock()
	d.events = append(d.events, ev)
	if over := len(d.events) - eventRingCap; over > 0 {
		d.events = append(d.events[:0], d.events[over:]...)
		d.evBase += int64(over)
		d.evTrunc = true
	}
}

// BeginDrain puts the dispatcher into graceful-shutdown mode: new
// submissions are rejected and no new leases are granted, but
// heartbeats, results, and reads keep flowing so in-flight workers can
// land their units.
func (d *Dispatcher) BeginDrain() {
	d.mu.Lock()
	d.draining = true
	d.mu.Unlock()
}

// Draining reports drain mode.
func (d *Dispatcher) Draining() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.draining
}

// Drained reports whether no leases remain in flight.
func (d *Dispatcher) Drained() bool {
	return d.q.Stats().Leased == 0
}

// Close checkpoints and seals the queue's journal streams.
func (d *Dispatcher) Close() error { return d.q.Close() }

// Queue exposes the underlying queue (tests and embedding).
func (d *Dispatcher) Queue() *Queue { return d.q }

// Stats returns the live status summary.
func (d *Dispatcher) Stats() wire.StatusResponse {
	st := d.q.Stats()
	d.mu.Lock()
	names := make([]string, 0, len(d.workers))
	for n := range d.workers {
		names = append(names, n)
	}
	draining := d.draining
	d.mu.Unlock()
	sort.Strings(names)
	return wire.StatusResponse{
		V:         wire.Version,
		Sealed:    st.Sealed,
		Draining:  draining,
		Jobs:      st.Jobs,
		Queued:    st.Queued,
		Leased:    st.Leased,
		Done:      st.Done,
		Failed:    st.Failed,
		Cancelled: st.Cancelled,
		Workers:   names,
		Recovered: d.q.Recovered(),
	}
}

// TraceCSV runs the embedded deterministic session over the sealed
// submission stream (once; cached) and returns the trace-plane CSV.
func (d *Dispatcher) TraceCSV() ([]byte, error) {
	if !d.q.Sealed() {
		return nil, errors.New("dispatch: trace requires a sealed submission stream")
	}
	d.traceMu.Lock()
	defer d.traceMu.Unlock()
	if d.traceDone {
		return d.traceCSV, d.traceErr
	}
	d.traceCSV, d.traceErr = d.runTrace()
	d.traceDone = true
	return d.traceCSV, d.traceErr
}

// runTrace is the trace-plane replay: submit every spec in seq order
// to a fresh session (cancelling the cancelled ones), run the window,
// and serialize — byte-identical to cloud.Simulate of the same specs.
func (d *Dispatcher) runTrace() ([]byte, error) {
	specs, cancelled := d.q.TraceInputs()
	sess, err := cloud.Open(cloud.Config{
		Seed:    d.cfg.Seed,
		Start:   d.cfg.Start,
		End:     d.cfg.End,
		Workers: d.cfg.SimWorkers,
	})
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	for i := range specs {
		h, err := sess.SubmitRetried(specs[i].JobSpec(), 0)
		if err != nil {
			return nil, err
		}
		if cancelled[i] {
			if err := sess.Cancel(h); err != nil {
				return nil, err
			}
		}
	}
	tr, err := sess.Run()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, tr.Jobs); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// CountsCSV merges the counts plane. Unless partial is set it requires
// every task terminal, so the bytes are the run's final answer.
func (d *Dispatcher) CountsCSV(partial bool) ([]byte, error) {
	st := d.q.Stats()
	if !partial {
		if !st.Sealed {
			return nil, errors.New("dispatch: counts require a sealed submission stream")
		}
		if st.Terminal() != st.Jobs {
			return nil, fmt.Errorf("dispatch: counts incomplete: %d/%d terminal", st.Terminal(), st.Jobs)
		}
	}
	var buf bytes.Buffer
	if err := d.q.Results().WriteCSV(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// --- HTTP plumbing -------------------------------------------------------

// Handler returns the dispatcher's HTTP API.
func (d *Dispatcher) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/submit", d.handleSubmit)
	mux.HandleFunc("POST /v1/seal", d.handleSeal)
	mux.HandleFunc("POST /v1/register", d.handleRegister)
	mux.HandleFunc("POST /v1/deregister", d.handleDeregister)
	mux.HandleFunc("POST /v1/pull", d.handlePull)
	mux.HandleFunc("POST /v1/heartbeat", d.handleHeartbeat)
	mux.HandleFunc("POST /v1/result", d.handleResult)
	mux.HandleFunc("POST /v1/cancel", d.handleCancel)
	mux.HandleFunc("GET /v1/status", d.handleStatus)
	mux.HandleFunc("GET /v1/events", d.handleEvents)
	mux.HandleFunc("GET /v1/result/trace", d.handleTraceCSV)
	mux.HandleFunc("GET /v1/result/counts", d.handleCountsCSV)
	return mux
}

// decode parses a versioned JSON body.
func decode[T interface{ version() int }](w http.ResponseWriter, r *http.Request, dst T) bool {
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	if err := wire.CheckVersion(dst.version()); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return false
	}
	return true
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(wire.GenericResponse{V: wire.Version, Err: msg})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (d *Dispatcher) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitReq
	if !decode(w, r, &req) {
		return
	}
	if d.Draining() {
		httpError(w, http.StatusServiceUnavailable, "dispatcher is draining")
		return
	}
	seq, dup, err := d.q.Submit(req.Key, req.Spec)
	if errors.Is(err, ErrSealed) {
		httpError(w, http.StatusConflict, err.Error())
		return
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, wire.SubmitResponse{V: wire.Version, Seq: seq, Dup: dup})
}

func (d *Dispatcher) handleSeal(w http.ResponseWriter, r *http.Request) {
	var req sealReq
	if !decode(w, r, &req) {
		return
	}
	if err := d.q.Seal(); err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, wire.GenericResponse{V: wire.Version})
}

func (d *Dispatcher) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerReq
	if !decode(w, r, &req) {
		return
	}
	if req.Name == "" {
		httpError(w, http.StatusBadRequest, "worker name required")
		return
	}
	d.mu.Lock()
	d.workers[req.Name] = time.Now()
	d.mu.Unlock()
	writeJSON(w, wire.GenericResponse{V: wire.Version})
}

func (d *Dispatcher) handleDeregister(w http.ResponseWriter, r *http.Request) {
	var req registerReq
	if !decode(w, r, &req) {
		return
	}
	d.mu.Lock()
	delete(d.workers, req.Name)
	d.mu.Unlock()
	writeJSON(w, wire.GenericResponse{V: wire.Version})
}

func (d *Dispatcher) handlePull(w http.ResponseWriter, r *http.Request) {
	var req pullReq
	if !decode(w, r, &req) {
		return
	}
	if req.Worker == "" {
		httpError(w, http.StatusBadRequest, "worker name required")
		return
	}
	resp := wire.PullResponse{V: wire.Version, Sealed: d.q.Sealed()}
	if !d.Draining() {
		units, err := d.q.Pull(req.Worker, req.Max)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		resp.Units = units
		d.mu.Lock()
		d.workers[req.Worker] = time.Now()
		d.mu.Unlock()
	}
	writeJSON(w, resp)
}

func (d *Dispatcher) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatReq
	if !decode(w, r, &req) {
		return
	}
	n := d.q.Heartbeat(req.Worker, req.Seqs)
	writeJSON(w, wire.HeartbeatResponse{V: wire.Version, Extended: n})
}

func (d *Dispatcher) handleResult(w http.ResponseWriter, r *http.Request) {
	var req resultReq
	if !decode(w, r, &req) {
		return
	}
	accepted, state, err := d.q.Result(req.Worker, req.Seq, req.Attempt, wire.PairsToCounts(req.Counts), req.Err)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, wire.ResultResponse{V: wire.Version, Accepted: accepted, State: state.String()})
}

func (d *Dispatcher) handleCancel(w http.ResponseWriter, r *http.Request) {
	var req cancelReq
	if !decode(w, r, &req) {
		return
	}
	accepted, state, err := d.q.Cancel(req.Key, req.Seq)
	if err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, wire.ResultResponse{V: wire.Version, Accepted: accepted, State: state.String()})
}

func (d *Dispatcher) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, d.Stats())
}

func (d *Dispatcher) handleEvents(w http.ResponseWriter, r *http.Request) {
	var since int64
	if s := r.URL.Query().Get("since"); s != "" {
		if _, err := fmt.Sscanf(s, "%d", &since); err != nil {
			httpError(w, http.StatusBadRequest, "bad since cursor")
			return
		}
	}
	d.evMu.Lock()
	resp := wire.EventsResponse{V: wire.Version}
	if since < d.evBase {
		resp.Truncated = d.evTrunc || since < d.evBase
		since = d.evBase
	}
	if idx := since - d.evBase; idx < int64(len(d.events)) {
		resp.Events = append([]wire.Event(nil), d.events[idx:]...)
	}
	resp.Next = d.evBase + int64(len(d.events))
	d.evMu.Unlock()
	writeJSON(w, resp)
}

func (d *Dispatcher) handleTraceCSV(w http.ResponseWriter, r *http.Request) {
	csv, err := d.TraceCSV()
	if err != nil {
		httpError(w, http.StatusConflict, err.Error())
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	_, _ = w.Write(csv)
}

func (d *Dispatcher) handleCountsCSV(w http.ResponseWriter, r *http.Request) {
	partial := r.URL.Query().Get("partial") == "1"
	csv, err := d.CountsCSV(partial)
	if err != nil {
		httpError(w, http.StatusConflict, err.Error())
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	_, _ = w.Write(csv)
}

// Version-probe wrappers so decode can enforce the protocol version
// without reflection.
type (
	submitReq    struct{ wire.SubmitRequest }
	sealReq      struct{ wire.SealRequest }
	registerReq  struct{ wire.RegisterRequest }
	pullReq      struct{ wire.PullRequest }
	heartbeatReq struct{ wire.HeartbeatRequest }
	resultReq    struct{ wire.ResultRequest }
	cancelReq    struct{ wire.CancelRequest }
)

func (r *submitReq) version() int    { return r.V }
func (r *sealReq) version() int      { return r.V }
func (r *registerReq) version() int  { return r.V }
func (r *pullReq) version() int      { return r.V }
func (r *heartbeatReq) version() int { return r.V }
func (r *resultReq) version() int    { return r.V }
func (r *cancelReq) version() int    { return r.V }
