package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"qcloud/internal/dispatch/wire"
	"qcloud/internal/qsim"
)

// WorkerConfig parameterizes a pulling worker.
type WorkerConfig struct {
	// Server is the dispatcher's base URL (e.g. http://127.0.0.1:8042).
	Server string
	// Name identifies the worker to the dispatcher.
	Name string
	// MaxUnits bounds the units leased per pull (default 4). The whole
	// pull executes as one qsim.BatchRun over a shared trajectory
	// pool.
	MaxUnits int
	// SimWorkers is the BatchRun parallelism (0 = all cores).
	SimWorkers int
	// Poll is the idle wait between empty pulls (default 200ms).
	Poll time.Duration
	// RequestTimeout bounds each HTTP call (default 10s).
	RequestTimeout time.Duration
	// Client is the HTTP client (default http.DefaultClient).
	Client *http.Client
	// Logf, if set, receives progress lines.
	Logf func(format string, args ...any)
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.MaxUnits <= 0 {
		c.MaxUnits = 4
	}
	if c.Poll <= 0 {
		c.Poll = 200 * time.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Worker is the pulling daemon: register, lease units, heartbeat while
// executing, report counts, repeat. Graceful-shutdown contract: when
// the run context is cancelled the worker finishes the batch it is
// executing, reports it, deregisters, and returns — so a SIGTERM'd
// worker never wastes a lease. (A SIGKILL'd worker simply stops
// heartbeating; the dispatcher's lease expiry requeues its units.)
type Worker struct {
	cfg   WorkerConfig
	units atomic.Int64
}

// NewWorker validates the config and returns a Worker.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Server == "" || cfg.Name == "" {
		return nil, fmt.Errorf("dispatch: worker needs Server and Name")
	}
	w := &Worker{cfg: cfg.withDefaults()}
	return w, nil
}

// Units reports how many units this worker has completed.
func (w *Worker) Units() int64 { return w.units.Load() }

// post sends one versioned JSON request. Calls deliberately use their
// own timeout context rather than the run context: a drain must still
// be able to report the final batch after cancellation.
func (w *Worker) post(path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), w.cfg.RequestTimeout)
	defer cancel()
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Server+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hr.Header.Set("Content-Type", "application/json")
	res, err := w.cfg.Client.Do(hr)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	data, err := io.ReadAll(io.LimitReader(res.Body, 64<<20))
	if err != nil {
		return err
	}
	if res.StatusCode != http.StatusOK {
		var ge wire.GenericResponse
		if json.Unmarshal(data, &ge) == nil && ge.Err != "" {
			return fmt.Errorf("dispatch: %s: %s", path, ge.Err)
		}
		return fmt.Errorf("dispatch: %s: HTTP %d", path, res.StatusCode)
	}
	return json.Unmarshal(data, resp)
}

// Run drives the pull loop until ctx is cancelled (graceful exit) or a
// non-recoverable error occurs. Transient dispatcher unavailability —
// connection refused during a restart, timeouts — is retried
// indefinitely: workers are designed to idle through dispatcher
// crashes and reconnect.
func (w *Worker) Run(ctx context.Context) error {
	// Register, riding out an unreachable dispatcher.
	for {
		var resp wire.GenericResponse
		err := w.post("/v1/register", wire.RegisterRequest{V: wire.Version, Name: w.cfg.Name}, &resp)
		if err == nil {
			break
		}
		w.cfg.Logf("register: %v (retrying)", err)
		if !w.sleep(ctx) {
			return nil
		}
	}
	w.cfg.Logf("registered with %s", w.cfg.Server)
	defer w.deregister()

	for {
		if ctx.Err() != nil {
			return nil
		}
		var pull wire.PullResponse
		err := w.post("/v1/pull", wire.PullRequest{V: wire.Version, Worker: w.cfg.Name, Max: w.cfg.MaxUnits}, &pull)
		if err != nil {
			w.cfg.Logf("pull: %v (retrying)", err)
			if !w.sleep(ctx) {
				return nil
			}
			continue
		}
		if len(pull.Units) == 0 {
			if !w.sleep(ctx) {
				return nil
			}
			continue
		}
		w.execute(pull.Units)
	}
}

// sleep waits one poll interval, reporting false when ctx ended.
func (w *Worker) sleep(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(w.cfg.Poll):
		return true
	}
}

func (w *Worker) deregister() {
	var resp wire.GenericResponse
	if err := w.post("/v1/deregister", wire.RegisterRequest{V: wire.Version, Name: w.cfg.Name}, &resp); err != nil {
		w.cfg.Logf("deregister: %v", err)
	} else {
		w.cfg.Logf("deregistered")
	}
}

// execute runs one leased batch end to end: heartbeats in the
// background, one BatchRun across all units' jobs, one report per
// unit.
func (w *Worker) execute(units []wire.Unit) {
	stopHB := w.startHeartbeats(units)
	defer stopHB()

	var jobs []qsim.BatchJob
	spans := make([][2]int, len(units))
	buildErr := make([]error, len(units))
	for i := range units {
		js, err := wire.BuildBatch(&units[i].Spec)
		if err != nil {
			buildErr[i] = err
			spans[i] = [2]int{-1, -1}
			continue
		}
		spans[i] = [2]int{len(jobs), len(jobs) + len(js)}
		jobs = append(jobs, js...)
	}
	res := qsim.BatchRun(jobs, qsim.Parallelism{Workers: w.cfg.SimWorkers})

	for i, u := range units {
		var counts map[string]int
		var errMsg string
		if buildErr[i] != nil {
			errMsg = buildErr[i].Error()
		} else {
			m, err := wire.MergeBatch(res[spans[i][0]:spans[i][1]])
			if err != nil {
				errMsg = err.Error()
			} else {
				counts = m
			}
		}
		w.report(u, counts, errMsg)
	}
}

// report delivers one unit's outcome, retrying through transient
// dispatcher unavailability so a drain or restart cannot lose a
// computed result.
func (w *Worker) report(u wire.Unit, counts map[string]int, errMsg string) {
	req := wire.ResultRequest{
		V: wire.Version, Worker: w.cfg.Name,
		Seq: u.Seq, Attempt: u.Attempt,
		Counts: wire.CountsToPairs(counts), Err: errMsg,
	}
	for tries := 0; tries < 50; tries++ {
		var resp wire.ResultResponse
		err := w.post("/v1/result", req, &resp)
		if err == nil {
			w.units.Add(1)
			if !resp.Accepted {
				w.cfg.Logf("unit %d already %s (duplicate report dropped)", u.Seq, resp.State)
			}
			return
		}
		w.cfg.Logf("result %d: %v (retrying)", u.Seq, err)
		time.Sleep(w.cfg.Poll)
	}
	w.cfg.Logf("unit %d: giving up on report; lease expiry will requeue it", u.Seq)
}

// startHeartbeats extends the batch's leases a few times per lease
// interval until stopped.
func (w *Worker) startHeartbeats(units []wire.Unit) (stop func()) {
	leaseSec := units[0].LeaseSec
	for _, u := range units {
		if u.LeaseSec < leaseSec {
			leaseSec = u.LeaseSec
		}
	}
	every := time.Duration(leaseSec / 3 * float64(time.Second))
	if every < 50*time.Millisecond {
		every = 50 * time.Millisecond
	}
	seqs := make([]int64, len(units))
	for i, u := range units {
		seqs[i] = u.Seq
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				var resp wire.HeartbeatResponse
				if err := w.post("/v1/heartbeat", wire.HeartbeatRequest{V: wire.Version, Worker: w.cfg.Name, Seqs: seqs}, &resp); err != nil {
					w.cfg.Logf("heartbeat: %v", err)
				}
			}
		}
	}()
	return func() { close(done) }
}
