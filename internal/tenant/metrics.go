package tenant

import (
	"fmt"
	"io"
)

// TenantState is one queue's externally visible snapshot.
type TenantState struct {
	Name     string
	Priority int
	// Deserved is the queue's absolute deserved fraction of fleet
	// capacity; Share is its realized fraction of all raw allocation.
	Deserved float64
	Share    float64
	// Decayed and Raw are the ledger entries (QPU-seconds) as of the
	// broker frontier.
	Decayed float64
	Raw     float64

	Pending  int
	InFlight int

	Arrived   int
	Admitted  int
	Done      int
	Errored   int
	Cancelled int
	Preempted int
	Unserved  int

	// WaitMean and WaitMax cover jobs that actually started: release
	// latency from tenant arrival to QPU start, in sim-seconds.
	WaitMean float64
	WaitMax  float64
}

// Metrics summarizes fairness over the whole run.
type Metrics struct {
	// JainIndex is Jain's fairness index over each demanded queue's
	// share/deserved ratio: 1.0 when every queue holds exactly its
	// deserved share, approaching 1/n under total capture.
	JainIndex float64
	// MaxDeviation is the largest |share - deserved| over demanded
	// queues, in absolute fraction-of-fleet terms.
	MaxDeviation float64
	// TotalQPUSeconds is the raw (undecayed) allocation across all
	// queues.
	TotalQPUSeconds float64
	// Preemptions counts jobs the broker displaced.
	Preemptions int
}

// States returns a snapshot per leaf queue in declaration order, as of
// the broker frontier.
func (b *Broker) States() []TenantState {
	rawTotal := b.ledger.RawTotal()
	out := make([]TenantState, 0, len(b.leaves))
	for _, q := range b.leaves {
		st := TenantState{
			Name:     q.cfg.Name,
			Priority: q.cfg.Priority,
			Deserved: q.deserved,
			Decayed:  b.ledger.DecayedAt(q.idx, b.nowSec),
			Raw:      b.ledger.Raw(q.idx),
			Pending:  len(q.pending),
			InFlight: q.inFlight,
			Arrived:  q.arrived, Admitted: q.admitted,
			Done: q.done, Errored: q.errored, Cancelled: q.cancelled,
			Preempted: q.preempted, Unserved: q.unserved,
			WaitMax: q.waitMax,
		}
		if rawTotal > 0 {
			st.Share = st.Raw / rawTotal
		}
		if q.waitN > 0 {
			st.WaitMean = q.waitSum / float64(q.waitN)
		}
		out = append(out, st)
	}
	return out
}

// State returns one queue's snapshot, or false for unknown or internal
// queues.
func (b *Broker) State(name string) (TenantState, bool) {
	q := b.byName[name]
	if q == nil || !q.leaf {
		return TenantState{}, false
	}
	for _, st := range b.States() {
		if st.Name == name {
			return st, true
		}
	}
	return TenantState{}, false
}

// Metrics computes run-level fairness figures from the current ledger.
// Queues that never had demand (no arrivals) are excluded: an idle
// queue holding none of its deserved share is not unfairness.
func (b *Broker) Metrics() Metrics {
	m := Metrics{Preemptions: b.preemptions, TotalQPUSeconds: b.ledger.RawTotal()}
	var ratios []float64
	for _, st := range b.States() {
		if st.Arrived == 0 {
			continue
		}
		if st.Deserved > 0 {
			ratios = append(ratios, st.Share/st.Deserved)
		}
		if d := st.Share - st.Deserved; d > m.MaxDeviation {
			m.MaxDeviation = d
		} else if -d > m.MaxDeviation {
			m.MaxDeviation = -d
		}
	}
	m.JainIndex = JainIndex(ratios)
	return m
}

// JainIndex is Jain's fairness index (Σx)²/(n·Σx²) over the given
// values: 1.0 when all equal, 1/n when one value captures everything.
// Empty or all-zero input returns 1 (nothing to be unfair about).
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// DumpStates writes a stable one-line-per-queue text rendering of the
// broker state — used for bit-identity assertions across worker counts
// and for the CLI fairness table.
func (b *Broker) DumpStates(w io.Writer) error {
	for _, st := range b.States() {
		if _, err := fmt.Fprintf(w,
			"%s pri=%d deserved=%.4f share=%.4f raw=%.3f decayed=%.3f pending=%d inflight=%d arrived=%d admitted=%d done=%d err=%d cancelled=%d preempted=%d unserved=%d waitmean=%.3f waitmax=%.3f\n",
			st.Name, st.Priority, st.Deserved, st.Share, st.Raw, st.Decayed,
			st.Pending, st.InFlight, st.Arrived, st.Admitted, st.Done,
			st.Errored, st.Cancelled, st.Preempted, st.Unserved,
			st.WaitMean, st.WaitMax); err != nil {
			return err
		}
	}
	return nil
}
