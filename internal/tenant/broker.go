package tenant

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"qcloud/internal/backend"
	"qcloud/internal/cloud"
	"qcloud/internal/trace"
)

// Submission is one tenant job bound for a named queue. The spec's
// SubmitTime is the tenant's arrival instant; the broker releases the
// job into the session at a later decision tick, rewriting the
// session-side SubmitTime to the release instant and the User to the
// queue's identity ("tenant:<queue>").
type Submission struct {
	Queue string
	Spec  *cloud.JobSpec
}

// Job is the broker-side token for one tenant submission.
type Job struct {
	queue    *queueState
	spec     cloud.JobSpec // template; SubmitTime is the tenant arrival
	arrive   float64
	seq      int64
	machIdx  int
	est      float64 // estimated QPU-seconds (provisional ledger charge)
	admitSec float64 // tick of the latest admission
	preempts int
	state    jobState
	handle   *cloud.JobHandle
	cur      *cloud.JobSpec // the currently admitted session-side clone
}

// Queue returns the name of the queue the job was submitted to.
func (j *Job) Queue() string { return j.queue.cfg.Name }

// Preemptions returns how many times the job has been displaced.
func (j *Job) Preemptions() int { return j.preempts }

type jobState uint8

const (
	jobPending jobState = iota
	jobAdmitted
	jobFinished
	jobUnserved
)

// admission links a session-side spec clone back to its broker job.
// preempted marks clones the broker has withdrawn: their cancel record
// still drains through the sink, but all accounting already happened
// at the preemption decision.
type admission struct {
	job       *Job
	preempted bool
}

type sinkRec struct {
	spec *cloud.JobSpec
	job  *trace.Job
}

// machBuf is one machine's synchronous record buffer. Each machine's
// advance loop appends only to its own buffer (the RecordSink
// contract), and the broker drains all of them between AdvanceTo
// calls, so no locking is needed.
type machBuf struct {
	recs []sinkRec
}

// Broker admits tenant submissions into a shared cloud.Session from
// time-aware fair-share accounting. All methods must be called from
// one goroutine (the session driver); everything the broker decides is
// a pure function of simulated time, the seed, and the submission
// stream.
type Broker struct {
	sess     *cloud.Session
	cfg      Config
	machines []*backend.Machine
	machIdx  map[string]int

	queues []*queueState // declaration order, internal nodes included
	leaves []*queueState // declaration order, ledger-indexed
	byName map[string]*queueState
	ledger *Ledger

	start   time.Time
	endSec  float64
	tickSec float64
	tick    int64 // next unprocessed tick index
	nowSec  float64

	perMach      []machBuf
	bySpec       map[*cloud.JobSpec]*admission
	machQueued   []int    // admitted-and-unrecorded broker jobs per machine
	machAdmitted [][]*Job // same jobs in admission order (preemption scan)

	seq         int64
	totalPend   int
	totalInFl   int
	preemptions int
	finished    bool
}

// Open opens a session from ccfg with the broker's accounting hook
// attached and builds the quota tree. The cloud config must not carry
// its own RecordSink.
func Open(ccfg cloud.Config, tcfg Config) (*Broker, error) {
	if ccfg.RecordSink != nil {
		return nil, fmt.Errorf("tenant: cloud config already has a RecordSink")
	}
	tcfg = tcfg.withDefaults()
	queues, byName, err := resolveTree(tcfg.Queues)
	if err != nil {
		return nil, err
	}
	b := &Broker{
		cfg:     tcfg,
		queues:  queues,
		byName:  byName,
		bySpec:  make(map[*cloud.JobSpec]*admission),
		tickSec: tcfg.Tick.Seconds(),
	}
	var leafNames []string
	for _, q := range queues {
		if !q.leaf {
			continue
		}
		q.idx = len(b.leaves)
		if q.maxInFlight == 0 {
			q.maxInFlight = tcfg.DefaultMaxInFlight
		}
		b.leaves = append(b.leaves, q)
		leafNames = append(leafNames, q.cfg.Name)
	}
	if len(b.leaves) == 0 {
		return nil, fmt.Errorf("tenant: quota tree has no leaf queues")
	}
	ccfg.RecordSink = b.sink
	sess, err := cloud.Open(ccfg)
	if err != nil {
		return nil, err
	}
	b.sess = sess
	b.machines = sess.Machines()
	b.machIdx = make(map[string]int, len(b.machines))
	for i, m := range b.machines {
		b.machIdx[m.Name] = i
	}
	b.perMach = make([]machBuf, len(b.machines))
	b.machQueued = make([]int, len(b.machines))
	b.machAdmitted = make([][]*Job, len(b.machines))
	start, end := sess.Window()
	b.start = start
	b.endSec = end.Sub(start).Seconds()
	b.ledger = NewLedger(leafNames, tcfg.HalfLife, 0)
	return b, nil
}

// Session exposes the underlying session (for Observe, QueueState and
// direct submissions, which the broker's accounting simply ignores).
func (b *Broker) Session() *cloud.Session { return b.sess }

// Ledger exposes the allocation ledger for assertions and dumps.
func (b *Broker) Ledger() *Ledger { return b.ledger }

// Preemptions returns how many jobs the broker has displaced so far.
func (b *Broker) Preemptions() int { return b.preemptions }

// Now returns the broker's decision frontier in sim-seconds.
func (b *Broker) Now() float64 { return b.nowSec }

func (b *Broker) toSec(t time.Time) float64 { return t.Sub(b.start).Seconds() }
func (b *Broker) toTime(s float64) time.Time {
	return b.start.Add(time.Duration(s * float64(time.Second)))
}

// sink is the session's RecordSink: called synchronously from each
// machine's advance loop with that machine's finished study records.
//
//qcloud:eventowner per-machine append buffer drained on the driver goroutine
func (b *Broker) sink(machine int, spec *cloud.JobSpec, job *trace.Job) {
	mb := &b.perMach[machine]
	mb.recs = append(mb.recs, sinkRec{spec: spec, job: job})
}

// Submit enters a tenant job into its queue's backlog. The spec's
// SubmitTime is the arrival instant and must not lie behind the
// broker's frontier; the target machine must exist in the fleet.
func (b *Broker) Submit(queue string, spec *cloud.JobSpec) (*Job, error) {
	q := b.byName[queue]
	if q == nil {
		return nil, fmt.Errorf("tenant: unknown queue %q", queue)
	}
	if !q.leaf {
		return nil, fmt.Errorf("tenant: queue %q is an internal quota node; submit to a leaf", queue)
	}
	mi, ok := b.machIdx[spec.Machine]
	if !ok {
		return nil, fmt.Errorf("tenant: job targets unknown machine %q", spec.Machine)
	}
	arrive := b.toSec(spec.SubmitTime)
	if arrive < b.nowSec {
		return nil, fmt.Errorf("tenant: submission at %s is behind the broker frontier %s",
			spec.SubmitTime.Format(time.RFC3339), b.toTime(b.nowSec).Format(time.RFC3339))
	}
	b.seq++
	job := &Job{
		queue: q, spec: *spec, arrive: arrive, seq: b.seq, machIdx: mi,
		est: b.machines[mi].ExecSeconds(spec.BatchSize, spec.Shots, spec.TotalDepth),
	}
	q.insertPending(job)
	q.arrived++
	b.totalPend++
	return job, nil
}

// insertPending keeps the backlog ordered by (arrive, seq) — fresh
// arrivals append, requeued preemptees re-enter at their original
// position.
func (q *queueState) insertPending(job *Job) {
	i := sort.Search(len(q.pending), func(k int) bool {
		p := q.pending[k]
		if p.arrive != job.arrive {
			return p.arrive > job.arrive
		}
		return p.seq > job.seq
	})
	q.pending = append(q.pending, nil)
	copy(q.pending[i+1:], q.pending[i:])
	q.pending[i] = job
}

// AdvanceTo moves the broker's frontier to t, processing every
// decision tick on the way: advance the session, drain completion
// records into the ledger, then preempt/admit.
func (b *Broker) AdvanceTo(t time.Time) error {
	now := b.toSec(t)
	if now < b.nowSec {
		return fmt.Errorf("tenant: AdvanceTo(%s) is behind the broker frontier", t.Format(time.RFC3339))
	}
	for {
		ts := float64(b.tick) * b.tickSec
		if ts > now {
			break
		}
		if b.totalPend == 0 && b.totalInFl == 0 {
			// Nothing to decide and nothing outstanding: skip the
			// intermediate ticks entirely. The session advances lazily at
			// the next live tick — AdvanceTo is incremental, so the end
			// state is identical.
			b.tick = int64(math.Floor(now/b.tickSec)) + 1
			break
		}
		if err := b.processTick(ts); err != nil {
			return err
		}
		b.tick++
	}
	b.nowSec = now
	return nil
}

func (b *Broker) processTick(ts float64) error {
	b.sess.AdvanceTo(b.toTime(ts))
	b.drain()
	return b.decide(ts)
}

// drain merges every machine's new completion records in a
// deterministic order (end time, then machine index, then per-machine
// sequence — the stable sort preserves append order on ties) and
// charges the ledger.
func (b *Broker) drain() {
	var batch []sinkRec
	for mi := range b.perMach {
		mb := &b.perMach[mi]
		batch = append(batch, mb.recs...)
		mb.recs = mb.recs[:0]
	}
	if len(batch) == 0 {
		return
	}
	sort.SliceStable(batch, func(i, j int) bool {
		return batch[i].job.EndTime.Before(batch[j].job.EndTime)
	})
	for _, rec := range batch {
		adm := b.bySpec[rec.spec]
		if adm == nil {
			continue // not a broker job (direct session submission)
		}
		delete(b.bySpec, rec.spec)
		if adm.preempted {
			continue // accounted at the preemption decision
		}
		job := adm.job
		q := job.queue
		startSec, endSec := b.toSec(rec.job.StartTime), b.toSec(rec.job.EndTime)
		dur := endSec - startSec
		if dur < 0 {
			dur = 0
		}
		b.ledger.Charge(q.idx, endSec, dur)
		q.outstanding -= job.est
		q.inFlight--
		b.totalInFl--
		b.machQueued[job.machIdx]--
		b.removeAdmitted(job.machIdx, job)
		job.state = jobFinished
		switch rec.job.Status {
		case trace.StatusDone:
			q.done++
		case trace.StatusError:
			q.errored++
		default:
			q.cancelled++
		}
		if rec.job.Status != trace.StatusCancelled {
			wait := startSec - job.arrive
			if wait < 0 {
				wait = 0
			}
			q.waitSum += wait
			q.waitN++
			if wait > q.waitMax {
				q.waitMax = wait
			}
		}
	}
}

func (b *Broker) removeAdmitted(mi int, job *Job) {
	adm := b.machAdmitted[mi]
	for i, j := range adm {
		if j == job {
			b.machAdmitted[mi] = append(adm[:i], adm[i+1:]...)
			return
		}
	}
}

// shareRatio is q's fraction of current (decayed + provisional)
// allocation relative to its deserved fraction: 1 means exactly at
// quota, >1 over, <1 under. With no allocation anywhere, everyone is
// at 0.
func (b *Broker) shareRatio(q *queueState, ts, totalBase float64) float64 {
	if totalBase <= 0 {
		return 0
	}
	return (b.ledger.DecayedAt(q.idx, ts) + q.outstanding) / (q.deserved * totalBase)
}

// orderKey is the admission-ordering key within a priority band:
// under-quota queues order by their share ratio; over-quota queues
// divide their excess by the over-quota weight, so heavier queues are
// favored for surplus capacity.
func (b *Broker) orderKey(q *queueState, ts, totalBase float64) float64 {
	r := b.shareRatio(q, ts, totalBase)
	if r <= 1 {
		return r
	}
	return 1 + (r-1)/q.oqw
}

func (b *Broker) totalBase(ts float64) float64 {
	t := 0.0
	for _, q := range b.leaves {
		t += b.ledger.DecayedAt(q.idx, ts) + q.outstanding
	}
	return t
}

// decide is one admission pass: repeatedly pick the most deserving
// backlogged queue (priority band first, then fairness key, then name)
// and release its head job, preempting an over-quota or lower-priority
// victim when the target machine is full and preemption is enabled.
// The pass ends when no candidate can place a job.
func (b *Broker) decide(ts float64) error {
	if ts >= b.endSec {
		return nil // admissions at the boundary would be doomed
	}
	type cand struct {
		q   *queueState
		key float64
	}
	for b.totalPend > 0 {
		total := b.totalBase(ts)
		var cands []cand
		for _, q := range b.leaves {
			if len(q.pending) == 0 {
				continue
			}
			if q.maxInFlight > 0 && q.inFlight >= q.maxInFlight {
				continue
			}
			cands = append(cands, cand{q, b.orderKey(q, ts, total)})
		}
		sort.Slice(cands, func(i, j int) bool {
			a, c := cands[i], cands[j]
			if a.q.cfg.Priority != c.q.cfg.Priority {
				return a.q.cfg.Priority > c.q.cfg.Priority
			}
			if a.key != c.key {
				return a.key < c.key
			}
			return a.q.cfg.Name < c.q.cfg.Name
		})
		progressed := false
		for _, c := range cands {
			job := c.q.pending[0]
			mi := job.machIdx
			if b.machQueued[mi] >= b.cfg.MaxPerMachine && b.cfg.Preemption {
				if err := b.tryPreempt(c.q, mi, ts, total); err != nil {
					return err
				}
			}
			if b.machQueued[mi] >= b.cfg.MaxPerMachine {
				continue
			}
			ok, err := b.admit(job, ts)
			if err != nil {
				return err
			}
			if ok {
				progressed = true
				break
			}
		}
		if !progressed {
			return nil
		}
	}
	return nil
}

// tryPreempt frees a slot on machine mi for queue s by withdrawing the
// least deserving still-queued broker job: lower priority band first,
// then (within the band) a queue over its deserved share by more than
// the slack while s is under by more than the slack. Scanning runs
// newest admission first, so the youngest over-quota job is displaced.
// The victim is cancelled with CancelPreempted and requeued into its
// backlog at its original arrival position.
func (b *Broker) tryPreempt(s *queueState, mi int, ts, totalBase float64) error {
	rs := b.shareRatio(s, ts, totalBase)
	adm := b.machAdmitted[mi]
	var best *Job
	for i := len(adm) - 1; i >= 0; i-- {
		j := adm[i]
		v := j.queue
		if v == s || j.preempts >= b.cfg.MaxPreemptions {
			continue
		}
		if j.admitSec >= ts {
			// Admitted this very tick: the machine has not enqueued the
			// spec yet, so displacing it would be pure churn — the
			// admission decision it reverses was made seconds ago with
			// the same information.
			continue
		}
		eligible := v.cfg.Priority < s.cfg.Priority ||
			(v.cfg.Priority == s.cfg.Priority &&
				b.shareRatio(v, ts, totalBase) > 1+b.cfg.PreemptSlack &&
				rs < 1-b.cfg.PreemptSlack)
		if !eligible {
			continue
		}
		if best == nil || j.queue.cfg.Priority < best.queue.cfg.Priority {
			best = j
		}
	}
	if best == nil {
		return nil
	}
	if err := b.sess.CancelWithReason(best.handle, cloud.CancelPreempted); err != nil {
		return fmt.Errorf("tenant: preempt on %s: %w", b.machines[mi].Name, err)
	}
	b.bySpec[best.cur].preempted = true
	v := best.queue
	v.outstanding -= best.est
	v.inFlight--
	b.totalInFl--
	b.machQueued[mi]--
	b.removeAdmitted(mi, best)
	v.preempted++
	b.preemptions++
	best.preempts++
	best.state = jobPending
	best.handle, best.cur = nil, nil
	v.insertPending(best)
	b.totalPend++
	return nil
}

// admit releases a queue's head job into the session at tick ts. A
// transient API rejection that survives SubmitRetried leaves the job
// at the head for the next tick (ok=false); other submit errors are
// terminal.
func (b *Broker) admit(job *Job, ts float64) (bool, error) {
	q := job.queue
	clone := job.spec
	clone.SubmitTime = b.toTime(ts)
	clone.User = "tenant:" + q.cfg.Name
	h, err := b.sess.SubmitRetried(&clone, 0)
	if err != nil {
		if errors.Is(err, cloud.ErrTransientSubmit) {
			return false, nil
		}
		return false, err
	}
	q.pending = q.pending[1:]
	b.totalPend--
	job.handle, job.cur = h, &clone
	job.state = jobAdmitted
	job.admitSec = ts
	b.bySpec[&clone] = &admission{job: job}
	q.outstanding += job.est
	q.inFlight++
	b.totalInFl++
	b.machQueued[job.machIdx]++
	b.machAdmitted[job.machIdx] = append(b.machAdmitted[job.machIdx], job)
	q.admitted++
	return true, nil
}

// Play drives a whole submission stream through the broker in arrival
// order (a stable sort makes the order canonical), leaving the broker
// ready for Run.
func (b *Broker) Play(subs []Submission) error {
	ordered := append([]Submission(nil), subs...)
	sort.SliceStable(ordered, func(i, j int) bool {
		return ordered[i].Spec.SubmitTime.Before(ordered[j].Spec.SubmitTime)
	})
	for _, sub := range ordered {
		if err := b.AdvanceTo(sub.Spec.SubmitTime); err != nil {
			return err
		}
		if _, err := b.Submit(sub.Queue, sub.Spec); err != nil {
			return err
		}
	}
	return nil
}

// Run processes the remaining ticks, marks whatever never got released
// as unserved, finalizes the session and drains the last completion
// records. The returned trace contains every job the broker released
// (session SubmitTime = release instant, User = "tenant:<queue>").
func (b *Broker) Run() (*trace.Trace, error) {
	if b.finished {
		return nil, fmt.Errorf("tenant: broker already ran")
	}
	if err := b.AdvanceTo(b.toTime(b.endSec)); err != nil {
		return nil, err
	}
	for _, q := range b.leaves {
		for _, job := range q.pending {
			job.state = jobUnserved
		}
		q.unserved += len(q.pending)
		b.totalPend -= len(q.pending)
		q.pending = nil
	}
	tr, err := b.sess.Run()
	if err != nil {
		return nil, err
	}
	b.drain()
	b.finished = true
	return tr, nil
}

// Close releases the underlying session. Closing after Run is a no-op
// (Run closes the session implicitly).
func (b *Broker) Close() error {
	if err := b.sess.Close(); err != nil && !errors.Is(err, cloud.ErrSessionClosed) {
		return err
	}
	return nil
}
