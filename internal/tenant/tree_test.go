package tenant

import (
	"math"
	"strings"
	"testing"
)

func deservedOf(t *testing.T, qs []*queueState, name string) float64 {
	t.Helper()
	for _, q := range qs {
		if q.cfg.Name == name {
			return q.deserved
		}
	}
	t.Fatalf("queue %q not found", name)
	return 0
}

// TestResolveTreeFlat: root shares normalize over root weights.
func TestResolveTreeFlat(t *testing.T) {
	qs, byName, err := resolveTree([]QueueConfig{
		{Name: "big", Share: 3},
		{Name: "small", Share: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := deservedOf(t, qs, "big"); got != 0.75 {
		t.Fatalf("big deserved = %g, want 0.75", got)
	}
	if got := deservedOf(t, qs, "small"); got != 0.25 {
		t.Fatalf("small deserved = %g, want 0.25", got)
	}
	if !byName["big"].leaf || !byName["small"].leaf {
		t.Fatal("flat queues must be leaves")
	}
}

// TestResolveTreeHierarchy: a parent's deserved fraction divides among
// its children by their weights, and parents stop being leaves.
func TestResolveTreeHierarchy(t *testing.T) {
	qs, byName, err := resolveTree([]QueueConfig{
		{Name: "org", Share: 1},
		{Name: "solo", Share: 1},
		{Name: "a", Parent: "org", Share: 3},
		{Name: "b", Parent: "org", Share: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]float64{"org": 0.5, "solo": 0.5, "a": 0.375, "b": 0.125} {
		if got := deservedOf(t, qs, name); math.Abs(got-want) > 1e-12 {
			t.Fatalf("%s deserved = %g, want %g", name, got, want)
		}
	}
	if byName["org"].leaf {
		t.Fatal("org has children and must not be a leaf")
	}
	if !byName["a"].leaf || !byName["b"].leaf || !byName["solo"].leaf {
		t.Fatal("a, b, solo must be leaves")
	}
}

// TestResolveTreeDefaultShare: zero shares default to weight 1.
func TestResolveTreeDefaultShare(t *testing.T) {
	qs, _, err := resolveTree([]QueueConfig{{Name: "x"}, {Name: "y"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := deservedOf(t, qs, "x"); got != 0.5 {
		t.Fatalf("defaulted share deserved = %g, want 0.5", got)
	}
}

// TestResolveTreeErrors: every malformed tree is rejected with a
// mention of the offending queue.
func TestResolveTreeErrors(t *testing.T) {
	cases := []struct {
		name string
		cfgs []QueueConfig
		frag string
	}{
		{"empty", nil, "no queues"},
		{"unnamed", []QueueConfig{{Name: ""}}, "empty name"},
		{"negative", []QueueConfig{{Name: "a", Share: -1}}, "negative"},
		{"dup", []QueueConfig{{Name: "a"}, {Name: "a"}}, "duplicate"},
		{"orphan", []QueueConfig{{Name: "a", Parent: "ghost"}}, "unknown parent"},
		{"cycle", []QueueConfig{{Name: "a", Parent: "b"}, {Name: "b", Parent: "a"}}, "cycle"},
		{"selfcycle", []QueueConfig{{Name: "a", Parent: "a"}}, "cycle"},
	}
	for _, tc := range cases {
		_, _, err := resolveTree(tc.cfgs)
		if err == nil {
			t.Fatalf("%s: resolveTree accepted a malformed tree", tc.name)
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.frag)
		}
	}
}
